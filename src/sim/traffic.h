// Workload generation: servers, flows, diurnal activity, ARP tracker.
//
// Reproduces the traffic mix the paper's building carries (Sections 6–7):
// web-style short TCP downloads, interactive ssh chatter, bulk scp copies,
// a Vernier-style management server ARPing every registered client, client
// license-chatter broadcasts (footnote 6), and a diurnal activity profile —
// clients arrive late morning, peak 10am–5pm, a few run overnight — that
// shapes Figure 8's time series.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/client.h"
#include "sim/event_queue.h"
#include "sim/tcp.h"
#include "sim/wired.h"

namespace jig {

struct WorkloadConfig {
  // Per-active-client flow arrival rates (flows per minute).
  double web_per_min = 1.5;
  double scp_per_min = 0.08;
  double ssh_per_min = 0.15;
  double office_broadcast_per_min = 0.3;

  // Flow size distributions (bytes).
  double web_min_bytes = 2'000;
  double web_cap_bytes = 400'000;
  double web_alpha = 1.15;
  double scp_min_bytes = 200'000;
  double scp_cap_bytes = 3'000'000;
  double scp_alpha = 1.3;
  double ssh_session_mean_s = 30.0;

  Micros arp_interval = Seconds(10);
  int server_count = 6;
  TcpConfig tcp;

  // Diurnal activity: when enabled, `duration` maps onto a 24-hour day and
  // client sessions are drawn from the hourly profile; otherwise clients
  // power on early and stay on.
  bool diurnal = false;
  double sessions_per_client = 1.6;
  double session_mean_fraction = 0.18;  // of the day
};

// Hourly activity weights, 24 entries (relative).  Matches the paper's
// Figure 8 shape: quiet overnight, ramp from 9am, peak 10am–5pm, long tail
// into the evening.
extern const double kDiurnalProfile[24];

struct TrafficStats {
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t web_flows = 0;
  std::uint64_t scp_flows = 0;
  std::uint64_t ssh_sessions = 0;
  std::uint64_t arp_broadcasts = 0;
  std::uint64_t office_broadcasts = 0;
};

// Owns the server side of every TCP flow and drives client activity.
class TrafficManager {
 public:
  TrafficManager(EventQueue& events, WiredNetwork& wired,
                 std::vector<Client*> clients, Rng rng, WorkloadConfig config,
                 Micros duration);

  TrafficManager(const TrafficManager&) = delete;
  TrafficManager& operator=(const TrafficManager&) = delete;

  // Schedules client sessions, server registration and the ARP tracker.
  void Start();

  const TrafficStats& stats() const { return stats_; }
  static constexpr Ipv4Addr ServerIp(int i) {
    return MakeIpv4(10, 1, 0, static_cast<std::uint8_t>(10 + i));
  }
  static constexpr Ipv4Addr TrackerIp() { return MakeIpv4(10, 0, 0, 2); }

 private:
  struct ServerFlow {
    std::unique_ptr<TcpPeer> peer;
    Ipv4Addr client_ip = 0;
  };
  struct Server {
    Ipv4Addr ip = 0;
    // Keyed by (client_ip, client_port, server_port).
    std::unordered_map<std::uint64_t, ServerFlow> flows;
  };

  void SetupServers();
  void ScheduleClientSessions();
  void StartClientSession(std::size_t client_idx, Micros session_end);
  void ScheduleNextFlow(std::size_t client_idx, Micros session_end);
  void LaunchFlow(std::size_t client_idx, Micros session_end);
  void LaunchWebFlow(Client& c);
  void LaunchScpFlow(Client& c);
  void LaunchSshSession(Client& c, Micros session_end);
  void SshChatStep(TcpPeer* client_peer, TcpPeer* server_peer,
                   TrueMicros until);
  void ArpTick();
  TcpPeer* MakeServerPeer(Server& server, Ipv4Addr client_ip,
                          std::uint16_t client_port,
                          std::uint16_t server_port);
  static std::uint64_t FlowKey(Ipv4Addr client_ip, std::uint16_t client_port,
                               std::uint16_t server_port) {
    return (static_cast<std::uint64_t>(client_ip) << 32) ^
           (static_cast<std::uint64_t>(client_port) << 16) ^ server_port;
  }

  EventQueue& events_;
  WiredNetwork& wired_;
  std::vector<Client*> clients_;
  Rng rng_;
  WorkloadConfig config_;
  Micros duration_;

  std::vector<std::unique_ptr<Server>> servers_;
  std::uint16_t next_ephemeral_port_ = 10'000;
  TrafficStats stats_;
};

}  // namespace jig
