// Workload generation: servers, flows, diurnal activity, ARP tracker.
//
// Reproduces the traffic mix the paper's building carries (Sections 6–7):
// web-style short TCP downloads, interactive ssh chatter, bulk scp copies,
// a Vernier-style management server ARPing every registered client, client
// license-chatter broadcasts (footnote 6), and a diurnal activity profile —
// clients arrive late morning, peak 10am–5pm, a few run overnight — that
// shapes Figure 8's time series.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/client.h"
#include "sim/event_queue.h"
#include "sim/tcp.h"
#include "sim/truth.h"
#include "sim/wired.h"

namespace jig {

struct WorkloadConfig {
  // Per-active-client flow arrival rates (flows per minute).
  double web_per_min = 1.5;
  double scp_per_min = 0.08;
  double ssh_per_min = 0.15;
  double office_broadcast_per_min = 0.3;

  // Flow size distributions (bytes).
  double web_min_bytes = 2'000;
  double web_cap_bytes = 400'000;
  double web_alpha = 1.15;
  double scp_min_bytes = 200'000;
  double scp_cap_bytes = 3'000'000;
  double scp_alpha = 1.3;
  double ssh_session_mean_s = 30.0;

  Micros arp_interval = Seconds(10);
  int server_count = 6;
  TcpConfig tcp;

  // Congestion-control mix: clients are assigned algorithms round-robin
  // from this list (client i gets cc_cycle[i % size]), and every flow a
  // client opens runs that algorithm on both endpoints — so a mixed cell
  // (e.g. {kReno, kCubic, kBbr} over 60 clients = 20 of each) is a
  // one-line scenario change.  Empty (the default) keeps a uniform cell
  // running tcp.cc_algorithm.
  std::vector<CcAlgorithm> cc_cycle;

  // Diurnal activity: when enabled, `duration` maps onto a 24-hour day and
  // client sessions are drawn from the hourly profile; otherwise clients
  // power on early and stay on.
  bool diurnal = false;
  double sessions_per_client = 1.6;
  double session_mean_fraction = 0.18;  // of the day
};

// Hourly activity weights, 24 entries (relative).  Matches the paper's
// Figure 8 shape: quiet overnight, ramp from 9am, peak 10am–5pm, long tail
// into the evening.
extern const double kDiurnalProfile[24];

struct TrafficStats {
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t web_flows = 0;
  std::uint64_t scp_flows = 0;
  std::uint64_t ssh_sessions = 0;
  std::uint64_t arp_broadcasts = 0;
  std::uint64_t office_broadcasts = 0;
};

// Owns the server side of every TCP flow and drives client activity.
class TrafficManager {
 public:
  // `truth` (optional) receives a FlowTruth record for every TCP flow the
  // workload launches, tagging the flow's congestion-control algorithm.
  TrafficManager(EventQueue& events, WiredNetwork& wired,
                 std::vector<Client*> clients, Rng rng, WorkloadConfig config,
                 Micros duration, TruthLog* truth = nullptr);

  // The algorithm assigned to a client by the cc_cycle rotation.
  CcAlgorithm ClientCc(std::size_t client_idx) const {
    return config_.cc_cycle.empty()
               ? config_.tcp.cc_algorithm
               : config_.cc_cycle[client_idx % config_.cc_cycle.size()];
  }

  TrafficManager(const TrafficManager&) = delete;
  TrafficManager& operator=(const TrafficManager&) = delete;

  // Schedules client sessions, server registration and the ARP tracker.
  void Start();

  const TrafficStats& stats() const { return stats_; }
  static constexpr Ipv4Addr ServerIp(int i) {
    return MakeIpv4(10, 1, 0, static_cast<std::uint8_t>(10 + i));
  }
  static constexpr Ipv4Addr TrackerIp() { return MakeIpv4(10, 0, 0, 2); }

 private:
  struct ServerFlow {
    std::unique_ptr<TcpPeer> peer;
    Ipv4Addr client_ip = 0;
  };
  struct Server {
    Ipv4Addr ip = 0;
    // Keyed by (client_ip, client_port, server_port).
    std::unordered_map<std::uint64_t, ServerFlow> flows;
  };

  void SetupServers();
  void ScheduleClientSessions();
  void StartClientSession(std::size_t client_idx, Micros session_end);
  void ScheduleNextFlow(std::size_t client_idx, Micros session_end);
  void LaunchFlow(std::size_t client_idx, Micros session_end);
  void LaunchWebFlow(Client& c, const TcpConfig& tcp);
  void LaunchScpFlow(Client& c, const TcpConfig& tcp);
  void LaunchSshSession(Client& c, const TcpConfig& tcp, Micros session_end);
  void SshChatStep(TcpPeer* client_peer, TcpPeer* server_peer,
                   TrueMicros until);
  void ArpTick();
  // The per-client TcpConfig (workload TCP knobs + the client's CC).
  TcpConfig TcpConfigFor(std::size_t client_idx) const;
  void RecordFlowTruth(const Client& c, std::uint16_t client_port,
                       Ipv4Addr server_ip, std::uint16_t server_port,
                       CcAlgorithm cc);
  TcpPeer* MakeServerPeer(Server& server, Ipv4Addr client_ip,
                          std::uint16_t client_port,
                          std::uint16_t server_port, const TcpConfig& tcp);
  static std::uint64_t FlowKey(Ipv4Addr client_ip, Ipv4Addr server_ip,
                               std::uint16_t client_port,
                               std::uint16_t server_port) {
    return FlowTruth::Key(client_ip, server_ip, client_port, server_port);
  }

  EventQueue& events_;
  WiredNetwork& wired_;
  std::vector<Client*> clients_;
  Rng rng_;
  WorkloadConfig config_;
  Micros duration_;
  TruthLog* truth_ = nullptr;

  std::vector<std::unique_ptr<Server>> servers_;
  std::uint16_t next_ephemeral_port_ = 10'000;
  TrafficStats stats_;
};

}  // namespace jig
