#include "sim/mac.h"

#include <algorithm>

namespace jig {
namespace {

// ARF rate ladders.  802.11g stations climb from CCK into OFDM; legacy
// stations stay on CCK.  Rates never step up in response to loss, one of
// the empirical regularities the paper's inference heuristics rely on.
constexpr PhyRate kLadderB[] = {PhyRate::kB1, PhyRate::kB2, PhyRate::kB5_5,
                                PhyRate::kB11};
constexpr PhyRate kLadderG[] = {PhyRate::kB1,  PhyRate::kB2,  PhyRate::kB5_5,
                                PhyRate::kB11, PhyRate::kG12, PhyRate::kG18,
                                PhyRate::kG24, PhyRate::kG36, PhyRate::kG48,
                                PhyRate::kG54};
constexpr int kArfUpAfter = 10;
constexpr int kArfDownAfter = 2;

}  // namespace

Mac::Mac(EventQueue& events, Medium& medium, MacAddress address,
         Point3 position, Channel channel, Rng rng, MacConfig config)
    : events_(events),
      medium_(medium),
      address_(address),
      position_(position),
      channel_(channel),
      rng_(rng),
      config_(config) {
  medium_.AddListener(this);
}

int Mac::LadderSize() const {
  return config_.b_only ? static_cast<int>(std::size(kLadderB))
                        : static_cast<int>(std::size(kLadderG));
}

PhyRate Mac::LadderRate(int pos) const {
  pos = std::clamp(pos, 0, LadderSize() - 1);
  return config_.b_only ? kLadderB[pos] : kLadderG[pos];
}

PhyRate Mac::DataRateFor(MacAddress dst) const {
  auto it = arf_.find(dst);
  if (it == arf_.end()) return LadderRate(config_.b_only ? 1 : 4);
  return LadderRate(it->second.ladder_pos);
}

void Mac::SeedRate(MacAddress dst, PhyRate rate) {
  ArfState st;
  st.ladder_pos = 0;
  for (int i = 0; i < LadderSize(); ++i) {
    if (LadderRate(i) == rate) st.ladder_pos = i;
  }
  arf_[dst] = st;
}

void Mac::ArfReportSuccess(MacAddress dst) {
  ArfState& st = arf_[dst];
  st.fail_streak = 0;
  if (++st.success_streak >= kArfUpAfter &&
      st.ladder_pos + 1 < LadderSize()) {
    ++st.ladder_pos;
    st.success_streak = 0;
  }
}

void Mac::ArfReportFailure(MacAddress dst) {
  ArfState& st = arf_[dst];
  st.success_streak = 0;
  if (++st.fail_streak >= kArfDownAfter && st.ladder_pos > 0) {
    --st.ladder_pos;
    st.fail_streak = 0;
  }
}

std::uint64_t Mac::EnqueueData(MacAddress dst, MacAddress bssid, Bytes body,
                               bool from_ds, bool to_ds) {
  if (queue_.size() >= config_.max_queue) {
    ++counters_.queue_drops;
    return 0;
  }
  Msdu m;
  m.id = next_msdu_id_++;
  m.type = FrameType::kData;
  m.dst = dst;
  m.bssid = bssid;
  m.body = std::move(body);
  m.from_ds = from_ds;
  m.to_ds = to_ds;
  queue_.push_back(std::move(m));
  MaybeStartAccess();
  return queue_.back().id;
}

std::uint64_t Mac::EnqueueManagement(FrameType type, MacAddress dst,
                                     MacAddress bssid, Bytes body) {
  if (queue_.size() >= config_.max_queue) {
    ++counters_.queue_drops;
    return 0;
  }
  Msdu m;
  m.id = next_msdu_id_++;
  m.type = type;
  m.dst = dst;
  m.bssid = bssid;
  m.body = std::move(body);
  queue_.push_back(std::move(m));
  MaybeStartAccess();
  return queue_.back().id;
}

bool Mac::TransmittingNow() const {
  const TrueMicros now = events_.now();
  for (const auto& [start, end] : own_tx_intervals_) {
    if (start <= now && now < end) return true;
  }
  return state_ == State::kProtecting || state_ == State::kTransmitting;
}

bool Mac::MediumBusy() const {
  return cs_count_ > 0 || events_.now() < nav_until_ || TransmittingNow();
}

void Mac::MaybeStartAccess() {
  if (state_ != State::kIdle || queue_.empty()) return;
  if (backoff_remaining_ < 0) {
    backoff_remaining_ = static_cast<int>(rng_.NextBelow(
        static_cast<std::uint64_t>(cw_) + 1));
  }
  BeginCountdownOrDefer();
}

void Mac::BeginCountdownOrDefer() {
  if (MediumBusy()) {
    state_ = State::kDeferring;
    if (cs_count_ == 0) ScheduleNavResume();
    return;
  }
  state_ = State::kBackoff;
  countdown_started_ = events_.now();
  countdown_event_ = events_.Schedule(
      events_.now() + kDifs + static_cast<Micros>(backoff_remaining_) *
                                  kSlotTime,
      [this] { OnBackoffComplete(); });
}

void Mac::PauseCountdown() {
  events_.Cancel(countdown_event_);
  countdown_event_ = kInvalidEvent;
  const Micros elapsed = events_.now() - countdown_started_;
  if (elapsed > kDifs) {
    const int consumed = static_cast<int>((elapsed - kDifs) / kSlotTime);
    backoff_remaining_ = std::max(0, backoff_remaining_ - consumed);
  }
  state_ = State::kDeferring;
}

void Mac::ScheduleNavResume() {
  if (nav_until_ <= events_.now()) return;
  if (nav_resume_event_ != kInvalidEvent) return;
  nav_resume_event_ = events_.Schedule(nav_until_, [this] {
    nav_resume_event_ = kInvalidEvent;
    if (state_ == State::kDeferring && !MediumBusy()) BeginCountdownOrDefer();
  });
}

void Mac::OnBackoffComplete() {
  countdown_event_ = kInvalidEvent;
  if (MediumBusy()) {
    state_ = State::kDeferring;
    if (cs_count_ == 0) ScheduleNavResume();
    return;
  }
  StartTxSequence();
}

PhyRate Mac::PickRate(const Msdu& msdu) const {
  if (msdu.type != FrameType::kData || !msdu.dst.IsUnicast()) {
    // Broadcast and management at the lowest mandatory rate: this is why
    // broadcast ARP/beacons eat ~10% of air time in the paper's trace.
    return PhyRate::kB1;
  }
  if (msdu.type != FrameType::kData) return PhyRate::kB2;
  return DataRateFor(msdu.dst);
}

void Mac::StartTxSequence() {
  Msdu& msdu = queue_.front();
  if (!msdu.seq_assigned) {
    msdu.seq = seq_counter_;
    seq_counter_ = static_cast<std::uint16_t>((seq_counter_ + 1) & 0x0FFF);
    msdu.seq_assigned = true;
  }
  msdu.rate = msdu.attempts == 0 ? PickRate(msdu) : std::min(msdu.rate,
                                                             PickRate(msdu));

  const bool unicast = msdu.dst.IsUnicast();
  if (unicast && msdu.type == FrameType::kData &&
      msdu.body.size() >= config_.rts_threshold) {
    // RTS/CTS reservation: RTS duration covers CTS + DATA + ACK + 3 SIFS.
    const std::size_t data_bytes = 2 + 2 + 6 + 6 + 6 + 2 + msdu.body.size() + 4;
    const Micros data_air = TxDurationMicros(msdu.rate, data_bytes);
    const PhyRate ctrl_rate = ControlResponseRate(msdu.rate);
    const Micros cts_air = TxDurationMicros(ctrl_rate, kCtsBytes);
    const Micros ack_air = TxDurationMicros(ctrl_rate, kAckBytes);
    const Micros reserve = 3 * kSifs + cts_air + data_air + ack_air;
    Frame rts = MakeRts(msdu.dst, address_, reserve, ctrl_rate);
    const Micros rts_air = rts.AirTimeMicros();
    const TrueMicros now = events_.now();
    medium_.Transmit(std::move(rts), address_, position_,
                     config_.tx_power_dbm, channel_, this);
    RecordOwnTx(now, now + rts_air);
    ++counters_.rts_sent;
    state_ = State::kWaitCts;
    cts_timeout_event_ = events_.Schedule(
        now + rts_air + kSifs + cts_air + config_.ack_timeout_slack,
        [this] { OnCtsTimeout(); });
    return;
  }
  if (protection_ && IsOfdm(msdu.rate) && unicast) {
    // 802.11g protection: reserve with a CCK CTS-to-self covering
    // SIFS + DATA + SIFS + ACK (Section 2; footnote 7 costs this at 248 us
    // for a 2 Mbps long-preamble CTS).
    const std::size_t data_bytes = 2 + 2 + 6 + 6 + 6 + 2 + msdu.body.size() + 4;
    const Micros data_air = TxDurationMicros(msdu.rate, data_bytes);
    const Micros ack_air =
        TxDurationMicros(ControlResponseRate(msdu.rate), kAckBytes);
    const Micros reserve = kSifs + data_air + kSifs + ack_air;
    Frame cts = MakeCtsToSelf(address_, reserve, PhyRate::kB2);
    const Micros cts_air = cts.AirTimeMicros();
    const TrueMicros now = events_.now();
    medium_.Transmit(std::move(cts), address_, position_, config_.tx_power_dbm,
                     channel_, this);
    RecordOwnTx(now, now + cts_air);
    ++counters_.cts_self_sent;
    state_ = State::kProtecting;
    pending_tx_event_ = events_.Schedule(now + cts_air + kSifs, [this] {
      pending_tx_event_ = kInvalidEvent;
      TransmitCurrentFrame();
    });
    return;
  }
  TransmitCurrentFrame();
}

void Mac::TransmitCurrentFrame() {
  Msdu& msdu = queue_.front();
  ++msdu.attempts;
  if (msdu.attempts > 1) ++counters_.retries;

  Frame f;
  if (msdu.type == FrameType::kData) {
    f = MakeData(msdu.dst, address_, msdu.bssid, msdu.seq, msdu.body,
                 msdu.rate, msdu.from_ds, msdu.to_ds);
    ++counters_.data_tx_attempts;
  } else {
    f.type = msdu.type;
    f.addr1 = msdu.dst;
    f.addr2 = address_;
    f.addr3 = msdu.bssid;
    f.sequence = msdu.seq;
    f.body = msdu.body;
    f.rate = msdu.rate;
    if (msdu.dst.IsUnicast()) {
      f.duration_us =
          static_cast<std::uint16_t>(AckDurationFieldMicros(msdu.rate));
    }
    ++counters_.mgmt_tx_attempts;
  }
  f.retry = msdu.attempts > 1;

  const bool expects_ack = msdu.dst.IsUnicast();
  const PhyRate data_rate = msdu.rate;
  const Micros air = f.AirTimeMicros();
  const TrueMicros now = events_.now();
  medium_.Transmit(std::move(f), address_, position_, config_.tx_power_dbm,
                   channel_, this);
  RecordOwnTx(now, now + air);
  state_ = State::kTransmitting;
  events_.Schedule(now + air, [this, expects_ack, data_rate] {
    OnOwnFrameEnd(expects_ack, data_rate);
  });
}

void Mac::OnOwnFrameEnd(bool expects_ack, PhyRate data_rate) {
  if (!expects_ack) {
    // Broadcast / multicast: one attempt, considered sent (rule R1 in the
    // paper's exchange FSM: attempt == exchange).
    CompleteMsdu(true);
    return;
  }
  state_ = State::kWaitAck;
  const Micros ack_air =
      TxDurationMicros(ControlResponseRate(data_rate), kAckBytes);
  ack_timeout_event_ = events_.Schedule(
      events_.now() + kSifs + ack_air + config_.ack_timeout_slack,
      [this] { OnAckTimeout(); });
}

void Mac::OnAckTimeout() {
  ack_timeout_event_ = kInvalidEvent;
  Msdu& msdu = queue_.front();
  ArfReportFailure(msdu.dst);
  if (msdu.attempts > config_.retry_limit) {
    CompleteMsdu(false);
    return;
  }
  cw_ = std::min(cw_ * 2 + 1, kCwMax);
  backoff_remaining_ =
      static_cast<int>(rng_.NextBelow(static_cast<std::uint64_t>(cw_) + 1));
  state_ = State::kDeferring;
  BeginCountdownOrDefer();
}

void Mac::OnCtsTimeout() {
  cts_timeout_event_ = kInvalidEvent;
  if (state_ != State::kWaitCts) return;
  Msdu& msdu = queue_.front();
  ArfReportFailure(msdu.dst);
  // A failed reservation costs an attempt like a failed DATA would.
  ++msdu.attempts;
  if (msdu.attempts > config_.retry_limit) {
    CompleteMsdu(false);
    return;
  }
  ++counters_.retries;
  cw_ = std::min(cw_ * 2 + 1, kCwMax);
  backoff_remaining_ =
      static_cast<int>(rng_.NextBelow(static_cast<std::uint64_t>(cw_) + 1));
  state_ = State::kDeferring;
  BeginCountdownOrDefer();
}

void Mac::SendCtsReply(const Frame& rts) {
  // CTS duration: whatever remains of the RTS reservation after this CTS.
  const PhyRate rate = rts.rate;
  const Micros cts_air = TxDurationMicros(rate, kCtsBytes);
  const Micros remaining =
      rts.duration_us > kSifs + cts_air
          ? rts.duration_us - kSifs - cts_air
          : 0;
  Frame cts;
  cts.type = FrameType::kCts;
  cts.addr1 = rts.addr2;  // addressed to the RTS sender
  cts.duration_us = static_cast<std::uint16_t>(remaining);
  cts.rate = rate;
  const TrueMicros now = events_.now();
  medium_.Transmit(std::move(cts), address_, position_, config_.tx_power_dbm,
                   channel_, this);
  RecordOwnTx(now, now + cts_air);
  ++counters_.cts_replies_sent;
}

void Mac::CompleteMsdu(bool delivered) {
  events_.Cancel(ack_timeout_event_);
  ack_timeout_event_ = kInvalidEvent;
  Msdu done = std::move(queue_.front());
  queue_.pop_front();
  if (delivered) {
    ++counters_.msdu_delivered;
    if (done.dst.IsUnicast()) ArfReportSuccess(done.dst);
  } else {
    ++counters_.msdu_failed;
  }
  cw_ = kCwMin;
  backoff_remaining_ = -1;
  state_ = State::kIdle;
  if (tx_status_handler_) tx_status_handler_(done.id, delivered);
  MaybeStartAccess();
}

void Mac::SendAck(MacAddress to, PhyRate eliciting_rate) {
  const PhyRate rate = ControlResponseRate(eliciting_rate);
  Frame ack = MakeAck(to, rate);
  const Micros air = ack.AirTimeMicros();
  const TrueMicros now = events_.now();
  medium_.Transmit(std::move(ack), address_, position_, config_.tx_power_dbm,
                   channel_, this);
  RecordOwnTx(now, now + air);
  ++counters_.acks_sent;
}

bool Mac::OverlapsOwnTx(TrueMicros start, TrueMicros end) const {
  for (const auto& [s, e] : own_tx_intervals_) {
    if (s < end && e > start) return true;
  }
  return false;
}

void Mac::RecordOwnTx(TrueMicros start, TrueMicros end) {
  own_tx_intervals_.emplace_back(start, end);
  while (own_tx_intervals_.size() > 8 &&
         own_tx_intervals_.front().second + Seconds(1) < events_.now()) {
    own_tx_intervals_.pop_front();
  }
  // Self-wakeup: the medium never calls us back about our own frames, so a
  // contention paused by our own ACK/CTS transmission must resume here.
  events_.Schedule(end + 1, [this] {
    if (state_ == State::kDeferring && !MediumBusy()) BeginCountdownOrDefer();
  });
}

void Mac::OnTxStart(const Transmission&, double rssi_dbm) {
  if (rssi_dbm < config_.carrier_sense_dbm) return;
  ++cs_count_;
  if (state_ == State::kBackoff) PauseCountdown();
}

void Mac::OnTxEnd(const Transmission& tx, double rssi_dbm,
                  RxOutcome outcome) {
  const bool sensed = rssi_dbm >= config_.carrier_sense_dbm;
  if (sensed) {
    cs_count_ = std::max(0, cs_count_ - 1);
  }

  // Half duplex: anything overlapping our own transmissions is unreceivable.
  const bool deaf = OverlapsOwnTx(tx.start, tx.end);
  if (!deaf && outcome == RxOutcome::kOk) HandleDecodedFrame(tx);

  // The channel may have just gone idle: resume a paused contention.
  if (state_ == State::kDeferring && !MediumBusy()) {
    BeginCountdownOrDefer();
  } else if (state_ == State::kDeferring && cs_count_ == 0) {
    ScheduleNavResume();
  }
}

void Mac::HandleDecodedFrame(const Transmission& tx) {
  const Frame& f = tx.frame;

  // Virtual carrier sense: honor duration fields of frames not for us.
  if (f.addr1 != address_ && f.duration_us > 0) {
    const TrueMicros new_nav = events_.now() + f.duration_us;
    if (new_nav > nav_until_) nav_until_ = new_nav;
    if (state_ == State::kBackoff) PauseCountdown();
    if (state_ == State::kDeferring && cs_count_ == 0) ScheduleNavResume();
  }

  if (f.type == FrameType::kAck) {
    if (f.addr1 == address_ && state_ == State::kWaitAck) {
      CompleteMsdu(true);
    }
    return;
  }
  if (f.type == FrameType::kCts) {
    // CTS answering our RTS: the channel is reserved, send the DATA.
    if (f.addr1 == address_ && state_ == State::kWaitCts) {
      events_.Cancel(cts_timeout_event_);
      cts_timeout_event_ = kInvalidEvent;
      pending_tx_event_ = events_.ScheduleIn(kSifs, [this] {
        pending_tx_event_ = kInvalidEvent;
        TransmitCurrentFrame();
      });
      state_ = State::kProtecting;  // reserved; DATA follows after SIFS
    }
    return;
  }
  if (f.type == FrameType::kRts) {
    // Respond with CTS after SIFS when addressed to us and our NAV allows.
    if (f.addr1 == address_ && events_.now() >= nav_until_) {
      const Frame rts_copy = f;
      events_.ScheduleIn(kSifs, [this, rts_copy] {
        if (!TransmittingNow()) SendCtsReply(rts_copy);
      });
    }
    return;
  }

  // DATA or MANAGEMENT.
  if (f.addr1 == address_) {
    // ACK after SIFS unless we will be mid-transmission.
    if (!TransmittingNow()) {
      const MacAddress to = f.addr2;
      const PhyRate eliciting = f.rate;
      events_.ScheduleIn(kSifs, [this, to, eliciting] {
        if (!TransmittingNow()) SendAck(to, eliciting);
      });
    }
    // Duplicate filtering by (transmitter, sequence).
    auto it = rx_last_seq_.find(f.addr2);
    if (it != rx_last_seq_.end() && it->second == f.sequence && f.retry) {
      ++counters_.rx_duplicates;
      return;
    }
    rx_last_seq_[f.addr2] = f.sequence;
    ++counters_.rx_delivered;
    if (rx_handler_) rx_handler_(f);
    return;
  }
  if (f.addr1.IsBroadcast() || f.addr1.IsMulticast()) {
    ++counters_.rx_delivered;
    if (rx_handler_) rx_handler_(f);
  }
}

}  // namespace jig
