// Discrete-event scheduler driving the simulation substrate.
//
// All simulator components (MACs, traffic generators, TCP timers, the
// medium) schedule callbacks at absolute true-time instants.  Cancellation
// is first-class because the 802.11 MAC constantly cancels pending events:
// backoff completions when the channel goes busy, ACK timeouts when the ACK
// arrives.  Ties are broken by insertion order so runs are deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/time.h"

namespace jig {

using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  TrueMicros now() const { return now_; }

  // Schedules `cb` at absolute time `at` (clamped to now if in the past).
  EventId Schedule(TrueMicros at, Callback cb);
  EventId ScheduleIn(Micros delay, Callback cb) {
    return Schedule(now_ + delay, std::move(cb));
  }

  // Cancels a pending event; returns false if it already ran or was
  // cancelled.  Cancelling kInvalidEvent is a no-op.
  bool Cancel(EventId id);

  // Runs events until the queue empties or the next event is after `t_end`;
  // leaves now() at t_end.
  void RunUntil(TrueMicros t_end);

  // Runs everything (use only when the event population is finite).
  void RunAll();

  std::size_t pending() const { return callbacks_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    TrueMicros at;
    EventId id;
    bool operator>(const Entry& other) const {
      return at != other.at ? at > other.at : id > other.id;
    }
  };

  TrueMicros now_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::uint64_t executed_ = 0;
};

}  // namespace jig
