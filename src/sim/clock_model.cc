#include "sim/clock_model.h"

namespace jig {

ClockModel::ClockModel(const ClockConfig& config, Rng rng) : rng_(rng) {
  offset_us_ = static_cast<double>(rng_.NextInt(-config.max_initial_offset,
                                                config.max_initial_offset));
  skew0_ppm_ = rng_.NextGaussian(0.0, config.skew_sigma_ppm);
  current_skew_ppm_ = skew0_ppm_;
  // Random-walk step sized so the expected |skew change| over an hour is
  // roughly drift_ppm_per_hour.
  const double steps_per_hour =
      static_cast<double>(Hours(1)) / static_cast<double>(kDriftInterval);
  drift_step_ppm_ = config.drift_ppm_per_hour / std::sqrt(steps_per_hour);
  ntp_utc_of_local_zero_ =
      -static_cast<std::int64_t>(offset_us_) +
      rng_.NextInt(-config.ntp_error_us, config.ntp_error_us);
  jitter_sigma_us_ = config.jitter_sigma_us;
}

void ClockModel::AdvanceDriftTo(TrueMicros t) {
  while (drift_sampled_until_ + kDriftInterval <= t) {
    integrated_skew_us_ += current_skew_ppm_ * 1e-6 *
                           static_cast<double>(kDriftInterval);
    current_skew_ppm_ += rng_.NextGaussian(0.0, drift_step_ppm_);
    drift_sampled_until_ += kDriftInterval;
  }
}

double ClockModel::LocalAt(TrueMicros t) const {
  // Const view: integrate the walk up to the last sampled boundary, then
  // extrapolate with the current rate.  Callers that also call
  // CaptureTimestamp see a consistent trajectory because CaptureTimestamp
  // advances the walk first.
  const double remainder =
      static_cast<double>(t - drift_sampled_until_) * current_skew_ppm_ * 1e-6;
  return offset_us_ + static_cast<double>(t) + integrated_skew_us_ + remainder;
}

LocalMicros ClockModel::CaptureTimestamp(TrueMicros t) {
  AdvanceDriftTo(t);
  const double jitter = rng_.NextGaussian(0.0, jitter_sigma_us_);
  return static_cast<LocalMicros>(std::floor(LocalAt(t) + jitter));
}

}  // namespace jig
