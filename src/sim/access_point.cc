#include "sim/access_point.h"

namespace jig {

AccessPoint::AccessPoint(EventQueue& events, Medium& medium,
                         WiredNetwork& wired, std::uint16_t index,
                         Point3 position, Channel channel, Rng rng,
                         ApConfig config, MacConfig mac_config)
    : events_(events),
      wired_(wired),
      index_(index),
      rng_(rng.Fork(0xA9)),
      config_(config),
      mac_(events, medium, MacAddress::Ap(index), position, channel,
           rng.Fork(0x3AC), mac_config) {
  mac_.set_rx_handler([this](const Frame& f) { OnFrame(f); });
}

void AccessPoint::Start() {
  if (started_) return;
  started_ = true;

  WiredNetwork::ApPort port;
  port.deliver_unicast = [this](MacAddress client, Bytes body) {
    mac_.EnqueueData(client, mac_.address(), std::move(body),
                     /*from_ds=*/true, /*to_ds=*/false);
  };
  port.deliver_broadcast = [this](Bytes body) {
    mac_.EnqueueData(MacAddress::Broadcast(), mac_.address(), std::move(body),
                     /*from_ds=*/true, /*to_ds=*/false);
  };
  wired_.RegisterAp(index_, std::move(port));

  // Desynchronize beacon phases across APs.
  events_.ScheduleIn(rng_.NextInt(0, config_.beacon_interval),
                     [this] { OnBeaconTimer(); });
  events_.ScheduleIn(config_.protection_poll, [this] { PollProtection(); });
}

void AccessPoint::OnBeaconTimer() {
  Bytes body(24, 0);
  body[1] = protection_active_ ? kErpProtection : 0;
  mac_.EnqueueManagement(FrameType::kBeacon, MacAddress::Broadcast(),
                         mac_.address(), std::move(body));
  events_.ScheduleIn(config_.beacon_interval, [this] { OnBeaconTimer(); });
}

void AccessPoint::SenseBClient() {
  last_b_sense_ = events_.now();
  if (!protection_active_) {
    protection_active_ = true;
    mac_.SetProtection(true);
  }
}

void AccessPoint::PollProtection() {
  const bool should = events_.now() - last_b_sense_ < config_.protection_timeout;
  if (should != protection_active_) {
    protection_active_ = should;
    mac_.SetProtection(should);
  }
  events_.ScheduleIn(config_.protection_poll, [this] { PollProtection(); });
}

void AccessPoint::HandleDataFrame(const Frame& f) {
  if (!f.to_ds) return;
  auto it = clients_.find(f.addr2);
  if (it != clients_.end() && it->second.b_only) SenseBClient();
  wired_.DeliverFromWireless(index_, f.addr2, f.body);
}

void AccessPoint::OnFrame(const Frame& f) {
  switch (f.type) {
    case FrameType::kData:
      HandleDataFrame(f);
      return;
    case FrameType::kProbeRequest: {
      if (!f.body.empty() && (f.body[0] & kCapBOnly)) SenseBClient();
      // Probe response: unicast management, ACKed by the client.
      Bytes body(24, 0);
      body[1] = protection_active_ ? kErpProtection : 0;
      mac_.EnqueueManagement(FrameType::kProbeResponse, f.addr2,
                             mac_.address(), std::move(body));
      return;
    }
    case FrameType::kAuthentication: {
      // Open-system auth: echo success.
      if (f.addr1 != mac_.address()) return;
      mac_.EnqueueManagement(FrameType::kAuthentication, f.addr2,
                             mac_.address(), Bytes{0});
      return;
    }
    case FrameType::kAssocRequest: {
      if (f.addr1 != mac_.address()) return;
      ClientState st;
      st.b_only = !f.body.empty() && (f.body[0] & kCapBOnly);
      clients_[f.addr2] = st;
      if (st.b_only) SenseBClient();
      Bytes body(4, 0);
      body[1] = protection_active_ ? kErpProtection : 0;
      mac_.EnqueueManagement(FrameType::kAssocResponse, f.addr2,
                             mac_.address(), std::move(body));
      return;
    }
    case FrameType::kDeauthentication:
      clients_.erase(f.addr2);
      return;
    default:
      return;
  }
}

}  // namespace jig
