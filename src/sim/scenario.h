// Scenario construction: the simulated counterpart of the paper's
// deployment (Section 3) — a four-floor building blanketed with production
// APs, wireless clients with a realistic traffic mix, and a constellation
// of monitor pods, each two monitors of two radios.
//
// The default configuration mirrors the paper's shape at reduced time
// scale: ~40 APs on channels 1/6/11, 39 pods (156 radios), clients split
// ~85/15 between 802.11g and legacy 802.11b.  Everything is a knob; the
// benches dial counts and durations per experiment.
#pragma once

#include <memory>
#include <vector>

#include "phy/propagation.h"
#include "sim/access_point.h"
#include "sim/client.h"
#include "sim/monitor.h"
#include "sim/traffic.h"
#include "sim/truth.h"
#include "sim/wired.h"

namespace jig {

struct ScenarioConfig {
  std::uint64_t seed = 42;
  Micros duration = Seconds(30);

  BuildingModel building;
  PropagationConfig propagation;
  ClockConfig clock;
  WiredConfig wired;
  WorkloadConfig workload;
  ApConfig ap;
  double client_tx_power_dbm = 15.0;

  int aps_per_floor = 10;
  int pods_per_floor = 10;  // 4 floors * 10 = 40 pods minus one = paper's 39
  int total_pods_cap = 39;
  int clients = 60;
  double b_client_fraction = 0.15;

  // Restrict the deployment to the first N pods after redundancy-ordered
  // selection (Figure 7 sensitivity); -1 uses all pods.
  int pods_enabled = -1;

  // Broadband interferers (microwave ovens): expected bursts per minute
  // over the whole building; 0 disables.
  double noise_bursts_per_min = 6.0;
};

struct ClientInfo {
  MacAddress mac;
  Ipv4Addr ip = 0;
  Point3 position;
  bool b_only = false;
  std::uint16_t ap_index = 0;
  Channel channel = Channel::kCh1;
};

struct ApInfo {
  MacAddress mac;
  Point3 position;
  Channel channel = Channel::kCh1;
  std::uint16_t index = 0;
};

struct PodInfo {
  Point3 position;
  std::vector<RadioId> radios;
};

// Owns the full simulation; build, Run(), then harvest traces + oracles.
class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  // Runs the event loop to config.duration.
  void Run();
  // Runs to an intermediate point (callable repeatedly, ascending).
  void RunUntil(TrueMicros t);

  // Harvest (after Run): per-radio traces, sorted by local timestamp.
  TraceSet TakeTraces();

  const TruthLog& truth() const { return truth_; }
  const std::vector<WiredRecord>& wired_records() const {
    return wired_->sniffer();
  }
  const TrafficStats& traffic_stats() const { return traffic_->stats(); }
  const TrafficManager& traffic() const { return *traffic_; }

  const ScenarioConfig& config() const { return config_; }
  const std::vector<ClientInfo>& client_info() const { return client_info_; }
  const std::vector<ApInfo>& ap_info() const { return ap_info_; }
  const std::vector<PodInfo>& pod_info() const { return pod_info_; }

  // Roams client `i` to `pos`, re-associating with the strongest AP there
  // (at the current event time; schedule via events() for mid-run roams).
  void RoamClient(std::size_t i, Point3 pos);

  EventQueue& events() { return events_; }
  Client& client(std::size_t i) { return *clients_[i]; }
  AccessPoint& ap(std::size_t i) { return *aps_[i]; }
  std::size_t client_count() const { return clients_.size(); }
  std::size_t ap_count() const { return aps_.size(); }
  const PropagationModel& propagation() const { return propagation_; }

 private:
  void BuildAps();
  void BuildPods();
  void BuildClients();
  void ScheduleNoise();
  void ScheduleNoiseTick();
  Channel BestApFor(Point3 pos, double tx_power, std::uint16_t* ap_index,
                    double* rssi_out) const;

  ScenarioConfig config_;
  Rng rng_;
  EventQueue events_;
  PropagationModel propagation_;
  TruthLog truth_;
  Medium medium_;
  std::unique_ptr<WiredNetwork> wired_;
  std::vector<std::unique_ptr<AccessPoint>> aps_;
  std::vector<std::unique_ptr<Monitor>> monitors_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::unique_ptr<TrafficManager> traffic_;

  std::vector<ClientInfo> client_info_;
  std::vector<ApInfo> ap_info_;
  std::vector<PodInfo> pod_info_;
  bool started_ = false;
};

}  // namespace jig
