#include "sim/traffic.h"

#include <algorithm>

namespace jig {

const double kDiurnalProfile[24] = {
    0.10, 0.08, 0.06, 0.05, 0.05, 0.06, 0.10, 0.20,  // 00-07
    0.45, 0.70, 0.95, 1.00, 0.95, 0.90, 1.00, 0.95,  // 08-15
    0.85, 0.70, 0.50, 0.40, 0.32, 0.25, 0.18, 0.12,  // 16-23
};

TrafficManager::TrafficManager(EventQueue& events, WiredNetwork& wired,
                               std::vector<Client*> clients, Rng rng,
                               WorkloadConfig config, Micros duration,
                               TruthLog* truth)
    : events_(events),
      wired_(wired),
      clients_(std::move(clients)),
      rng_(rng),
      config_(config),
      duration_(duration),
      truth_(truth) {}

TcpConfig TrafficManager::TcpConfigFor(std::size_t client_idx) const {
  TcpConfig tcp = config_.tcp;
  tcp.cc_algorithm = ClientCc(client_idx);
  return tcp;
}

void TrafficManager::RecordFlowTruth(const Client& c,
                                     std::uint16_t client_port,
                                     Ipv4Addr server_ip,
                                     std::uint16_t server_port,
                                     CcAlgorithm cc) {
  if (!truth_) return;
  truth_->AddFlow(FlowTruth{c.ip(), server_ip, client_port, server_port, cc});
}

void TrafficManager::Start() {
  SetupServers();
  ScheduleClientSessions();
  events_.ScheduleIn(config_.arp_interval, [this] { ArpTick(); });
}

void TrafficManager::SetupServers() {
  for (int i = 0; i < config_.server_count; ++i) {
    auto server = std::make_unique<Server>();
    server->ip = ServerIp(i);
    Server* raw = server.get();
    wired_.RegisterServer(
        server->ip, [this, raw](const PacketInfo& info, Bytes) {
          if (!info.IsTcp()) return;
          const auto key = FlowKey(info.src_ip, info.dst_ip,
                                   info.tcp->src_port, info.tcp->dst_port);
          auto it = raw->flows.find(key);
          if (it != raw->flows.end()) {
            it->second.peer->OnSegmentReceived(*info.tcp);
          }
        });
    servers_.push_back(std::move(server));
  }
}

TcpPeer* TrafficManager::MakeServerPeer(Server& server, Ipv4Addr client_ip,
                                        std::uint16_t client_port,
                                        std::uint16_t server_port,
                                        const TcpConfig& tcp) {
  ServerFlow flow;
  flow.client_ip = client_ip;
  const Ipv4Addr server_ip = server.ip;
  flow.peer = std::make_unique<TcpPeer>(
      events_, rng_.Fork(server_port ^ client_port ^ client_ip), server_port,
      client_port, /*initiator=*/false, tcp,
      [this, server_ip, client_ip](const TcpSegment& seg) {
        wired_.SendToWireless(server_ip, client_ip,
                              BuildTcpFrameBody(server_ip, client_ip, seg));
      });
  TcpPeer* raw = flow.peer.get();
  server.flows[FlowKey(client_ip, server_ip, client_port, server_port)] =
      std::move(flow);
  return raw;
}

void TrafficManager::ScheduleClientSessions() {
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (!config_.diurnal) {
      // Staggered power-on in the first 5% of the run, then always active.
      const Micros on_at = rng_.NextInt(0, std::max<Micros>(duration_ / 20, 1));
      events_.Schedule(on_at, [this, i] {
        StartClientSession(i, duration_);
      });
      continue;
    }
    // Diurnal: draw session count and session windows from the profile.
    const int sessions = std::max<int>(
        1, static_cast<int>(rng_.NextExponential(config_.sessions_per_client) +
                            0.5));
    for (int s = 0; s < sessions; ++s) {
      // Rejection-sample a start hour from the profile.
      double hour;
      for (;;) {
        hour = rng_.NextDouble(0.0, 24.0);
        if (rng_.NextDouble() <
            kDiurnalProfile[static_cast<int>(hour) % 24]) {
          break;
        }
      }
      const Micros start =
          static_cast<Micros>(hour / 24.0 * static_cast<double>(duration_));
      const Micros length = static_cast<Micros>(
          rng_.NextExponential(config_.session_mean_fraction) *
          static_cast<double>(duration_));
      const Micros end = std::min(duration_, start + std::max<Micros>(
          length, duration_ / 100));
      events_.Schedule(start, [this, i, end] { StartClientSession(i, end); });
    }
  }
}

void TrafficManager::StartClientSession(std::size_t client_idx,
                                        Micros session_end) {
  Client& c = *clients_[client_idx];
  if (!c.powered()) {
    c.set_on_associated([this, client_idx, session_end] {
      ScheduleNextFlow(client_idx, session_end);
    });
    c.PowerOn();
    events_.Schedule(session_end, [this, client_idx] {
      clients_[client_idx]->PowerOff();
    });
  } else {
    ScheduleNextFlow(client_idx, session_end);
  }
}

void TrafficManager::ScheduleNextFlow(std::size_t client_idx,
                                      Micros session_end) {
  const double per_min = config_.web_per_min + config_.scp_per_min +
                         config_.ssh_per_min +
                         config_.office_broadcast_per_min;
  if (per_min <= 0.0) return;
  const Micros gap = static_cast<Micros>(
      rng_.NextExponential(60.0 / per_min) * kMicrosPerSecond);
  const TrueMicros at = events_.now() + std::max<Micros>(gap, 1000);
  if (at >= session_end) return;
  events_.Schedule(at, [this, client_idx, session_end] {
    LaunchFlow(client_idx, session_end);
    ScheduleNextFlow(client_idx, session_end);
  });
}

void TrafficManager::LaunchFlow(std::size_t client_idx, Micros session_end) {
  Client& c = *clients_[client_idx];
  if (!c.associated()) return;
  const double total = config_.web_per_min + config_.scp_per_min +
                       config_.ssh_per_min + config_.office_broadcast_per_min;
  const TcpConfig tcp = TcpConfigFor(client_idx);
  const double pick = rng_.NextDouble(0.0, total);
  if (pick < config_.web_per_min) {
    LaunchWebFlow(c, tcp);
  } else if (pick < config_.web_per_min + config_.scp_per_min) {
    LaunchScpFlow(c, tcp);
  } else if (pick <
             config_.web_per_min + config_.scp_per_min + config_.ssh_per_min) {
    LaunchSshSession(c, tcp, session_end);
  } else {
    // MS-Office-style license broadcast to UDP port 2222 (footnote 6).
    c.SendUdpBroadcast(2222, 2222, 180);
    ++stats_.office_broadcasts;
  }
}

void TrafficManager::LaunchWebFlow(Client& c, const TcpConfig& tcp) {
  Server& server = *servers_[rng_.NextBelow(servers_.size())];
  const std::uint16_t client_port = next_ephemeral_port_++;
  const std::uint16_t server_port = 80;
  TcpPeer* srv =
      MakeServerPeer(server, c.ip(), client_port, server_port, tcp);
  TcpPeer* cli = c.OpenFlow(server.ip, server_port, client_port, tcp,
                            rng_.Fork(client_port));
  RecordFlowTruth(c, client_port, server.ip, server_port, tcp.cc_algorithm);
  const auto bytes = static_cast<std::uint64_t>(rng_.NextHeavyTail(
      config_.web_min_bytes, config_.web_cap_bytes, config_.web_alpha));
  // Request upstream, response downstream.
  cli->set_on_connected([cli] { cli->SendData(300); });
  srv->set_on_connected([srv, bytes] { srv->SendData(bytes); });
  srv->set_on_transfer_done([this, srv] {
    ++stats_.flows_completed;
    srv->Close();
  });
  cli->StartConnect();
  ++stats_.flows_started;
  ++stats_.web_flows;
}

void TrafficManager::LaunchScpFlow(Client& c, const TcpConfig& tcp) {
  Server& server = *servers_[rng_.NextBelow(servers_.size())];
  const std::uint16_t client_port = next_ephemeral_port_++;
  const std::uint16_t server_port = 22;
  TcpPeer* srv = MakeServerPeer(server, c.ip(), client_port, server_port, tcp);
  TcpPeer* cli = c.OpenFlow(server.ip, server_port, client_port, tcp,
                            rng_.Fork(client_port));
  RecordFlowTruth(c, client_port, server.ip, server_port, tcp.cc_algorithm);
  const auto bytes = static_cast<std::uint64_t>(rng_.NextHeavyTail(
      config_.scp_min_bytes, config_.scp_cap_bytes, config_.scp_alpha));
  const bool upload = rng_.NextBool(0.5);
  if (upload) {
    cli->set_on_connected([cli, bytes] { cli->SendData(bytes); });
    cli->set_on_transfer_done([this, cli] {
      ++stats_.flows_completed;
      cli->Close();
    });
  } else {
    srv->set_on_connected([srv, bytes] { srv->SendData(bytes); });
    srv->set_on_transfer_done([this, srv] {
      ++stats_.flows_completed;
      srv->Close();
    });
  }
  cli->StartConnect();
  ++stats_.flows_started;
  ++stats_.scp_flows;
}

void TrafficManager::LaunchSshSession(Client& c, const TcpConfig& tcp,
                                      Micros session_end) {
  Server& server = *servers_[rng_.NextBelow(servers_.size())];
  const std::uint16_t client_port = next_ephemeral_port_++;
  const std::uint16_t server_port = 22;
  TcpPeer* srv = MakeServerPeer(server, c.ip(), client_port, server_port, tcp);
  TcpPeer* cli = c.OpenFlow(server.ip, server_port, client_port, tcp,
                            rng_.Fork(client_port));
  RecordFlowTruth(c, client_port, server.ip, server_port, tcp.cc_algorithm);
  const Micros chat_len = static_cast<Micros>(
      rng_.NextExponential(config_.ssh_session_mean_s) * kMicrosPerSecond);
  const TrueMicros until =
      std::min<TrueMicros>(events_.now() + chat_len, session_end);
  cli->set_on_connected([this, cli, srv, until] {
    SshChatStep(cli, srv, until);
  });
  cli->StartConnect();
  ++stats_.flows_started;
  ++stats_.ssh_sessions;
}

void TrafficManager::SshChatStep(TcpPeer* client_peer, TcpPeer* server_peer,
                                 TrueMicros until) {
  if (events_.now() >= until || client_peer->closed() ||
      server_peer->closed()) {
    ++stats_.flows_completed;
    client_peer->Close();
    return;
  }
  // Keystroke burst upstream, echo/output downstream.
  client_peer->SendData(rng_.NextInt(20, 200));
  server_peer->SendData(rng_.NextInt(60, 1200));
  const Micros think = static_cast<Micros>(
      rng_.NextExponential(2.0) * kMicrosPerSecond);
  events_.ScheduleIn(std::max<Micros>(think, Milliseconds(100)),
                     [this, client_peer, server_peer, until] {
                       SshChatStep(client_peer, server_peer, until);
                     });
}

void TrafficManager::ArpTick() {
  // Vernier-style tracker ARPs every registered (associated) client.
  for (Client* c : clients_) {
    if (!c->associated()) continue;
    ArpMessage arp;
    arp.is_request = true;
    arp.sender_ip = TrackerIp();
    arp.target_ip = c->ip();
    wired_.BroadcastToAir(BuildArpFrameBody(arp));
    ++stats_.arp_broadcasts;
  }
  events_.ScheduleIn(config_.arp_interval, [this] { ArpTick(); });
}

}  // namespace jig
