// The shared wireless medium: transmission lifecycle, per-listener RSSI,
// interference accounting, and broadband noise bursts.
//
// Wireless is a broadcast channel with spatial diversity (paper Section 4):
// every transmission is offered to every co-channel listener, each of which
// hears it at its own signal level and against its own interference.  The
// medium delivers two callbacks per transmission per listener — start (for
// carrier sense) and end (with a reception outcome) — and accumulates
// overlap interference so hidden-terminal collisions corrupt frames at the
// receivers that matter while distant monitors log them cleanly.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include <optional>

#include "phy/propagation.h"
#include "sim/event_queue.h"
#include "sim/truth.h"
#include "util/rng.h"
#include "wifi/channel.h"
#include "wifi/frame.h"

namespace jig {

using TxId = std::uint64_t;

// One frame on the air.
struct Transmission {
  TxId id = 0;
  Frame frame;
  Bytes wire;  // serialized bytes with valid FCS
  MacAddress transmitter;
  Point3 position;
  double power_dbm = 15.0;
  Channel channel = Channel::kCh1;
  TrueMicros start = 0;
  TrueMicros end = 0;
};

class MediumListener {
 public:
  virtual ~MediumListener() = default;

  virtual Point3 position() const = 0;
  virtual Channel channel() const = 0;

  // Stations return their MAC address; passive monitors return nullopt.
  // The medium uses this only to attribute ground-truth delivery outcomes.
  virtual std::optional<MacAddress> mac_address() const {
    return std::nullopt;
  }

  // Energy from `tx` became detectable (rssi above the carrier-sense or
  // detection floor).  Listeners use this for carrier sense.
  virtual void OnTxStart(const Transmission& tx, double rssi_dbm) = 0;

  // The transmission ended; `outcome` is this listener's reception result
  // including interference from everything that overlapped it.
  virtual void OnTxEnd(const Transmission& tx, double rssi_dbm,
                       RxOutcome outcome) = 0;

  // A broadband noise burst became audible at this listener.  Default:
  // ignore.  Monitors log a PHY-error event (noise is nearly half of all
  // logged events in the paper's trace); stations rely on frame corruption.
  virtual void OnNoise(TrueMicros /*start*/, Micros /*duration*/,
                       double /*rssi_dbm*/) {}
};

// A stationary broadband interferer (microwave oven analog): while active it
// adds interference power at co-located listeners on all channels and, when
// strong enough at a monitor, produces PHY-error log events.
struct NoiseBurst {
  Point3 position;
  double power_dbm = 20.0;
  TrueMicros start = 0;
  TrueMicros end = 0;
};

class Medium {
 public:
  // `truth` (optional) receives a ground-truth entry per transmission.
  Medium(EventQueue& events, const PropagationModel& propagation, Rng rng,
         TruthLog* truth = nullptr)
      : events_(events), propagation_(propagation), rng_(rng),
        truth_(truth) {}

  // Listeners must outlive the medium; registration order is stable.
  void AddListener(MediumListener* listener);

  // Begins a transmission now.  The returned id identifies it in callbacks.
  // `origin` (if non-null) is excluded from its own callbacks.
  TxId Transmit(Frame frame, MacAddress transmitter, Point3 position,
                double power_dbm, Channel channel,
                const MediumListener* origin);

  // Starts a broadband noise burst now, lasting `duration`.
  void EmitNoise(Point3 position, double power_dbm, Micros duration);

  // Number of transmissions currently on the air on `ch`.
  int ActiveCount(Channel ch) const;

  std::uint64_t transmissions_started() const { return next_tx_id_ - 1; }

 private:
  struct PerListener {
    MediumListener* listener = nullptr;
    double rssi_dbm = -300.0;
    double interference_mw = 0.0;  // accumulated from overlapping traffic
    bool announced = false;        // OnTxStart delivered
  };
  struct ActiveTx {
    Transmission tx;
    std::vector<PerListener> receivers;
    const MediumListener* origin = nullptr;
  };
  struct ActiveNoise {
    NoiseBurst burst;
  };

  void FinishTransmission(std::uint64_t key);

  EventQueue& events_;
  const PropagationModel& propagation_;
  Rng rng_;
  TruthLog* truth_ = nullptr;
  std::vector<MediumListener*> listeners_;
  std::unordered_map<std::uint64_t, ActiveTx> active_;
  std::vector<ActiveNoise> noise_;
  TxId next_tx_id_ = 1;
};

}  // namespace jig
