#include "sim/cc/reno.h"

#include <algorithm>

namespace jig {

void RenoCc::OnAck(const CcAck& ack) {
  // Growth is frozen while a fast-recovery episode is open, exactly as the
  // pre-refactor TcpPeer did.
  if (ack.in_recovery) return;
  if (cwnd_ < ssthresh_) {
    cwnd_ += 1.0;
  } else {
    cwnd_ += 1.0 / cwnd_;
  }
  cwnd_ = std::min(cwnd_, config_.max_cwnd_segments);
}

void RenoCc::OnDupAck(int dupack_count, std::uint64_t inflight_bytes,
                      bool in_recovery) {
  if (dupack_count != 3 || in_recovery) return;
  const double inflight_segs =
      static_cast<double>(inflight_bytes) / config_.mss;
  ssthresh_ = std::max(inflight_segs / 2.0, kMinSsthreshSegments);
  cwnd_ = ssthresh_;
}

void RenoCc::OnRtoTimeout(std::uint64_t inflight_bytes) {
  const double inflight_segs =
      static_cast<double>(inflight_bytes) / config_.mss;
  ssthresh_ = std::max(inflight_segs / 2.0, kMinSsthreshSegments);
  cwnd_ = 1.0;
}

void RenoCc::OnRttSample(Micros /*rtt*/, TrueMicros /*now*/) {}

}  // namespace jig
