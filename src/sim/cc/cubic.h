// CUBIC congestion control (RFC 8312).
//
// Window growth in congestion avoidance follows the cubic curve
// W_cubic(t) = C*(t - K)^3 + W_max anchored at the window before the last
// reduction: concave recovery toward W_max, a plateau around it, then
// convex probing beyond — which is what makes CUBIC's loss signature over
// a wireless hop visibly different from Reno's sawtooth.  Includes the
// TCP-friendly region (never slower than an equivalent AIMD flow) and
// fast convergence (release bandwidth faster when the path shrinks).
//
// Units: the curve operates in segments and seconds, C = 0.4, beta = 0.7.
#pragma once

#include "sim/cc/congestion_control.h"

namespace jig {

class CubicCc : public CongestionControl {
 public:
  explicit CubicCc(const CcConfig& config, bool fast_convergence = true)
      : CongestionControl(config),
        fast_convergence_(fast_convergence),
        cwnd_(config.initial_cwnd_segments),
        ssthresh_(config.initial_ssthresh_segments) {}

  void OnAck(const CcAck& ack) override;
  void OnDupAck(int dupack_count, std::uint64_t inflight_bytes,
                bool in_recovery) override;
  void OnRtoTimeout(std::uint64_t inflight_bytes) override;
  void OnRttSample(Micros rtt, TrueMicros now) override;

  double CwndBytes() const override { return cwnd_ * config_.mss; }
  const char* Name() const override { return "cubic"; }
  double SsthreshSegments() const override { return ssthresh_; }

  // Test/analysis introspection.
  double w_max_segments() const { return w_max_; }
  double k_seconds() const { return k_; }
  bool in_epoch() const { return epoch_start_ >= 0; }

 private:
  void ReduceOnLoss();

  static constexpr double kBeta = 0.7;  // RFC 8312 multiplicative decrease
  static constexpr double kC = 0.4;     // cubic scaling (segments/s^3)

  bool fast_convergence_;
  double cwnd_;      // segments
  double ssthresh_;  // segments

  // Cubic epoch state, reset on every loss event.
  TrueMicros epoch_start_ = -1;  // -1: no epoch open
  double w_max_ = 0.0;           // window at last reduction (segments)
  double w_last_max_ = 0.0;      // previous W_max (fast convergence)
  double k_ = 0.0;               // time to reach W_max again (seconds)
  double w_est_ = 0.0;           // TCP-friendly AIMD estimate (segments)
  double srtt_s_ = 0.0;          // latest smoothed RTT (seconds)
  TrueMicros last_ack_at_ = 0;   // idle detection (epoch restart)
};

}  // namespace jig
