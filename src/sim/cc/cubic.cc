#include "sim/cc/cubic.h"

#include <algorithm>
#include <cmath>

namespace jig {

void CubicCc::OnRttSample(Micros rtt, TrueMicros /*now*/) {
  const double sample_s = static_cast<double>(rtt) / 1e6;
  srtt_s_ = srtt_s_ == 0.0 ? sample_s : 0.875 * srtt_s_ + 0.125 * sample_s;
}

void CubicCc::OnAck(const CcAck& ack) {
  if (ack.in_recovery) return;
  // Application-idle gaps must not advance the cubic clock: with the
  // epoch left open, t keeps growing while nothing is sent and the first
  // ACK after a 30 s ssh think-time would vault cwnd to the cap in one
  // step.  Restart the epoch from the current window instead (W_max is
  // kept, so growth resumes on the concave approach).
  if (last_ack_at_ > 0 &&
      ack.now - last_ack_at_ >
          std::max<Micros>(Seconds(1),
                           static_cast<Micros>(2e6 * srtt_s_))) {
    epoch_start_ = -1;
  }
  last_ack_at_ = ack.now;
  if (cwnd_ < ssthresh_) {
    cwnd_ = std::min(cwnd_ + 1.0, config_.max_cwnd_segments);
    return;
  }

  // Congestion avoidance on the cubic curve (RFC 8312 §4.1–4.3).
  if (epoch_start_ < 0) {
    epoch_start_ = ack.now;
    if (w_max_ < cwnd_) {
      // No anchor above us (e.g. slow-start overshoot): restart the curve
      // from here, in the convex (probing) region immediately.
      w_max_ = cwnd_;
      k_ = 0.0;
    } else {
      k_ = std::cbrt((w_max_ - cwnd_) / kC);
    }
    w_est_ = cwnd_;
  }
  const double t = static_cast<double>(ack.now - epoch_start_) / 1e6;
  const double rtt_s = srtt_s_;
  const double target =
      kC * std::pow(t + rtt_s - k_, 3.0) + w_max_;  // W_cubic(t + RTT)

  // TCP-friendly region: emulate an AIMD flow with the same loss history
  // (RFC 8312 §4.2): per ACK, W_est += 3(1-β)/(1+β) * acked/cwnd (the
  // /cwnd converts the per-RTT slope to per-ACK).
  const double acked_segs =
      std::max(1.0, static_cast<double>(ack.acked_bytes) / config_.mss);
  w_est_ += 3.0 * (1.0 - kBeta) / (1.0 + kBeta) * acked_segs / cwnd_;

  if (target > cwnd_) {
    cwnd_ += (target - cwnd_) / cwnd_;
  } else {
    cwnd_ += 0.01 / cwnd_;  // minimal growth in the plateau region
  }
  cwnd_ = std::max(cwnd_, w_est_);
  cwnd_ = std::min(cwnd_, config_.max_cwnd_segments);
}

void CubicCc::ReduceOnLoss() {
  epoch_start_ = -1;
  w_max_ = cwnd_;
  if (fast_convergence_ && w_max_ < w_last_max_) {
    // The path shrank: remember the smaller peak and release capacity
    // sooner than a full cubic epoch would (RFC 8312 §4.6).
    w_last_max_ = w_max_;
    w_max_ = w_max_ * (1.0 + kBeta) / 2.0;
  } else {
    w_last_max_ = w_max_;
  }
  ssthresh_ = std::max(cwnd_ * kBeta, kMinSsthreshSegments);
}

void CubicCc::OnDupAck(int dupack_count, std::uint64_t /*inflight_bytes*/,
                       bool in_recovery) {
  if (dupack_count != 3 || in_recovery) return;
  ReduceOnLoss();
  cwnd_ = ssthresh_;
}

void CubicCc::OnRtoTimeout(std::uint64_t /*inflight_bytes*/) {
  ReduceOnLoss();
  cwnd_ = 1.0;
}

}  // namespace jig
