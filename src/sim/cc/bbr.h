// BBR congestion control (model-based, v1-style).
//
// Instead of reacting to loss, BBR builds an explicit model of the path —
// a windowed-max filter over delivery-rate samples estimates the
// bottleneck bandwidth, a windowed-min filter over RTT samples estimates
// the propagation delay — and paces transmission at a gain times the
// estimated bandwidth while capping inflight at a gain times the BDP.
// State machine: STARTUP (2.885x gain, exponential search) until the
// bandwidth filter plateaus for three rounds, DRAIN back down to the BDP,
// then PROBE_BW cycling gains [1.25, 0.75, 1, 1, 1, 1, 1, 1] one
// min-RTT per phase, with a periodic PROBE_RTT floor-probe.
//
// Because loss barely factors into the model, a BBR sender over a lossy
// wireless hop keeps its rate where loss-based senders collapse — exactly
// the cross-CC contrast the analysis layer studies (see PAPERS.md: BBR
// evaluation and coexistence literature).
#pragma once

#include <deque>

#include "sim/cc/congestion_control.h"

namespace jig {

class BbrCc : public CongestionControl {
 public:
  enum class State : std::uint8_t { kStartup, kDrain, kProbeBw, kProbeRtt };

  explicit BbrCc(const CcConfig& config) : CongestionControl(config) {}

  void OnAck(const CcAck& ack) override;
  void OnDupAck(int dupack_count, std::uint64_t inflight_bytes,
                bool in_recovery) override;
  void OnRtoTimeout(std::uint64_t inflight_bytes) override;
  void OnRttSample(Micros rtt, TrueMicros now) override;

  double CwndBytes() const override;
  double PacingRateBps() const override;
  const char* Name() const override { return "bbr"; }

  // Model introspection for tests and analysis tooling.
  State state() const { return state_; }
  double bottleneck_bw_Bps() const;  // bytes/sec, 0 until samples arrive
  Micros min_rtt() const { return min_rtt_us_; }
  int probe_bw_cycle_index() const { return cycle_index_; }
  std::uint64_t round_count() const { return round_count_; }

  static constexpr double kHighGain = 2.885;  // 2/ln(2)
  static constexpr double kDrainGain = 1.0 / kHighGain;
  static constexpr double kCycleGains[8] = {1.25, 0.75, 1.0, 1.0,
                                            1.0,  1.0,  1.0, 1.0};

 private:
  void AdvanceRound(const CcAck& ack);
  void SampleBandwidth(const CcAck& ack);
  void UpdateState(const CcAck& ack);
  double Bdp() const;  // bytes; 0 until the model has both estimates
  double PacingGain() const;
  double CwndGain() const;

  static constexpr int kBwWindowRounds = 10;
  static constexpr Micros kMinRttWindow = Seconds(10);
  static constexpr Micros kProbeRttDuration = Milliseconds(200);
  static constexpr double kFullBwGrowthThresh = 1.25;
  static constexpr int kFullBwPlateauRounds = 3;

  State state_ = State::kStartup;

  // Delivery accounting and round counting (a "round" is one delivery of
  // everything that was in flight when the previous round ended).
  std::uint64_t delivered_ = 0;
  std::uint64_t next_round_delivered_ = 0;
  std::uint64_t round_count_ = 0;
  bool round_advanced_ = false;  // true for the OnAck that closed a round

  // Delivery-rate samples: (time, delivered) pairs spanning roughly one
  // min-RTT, from which each ACK derives a bandwidth sample.
  std::deque<std::pair<TrueMicros, std::uint64_t>> rate_samples_;

  // Windowed max-filter over bandwidth samples (bytes/sec), keyed by round.
  std::deque<std::pair<std::uint64_t, double>> bw_filter_;

  // Windowed min-filter over RTT.
  Micros min_rtt_us_ = 0;  // 0 = no sample yet
  TrueMicros min_rtt_stamp_ = 0;

  // STARTUP plateau detection.
  double full_bw_ = 0.0;
  int full_bw_rounds_ = 0;
  bool full_bw_reached_ = false;

  // PROBE_BW gain cycling.
  int cycle_index_ = 0;
  TrueMicros cycle_stamp_ = 0;

  // PROBE_RTT bookkeeping.
  TrueMicros probe_rtt_done_at_ = 0;

  bool rto_collapsed_ = false;
};

}  // namespace jig
