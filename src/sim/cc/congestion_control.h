// Pluggable congestion control for the TCP-lite workload endpoints.
//
// Jigsaw's transport reconstruction (paper Sections 5.2, 7.4) infers
// link-layer behavior from TCP side effects, so the loss/retransmission
// signature of the simulated workload is an experimental variable, not an
// implementation detail: loss-based senders (Reno, CUBIC) and model-based
// senders (BBR) react to the same wireless loss process in very different
// ways, and mixed-algorithm cells expose coexistence effects the analysis
// layer should be able to study.  TcpPeer owns reliability (sequencing,
// retransmission, RTO timers) and delegates every cwnd/ssthresh/pacing
// decision to this interface.
//
// Contract with TcpPeer:
//  * OnRttSample fires before OnAck for an ACK that produced a valid
//    (Karn-filtered) RTT measurement.
//  * OnAck fires once per cumulative ACK that advances snd_una, after the
//    fast-recovery episode state has been updated.
//  * OnDupAck fires once per duplicate ACK with the running duplicate
//    count; count == 3 outside recovery is the loss event (TcpPeer enters
//    fast retransmit immediately after the call returns).
//  * OnRtoTimeout fires on a data-retransmission timeout.
//  * CwndBytes gates transmission (inflight < CwndBytes); PacingRateBps
//    additionally spaces segment departures when it returns > 0.
#pragma once

#include <cstdint>
#include <memory>

#include "util/time.h"

namespace jig {

enum class CcAlgorithm : std::uint8_t { kReno, kCubic, kBbr };

const char* CcAlgorithmName(CcAlgorithm algo);

// Derived from TcpConfig by TcpPeer; windows are in segments to match the
// rest of the simulator's TCP knobs.
struct CcConfig {
  std::uint32_t mss = 1460;
  double initial_cwnd_segments = 2.0;
  double max_cwnd_segments = 64.0;
  double initial_ssthresh_segments = 32.0;
};

// RFC 5681 §3.1: ssthresh never collapses below 2 segments, so a sender
// that loses repeatedly can still clock itself out of trouble.
constexpr double kMinSsthreshSegments = 2.0;

struct CcAck {
  std::uint64_t acked_bytes = 0;     // newly acknowledged by this ACK
  std::uint64_t inflight_bytes = 0;  // outstanding after the ACK
  bool in_recovery = false;          // fast-recovery episode still open
  TrueMicros now = 0;
};

class CongestionControl {
 public:
  explicit CongestionControl(const CcConfig& config) : config_(config) {}
  virtual ~CongestionControl() = default;

  virtual void OnAck(const CcAck& ack) = 0;
  virtual void OnDupAck(int dupack_count, std::uint64_t inflight_bytes,
                        bool in_recovery) = 0;
  virtual void OnRtoTimeout(std::uint64_t inflight_bytes) = 0;
  virtual void OnRttSample(Micros rtt, TrueMicros now) = 0;

  virtual double CwndBytes() const = 0;
  // Segment departure rate; 0 disables pacing (pure window limiting).
  virtual double PacingRateBps() const { return 0.0; }
  virtual const char* Name() const = 0;

  // Introspection for tests and analysis tooling.
  double CwndSegments() const { return CwndBytes() / config_.mss; }
  virtual double SsthreshSegments() const { return 0.0; }

  const CcConfig& config() const { return config_; }

 protected:
  CcConfig config_;
};

std::unique_ptr<CongestionControl> MakeCongestionControl(
    CcAlgorithm algo, const CcConfig& config);

}  // namespace jig
