// Reno congestion control (RFC 5681) — the loss response that was inlined
// in TcpPeer before the cc/ subsystem existed, extracted verbatim so the
// default workload's cwnd trajectory is bit-identical to the pre-refactor
// simulator (tests/cc_test.cc proves parity against a reference model).
//
// Slow start below ssthresh (+1 segment per ACK), AIMD above it
// (+1/cwnd per ACK), halving to max(inflight/2, 2) on triple duplicate
// ACKs, and collapse to 1 segment on RTO.  Window growth freezes during a
// fast-recovery episode, matching the original TcpPeer behaviour.
#pragma once

#include "sim/cc/congestion_control.h"

namespace jig {

class RenoCc : public CongestionControl {
 public:
  explicit RenoCc(const CcConfig& config)
      : CongestionControl(config),
        cwnd_(config.initial_cwnd_segments),
        ssthresh_(config.initial_ssthresh_segments) {}

  void OnAck(const CcAck& ack) override;
  void OnDupAck(int dupack_count, std::uint64_t inflight_bytes,
                bool in_recovery) override;
  void OnRtoTimeout(std::uint64_t inflight_bytes) override;
  void OnRttSample(Micros rtt, TrueMicros now) override;

  double CwndBytes() const override { return cwnd_ * config_.mss; }
  const char* Name() const override { return "reno"; }
  double SsthreshSegments() const override { return ssthresh_; }

 private:
  double cwnd_;      // segments
  double ssthresh_;  // segments
};

}  // namespace jig
