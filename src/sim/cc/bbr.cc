#include "sim/cc/bbr.h"

#include <algorithm>

namespace jig {

constexpr double BbrCc::kCycleGains[8];

double BbrCc::bottleneck_bw_Bps() const {
  // The filter deque is monotonic decreasing: the front is the max.
  return bw_filter_.empty() ? 0.0 : bw_filter_.front().second;
}

double BbrCc::Bdp() const {
  const double bw = bottleneck_bw_Bps();
  if (bw <= 0.0 || min_rtt_us_ <= 0) return 0.0;
  return bw * (static_cast<double>(min_rtt_us_) / 1e6);
}

double BbrCc::PacingGain() const {
  switch (state_) {
    case State::kStartup:
      return kHighGain;
    case State::kDrain:
      return kDrainGain;
    case State::kProbeBw:
      return kCycleGains[cycle_index_];
    case State::kProbeRtt:
      return 1.0;
  }
  return 1.0;
}

double BbrCc::CwndGain() const {
  switch (state_) {
    case State::kStartup:
    case State::kDrain:
      return kHighGain;
    default:
      return 2.0;
  }
}

double BbrCc::CwndBytes() const {
  const double mss = config_.mss;
  if (rto_collapsed_) return mss;
  if (state_ == State::kProbeRtt) return 4.0 * mss;
  const double bdp = Bdp();
  double cwnd = bdp > 0.0 ? CwndGain() * bdp
                          : CwndGain() * config_.initial_cwnd_segments * mss;
  cwnd = std::max(cwnd, 4.0 * mss);
  return std::min(cwnd, config_.max_cwnd_segments * mss);
}

double BbrCc::PacingRateBps() const {
  const double bw = bottleneck_bw_Bps();
  if (bw <= 0.0) return 0.0;  // unpaced until the model has an estimate
  return PacingGain() * bw * 8.0;
}

void BbrCc::OnRttSample(Micros rtt, TrueMicros now) {
  // A stale filter is NOT refreshed here with whatever (queue-inflated)
  // sample happens by — UpdateState must first drain inflight in
  // PROBE_RTT so the sample can reach the propagation floor.  Accept the
  // expiry refresh only in the second half of the probe window, after the
  // 4-segment cwnd cap has had >= 100 ms to empty the bottleneck queue.
  const bool drained_in_probe =
      state_ == State::kProbeRtt &&
      now >= probe_rtt_done_at_ - kProbeRttDuration / 2;
  if (min_rtt_us_ == 0 || rtt <= min_rtt_us_ || drained_in_probe) {
    min_rtt_us_ = rtt;
    min_rtt_stamp_ = now;
  }
}

void BbrCc::AdvanceRound(const CcAck& ack) {
  round_advanced_ = false;
  if (delivered_ >= next_round_delivered_) {
    // Everything in flight at the previous round edge has been delivered;
    // what is in flight now defines the next edge.
    next_round_delivered_ = delivered_ + ack.inflight_bytes;
    ++round_count_;
    round_advanced_ = true;
  }
}

void BbrCc::SampleBandwidth(const CcAck& ack) {
  rate_samples_.emplace_back(ack.now, delivered_);
  const Micros window = std::max<Micros>(min_rtt_us_, Milliseconds(5));
  while (rate_samples_.size() >= 2 &&
         rate_samples_[1].first <= ack.now - window) {
    rate_samples_.pop_front();
  }
  const auto& oldest = rate_samples_.front();
  if (ack.now <= oldest.first) return;
  const double bw = static_cast<double>(delivered_ - oldest.second) /
                    (static_cast<double>(ack.now - oldest.first) / 1e6);
  // Windowed max over the last kBwWindowRounds rounds, monotonic deque.
  while (!bw_filter_.empty() && bw_filter_.back().second <= bw) {
    bw_filter_.pop_back();
  }
  bw_filter_.emplace_back(round_count_, bw);
  while (!bw_filter_.empty() &&
         bw_filter_.front().first + kBwWindowRounds < round_count_) {
    bw_filter_.pop_front();
  }
}

void BbrCc::UpdateState(const CcAck& ack) {
  // STARTUP exit: the bandwidth filter stopped growing >= 25% per round
  // for three consecutive rounds — the pipe is full.
  if (state_ == State::kStartup && round_advanced_) {
    const double bw = bottleneck_bw_Bps();
    if (bw >= full_bw_ * kFullBwGrowthThresh) {
      full_bw_ = bw;
      full_bw_rounds_ = 0;
    } else if (++full_bw_rounds_ >= kFullBwPlateauRounds) {
      full_bw_reached_ = true;
      state_ = State::kDrain;
    }
  }
  if (state_ == State::kDrain && ack.inflight_bytes <= Bdp()) {
    state_ = State::kProbeBw;
    cycle_index_ = 0;
    cycle_stamp_ = ack.now;
  }
  if (state_ == State::kProbeBw && min_rtt_us_ > 0 &&
      ack.now - cycle_stamp_ >= min_rtt_us_) {
    cycle_index_ = (cycle_index_ + 1) % 8;
    cycle_stamp_ = ack.now;
  }
  // PROBE_RTT: the min-RTT estimate is stale; briefly drain to a tiny
  // window so queueing delay cannot mask the propagation floor.
  if (state_ != State::kProbeRtt && min_rtt_us_ > 0 &&
      ack.now - min_rtt_stamp_ > kMinRttWindow) {
    state_ = State::kProbeRtt;
    probe_rtt_done_at_ = ack.now + kProbeRttDuration;
  } else if (state_ == State::kProbeRtt && ack.now >= probe_rtt_done_at_) {
    min_rtt_stamp_ = ack.now;
    if (full_bw_reached_) {
      state_ = State::kProbeBw;
      cycle_index_ = 0;
      cycle_stamp_ = ack.now;
    } else {
      state_ = State::kStartup;
    }
  }
}

void BbrCc::OnAck(const CcAck& ack) {
  rto_collapsed_ = false;
  delivered_ += ack.acked_bytes;
  AdvanceRound(ack);
  SampleBandwidth(ack);
  UpdateState(ack);
}

void BbrCc::OnDupAck(int /*dupack_count*/, std::uint64_t /*inflight_bytes*/,
                     bool /*in_recovery*/) {
  // BBR v1 does not react to isolated losses; the model absorbs them.
}

void BbrCc::OnRtoTimeout(std::uint64_t /*inflight_bytes*/) {
  // Conservation on timeout: one segment until delivery resumes, then the
  // model-based window is restored (BBR v1 keeps its path model).
  rto_collapsed_ = true;
}

}  // namespace jig
