#include "sim/cc/congestion_control.h"

#include "sim/cc/bbr.h"
#include "sim/cc/cubic.h"
#include "sim/cc/reno.h"

namespace jig {

const char* CcAlgorithmName(CcAlgorithm algo) {
  switch (algo) {
    case CcAlgorithm::kReno:
      return "reno";
    case CcAlgorithm::kCubic:
      return "cubic";
    case CcAlgorithm::kBbr:
      return "bbr";
  }
  return "unknown";
}

std::unique_ptr<CongestionControl> MakeCongestionControl(
    CcAlgorithm algo, const CcConfig& config) {
  switch (algo) {
    case CcAlgorithm::kCubic:
      return std::make_unique<CubicCc>(config);
    case CcAlgorithm::kBbr:
      return std::make_unique<BbrCc>(config);
    case CcAlgorithm::kReno:
      break;
  }
  return std::make_unique<RenoCc>(config);
}

}  // namespace jig
