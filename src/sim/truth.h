// Ground-truth log of every air transmission.
//
// The simulator's privileged viewpoint: what actually happened on the air,
// with true timestamps and true delivery outcomes.  The paper approximated
// this with oracle experiments (an instrumented laptop, a wired-side trace —
// Section 6); we have the real thing, and use it to validate synchronization
// accuracy, coverage, delivery inference, and the interference estimator.
// Nothing in src/jigsaw may read this — it exists for tests and benches.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/cc/congestion_control.h"
#include "util/time.h"
#include "wifi/channel.h"
#include "wifi/frame.h"
#include "wifi/packet.h"

namespace jig {

struct TruthEntry {
  std::uint64_t tx_id = 0;
  TrueMicros start = 0;
  TrueMicros end = 0;
  Channel channel = Channel::kCh1;
  FrameType type = FrameType::kData;
  MacAddress transmitter;
  MacAddress receiver;
  std::uint16_t sequence = 0;
  bool retry = false;
  std::uint32_t wire_len = 0;
  std::uint64_t digest = 0;  // ContentDigest of the wire bytes
  // Did the addressed receiver decode this transmission?  (False for
  // broadcast, where no single receiver defines success.)
  bool delivered_ok = false;
  // Did any other same-channel transmission or noise burst overlap this one
  // at the addressed receiver?
  bool interfered = false;
  // Monitoring-platform visibility: how many monitor radios decoded this
  // transmission cleanly / detected it at all.  This is the ground truth
  // behind the paper's laptop-oracle coverage experiment (Section 6).
  int monitors_ok = 0;
  int monitors_any = 0;
};

// Ground truth for one TCP flow the workload launched: the 4-tuple plus
// the congestion-control algorithm its endpoints ran.  Benches join this
// against reconstructed flows (by 4-tuple) to label the reconstruction
// with the sender's algorithm — the labels come from the simulator's
// privileged viewpoint, the loss decomposition itself from the jframes.
struct FlowTruth {
  Ipv4Addr client_ip = 0;
  Ipv4Addr server_ip = 0;
  std::uint16_t client_port = 0;
  std::uint16_t server_port = 0;
  CcAlgorithm cc = CcAlgorithm::kReno;

  static std::uint64_t Key(Ipv4Addr client_ip, Ipv4Addr server_ip,
                           std::uint16_t client_port,
                           std::uint16_t server_port) {
    std::uint64_t k =
        (static_cast<std::uint64_t>(client_ip) << 32) | server_ip;
    k ^= (static_cast<std::uint64_t>(client_port) << 48) ^
         (static_cast<std::uint64_t>(server_port) << 16);
    return k;
  }
  std::uint64_t Key() const {
    return Key(client_ip, server_ip, client_port, server_port);
  }
};

class TruthLog {
 public:
  void Add(TruthEntry entry) { entries_.push_back(entry); }
  const std::vector<TruthEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  void AddFlow(FlowTruth flow) { flows_.push_back(flow); }
  const std::vector<FlowTruth>& flows() const { return flows_; }

  // Index from the flow 4-tuple to the flow's CC algorithm, for labeling
  // reconstructed flows.  Last write wins on 4-tuple reuse (ephemeral
  // ports wrap after ~55k flows), matching how a passive observer would
  // attribute the reused tuple to its most recent flow.
  std::unordered_map<std::uint64_t, CcAlgorithm> FlowCcIndex() const {
    std::unordered_map<std::uint64_t, CcAlgorithm> idx;
    for (const FlowTruth& f : flows_) idx[f.Key()] = f.cc;
    return idx;
  }

  // Index from content digest to entry positions (several transmissions can
  // share bytes only if identical retries; retries share digest except the
  // retry bit flips the FCS, so digests are near-unique).
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> DigestIndex()
      const {
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> idx;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      idx[entries_[i].digest].push_back(i);
    }
    return idx;
  }

 private:
  std::vector<TruthEntry> entries_;
  std::vector<FlowTruth> flows_;
};

}  // namespace jig
