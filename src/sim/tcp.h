// TCP-lite endpoints for workload generation.
//
// Jigsaw's transport reconstruction (paper Section 5.2) infers link-layer
// delivery from TCP side effects — covering ACKs, retransmissions, RTO
// dynamics — so the simulated traffic must carry real TCP mechanics, not
// just sized packets.  TcpPeer implements a compact but honest TCP: 3-way
// handshake, cumulative ACKs with out-of-order buffering, RTT estimation
// (Karn-sampled SRTT/RTTVAR), RTO with exponential backoff, and fast
// retransmit on triple duplicate ACKs.  All cwnd/ssthresh/pacing decisions
// are delegated to a pluggable CongestionControl (sim/cc/) selected by
// TcpConfig::cc_algorithm — Reno by default, CUBIC and BBR for
// CC-diverse workloads.
//
// A peer is transport-only: it emits TcpSegment descriptors through a
// caller-supplied send function (the client side frames them onto the air,
// the server side hands them to the wired network) and consumes segments
// via OnSegmentReceived.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "sim/cc/congestion_control.h"
#include "sim/event_queue.h"
#include "util/rng.h"
#include "wifi/packet.h"

namespace jig {

struct TcpConfig {
  std::uint32_t mss = 1460;
  double initial_cwnd_segments = 2.0;
  double max_cwnd_segments = 64.0;
  double initial_ssthresh_segments = 32.0;
  Micros min_rto = Milliseconds(600);
  Micros max_rto = Seconds(60);
  Micros initial_rto = Seconds(2);
  int max_syn_retries = 5;
  CcAlgorithm cc_algorithm = CcAlgorithm::kReno;
};

struct TcpPeerStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t rto_fires = 0;
};

class TcpPeer {
 public:
  using SendFn = std::function<void(const TcpSegment&)>;
  using ConnectedFn = std::function<void()>;
  using TransferDoneFn = std::function<void()>;
  using DataSink = std::function<void(std::uint32_t bytes)>;

  TcpPeer(EventQueue& events, Rng rng, std::uint16_t local_port,
          std::uint16_t remote_port, bool initiator, TcpConfig config,
          SendFn send);

  TcpPeer(const TcpPeer&) = delete;
  TcpPeer& operator=(const TcpPeer&) = delete;

  void set_on_connected(ConnectedFn fn) { on_connected_ = std::move(fn); }
  void set_on_transfer_done(TransferDoneFn fn) {
    on_transfer_done_ = std::move(fn);
  }
  void set_data_sink(DataSink fn) { data_sink_ = std::move(fn); }

  // Initiator: sends SYN.  The passive side connects on receiving one.
  void StartConnect();

  // Adds `bytes` to the outbound stream; segments flow as cwnd allows.
  // on_transfer_done fires each time the send buffer fully drains (all
  // bytes acknowledged).
  void SendData(std::uint64_t bytes);

  // Sends FIN after all pending data (half-close; peer ACKs).
  void Close();

  void OnSegmentReceived(const TcpSegment& seg);

  bool connected() const { return state_ == State::kEstablished; }
  bool closed() const { return state_ == State::kClosed; }
  std::uint64_t bytes_unacked() const { return snd_nxt_ - snd_una_; }
  std::uint64_t bytes_pending() const { return send_buffer_limit_ - snd_nxt_; }
  const TcpPeerStats& stats() const { return stats_; }
  double srtt_ms() const { return srtt_us_ / 1000.0; }
  const CongestionControl& cc() const { return *cc_; }
  double cwnd_segments() const { return cc_->CwndSegments(); }

 private:
  enum class State : std::uint8_t {
    kIdle,
    kSynSent,
    kSynReceived,
    kEstablished,
    kFinSent,
    kClosed,
  };

  void SendSegment(std::uint8_t flags, std::uint32_t seq,
                   std::uint16_t payload_len, bool is_retransmission);
  void SendAckNow();
  void TrySendData();
  void ArmRto();
  void DisarmRto();
  void OnRto();
  void OnAckAdvance(std::uint32_t ack);
  void EnterFastRetransmit();
  void SampleRtt(std::uint32_t acked_seq);
  Micros CurrentRto() const;

  EventQueue& events_;
  Rng rng_;
  std::uint16_t local_port_;
  std::uint16_t remote_port_;
  bool initiator_;
  TcpConfig config_;
  SendFn send_;
  ConnectedFn on_connected_;
  TransferDoneFn on_transfer_done_;
  DataSink data_sink_;

  State state_ = State::kIdle;
  // Send side (byte sequence space; ISN fixed for determinism).
  std::uint32_t iss_ = 1000;
  std::uint64_t snd_una_ = 0;  // absolute stream offsets (not wrapped)
  std::uint64_t snd_nxt_ = 0;
  std::uint64_t send_buffer_limit_ = 0;  // total bytes app asked to send
  std::unique_ptr<CongestionControl> cc_;
  // Pacing: earliest departure time for the next paced segment (only
  // consulted when the CC reports a nonzero pacing rate).
  TrueMicros pace_next_ = 0;
  EventId pace_event_ = kInvalidEvent;
  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recovery_point_ = 0;
  int syn_retries_ = 0;
  bool fin_pending_ = false;
  bool fin_sent_ = false;

  // Receive side.
  std::uint32_t irs_ = 0;
  std::uint64_t rcv_nxt_ = 0;
  std::map<std::uint64_t, std::uint64_t> ooo_;  // start -> end (exclusive)

  // RTT estimation: timestamp of the oldest in-flight, non-retransmitted
  // segment (Karn's rule — retransmitted segments are never sampled).
  std::optional<std::pair<std::uint64_t, TrueMicros>> rtt_probe_;
  double srtt_us_ = 0.0;
  double rttvar_us_ = 0.0;
  bool have_rtt_ = false;
  int rto_backoff_ = 0;
  EventId rto_event_ = kInvalidEvent;

  TcpPeerStats stats_;
};

}  // namespace jig
