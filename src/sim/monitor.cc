#include "sim/monitor.h"

#include <algorithm>

namespace jig {

MonitorRadio::MonitorRadio(EventQueue& events, ClockModel& clock,
                           TraceHeader header, Point3 position, Rng rng)
    : events_(events),
      clock_(clock),
      header_(header),
      position_(position),
      rng_(rng) {}

void MonitorRadio::OnTxEnd(const Transmission& tx, double rssi_dbm,
                           RxOutcome outcome) {
  if (outcome == RxOutcome::kNotHeard) return;
  CaptureRecord rec;
  // The Atheros clock stamps the frame as reception begins.
  rec.timestamp = clock_.CaptureTimestamp(tx.start);
  rec.outcome = outcome;
  rec.rssi_dbm = static_cast<float>(rssi_dbm);
  rec.orig_len = static_cast<std::uint32_t>(tx.wire.size());

  switch (outcome) {
    case RxOutcome::kOk: {
      rec.rate = tx.frame.rate;
      const std::size_t keep =
          std::min<std::size_t>(tx.wire.size(), header_.snaplen);
      rec.bytes.assign(tx.wire.begin(), tx.wire.begin() + keep);
      break;
    }
    case RxOutcome::kFcsError: {
      rec.rate = tx.frame.rate;
      const std::size_t keep =
          std::min<std::size_t>(tx.wire.size(), header_.snaplen);
      rec.bytes.assign(tx.wire.begin(), tx.wire.begin() + keep);
      // Damage 1..6 bytes; the FCS check downstream fails naturally.
      const int flips = static_cast<int>(rng_.NextInt(1, 6));
      for (int i = 0; i < flips && !rec.bytes.empty(); ++i) {
        const auto idx = rng_.NextBelow(rec.bytes.size());
        rec.bytes[idx] ^= static_cast<std::uint8_t>(rng_.NextInt(1, 255));
      }
      break;
    }
    case RxOutcome::kPhyError:
      // PLCP never decoded: no bytes, unknown rate/length.
      rec.rate = PhyRate::kB1;
      rec.orig_len = 0;
      break;
    case RxOutcome::kNotHeard:
      return;
  }
  records_.push_back(std::move(rec));
}

void MonitorRadio::OnNoise(TrueMicros start, Micros duration,
                           double rssi_dbm) {
  // Broadband noise shows up as a burst of PHY-error events while the
  // interferer is active; one event per ~2 ms of audible burst.
  const int events_logged =
      1 + static_cast<int>(std::min<Micros>(duration, Milliseconds(40)) /
                           Milliseconds(2));
  for (int i = 0; i < events_logged; ++i) {
    CaptureRecord rec;
    const TrueMicros at =
        start + (duration * i) / std::max(1, events_logged);
    rec.timestamp = clock_.CaptureTimestamp(at);
    rec.outcome = RxOutcome::kPhyError;
    rec.rssi_dbm = static_cast<float>(rssi_dbm);
    rec.rate = PhyRate::kB1;
    rec.orig_len = 0;
    records_.push_back(std::move(rec));
  }
}

std::unique_ptr<MemoryTrace> MonitorRadio::TakeTrace() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const CaptureRecord& a, const CaptureRecord& b) {
                     return a.timestamp < b.timestamp;
                   });
  auto trace =
      std::make_unique<MemoryTrace>(header_, std::move(records_));
  records_.clear();
  return trace;
}

Monitor::Monitor(EventQueue& events, Medium& medium,
                 const ClockConfig& clock_config, Rng rng, std::uint16_t pod,
                 std::uint16_t monitor_index, Point3 position,
                 std::array<Channel, 2> channels, RadioId first_radio_id)
    : clock_(clock_config, rng.Fork(0x10C)) {
  for (std::size_t i = 0; i < channels.size(); ++i) {
    TraceHeader header;
    header.radio = static_cast<RadioId>(first_radio_id + i);
    header.pod = pod;
    header.monitor = monitor_index;
    header.channel = channels[i];
    header.ntp_utc_of_local_zero_us = clock_.NtpUtcOfLocalZero();
    auto radio = std::make_unique<MonitorRadio>(
        events, clock_, header, position, rng.Fork(0x200 + i));
    medium.AddListener(radio.get());
    radios_.push_back(std::move(radio));
  }
}

}  // namespace jig
