// Passive monitor pods (paper Section 3).
//
// A pod is a pair of monitors a meter apart; each monitor carries two radios
// tuned to different channels and — crucially — timestamps both radios from
// ONE local clock (the modified MadWifi driver slaves the second radio to
// the first).  That shared clock is the bridge bootstrap synchronization
// uses to relate channels.  Radios log every physical event they can
// detect: valid frames, FCS-corrupted frames (with damaged bytes), and PHY
// errors (energy they could not decode), exactly the event classes jigdump
// records.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "sim/clock_model.h"
#include "sim/event_queue.h"
#include "sim/medium.h"
#include "trace/trace_set.h"

namespace jig {

class MonitorRadio final : public MediumListener {
 public:
  MonitorRadio(EventQueue& events, ClockModel& clock, TraceHeader header,
               Point3 position, Rng rng);

  const TraceHeader& header() const { return header_; }
  std::size_t captured() const { return records_.size(); }

  // Extracts the trace, sorted by local timestamp (overlapping receptions
  // complete out of order).  The radio keeps capturing afterwards.
  std::unique_ptr<MemoryTrace> TakeTrace();

  // MediumListener:
  Point3 position() const override { return position_; }
  Channel channel() const override { return header_.channel; }
  void OnTxStart(const Transmission&, double) override {}
  void OnTxEnd(const Transmission& tx, double rssi_dbm,
               RxOutcome outcome) override;
  void OnNoise(TrueMicros start, Micros duration, double rssi_dbm) override;

 private:
  EventQueue& events_;
  ClockModel& clock_;
  TraceHeader header_;
  Point3 position_;
  Rng rng_;
  std::vector<CaptureRecord> records_;
};

// One physical monitor: two radios sharing a clock.
class Monitor {
 public:
  Monitor(EventQueue& events, Medium& medium, const ClockConfig& clock_config,
          Rng rng, std::uint16_t pod, std::uint16_t monitor_index,
          Point3 position, std::array<Channel, 2> channels,
          RadioId first_radio_id);

  ClockModel& clock() { return clock_; }
  const ClockModel& clock() const { return clock_; }
  MonitorRadio& radio(std::size_t i) { return *radios_[i]; }
  std::size_t radio_count() const { return radios_.size(); }

 private:
  ClockModel clock_;
  std::vector<std::unique_ptr<MonitorRadio>> radios_;
};

}  // namespace jig
