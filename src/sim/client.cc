#include "sim/client.h"

#include "sim/access_point.h"  // management-frame body conventions

namespace jig {

Client::Client(EventQueue& events, Medium& medium, WiredNetwork& wired,
               std::uint16_t index, Point3 position, Channel channel, Rng rng,
               MacConfig mac_config, ClientConfig config)
    : events_(events),
      wired_(wired),
      index_(index),
      rng_(rng.Fork(0xC11)),
      config_(config),
      mac_(events, medium, MacAddress::Client(index), position, channel,
           rng.Fork(0xC12), mac_config) {
  mac_.set_rx_handler([this](const Frame& f) { OnFrame(f); });
}

void Client::PowerOn() {
  if (assoc_state_ != AssocState::kOff) return;
  assoc_state_ = AssocState::kProbing;
  assoc_attempts_ = 0;
  SendAssocStep();
}

void Client::PowerOff() {
  events_.Cancel(assoc_timer_);
  assoc_timer_ = kInvalidEvent;
  if (assoc_state_ == AssocState::kAssociated) {
    mac_.EnqueueManagement(FrameType::kDeauthentication, config_.ap_mac,
                           config_.ap_mac, Bytes{});
    wired_.UnregisterClient(config_.ip);
  }
  assoc_state_ = AssocState::kOff;
  // In-flight flows stall (SendBody drops while unassociated) rather than
  // being destroyed: the traffic manager holds raw peer pointers in pending
  // callbacks, and their wired peers RTO against silence, as in real life.
}

void Client::MoveTo(Point3 position, MacAddress new_ap,
                    std::uint16_t new_ap_index, Channel new_channel) {
  const bool was_on = assoc_state_ != AssocState::kOff;
  if (was_on) PowerOff();
  mac_.SetPosition(position);
  mac_.SetChannel(new_channel);
  config_.ap_mac = new_ap;
  config_.ap_index = new_ap_index;
  if (was_on) PowerOn();
}

void Client::SendAssocStep() {
  if (assoc_state_ == AssocState::kOff ||
      assoc_state_ == AssocState::kAssociated) {
    return;
  }
  if (++assoc_attempts_ > config_.assoc_max_retries) {
    // Start over from probing (real clients rescan).
    assoc_state_ = AssocState::kProbing;
    assoc_attempts_ = 0;
  }
  switch (assoc_state_) {
    case AssocState::kProbing: {
      Bytes body(16, 0);
      body[0] = Capabilities();
      mac_.EnqueueManagement(FrameType::kProbeRequest, MacAddress::Broadcast(),
                             MacAddress::Broadcast(), std::move(body));
      break;
    }
    case AssocState::kAuthenticating:
      mac_.EnqueueManagement(FrameType::kAuthentication, config_.ap_mac,
                             config_.ap_mac, Bytes{0});
      break;
    case AssocState::kAssociating: {
      Bytes body(8, 0);
      body[0] = Capabilities();
      mac_.EnqueueManagement(FrameType::kAssocRequest, config_.ap_mac,
                             config_.ap_mac, std::move(body));
      break;
    }
    default:
      return;
  }
  events_.Cancel(assoc_timer_);
  assoc_timer_ = events_.ScheduleIn(config_.assoc_step_timeout,
                                    [this] { SendAssocStep(); });
}

void Client::AdvanceAssociation() {
  assoc_attempts_ = 0;
  events_.Cancel(assoc_timer_);
  assoc_timer_ = kInvalidEvent;
  switch (assoc_state_) {
    case AssocState::kProbing:
      assoc_state_ = AssocState::kAuthenticating;
      SendAssocStep();
      break;
    case AssocState::kAuthenticating:
      assoc_state_ = AssocState::kAssociating;
      SendAssocStep();
      break;
    case AssocState::kAssociating:
      assoc_state_ = AssocState::kAssociated;
      OnAssociated();
      break;
    default:
      break;
  }
}

void Client::OnAssociated() {
  wired_.RegisterClient(mac_.address(), config_.ip, config_.ap_index);
  // DHCP-style broadcast announcement (paper Section 7.1: client DHCP
  // requests are among the network-layer broadcasts APs fan out).
  SendUdpBroadcast(68, 67, 300);
  if (on_associated_) on_associated_();
}

void Client::SendBody(Bytes body) {
  mac_.EnqueueData(config_.ap_mac, config_.ap_mac, std::move(body),
                   /*from_ds=*/false, /*to_ds=*/true);
}

void Client::SendUdpBroadcast(std::uint16_t src_port, std::uint16_t dst_port,
                              std::uint16_t payload_len) {
  if (assoc_state_ != AssocState::kAssociated &&
      assoc_state_ != AssocState::kAssociating) {
    return;
  }
  UdpDatagram dgram;
  dgram.src_port = src_port;
  dgram.dst_port = dst_port;
  dgram.payload_len = payload_len;
  SendBody(BuildUdpFrameBody(config_.ip, 0xFFFFFFFFu, dgram));
}

TcpPeer* Client::OpenFlow(Ipv4Addr server_ip, std::uint16_t server_port,
                          std::uint16_t local_port,
                          const TcpConfig& tcp_config, Rng rng) {
  auto peer = std::make_unique<TcpPeer>(
      events_, rng, local_port, server_port, /*initiator=*/true, tcp_config,
      [this, server_ip, local_port, server_port](const TcpSegment& seg) {
        if (assoc_state_ != AssocState::kAssociated) return;
        SendBody(BuildTcpFrameBody(config_.ip, server_ip, seg));
      });
  TcpPeer* raw = peer.get();
  flows_[FlowKey{server_ip, server_port, local_port}] = std::move(peer);
  ++flows_opened_;
  return raw;
}

void Client::OnFrame(const Frame& f) {
  if (f.type == FrameType::kBeacon) {
    // Follow the BSS ERP protection bit.
    if (f.addr2 == config_.ap_mac && f.body.size() > 1) {
      mac_.SetProtection((f.body[1] & kErpProtection) != 0);
    }
    return;
  }
  if (f.type == FrameType::kProbeResponse) {
    if (assoc_state_ == AssocState::kProbing && f.addr2 == config_.ap_mac) {
      AdvanceAssociation();
    }
    return;
  }
  if (f.type == FrameType::kAuthentication) {
    if (assoc_state_ == AssocState::kAuthenticating &&
        f.addr2 == config_.ap_mac) {
      AdvanceAssociation();
    }
    return;
  }
  if (f.type == FrameType::kAssocResponse) {
    if (assoc_state_ == AssocState::kAssociating &&
        f.addr2 == config_.ap_mac) {
      if (f.body.size() > 1) {
        mac_.SetProtection((f.body[1] & kErpProtection) != 0);
      }
      AdvanceAssociation();
    }
    return;
  }
  if (f.type != FrameType::kData || !f.from_ds) return;

  const auto info = ParseFrameBody(f.body);
  if (!info) return;

  if (info->IsArp() && info->arp->is_request &&
      info->arp->target_ip == config_.ip &&
      assoc_state_ == AssocState::kAssociated) {
    ArpMessage reply;
    reply.is_request = false;
    reply.sender_ip = config_.ip;
    reply.target_ip = info->arp->sender_ip;
    SendBody(BuildArpFrameBody(reply));
    return;
  }

  if (info->IsTcp() && info->dst_ip == config_.ip) {
    auto it = flows_.find(FlowKey{info->src_ip, info->tcp->src_port,
                                  info->tcp->dst_port});
    if (it != flows_.end()) it->second->OnSegmentReceived(*info->tcp);
  }
}

}  // namespace jig
