// 802.11 DCF MAC for simulated stations (paper Section 2).
//
// Implements the protocol machinery whose artifacts Jigsaw later has to
// reconstruct and disambiguate:
//   * CSMA/CA: DIFS sensing, slotted random backoff with contention-window
//     doubling, freeze-and-resume when the channel goes busy;
//   * virtual carrier sense (NAV) honoring overheard duration fields;
//   * ARQ: immediate ACKs after SIFS, retransmission with the retry bit and
//     the same sequence number, drop after the short retry limit;
//   * 802.11g protection: a CCK CTS-to-self preceding each OFDM frame when
//     the BSS has (or recently had) legacy 802.11b stations;
//   * per-destination ARF-style rate adaptation (rates step down on loss,
//     never up — one of the paper's inference heuristics);
//   * 12-bit per-station sequence numbers shared by DATA and MANAGEMENT.
//
// Stations are half-duplex: frames overlapping the station's own
// transmissions are never received, which is one source of the monitoring
// ambiguities Sections 5's inference rules address.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>

#include "sim/event_queue.h"
#include "sim/medium.h"
#include "util/rng.h"

namespace jig {

struct MacConfig {
  double tx_power_dbm = 15.0;
  double carrier_sense_dbm = -82.0;
  bool b_only = false;       // legacy 802.11b station: CCK rates only
  int retry_limit = kShortRetryLimit;
  std::size_t max_queue = 128;
  // Extra ACK-timeout slack beyond SIFS + ACK airtime.
  Micros ack_timeout_slack = 25;
  // RTS/CTS threshold: unicast DATA bodies of at least this many bytes are
  // preceded by an RTS/CTS handshake (Section 2's hidden-terminal
  // reservation).  Defaults to off, as in most production deployments.
  std::size_t rts_threshold = static_cast<std::size_t>(-1);
};

struct MacCounters {
  std::uint64_t data_tx_attempts = 0;
  std::uint64_t mgmt_tx_attempts = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t cts_self_sent = 0;
  std::uint64_t rts_sent = 0;
  std::uint64_t cts_replies_sent = 0;
  std::uint64_t retries = 0;
  std::uint64_t msdu_delivered = 0;
  std::uint64_t msdu_failed = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t rx_delivered = 0;
  std::uint64_t rx_duplicates = 0;
};

class Mac : public MediumListener {
 public:
  // Deduplicated DATA/MANAGEMENT frames addressed to (or heard broadcast by)
  // this station, delivered upward.
  using RxHandler = std::function<void(const Frame&)>;
  // Final outcome of a queued MSDU: delivered (ACKed, or broadcast sent) or
  // dropped after the retry limit.
  using TxStatusHandler = std::function<void(std::uint64_t msdu_id,
                                             bool delivered)>;

  Mac(EventQueue& events, Medium& medium, MacAddress address, Point3 position,
      Channel channel, Rng rng, MacConfig config);

  Mac(const Mac&) = delete;
  Mac& operator=(const Mac&) = delete;

  void set_rx_handler(RxHandler h) { rx_handler_ = std::move(h); }
  void set_tx_status_handler(TxStatusHandler h) {
    tx_status_handler_ = std::move(h);
  }

  MacAddress address() const { return address_; }
  const MacCounters& counters() const { return counters_; }
  bool protection() const { return protection_; }

  // 802.11g protection toggled by BSS state (AP decides, clients follow the
  // beacon ERP element; the scenario wires the propagation).
  void SetProtection(bool on) { protection_ = on; }
  // Roaming support (coverage oracle experiment).  Channel changes take
  // effect for subsequent transmissions/receptions.
  void SetPosition(Point3 p) { position_ = p; }
  void SetChannel(Channel c) { channel_ = c; }

  // Enqueues a DATA MSDU.  Returns an id passed back to the status handler.
  std::uint64_t EnqueueData(MacAddress dst, MacAddress bssid, Bytes body,
                            bool from_ds, bool to_ds);
  // Enqueues a management frame (beacon / probe / assoc / auth).  Unicast
  // management frames are ACKed and retried like data.
  std::uint64_t EnqueueManagement(FrameType type, MacAddress dst,
                                  MacAddress bssid, Bytes body);

  std::size_t QueueDepth() const { return queue_.size(); }

  // Rate the MAC would currently use toward `dst`.
  PhyRate DataRateFor(MacAddress dst) const;
  // Seeds the ARF starting rate toward `dst` (scenario sets it from the mean
  // link budget, as a real driver converges to after a few frames).
  void SeedRate(MacAddress dst, PhyRate rate);

  // MediumListener:
  Point3 position() const override { return position_; }
  Channel channel() const override { return channel_; }
  std::optional<MacAddress> mac_address() const override { return address_; }
  void OnTxStart(const Transmission& tx, double rssi_dbm) override;
  void OnTxEnd(const Transmission& tx, double rssi_dbm,
               RxOutcome outcome) override;

 private:
  enum class State : std::uint8_t {
    kIdle,
    kDeferring,   // have a frame, waiting for the medium
    kBackoff,     // countdown event pending
    kProtecting,  // CTS-to-self on the air / SIFS gap before DATA
    kWaitCts,     // RTS sent, awaiting the CTS response
    kTransmitting,
    kWaitAck,
  };

  struct Msdu {
    std::uint64_t id = 0;
    FrameType type = FrameType::kData;
    MacAddress dst;
    MacAddress bssid;
    Bytes body;
    bool from_ds = false;
    bool to_ds = false;
    int attempts = 0;
    bool seq_assigned = false;
    std::uint16_t seq = 0;
    PhyRate rate = PhyRate::kB1;
  };

  struct ArfState {
    int ladder_pos = 0;
    int success_streak = 0;
    int fail_streak = 0;
  };

  bool MediumBusy() const;
  bool TransmittingNow() const;
  void MaybeStartAccess();
  void BeginCountdownOrDefer();
  void PauseCountdown();
  void ScheduleNavResume();
  void OnBackoffComplete();
  void StartTxSequence();
  void TransmitCurrentFrame();
  void OnOwnFrameEnd(bool expects_ack, PhyRate data_rate);
  void OnAckTimeout();
  void OnCtsTimeout();
  void SendCtsReply(const Frame& rts);
  void CompleteMsdu(bool delivered);
  void SendAck(MacAddress to, PhyRate eliciting_rate);
  bool OverlapsOwnTx(TrueMicros start, TrueMicros end) const;
  void RecordOwnTx(TrueMicros start, TrueMicros end);
  void HandleDecodedFrame(const Transmission& tx);
  PhyRate PickRate(const Msdu& msdu) const;
  void ArfReportSuccess(MacAddress dst);
  void ArfReportFailure(MacAddress dst);
  int LadderSize() const;
  PhyRate LadderRate(int pos) const;

  EventQueue& events_;
  Medium& medium_;
  MacAddress address_;
  Point3 position_;
  Channel channel_;
  Rng rng_;
  MacConfig config_;

  RxHandler rx_handler_;
  TxStatusHandler tx_status_handler_;

  State state_ = State::kIdle;
  std::deque<Msdu> queue_;
  std::uint64_t next_msdu_id_ = 1;
  std::uint16_t seq_counter_ = 0;
  bool protection_ = false;

  int cs_count_ = 0;
  TrueMicros nav_until_ = 0;
  EventId nav_resume_event_ = kInvalidEvent;
  int cw_ = kCwMin;
  int backoff_remaining_ = -1;  // -1: no draw pending
  TrueMicros countdown_started_ = 0;
  EventId countdown_event_ = kInvalidEvent;
  EventId ack_timeout_event_ = kInvalidEvent;
  EventId cts_timeout_event_ = kInvalidEvent;
  EventId pending_tx_event_ = kInvalidEvent;

  std::deque<std::pair<TrueMicros, TrueMicros>> own_tx_intervals_;

  // Receive-side duplicate detection: last sequence number seen per
  // transmitter (802.11 duplicate cache).
  std::unordered_map<MacAddress, std::uint16_t> rx_last_seq_;
  std::unordered_map<MacAddress, ArfState> arf_;

  MacCounters counters_;
};

}  // namespace jig
