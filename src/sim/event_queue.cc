#include "sim/event_queue.h"

#include <utility>

namespace jig {

EventId EventQueue::Schedule(TrueMicros at, Callback cb) {
  if (at < now_) at = now_;
  const EventId id = next_id_++;
  heap_.push(Entry{at, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (id == kInvalidEvent) return false;
  // The heap entry stays behind as a tombstone; RunUntil skips entries whose
  // callback is gone.  Cheaper than heap surgery given how often the MAC
  // cancels timers.
  return callbacks_.erase(id) > 0;
}

void EventQueue::RunUntil(TrueMicros t_end) {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) {
      heap_.pop();  // cancelled tombstone
      continue;
    }
    if (top.at > t_end) break;
    heap_.pop();
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    now_ = top.at;
    ++executed_;
    cb();
  }
  now_ = t_end;
}

void EventQueue::RunAll() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) continue;
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    now_ = top.at;
    ++executed_;
    cb();
  }
}

}  // namespace jig
