#include "sim/tcp.h"

#include <algorithm>

namespace jig {

TcpPeer::TcpPeer(EventQueue& events, Rng rng, std::uint16_t local_port,
                 std::uint16_t remote_port, bool initiator, TcpConfig config,
                 SendFn send)
    : events_(events),
      rng_(rng),
      local_port_(local_port),
      remote_port_(remote_port),
      initiator_(initiator),
      config_(config),
      send_(std::move(send)) {
  cc_ = MakeCongestionControl(
      config_.cc_algorithm,
      CcConfig{config_.mss, config_.initial_cwnd_segments,
               config_.max_cwnd_segments, config_.initial_ssthresh_segments});
  // Distinct deterministic ISNs per side keep wire sequences readable.
  iss_ = initiator_ ? 1'000'000 : 5'000'000;
}

Micros TcpPeer::CurrentRto() const {
  Micros rto;
  if (!have_rtt_) {
    rto = config_.initial_rto;
  } else {
    rto = static_cast<Micros>(srtt_us_ + 4.0 * rttvar_us_);
  }
  rto = std::max(rto, config_.min_rto);
  for (int i = 0; i < rto_backoff_; ++i) rto *= 2;
  return std::min(rto, config_.max_rto);
}

void TcpPeer::ArmRto() {
  DisarmRto();
  rto_event_ = events_.ScheduleIn(CurrentRto(), [this] { OnRto(); });
}

void TcpPeer::DisarmRto() {
  events_.Cancel(rto_event_);
  rto_event_ = kInvalidEvent;
}

void TcpPeer::SendSegment(std::uint8_t flags, std::uint32_t seq,
                          std::uint16_t payload_len, bool is_retransmission) {
  TcpSegment seg;
  seg.src_port = local_port_;
  seg.dst_port = remote_port_;
  seg.seq = seq;
  seg.flags = flags;
  seg.payload_len = payload_len;
  if (flags & kTcpAck) {
    std::uint64_t ack_off = rcv_nxt_;
    seg.ack = irs_ + 1 + static_cast<std::uint32_t>(ack_off);
  }
  ++stats_.segments_sent;
  stats_.bytes_sent += payload_len;
  if (is_retransmission) ++stats_.retransmissions;
  send_(seg);
}

void TcpPeer::SendAckNow() { SendSegment(kTcpAck, iss_ + 1 +
      static_cast<std::uint32_t>(snd_nxt_), 0, false); }

void TcpPeer::StartConnect() {
  if (state_ != State::kIdle) return;
  state_ = State::kSynSent;
  SendSegment(kTcpSyn, iss_, 0, false);
  ArmRto();
}

void TcpPeer::SendData(std::uint64_t bytes) {
  send_buffer_limit_ += bytes;
  if (state_ == State::kEstablished) TrySendData();
}

void TcpPeer::Close() {
  fin_pending_ = true;
  if (state_ == State::kEstablished) TrySendData();
}

void TcpPeer::TrySendData() {
  if (state_ != State::kEstablished && state_ != State::kFinSent) return;
  while (snd_nxt_ < send_buffer_limit_ &&
         static_cast<double>(snd_nxt_ - snd_una_) < cc_->CwndBytes()) {
    // Pacing (model-based CCs): space departures at the CC's rate rather
    // than bursting the whole window.
    const double pace_bps = cc_->PacingRateBps();
    if (pace_bps > 0.0 && events_.now() < pace_next_) {
      if (pace_event_ == kInvalidEvent) {
        pace_event_ = events_.Schedule(pace_next_, [this] {
          pace_event_ = kInvalidEvent;
          TrySendData();
        });
      }
      break;
    }
    const std::uint16_t len = static_cast<std::uint16_t>(std::min<std::uint64_t>(
        config_.mss, send_buffer_limit_ - snd_nxt_));
    const std::uint32_t wire_seq =
        iss_ + 1 + static_cast<std::uint32_t>(snd_nxt_);
    if (!rtt_probe_) rtt_probe_ = {snd_nxt_, events_.now()};
    SendSegment(kTcpAck, wire_seq, len, false);
    snd_nxt_ += len;
    if (pace_bps > 0.0) {
      const Micros gap =
          static_cast<Micros>(len * 8.0 * 1e6 / pace_bps);
      pace_next_ = std::max(pace_next_, events_.now()) + gap;
    }
  }
  if (fin_pending_ && !fin_sent_ && snd_nxt_ == send_buffer_limit_ &&
      snd_una_ == snd_nxt_) {
    fin_sent_ = true;
    state_ = State::kFinSent;
    SendSegment(kTcpFin | kTcpAck,
                iss_ + 1 + static_cast<std::uint32_t>(snd_nxt_), 0, false);
  }
  if (snd_nxt_ > snd_una_ || fin_sent_) {
    if (rto_event_ == kInvalidEvent) ArmRto();
  }
}

void TcpPeer::SampleRtt(std::uint32_t /*acked_seq*/) {
  if (!rtt_probe_) return;
  if (snd_una_ <= rtt_probe_->first) return;  // probe byte not yet covered
  const double sample =
      static_cast<double>(events_.now() - rtt_probe_->second);
  rtt_probe_.reset();
  cc_->OnRttSample(static_cast<Micros>(sample), events_.now());
  if (!have_rtt_) {
    srtt_us_ = sample;
    rttvar_us_ = sample / 2.0;
    have_rtt_ = true;
  } else {
    const double err = sample - srtt_us_;
    srtt_us_ += 0.125 * err;
    rttvar_us_ += 0.25 * (std::abs(err) - rttvar_us_);
  }
}

void TcpPeer::OnAckAdvance(std::uint32_t ack) {
  const std::uint64_t ack_off =
      static_cast<std::uint32_t>(ack - (iss_ + 1));
  if (ack_off > send_buffer_limit_ + 1) return;  // nonsense / FIN space
  const bool fin_acked = fin_sent_ && ack_off == send_buffer_limit_ + 1;
  const std::uint64_t new_una = std::min<std::uint64_t>(
      fin_acked ? send_buffer_limit_ : ack_off, snd_nxt_);
  if (new_una > snd_una_) {
    const std::uint64_t acked_bytes = new_una - snd_una_;
    snd_una_ = new_una;
    dupacks_ = 0;
    rto_backoff_ = 0;
    SampleRtt(ack);
    if (in_recovery_ && snd_una_ >= recovery_point_) in_recovery_ = false;
    cc_->OnAck(CcAck{acked_bytes, snd_nxt_ - snd_una_, in_recovery_,
                     events_.now()});
    if (snd_una_ == snd_nxt_) {
      DisarmRto();
      if (snd_nxt_ == send_buffer_limit_ && on_transfer_done_ &&
          send_buffer_limit_ > 0) {
        on_transfer_done_();
      }
    } else {
      ArmRto();
    }
    TrySendData();
  } else if (snd_nxt_ > snd_una_ && ack_off == snd_una_) {
    ++dupacks_;
    cc_->OnDupAck(dupacks_, snd_nxt_ - snd_una_, in_recovery_);
    if (dupacks_ == 3 && !in_recovery_) EnterFastRetransmit();
  }
  if (fin_acked && state_ == State::kFinSent) {
    state_ = State::kClosed;
    DisarmRto();
  }
}

void TcpPeer::EnterFastRetransmit() {
  // The CC already reduced its window in OnDupAck(3, ...).
  ++stats_.fast_retransmits;
  in_recovery_ = true;
  recovery_point_ = snd_nxt_;
  rtt_probe_.reset();  // Karn: no sampling across retransmission
  const std::uint16_t len = static_cast<std::uint16_t>(std::min<std::uint64_t>(
      config_.mss, send_buffer_limit_ - snd_una_));
  SendSegment(kTcpAck, iss_ + 1 + static_cast<std::uint32_t>(snd_una_), len,
              true);
  ArmRto();
}

void TcpPeer::OnRto() {
  rto_event_ = kInvalidEvent;
  ++stats_.rto_fires;
  ++rto_backoff_;
  if (state_ == State::kSynSent) {
    if (++syn_retries_ > config_.max_syn_retries) {
      state_ = State::kClosed;
      return;
    }
    SendSegment(kTcpSyn, iss_, 0, false);
    ArmRto();
    return;
  }
  if (state_ == State::kFinSent && snd_una_ == snd_nxt_) {
    SendSegment(kTcpFin | kTcpAck,
                iss_ + 1 + static_cast<std::uint32_t>(snd_nxt_), 0, true);
    ArmRto();
    return;
  }
  if (snd_nxt_ <= snd_una_) return;
  // Timeout congestion response + go-back retransmission of one segment.
  cc_->OnRtoTimeout(snd_nxt_ - snd_una_);
  in_recovery_ = false;
  dupacks_ = 0;
  rtt_probe_.reset();
  const std::uint16_t len = static_cast<std::uint16_t>(std::min<std::uint64_t>(
      config_.mss, send_buffer_limit_ - snd_una_));
  SendSegment(kTcpAck, iss_ + 1 + static_cast<std::uint32_t>(snd_una_), len,
              true);
  ArmRto();
}

void TcpPeer::OnSegmentReceived(const TcpSegment& seg) {
  if (state_ == State::kClosed) return;

  if (seg.Syn() && !seg.HasAck()) {
    // Passive open.
    if (state_ == State::kIdle || state_ == State::kSynReceived) {
      irs_ = seg.seq;
      rcv_nxt_ = 0;
      state_ = State::kSynReceived;
      SendSegment(kTcpSyn | kTcpAck, iss_, 0, false);
      ArmRto();
    }
    return;
  }
  if (seg.Syn() && seg.HasAck()) {
    // SYN-ACK for our SYN.
    if (state_ == State::kSynSent && seg.ack == iss_ + 1) {
      irs_ = seg.seq;
      rcv_nxt_ = 0;
      state_ = State::kEstablished;
      DisarmRto();
      rto_backoff_ = 0;
      SendAckNow();
      if (on_connected_) on_connected_();
      TrySendData();
    }
    return;
  }

  if (state_ == State::kSynReceived && seg.HasAck() && seg.ack == iss_ + 1) {
    state_ = State::kEstablished;
    DisarmRto();
    rto_backoff_ = 0;
    if (on_connected_) on_connected_();
    TrySendData();
    // fall through: the segment may carry data too
  }

  if (state_ != State::kEstablished && state_ != State::kFinSent) return;

  // Inbound data / FIN processing.
  const std::uint64_t seg_off =
      static_cast<std::uint32_t>(seg.seq - (irs_ + 1));
  bool advanced = false;
  if (seg.payload_len > 0) {
    if (seg_off <= rcv_nxt_ && seg_off + seg.payload_len > rcv_nxt_) {
      const std::uint64_t new_bytes = seg_off + seg.payload_len - rcv_nxt_;
      rcv_nxt_ = seg_off + seg.payload_len;
      if (data_sink_) data_sink_(static_cast<std::uint32_t>(new_bytes));
      advanced = true;
      // Merge any now-contiguous out-of-order spans.
      auto it = ooo_.begin();
      while (it != ooo_.end() && it->first <= rcv_nxt_) {
        if (it->second > rcv_nxt_) {
          if (data_sink_) {
            data_sink_(static_cast<std::uint32_t>(it->second - rcv_nxt_));
          }
          rcv_nxt_ = it->second;
        }
        it = ooo_.erase(it);
      }
    } else if (seg_off > rcv_nxt_) {
      auto [it, inserted] =
          ooo_.emplace(seg_off, seg_off + seg.payload_len);
      if (!inserted && it->second < seg_off + seg.payload_len) {
        it->second = seg_off + seg.payload_len;
      }
    }
    // Data (in order, duplicate, or gap-creating) always elicits an ACK.
    SendAckNow();
  }

  if (seg.Fin()) {
    if (seg_off + seg.payload_len == rcv_nxt_) {
      rcv_nxt_ += 1;  // consume the FIN
      SendAckNow();
      if (state_ == State::kEstablished && fin_sent_) state_ = State::kClosed;
    } else {
      SendAckNow();
    }
  }

  if (seg.HasAck()) OnAckAdvance(seg.ack);
  (void)advanced;
}

}  // namespace jig
