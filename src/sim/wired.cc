#include "sim/wired.h"

namespace jig {

void WiredNetwork::RegisterAp(std::uint16_t ap_index, ApPort port) {
  aps_[ap_index] = std::move(port);
}

void WiredNetwork::RegisterClient(MacAddress mac, Ipv4Addr ip,
                                  std::uint16_t ap_index) {
  clients_[ip] = ClientEntry{mac, ap_index};
}

void WiredNetwork::UnregisterClient(Ipv4Addr ip) { clients_.erase(ip); }

Micros WiredNetwork::RegisterServer(Ipv4Addr ip, ServerSink sink) {
  ServerEntry entry;
  entry.sink = std::move(sink);
  entry.one_way_delay = rng_.NextInt(config_.min_one_way_delay,
                                     config_.max_one_way_delay);
  const Micros delay = entry.one_way_delay;
  servers_[ip] = std::move(entry);
  return delay;
}

Micros WiredNetwork::DelayFor(Ipv4Addr server_ip) {
  auto it = servers_.find(server_ip);
  const Micros base = it != servers_.end() ? it->second.one_way_delay
                                           : config_.min_one_way_delay;
  return base + rng_.NextInt(0, config_.delay_jitter);
}

TrueMicros WiredNetwork::OrderedArrival(Ipv4Addr dst, Micros delay) {
  TrueMicros arrival = events_.now() + delay;
  auto [it, inserted] = last_arrival_.try_emplace(dst, arrival);
  if (!inserted) {
    if (arrival <= it->second) arrival = it->second + 1;
    it->second = arrival;
  }
  return arrival;
}

void WiredNetwork::Tap(bool to_wireless, std::uint16_t ap_index,
                       MacAddress station, const PacketInfo& info) {
  WiredRecord rec;
  rec.time = events_.now();
  rec.to_wireless = to_wireless;
  rec.ap_index = ap_index;
  rec.wireless_station = station;
  rec.src_ip = info.src_ip;
  rec.dst_ip = info.dst_ip;
  rec.ip_proto = info.ip_proto;
  if (info.tcp) rec.tcp = *info.tcp;
  if (info.udp) rec.udp = *info.udp;
  sniffer_.push_back(rec);
}

void WiredNetwork::DeliverFromWireless(std::uint16_t ap_index,
                                       MacAddress client, Bytes body) {
  const auto info = ParseFrameBody(body);
  if (!info) return;

  if (info->IsArp()) {
    // ARP replies ride the wire back to the requester; requests from
    // clients fan out as wired broadcasts.  Neither is unicast DATA for
    // coverage purposes, so no tap record.
    if (info->arp->is_request) BroadcastToAir(std::move(body));
    return;
  }
  if (info->ether_type != kEtherTypeIpv4) return;

  if (info->dst_ip == 0xFFFFFFFFu) {
    // Client-originated broadcast (DHCP, license chatter): the AP forwards
    // it to the wire and every AP rebroadcasts it on the air — the
    // amplification the paper laments.
    BroadcastToAir(std::move(body));
    return;
  }

  // Unicast toward a wired server: tapped when the AP puts it on the wire.
  Tap(/*to_wireless=*/false, ap_index, client, *info);
  auto it = servers_.find(info->dst_ip);
  if (it == servers_.end()) return;
  if (rng_.NextBool(config_.loss_probability)) {
    ++wired_losses_;
    return;
  }
  const TrueMicros arrival = OrderedArrival(info->dst_ip,
                                            DelayFor(info->dst_ip));
  const PacketInfo info_copy = *info;
  // Callback owns the body; sinks parse what they need.
  events_.Schedule(arrival, [this, info_copy, body = std::move(body),
                             dst = info->dst_ip]() mutable {
    auto sit = servers_.find(dst);
    if (sit != servers_.end()) sit->second.sink(info_copy, std::move(body));
  });
}

void WiredNetwork::SendToWireless(Ipv4Addr src_ip, Ipv4Addr dst_ip,
                                  Bytes body) {
  if (rng_.NextBool(config_.loss_probability)) {
    ++wired_losses_;
    return;
  }
  const TrueMicros arrival = OrderedArrival(dst_ip, DelayFor(src_ip));
  events_.Schedule(arrival, [this, dst_ip, body = std::move(body)]() mutable {
    auto cit = clients_.find(dst_ip);
    if (cit == clients_.end()) return;  // client gone / roamed away
    auto ait = aps_.find(cit->second.ap_index);
    if (ait == aps_.end()) return;
    const auto info = ParseFrameBody(body);
    if (info) {
      Tap(/*to_wireless=*/true, cit->second.ap_index, cit->second.mac, *info);
    }
    ait->second.deliver_unicast(cit->second.mac, std::move(body));
  });
}

void WiredNetwork::BroadcastToAir(Bytes body) {
  // Wired broadcasts reach every AP within switch latency of each other;
  // broadcast_jitter == 0 reproduces the synchronized self-interference.
  for (const auto& [index, port] : aps_) {
    const Micros jitter =
        config_.broadcast_jitter > 0
            ? rng_.NextInt(0, config_.broadcast_jitter)
            : rng_.NextInt(0, Micros{50});  // switch fan-out spread
    events_.ScheduleIn(Milliseconds(1) + jitter, [this, idx = index, body] {
      auto it = aps_.find(idx);
      if (it != aps_.end()) it->second.deliver_broadcast(body);
    });
  }
}

}  // namespace jig
