// Simulated access point (paper Sections 2, 3.1, 7.3).
//
// APs beacon every ~102.4 ms, answer probes, run the association handshake,
// bridge between the air and the wired distribution network (transparent
// bridging — which is why wired ARP broadcasts flood every channel), and
// implement the 802.11g protection policy the paper analyzes in Section
// 7.3: protection turns on when an 802.11b client is sensed and only turns
// off after `protection_timeout` without one — the overly conservative
// 1-hour default is what makes APs "overprotective".
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/mac.h"
#include "sim/wired.h"

namespace jig {

struct ApConfig {
  Micros beacon_interval = 102'400;
  Micros protection_timeout = Hours(1);
  Micros protection_poll = Seconds(5);
  double tx_power_dbm = 18.0;
};

class AccessPoint {
 public:
  AccessPoint(EventQueue& events, Medium& medium, WiredNetwork& wired,
              std::uint16_t index, Point3 position, Channel channel, Rng rng,
              ApConfig config, MacConfig mac_config);

  AccessPoint(const AccessPoint&) = delete;
  AccessPoint& operator=(const AccessPoint&) = delete;

  // Starts beaconing and protection polling; registers the wired port.
  void Start();

  std::uint16_t index() const { return index_; }
  MacAddress address() const { return mac_.address(); }
  Channel channel() const { return mac_.channel(); }
  Mac& mac() { return mac_; }
  const Mac& mac() const { return mac_; }
  bool protection_active() const { return protection_active_; }
  TrueMicros last_b_sense() const { return last_b_sense_; }
  std::size_t associated_clients() const { return clients_.size(); }

 private:
  void OnFrame(const Frame& f);
  void OnBeaconTimer();
  void PollProtection();
  void SenseBClient();
  void HandleDataFrame(const Frame& f);

  struct ClientState {
    bool b_only = false;
  };

  EventQueue& events_;
  WiredNetwork& wired_;
  std::uint16_t index_;
  Rng rng_;
  ApConfig config_;
  Mac mac_;

  std::unordered_map<MacAddress, ClientState> clients_;
  bool protection_active_ = false;
  // "Never sensed" sentinel: far enough in the past to be beyond any
  // realistic timeout at simulation start.
  TrueMicros last_b_sense_ = -Hours(24 * 365);
  bool started_ = false;
};

}  // namespace jig
