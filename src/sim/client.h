// Simulated wireless client station.
//
// Clients run the association handshake (probe → authenticate → associate),
// follow the BSS protection setting from beacon ERP bits, answer ARP
// requests for their IP, emit the broadcast chatter the paper catalogs
// (DHCP on association, MS-Office-style UDP license broadcasts to port
// 2222 — footnote 6), and terminate TCP flows whose peers live on the wired
// network.  802.11b-only clients advertise that in probe/association
// capability bits, which is what triggers AP protection mode.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "sim/mac.h"
#include "sim/tcp.h"
#include "sim/wired.h"

namespace jig {

struct ClientConfig {
  bool b_only = false;
  Ipv4Addr ip = 0;
  MacAddress ap_mac;
  std::uint16_t ap_index = 0;
  Micros assoc_step_timeout = Milliseconds(500);
  int assoc_max_retries = 5;
};

class Client {
 public:
  Client(EventQueue& events, Medium& medium, WiredNetwork& wired,
         std::uint16_t index, Point3 position, Channel channel, Rng rng,
         MacConfig mac_config, ClientConfig config);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Begins the association handshake; on_associated fires when complete.
  void PowerOn();
  // Deauthenticates and stops; pending flows stall (their peers RTO out).
  void PowerOff();

  // Roams to a new position and BSS: deauthenticates from the current AP,
  // retunes, and re-runs the association handshake (the paper's laptop
  // oracle experiment moved through the building this way).
  void MoveTo(Point3 position, MacAddress new_ap, std::uint16_t new_ap_index,
              Channel new_channel);

  bool associated() const { return assoc_state_ == AssocState::kAssociated; }
  bool powered() const { return assoc_state_ != AssocState::kOff; }
  MacAddress address() const { return mac_.address(); }
  Ipv4Addr ip() const { return config_.ip; }
  bool b_only() const { return config_.b_only; }
  std::uint16_t ap_index() const { return config_.ap_index; }
  MacAddress ap_mac() const { return config_.ap_mac; }
  Mac& mac() { return mac_; }

  void set_on_associated(std::function<void()> fn) {
    on_associated_ = std::move(fn);
  }

  // Opens a client-side TCP peer toward (server_ip, server_port).  The
  // returned peer is owned by the client; it frames segments onto the air.
  TcpPeer* OpenFlow(Ipv4Addr server_ip, std::uint16_t server_port,
                    std::uint16_t local_port, const TcpConfig& tcp_config,
                    Rng rng);

  // Sends a UDP broadcast (dst 255.255.255.255) through the AP — the
  // two-hop broadcast path that ends with every AP rebroadcasting it.
  void SendUdpBroadcast(std::uint16_t src_port, std::uint16_t dst_port,
                        std::uint16_t payload_len);

  std::uint64_t flows_opened() const { return flows_opened_; }

 private:
  enum class AssocState : std::uint8_t {
    kOff,
    kProbing,
    kAuthenticating,
    kAssociating,
    kAssociated,
  };

  struct FlowKey {
    Ipv4Addr remote_ip;
    std::uint16_t remote_port;
    std::uint16_t local_port;
    bool operator==(const FlowKey&) const = default;
  };
  struct FlowKeyHash {
    std::size_t operator()(const FlowKey& k) const {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(k.remote_ip) << 32) ^
          (static_cast<std::uint64_t>(k.remote_port) << 16) ^ k.local_port);
    }
  };

  void OnFrame(const Frame& f);
  void AdvanceAssociation();
  void SendAssocStep();
  void OnAssociated();
  void SendBody(Bytes body);
  std::uint8_t Capabilities() const {
    return config_.b_only ? kCapBOnly : 0;
  }

  EventQueue& events_;
  WiredNetwork& wired_;
  std::uint16_t index_;
  Rng rng_;
  ClientConfig config_;
  Mac mac_;

  AssocState assoc_state_ = AssocState::kOff;
  int assoc_attempts_ = 0;
  EventId assoc_timer_ = kInvalidEvent;
  std::function<void()> on_associated_;

  std::unordered_map<FlowKey, std::unique_ptr<TcpPeer>, FlowKeyHash> flows_;
  std::uint64_t flows_opened_ = 0;
};

}  // namespace jig
