#include "sim/medium.h"

#include <algorithm>

namespace jig {

void Medium::AddListener(MediumListener* listener) {
  listeners_.push_back(listener);
}

TxId Medium::Transmit(Frame frame, MacAddress transmitter, Point3 position,
                      double power_dbm, Channel channel,
                      const MediumListener* origin) {
  const TxId id = next_tx_id_++;
  ActiveTx entry;
  entry.origin = origin;
  entry.tx.id = id;
  entry.tx.frame = std::move(frame);
  entry.tx.wire = entry.tx.frame.Serialize();
  entry.tx.transmitter = transmitter;
  entry.tx.position = position;
  entry.tx.power_dbm = power_dbm;
  entry.tx.channel = channel;
  entry.tx.start = events_.now();
  entry.tx.end = events_.now() + entry.tx.frame.AirTimeMicros();

  // Offer to every co-channel listener except the transmitter itself.
  entry.receivers.reserve(listeners_.size());
  for (MediumListener* l : listeners_) {
    if (l == origin) continue;
    if (!ChannelsInterfere(l->channel(), channel)) continue;
    const double rssi = propagation_.SampleRssiDbm(
        position, l->position(), power_dbm, rng_, events_.now());
    if (rssi < kPhyDetectDbm - 6.0) continue;  // far below any effect
    PerListener pl;
    pl.listener = l;
    pl.rssi_dbm = rssi;
    // Interference already on the air when we begin.
    for (auto& [okey, other] : active_) {
      if (!ChannelsInterfere(other.tx.channel, channel)) continue;
      for (const auto& opl : other.receivers) {
        if (opl.listener == l) {
          // `other` adds interference to us at this listener.
          pl.interference_mw += DbmToMw(
              propagation_.MeanRssiDbm(other.tx.position, l->position(),
                                       other.tx.power_dbm));
          break;
        }
      }
    }
    for (const auto& nb : noise_) {
      if (nb.burst.end > events_.now()) {
        pl.interference_mw += DbmToMw(propagation_.MeanRssiDbm(
            nb.burst.position, l->position(), nb.burst.power_dbm));
      }
    }
    entry.receivers.push_back(pl);
  }

  // Symmetrically, we add interference to every in-flight transmission.
  for (auto& [okey, other] : active_) {
    if (!ChannelsInterfere(other.tx.channel, channel)) continue;
    for (auto& opl : other.receivers) {
      opl.interference_mw += DbmToMw(propagation_.MeanRssiDbm(
          position, opl.listener->position(), power_dbm));
    }
  }

  // Announce start for carrier sense.
  for (auto& pl : entry.receivers) {
    pl.announced = true;
    pl.listener->OnTxStart(entry.tx, pl.rssi_dbm);
  }

  const TrueMicros end = entry.tx.end;
  active_.emplace(id, std::move(entry));
  events_.Schedule(end, [this, id] { FinishTransmission(id); });
  return id;
}

void Medium::FinishTransmission(std::uint64_t key) {
  auto it = active_.find(key);
  if (it == active_.end()) return;
  // Move out so callbacks can start new transmissions without invalidating
  // our iteration state.
  ActiveTx entry = std::move(it->second);
  active_.erase(it);

  TruthEntry truth;
  if (truth_) {
    truth.tx_id = entry.tx.id;
    truth.start = entry.tx.start;
    truth.end = entry.tx.end;
    truth.channel = entry.tx.channel;
    truth.type = entry.tx.frame.type;
    truth.transmitter = entry.tx.transmitter;
    truth.receiver = entry.tx.frame.addr1;
    truth.sequence = entry.tx.frame.sequence;
    truth.retry = entry.tx.frame.retry;
    truth.wire_len = static_cast<std::uint32_t>(entry.tx.wire.size());
    truth.digest = ContentDigest(entry.tx.wire);
  }

  for (auto& pl : entry.receivers) {
    const double sinr =
        propagation_.SinrDb(pl.rssi_dbm, pl.interference_mw);
    const RxOutcome outcome =
        DecideReception(pl.rssi_dbm, sinr, entry.tx.frame.rate);
    if (truth_) {
      const auto mac = pl.listener->mac_address();
      if (!mac) {  // passive monitor radio
        if (outcome == RxOutcome::kOk) ++truth.monitors_ok;
        if (outcome != RxOutcome::kNotHeard) ++truth.monitors_any;
      } else if (entry.tx.frame.addr1.IsUnicast() &&
                 *mac == entry.tx.frame.addr1) {
        truth.delivered_ok = outcome == RxOutcome::kOk;
        truth.interfered = pl.interference_mw > 0.0;
      }
    }
    pl.listener->OnTxEnd(entry.tx, pl.rssi_dbm, outcome);
  }
  if (truth_) truth_->Add(truth);
}

void Medium::EmitNoise(Point3 position, double power_dbm, Micros duration) {
  NoiseBurst burst;
  burst.position = position;
  burst.power_dbm = power_dbm;
  burst.start = events_.now();
  burst.end = events_.now() + duration;
  noise_.push_back(ActiveNoise{burst});

  // The burst interferes with every transmission currently in flight.
  for (auto& [key, tx] : active_) {
    for (auto& pl : tx.receivers) {
      pl.interference_mw += DbmToMw(propagation_.MeanRssiDbm(
          position, pl.listener->position(), power_dbm));
    }
  }

  // Announce to listeners that can hear the burst at all.
  for (MediumListener* l : listeners_) {
    const double rssi =
        propagation_.MeanRssiDbm(position, l->position(), power_dbm);
    if (rssi >= kPhyDetectDbm) l->OnNoise(burst.start, duration, rssi);
  }

  events_.ScheduleIn(duration, [this] {
    const TrueMicros now = events_.now();
    std::erase_if(noise_, [now](const ActiveNoise& n) {
      return n.burst.end <= now;
    });
  });
}

int Medium::ActiveCount(Channel ch) const {
  int n = 0;
  for (const auto& [key, tx] : active_) {
    if (tx.tx.channel == ch) ++n;
  }
  return n;
}

}  // namespace jig
