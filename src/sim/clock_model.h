// Monitor capture-clock model: offset, skew, drift, jitter, quantization.
//
// The synchronization algorithm's whole reason to exist is that 156 radio
// clocks disagree (paper Section 4).  This model produces local timestamps
// with exactly the error terms the paper discusses:
//   * a large arbitrary offset (clocks start whenever the radio powered on),
//   * frequency skew — the 802.11 standard allows 100 PPM; Atheros parts do
//     much better in practice, so defaults are a few PPM,
//   * drift — slow change of skew over time (thermal), which forced the
//     EWMA skew predictor into the unification loop,
//   * per-capture jitter (interrupt/DMA latency), and
//   * 1 us quantization of the Atheros timestamp counter.
//
// Both radios of a monitor share one ClockModel instance, mirroring the
// modified MadWifi driver that slaves the second radio's timestamps to the
// first (Section 3.3) — the property bootstrap sync exploits to bridge
// channels.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/rng.h"
#include "util/time.h"

namespace jig {

struct ClockConfig {
  // Initial offset drawn uniformly in +/- this range.
  Micros max_initial_offset = Seconds(100);
  // Skew drawn from a Gaussian with this sigma (PPM).
  double skew_sigma_ppm = 5.0;
  // Drift: skew changes as a slow random walk with this step (PPM per
  // simulated second of rate change, scaled by sqrt(dt)).
  double drift_ppm_per_hour = 2.0;
  // Per-capture timestamp jitter sigma (us) — interrupt latency etc.
  double jitter_sigma_us = 1.2;
  // NTP error of the monitor's system clock (uniform +/-, us).
  Micros ntp_error_us = Milliseconds(4);
};

class ClockModel {
 public:
  ClockModel(const ClockConfig& config, Rng rng);

  // Local clock reading for a capture at true time t, including jitter and
  // 1 us quantization.  Not monotonic across calls at identical t (jitter),
  // matching real interrupt-timestamp behaviour.
  LocalMicros CaptureTimestamp(TrueMicros t);

  // Noise-free local time (no jitter), for tests and analysis.
  double LocalAt(TrueMicros t) const;

  // The monitor's NTP-disciplined system-clock estimate of UTC when the
  // local capture clock read zero.  True UTC == true time in simulation.
  std::int64_t NtpUtcOfLocalZero() const { return ntp_utc_of_local_zero_; }

  double initial_offset_us() const { return offset_us_; }
  double skew_ppm_at_start() const { return skew0_ppm_; }

 private:
  void AdvanceDriftTo(TrueMicros t);

  Rng rng_;
  double offset_us_;
  double skew0_ppm_;
  double drift_step_ppm_;  // random-walk step per drift interval
  // Piecewise-linear rate integration: skew performs a random walk sampled
  // every kDriftInterval; integrated_us_ accumulates the extra time gained.
  static constexpr TrueMicros kDriftInterval = Seconds(10);
  TrueMicros drift_sampled_until_ = 0;
  double current_skew_ppm_;
  double integrated_skew_us_ = 0.0;
  double jitter_sigma_us_ = 1.2;
  std::int64_t ntp_utc_of_local_zero_;
};

}  // namespace jig
