#include "sim/scenario.h"

#include <algorithm>

namespace jig {
namespace {

// Evenly spread selection of `want` indices out of `total` — the
// "visual redundancy" pod-reduction rule of Section 6: drop pods whose
// coverage overlaps neighbours, keeping the spatial spread.
std::vector<int> SpreadSelect(int total, int want) {
  std::vector<int> keep;
  if (want >= total) {
    for (int i = 0; i < total; ++i) keep.push_back(i);
    return keep;
  }
  for (int k = 0; k < want; ++k) {
    keep.push_back(static_cast<int>(
        (static_cast<double>(k) + 0.5) * total / want));
  }
  return keep;
}

}  // namespace

Scenario::Scenario(ScenarioConfig config)
    : config_(config),
      rng_(config.seed),
      propagation_(config.building, config.propagation),
      medium_(events_, propagation_, rng_.Fork(0x3ED), &truth_) {
  wired_ = std::make_unique<WiredNetwork>(events_, rng_.Fork(0x317),
                                          config_.wired);
  BuildAps();
  BuildPods();
  BuildClients();

  std::vector<Client*> raw_clients;
  raw_clients.reserve(clients_.size());
  for (auto& c : clients_) raw_clients.push_back(c.get());
  traffic_ = std::make_unique<TrafficManager>(events_, *wired_,
                                              std::move(raw_clients),
                                              rng_.Fork(0x7F0), config_.workload,
                                              config_.duration, &truth_);
}

Scenario::~Scenario() = default;

void Scenario::BuildAps() {
  const auto& b = config_.building;
  MacConfig mac_cfg;
  mac_cfg.tx_power_dbm = config_.ap.tx_power_dbm;
  mac_cfg.carrier_sense_dbm = config_.propagation.carrier_sense_dbm;
  int index = 0;
  for (int floor = 0; floor < b.floors; ++floor) {
    for (int i = 0; i < config_.aps_per_floor; ++i) {
      Point3 pos{b.length_m * (i + 0.5) / config_.aps_per_floor,
                 b.width_m / 2.0, floor * b.floor_height_m + 2.8};
      const Channel ch = kAllChannels[index % kAllChannels.size()];
      auto ap = std::make_unique<AccessPoint>(
          events_, medium_, *wired_, static_cast<std::uint16_t>(index), pos,
          ch, rng_.Fork(0xA000 + index), config_.ap, mac_cfg);
      ap_info_.push_back(ApInfo{ap->address(), pos, ch,
                                static_cast<std::uint16_t>(index)});
      aps_.push_back(std::move(ap));
      ++index;
    }
  }
}

void Scenario::BuildPods() {
  const auto& b = config_.building;
  // Candidate pod positions: corridor-mounted like the APs but offset so
  // pods sit between APs.
  struct Candidate {
    Point3 pos;
  };
  std::vector<Candidate> candidates;
  for (int floor = 0; floor < b.floors; ++floor) {
    for (int i = 0; i < config_.pods_per_floor; ++i) {
      candidates.push_back(Candidate{
          Point3{b.length_m * (i + 0.15) / config_.pods_per_floor,
                 b.width_m / 2.0 - 2.0, floor * b.floor_height_m + 2.5}});
    }
  }
  int total = std::min<int>(static_cast<int>(candidates.size()),
                            config_.total_pods_cap);
  const int want = config_.pods_enabled < 0
                       ? total
                       : std::min(config_.pods_enabled, total);
  const auto keep = SpreadSelect(total, want);

  RadioId next_radio = 0;
  std::uint16_t monitor_index = 0;
  for (std::size_t k = 0; k < keep.size(); ++k) {
    const auto& cand = candidates[static_cast<std::size_t>(keep[k])];
    PodInfo info;
    info.position = cand.pos;
    // Two monitors a meter apart; radio channel plan covers 1, 6, 11 and
    // doubles up on the often-busiest channel 1.
    const std::array<std::array<Channel, 2>, 2> plans = {{
        {Channel::kCh1, Channel::kCh6},
        {Channel::kCh11, Channel::kCh1},
    }};
    for (int m = 0; m < 2; ++m) {
      Point3 mon_pos = cand.pos;
      mon_pos.x += m == 0 ? -0.5 : 0.5;
      auto monitor = std::make_unique<Monitor>(
          events_, medium_, config_.clock,
          rng_.Fork(0xB000 + monitor_index), static_cast<std::uint16_t>(k),
          monitor_index, mon_pos, plans[m], next_radio);
      info.radios.push_back(next_radio);
      info.radios.push_back(static_cast<RadioId>(next_radio + 1));
      next_radio = static_cast<RadioId>(next_radio + 2);
      ++monitor_index;
      monitors_.push_back(std::move(monitor));
    }
    pod_info_.push_back(std::move(info));
  }
}

Channel Scenario::BestApFor(Point3 pos, double tx_power,
                            std::uint16_t* ap_index, double* rssi_out) const {
  double best_rssi = -1e9;
  std::uint16_t best = 0;
  for (const auto& ap : ap_info_) {
    const double rssi =
        propagation_.MeanRssiDbm(ap.position, pos, config_.ap.tx_power_dbm);
    if (rssi > best_rssi) {
      best_rssi = rssi;
      best = ap.index;
    }
  }
  (void)tx_power;
  if (ap_index) *ap_index = best;
  if (rssi_out) *rssi_out = best_rssi;
  return ap_info_[best].channel;
}

void Scenario::BuildClients() {
  const auto& b = config_.building;
  for (int i = 0; i < config_.clients; ++i) {
    // Offices flank the corridor: two bands across the building width.
    const double x = rng_.NextDouble(2.0, b.length_m - 2.0);
    const double y = rng_.NextBool(0.5) ? rng_.NextDouble(3.0, 14.0)
                                        : rng_.NextDouble(26.0, 37.0);
    const int floor = static_cast<int>(rng_.NextBelow(
        static_cast<std::uint64_t>(b.floors)));
    const Point3 pos{x, y, floor * b.floor_height_m + 1.0};

    ClientConfig cfg;
    cfg.b_only = rng_.NextBool(config_.b_client_fraction);
    cfg.ip = MakeIpv4(10, 2, static_cast<std::uint8_t>(i >> 8),
                      static_cast<std::uint8_t>(i & 0xFF));
    std::uint16_t ap_index = 0;
    double rssi = 0.0;
    const Channel ch = BestApFor(pos, config_.client_tx_power_dbm, &ap_index,
                                 &rssi);
    cfg.ap_index = ap_index;
    cfg.ap_mac = ap_info_[ap_index].mac;

    MacConfig mac_cfg;
    mac_cfg.tx_power_dbm = config_.client_tx_power_dbm;
    mac_cfg.carrier_sense_dbm = config_.propagation.carrier_sense_dbm;
    mac_cfg.b_only = cfg.b_only;

    auto client = std::make_unique<Client>(
        events_, medium_, *wired_, static_cast<std::uint16_t>(i), pos, ch,
        rng_.Fork(0xC000 + i), mac_cfg, cfg);

    // Seed ARF near the sustainable rate for the link budget, as drivers
    // converge to within a few frames.
    PhyRate seed = PhyRate::kB1;
    const auto consider = [&](PhyRate r) {
      if (rssi >= SensitivityDbm(r) + 6.0) seed = r;
    };
    if (cfg.b_only) {
      for (PhyRate r : kBRates) consider(r);
    } else {
      for (PhyRate r : kBRates) consider(r);
      for (PhyRate r : kGRates) {
        if (r >= PhyRate::kG12) consider(r);
      }
    }
    client->mac().SeedRate(cfg.ap_mac, seed);
    aps_[ap_index]->mac().SeedRate(client->address(), seed);

    client_info_.push_back(ClientInfo{client->address(), cfg.ip, pos,
                                      cfg.b_only, ap_index,
                                      ap_info_[ap_index].channel});
    clients_.push_back(std::move(client));
  }
}

void Scenario::ScheduleNoise() {
  if (config_.noise_bursts_per_min <= 0.0) return;
  ScheduleNoiseTick();
}

void Scenario::ScheduleNoiseTick() {
  const auto& b = config_.building;
  const double mean_gap_us = 60.0 * 1e6 / config_.noise_bursts_per_min;
  const Micros gap = std::max<Micros>(
      static_cast<Micros>(rng_.NextExponential(mean_gap_us)),
      Milliseconds(50));
  events_.ScheduleIn(gap, [this, &b] {
    // One kitchen per floor, near a building end; pick one per burst.
    const int floor =
        static_cast<int>(rng_.NextBelow(static_cast<std::uint64_t>(b.floors)));
    const Point3 pos{b.length_m - 6.0, 6.0, floor * b.floor_height_m + 1.2};
    const Micros dur = rng_.NextInt(Milliseconds(5), Milliseconds(60));
    medium_.EmitNoise(pos, rng_.NextDouble(14.0, 26.0), dur);
    ScheduleNoiseTick();
  });
}

void Scenario::RoamClient(std::size_t i, Point3 pos) {
  std::uint16_t ap_index = 0;
  double rssi = 0.0;
  const Channel ch =
      BestApFor(pos, config_.client_tx_power_dbm, &ap_index, &rssi);
  clients_[i]->MoveTo(pos, ap_info_[ap_index].mac, ap_index, ch);
  client_info_[i].position = pos;
  client_info_[i].ap_index = ap_index;
  client_info_[i].channel = ch;
  // Re-seed rates for the new link budget.
  PhyRate seed = PhyRate::kB1;
  const auto consider = [&](PhyRate r) {
    if (rssi >= SensitivityDbm(r) + 6.0) seed = r;
  };
  for (PhyRate r : kBRates) consider(r);
  if (!clients_[i]->b_only()) {
    for (PhyRate r : kGRates) {
      if (r >= PhyRate::kG12) consider(r);
    }
  }
  clients_[i]->mac().SeedRate(ap_info_[ap_index].mac, seed);
  aps_[ap_index]->mac().SeedRate(clients_[i]->address(), seed);
}

void Scenario::RunUntil(TrueMicros t) {
  if (!started_) {
    started_ = true;
    for (auto& ap : aps_) ap->Start();
    traffic_->Start();
    ScheduleNoise();
  }
  events_.RunUntil(std::min<TrueMicros>(t, config_.duration));
}

void Scenario::Run() { RunUntil(config_.duration); }

TraceSet Scenario::TakeTraces() {
  // Radios were numbered in construction order; emit in that order.
  std::vector<std::unique_ptr<MemoryTrace>> traces;
  for (auto& mon : monitors_) {
    for (std::size_t r = 0; r < mon->radio_count(); ++r) {
      traces.push_back(mon->radio(r).TakeTrace());
    }
  }
  std::sort(traces.begin(), traces.end(), [](const auto& a, const auto& b) {
    return a->header().radio < b->header().radio;
  });
  TraceSet set;
  for (auto& t : traces) set.Add(std::move(t));
  return set;
}

}  // namespace jig
