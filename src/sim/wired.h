// Wired distribution network, wired sniffer, and server-side endpoints.
//
// The paper validates wireless coverage against "a second trace of the same
// traffic captured on the wired distribution network" (Section 6, Figures 6
// and 7): every unicast packet crossing the wire must correspond to a DATA
// frame on the air.  This module is that wire: it carries packets between
// APs and wired hosts with configurable latency and loss, taps every packet
// at the building switch, and fans wired broadcasts (ARP) out to all APs at
// effectively the same instant — the implicit-synchronization artifact the
// paper calls out in Section 7.1.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.h"
#include "util/rng.h"
#include "wifi/mac_address.h"
#include "wifi/packet.h"

namespace jig {

// One packet observed at the wired tap.
struct WiredRecord {
  TrueMicros time = 0;
  bool to_wireless = false;      // direction: wire -> air
  std::uint16_t ap_index = 0;    // bridging AP
  MacAddress wireless_station;   // the client behind the AP
  Ipv4Addr src_ip = 0;
  Ipv4Addr dst_ip = 0;
  std::uint8_t ip_proto = 0;
  TcpSegment tcp;                // valid when ip_proto == kIpProtoTcp
  UdpDatagram udp;               // valid when ip_proto == kIpProtoUdp
};

struct WiredConfig {
  // One-way wired/Internet delay range per server (drawn at registration).
  Micros min_one_way_delay = Milliseconds(3);
  Micros max_one_way_delay = Milliseconds(40);
  Micros delay_jitter = Milliseconds(2);
  double loss_probability = 0.002;  // per packet per direction
  // Optional jitter added when fanning a wired broadcast out to APs — the
  // paper proposes this as a fix for self-interfering synchronized
  // broadcasts; 0 reproduces the observed (pathological) behaviour.
  Micros broadcast_jitter = 0;
};

class WiredNetwork {
 public:
  // AP-side hooks, registered by the scenario.
  struct ApPort {
    // Deliver a unicast IP packet body to `client` through this AP.
    std::function<void(MacAddress client, Bytes body)> deliver_unicast;
    // Broadcast a frame body on this AP's air.
    std::function<void(Bytes body)> deliver_broadcast;
  };
  // Server-side packet sink (dst_ip keyed).
  using ServerSink = std::function<void(const PacketInfo&, Bytes body)>;

  WiredNetwork(EventQueue& events, Rng rng, WiredConfig config)
      : events_(events), rng_(rng), config_(config) {}

  void RegisterAp(std::uint16_t ap_index, ApPort port);
  // Client location update (association); ip -> (mac, ap).
  void RegisterClient(MacAddress mac, Ipv4Addr ip, std::uint16_t ap_index);
  void UnregisterClient(Ipv4Addr ip);
  // Wired server: returns the delay assigned to it.
  Micros RegisterServer(Ipv4Addr ip, ServerSink sink);

  // AP -> wire: a frame body arrived from `client` through AP `ap_index`.
  // Parses it; unicast IP goes to the matching server (tapped), broadcast
  // UDP / ARP replies fan out as wired broadcasts.
  void DeliverFromWireless(std::uint16_t ap_index, MacAddress client,
                           Bytes body);

  // Server -> wireless client (by IP).  Applies wired delay + loss; logs at
  // the tap on arrival at the AP.
  void SendToWireless(Ipv4Addr src_ip, Ipv4Addr dst_ip, Bytes body);

  // Wired broadcast (e.g. the ARP tracker): every AP transmits it on air.
  void BroadcastToAir(Bytes body);

  const std::vector<WiredRecord>& sniffer() const { return sniffer_; }
  std::uint64_t wired_losses() const { return wired_losses_; }

  // Client lookup helpers for traffic wiring.
  bool ClientRegistered(Ipv4Addr ip) const { return clients_.contains(ip); }

 private:
  struct ClientEntry {
    MacAddress mac;
    std::uint16_t ap_index = 0;
  };
  struct ServerEntry {
    ServerSink sink;
    Micros one_way_delay = 0;
  };

  void Tap(bool to_wireless, std::uint16_t ap_index, MacAddress station,
           const PacketInfo& info);
  Micros DelayFor(Ipv4Addr server_ip);
  // FIFO discipline: switches don't reorder a flow; per-destination arrival
  // times are clamped monotonic so jitter never reorders segments (which
  // would fake duplicate-ACK loss signals).
  TrueMicros OrderedArrival(Ipv4Addr dst, Micros delay);

  EventQueue& events_;
  Rng rng_;
  WiredConfig config_;
  std::unordered_map<std::uint16_t, ApPort> aps_;
  std::unordered_map<Ipv4Addr, ClientEntry> clients_;
  std::unordered_map<Ipv4Addr, ServerEntry> servers_;
  std::unordered_map<Ipv4Addr, TrueMicros> last_arrival_;
  std::vector<WiredRecord> sniffer_;
  std::uint64_t wired_losses_ = 0;
};

}  // namespace jig
