#include "phy/propagation.h"

#include <cmath>

namespace jig {
namespace {

// Deterministic 64-bit mix for the shadowing hash.
std::uint64_t Mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

// Maps a point to a quantized cell id (0.5 m grid) so shadowing is stable
// for stationary nodes and varies smoothly for roaming ones.
std::uint64_t CellId(const Point3& p) {
  const auto qx = static_cast<std::uint64_t>((p.x + 1000.0) * 2.0);
  const auto qy = static_cast<std::uint64_t>((p.y + 1000.0) * 2.0);
  const auto qz = static_cast<std::uint64_t>((p.z + 1000.0) * 2.0);
  return (qx << 42) ^ (qy << 21) ^ qz;
}

}  // namespace

double DbmToMw(double dbm) { return std::pow(10.0, dbm / 10.0); }
double MwToDbm(double mw) {
  return mw <= 0.0 ? -300.0 : 10.0 * std::log10(mw);
}

double PropagationModel::ShadowingDb(const Point3& a, const Point3& b) const {
  // Symmetric: combine endpoint ids order-independently.
  const std::uint64_t ia = CellId(a), ib = CellId(b);
  const std::uint64_t key =
      Mix(config_.shadowing_seed ^ (ia ^ ib)) ^ Mix(ia + ib);
  // Two 32-bit halves -> approximately standard normal via sum of uniforms
  // (Irwin–Hall with 12 terms would be heavy; 4 terms is adequate here).
  double sum = 0.0;
  std::uint64_t s = key;
  for (int i = 0; i < 4; ++i) {
    s = Mix(s + 0x9E3779B97F4A7C15ull);
    sum += static_cast<double>(s >> 11) * 0x1.0p-53;
  }
  // Sum of 4 U(0,1): mean 2, var 1/3  ->  normalize.
  const double z = (sum - 2.0) / std::sqrt(1.0 / 3.0);
  return z * config_.shadowing_sigma_db;
}

double PropagationModel::MeanRssiDbm(const Point3& tx, const Point3& rx,
                                     double tx_power_dbm) const {
  const double d = std::max(Distance(tx, rx), 0.5);
  double pl = config_.path_loss_at_1m_db +
              10.0 * config_.path_loss_exponent * std::log10(d);
  pl += building_.WallsBetween(tx, rx) * config_.wall_loss_db;
  pl += building_.FloorsBetween(tx, rx) * config_.floor_loss_db;
  pl += ShadowingDb(tx, rx);
  return tx_power_dbm - pl;
}

double PropagationModel::SlowFadeDb(const Point3& tx, const Point3& rx,
                                    TrueMicros now) const {
  if (config_.slow_fading_sigma_db <= 0.0 ||
      config_.slow_fading_period <= 0) {
    return 0.0;
  }
  const std::uint64_t bucket = static_cast<std::uint64_t>(
      now / config_.slow_fading_period);
  const std::uint64_t ia = CellId(tx), ib = CellId(rx);
  std::uint64_t s = Mix((ia ^ ib) + bucket * 0x9E3779B97F4A7C15ull) ^
                    Mix(config_.shadowing_seed + bucket);
  double sum = 0.0;
  for (int i = 0; i < 4; ++i) {
    s = Mix(s + 0x9E3779B97F4A7C15ull);
    sum += static_cast<double>(s >> 11) * 0x1.0p-53;
  }
  const double z = (sum - 2.0) / std::sqrt(1.0 / 3.0);
  return z * config_.slow_fading_sigma_db;
}

double PropagationModel::SampleRssiDbm(const Point3& tx, const Point3& rx,
                                       double tx_power_dbm, Rng& rng,
                                       TrueMicros now) const {
  return MeanRssiDbm(tx, rx, tx_power_dbm) + SlowFadeDb(tx, rx, now) +
         rng.NextGaussian(0.0, config_.fading_sigma_db);
}

double PropagationModel::SinrDb(double signal_dbm,
                                double interference_mw) const {
  const double denom_mw = NoiseFloorMw() + interference_mw;
  return signal_dbm - MwToDbm(denom_mw);
}

RxOutcome DecideReception(double rssi_dbm, double sinr_db, PhyRate rate) {
  if (rssi_dbm < kPhyDetectDbm) return RxOutcome::kNotHeard;
  if (rssi_dbm < SensitivityDbm(rate)) return RxOutcome::kPhyError;
  if (sinr_db < RequiredSinrDb(rate)) return RxOutcome::kFcsError;
  return RxOutcome::kOk;
}

}  // namespace jig
