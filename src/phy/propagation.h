// Indoor radio propagation and reception model.
//
// Log-distance path loss with wall/floor attenuation and per-link lognormal
// shadowing.  The model's job is not RF fidelity per se but to reproduce the
// observational regime the paper describes: monitors hear overlapping
// subsets of traffic (most jframes have ~3 instances, Table 1), distant
// monitors log PHY/CRC errors (~47% of events), and hidden terminals exist
// (Section 7.2).
#pragma once

#include <cstdint>

#include "phy/geometry.h"
#include "util/rng.h"
#include "util/time.h"
#include "wifi/rates.h"

namespace jig {

// Defaults are calibrated against the paper's observed regime, not a
// textbook channel: with the default 39-pod deployment they produce ~97%
// wired-trace coverage (paper: 97%), single-digit monitor observations per
// transmission (paper: 2.97), and abundant hidden terminals.  The effective
// exponent is high because it folds in everything a real occupied building
// does to 2.4 GHz that the geometric wall count does not capture.
struct PropagationConfig {
  double path_loss_at_1m_db = 40.0;  // free space at 2.4 GHz
  double path_loss_exponent = 4.5;   // effective indoor NLOS (see above)
  double wall_loss_db = 10.0;
  double floor_loss_db = 28.0;
  double shadowing_sigma_db = 11.0;  // static per-link lognormal shadowing
  double fading_sigma_db = 3.0;      // per-frame fast fading
  // Slow (time-correlated) fading: people and doors move, links sink into
  // fades lasting longer than a full ARQ retry burst.  Without this, i.i.d.
  // per-frame fading lets link-layer retransmission recover nearly every
  // loss and TCP never sees the wireless losses that dominate Figure 11.
  double slow_fading_sigma_db = 6.5;
  Micros slow_fading_period = 300'000;  // 300 ms coherence time
  double noise_floor_dbm = -95.0;
  // Energy-detect carrier-sense threshold: the medium appears busy when the
  // aggregate received power exceeds this.
  double carrier_sense_dbm = -82.0;
  std::uint64_t shadowing_seed = 0x5AD0;
};

double DbmToMw(double dbm);
double MwToDbm(double mw);

class PropagationModel {
 public:
  PropagationModel(const BuildingModel& building, PropagationConfig config)
      : building_(building), config_(config) {}

  const PropagationConfig& config() const { return config_; }
  const BuildingModel& building() const { return building_; }

  // Mean received power, excluding fast fading.  Deterministic per (a, b):
  // the shadowing term is hashed from quantized endpoints, so it is stable
  // across calls and symmetric in its arguments.
  double MeanRssiDbm(const Point3& tx, const Point3& rx,
                     double tx_power_dbm) const;

  // One fading realization on top of MeanRssiDbm at time `now`: fast fading
  // from `rng` plus the deterministic slow-fade state of this link's
  // coherence interval (co-located receivers share fades, as in life).
  double SampleRssiDbm(const Point3& tx, const Point3& rx, double tx_power_dbm,
                       Rng& rng, TrueMicros now) const;

  // Slow-fade component alone (deterministic in (link, time bucket)).
  double SlowFadeDb(const Point3& tx, const Point3& rx, TrueMicros now) const;

  double NoiseFloorMw() const { return DbmToMw(config_.noise_floor_dbm); }

  // SINR of a signal against noise plus total interference power (mW).
  double SinrDb(double signal_dbm, double interference_mw) const;

 private:
  double ShadowingDb(const Point3& a, const Point3& b) const;

  BuildingModel building_;
  PropagationConfig config_;
};

// Reception outcome of one frame at one radio, in decreasing signal quality.
enum class RxOutcome : std::uint8_t {
  kOk,        // decoded, FCS valid
  kFcsError,  // PLCP locked but payload corrupted
  kPhyError,  // energy detected, could not decode PLCP payload
  kNotHeard,  // below detection threshold; no event logged
};

// Decides the outcome given the sampled RSSI and the SINR over the frame.
// `sinr_db` already accounts for interference from overlapping frames.
RxOutcome DecideReception(double rssi_dbm, double sinr_db, PhyRate rate);

}  // namespace jig
