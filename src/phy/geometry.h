// Building geometry for the simulated deployment (paper Section 3.1).
//
// The UCSD CSE building is a four-story, ~150,000 sq-ft structure; spatial
// diversity across its floors and wings is precisely what prevents any
// single monitor from hearing all traffic and forces the multi-monitor
// architecture.  We model a comparable building: four rectangular floors
// (two wings joined by a core), with interior walls approximated on a room
// grid.  The propagation model counts walls and floors crossed by the
// straight line between two points.
#pragma once

#include <cmath>
#include <cstdint>

namespace jig {

struct Point3 {
  double x = 0.0;  // meters, along the building's long axis
  double y = 0.0;  // meters, across
  double z = 0.0;  // meters, up

  friend bool operator==(const Point3&, const Point3&) = default;
};

inline double Distance(const Point3& a, const Point3& b) {
  const double dx = a.x - b.x, dy = a.y - b.y, dz = a.z - b.z;
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

// Building dimensions: 90 m x 40 m per floor (~3,600 m^2 = 38,750 sq ft;
// four floors ≈ 155,000 sq ft, matching the paper's 150,000).
struct BuildingModel {
  double length_m = 90.0;
  double width_m = 40.0;
  int floors = 4;
  double floor_height_m = 4.0;
  // Average office dimension used to estimate interior wall crossings.
  double room_pitch_m = 6.0;

  double FloorZ(int floor) const { return floor * floor_height_m + 1.5; }
  int FloorOf(const Point3& p) const {
    int f = static_cast<int>(p.z / floor_height_m);
    if (f < 0) f = 0;
    if (f >= floors) f = floors - 1;
    return f;
  }

  // Number of concrete floor slabs a straight path penetrates.
  int FloorsBetween(const Point3& a, const Point3& b) const {
    return std::abs(FloorOf(a) - FloorOf(b));
  }

  // Estimated interior walls crossed: horizontal distance divided by the
  // room pitch, less one (a same-room pair crosses no wall).  This grid
  // approximation gives the right qualitative footprint shape — signal
  // carries down corridors, dies across many offices — without tracing
  // actual wall segments.
  int WallsBetween(const Point3& a, const Point3& b) const {
    const double dx = a.x - b.x, dy = a.y - b.y;
    const double horiz = std::sqrt(dx * dx + dy * dy);
    const int crossings = static_cast<int>(horiz / room_pitch_m);
    return crossings > 0 ? crossings - 1 : 0;
  }

  bool Contains(const Point3& p) const {
    return p.x >= 0 && p.x <= length_m && p.y >= 0 && p.y <= width_m &&
           p.z >= 0 && p.z <= floors * floor_height_m;
  }
};

}  // namespace jig
