#include "util/compression.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace jig {
namespace {

constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;
// Hash-chain walk bound for LzLevel::kDefault.  Deep enough to find the
// long header repeats capture data is full of, small enough that worst-case
// input degrades to O(n * 32) rather than O(n * window).
constexpr int kDefaultChainDepth = 32;
// Sentinel for "no previous position with this hash".
constexpr std::uint32_t kNilPos = 0xFFFFFFFFu;

std::uint32_t Hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void PutU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  PutU16(out, static_cast<std::uint16_t>(v));
  PutU16(out, static_cast<std::uint16_t>(v >> 16));
}

// Flushes pending literals as runs of <=128 bytes.
void FlushLiterals(std::vector<std::uint8_t>& out, const std::uint8_t* base,
                   std::size_t start, std::size_t end) {
  while (start < end) {
    const std::size_t run = std::min<std::size_t>(end - start, 0x80);
    out.push_back(static_cast<std::uint8_t>(run - 1));
    out.insert(out.end(), base + start, base + start + run);
    start += run;
  }
}

std::size_t MatchLength(const std::uint8_t* a, const std::uint8_t* b,
                        std::size_t limit) {
  std::size_t len = 0;
  while (len + 8 <= limit) {
    std::uint64_t va;
    std::uint64_t vb;
    std::memcpy(&va, a + len, 8);
    std::memcpy(&vb, b + len, 8);
    if (va != vb) {
      return len + static_cast<std::size_t>(std::countr_zero(va ^ vb) >> 3);
    }
    len += 8;
  }
  while (len < limit && a[len] == b[len]) ++len;
  return len;
}

}  // namespace

std::vector<std::uint8_t> LzCompress(std::span<const std::uint8_t> raw,
                                     LzLevel level) {
  std::vector<std::uint8_t> out;
  out.reserve(raw.size() / 2 + 16);
  PutU32(out, static_cast<std::uint32_t>(raw.size()));

  const std::uint8_t* data = raw.data();
  const std::size_t n = raw.size();
  const int max_chain = level == LzLevel::kFast ? 1 : kDefaultChainDepth;

  // head[h] is the most recent position hashing to h; prev[pos] links each
  // inserted position to the previous one with the same hash, forming the
  // chain the finder walks newest-first (so equal-length ties resolve to
  // the nearest, i.e. smallest, distance).
  std::vector<std::uint32_t> head(kHashSize, kNilPos);
  std::vector<std::uint32_t> prev(n >= kLzMinMatch ? n : 0);

  const auto insert = [&](std::size_t i) {
    const std::uint32_t h = Hash4(data + i);
    prev[i] = head[h];
    head[h] = static_cast<std::uint32_t>(i);
  };

  std::size_t pos = 0;
  std::size_t literal_start = 0;
  while (pos + kLzMinMatch <= n) {
    std::uint32_t cand = head[Hash4(data + pos)];
    insert(pos);

    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    const std::size_t limit = std::min(n - pos, kLzMaxMatch);
    for (int depth = 0; depth < max_chain && cand != kNilPos; ++depth) {
      const std::size_t dist = pos - cand;
      if (dist > kLzWindow) break;  // chain positions only get older
      // Cheap reject: a longer match must agree at the first byte the
      // current best got wrong.
      if (best_len == 0 || data[cand + best_len] == data[pos + best_len]) {
        const std::size_t len = MatchLength(data + cand, data + pos, limit);
        if (len > best_len) {
          best_len = len;
          best_dist = dist;
          if (len == limit) break;
        }
      }
      cand = prev[cand];
    }

    if (best_len >= kLzMinMatch) {
      FlushLiterals(out, data, literal_start, pos);
      out.push_back(static_cast<std::uint8_t>(
          0x80u | static_cast<std::uint8_t>(best_len - kLzMinMatch)));
      PutU16(out, static_cast<std::uint16_t>(best_dist));
      // Insert hashes inside the match so later data can reference it.
      const std::size_t stop = std::min(pos + best_len, n - kLzMinMatch + 1);
      for (std::size_t i = pos + 1; i < stop; ++i) insert(i);
      pos += best_len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  FlushLiterals(out, data, literal_start, n);
  return out;
}

std::vector<std::uint8_t> LzDecompress(std::span<const std::uint8_t> packed) {
  if (packed.size() < 4) {
    throw LzTruncatedError("LzDecompress: short header");
  }
  const std::uint32_t raw_size = static_cast<std::uint32_t>(packed[0]) |
                                 (static_cast<std::uint32_t>(packed[1]) << 8) |
                                 (static_cast<std::uint32_t>(packed[2]) << 16) |
                                 (static_cast<std::uint32_t>(packed[3]) << 24);

  // A match token (3 bytes) emits at most kLzMaxMatch bytes, so no
  // conforming stream expands beyond kLzMaxMatch per input byte; a declared
  // raw size past that is self-inconsistent.  Rejecting it here (and capping
  // the upfront reserve) keeps a hostile 4-byte header from demanding a
  // 4 GiB allocation — std::bad_alloc is not part of the error taxonomy.
  if (raw_size > (packed.size() - 4) * kLzMaxMatch) {
    throw LzCorruptError("LzDecompress: declared raw size unreachable");
  }
  constexpr std::size_t kReserveCap = 1u << 20;
  std::vector<std::uint8_t> out;
  out.reserve(std::min<std::size_t>(raw_size, kReserveCap));
  std::size_t pos = 4;
  const std::size_t n = packed.size();
  while (pos < n) {
    const std::uint8_t control = packed[pos++];
    if (control < 0x80) {
      const std::size_t run = static_cast<std::size_t>(control) + 1;
      if (pos + run > n) {
        throw LzTruncatedError("LzDecompress: literal run truncated");
      }
      if (out.size() + run > raw_size) {
        throw LzCorruptError("LzDecompress: output exceeds declared raw size");
      }
      out.insert(out.end(), packed.begin() + pos, packed.begin() + pos + run);
      pos += run;
    } else {
      const std::size_t len = (control & 0x7Fu) + kLzMinMatch;
      if (pos + 2 > n) {
        throw LzTruncatedError("LzDecompress: match token truncated");
      }
      const std::size_t dist = static_cast<std::size_t>(packed[pos]) |
                               (static_cast<std::size_t>(packed[pos + 1]) << 8);
      pos += 2;
      if (dist == 0 || dist > out.size()) {
        throw LzCorruptError("LzDecompress: bad match distance");
      }
      if (out.size() + len > raw_size) {
        throw LzCorruptError("LzDecompress: output exceeds declared raw size");
      }
      // Byte-by-byte copy: overlapping matches (dist < len) are legal and
      // encode runs, so memcpy would be wrong here.
      std::size_t src = out.size() - dist;
      for (std::size_t i = 0; i < len; ++i) out.push_back(out[src + i]);
    }
  }
  if (out.size() != raw_size) {
    throw LzTruncatedError(
        "LzDecompress: stream ends before declared raw size");
  }
  return out;
}

}  // namespace jig
