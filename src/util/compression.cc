#include "util/compression.h"

#include <array>
#include <cstring>
#include <stdexcept>

namespace jig {
namespace {

constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;

std::uint32_t Hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void PutU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  PutU16(out, static_cast<std::uint16_t>(v));
  PutU16(out, static_cast<std::uint16_t>(v >> 16));
}

// Flushes pending literals as runs of <=128 bytes.
void FlushLiterals(std::vector<std::uint8_t>& out, const std::uint8_t* base,
                   std::size_t start, std::size_t end) {
  while (start < end) {
    const std::size_t run = std::min<std::size_t>(end - start, 0x80);
    out.push_back(static_cast<std::uint8_t>(run - 1));
    out.insert(out.end(), base + start, base + start + run);
    start += run;
  }
}

}  // namespace

std::vector<std::uint8_t> LzCompress(std::span<const std::uint8_t> raw) {
  std::vector<std::uint8_t> out;
  out.reserve(raw.size() / 2 + 16);
  PutU32(out, static_cast<std::uint32_t>(raw.size()));

  const std::uint8_t* data = raw.data();
  const std::size_t n = raw.size();
  std::array<std::int64_t, kHashSize> table;
  table.fill(-1);

  std::size_t pos = 0;
  std::size_t literal_start = 0;
  while (pos + kLzMinMatch <= n) {
    const std::uint32_t h = Hash4(data + pos);
    const std::int64_t cand = table[h];
    table[h] = static_cast<std::int64_t>(pos);

    std::size_t match_len = 0;
    if (cand >= 0 && pos - static_cast<std::size_t>(cand) <= kLzWindow) {
      const std::uint8_t* a = data + cand;
      const std::uint8_t* b = data + pos;
      const std::size_t limit = std::min(n - pos, kLzMaxMatch);
      while (match_len < limit && a[match_len] == b[match_len]) ++match_len;
    }

    if (match_len >= kLzMinMatch) {
      FlushLiterals(out, data, literal_start, pos);
      out.push_back(static_cast<std::uint8_t>(
          0x80u | static_cast<std::uint8_t>(match_len - kLzMinMatch)));
      PutU16(out, static_cast<std::uint16_t>(pos - cand));
      // Insert hashes inside the match so later data can reference it.
      const std::size_t stop = std::min(pos + match_len, n - kLzMinMatch + 1);
      for (std::size_t i = pos + 1; i < stop; ++i) {
        table[Hash4(data + i)] = static_cast<std::int64_t>(i);
      }
      pos += match_len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  FlushLiterals(out, data, literal_start, n);
  return out;
}

std::vector<std::uint8_t> LzDecompress(std::span<const std::uint8_t> packed) {
  if (packed.size() < 4) throw std::runtime_error("LzDecompress: short header");
  std::uint32_t raw_size;
  std::memcpy(&raw_size, packed.data(), 4);
  // Stored little-endian by PutU32 on all supported targets; re-read portably.
  raw_size = static_cast<std::uint32_t>(packed[0]) |
             (static_cast<std::uint32_t>(packed[1]) << 8) |
             (static_cast<std::uint32_t>(packed[2]) << 16) |
             (static_cast<std::uint32_t>(packed[3]) << 24);

  std::vector<std::uint8_t> out;
  out.reserve(raw_size);
  std::size_t pos = 4;
  const std::size_t n = packed.size();
  while (pos < n) {
    const std::uint8_t control = packed[pos++];
    if (control < 0x80) {
      const std::size_t run = static_cast<std::size_t>(control) + 1;
      if (pos + run > n) throw std::runtime_error("LzDecompress: bad literal");
      out.insert(out.end(), packed.begin() + pos, packed.begin() + pos + run);
      pos += run;
    } else {
      const std::size_t len = (control & 0x7Fu) + kLzMinMatch;
      if (pos + 2 > n) throw std::runtime_error("LzDecompress: bad match");
      const std::size_t dist = static_cast<std::size_t>(packed[pos]) |
                               (static_cast<std::size_t>(packed[pos + 1]) << 8);
      pos += 2;
      if (dist == 0 || dist > out.size()) {
        throw std::runtime_error("LzDecompress: bad distance");
      }
      // Byte-by-byte copy: overlapping matches (dist < len) are legal and
      // encode runs, so memcpy would be wrong here.
      std::size_t src = out.size() - dist;
      for (std::size_t i = 0; i < len; ++i) out.push_back(out[src + i]);
    }
  }
  if (out.size() != raw_size) {
    throw std::runtime_error("LzDecompress: size mismatch");
  }
  return out;
}

}  // namespace jig
