// Time types used throughout Jigsaw.
//
// All air-side timing in this codebase is expressed in integer microseconds,
// matching the 1 us resolution of the Atheros capture clock the paper's
// monitors use.  Two distinct notions of time exist and must not be mixed:
//
//  * TrueMicros   — the simulator's ground-truth clock (exists only inside
//                   the simulation substrate; real deployments never see it).
//  * LocalMicros  — a monitor radio's local capture clock, subject to offset,
//                   skew and drift.
//  * UniversalMicros — Jigsaw's synthesized "universal time" standard, the
//                   output of bootstrap synchronization (paper Section 4.1).
//
// They are all 64-bit tick counts; the type aliases exist to document intent
// at interfaces.  Arithmetic helpers are deliberately plain: the values are
// durations/instants in us and code reads best with ordinary integer math.
#pragma once

#include <cstdint>

namespace jig {

using Micros = std::int64_t;

using TrueMicros = Micros;       // simulator ground truth
using LocalMicros = Micros;      // per-radio capture clock
using UniversalMicros = Micros;  // Jigsaw universal time

constexpr Micros kMicrosPerMilli = 1'000;
constexpr Micros kMicrosPerSecond = 1'000'000;
constexpr Micros kMicrosPerMinute = 60 * kMicrosPerSecond;
constexpr Micros kMicrosPerHour = 60 * kMicrosPerMinute;

constexpr Micros Milliseconds(std::int64_t ms) { return ms * kMicrosPerMilli; }
constexpr Micros Seconds(std::int64_t s) { return s * kMicrosPerSecond; }
constexpr Micros Minutes(std::int64_t m) { return m * kMicrosPerMinute; }
constexpr Micros Hours(std::int64_t h) { return h * kMicrosPerHour; }

constexpr double ToSeconds(Micros us) {
  return static_cast<double>(us) / static_cast<double>(kMicrosPerSecond);
}

}  // namespace jig
