// Deterministic random number generation for the simulation substrate.
//
// Every stochastic component of the simulator (clock skews, path-loss
// shadowing, traffic arrivals, backoff draws...) derives its stream from a
// single scenario seed so that experiments are exactly reproducible.  Rng is
// a thin wrapper over a 64-bit SplitMix/xoshiro-style generator with the
// distribution helpers the codebase needs; it avoids <random> distribution
// objects whose sequences vary across standard library implementations.
#pragma once

#include <cstdint>

namespace jig {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) { Reseed(seed); }

  void Reseed(std::uint64_t seed);

  // Uniform 64-bit value.
  std::uint64_t NextU64();

  // Uniform in [0, bound) — bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Standard normal via Box–Muller (cached second value).
  double NextGaussian();

  // Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  // Exponential with the given mean (> 0).
  double NextExponential(double mean);

  // Bounded Pareto-ish heavy tail in [min, cap] with shape alpha — used for
  // flow sizes so the traffic mix has both mice and elephants.
  double NextHeavyTail(double min, double cap, double alpha);

  // Derives an independent child generator; stable across runs for the same
  // (seed, stream) pair.  Used to give each station/pod its own stream.
  Rng Fork(std::uint64_t stream);

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace jig
