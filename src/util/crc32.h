// CRC-32 (IEEE 802.3 polynomial), used as the 802.11 frame check sequence.
//
// 802.11 frames carry a 4-byte FCS computed over the MAC header and body with
// the same polynomial as Ethernet.  Jigsaw uses the FCS both to detect
// corrupted captures and as a cheap first-stage comparison key during frame
// unification (paper Section 4.2), so the implementation lives in util where
// both the simulator and the core library can reach it.
//
// The update loop is runtime-dispatched, fastest available first:
//   * carry-less-multiply folding (x86 PCLMULQDQ, the zlib/Intel fold-by-4
//     scheme) for buffers of 64+ bytes,
//   * ARMv8 CRC32 instructions where the compiler targets them,
//   * slice-by-8 tables (8 bytes per iteration) everywhere else.
// Every path computes the identical reflected-0x04C11DB7 CRC; the dispatch
// is selected once per process and is observable via ActiveCrc32Impl() so
// tests can assert which engine their differential vectors exercised.
#pragma once

#include <cstdint>
#include <span>

namespace jig {

// Computes the CRC-32 of `data` (reflected, init 0xFFFFFFFF, final xor
// 0xFFFFFFFF — i.e. the standard IEEE 802.3 / zlib CRC).
std::uint32_t Crc32(std::span<const std::uint8_t> data);

// Incremental interface for streaming use.
class Crc32Accumulator {
 public:
  void Update(std::span<const std::uint8_t> data);
  // Finalized CRC of everything fed so far.  Update() may be called again
  // afterwards; Value() is non-destructive.
  std::uint32_t Value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

// Which engine Crc32/Crc32Accumulator dispatch to in this process.
enum class Crc32Impl {
  kSliceBy8,  // portable 8-tables/8-bytes-per-iteration loop
  kClmul,     // x86 PCLMULQDQ folding (64+ byte buffers; slice-by-8 tail)
  kArmCrc,    // ARMv8 CRC32B/CRC32X instructions
};
Crc32Impl ActiveCrc32Impl();

namespace internal {
// The original byte-at-a-time table loop, kept as the differential-testing
// oracle (tests/crc32_test.cc pins every dispatch target against it).
// `state` is the raw (pre-inverted) register: pass 0xFFFFFFFF and xor the
// result with 0xFFFFFFFF to get the standard CRC.
std::uint32_t Crc32Reference(std::uint32_t state,
                             std::span<const std::uint8_t> data);
// The portable slice-by-8 loop, directly callable so tests can exercise it
// even when the process dispatches to a hardware path.
std::uint32_t Crc32SliceBy8(std::uint32_t state,
                            std::span<const std::uint8_t> data);
}  // namespace internal

}  // namespace jig
