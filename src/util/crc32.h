// CRC-32 (IEEE 802.3 polynomial), used as the 802.11 frame check sequence.
//
// 802.11 frames carry a 4-byte FCS computed over the MAC header and body with
// the same polynomial as Ethernet.  Jigsaw uses the FCS both to detect
// corrupted captures and as a cheap first-stage comparison key during frame
// unification (paper Section 4.2), so the implementation lives in util where
// both the simulator and the core library can reach it.
#pragma once

#include <cstdint>
#include <span>

namespace jig {

// Computes the CRC-32 of `data` (reflected, init 0xFFFFFFFF, final xor
// 0xFFFFFFFF — i.e. the standard IEEE 802.3 / zlib CRC).
std::uint32_t Crc32(std::span<const std::uint8_t> data);

// Incremental interface for streaming use.
class Crc32Accumulator {
 public:
  void Update(std::span<const std::uint8_t> data);
  // Finalized CRC of everything fed so far.  Update() may be called again
  // afterwards; Value() is non-destructive.
  std::uint32_t Value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace jig
