// Small statistics toolkit shared by the analyses and benches.
//
// The paper's evaluation is built out of CDFs (Figures 4, 6, 9), time-series
// histograms (Figures 8, 10) and summary counts (Table 1).  This header
// provides those primitives: an empirical-distribution accumulator with
// percentile queries, a fixed-bin time-series counter, and an exponentially
// weighted moving average used by the skew/drift predictor (Section 4.2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/time.h"

namespace jig {

// Accumulates samples and answers distribution queries.  Samples are stored;
// intended for up to a few tens of millions of values.
class Distribution {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void AddN(double x, std::size_t n);

  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }

  double Min() const;
  double Max() const;
  double Mean() const;
  double Stddev() const;
  // q in [0,1]; linear interpolation between order statistics.
  double Quantile(double q) const;
  // Fraction of samples <= x.
  double CdfAt(double x) const;

  // Evenly spaced (in quantile space) CDF points, suitable for printing a
  // figure series: returns {x, F(x)} pairs at `points` quantiles.
  std::vector<std::pair<double, double>> CdfSeries(std::size_t points) const;

 private:
  void EnsureSorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Exponentially weighted moving average.  alpha is the weight of the newest
// sample.  Before the first sample, Value() returns the configured initial.
class Ewma {
 public:
  explicit Ewma(double alpha, double initial = 0.0)
      : alpha_(alpha), value_(initial) {}

  void Add(double sample) {
    if (!seeded_) {
      value_ = sample;
      seeded_ = true;
    } else {
      value_ = alpha_ * sample + (1.0 - alpha_) * value_;
    }
  }
  double Value() const { return value_; }
  bool seeded() const { return seeded_; }

 private:
  double alpha_;
  double value_;
  bool seeded_ = false;
};

// Counts events into fixed-width time bins over [0, horizon).  Used for the
// one-minute activity series of Figures 8 and 10.
class TimeBins {
 public:
  TimeBins(Micros bin_width, Micros horizon);

  void Add(Micros t, double amount = 1.0);
  std::size_t BinCount() const { return bins_.size(); }
  double BinValue(std::size_t i) const { return bins_[i]; }
  Micros BinStart(std::size_t i) const {
    return static_cast<Micros>(i) * width_;
  }
  Micros bin_width() const { return width_; }

 private:
  Micros width_;
  std::vector<double> bins_;
};

// Simple fixed-point number formatting helpers for bench/table output.
std::string FormatFixed(double v, int decimals);
std::string FormatPercent(double fraction, int decimals = 1);
std::string FormatCount(std::uint64_t n);  // thousands separators

}  // namespace jig
