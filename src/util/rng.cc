#include "util/rng.h"

#include <cmath>

namespace jig {
namespace {

// SplitMix64 — used for seeding and stream derivation.
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::Reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(sm);
  has_cached_gaussian_ = false;
}

// xoshiro256** core.
std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  // Debiased via rejection on the top of the range.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::NextExponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

double Rng::NextHeavyTail(double min, double cap, double alpha) {
  // Bounded Pareto inverse-CDF sampling.
  const double la = std::pow(min, alpha);
  const double ha = std::pow(cap, alpha);
  const double u = NextDouble();
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  return x;
}

Rng Rng::Fork(std::uint64_t stream) {
  std::uint64_t mix = s_[0] ^ Rotl(stream, 23) ^ (stream * 0x2545F4914F6CDD1Dull);
  return Rng(SplitMix64(mix));
}

}  // namespace jig
