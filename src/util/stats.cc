#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace jig {

void Distribution::AddN(double x, std::size_t n) {
  samples_.insert(samples_.end(), n, x);
  sorted_ = false;
}

void Distribution::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Distribution::Min() const {
  EnsureSorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Distribution::Max() const {
  EnsureSorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double Distribution::Mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Distribution::Stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double mean = Mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - mean) * (s - mean);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Distribution::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Distribution::CdfAt(double x) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Distribution::CdfSeries(
    std::size_t points) const {
  std::vector<std::pair<double, double>> series;
  if (samples_.empty() || points == 0) return series;
  series.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i + 1) / static_cast<double>(points);
    series.emplace_back(Quantile(q), q);
  }
  return series;
}

TimeBins::TimeBins(Micros bin_width, Micros horizon) : width_(bin_width) {
  if (bin_width <= 0 || horizon <= 0) {
    throw std::invalid_argument("TimeBins requires positive width and horizon");
  }
  bins_.assign(static_cast<std::size_t>((horizon + bin_width - 1) / bin_width),
               0.0);
}

void TimeBins::Add(Micros t, double amount) {
  if (t < 0) return;
  const auto idx = static_cast<std::size_t>(t / width_);
  if (idx < bins_.size()) bins_[idx] += amount;
}

std::string FormatFixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string FormatPercent(double fraction, int decimals) {
  return FormatFixed(fraction * 100.0, decimals) + "%";
}

std::string FormatCount(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int pos = static_cast<int>(digits.size());
  for (char c : digits) {
    out.push_back(c);
    --pos;
    if (pos > 0 && pos % 3 == 0) out.push_back(',');
  }
  return out;
}

}  // namespace jig
