#include "util/crc32.h"

#include <array>

namespace jig {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;  // reflected 0x04C11DB7

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = MakeTable();

}  // namespace

void Crc32Accumulator::Update(std::span<const std::uint8_t> data) {
  std::uint32_t c = state_;
  for (std::uint8_t byte : data) {
    c = kTable[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

std::uint32_t Crc32(std::span<const std::uint8_t> data) {
  Crc32Accumulator acc;
  acc.Update(data);
  return acc.Value();
}

}  // namespace jig
