#include "util/crc32.h"

#include <bit>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#define JIG_CRC32_X86 1
#include <immintrin.h>
#endif

#if defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#define JIG_CRC32_ARM 1
#include <arm_acle.h>
#endif

namespace jig {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;  // reflected 0x04C11DB7

// tables.t[0] is the classic byte-at-a-time table; tables.t[k] satisfies
// t[k][b] = crc of byte b followed by k zero bytes, which is what lets the
// slice-by-8 loop fold eight input bytes per iteration.
struct SliceTables {
  std::uint32_t t[8][256];
};

constexpr SliceTables MakeTables() {
  SliceTables s{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    s.t[0][i] = c;
  }
  for (int k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      s.t[k][i] = (s.t[k - 1][i] >> 8) ^ s.t[0][s.t[k - 1][i] & 0xFFu];
    }
  }
  return s;
}

constexpr SliceTables kTables = MakeTables();

std::uint32_t UpdateSliceBy8(std::uint32_t state, const std::uint8_t* p,
                             std::size_t n) {
  std::uint32_t c = state;
  // The wide loop loads two u32 lanes per step and assumes little-endian
  // lane layout; big-endian targets stay on the byte loop below.
  if constexpr (std::endian::native == std::endian::little) {
    while (n != 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
      c = kTables.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
      --n;
    }
    while (n >= 8) {
      std::uint32_t lo;
      std::uint32_t hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= c;
      c = kTables.t[7][lo & 0xFFu] ^ kTables.t[6][(lo >> 8) & 0xFFu] ^
          kTables.t[5][(lo >> 16) & 0xFFu] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][hi & 0xFFu] ^ kTables.t[2][(hi >> 8) & 0xFFu] ^
          kTables.t[1][(hi >> 16) & 0xFFu] ^ kTables.t[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  while (n != 0) {
    c = kTables.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
    --n;
  }
  return c;
}

#if defined(JIG_CRC32_X86)

// PCLMULQDQ fold-by-4 for the reflected IEEE polynomial — the scheme from
// Gopal et al., "Fast CRC Computation Using PCLMULQDQ Instruction", with
// the constants for P(x) = 0x104C11DB7.  Needs at least 64 bytes of
// runway; the dispatcher hands shorter buffers and the tail to the table
// loop.  NOTE: _mm_crc32_* is deliberately NOT used — that instruction
// implements CRC-32C (Castagnoli, 0x1EDC6F41), a different polynomial.
__attribute__((target("pclmul,sse4.1"))) std::uint32_t UpdateClmul(
    std::uint32_t state, const std::uint8_t* p, std::size_t n) {
  const __m128i k1k2 = _mm_set_epi64x(0x00000001c6e41596, 0x0000000154442bd4);
  const __m128i k3k4 = _mm_set_epi64x(0x00000000ccaa009e, 0x00000001751997d0);
  const __m128i k5 = _mm_set_epi64x(0x0000000000000000, 0x0000000163cd6124);
  const __m128i poly = _mm_set_epi64x(0x00000001f7011641, 0x00000001db710641);
  const __m128i mask32 = _mm_setr_epi32(~0, 0, ~0, 0);

  __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
  __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32));
  __m128i x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48));
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(state)));
  p += 64;
  n -= 64;

  while (n >= 64) {
    __m128i t1 = _mm_clmulepi64_si128(x1, k1k2, 0x00);
    __m128i t2 = _mm_clmulepi64_si128(x2, k1k2, 0x00);
    __m128i t3 = _mm_clmulepi64_si128(x3, k1k2, 0x00);
    __m128i t4 = _mm_clmulepi64_si128(x4, k1k2, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
    x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
    x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
    x4 = _mm_clmulepi64_si128(x4, k1k2, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, t1),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
    x2 = _mm_xor_si128(
        _mm_xor_si128(x2, t2),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16)));
    x3 = _mm_xor_si128(
        _mm_xor_si128(x3, t3),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32)));
    x4 = _mm_xor_si128(
        _mm_xor_si128(x4, t4),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48)));
    p += 64;
    n -= 64;
  }

  // Fold the four 128-bit accumulators into one.
  __m128i t = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x2 = _mm_xor_si128(x2, _mm_xor_si128(x1, t));
  t = _mm_clmulepi64_si128(x2, k3k4, 0x00);
  x2 = _mm_clmulepi64_si128(x2, k3k4, 0x11);
  x3 = _mm_xor_si128(x3, _mm_xor_si128(x2, t));
  t = _mm_clmulepi64_si128(x3, k3k4, 0x00);
  x3 = _mm_clmulepi64_si128(x3, k3k4, 0x11);
  x4 = _mm_xor_si128(x4, _mm_xor_si128(x3, t));
  x1 = x4;

  // Fold any remaining whole 16-byte blocks.
  while (n >= 16) {
    t = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, t),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
    p += 16;
    n -= 16;
  }

  // 128 -> 64 -> 32 bit reduction (Barrett).
  t = _mm_clmulepi64_si128(x1, k3k4, 0x10);
  x1 = _mm_srli_si128(x1, 8);
  x1 = _mm_xor_si128(x1, t);

  t = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, mask32);
  x1 = _mm_clmulepi64_si128(x1, k5, 0x00);
  x1 = _mm_xor_si128(x1, t);

  t = _mm_and_si128(x1, mask32);
  t = _mm_clmulepi64_si128(t, poly, 0x10);
  t = _mm_and_si128(t, mask32);
  t = _mm_clmulepi64_si128(t, poly, 0x00);
  x1 = _mm_xor_si128(x1, t);
  std::uint32_t crc = static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));

  if (n != 0) {
    crc = UpdateSliceBy8(crc, p, n);
  }
  return crc;
}

std::uint32_t UpdateDispatchClmul(std::uint32_t state, const std::uint8_t* p,
                                  std::size_t n) {
  if (n >= 64) {
    return UpdateClmul(state, p, n);
  }
  return UpdateSliceBy8(state, p, n);
}

bool HaveClmul() {
  return __builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1");
}

#endif  // JIG_CRC32_X86

#if defined(JIG_CRC32_ARM)

// ARMv8's CRC32B/CRC32X implement exactly this (IEEE) polynomial, unlike
// the x86 CRC32 instruction.
std::uint32_t UpdateArm(std::uint32_t state, const std::uint8_t* p,
                        std::size_t n) {
  std::uint32_t c = state;
  while (n != 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    c = __crc32b(c, *p++);
    --n;
  }
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    c = __crc32d(c, v);
    p += 8;
    n -= 8;
  }
  while (n != 0) {
    c = __crc32b(c, *p++);
    --n;
  }
  return c;
}

#endif  // JIG_CRC32_ARM

using UpdateFn = std::uint32_t (*)(std::uint32_t, const std::uint8_t*,
                                   std::size_t);

struct Dispatch {
  UpdateFn fn;
  Crc32Impl impl;
};

Dispatch SelectDispatch() {
#if defined(JIG_CRC32_ARM)
  return {UpdateArm, Crc32Impl::kArmCrc};
#elif defined(JIG_CRC32_X86)
  if (HaveClmul()) {
    return {UpdateDispatchClmul, Crc32Impl::kClmul};
  }
  return {UpdateSliceBy8, Crc32Impl::kSliceBy8};
#else
  return {UpdateSliceBy8, Crc32Impl::kSliceBy8};
#endif
}

const Dispatch& ActiveDispatch() {
  static const Dispatch dispatch = SelectDispatch();
  return dispatch;
}

}  // namespace

void Crc32Accumulator::Update(std::span<const std::uint8_t> data) {
  state_ = ActiveDispatch().fn(state_, data.data(), data.size());
}

std::uint32_t Crc32(std::span<const std::uint8_t> data) {
  return ActiveDispatch().fn(0xFFFFFFFFu, data.data(), data.size()) ^
         0xFFFFFFFFu;
}

Crc32Impl ActiveCrc32Impl() { return ActiveDispatch().impl; }

namespace internal {

std::uint32_t Crc32Reference(std::uint32_t state,
                             std::span<const std::uint8_t> data) {
  std::uint32_t c = state;
  for (std::uint8_t byte : data) {
    c = kTables.t[0][(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c;
}

std::uint32_t Crc32SliceBy8(std::uint32_t state,
                            std::span<const std::uint8_t> data) {
  return UpdateSliceBy8(state, data.data(), data.size());
}

}  // namespace internal

}  // namespace jig
