// Little-endian byte serialization helpers for trace files and frame bodies.
//
// The trace format (src/trace) and the 802.11 frame model (src/wifi) both
// need portable fixed-width integer (de)serialization.  These helpers write
// into a growable byte vector and read from a span with explicit bounds
// checking; a failed read throws, since a short trace record is corruption,
// not a recoverable condition for callers.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace jig {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  void U8(std::uint8_t v) { out_.push_back(v); }
  void U16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void U32(std::uint32_t v) {
    U16(static_cast<std::uint16_t>(v));
    U16(static_cast<std::uint16_t>(v >> 16));
  }
  void U64(std::uint64_t v) {
    U32(static_cast<std::uint32_t>(v));
    U32(static_cast<std::uint32_t>(v >> 32));
  }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void Raw(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }
  // Unsigned LEB128 — used for delta-coded fields in trace files.
  void Varint(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<std::uint8_t>(v) | 0x80u);
      v >>= 7;
    }
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  // Zig-zag signed varint.
  void SVarint(std::int64_t v) {
    Varint((static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63));
  }

 private:
  Bytes& out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  std::size_t position() const { return pos_; }

  std::uint8_t U8() {
    Require(1);
    return data_[pos_++];
  }
// gcc 12's -Warray-bounds cannot prove the Consume() bounds check makes the
// post-throw load dead when callers with statically-sized buffers are inlined
// (gcc bugzilla PR 101831 family), so the two-byte read is wrapped in a
// targeted suppression.  The bounds check is real — it throws — and the fuzz
// harnesses run this exact code under ASan, so out-of-bounds reads here are
// caught dynamically even though the static check is muted.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif
  std::uint16_t U16() {
    const std::uint8_t* p = Consume(2);
    return static_cast<std::uint16_t>(
        p[0] | (static_cast<std::uint16_t>(p[1]) << 8));
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
  std::uint32_t U32() {
    const std::uint32_t lo = U16();
    const std::uint32_t hi = U16();
    return lo | (hi << 16);
  }
  std::uint64_t U64() {
    const std::uint64_t lo = U32();
    const std::uint64_t hi = U32();
    return lo | (hi << 32);
  }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  std::span<const std::uint8_t> Raw(std::size_t n) {
    Require(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  std::uint64_t Varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      const std::uint8_t byte = U8();
      v |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
      if (!(byte & 0x80u)) return v;
      shift += 7;
      if (shift >= 64) throw std::runtime_error("varint overflow");
    }
  }
  std::int64_t SVarint() {
    const std::uint64_t raw = Varint();
    return static_cast<std::int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  }

 private:
  void Require(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw std::runtime_error("ByteReader: truncated input at offset " +
                               std::to_string(pos_));
    }
  }
  // Bounds-check, advance, and hand back a raw pointer to the consumed
  // range.  Reading through the pointer (instead of repeated data_[pos_ + i]
  // subscripts) keeps gcc's -Warray-bounds from false-positive-ing on the
  // statically-unreachable post-throw path when callers are inlined.
  const std::uint8_t* Consume(std::size_t n) {
    Require(n);
    const std::uint8_t* p = data_.data() + pos_;
    pos_ += n;
    return p;
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace jig
