// Byte-oriented LZ compression for trace storage.
//
// The paper's jigdump compresses capture blocks with LZO before shipping them
// over NFS, because storage and I/O are the monitor platform's bottlenecks
// (Section 3.3).  LZO is not available offline, so this is a from-scratch
// LZ77-style codec with the same design point: cheap, byte-oriented, good
// enough on highly repetitive capture data (802.11 headers repeat heavily).
//
// Format (little-endian):
//   [u32 raw_size] then a token stream:
//     control byte C:
//       C < 0x80  : literal run of C+1 bytes follows
//       C >= 0x80 : match; length = (C & 0x7F) + kMinMatch,
//                   followed by u16 distance (1-based, <= 64 KiB window)
// The token format is fixed — every LzLevel emits it, and LzDecompress
// accepts any conforming stream regardless of which level (or which past
// version of the compressor) produced it.
//
// Decompress validates all offsets.  Malformed input throws LzTruncatedError
// when the stream simply ends too early (cut-off header, token, or literal
// run — the shape a torn write produces) and LzCorruptError when the bytes
// present are self-inconsistent (invalid match distance, output overrunning
// the declared raw size).  Both derive from LzError -> std::runtime_error,
// so existing catch sites keep working; the trace layer maps the split onto
// its TraceTruncatedError/TraceCorruptError taxonomy.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace jig {

constexpr std::size_t kLzMinMatch = 4;
constexpr std::size_t kLzMaxMatch = 0x7F + kLzMinMatch;
constexpr std::size_t kLzWindow = 65535;

// Compression effort.  Both levels emit the same token format; they differ
// only in how hard the match finder searches.
enum class LzLevel {
  // Single hash-table probe per position (depth-1 chain walk).  For live
  // writers flushing blocks on the capture path, where latency beats ratio.
  kFast,
  // Bounded hash-chain walk (several candidates per position, longest match
  // wins).  Better ratio at modest extra cost; the batch default.
  kDefault,
};

class LzError : public std::runtime_error {
 public:
  explicit LzError(const std::string& what) : std::runtime_error(what) {}
};

// The compressed stream ends before the structure it promised is complete.
class LzTruncatedError : public LzError {
 public:
  explicit LzTruncatedError(const std::string& what) : LzError(what) {}
};

// The bytes present contradict themselves (bad distance, size overrun).
class LzCorruptError : public LzError {
 public:
  explicit LzCorruptError(const std::string& what) : LzError(what) {}
};

std::vector<std::uint8_t> LzCompress(std::span<const std::uint8_t> raw,
                                     LzLevel level = LzLevel::kDefault);
std::vector<std::uint8_t> LzDecompress(std::span<const std::uint8_t> packed);

}  // namespace jig
