// Byte-oriented LZ compression for trace storage.
//
// The paper's jigdump compresses capture blocks with LZO before shipping them
// over NFS, because storage and I/O are the monitor platform's bottlenecks
// (Section 3.3).  LZO is not available offline, so this is a from-scratch
// LZ77-style codec with the same design point: cheap, byte-oriented, good
// enough on highly repetitive capture data (802.11 headers repeat heavily).
//
// Format (little-endian):
//   [u32 raw_size] then a token stream:
//     control byte C:
//       C < 0x80  : literal run of C+1 bytes follows
//       C >= 0x80 : match; length = (C & 0x7F) + kMinMatch,
//                   followed by u16 distance (1-based, <= 64 KiB window)
// The codec is deterministic and self-contained; Decompress validates all
// offsets and throws std::runtime_error on malformed input.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace jig {

constexpr std::size_t kLzMinMatch = 4;
constexpr std::size_t kLzMaxMatch = 0x7F + kLzMinMatch;
constexpr std::size_t kLzWindow = 65535;

std::vector<std::uint8_t> LzCompress(std::span<const std::uint8_t> raw);
std::vector<std::uint8_t> LzDecompress(std::span<const std::uint8_t> packed);

}  // namespace jig
