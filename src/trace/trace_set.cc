#include "trace/trace_set.h"

#include <algorithm>

namespace jig {

TraceSet TraceSet::OpenDirectory(const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".jigt") {
      paths.push_back(entry.path());
    }
  }
  std::vector<std::unique_ptr<RecordStream>> opened;
  opened.reserve(paths.size());
  for (const auto& p : paths) opened.push_back(std::make_unique<FileTrace>(p));
  std::sort(opened.begin(), opened.end(),
            [](const auto& a, const auto& b) {
              return a->header().radio < b->header().radio;
            });
  TraceSet set;
  for (auto& s : opened) set.Add(std::move(s));
  return set;
}

std::vector<std::filesystem::path> TraceSet::WriteDirectory(
    const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  std::vector<std::filesystem::path> paths;
  paths.reserve(streams_.size());
  for (auto& stream : streams_) {
    stream->Rewind();
    const auto path =
        dir / ("r" + std::to_string(stream->header().radio) + ".jigt");
    TraceFileWriter writer(path, stream->header());
    while (auto rec = stream->Next()) writer.Append(*rec);
    writer.Finish();
    stream->Rewind();
    paths.push_back(path);
  }
  return paths;
}

}  // namespace jig
