#include "trace/trace_set.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <thread>

#include "trace/tail_trace.h"

namespace jig {

std::vector<ChannelShard> TraceSet::PartitionByChannel() {
  std::map<Channel, ChannelShard> by_channel;  // ordered by channel number
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const Channel ch = streams_[i]->header().channel;
    auto [it, inserted] = by_channel.try_emplace(ch);
    if (inserted) it->second.channel = ch;
    it->second.traces.Add(std::move(streams_[i]));
    it->second.source_index.push_back(i);
  }
  streams_.clear();
  std::vector<ChannelShard> shards;
  shards.reserve(by_channel.size());
  for (auto& [ch, shard] : by_channel) shards.push_back(std::move(shard));
  return shards;
}

void TraceSet::AdoptShards(std::vector<ChannelShard> shards) {
  if (!streams_.empty()) {
    throw std::logic_error("AdoptShards: target TraceSet is not empty");
  }
  std::size_t total = 0;
  for (const auto& shard : shards) total += shard.traces.size();
  streams_.resize(total);
  for (auto& shard : shards) {
    for (std::size_t i = 0; i < shard.traces.size(); ++i) {
      const std::size_t at = shard.source_index[i];
      if (at >= total || streams_[at]) {
        throw std::logic_error("AdoptShards: inconsistent source indices");
      }
      streams_[at] = std::move(shard.traces.streams_[i]);
    }
  }
}

TraceSet TraceSet::OpenDirectory(const std::filesystem::path& dir,
                                 TraceReadOptions options) {
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".jigt") {
      paths.push_back(entry.path());
    }
  }
  std::vector<std::unique_ptr<RecordStream>> opened;
  opened.reserve(paths.size());
  for (const auto& p : paths) {
    opened.push_back(std::make_unique<FileTrace>(p, options));
  }
  std::sort(opened.begin(), opened.end(),
            [](const auto& a, const auto& b) {
              return a->header().radio < b->header().radio;
            });
  TraceSet set;
  for (auto& s : opened) set.Add(std::move(s));
  return set;
}

TraceSet TraceSet::FollowDirectory(const std::filesystem::path& dir,
                                   std::size_t expected_traces,
                                   std::chrono::milliseconds poll_interval,
                                   std::chrono::milliseconds timeout) {
  // Without an expected count, require the file count to hold still for a
  // whole settle period, not just one poll: capture daemons create their
  // files staggered, and locking onto a partial set would silently merge
  // without the late radios (the set cannot grow after this returns).
  constexpr int kSettlePolls = 10;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::size_t last_count = 0;
  int stable_polls = 0;
  for (;;) {
    // Re-attempt the whole directory each poll: a file whose header is
    // mid-write simply does not count yet.
    std::vector<std::unique_ptr<RecordStream>> opened;
    if (std::filesystem::exists(dir)) {
      for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != ".jigt") {
          continue;
        }
        if (auto tail = TailFileTrace::TryOpen(entry.path())) {
          opened.push_back(std::move(tail));
        }
      }
    }
    stable_polls = opened.size() == last_count ? stable_polls + 1 : 0;
    const bool ready =
        expected_traces != 0
            ? opened.size() >= expected_traces
            : !opened.empty() && stable_polls >= kSettlePolls;
    if (ready) {
      std::sort(opened.begin(), opened.end(),
                [](const auto& a, const auto& b) {
                  return a->header().radio < b->header().radio;
                });
      TraceSet set;
      for (auto& s : opened) set.Add(std::move(s));
      return set;
    }
    last_count = opened.size();
    if (std::chrono::steady_clock::now() >= deadline) {
      throw std::runtime_error(
          "FollowDirectory: timed out waiting for traces in " + dir.string());
    }
    std::this_thread::sleep_for(poll_interval);
  }
}

std::vector<std::filesystem::path> TraceSet::WriteDirectory(
    const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  std::vector<std::filesystem::path> paths;
  paths.reserve(streams_.size());
  for (auto& stream : streams_) {
    stream->Rewind();
    // Built with += (not operator+ on a temporary) to sidestep the gcc 12
    // -Wrestrict false positive on "literal" + std::to_string(...) chains.
    std::string name = "r";
    name += std::to_string(stream->header().radio);
    name += ".jigt";
    const auto path = dir / name;
    TraceFileWriter writer(path, stream->header());
    while (auto rec = stream->Next()) writer.Append(*rec);
    writer.Finish();
    stream->Rewind();
    paths.push_back(path);
  }
  return paths;
}

}  // namespace jig
