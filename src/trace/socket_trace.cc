#include "trace/socket_trace.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <poll.h>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "util/compression.h"

namespace jig {
namespace {

std::uint32_t DecodeU32(const std::uint8_t* b) {
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

void EncodeU32(std::uint32_t v, std::uint8_t* b) {
  b[0] = static_cast<std::uint8_t>(v);
  b[1] = static_cast<std::uint8_t>(v >> 8);
  b[2] = static_cast<std::uint8_t>(v >> 16);
  b[3] = static_cast<std::uint8_t>(v >> 24);
}

struct SocketMetrics {
  obs::Counter& bytes = obs::MetricRegistry::Global().GetCounter(
      "jig_socket_trace_bytes_received_total",
      "Framed trace bytes received over sockets");
  obs::Counter& blocks = obs::MetricRegistry::Global().GetCounter(
      "jig_socket_trace_blocks_decoded_total",
      "Trace blocks decoded from sockets");
  obs::Counter& records = obs::MetricRegistry::Global().GetCounter(
      "jig_socket_trace_records_decoded_total",
      "Capture records decoded from sockets");
  obs::Counter& resumes = obs::MetricRegistry::Global().GetCounter(
      "jig_socket_trace_resumes_total",
      "Re-dialed connections adopted into an existing stream");
};

SocketMetrics& Metrics() {
  static SocketMetrics* m = new SocketMetrics();
  return *m;
}

// Appends whatever the socket holds right now to `buf`; returns true if
// the peer has closed its write side.
bool DrainSocket(net::Socket& sock, std::vector<std::uint8_t>& buf) {
  std::uint8_t chunk[64 * 1024];
  for (;;) {
    const net::ReadResult r = net::ReadSome(sock, chunk, sizeof chunk);
    if (r.n > 0) {
      buf.insert(buf.end(), chunk, chunk + r.n);
      Metrics().bytes.Add(r.n);
      continue;
    }
    return r.eof;
  }
}

}  // namespace

std::unique_ptr<SocketTrace> SocketTrace::Open(net::Socket sock,
                                               int header_timeout_ms) {
  Handshake hs = ParseHandshake(std::move(sock), header_timeout_ms);
  return std::unique_ptr<SocketTrace>(
      new SocketTrace(std::move(hs.sock), hs.header, hs.source_id,
                      std::move(hs.leftover)));
}

SocketTrace::Handshake SocketTrace::ParseHandshake(net::Socket sock,
                                                   int header_timeout_ms) {
  sock.SetNonBlocking();
  std::vector<std::uint8_t> buf;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(header_timeout_ms);
  constexpr std::size_t kHelloLen = 12;   // magic + version + source id
  constexpr std::size_t kPrefixLen = 12;  // magic + version + header_len
  for (;;) {
    const bool eof = DrainSocket(sock, buf);
    if (buf.size() >= kHelloLen) {
      if (std::memcmp(buf.data(), kSocketHelloMagic, 4) != 0) {
        throw TraceCorruptError("socket trace: bad hello magic");
      }
      if (DecodeU32(buf.data() + 4) != kSocketHelloVersion) {
        throw TraceCorruptError("socket trace: unsupported hello version");
      }
    }
    if (buf.size() >= kHelloLen + kPrefixLen) {
      const std::uint8_t* p = buf.data() + kHelloLen;
      if (std::memcmp(p, kTraceDataMagic, 4) != 0) {
        throw TraceCorruptError("socket trace: bad trace magic");
      }
      if (DecodeU32(p + 4) != kTraceVersion) {
        throw TraceCorruptError("socket trace: bad trace version");
      }
      const std::uint32_t hdr_len = DecodeU32(p + 8);
      if (hdr_len > kMaxPackedBlockLen) {
        throw TraceCorruptError("socket trace: garbage header length");
      }
      if (buf.size() >= kHelloLen + kPrefixLen + hdr_len) {
        const std::uint32_t source_id = DecodeU32(buf.data() + 8);
        TraceHeader header;
        try {
          Bytes hdr(buf.begin() + kHelloLen + kPrefixLen,
                    buf.begin() + kHelloLen + kPrefixLen + hdr_len);
          ByteReader hr(hdr);
          header = DeserializeHeader(hr);
        } catch (const std::exception& e) {
          throw TraceCorruptError(
              std::string("socket trace: malformed header: ") + e.what());
        }
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<std::ptrdiff_t>(
                                    kHelloLen + kPrefixLen + hdr_len));
        return Handshake{std::move(sock), header, source_id,
                         std::move(buf)};
      }
    }
    if (eof) {
      throw TraceTruncatedError(
          "socket trace: peer closed before the header arrived");
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      throw TraceTruncatedError("socket trace: header timed out");
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    pollfd pfd{sock.fd(), POLLIN, 0};
    ::poll(&pfd, 1, static_cast<int>(remaining.count()) + 1);
  }
}

SocketTrace::SocketTrace(net::Socket sock, TraceHeader header,
                         std::uint32_t source_id,
                         std::vector<std::uint8_t> leftover)
    : sock_(std::move(sock)),
      header_(header),
      source_id_(source_id),
      buf_(std::move(leftover)) {}

bool SocketTrace::Pump() {
  if (finalized_) return false;
  if (!peer_eof_) peer_eof_ = DrainSocket(sock_, buf_);
  std::size_t off = 0;
  bool produced = false;
  while (buf_.size() - off >= 4) {
    const std::uint32_t packed_len = DecodeU32(buf_.data() + off);
    if (packed_len == 0) {
      // The finalize marker: latched; any trailing bytes are ignored.
      finalized_ = true;
      produced = true;
      off = buf_.size();
      sock_.Close();
      break;
    }
    if (packed_len > kMaxPackedBlockLen) {
      throw TraceCorruptError("socket trace: garbage block length " +
                              std::to_string(packed_len));
    }
    if (buf_.size() - off < 4 + static_cast<std::size_t>(packed_len)) {
      break;  // partial block: no data yet
    }
    try {
      const Bytes raw = LzDecompress(
          {buf_.data() + off + 4, static_cast<std::size_t>(packed_len)});
      ByteReader r(raw);
      LocalMicros prev = 0;
      while (!r.AtEnd()) {
        CaptureRecord rec = DeserializeRecord(r, prev);
        prev = rec.timestamp;
        // A resumed sender replays from record zero; drop what the old
        // connection already delivered so no record surfaces twice.
        if (resume_skip_ > 0) {
          --resume_skip_;
          continue;
        }
        records_.push_back(std::move(rec));
      }
    } catch (const std::exception& e) {
      // The length word promised a complete block; a parse failure is
      // corruption, not something a retry can heal.
      throw TraceCorruptError(std::string("socket trace: malformed block: ") +
                              e.what());
    }
    Metrics().blocks.Add(1);
    produced = true;
    off += 4 + packed_len;
  }
  if (off > 0) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off));
  }
  return produced;
}

std::optional<CaptureRecord> SocketTrace::Next() {
  const CaptureRecord* rec = NextRef();
  if (!rec) return std::nullopt;
  return *rec;
}

const CaptureRecord* SocketTrace::NextRef() {
  while (pos_ >= records_.size()) {
    if (!Pump()) {
      if (peer_eof_ && !finalized_) {
        // A resumable stream parks at the disconnect and waits for
        // Resume(); a one-shot stream's capture was cut off.
        if (resumable_) return nullptr;
        // Everything received has been decoded and consumed, and no
        // marker will ever arrive: the capture was cut off.
        throw TraceTruncatedError(
            "socket trace: peer disconnected before the finalize marker "
            "(radio " +
            std::to_string(header_.radio) + ")");
      }
      return nullptr;
    }
  }
  Metrics().records.Add(1);
  return &records_[pos_++];
}

void SocketTrace::Resume(net::Socket sock, int header_timeout_ms) {
  if (finalized_) {
    throw std::logic_error("SocketTrace::Resume: stream already finalized");
  }
  Handshake hs = ParseHandshake(std::move(sock), header_timeout_ms);
  if (hs.source_id != source_id_ || hs.header.radio != header_.radio) {
    throw TraceCorruptError(
        "socket trace: resumed connection identity mismatch (expected "
        "source " +
        std::to_string(source_id_) + " radio " +
        std::to_string(header_.radio) + ", got source " +
        std::to_string(hs.source_id) + " radio " +
        std::to_string(hs.header.radio) + ")");
  }
  AdoptHandshake(std::move(hs));
}

void SocketTrace::AdoptHandshake(Handshake hs) {
  sock_ = std::move(hs.sock);
  // Partial-block bytes from the dead connection can never complete; the
  // from-zero replay re-covers them.
  buf_ = std::move(hs.leftover);
  peer_eof_ = false;
  resume_skip_ = records_.size();
  Metrics().resumes.Add(1);
}

std::unique_ptr<SocketTrace> SocketTrace::OpenOrResume(
    net::Socket sock, const std::vector<SocketTrace*>& existing,
    int header_timeout_ms) {
  Handshake hs = ParseHandshake(std::move(sock), header_timeout_ms);
  for (SocketTrace* s : existing) {
    if (s == nullptr || s->Finalized()) continue;
    if (s->source_id() == hs.source_id &&
        s->header().radio == hs.header.radio) {
      s->AdoptHandshake(std::move(hs));
      return nullptr;
    }
  }
  return std::unique_ptr<SocketTrace>(
      new SocketTrace(std::move(hs.sock), hs.header, hs.source_id,
                      std::move(hs.leftover)));
}

SocketTraceWriter::SocketTraceWriter(net::Socket sock,
                                     const TraceHeader& header,
                                     std::uint32_t source_id,
                                     std::size_t records_per_block)
    : sock_(std::move(sock)), records_per_block_(records_per_block) {
  std::uint8_t hello[12];
  std::memcpy(hello, kSocketHelloMagic, 4);
  EncodeU32(kSocketHelloVersion, hello + 4);
  EncodeU32(source_id, hello + 8);
  net::SendAll(sock_, hello, sizeof hello);
  bytes_sent_ += sizeof hello;

  std::uint8_t prefix[8];
  std::memcpy(prefix, kTraceDataMagic, 4);
  EncodeU32(kTraceVersion, prefix + 4);
  net::SendAll(sock_, prefix, sizeof prefix);
  bytes_sent_ += sizeof prefix;
  Bytes hdr;
  SerializeHeader(header, hdr);
  SendU32(static_cast<std::uint32_t>(hdr.size()));
  net::SendAll(sock_, hdr.data(), hdr.size());
  bytes_sent_ += hdr.size();
}

SocketTraceWriter::~SocketTraceWriter() {
  try {
    if (!finished_) Finish();
  } catch (...) {
    // Destructor must not throw; an explicit Finish() reports errors.
  }
}

void SocketTraceWriter::SendU32(std::uint32_t v) {
  std::uint8_t b[4];
  EncodeU32(v, b);
  net::SendAll(sock_, b, sizeof b);
  bytes_sent_ += sizeof b;
}

void SocketTraceWriter::Append(const CaptureRecord& rec) {
  if (finished_) throw std::logic_error("Append after Finish");
  if (pending_count_ == 0) prev_ts_ = 0;  // blocks are self-contained
  SerializeRecord(rec, prev_ts_, pending_);
  prev_ts_ = rec.timestamp;
  ++pending_count_;
  ++records_sent_;
  if (pending_count_ >= records_per_block_) FlushBlock();
}

void SocketTraceWriter::FlushBlock() {
  if (pending_count_ == 0) return;
  const auto packed = LzCompress(pending_);
  SendU32(static_cast<std::uint32_t>(packed.size()));
  net::SendAll(sock_, packed.data(), packed.size());
  bytes_sent_ += packed.size();
  pending_.clear();
  pending_count_ = 0;
}

void SocketTraceWriter::Sync() {
  if (finished_) throw std::logic_error("Sync after Finish");
  FlushBlock();
}

void SocketTraceWriter::Finish() {
  if (finished_) return;
  FlushBlock();
  SendU32(0);  // the finalize marker
  finished_ = true;
}

TraceSet AcceptTraces(net::Listener& listener, std::size_t n,
                      int timeout_ms, bool resumable) {
  std::vector<std::unique_ptr<SocketTrace>> streams;
  streams.reserve(n);
  while (streams.size() < n) {
    if (!resumable) {
      streams.push_back(
          SocketTrace::Open(listener.Accept(timeout_ms), timeout_ms));
      continue;
    }
    // Resumable accept: a sender may die and re-dial while its siblings
    // are still attaching.  Count distinct (source, radio) identities
    // toward n — a re-dial adopts into its existing stream instead of
    // occupying a slot (pre-fix it became a duplicate stream of the same
    // radio, and the dead original poisoned the merge with a phantom
    // truncation).
    std::vector<SocketTrace*> raw;
    raw.reserve(streams.size());
    for (const auto& s : streams) raw.push_back(s.get());
    auto fresh = SocketTrace::OpenOrResume(listener.Accept(timeout_ms), raw,
                                           timeout_ms);
    if (fresh) {
      fresh->set_resumable(true);
      streams.push_back(std::move(fresh));
    }
  }
  // The same deterministic radio-id order OpenDirectory guarantees, so a
  // socket-fed merge is stream-for-stream comparable to a file merge.
  std::sort(streams.begin(), streams.end(),
            [](const auto& a, const auto& b) {
              return a->header().radio < b->header().radio;
            });
  TraceSet set;
  for (auto& s : streams) set.Add(std::move(s));
  return set;
}

}  // namespace jig
