// Minimal POSIX TCP helpers for the socket trace transport.
//
// Deliberately tiny: an RAII fd, a listener with ephemeral-port discovery
// (bind port 0, read the kernel's choice back), a blocking connect, and
// the two IO shapes the trace layer needs — send-everything (sender side)
// and read-whatever-is-available-now (receiver side, so a tail consumer
// can distinguish "no data yet" from peer EOF without blocking the merge
// poll loop).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace jig::net {

// Owns a socket fd; closes on destruction.  Movable, not copyable.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();
  // O_NONBLOCK on the fd; ReadSome then reports would-block as 0 bytes.
  void SetNonBlocking();

 private:
  int fd_ = -1;
};

// TCP listener bound to host:port.  port == 0 asks the kernel for an
// ephemeral port; port() reports the actual one either way.  Throws
// std::runtime_error when the address cannot be bound.
class Listener {
 public:
  Listener(const std::string& host, std::uint16_t port);

  std::uint16_t port() const { return port_; }
  // Waits up to timeout_ms for a peer (<= 0: block indefinitely).  Throws
  // std::runtime_error on timeout or accept failure.
  Socket Accept(int timeout_ms = -1);
  // Non-blocking accept: the connection waiting right now, or an invalid
  // Socket if none is queued.  A poll loop calls this every round to pick
  // up re-dialing senders without ever stalling the merge.
  Socket TryAccept();

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

// Blocking connect.  Throws std::runtime_error on failure (connection
// refused, unresolvable host, ...).
Socket ConnectTo(const std::string& host, std::uint16_t port);

// Sends all n bytes (blocking).  Throws std::runtime_error if the peer
// goes away mid-send.
void SendAll(Socket& sock, const void* data, std::size_t n);

// Result of a non-blocking read attempt.
struct ReadResult {
  std::size_t n = 0;    // bytes placed into the buffer (0: nothing now)
  bool eof = false;     // peer closed its write side
};

// Reads whatever is available right now, up to cap bytes, without
// blocking (the socket must be non-blocking).  Throws std::runtime_error
// on a hard socket error (ECONNRESET is reported as eof, not an error:
// to a trace consumer both mean "the sender is gone").
ReadResult ReadSome(Socket& sock, void* buf, std::size_t cap);

}  // namespace jig::net
