#include "trace/trace_file.h"

#include <cstring>
#include <stdexcept>

#include "obs/metrics.h"
#include "trace/framed_io.h"
#include "util/compression.h"

#if defined(__unix__) || defined(__APPLE__)
#define JIG_HAVE_MMAP 1
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace jig {
namespace {

struct TraceMetrics {
  obs::Counter& bytes = obs::MetricRegistry::Global().GetCounter(
      "jig_trace_bytes_read_total", "Compressed trace bytes read from disk");
  obs::Counter& blocks = obs::MetricRegistry::Global().GetCounter(
      "jig_trace_blocks_decoded_total", "Trace blocks decompressed");
  obs::Counter& records = obs::MetricRegistry::Global().GetCounter(
      "jig_trace_records_decoded_total", "Capture records decoded");
  obs::Gauge& mmap_active = obs::MetricRegistry::Global().GetGauge(
      "jig_trace_mmap_active",
      "Trace readers currently serving blocks from an mmap'd file");
};

TraceMetrics& Metrics() {
  static TraceMetrics* m = new TraceMetrics();
  return *m;
}

// The shared framed-IO primitives (src/trace/framed_io.h) carry the
// short-read-at-EOF → TraceTruncatedError discipline: an unfinished write
// or a lost tail is a different failure from both clean EOF (the caller
// never asks past the index) and corruption.
constexpr const char* kWhat = "trace file";

void WriteAll(std::FILE* f, const void* data, std::size_t n) {
  framed_io::WriteAll(f, data, n, kWhat);
}
void WriteU32(std::FILE* f, std::uint32_t v) {
  framed_io::WriteU32(f, v, kWhat);
}
void WriteU64(std::FILE* f, std::uint64_t v) {
  framed_io::WriteU64(f, v, kWhat);
}
void ReadAll(std::FILE* f, void* data, std::size_t n) {
  framed_io::ReadAll(f, data, n, kWhat);
}
std::uint32_t ReadU32(std::FILE* f) { return framed_io::ReadU32(f, kWhat); }
std::uint64_t ReadU64(std::FILE* f) { return framed_io::ReadU64(f, kWhat); }

}  // namespace

TraceFileWriter::TraceFileWriter(const std::filesystem::path& path,
                                 const TraceHeader& header,
                                 std::size_t records_per_block)
    : records_per_block_(records_per_block) {
  file_ = std::fopen(path.string().c_str(), "wb");
  if (!file_) {
    throw std::runtime_error("cannot open trace for writing: " +
                             path.string());
  }
  WriteAll(file_, kTraceDataMagic, 4);
  WriteU32(file_, kTraceVersion);
  Bytes hdr;
  SerializeHeader(header, hdr);
  WriteU32(file_, static_cast<std::uint32_t>(hdr.size()));
  WriteAll(file_, hdr.data(), hdr.size());
  // Publish the header immediately: a tail reader can identify the radio
  // before the first block lands.
  std::fflush(file_);
}

TraceFileWriter::~TraceFileWriter() {
  try {
    if (!finished_) Finish();
  } catch (...) {
    // Destructor must not throw; an explicit Finish() reports errors.
  }
  if (file_) std::fclose(file_);
}

void TraceFileWriter::Append(const CaptureRecord& rec) {
  if (finished_) throw std::logic_error("Append after Finish");
  if (pending_count_ == 0) {
    block_first_ts_ = rec.timestamp;
    prev_ts_ = 0;  // each block is self-contained for seekability
  }
  SerializeRecord(rec, prev_ts_, pending_);
  prev_ts_ = rec.timestamp;
  ++pending_count_;
  ++records_written_;
  if (pending_count_ >= records_per_block_) FlushBlock();
}

void TraceFileWriter::FlushBlock() {
  if (pending_count_ == 0) return;
  const auto packed = LzCompress(pending_);
  BlockIndexEntry entry;
  entry.file_offset = static_cast<std::uint64_t>(std::ftell(file_));
  entry.first_timestamp = block_first_ts_;
  entry.last_timestamp = prev_ts_;
  entry.record_count = pending_count_;
  index_.push_back(entry);

  WriteU32(file_, static_cast<std::uint32_t>(packed.size()));
  WriteAll(file_, packed.data(), packed.size());
  pending_.clear();
  pending_count_ = 0;
}

void TraceFileWriter::Sync() {
  if (finished_) throw std::logic_error("Sync after Finish");
  FlushBlock();
  if (std::fflush(file_) != 0) throw std::runtime_error("trace file: flush");
}

void TraceFileWriter::Finish() {
  if (finished_) return;
  FlushBlock();
  WriteU32(file_, 0);  // terminator — the finalize marker tail readers see
  const auto index_offset = static_cast<std::uint64_t>(std::ftell(file_));
  WriteU32(file_, static_cast<std::uint32_t>(index_.size()));
  for (const auto& e : index_) {
    WriteU64(file_, e.file_offset);
    WriteU64(file_, static_cast<std::uint64_t>(e.first_timestamp));
    WriteU64(file_, static_cast<std::uint64_t>(e.last_timestamp));
    WriteU32(file_, e.record_count);
  }
  WriteU64(file_, index_offset);
  WriteAll(file_, kTraceIndexMagic, 4);
  if (std::fflush(file_) != 0) throw std::runtime_error("trace file: flush");
  finished_ = true;
}

TraceFileReader::TraceFileReader(const std::filesystem::path& path,
                                 TraceReadOptions options) {
  file_ = std::fopen(path.string().c_str(), "rb");
  if (!file_) {
    throw std::runtime_error("cannot open trace for reading: " +
                             path.string());
  }
  // Everything after the fopen sits inside one try so the FILE* is closed
  // on ANY parse failure — constructor throws skip the destructor, and a
  // fuzz loop over hostile inputs would otherwise exhaust descriptors.
  try {
    char magic[4];
    ReadAll(file_, magic, 4);
    if (std::memcmp(magic, kTraceDataMagic, 4) != 0) {
      throw TraceCorruptError("bad trace magic: " + path.string());
    }
    if (ReadU32(file_) != kTraceVersion) {
      throw TraceCorruptError("bad trace version: " + path.string());
    }
    const std::uint32_t hdr_len = ReadU32(file_);
    if (hdr_len > kMaxPackedBlockLen) {
      throw TraceCorruptError("garbage header length: " + path.string());
    }
    Bytes hdr(hdr_len);
    ReadAll(file_, hdr.data(), hdr_len);
    ByteReader hr(hdr);
    try {
      header_ = DeserializeHeader(hr);
    } catch (const std::exception& e) {
      // ByteReader underflow is a plain runtime_error; map it into the
      // taxonomy so callers only ever see TraceError for bad trace data.
      throw TraceCorruptError(std::string("malformed trace header: ") +
                              e.what());
    }

    // Load the index from the trailer.  A valid data magic but no trailer is
    // a trace whose writer has not finalized (or died): truncated, not
    // corrupt — a tail-follow reader could still consume it.
    if (std::fseek(file_, -12, SEEK_END) != 0) {
      throw TraceTruncatedError("no index trailer (unfinished trace): " +
                                path.string());
    }
    const long trailer_pos = std::ftell(file_);
    if (trailer_pos < 0) throw std::runtime_error("trace file: tell");
    const auto file_size = static_cast<std::uint64_t>(trailer_pos) + 12;
    const std::uint64_t index_offset = ReadU64(file_);
    ReadAll(file_, magic, 4);
    if (std::memcmp(magic, kTraceIndexMagic, 4) != 0) {
      throw TraceTruncatedError("no index trailer (unfinished trace): " +
                                path.string());
    }
    if (index_offset >= file_size ||
        std::fseek(file_, static_cast<long>(index_offset), SEEK_SET) != 0) {
      throw TraceCorruptError("trace file: bad index offset");
    }
    const std::uint32_t n_blocks = ReadU32(file_);
    // Each index entry occupies 28 bytes on disk (u64+u64+u64+u32); a count
    // the region between index_offset and the trailer cannot hold is corrupt,
    // and reserving for it unchecked would let a 4-byte field demand ~2 GB.
    constexpr std::uint64_t kIndexEntryBytes = 8 + 8 + 8 + 4;
    if (n_blocks > (file_size - index_offset) / kIndexEntryBytes) {
      throw TraceCorruptError("garbage index block count");
    }
    index_.reserve(n_blocks);
    for (std::uint32_t i = 0; i < n_blocks; ++i) {
      BlockIndexEntry e;
      e.file_offset = ReadU64(file_);
      e.first_timestamp = static_cast<LocalMicros>(ReadU64(file_));
      e.last_timestamp = static_cast<LocalMicros>(ReadU64(file_));
      e.record_count = ReadU32(file_);
      // Blocks live strictly before the index; an offset past it can only
      // come from a corrupt trailer.  Rejecting it here keeps LoadBlock's
      // u64→long seek cast and mmap offset arithmetic in range.
      if (e.file_offset >= index_offset) {
        throw TraceCorruptError("index entry offset past index region");
      }
      index_.push_back(e);
    }
  } catch (...) {
    std::fclose(file_);
    file_ = nullptr;
    throw;
  }
  if (options.use_mmap) TryMap();
  Rewind();
}

// Establishes the read-only mapping; any failure leaves map_ null and the
// reader on the buffered FILE* path — mmap is an optimization, never a
// requirement.
void TraceFileReader::TryMap() {
#if defined(JIG_HAVE_MMAP)
  const int fd = fileno(file_);
  if (fd < 0) return;
  struct stat st;
  if (fstat(fd, &st) != 0 || st.st_size <= 0) return;
  void* addr = mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ,
                    MAP_PRIVATE, fd, 0);
  if (addr == MAP_FAILED) return;
  map_ = static_cast<const std::uint8_t*>(addr);
  map_size_ = static_cast<std::size_t>(st.st_size);
  Metrics().mmap_active.Add(1);
#endif
}

TraceFileReader::~TraceFileReader() {
#if defined(JIG_HAVE_MMAP)
  if (map_) {
    munmap(const_cast<std::uint8_t*>(map_), map_size_);
    Metrics().mmap_active.Add(-1);
  }
#endif
  if (file_) std::fclose(file_);
}

std::uint64_t TraceFileReader::TotalRecords() const {
  std::uint64_t n = 0;
  for (const auto& e : index_) n += e.record_count;
  return n;
}

void TraceFileReader::LoadBlock(std::size_t block_idx) {
  block_records_.clear();
  block_pos_ = 0;
  if (block_idx >= index_.size()) return;
  const auto& entry = index_[block_idx];

  std::uint32_t packed_len = 0;
  Bytes packed;  // buffered path only; mmap decompresses in place
  std::span<const std::uint8_t> packed_view;
  if (map_) {
    if (entry.file_offset + 4 > map_size_) {
      throw TraceTruncatedError("indexed block past end of file");
    }
    std::memcpy(&packed_len, map_ + entry.file_offset, 4);
    if (packed_len == 0 || packed_len > kMaxPackedBlockLen) {
      throw TraceCorruptError("garbage block length in indexed block");
    }
    if (entry.file_offset + 4 + packed_len > map_size_) {
      // The index promises a block the data region no longer (or does not
      // yet) fully contains.
      throw TraceTruncatedError("indexed block truncated");
    }
    packed_view = {map_ + entry.file_offset + 4, packed_len};
  } else {
    if (std::fseek(file_, static_cast<long>(entry.file_offset), SEEK_SET) !=
        0) {
      throw std::runtime_error("trace file: seek to block");
    }
    packed_len = ReadU32(file_);
    if (packed_len == 0 || packed_len > kMaxPackedBlockLen) {
      throw TraceCorruptError("garbage block length in indexed block");
    }
    packed.resize(packed_len);
    // Distinctly reports a truncated trailing record: the index promises a
    // block the data region no longer (or does not yet) fully contains.
    ReadAll(file_, packed.data(), packed_len);
    packed_view = packed;
  }
  try {
    const Bytes raw = LzDecompress(packed_view);
    ByteReader r(raw);
    LocalMicros prev = 0;
    // A record occupies at least one raw byte, so an index entry declaring
    // more records than the block holds bytes is corrupt; reserving for it
    // unchecked would let a hostile index demand gigabytes per block.
    if (entry.record_count > raw.size()) {
      throw TraceCorruptError("index record count exceeds block size");
    }
    block_records_.reserve(entry.record_count);
    for (std::uint32_t i = 0; i < entry.record_count; ++i) {
      block_records_.push_back(DeserializeRecord(r, prev));
      prev = block_records_.back().timestamp;
    }
  } catch (const TraceError&) {
    throw;
  } catch (const LzTruncatedError& e) {
    // The block's bytes are all on disk (the length framing said so) but the
    // compressed stream inside stops short — a torn or unfinished write of
    // the payload itself.
    throw TraceTruncatedError(std::string("block payload truncated: ") +
                              e.what());
  } catch (const std::exception& e) {
    throw TraceCorruptError(std::string("malformed block contents: ") +
                            e.what());
  }
  TraceMetrics& m = Metrics();
  m.bytes.Add(4 + packed_len);
  m.blocks.Add(1);
  m.records.Add(block_records_.size());
}

std::optional<CaptureRecord> TraceFileReader::Next() {
  const CaptureRecord* rec = NextRef();
  if (!rec) return std::nullopt;
  return *rec;
}

const CaptureRecord* TraceFileReader::NextRef() {
  while (block_pos_ >= block_records_.size()) {
    if (current_block_ >= index_.size()) return nullptr;
    LoadBlock(current_block_++);
  }
  return &block_records_[block_pos_++];
}

void TraceFileReader::SeekToTimestamp(LocalMicros ts) {
  std::size_t idx = 0;
  while (idx < index_.size() && index_[idx].last_timestamp < ts) ++idx;
  current_block_ = idx;
  block_records_.clear();
  block_pos_ = 0;
  if (idx < index_.size()) {
    LoadBlock(current_block_++);
    while (block_pos_ < block_records_.size() &&
           block_records_[block_pos_].timestamp < ts) {
      ++block_pos_;
    }
  }
}

void TraceFileReader::Rewind() {
  current_block_ = 0;
  block_records_.clear();
  block_pos_ = 0;
}

}  // namespace jig
