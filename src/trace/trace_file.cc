#include "trace/trace_file.h"

#include <cstring>
#include <stdexcept>

#include "util/compression.h"

namespace jig {
namespace {

constexpr char kDataMagic[4] = {'J', 'I', 'G', 'T'};
constexpr char kIndexMagic[4] = {'J', 'I', 'G', 'X'};
constexpr std::uint32_t kVersion = 1;

void WriteAll(std::FILE* f, const void* data, std::size_t n) {
  if (std::fwrite(data, 1, n, f) != n) {
    throw std::runtime_error("trace file: short write");
  }
}

void WriteU32(std::FILE* f, std::uint32_t v) {
  std::uint8_t buf[4] = {static_cast<std::uint8_t>(v),
                         static_cast<std::uint8_t>(v >> 8),
                         static_cast<std::uint8_t>(v >> 16),
                         static_cast<std::uint8_t>(v >> 24)};
  WriteAll(f, buf, 4);
}

void WriteU64(std::FILE* f, std::uint64_t v) {
  WriteU32(f, static_cast<std::uint32_t>(v));
  WriteU32(f, static_cast<std::uint32_t>(v >> 32));
}

void ReadAll(std::FILE* f, void* data, std::size_t n) {
  if (std::fread(data, 1, n, f) != n) {
    throw std::runtime_error("trace file: short read");
  }
}

std::uint32_t ReadU32(std::FILE* f) {
  std::uint8_t buf[4];
  ReadAll(f, buf, 4);
  return static_cast<std::uint32_t>(buf[0]) |
         (static_cast<std::uint32_t>(buf[1]) << 8) |
         (static_cast<std::uint32_t>(buf[2]) << 16) |
         (static_cast<std::uint32_t>(buf[3]) << 24);
}

std::uint64_t ReadU64(std::FILE* f) {
  const std::uint64_t lo = ReadU32(f);
  const std::uint64_t hi = ReadU32(f);
  return lo | (hi << 32);
}

}  // namespace

TraceFileWriter::TraceFileWriter(const std::filesystem::path& path,
                                 const TraceHeader& header,
                                 std::size_t records_per_block)
    : records_per_block_(records_per_block) {
  file_ = std::fopen(path.string().c_str(), "wb");
  if (!file_) {
    throw std::runtime_error("cannot open trace for writing: " +
                             path.string());
  }
  WriteAll(file_, kDataMagic, 4);
  WriteU32(file_, kVersion);
  Bytes hdr;
  SerializeHeader(header, hdr);
  WriteU32(file_, static_cast<std::uint32_t>(hdr.size()));
  WriteAll(file_, hdr.data(), hdr.size());
}

TraceFileWriter::~TraceFileWriter() {
  try {
    if (!finished_) Finish();
  } catch (...) {
    // Destructor must not throw; an explicit Finish() reports errors.
  }
  if (file_) std::fclose(file_);
}

void TraceFileWriter::Append(const CaptureRecord& rec) {
  if (finished_) throw std::logic_error("Append after Finish");
  if (pending_count_ == 0) {
    block_first_ts_ = rec.timestamp;
    prev_ts_ = 0;  // each block is self-contained for seekability
  }
  SerializeRecord(rec, prev_ts_, pending_);
  prev_ts_ = rec.timestamp;
  ++pending_count_;
  ++records_written_;
  if (pending_count_ >= records_per_block_) FlushBlock();
}

void TraceFileWriter::FlushBlock() {
  if (pending_count_ == 0) return;
  const auto packed = LzCompress(pending_);
  BlockIndexEntry entry;
  entry.file_offset = static_cast<std::uint64_t>(std::ftell(file_));
  entry.first_timestamp = block_first_ts_;
  entry.last_timestamp = prev_ts_;
  entry.record_count = pending_count_;
  index_.push_back(entry);

  WriteU32(file_, static_cast<std::uint32_t>(packed.size()));
  WriteAll(file_, packed.data(), packed.size());
  pending_.clear();
  pending_count_ = 0;
}

void TraceFileWriter::Finish() {
  if (finished_) return;
  FlushBlock();
  WriteU32(file_, 0);  // terminator
  const auto index_offset = static_cast<std::uint64_t>(std::ftell(file_));
  WriteU32(file_, static_cast<std::uint32_t>(index_.size()));
  for (const auto& e : index_) {
    WriteU64(file_, e.file_offset);
    WriteU64(file_, static_cast<std::uint64_t>(e.first_timestamp));
    WriteU64(file_, static_cast<std::uint64_t>(e.last_timestamp));
    WriteU32(file_, e.record_count);
  }
  WriteU64(file_, index_offset);
  WriteAll(file_, kIndexMagic, 4);
  if (std::fflush(file_) != 0) throw std::runtime_error("trace file: flush");
  finished_ = true;
}

TraceFileReader::TraceFileReader(const std::filesystem::path& path) {
  file_ = std::fopen(path.string().c_str(), "rb");
  if (!file_) {
    throw std::runtime_error("cannot open trace for reading: " +
                             path.string());
  }
  char magic[4];
  ReadAll(file_, magic, 4);
  if (std::memcmp(magic, kDataMagic, 4) != 0) {
    throw std::runtime_error("bad trace magic: " + path.string());
  }
  if (ReadU32(file_) != kVersion) {
    throw std::runtime_error("bad trace version: " + path.string());
  }
  const std::uint32_t hdr_len = ReadU32(file_);
  Bytes hdr(hdr_len);
  ReadAll(file_, hdr.data(), hdr_len);
  ByteReader hr(hdr);
  header_ = DeserializeHeader(hr);

  // Load the index from the trailer.
  if (std::fseek(file_, -12, SEEK_END) != 0) {
    throw std::runtime_error("trace file: seek to trailer");
  }
  const std::uint64_t index_offset = ReadU64(file_);
  ReadAll(file_, magic, 4);
  if (std::memcmp(magic, kIndexMagic, 4) != 0) {
    throw std::runtime_error("bad index magic (unfinished trace?): " +
                             path.string());
  }
  if (std::fseek(file_, static_cast<long>(index_offset), SEEK_SET) != 0) {
    throw std::runtime_error("trace file: seek to index");
  }
  const std::uint32_t n_blocks = ReadU32(file_);
  index_.reserve(n_blocks);
  for (std::uint32_t i = 0; i < n_blocks; ++i) {
    BlockIndexEntry e;
    e.file_offset = ReadU64(file_);
    e.first_timestamp = static_cast<LocalMicros>(ReadU64(file_));
    e.last_timestamp = static_cast<LocalMicros>(ReadU64(file_));
    e.record_count = ReadU32(file_);
    index_.push_back(e);
  }
  Rewind();
}

TraceFileReader::~TraceFileReader() {
  if (file_) std::fclose(file_);
}

std::uint64_t TraceFileReader::TotalRecords() const {
  std::uint64_t n = 0;
  for (const auto& e : index_) n += e.record_count;
  return n;
}

void TraceFileReader::LoadBlock(std::size_t block_idx) {
  block_records_.clear();
  block_pos_ = 0;
  if (block_idx >= index_.size()) return;
  const auto& entry = index_[block_idx];
  if (std::fseek(file_, static_cast<long>(entry.file_offset), SEEK_SET) != 0) {
    throw std::runtime_error("trace file: seek to block");
  }
  const std::uint32_t packed_len = ReadU32(file_);
  Bytes packed(packed_len);
  ReadAll(file_, packed.data(), packed_len);
  const Bytes raw = LzDecompress(packed);
  ByteReader r(raw);
  LocalMicros prev = 0;
  block_records_.reserve(entry.record_count);
  for (std::uint32_t i = 0; i < entry.record_count; ++i) {
    block_records_.push_back(DeserializeRecord(r, prev));
    prev = block_records_.back().timestamp;
  }
}

std::optional<CaptureRecord> TraceFileReader::Next() {
  while (block_pos_ >= block_records_.size()) {
    if (current_block_ >= index_.size()) return std::nullopt;
    LoadBlock(current_block_++);
  }
  return block_records_[block_pos_++];
}

void TraceFileReader::SeekToTimestamp(LocalMicros ts) {
  std::size_t idx = 0;
  while (idx < index_.size() && index_[idx].last_timestamp < ts) ++idx;
  current_block_ = idx;
  block_records_.clear();
  block_pos_ = 0;
  if (idx < index_.size()) {
    LoadBlock(current_block_++);
    while (block_pos_ < block_records_.size() &&
           block_records_[block_pos_].timestamp < ts) {
      ++block_pos_;
    }
  }
}

void TraceFileReader::Rewind() {
  current_block_ = 0;
  block_records_.clear();
  block_pos_ = 0;
}

}  // namespace jig
