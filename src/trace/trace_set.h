// A set of per-radio record streams — the input shape of the Jigsaw merge.
//
// Jigsaw's merge pass reads every radio's trace in parallel, one record at a
// time (Section 4 requires a single streaming pass for online operation).
// RecordStream abstracts over where those records live: an in-memory buffer
// produced directly by the simulator, or an on-disk jigdump-style file.
#pragma once

#include <chrono>
#include <filesystem>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "trace/record.h"
#include "trace/trace_file.h"

namespace jig {

class RecordStream {
 public:
  virtual ~RecordStream() = default;
  virtual const TraceHeader& header() const = 0;
  virtual std::optional<CaptureRecord> Next() = 0;
  // Zero-copy scan: advances like Next() but hands back a pointer instead
  // of materializing a record (bootstrap reads every record of its window
  // this way).  nullptr at end of stream; the pointer is invalidated by the
  // next Next/NextRef/Rewind call.
  virtual const CaptureRecord* NextRef() = 0;
  virtual void Rewind() = 0;
  // Live-source distinction: when Next()/NextRef() yields nothing, true
  // means end-of-capture, false means "no data yet — the writer may still
  // append" (tail-follow sources).  Batch streams are always finalized, so
  // their nullopt remains authoritative EOF.
  virtual bool Finalized() const { return true; }
};

// In-memory trace, filled by the simulator's monitors.
class MemoryTrace final : public RecordStream {
 public:
  MemoryTrace(TraceHeader header, std::vector<CaptureRecord> records)
      : header_(header), records_(std::move(records)) {}

  const TraceHeader& header() const override { return header_; }
  std::optional<CaptureRecord> Next() override {
    if (pos_ >= records_.size()) return std::nullopt;
    return records_[pos_++];
  }
  const CaptureRecord* NextRef() override {
    if (pos_ >= records_.size()) return nullptr;
    return &records_[pos_++];
  }
  void Rewind() override { pos_ = 0; }

  const std::vector<CaptureRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

 private:
  TraceHeader header_;
  std::vector<CaptureRecord> records_;
  std::size_t pos_ = 0;
};

// File-backed trace.
class FileTrace final : public RecordStream {
 public:
  explicit FileTrace(const std::filesystem::path& path,
                     TraceReadOptions options = {})
      : reader_(path, options) {}

  const TraceHeader& header() const override { return reader_.header(); }
  std::optional<CaptureRecord> Next() override { return reader_.Next(); }
  // Points into the reader's decoded-block buffer: valid until the next
  // advance, per the RecordStream contract — no per-record copy.
  const CaptureRecord* NextRef() override { return reader_.NextRef(); }
  void Rewind() override { reader_.Rewind(); }

  TraceFileReader& reader() { return reader_; }

 private:
  TraceFileReader reader_;
};

struct ChannelShard;

// Owning collection of streams, one per radio.
class TraceSet {
 public:
  TraceSet() = default;

  void Add(std::unique_ptr<RecordStream> stream) {
    streams_.push_back(std::move(stream));
  }

  std::size_t size() const { return streams_.size(); }
  bool empty() const { return streams_.empty(); }
  RecordStream& at(std::size_t i) { return *streams_[i]; }
  const RecordStream& at(std::size_t i) const { return *streams_[i]; }

  void RewindAll() {
    for (auto& s : streams_) s->Rewind();
  }

  // Opens every *.jigt file in a directory as one trace set, ordered by
  // radio id so analyses are deterministic regardless of directory order.
  // `options` (e.g. use_mmap) applies to every opened trace.
  static TraceSet OpenDirectory(const std::filesystem::path& dir,
                                TraceReadOptions options = {});

  // Live counterpart of OpenDirectory: polls `dir` until `expected_traces`
  // *.jigt files have readable headers (with expected_traces == 0, until
  // the file count is non-zero and has held still for a settle period of
  // ~10 poll intervals — pass the expected count when you know it; the
  // trace set cannot grow once this returns), then opens them all as
  // tail-follow streams ordered by radio id.  Throws std::runtime_error
  // if the deadline passes first.
  static TraceSet FollowDirectory(
      const std::filesystem::path& dir, std::size_t expected_traces = 0,
      std::chrono::milliseconds poll_interval = std::chrono::milliseconds(20),
      std::chrono::milliseconds timeout = std::chrono::seconds(30));

  // Writes every stream out as jigdump-style files into `dir` (one file per
  // radio, named r<id>.jigt) and returns the paths.  Streams are rewound.
  std::vector<std::filesystem::path> WriteDirectory(
      const std::filesystem::path& dir);

  // Moves every stream into per-channel shards — the parallel unit of the
  // sharded merge: 802.11 instances of one transmission only ever appear on
  // monitors tuned to the same channel, so each shard can be unified
  // independently.  This set becomes empty; shards are ordered by channel
  // number and preserve this set's relative stream order within a channel.
  std::vector<ChannelShard> PartitionByChannel();

  // Inverse of PartitionByChannel: moves every shard stream back into this
  // (empty) set at its recorded source index, restoring the original order.
  void AdoptShards(std::vector<ChannelShard> shards);

 private:
  std::vector<std::unique_ptr<RecordStream>> streams_;
};

// One channel's slice of a TraceSet.  `source_index[i]` is the position
// stream i held in the originating set (needed to slice per-trace state such
// as bootstrap offsets, and to reassemble the set afterwards).
struct ChannelShard {
  Channel channel = Channel::kCh1;
  TraceSet traces;
  std::vector<std::size_t> source_index;
};

// Incremental writer for a directory of per-radio traces — the live
// counterpart of TraceSet::WriteDirectory, letting the simulator (or a
// capture daemon) act as a live writer that tail-follow readers consume
// concurrently.  Append() buffers per radio; Sync() cuts every radio's
// pending records into a published block; Finalize() writes a radio's
// index trailer + finalize marker (after which Append to it throws).
class TraceSetWriter {
 public:
  explicit TraceSetWriter(const std::filesystem::path& dir) : dir_(dir) {
    std::filesystem::create_directories(dir_);
  }

  // Registers a radio and creates its r<id>.jigt file (header published
  // immediately).  Returns the slot index used by Append/Finalize.
  std::size_t AddRadio(const TraceHeader& header,
                       std::size_t records_per_block = 512) {
    std::string name = "r";
    name += std::to_string(header.radio);
    name += ".jigt";
    const auto path = dir_ / name;
    writers_.push_back(
        std::make_unique<TraceFileWriter>(path, header, records_per_block));
    finalized_.push_back(false);
    paths_.push_back(path);
    return writers_.size() - 1;
  }

  void Append(std::size_t slot, const CaptureRecord& rec) {
    writers_.at(slot)->Append(rec);
  }

  // Publishes everything appended so far to concurrent tail readers.
  void Sync() {
    for (std::size_t i = 0; i < writers_.size(); ++i) {
      if (!finalized_[i]) writers_[i]->Sync();
    }
  }

  void Finalize(std::size_t slot) {
    if (!finalized_.at(slot)) {
      writers_[slot]->Finish();
      finalized_[slot] = true;
    }
  }

  void FinalizeAll() {
    for (std::size_t i = 0; i < writers_.size(); ++i) Finalize(i);
  }

  std::size_t size() const { return writers_.size(); }
  const std::vector<std::filesystem::path>& paths() const { return paths_; }

 private:
  std::filesystem::path dir_;
  std::vector<std::unique_ptr<TraceFileWriter>> writers_;
  std::vector<bool> finalized_;
  std::vector<std::filesystem::path> paths_;
};

}  // namespace jig
