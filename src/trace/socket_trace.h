// Socket-fed record stream: the same block-framed .jigt bytes a trace
// file holds, pushed over TCP, consumed with TailFileTrace's tri-state
// semantics (no-data-yet vs finalize-marker vs corruption).
//
// Wire format (docs/FORMATS.md, "Socket transport"):
//
//   [hello: "JIGH"][u32 hello version = 1][u32 source id]
//   [ .jigt stream: "JIGT"][u32 version][u32 header_len][header]
//   repeated [u32 packed_len > 0][LZ block]
//   [u32 0]                                    finalize marker
//
// i.e. after a 12-byte hello the sender streams a vanilla .jigt byte
// stream, minus the index trailer (an index is a seekability feature of
// files; a socket is consumed once, front to back).  The hello is the
// one-way handshake: the receiver validates the magic + version and
// simply closes on mismatch; `source id` tags the stream's origin (the
// wing id in the two-level topology, 0 for a standalone radio).
//
// Consumer semantics mirror the tail reader exactly:
//   * no data yet    — the next frame is not fully received; Next()
//                      returns nullopt, Finalized() stays false.
//   * finalized      — the [u32 0] marker arrived: latched end-of-capture
//                      (trailing bytes, if any, are ignored).
//   * truncation     — the peer closed before the marker: the capture was
//                      cut off mid-stream.  TraceTruncatedError, thrown
//                      once everything received has been consumed.
//   * corruption     — bad magic/version, garbage block length, or a
//                      complete block that does not parse.
//                      TraceCorruptError; reconnecting cannot help.
//
// Decoded records are retained in memory so Rewind() works — the merge's
// global late-bootstrap pass re-reads every trace from offset zero, and a
// socket cannot seek.  This makes a SocketTrace's footprint O(records),
// like MemoryTrace; the two-level topology bounds it per node.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "trace/net.h"
#include "trace/trace_set.h"

namespace jig {

inline constexpr char kSocketHelloMagic[4] = {'J', 'I', 'G', 'H'};
inline constexpr std::uint32_t kSocketHelloVersion = 1;

class SocketTrace final : public RecordStream {
 public:
  // Waits (up to header_timeout_ms) for the hello + trace header, then
  // switches the socket to non-blocking tail consumption.  Throws
  // TraceCorruptError on a bad hello/magic/version, TraceTruncatedError
  // if the peer closes (or the timeout passes) before the header.
  static std::unique_ptr<SocketTrace> Open(net::Socket sock,
                                           int header_timeout_ms = 30000);

  const TraceHeader& header() const override { return header_; }
  std::optional<CaptureRecord> Next() override;
  const CaptureRecord* NextRef() override;
  // Replays the retained records from the start (late bootstrap).
  void Rewind() override { pos_ = 0; }
  // Latched once the finalize marker arrives — never flaps back.
  bool Finalized() const override { return finalized_; }

  // The hello's source id: which wing (or standalone sender) this came
  // from.
  std::uint32_t source_id() const { return source_id_; }

  // ---- disconnect / reconnect -------------------------------------------
  //
  // By default a peer that closes before the finalize marker is a
  // truncated capture (NextRef throws once everything received has been
  // consumed) — the right call for one-shot collectors, where a lost
  // sender means lost data.  A long-running service instead expects the
  // sender to re-dial: with set_resumable(true) the disconnect parks the
  // stream (NextRef returns nullptr, Finalized() stays false,
  // disconnected() reports true) until Resume() installs the replacement
  // connection.
  void set_resumable(bool on) { resumable_ = on; }
  // Peer closed before the marker and everything received was decoded.
  bool disconnected() const { return peer_eof_ && !finalized_; }

  // Adopts a re-dialed connection for the SAME stream.  Parses the new
  // connection's hello + header (blocking up to header_timeout_ms) and
  // validates that the source id and radio match this stream — a
  // different sender on the old port is corruption, not a resume.  The
  // re-dialing sender replays its capture from record zero (a socket
  // cannot seek, and the sender cannot know how much the old connection
  // delivered before dying); records already retained here are consumed
  // and dropped instead of being surfaced twice, so the merged stream
  // sees each record exactly once.  Any partial block left over from the
  // dead connection is discarded — the replay re-covers it.
  // Throws TraceCorruptError on identity mismatch / bad handshake,
  // TraceTruncatedError if the header never arrives, std::logic_error if
  // the stream already finalized.
  void Resume(net::Socket sock, int header_timeout_ms = 30000);

  // Accept-side router: parses the fresh connection's handshake once,
  // then either adopts it into the matching (same source id + radio,
  // not yet finalized) stream in `existing` — returning nullptr — or
  // returns it as a brand-new stream.  This is what a listening
  // collector calls for EVERY accepted connection once re-dials are
  // possible: only the handshake identity can distinguish a resuming
  // wing from a new one.
  static std::unique_ptr<SocketTrace> OpenOrResume(
      net::Socket sock, const std::vector<SocketTrace*>& existing,
      int header_timeout_ms = 30000);

  // Drains the socket into the retained record buffer without advancing
  // the consumer cursor.  A collector over many streams must call this
  // on EVERY stream each poll round: the merge pulls only on the radios
  // it currently needs, and a sender interleaving several radios over
  // one thread blocks in send() as soon as any unread stream's kernel
  // buffer fills — a cross-stream backpressure deadlock.  Ingest keeps
  // every sender drained (at the cost of buffering in memory, which the
  // retained-record design pays anyway).  May throw TraceCorruptError.
  void Ingest() { Pump(); }

 private:
  struct Handshake {
    net::Socket sock;
    TraceHeader header;
    std::uint32_t source_id = 0;
    std::vector<std::uint8_t> leftover;
  };
  // Blocks (up to the timeout) for the hello + trace header on a fresh
  // connection; shared by Open and Resume.
  static Handshake ParseHandshake(net::Socket sock, int header_timeout_ms);
  // Installs a re-dialed connection: replaces the socket, discards the
  // dead connection's partial block, arms the from-zero replay skip.
  void AdoptHandshake(Handshake hs);

  SocketTrace(net::Socket sock, TraceHeader header, std::uint32_t source_id,
              std::vector<std::uint8_t> leftover);

  // Drains the socket without blocking and decodes every complete
  // [len][block] unit into records_.  Returns true if new records (or the
  // finalize marker) appeared.
  bool Pump();

  net::Socket sock_;
  TraceHeader header_;
  std::uint32_t source_id_ = 0;
  std::vector<std::uint8_t> buf_;  // received, not yet decoded
  // Retained for Rewind.  A deque, NOT a vector: NextRef hands out
  // pointers into this container and the merge keeps them across poll
  // rounds (the unifier's heads wait for window-mates), while Ingest
  // keeps appending — a vector's growth reallocation would invalidate
  // every outstanding pointer mid-merge.  Deque end-insertion never
  // moves existing elements.
  std::deque<CaptureRecord> records_;
  std::size_t pos_ = 0;
  bool finalized_ = false;
  bool peer_eof_ = false;
  bool resumable_ = false;
  // Records of the resumed sender's from-zero replay still to drop
  // (everything up to the old connection's last complete block).
  std::uint64_t resume_skip_ = 0;
};

// Sender half: TraceFileWriter's framing over a socket — hello, then
// header, then LZ blocks, then the finalize marker; no index trailer.
// All sends are blocking; a vanished peer surfaces as std::runtime_error.
class SocketTraceWriter {
 public:
  SocketTraceWriter(net::Socket sock, const TraceHeader& header,
                    std::uint32_t source_id = 0,
                    std::size_t records_per_block = 512);
  ~SocketTraceWriter();
  SocketTraceWriter(const SocketTraceWriter&) = delete;
  SocketTraceWriter& operator=(const SocketTraceWriter&) = delete;

  void Append(const CaptureRecord& rec);
  // Cuts and sends the pending partial block so the receiver can consume
  // everything appended so far.
  void Sync();
  // Sends the finalize marker.  Idempotent.
  void Finish();

  std::uint64_t records_sent() const { return records_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  void FlushBlock();
  void SendU32(std::uint32_t v);

  net::Socket sock_;
  std::size_t records_per_block_;
  Bytes pending_;
  std::size_t pending_count_ = 0;
  LocalMicros prev_ts_ = 0;
  bool finished_ = false;
  std::uint64_t records_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

// Accepts `n` socket trace streams on `listener` and returns them as a
// TraceSet ordered by radio id (the same deterministic order
// OpenDirectory guarantees).  Each stream's header must arrive within
// `timeout_ms` of its accept.  With `resumable`, n counts DISTINCT
// (source, radio) identities: a sender that dies and re-dials during the
// accept phase adopts into its existing stream (which is marked
// resumable, so later disconnects park instead of throwing) rather than
// being accepted as a duplicate.
TraceSet AcceptTraces(net::Listener& listener, std::size_t n,
                      int timeout_ms = 30000, bool resumable = false);

}  // namespace jig
