#include "trace/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <stdexcept>
#include <sys/socket.h>
#include <unistd.h>

namespace jig::net {
namespace {

[[noreturn]] void Fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_in MakeAddr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

Socket::~Socket() { Close(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::SetNonBlocking() {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    Fail("fcntl(O_NONBLOCK)");
  }
}

Listener::Listener(const std::string& host, std::uint16_t port) {
  sock_ = Socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock_.valid()) Fail("socket");
  const int one = 1;
  ::setsockopt(sock_.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = MakeAddr(host, port);
  if (::bind(sock_.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    Fail("bind " + host + ":" + std::to_string(port));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(sock_.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    Fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(sock_.fd(), SOMAXCONN) != 0) Fail("listen");
}

Socket Listener::Accept(int timeout_ms) {
  pollfd pfd{sock_.fd(), POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      Fail("poll(accept)");
    }
    if (rc == 0) {
      throw std::runtime_error("accept timed out on port " +
                               std::to_string(port_));
    }
    break;
  }
  const int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd < 0) Fail("accept");
  Socket peer(fd);
  const int one = 1;
  ::setsockopt(peer.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return peer;
}

Socket Listener::TryAccept() {
  pollfd pfd{sock_.fd(), POLLIN, 0};
  const int rc = ::poll(&pfd, 1, 0);
  if (rc < 0) {
    if (errno == EINTR) return Socket{};
    Fail("poll(try-accept)");
  }
  if (rc == 0) return Socket{};
  const int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd < 0) {
    // The queued peer can vanish between poll and accept; that is "no
    // connection right now", not an error.
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED ||
        errno == EINTR) {
      return Socket{};
    }
    Fail("accept");
  }
  Socket peer(fd);
  const int one = 1;
  ::setsockopt(peer.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return peer;
}

Socket ConnectTo(const std::string& host, std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) Fail("socket");
  const sockaddr_in addr = MakeAddr(host, port);
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    Fail("connect " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

void SendAll(Socket& sock, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE.
    const ssize_t sent = ::send(sock.fd(), p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      Fail("send");
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
}

ReadResult ReadSome(Socket& sock, void* buf, std::size_t cap) {
  for (;;) {
    const ssize_t got = ::recv(sock.fd(), buf, cap, 0);
    if (got > 0) return {static_cast<std::size_t>(got), false};
    if (got == 0) return {0, true};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return {0, false};
    if (errno == ECONNRESET) return {0, true};
    Fail("recv");
  }
}

}  // namespace jig::net
