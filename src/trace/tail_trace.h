// Tail-follow record stream over a growing .jigt file.
//
// The paper's pipeline is online: the merge must consume traces the radios
// are still writing.  TailFileTrace reads the same block format as
// TraceFileReader but never touches the index trailer — it walks the data
// region sequentially and, at the write frontier, distinguishes three
// situations a batch reader conflates:
//
//   * no data yet     — the next block's length word or body is not fully
//                       on disk.  Next() returns nullopt, Finalized() stays
//                       false, and the partially written region is re-read
//                       from the block boundary on the next call (a
//                       half-written trailing block is never mistaken for
//                       corruption or EOF).
//   * finalized       — the writer's Finish() wrote the [u32 0] terminator:
//                       an explicit end-of-capture marker.  Next() returns
//                       nullopt and Finalized() reports true.
//   * corruption      — bad magic/version, a garbage block length, or a
//                       fully written block whose contents do not parse.
//                       TraceCorruptError is thrown; waiting cannot help,
//                       so a tailer must not spin on it.
#pragma once

#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "trace/trace_set.h"

namespace jig {

class TailFileTrace final : public RecordStream {
 public:
  // Opens `path` if its header is fully written; returns nullptr when the
  // file is still too short (the writer has not published the header yet —
  // retry later).  Throws TraceCorruptError on bad magic/version and
  // std::runtime_error if the file cannot be opened at all.
  static std::unique_ptr<TailFileTrace> TryOpen(
      const std::filesystem::path& path);

  ~TailFileTrace() override;
  TailFileTrace(const TailFileTrace&) = delete;
  TailFileTrace& operator=(const TailFileTrace&) = delete;

  const TraceHeader& header() const override { return header_; }
  // nullopt means "no complete record available": consult Finalized() to
  // tell end-of-capture from a frontier that may still grow.
  std::optional<CaptureRecord> Next() override;
  const CaptureRecord* NextRef() override;
  void Rewind() override;
  // Latched: once the finalize marker has been observed this stays true
  // forever — Rewind() replays the records but cannot un-finalize the
  // trace (the marker is the writer's irrevocable end-of-capture
  // statement, and a consumer that saw Finalized() == true may already
  // have torn down its re-poll loop).
  bool Finalized() const override { return end_marker_seen_; }

  const std::filesystem::path& path() const { return path_; }

 private:
  TailFileTrace(std::FILE* file, TraceHeader header, std::uint64_t data_start,
                std::filesystem::path path);

  // Attempts to load the block at next_block_offset_.  Returns false with
  // no state change when the block is not fully written yet, false with
  // end_marker_seen_ latched when the terminator is found, true on
  // success.
  bool TryLoadNextBlock();

  std::FILE* file_ = nullptr;
  TraceHeader header_;
  std::filesystem::path path_;
  std::uint64_t data_start_ = 0;        // offset of the first block
  std::uint64_t next_block_offset_ = 0; // read frontier (block-aligned)
  std::vector<CaptureRecord> block_records_;
  std::size_t block_pos_ = 0;
  // Both latch on the [u32 0] terminator and survive Rewind(): replay
  // stops at the recorded marker offset instead of re-reading the marker,
  // so Finalized() can never flap back to false.
  bool end_marker_seen_ = false;
  std::uint64_t end_marker_offset_ = 0;
};

}  // namespace jig
