// Tail-follow record stream over a growing .jigt file.
//
// The paper's pipeline is online: the merge must consume traces the radios
// are still writing.  TailFileTrace reads the same block format as
// TraceFileReader but never touches the index trailer — it walks the data
// region sequentially and, at the write frontier, distinguishes three
// situations a batch reader conflates:
//
//   * no data yet     — the next block's length word or body is not fully
//                       on disk.  Next() returns nullopt, Finalized() stays
//                       false, and the partially written region is re-read
//                       from the block boundary on the next call (a
//                       half-written trailing block is never mistaken for
//                       corruption or EOF).
//   * finalized       — the writer's Finish() wrote the [u32 0] terminator:
//                       an explicit end-of-capture marker.  Next() returns
//                       nullopt and Finalized() reports true.
//   * corruption      — bad magic/version, a garbage block length, or a
//                       fully written block whose contents do not parse.
//                       TraceCorruptError is thrown; waiting cannot help,
//                       so a tailer must not spin on it.
#pragma once

#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "trace/trace_set.h"

namespace jig {

class TailFileTrace final : public RecordStream {
 public:
  // Opens `path` if its header is fully written; returns nullptr when the
  // file is still too short (the writer has not published the header yet —
  // retry later).  Throws TraceCorruptError on bad magic/version and
  // std::runtime_error if the file cannot be opened at all.
  static std::unique_ptr<TailFileTrace> TryOpen(
      const std::filesystem::path& path);

  ~TailFileTrace() override;
  TailFileTrace(const TailFileTrace&) = delete;
  TailFileTrace& operator=(const TailFileTrace&) = delete;

  const TraceHeader& header() const override { return header_; }
  // nullopt means "no complete record available": consult Finalized() to
  // tell end-of-capture from a frontier that may still grow.
  std::optional<CaptureRecord> Next() override;
  const CaptureRecord* NextRef() override;
  void Rewind() override;
  bool Finalized() const override {
    return finalized_ && block_pos_ >= block_records_.size();
  }

  const std::filesystem::path& path() const { return path_; }

 private:
  TailFileTrace(std::FILE* file, TraceHeader header, std::uint64_t data_start,
                std::filesystem::path path);

  // Attempts to load the block at next_block_offset_.  Returns false with
  // no state change when the block is not fully written yet, false with
  // finalized_ set when the terminator is found, true on success.
  bool TryLoadNextBlock();

  std::FILE* file_ = nullptr;
  TraceHeader header_;
  std::filesystem::path path_;
  std::uint64_t data_start_ = 0;        // offset of the first block
  std::uint64_t next_block_offset_ = 0; // read frontier (block-aligned)
  std::vector<CaptureRecord> block_records_;
  std::size_t block_pos_ = 0;
  bool finalized_ = false;
};

}  // namespace jig
