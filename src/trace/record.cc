#include "trace/record.h"

#include <cmath>

namespace jig {

void SerializeHeader(const TraceHeader& h, Bytes& out) {
  ByteWriter w(out);
  w.U16(h.radio);
  w.U16(h.pod);
  w.U16(h.monitor);
  w.U8(static_cast<std::uint8_t>(h.channel));
  w.I64(h.ntp_utc_of_local_zero_us);
  w.U32(h.snaplen);
}

TraceHeader DeserializeHeader(ByteReader& r) {
  TraceHeader h;
  h.radio = r.U16();
  h.pod = r.U16();
  h.monitor = r.U16();
  h.channel = static_cast<Channel>(r.U8());
  h.ntp_utc_of_local_zero_us = r.I64();
  h.snaplen = r.U32();
  return h;
}

void SerializeRecord(const CaptureRecord& rec, LocalMicros prev_timestamp,
                     Bytes& out) {
  ByteWriter w(out);
  // Timestamps are delta-coded: captures are near-monotonic so deltas are
  // small and varint-friendly — this plus the LZ layer stands in for the
  // LZO compression jigdump applies (Section 3.3).
  w.SVarint(rec.timestamp - prev_timestamp);
  w.U8(static_cast<std::uint8_t>(rec.outcome));
  // RSSI quantized to 0.25 dB around -128..+127 dBm.
  const auto q = static_cast<std::int16_t>(std::lround(rec.rssi_dbm * 4.0F));
  w.U16(static_cast<std::uint16_t>(q));
  w.U8(static_cast<std::uint8_t>(rec.rate));
  w.Varint(rec.orig_len);
  w.Varint(rec.bytes.size());
  w.Raw(rec.bytes);
}

CaptureRecord DeserializeRecord(ByteReader& r, LocalMicros prev_timestamp) {
  CaptureRecord rec;
  // Unsigned addition: a hostile delta would make the signed sum overflow,
  // which is UB — wraparound gives the same value for every valid trace and
  // a defined (if meaningless) one for corrupt input.
  rec.timestamp = static_cast<LocalMicros>(
      static_cast<std::uint64_t>(prev_timestamp) +
      static_cast<std::uint64_t>(r.SVarint()));
  rec.outcome = static_cast<RxOutcome>(r.U8());
  rec.rssi_dbm = static_cast<float>(static_cast<std::int16_t>(r.U16())) / 4.0F;
  rec.rate = static_cast<PhyRate>(r.U8());
  rec.orig_len = static_cast<std::uint32_t>(r.Varint());
  const auto len = static_cast<std::size_t>(r.Varint());
  auto raw = r.Raw(len);
  rec.bytes.assign(raw.begin(), raw.end());
  return rec;
}

}  // namespace jig
