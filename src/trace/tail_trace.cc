#include "trace/tail_trace.h"

#include <cstring>

#include "obs/metrics.h"
#include "util/compression.h"

namespace jig {
namespace {

// Reads exactly n bytes at `offset`; returns false (without throwing) when
// the file does not hold that many bytes yet.
bool ReadAt(std::FILE* f, std::uint64_t offset, void* data, std::size_t n) {
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) return false;
  std::clearerr(f);
  if (std::fread(data, 1, n, f) != n) {
    if (std::feof(f)) return false;
    throw TraceError("tail trace: read error");
  }
  return true;
}

std::uint32_t DecodeU32(const std::uint8_t* b) {
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

struct TailMetrics {
  obs::Counter& bytes = obs::MetricRegistry::Global().GetCounter(
      "jig_trace_bytes_read_total", "Compressed trace bytes read from disk");
  obs::Counter& blocks = obs::MetricRegistry::Global().GetCounter(
      "jig_trace_blocks_decoded_total", "Trace blocks decompressed");
  obs::Counter& records = obs::MetricRegistry::Global().GetCounter(
      "jig_trace_records_decoded_total", "Capture records decoded");
  obs::Counter& repolls = obs::MetricRegistry::Global().GetCounter(
      "jig_trace_repolls_total",
      "Tail polls that found no new complete block");
  obs::Counter& truncation_retries = obs::MetricRegistry::Global().GetCounter(
      "jig_trace_truncation_retries_total",
      "Tail polls that saw a half-written block body and backed off");
};

TailMetrics& Metrics() {
  static TailMetrics* m = new TailMetrics();
  return *m;
}

}  // namespace

std::unique_ptr<TailFileTrace> TailFileTrace::TryOpen(
    const std::filesystem::path& path) {
  std::FILE* file = std::fopen(path.string().c_str(), "rb");
  if (!file) {
    throw std::runtime_error("cannot open trace for tailing: " +
                             path.string());
  }
  struct Closer {
    std::FILE* f;
    ~Closer() {
      if (f) std::fclose(f);
    }
  } closer{file};

  std::uint8_t fixed[12];  // magic + version + header_len
  if (!ReadAt(file, 0, fixed, sizeof fixed)) return nullptr;
  if (std::memcmp(fixed, kTraceDataMagic, 4) != 0) {
    throw TraceCorruptError("bad trace magic: " + path.string());
  }
  if (DecodeU32(fixed + 4) != kTraceVersion) {
    throw TraceCorruptError("bad trace version: " + path.string());
  }
  const std::uint32_t hdr_len = DecodeU32(fixed + 8);
  if (hdr_len > kMaxPackedBlockLen) {
    throw TraceCorruptError("garbage header length: " + path.string());
  }
  Bytes hdr(hdr_len);
  if (!ReadAt(file, sizeof fixed, hdr.data(), hdr_len)) return nullptr;
  TraceHeader header;
  try {
    ByteReader hr(hdr);
    header = DeserializeHeader(hr);
  } catch (const std::exception& e) {
    throw TraceCorruptError(std::string("malformed trace header: ") +
                            e.what());
  }
  closer.f = nullptr;  // ownership moves to the stream
  return std::unique_ptr<TailFileTrace>(new TailFileTrace(
      file, header, sizeof fixed + hdr_len, path));
}

TailFileTrace::TailFileTrace(std::FILE* file, TraceHeader header,
                             std::uint64_t data_start,
                             std::filesystem::path path)
    : file_(file),
      header_(header),
      path_(std::move(path)),
      data_start_(data_start),
      next_block_offset_(data_start) {}

TailFileTrace::~TailFileTrace() {
  if (file_) std::fclose(file_);
}

bool TailFileTrace::TryLoadNextBlock() {
  // After a Rewind() past the latched marker, replay stops exactly where
  // the marker was seen — re-reading it would be wasted IO, and the latch
  // itself must never clear.
  if (end_marker_seen_ && next_block_offset_ >= end_marker_offset_) {
    return false;
  }
  std::uint8_t len_buf[4];
  if (!ReadAt(file_, next_block_offset_, len_buf, 4)) {
    Metrics().repolls.Add(1);
    return false;
  }
  const std::uint32_t packed_len = DecodeU32(len_buf);
  if (packed_len == 0) {
    // The writer's finalize marker: no block will ever follow.
    end_marker_seen_ = true;
    end_marker_offset_ = next_block_offset_;
    return false;
  }
  if (packed_len > kMaxPackedBlockLen) {
    throw TraceCorruptError("garbage block length at offset " +
                            std::to_string(next_block_offset_) + ": " +
                            path_.string());
  }
  Bytes packed(packed_len);
  if (!ReadAt(file_, next_block_offset_ + 4, packed.data(), packed_len)) {
    // The block body is still being written; re-poll from the boundary.
    Metrics().truncation_retries.Add(1);
    return false;
  }
  try {
    const Bytes raw = LzDecompress(packed);
    ByteReader r(raw);
    block_records_.clear();
    block_pos_ = 0;
    LocalMicros prev = 0;
    while (!r.AtEnd()) {
      block_records_.push_back(DeserializeRecord(r, prev));
      prev = block_records_.back().timestamp;
    }
  } catch (const std::exception& e) {
    // The length word said the block is complete, so a parse failure is
    // corruption — waiting cannot repair it.
    throw TraceCorruptError("malformed block at offset " +
                            std::to_string(next_block_offset_) + " (" +
                            e.what() + "): " + path_.string());
  }
  TailMetrics& m = Metrics();
  m.bytes.Add(4 + packed_len);
  m.blocks.Add(1);
  m.records.Add(block_records_.size());
  next_block_offset_ += 4 + packed_len;
  return true;
}

std::optional<CaptureRecord> TailFileTrace::Next() {
  const CaptureRecord* rec = NextRef();
  if (!rec) return std::nullopt;
  return *rec;
}

const CaptureRecord* TailFileTrace::NextRef() {
  while (block_pos_ >= block_records_.size()) {
    if (!TryLoadNextBlock()) return nullptr;
  }
  return &block_records_[block_pos_++];
}

void TailFileTrace::Rewind() {
  next_block_offset_ = data_start_;
  block_records_.clear();
  block_pos_ = 0;
  // Deliberately leaves end_marker_seen_ untouched: finalize is a latch.
  // Clearing it here let a re-poll consumer observe Finalized() flapping
  // true -> false after a bootstrap rewind, and a socket/wing consumer
  // that tears down on the first true would then hang forever waiting for
  // a marker it had already consumed.
}

}  // namespace jig
