// Shared stdio framing primitives for the on-disk formats (.jigt traces
// and .jigs spill segments — docs/FORMATS.md).
//
// Both formats frame little-endian length-prefixed blocks into a stdio
// stream and share one error discipline: a short read at end-of-file means
// the structure being read was cut off (an unfinished write or a lost
// tail) and surfaces as TraceTruncatedError, distinct from both clean EOF
// and corruption.  Keeping the primitives here keeps that discipline in
// one place — a fix to the short-read/EOF handling must reach every
// format at once.  `what` names the format for error messages
// ("trace file", "spill segment").
#pragma once

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "trace/trace_file.h"

namespace jig::framed_io {

inline void WriteAll(std::FILE* f, const void* data, std::size_t n,
                     const char* what) {
  if (std::fwrite(data, 1, n, f) != n) {
    throw std::runtime_error(std::string(what) + ": short write");
  }
}

inline void WriteU32(std::FILE* f, std::uint32_t v, const char* what) {
  std::uint8_t buf[4] = {static_cast<std::uint8_t>(v),
                         static_cast<std::uint8_t>(v >> 8),
                         static_cast<std::uint8_t>(v >> 16),
                         static_cast<std::uint8_t>(v >> 24)};
  WriteAll(f, buf, 4, what);
}

inline void WriteU64(std::FILE* f, std::uint64_t v, const char* what) {
  WriteU32(f, static_cast<std::uint32_t>(v), what);
  WriteU32(f, static_cast<std::uint32_t>(v >> 32), what);
}

inline void ReadAll(std::FILE* f, void* data, std::size_t n,
                    const char* what) {
  if (std::fread(data, 1, n, f) != n) {
    if (std::feof(f)) {
      throw TraceTruncatedError(std::string(what) +
                                ": truncated (file ends mid-structure)");
    }
    throw TraceError(std::string(what) + ": read error");
  }
}

inline std::uint32_t ReadU32(std::FILE* f, const char* what) {
  std::uint8_t buf[4];
  ReadAll(f, buf, 4, what);
  return static_cast<std::uint32_t>(buf[0]) |
         (static_cast<std::uint32_t>(buf[1]) << 8) |
         (static_cast<std::uint32_t>(buf[2]) << 16) |
         (static_cast<std::uint32_t>(buf[3]) << 24);
}

inline std::uint64_t ReadU64(std::FILE* f, const char* what) {
  const std::uint64_t lo = ReadU32(f, what);
  const std::uint64_t hi = ReadU32(f, what);
  return lo | (hi << 32);
}

}  // namespace jig::framed_io
