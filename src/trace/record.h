// Per-radio capture records — the raw material Jigsaw consumes.
//
// This mirrors what the paper's modified MadWifi driver + jigdump deliver
// (Section 3.3): every physical-layer event, not just valid frames —
// corrupted frames (FCS failures) and PHY errors included — each stamped by
// the radio's local 1 us clock and annotated with signal strength and rate.
#pragma once

#include <cstdint>
#include <string>

#include "phy/propagation.h"
#include "util/byte_io.h"
#include "util/time.h"
#include "wifi/channel.h"
#include "wifi/rates.h"

namespace jig {

// Dense radio index, assigned by the scenario: pods * 4 radios.
using RadioId = std::uint16_t;
constexpr RadioId kInvalidRadio = 0xFFFF;

struct CaptureRecord {
  LocalMicros timestamp = 0;  // local clock at start of reception
  RxOutcome outcome = RxOutcome::kOk;
  float rssi_dbm = 0.0F;
  PhyRate rate = PhyRate::kB1;
  std::uint32_t orig_len = 0;  // frame length on the air (bytes incl. FCS)
  // Captured bytes: possibly snap-truncated, and corrupted for kFcsError
  // records.  Empty for kPhyError (the PLCP payload never decoded).
  Bytes bytes;

  bool IsDecodable() const { return outcome == RxOutcome::kOk; }
  bool IsError() const { return outcome != RxOutcome::kOk; }
};

// Identifies a radio's place in the deployment.  Radios on the same monitor
// share a capture clock (the driver slaves both to one reference — Section
// 3.3), which is what lets bootstrap synchronization bridge channels.
struct TraceHeader {
  RadioId radio = kInvalidRadio;
  std::uint16_t pod = 0;
  std::uint16_t monitor = 0;  // global monitor index; 2 radios per monitor
  Channel channel = Channel::kCh1;
  // Monitor system-clock (NTP) estimate of the UTC time, in us, at which
  // this trace's local clock read zero.  Accurate to milliseconds; used
  // only to window the bootstrap search (paper footnote 4).
  std::int64_t ntp_utc_of_local_zero_us = 0;
  std::uint32_t snaplen = 224;  // MAC header + ~200 payload bytes

  std::string Name() const {
    return "pod" + std::to_string(pod) + "/mon" + std::to_string(monitor) +
           "/" + ChannelName(channel) + "/r" + std::to_string(radio);
  }
};

void SerializeHeader(const TraceHeader& h, Bytes& out);
TraceHeader DeserializeHeader(ByteReader& r);

void SerializeRecord(const CaptureRecord& rec, LocalMicros prev_timestamp,
                     Bytes& out);
CaptureRecord DeserializeRecord(ByteReader& r, LocalMicros prev_timestamp);

}  // namespace jig
