// Compressed per-radio trace files with a metadata index.
//
// jigdump writes hour-long (data, metadata) file pairs per radio, with the
// data LZO-compressed in blocks and the metadata indexing those blocks for
// random access (Section 3.3).  We reproduce the shape in a single file:
//
//   [magic "JIGT"][u32 version]
//   [u32 header_len][header]
//   repeated blocks: [u32 packed_len][LZ-compressed records]
//   [u32 0]  (terminator)
//   index: per block {file_offset, first_ts, last_ts, record_count}
//   [u64 index_offset][magic "JIGX"]
//
// The index allows seeking to a time range without decompressing the whole
// file — TraceFileReader::SeekToTimestamp uses it, as do the bootstrap
// passes which only need the first second of data.
#pragma once

#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/record.h"

namespace jig {

// On-disk structure constants, shared with the tail-follow reader.
inline constexpr char kTraceDataMagic[4] = {'J', 'I', 'G', 'T'};
inline constexpr char kTraceIndexMagic[4] = {'J', 'I', 'G', 'X'};
inline constexpr std::uint32_t kTraceVersion = 1;
// Sanity bound on a compressed block: blocks are ~512 records of a few
// hundred bytes each, so anything past this is a garbage length field, not
// a block that has not finished writing.
inline constexpr std::uint32_t kMaxPackedBlockLen = 1u << 26;

// Error taxonomy for trace parsing.  The distinction matters to live
// ingest: a truncated structure may simply not be written yet, while
// corruption can never be fixed by waiting.
class TraceError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};
// The file ends in the middle of a structure (header, block, index
// trailer): either a write still in progress or a lost tail.  Tail-follow
// readers treat this as "no data yet"; batch readers surface it so the
// caller knows the trace is unfinished rather than garbage.
class TraceTruncatedError : public TraceError {
  using TraceError::TraceError;
};
// The bytes present cannot be a trace (bad magic, impossible lengths,
// malformed compression): retrying cannot help.
class TraceCorruptError : public TraceError {
  using TraceError::TraceError;
};

struct BlockIndexEntry {
  std::uint64_t file_offset = 0;
  LocalMicros first_timestamp = 0;
  LocalMicros last_timestamp = 0;
  std::uint32_t record_count = 0;
};

class TraceFileWriter {
 public:
  TraceFileWriter(const std::filesystem::path& path, const TraceHeader& header,
                  std::size_t records_per_block = 512);
  ~TraceFileWriter();

  TraceFileWriter(const TraceFileWriter&) = delete;
  TraceFileWriter& operator=(const TraceFileWriter&) = delete;

  void Append(const CaptureRecord& rec);
  // Live-writer publication point: cuts the pending records into a block
  // (blocks may therefore be shorter than records_per_block) and flushes
  // the stdio buffer, so a concurrent TailFileTrace sees everything
  // appended so far.  No-op when nothing is pending.
  void Sync();
  // Flushes any partial block and writes the index trailer — the explicit
  // finalize marker ([u32 0] terminator) tail readers watch for.  Called by
  // the destructor if not called explicitly; explicit callers get
  // exceptions.
  void Finish();

  std::uint64_t records_written() const { return records_written_; }

 private:
  void FlushBlock();

  std::FILE* file_ = nullptr;
  std::size_t records_per_block_;
  Bytes pending_;               // serialized records awaiting compression
  std::uint32_t pending_count_ = 0;
  LocalMicros block_first_ts_ = 0;
  LocalMicros prev_ts_ = 0;  // delta-coding state, reset per block
  std::vector<BlockIndexEntry> index_;
  std::uint64_t records_written_ = 0;
  bool finished_ = false;
};

// Read-mode knobs for batch trace readers.
struct TraceReadOptions {
  // Map the file read-only and decompress blocks straight out of the page
  // cache instead of copying them through buffered read().  Falls back to
  // the buffered path automatically (and silently) when mapping is
  // unavailable or fails; the jig_trace_mmap_active gauge reports how many
  // readers currently hold a mapping.  Tail-follow readers ignore this —
  // their re-poll logic needs the growing-file semantics of read().
  bool use_mmap = false;
};

class TraceFileReader {
 public:
  explicit TraceFileReader(const std::filesystem::path& path,
                           TraceReadOptions options = {});
  ~TraceFileReader();

  TraceFileReader(const TraceFileReader&) = delete;
  TraceFileReader& operator=(const TraceFileReader&) = delete;

  const TraceHeader& header() const { return header_; }
  const std::vector<BlockIndexEntry>& index() const { return index_; }
  std::uint64_t TotalRecords() const;
  // True when this reader serves blocks from an established memory map.
  bool mmap_active() const { return map_ != nullptr; }

  // Sequential record access; nullopt at end of trace.
  std::optional<CaptureRecord> Next();
  // Zero-copy variant: the pointer is valid until the next
  // Next/NextRef/Seek/Rewind call on this reader.
  const CaptureRecord* NextRef();

  // Positions the cursor at the first block whose last timestamp is >= ts.
  void SeekToTimestamp(LocalMicros ts);
  void Rewind();

 private:
  void LoadBlock(std::size_t block_idx);
  void TryMap();

  std::FILE* file_ = nullptr;
  TraceHeader header_;
  std::vector<BlockIndexEntry> index_;
  std::size_t current_block_ = 0;
  std::vector<CaptureRecord> block_records_;
  std::size_t block_pos_ = 0;
  // mmap mode (null when inactive; the FILE* stays open as the fallback).
  const std::uint8_t* map_ = nullptr;
  std::size_t map_size_ = 0;
};

}  // namespace jig
