// Compressed per-radio trace files with a metadata index.
//
// jigdump writes hour-long (data, metadata) file pairs per radio, with the
// data LZO-compressed in blocks and the metadata indexing those blocks for
// random access (Section 3.3).  We reproduce the shape in a single file:
//
//   [magic "JIGT"][u32 version]
//   [u32 header_len][header]
//   repeated blocks: [u32 packed_len][LZ-compressed records]
//   [u32 0]  (terminator)
//   index: per block {file_offset, first_ts, last_ts, record_count}
//   [u64 index_offset][magic "JIGX"]
//
// The index allows seeking to a time range without decompressing the whole
// file — TraceFileReader::SeekToTimestamp uses it, as do the bootstrap
// passes which only need the first second of data.
#pragma once

#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/record.h"

namespace jig {

struct BlockIndexEntry {
  std::uint64_t file_offset = 0;
  LocalMicros first_timestamp = 0;
  LocalMicros last_timestamp = 0;
  std::uint32_t record_count = 0;
};

class TraceFileWriter {
 public:
  TraceFileWriter(const std::filesystem::path& path, const TraceHeader& header,
                  std::size_t records_per_block = 512);
  ~TraceFileWriter();

  TraceFileWriter(const TraceFileWriter&) = delete;
  TraceFileWriter& operator=(const TraceFileWriter&) = delete;

  void Append(const CaptureRecord& rec);
  // Flushes any partial block and writes the index trailer.  Called by the
  // destructor if not called explicitly; explicit callers get exceptions.
  void Finish();

  std::uint64_t records_written() const { return records_written_; }

 private:
  void FlushBlock();

  std::FILE* file_ = nullptr;
  std::size_t records_per_block_;
  Bytes pending_;               // serialized records awaiting compression
  std::uint32_t pending_count_ = 0;
  LocalMicros block_first_ts_ = 0;
  LocalMicros prev_ts_ = 0;  // delta-coding state, reset per block
  std::vector<BlockIndexEntry> index_;
  std::uint64_t records_written_ = 0;
  bool finished_ = false;
};

class TraceFileReader {
 public:
  explicit TraceFileReader(const std::filesystem::path& path);
  ~TraceFileReader();

  TraceFileReader(const TraceFileReader&) = delete;
  TraceFileReader& operator=(const TraceFileReader&) = delete;

  const TraceHeader& header() const { return header_; }
  const std::vector<BlockIndexEntry>& index() const { return index_; }
  std::uint64_t TotalRecords() const;

  // Sequential record access; nullopt at end of trace.
  std::optional<CaptureRecord> Next();

  // Positions the cursor at the first block whose last timestamp is >= ts.
  void SeekToTimestamp(LocalMicros ts);
  void Rewind();

 private:
  void LoadBlock(std::size_t block_idx);

  std::FILE* file_ = nullptr;
  TraceHeader header_;
  std::vector<BlockIndexEntry> index_;
  std::size_t current_block_ = 0;
  std::vector<CaptureRecord> block_records_;
  std::size_t block_pos_ = 0;
};

}  // namespace jig
