// Bootstrap synchronization (paper Section 4.1).
//
// Establishes a single universal time standard across all radios before
// unification begins.  No frame is heard building-wide, so synchronization
// is transitive: reference sets E_k (radios that heard unique frame s_k)
// overlap, and a breadth-first traversal assigns each radio an offset T_i
// such that local_time + T_i agrees on the shared references.  Channels are
// bridged through monitors whose two radios share one capture clock.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace_set.h"

namespace jig {

struct BootstrapConfig {
  // Window of data examined, anchored at the latest trace start (the paper
  // uses the first second, located via NTP-disciplined system clocks).
  Micros window = Seconds(1);
  // Reference sets must span at least this many radios to enter G.
  std::size_t min_set_size = 2;
};

struct BootstrapResult {
  // Offset T_i per trace (same order as the TraceSet): universal = local +
  // T_i.  Valid only where synced[i].
  std::vector<double> offset_us;
  std::vector<bool> synced;
  // Diagnostics.
  std::size_t reference_frames_considered = 0;
  std::size_t sync_set_size = 0;  // |G|
  int max_bfs_depth = 0;

  std::size_t SyncedCount() const {
    std::size_t n = 0;
    for (bool s : synced) {
      if (s) ++n;
    }
    return n;
  }
  bool AllSynced() const { return SyncedCount() == synced.size(); }

  // Restriction to a subset of traces (e.g. one channel shard of a
  // partitioned TraceSet): entry i of the slice is this result's entry
  // indices[i].  Diagnostics are carried along unchanged — they describe
  // the global bootstrap pass the slice came from.
  BootstrapResult Slice(const std::vector<std::size_t>& indices) const {
    BootstrapResult out;
    out.offset_us.reserve(indices.size());
    out.synced.reserve(indices.size());
    for (std::size_t i : indices) {
      out.offset_us.push_back(offset_us[i]);
      out.synced.push_back(synced[i]);
    }
    out.reference_frames_considered = reference_frames_considered;
    out.sync_set_size = sync_set_size;
    out.max_bfs_depth = max_bfs_depth;
    return out;
  }

  // Shard concatenation (inverse of Slice over a partition): appends the
  // other result's traces and combines diagnostics, so independently
  // bootstrapped shards can still be reported as one deployment.
  BootstrapResult& operator+=(const BootstrapResult& other) {
    offset_us.insert(offset_us.end(), other.offset_us.begin(),
                     other.offset_us.end());
    synced.insert(synced.end(), other.synced.begin(), other.synced.end());
    reference_frames_considered += other.reference_frames_considered;
    sync_set_size += other.sync_set_size;
    max_bfs_depth = std::max(max_bfs_depth, other.max_bfs_depth);
    return *this;
  }
};

// Scans the bootstrap window of every trace and computes offsets.  Traces
// are rewound before and after.  Throws std::runtime_error on an empty set.
BootstrapResult BootstrapSynchronize(TraceSet& traces,
                                     const BootstrapConfig& config = {});

}  // namespace jig
