#include "jigsaw/service.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "obs/export.h"
#include "obs/metrics.h"
#include "trace/tail_trace.h"
#include "util/byte_io.h"
#include "util/crc32.h"

namespace jig {
namespace {

namespace fs = std::filesystem;

// Service-wide metrics (label-free).
struct ServiceMetrics {
  obs::Gauge& active = obs::MetricRegistry::Global().GetGauge(
      "jig_service_deployments_active",
      "Deployments currently discovering or running");
  obs::Counter& recoveries = obs::MetricRegistry::Global().GetCounter(
      "jig_service_recoveries_total",
      "Monitors that restarted from a .jigc checkpoint");
  obs::Counter& failures = obs::MetricRegistry::Global().GetCounter(
      "jig_service_deployment_failures_total",
      "Deployments marked failed by an escaped error");
};

ServiceMetrics& Metrics() {
  static ServiceMetrics* m = new ServiceMetrics();
  return *m;
}

std::string DeploymentLabel(const std::string& name) {
  return "deployment=\"" + name + "\"";
}

const char* StateName(DeploymentMonitor::State s) {
  switch (s) {
    case DeploymentMonitor::State::kDiscovering:
      return "discovering";
    case DeploymentMonitor::State::kRunning:
      return "running";
    case DeploymentMonitor::State::kDone:
      return "done";
    case DeploymentMonitor::State::kFailed:
      return "failed";
  }
  return "unknown";
}

// Rate as integer parts-per-million (the service's own expositions carry
// no floating-point text; see the determinism lint's D003 rule).
std::uint64_t Ppm(double fraction) {
  if (!(fraction > 0.0)) return 0;
  if (fraction >= 1.0) return 1'000'000;
  return static_cast<std::uint64_t>(fraction * 1e6);
}

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
}

}  // namespace

// --------------------------------------------------------------- .jigc

// gcc 12's -Wstringop-overflow misfires on ByteWriter::Raw's vector insert
// when inlined here (the PR 101831 family byte_io.h also suppresses around
// U16); the inserts are bounds-correct and the service tests run this code
// under ASan.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#endif
void SaveCheckpoint(const fs::path& path, const Checkpoint& cp) {
  Bytes out;
  out.reserve(64 + cp.deployment.size() + 13 * cp.frontiers.size() +
              33 * cp.segments.size());
  ByteWriter w(out);
  w.Raw({reinterpret_cast<const std::uint8_t*>(kCheckpointMagic), 4});
  w.U32(kCheckpointVersion);
  w.Varint(cp.deployment.size());
  w.Raw({reinterpret_cast<const std::uint8_t*>(cp.deployment.data()),
         cp.deployment.size()});
  w.U64(cp.emitted);
  w.U64(cp.active_sequence);
  w.U64(cp.active_base);
  w.U32(static_cast<std::uint32_t>(cp.frontiers.size()));
  for (const RadioFrontier& f : cp.frontiers) {
    w.U32(f.radio);
    w.U64(f.records_seen);
    w.U8(f.finalized ? 1 : 0);
  }
  w.U32(static_cast<std::uint32_t>(cp.segments.size()));
  for (const OutputSegmentInfo& s : cp.segments) {
    w.U64(s.sequence);
    w.U64(s.base_index);
    w.I64(s.max_timestamp);
    w.U64(s.bytes);
    w.U8(s.sealed ? 1 : 0);
  }
  const std::uint32_t crc = Crc32({out.data(), out.size()});
  w.U32(crc);
  obs::WriteFileAtomic(
      path, std::string_view(reinterpret_cast<const char*>(out.data()),
                             out.size()));
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

Checkpoint LoadCheckpoint(const fs::path& path) {
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  if (!f) {
    throw std::runtime_error("cannot open checkpoint: " + path.string());
  }
  Bytes raw;
  std::uint8_t chunk[4096];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    raw.insert(raw.end(), chunk, chunk + n);
  }
  std::fclose(f);
  if (raw.size() < 12) {
    throw TraceTruncatedError("checkpoint too short: " + path.string());
  }
  const std::uint32_t stored_crc =
      static_cast<std::uint32_t>(raw[raw.size() - 4]) |
      (static_cast<std::uint32_t>(raw[raw.size() - 3]) << 8) |
      (static_cast<std::uint32_t>(raw[raw.size() - 2]) << 16) |
      (static_cast<std::uint32_t>(raw[raw.size() - 1]) << 24);
  if (Crc32({raw.data(), raw.size() - 4}) != stored_crc) {
    throw TraceCorruptError("checkpoint CRC mismatch: " + path.string());
  }
  ByteReader r({raw.data(), raw.size() - 4});
  const auto magic = r.Raw(4);
  if (std::memcmp(magic.data(), kCheckpointMagic, 4) != 0) {
    throw TraceCorruptError("bad checkpoint magic: " + path.string());
  }
  if (r.U32() != kCheckpointVersion) {
    throw TraceCorruptError("unsupported checkpoint version: " +
                            path.string());
  }
  try {
    Checkpoint cp;
    const std::uint64_t name_len = r.Varint();
    const auto name = r.Raw(name_len);
    cp.deployment.assign(reinterpret_cast<const char*>(name.data()),
                         name.size());
    cp.emitted = r.U64();
    cp.active_sequence = r.U64();
    cp.active_base = r.U64();
    const std::uint32_t n_frontiers = r.U32();
    cp.frontiers.reserve(n_frontiers);
    for (std::uint32_t i = 0; i < n_frontiers; ++i) {
      RadioFrontier fr;
      fr.radio = r.U32();
      fr.records_seen = r.U64();
      fr.finalized = r.U8() != 0;
      cp.frontiers.push_back(fr);
    }
    const std::uint32_t n_segments = r.U32();
    cp.segments.reserve(n_segments);
    for (std::uint32_t i = 0; i < n_segments; ++i) {
      OutputSegmentInfo seg;
      seg.sequence = r.U64();
      seg.base_index = r.U64();
      seg.max_timestamp = r.I64();
      seg.bytes = r.U64();
      seg.sealed = r.U8() != 0;
      cp.segments.push_back(seg);
    }
    if (!r.AtEnd()) {
      throw TraceCorruptError("trailing bytes in checkpoint: " +
                              path.string());
    }
    return cp;
  } catch (const TraceCorruptError&) {
    throw;
  } catch (const std::exception& e) {
    // A ByteReader bounds failure inside a CRC-valid file means the
    // structure lied about its own lengths: corruption, not truncation.
    throw TraceCorruptError(std::string("malformed checkpoint: ") +
                            e.what());
  }
}

// ------------------------------------------------------ DeploymentMonitor

// Per-deployment metric handles, resolved once (GetCounter/GetGauge take a
// registry mutex).
struct DeploymentMonitor::OutMetrics {
  explicit OutMetrics(const std::string& name)
      : persisted(obs::MetricRegistry::Global().GetCounter(
            "jig_service_jframes_persisted_total",
            "Jframes appended to the deployment's output log",
            DeploymentLabel(name))),
        recovered(obs::MetricRegistry::Global().GetCounter(
            "jig_service_recovered_jframes_total",
            "Replayed jframes suppressed as already durable after restart",
            DeploymentLabel(name))),
        checkpoints(obs::MetricRegistry::Global().GetCounter(
            "jig_service_checkpoints_total",
            "Checkpoint files written", DeploymentLabel(name))),
        retention_deletes(obs::MetricRegistry::Global().GetCounter(
            "jig_service_retention_deleted_segments_total",
            "Sealed output segments deleted by retention",
            DeploymentLabel(name))),
        output_bytes(obs::MetricRegistry::Global().GetGauge(
            "jig_service_output_bytes",
            "Output-log bytes on disk", DeploymentLabel(name))),
        output_segments(obs::MetricRegistry::Global().GetGauge(
            "jig_service_output_segments",
            "Output-log segments on disk", DeploymentLabel(name))),
        retained(obs::MetricRegistry::Global().GetGauge(
            "jig_service_retained_jframes",
            "Jframes buffered inside the deployment's merge",
            DeploymentLabel(name))),
        checkpoint_age_ms(obs::MetricRegistry::Global().GetGauge(
            "jig_service_checkpoint_age_ms",
            "Milliseconds since the deployment last checkpointed",
            DeploymentLabel(name))) {}

  obs::Counter& persisted;
  obs::Counter& recovered;
  obs::Counter& checkpoints;
  obs::Counter& retention_deletes;
  obs::Gauge& output_bytes;
  obs::Gauge& output_segments;
  obs::Gauge& retained;
  obs::Gauge& checkpoint_age_ms;
};

DeploymentMonitor::DeploymentMonitor(DeploymentConfig config,
                                     StreamWrapper wrapper)
    : config_(std::move(config)),
      wrapper_(std::move(wrapper)),
      last_checkpoint_(std::chrono::steady_clock::now()),
      metrics_(std::make_unique<OutMetrics>(config_.name)) {
  fs::create_directories(config_.state_dir / "out");
  std::optional<Checkpoint> cp;
  if (fs::exists(CheckpointPath())) {
    cp = LoadCheckpoint(CheckpointPath());
    recovered_start_ = true;
    Metrics().recoveries.Add(1);
  }
  expected_traces_ = config_.expected_traces;
  if (cp && cp->frontiers.size() > expected_traces_) {
    expected_traces_ = cp->frontiers.size();
  }
  // A crashed session's merge-spill segments are session-private residue;
  // the replay rebuilds any backlog it needs.
  if (!config_.merge.spill_dir.empty()) {
    std::error_code ec;
    fs::remove_all(config_.merge.spill_dir, ec);
    fs::create_directories(config_.merge.spill_dir);
  }
  RecoverLog(cp);
  suppress_remaining_ = log_index_;
  if (config_.analysis) {
    bus_ = std::make_unique<AnalysisBus>();
    link_ = &bus_->Emplace<LinkConsumer>();
    interference_ = &bus_->Emplace<InterferenceConsumer>(*link_);
    tcp_loss_ = &bus_->Emplace<TcpLossConsumer>(*link_);
  }
  // First checkpoint right away: once anything is on disk, recovery can
  // always find the active segment's base index in the table.
  WriteCheckpoint();
}

DeploymentMonitor::~DeploymentMonitor() {
  if (state_ == State::kFailed && writer_) {
    // Leave the log exactly as the simulated crash left it: no finalize
    // marker, pending block dropped.  (A destructor-run Finish() would
    // forge durable state the "killed" process never produced.)
    writer_->Abandon();
  }
  // Otherwise SpillSegmentWriter's destructor seals the open segment —
  // a clean teardown leaves a strict-readable log behind.
}

fs::path DeploymentMonitor::CheckpointPath() const {
  return config_.state_dir / "checkpoint.jigc";
}

fs::path DeploymentMonitor::SegmentPath(std::uint64_t sequence) const {
  char name[32];
  std::snprintf(name, sizeof name, "out-%08" PRIu64 ".jigs", sequence);
  return config_.state_dir / "out" / name;
}

// Rebuilds the output-log bookkeeping from the checkpoint table plus the
// segments actually on disk, repairing a torn tail.  Establishes
// sealed_/active_*/log_index_/newest_ts_.
void DeploymentMonitor::RecoverLog(const std::optional<Checkpoint>& cp) {
  // Base indexes recorded by the last checkpoint (the on-disk truth for
  // where each segment starts in the stream).
  std::map<std::uint64_t, OutputSegmentInfo> known;
  if (cp) {
    for (const OutputSegmentInfo& s : cp->segments) {
      known.emplace(s.sequence, s);
    }
    active_seq_ = cp->active_sequence;
    active_base_ = cp->active_base;
  }
  std::vector<std::uint64_t> on_disk;
  std::error_code ec;
  for (const auto& entry :
       fs::directory_iterator(config_.state_dir / "out", ec)) {
    std::uint64_t seq = 0;
    if (std::sscanf(entry.path().filename().string().c_str(),
                    "out-%08" SCNu64 ".jigs", &seq) == 1) {
      on_disk.push_back(seq);
    }
  }
  std::sort(on_disk.begin(), on_disk.end());
  std::uint64_t next_base = 0;
  for (std::size_t i = 0; i < on_disk.size(); ++i) {
    const std::uint64_t seq = on_disk[i];
    std::uint64_t base = next_base;
    if (const auto it = known.find(seq); it != known.end()) {
      base = it->second.base_index;
    } else if (cp && seq == cp->active_sequence) {
      // Created after the last checkpoint (segments are lazy): the
      // checkpoint still recorded the identity it WOULD get.
      base = cp->active_base;
    } else if (i == 0) {
      // The oldest segment must be known to the checkpoint (or be the
      // very first segment of a fresh deployment): retention only deletes
      // after checkpointing, so an unknown oldest segment means the
      // stream's origin is unrecoverable.
      if (cp && seq != 0) {
        throw TraceCorruptError(
            "output log: oldest segment " + SegmentPath(seq).string() +
            " is not in the checkpoint table");
      }
      base = 0;
    }
    // Tail-mode read: counts the complete jframes and tolerates a torn
    // trailing block (the "no data yet" frontier discipline — here the
    // writer is dead, so the frontier is simply where the crash cut it).
    SpillSegmentReader reader(SegmentPath(seq), /*strict=*/false);
    std::vector<JFrame> jfs;
    std::int64_t max_ts = 0;
    while (auto jf = reader.Next()) {
      max_ts = std::max(max_ts, jf->timestamp);
      jfs.push_back(std::move(*jf));
    }
    const bool last = i + 1 == on_disk.size();
    if (!last && !reader.finalized()) {
      throw TraceCorruptError("output log: non-newest segment " +
                              SegmentPath(seq).string() +
                              " has no finalize marker");
    }
    next_base = base + jfs.size();
    if (reader.finalized()) {
      sealed_.push_back({seq, base, max_ts,
                         static_cast<std::uint64_t>(
                             fs::file_size(SegmentPath(seq))),
                         true});
      if (last) {
        active_seq_ = seq + 1;
        active_base_ = next_base;
      }
    } else if (jfs.empty()) {
      // Nothing durable made it into the torn tail: drop it and reuse
      // the sequence number for the fresh active segment.
      fs::remove(SegmentPath(seq));
      active_seq_ = seq;
      active_base_ = base;
    } else {
      // Repair: rewrite the complete jframes as a sealed segment (temp +
      // rename, so a crash during recovery is itself recoverable), then
      // continue the stream in a fresh segment.
      const fs::path tmp = SegmentPath(seq) += ".repair";
      {
        SpillSegmentWriter rw(tmp, {0, seq},
                              config_.output_records_per_block);
        for (const JFrame& jf : jfs) rw.Append(jf);
        rw.Finish();
      }
      fs::rename(tmp, SegmentPath(seq));
      sealed_.push_back({seq, base, max_ts,
                         static_cast<std::uint64_t>(
                             fs::file_size(SegmentPath(seq))),
                         true});
      active_seq_ = seq + 1;
      active_base_ = next_base;
    }
    newest_ts_ = std::max(newest_ts_, max_ts);
  }
  if (on_disk.empty()) {
    // Fresh deployment, or everything before the active segment was
    // retained away and the active file was never created.
    if (!cp) {
      active_seq_ = 0;
      active_base_ = 0;
    }
  }
  log_index_ = active_base_;
}

DeploymentMonitor::State DeploymentMonitor::PollOnce() {
  if (state_ == State::kFailed) {
    throw std::logic_error("DeploymentMonitor: PollOnce after failure");
  }
  if (state_ == State::kDone) return state_;
  try {
    if (state_ == State::kDiscovering) {
      Discover();
      if (state_ != State::kRunning) return state_;
    }
    const MergeSession::Status status = session_->Poll();
    if (appended_this_round_ > 0) {
      if (writer_) writer_->Sync();  // publish this round's blocks
      EnforceRetention();
      WriteCheckpoint();
      appended_this_round_ = 0;
    }
    if (status == MergeSession::Status::kDone) {
      if (bus_) bus_->Finish();
      if (writer_) {
        writer_->Finish();  // seal: the stream is complete
        SealActiveSegment();
      }
      WriteCheckpoint();
      state_ = State::kDone;
    }
    UpdateGauges();
  } catch (...) {
    state_ = State::kFailed;
    throw;
  }
  return state_;
}

void DeploymentMonitor::Discover() {
  std::error_code ec;
  for (const auto& entry :
       fs::directory_iterator(config_.trace_dir, ec)) {
    if (entry.path().extension() != ".jigt") continue;
    const std::string key = entry.path().string();
    if (pending_.contains(key)) continue;
    // nullptr = header not fully published yet; retry next round.
    if (auto trace = TailFileTrace::TryOpen(entry.path())) {
      pending_.emplace(key, std::move(trace));
    }
  }
  if (ec || pending_.empty()) return;
  if (pending_.size() < expected_traces_) return;
  StartSession();
}

void DeploymentMonitor::StartSession() {
  // Deterministic set order: radio id, path as tiebreak (pending_ is
  // already path-ordered).
  std::vector<std::pair<std::uint32_t, std::unique_ptr<RecordStream>>>
      opened;
  opened.reserve(pending_.size());
  for (auto& [path, trace] : pending_) {
    opened.emplace_back(trace->header().radio, std::move(trace));
  }
  pending_.clear();
  std::stable_sort(opened.begin(), opened.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (auto& [radio, stream] : opened) {
    std::unique_ptr<RecordStream> s = std::move(stream);
    if (wrapper_) s = wrapper_(std::move(s), radio);
    auto counted = std::make_unique<FrontierTrace>(std::move(s));
    frontiers_.emplace_back(radio, counted.get());
    traces_.Add(std::move(counted));
  }
  session_ = std::make_unique<MergeSession>(
      traces_, config_.merge,
      [this](JFrame&& jf) { OnJFrame(std::move(jf)); });
  state_ = State::kRunning;
}

void DeploymentMonitor::OnJFrame(JFrame&& jf) {
  // The analysis chain sees EVERY delivery, including the recovery
  // replay: its windowed state regenerates deterministically alongside
  // the suppressed prefix.
  if (bus_) bus_->OnJFrame(jf);
  if (suppress_remaining_ > 0) {
    --suppress_remaining_;
    ++recovered_;
    metrics_->recovered.Add(1);
    return;
  }
  AppendToLog(jf);
}

void DeploymentMonitor::AppendToLog(const JFrame& jf) {
  if (!writer_) {
    writer_ = std::make_unique<SpillSegmentWriter>(
        SegmentPath(active_seq_), SpillSegmentHeader{0, active_seq_},
        config_.output_records_per_block);
    active_max_ts_ = 0;
  }
  writer_->Append(jf);
  const std::uint64_t index = log_index_++;
  ++appended_this_round_;
  active_max_ts_ = std::max(active_max_ts_, jf.timestamp);
  newest_ts_ = std::max(newest_ts_, jf.timestamp);
  metrics_->persisted.Add(1);
  if (config_.hooks.after_output_append) {
    config_.hooks.after_output_append(index);
  }
  MaybeRotate();
}

// Rotation is checked per append (bytes_written moves at block cuts, so
// the test fires at most once per block): a single Poll round can emit an
// entire batch capture, and a per-round check would put it all in one
// segment.  Only appends trigger rotation — never the per-round Sync,
// whose short published blocks depend on where poll rounds happened to
// fall.
void DeploymentMonitor::MaybeRotate() {
  if (!writer_) return;
  if (writer_->bytes_written() < config_.output_segment_bytes) return;
  writer_->Finish();
  SealActiveSegment();
}

// Retires the (finished) active writer into sealed_ and advances the
// active identity.  The checkpoint that follows records the new base, so
// a crash at any point leaves the stream derivable: the sealed file
// carries its own record count, and the next segment's base is base +
// that count whether or not the checkpoint landed.
void DeploymentMonitor::SealActiveSegment() {
  sealed_.push_back({active_seq_, active_base_, active_max_ts_,
                     static_cast<std::uint64_t>(
                         fs::file_size(SegmentPath(active_seq_))),
                     true});
  writer_.reset();
  ++active_seq_;
  active_base_ = log_index_;
  active_max_ts_ = 0;
}

void DeploymentMonitor::EnforceRetention() {
  bool deleted = false;
  const auto drop_oldest = [&] {
    std::error_code ec;
    fs::remove(SegmentPath(sealed_.front().sequence), ec);
    sealed_.erase(sealed_.begin());
    metrics_->retention_deletes.Add(1);
    deleted = true;
  };
  if (config_.retention_window_us > 0) {
    const std::int64_t horizon = newest_ts_ - config_.retention_window_us;
    while (!sealed_.empty() && sealed_.front().max_timestamp < horizon) {
      drop_oldest();
    }
  }
  if (config_.max_output_bytes > 0) {
    const auto total = [&] {
      std::uint64_t t = writer_ ? writer_->bytes_written() : 0;
      for (const OutputSegmentInfo& s : sealed_) t += s.bytes;
      return t;
    };
    while (!sealed_.empty() && total() > config_.max_output_bytes) {
      drop_oldest();
    }
  }
  // The deletions and the table shrink land in the same checkpoint the
  // caller writes next; a crash in between is covered because the stale
  // table is a superset of the surviving segments.
  (void)deleted;
}

Checkpoint DeploymentMonitor::BuildCheckpoint() const {
  Checkpoint cp;
  cp.deployment = config_.name;
  cp.emitted = log_index_;
  cp.active_sequence = active_seq_;
  cp.active_base = active_base_;
  for (const auto& [radio, tap] : frontiers_) {
    cp.frontiers.push_back(
        {radio, tap->frontier(), tap->Finalized()});
  }
  cp.segments = sealed_;
  if (writer_) {
    cp.segments.push_back({active_seq_, active_base_, active_max_ts_,
                           writer_->bytes_written(), false});
  }
  return cp;
}

void DeploymentMonitor::WriteCheckpoint() {
  if (config_.hooks.before_checkpoint) config_.hooks.before_checkpoint();
  SaveCheckpoint(CheckpointPath(), BuildCheckpoint());
  last_checkpoint_ = std::chrono::steady_clock::now();
  checkpointed_once_ = true;
  metrics_->checkpoints.Add(1);
  if (config_.hooks.after_checkpoint) config_.hooks.after_checkpoint();
}

void DeploymentMonitor::Shutdown() {
  if (state_ != State::kRunning) return;
  if (writer_) writer_->Sync();  // publish the pending block
  WriteCheckpoint();
  UpdateGauges();
}

std::uint64_t DeploymentMonitor::output_bytes_on_disk() const {
  std::uint64_t t = writer_ ? writer_->bytes_written() : 0;
  for (const OutputSegmentInfo& s : sealed_) t += s.bytes;
  return t;
}

std::uint64_t DeploymentMonitor::output_segments_on_disk() const {
  return sealed_.size() + (writer_ ? 1 : 0);
}

void DeploymentMonitor::UpdateGauges() {
  metrics_->output_bytes.Set(
      static_cast<std::int64_t>(output_bytes_on_disk()));
  metrics_->output_segments.Set(
      static_cast<std::int64_t>(output_segments_on_disk()));
  metrics_->retained.Set(static_cast<std::int64_t>(
      session_ ? session_->retained_jframes() : 0));
  const auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - last_checkpoint_);
  metrics_->checkpoint_age_ms.Set(age.count());
}

DeploymentStatus DeploymentMonitor::Status() const {
  DeploymentStatus st;
  st.name = config_.name;
  st.state = StateName(state_);
  st.jframes = log_index_;
  st.recovered = recovered_;
  st.output_bytes = output_bytes_on_disk();
  st.output_segments = output_segments_on_disk();
  st.retained_jframes = session_ ? session_->retained_jframes() : 0;
  st.lag_us = session_ ? session_->live_lag_us() : 0;
  st.checkpoint_age_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - last_checkpoint_)
          .count());
  if (interference_ && tcp_loss_) {
    const auto fig9 = interference_->SnapshotReport();
    const auto fig11 = tcp_loss_->SnapshotReport();
    st.interference_pairs = fig9.pairs.size();
    st.interfered_ppm = Ppm(fig9.fraction_pairs_interfered);
    st.tcp_flows = fig11.flows_considered;
    st.tcp_loss_ppm = Ppm(fig11.aggregate_loss_rate);
  }
  return st;
}

// --------------------------------------------------------- MonitorService

MonitorService::MonitorService(ServiceConfig config)
    : config_(std::move(config)),
      last_exposition_(std::chrono::steady_clock::now()) {}

MonitorService::~MonitorService() = default;

DeploymentMonitor& MonitorService::AddDeployment(
    DeploymentConfig config, DeploymentMonitor::StreamWrapper wrapper) {
  monitors_.push_back(std::make_unique<DeploymentMonitor>(
      std::move(config), std::move(wrapper)));
  return *monitors_.back();
}

std::size_t MonitorService::PollOnce() {
  std::size_t active = 0;
  for (auto& m : monitors_) {
    const auto state = m->state();
    if (state == DeploymentMonitor::State::kDone ||
        state == DeploymentMonitor::State::kFailed) {
      continue;
    }
    try {
      const auto after = m->PollOnce();
      if (after == DeploymentMonitor::State::kDiscovering ||
          after == DeploymentMonitor::State::kRunning) {
        ++active;
      }
    } catch (const std::exception& e) {
      // One deployment's escaped error (corrupt trace, full disk, an
      // injected kill) must not take its siblings down.
      std::fprintf(stderr, "deployment %s failed: %s\n",
                   m->name().c_str(), e.what());
      Metrics().failures.Add(1);
    }
  }
  Metrics().active.Set(static_cast<std::int64_t>(active));
  return active;
}

void MonitorService::Run(const std::function<bool()>& keep_running) {
  while (keep_running()) {
    PollOnce();
    const auto now = std::chrono::steady_clock::now();
    if (now - last_exposition_ >= config_.snapshot_interval) {
      WriteSnapshot();
      WriteMetrics();
      last_exposition_ = now;
    }
    std::this_thread::sleep_for(config_.idle_sleep);
  }
  Shutdown();
}

void MonitorService::Shutdown() {
  for (auto& m : monitors_) m->Shutdown();
  WriteSnapshot();
  WriteMetrics();
}

std::string MonitorService::SnapshotJson() const {
  std::string out = "{\"deployments\":[";
  for (std::size_t i = 0; i < monitors_.size(); ++i) {
    const DeploymentStatus st = monitors_[i]->Status();
    if (i > 0) out.push_back(',');
    out += "{\"name\":\"";
    AppendJsonEscaped(out, st.name);
    out += "\",\"state\":\"";
    out += st.state;
    out += "\"";
    const auto field = [&out](const char* key, std::uint64_t v) {
      out += ",\"";
      out += key;
      out += "\":";
      out += std::to_string(v);
    };
    field("jframes", st.jframes);
    field("recovered", st.recovered);
    field("output_bytes", st.output_bytes);
    field("output_segments", st.output_segments);
    field("retained_jframes", st.retained_jframes);
    out += ",\"lag_us\":" + std::to_string(st.lag_us);
    field("checkpoint_age_ms", st.checkpoint_age_ms);
    field("interference_pairs", st.interference_pairs);
    field("interfered_ppm", st.interfered_ppm);
    field("tcp_flows", st.tcp_flows);
    field("tcp_loss_ppm", st.tcp_loss_ppm);
    out += "}";
  }
  out += "]}";
  return out;
}

void MonitorService::WriteSnapshot() const {
  if (config_.snapshot_path.empty()) return;
  obs::WriteFileAtomic(config_.snapshot_path, SnapshotJson());
}

void MonitorService::WriteMetrics() const {
  if (config_.metrics_path.empty()) return;
  obs::WriteFileAtomic(
      config_.metrics_path,
      obs::ToPrometheusText(obs::MetricRegistry::Global().Collect()));
}

}  // namespace jig
