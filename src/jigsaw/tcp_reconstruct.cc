#include "jigsaw/tcp_reconstruct.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace jig {
namespace {

// 32-bit sequence-space comparisons.
bool SeqLt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
bool SeqLeq(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}

struct FlowKeyHash {
  std::size_t operator()(const TcpFlowKey& k) const noexcept {
    std::uint64_t v = (static_cast<std::uint64_t>(k.client_ip) << 32) ^
                      k.server_ip;
    v ^= (static_cast<std::uint64_t>(k.client_port) << 48) ^
         (static_cast<std::uint64_t>(k.server_port) << 32);
    return std::hash<std::uint64_t>{}(v);
  }
};

struct Observation {
  UniversalMicros time = 0;
  // The link layer's verdict on the exchange that carried this segment,
  // captured at observation time — exchanges are final when emitted, so the
  // tracker never needs to look one up again.
  ExchangeOutcome outcome = ExchangeOutcome::kAmbiguous;
  bool downstream = false;
  TcpSegment seg;
};

// Per-direction reassembly state.
struct DirState {
  // Merged [start, end) spans of payload observed on the air.
  std::map<std::uint32_t, std::uint32_t> seen;
  // First observation of each distinct data segment start.
  std::unordered_map<std::uint32_t, Observation> first_tx;
  // Ambiguous data-bearing exchanges awaiting a covering ACK:
  // end-seq -> exchange ordinal.
  std::multimap<std::uint32_t, std::size_t> awaiting_cover;
  std::uint32_t highest_ack_from_peer = 0;
  bool any_ack_from_peer = false;
};

struct FlowState {
  TcpFlowRecord record;
  DirState down;  // server -> client payload
  DirState up;    // client -> server payload
  UniversalMicros syn_time = -1;
  UniversalMicros synack_time = -1;
  bool saw_syn = false;
  bool saw_synack = false;
};

// Inserts [s, e) into the span map, merging; returns bytes newly covered.
// Flows never span 4 GB here, so plain unsigned ordering holds within one
// flow's lifetime; wraparound flows would need sequence epoching.
std::uint64_t InsertSpan(std::map<std::uint32_t, std::uint32_t>& spans,
                         std::uint32_t s, std::uint32_t e) {
  if (s >= e) return 0;
  // Count bytes of [s, e) already covered by overlapping spans.
  std::uint64_t covered = 0;
  auto it = spans.lower_bound(s);
  if (it != spans.begin() && std::prev(it)->second > s) --it;
  auto scan = it;
  while (scan != spans.end() && scan->first < e) {
    const std::uint32_t lo = std::max(scan->first, s);
    const std::uint32_t hi = std::min(scan->second, e);
    if (hi > lo) covered += hi - lo;
    ++scan;
  }
  const std::uint64_t added = (e - s) - covered;
  // Merge: extend to swallow all overlapping/adjacent spans.
  std::uint32_t new_s = s, new_e = e;
  while (it != spans.end() && it->first <= e) {
    new_s = std::min(new_s, it->first);
    new_e = std::max(new_e, it->second);
    it = spans.erase(it);
  }
  spans[new_s] = new_e;
  return added;
}

}  // namespace

struct TransportTracker::Impl {
  TransportReconstruction out;
  std::unordered_map<TcpFlowKey, FlowState, FlowKeyHash> flows;
  std::vector<const TcpFlowKey*> flow_order;
  std::size_t exchanges_seen = 0;
};

std::size_t TransportTracker::flows_tracked() const {
  return impl_->flows.size();
}

TransportTracker::TransportTracker() : impl_(std::make_unique<Impl>()) {}
TransportTracker::~TransportTracker() = default;
TransportTracker::TransportTracker(TransportTracker&&) noexcept = default;
TransportTracker& TransportTracker::operator=(TransportTracker&&) noexcept =
    default;

void TransportTracker::OnExchange(const FrameExchange& ex, const Frame* data) {
  Impl& im = *impl_;
  const std::size_t ei = im.exchanges_seen++;
  // Seed the verdict with the link layer's view.
  im.out.exchange_delivered.push_back(std::nullopt);
  if (!ex.broadcast) {
    if (ex.outcome == ExchangeOutcome::kDelivered) {
      im.out.exchange_delivered[ei] = true;
    } else if (ex.outcome == ExchangeOutcome::kNotDelivered) {
      im.out.exchange_delivered[ei] = false;
    }
  }
  if (data == nullptr || ex.broadcast) return;
  if (data->type != FrameType::kData) return;
  const auto info = ParseFrameBody(data->body);
  if (!info || !info->IsTcp()) return;
  ++im.out.stats.tcp_segments;

  const bool downstream = data->from_ds;
  TcpFlowKey key;
  if (downstream) {
    key.client_ip = info->dst_ip;
    key.server_ip = info->src_ip;
    key.client_port = info->tcp->dst_port;
    key.server_port = info->tcp->src_port;
  } else {
    key.client_ip = info->src_ip;
    key.server_ip = info->dst_ip;
    key.client_port = info->tcp->src_port;
    key.server_port = info->tcp->dst_port;
  }

  auto [it, inserted] = im.flows.try_emplace(key);
  FlowState& fs = it->second;
  if (inserted) {
    fs.record.key = key;
    fs.record.start = ex.start;
    im.flow_order.push_back(&it->first);
  }
  fs.record.end = std::max(fs.record.end, ex.end);

  const TcpSegment& seg = *info->tcp;
  Observation obs{ex.start, ex.outcome, downstream, seg};

  // --- Handshake tracking -------------------------------------------
  if (seg.Syn() && !seg.HasAck() && !downstream) {
    fs.saw_syn = true;
    fs.syn_time = ex.start;
  } else if (seg.Syn() && seg.HasAck() && downstream) {
    if (fs.saw_syn && !fs.saw_synack) {
      fs.saw_synack = true;
      fs.synack_time = ex.start;
      fs.record.wired_rtt_ms =
          static_cast<double>(ex.start - fs.syn_time) / 1000.0;
    }
  } else if (!downstream && seg.HasAck() && fs.saw_synack &&
             !fs.record.handshake_complete) {
    fs.record.handshake_complete = true;
    fs.record.wireless_rtt_ms =
        static_cast<double>(ex.start - fs.synack_time) / 1000.0;
  }

  DirState& dir = downstream ? fs.down : fs.up;
  DirState& peer = downstream ? fs.up : fs.down;

  // --- Data segment accounting ---------------------------------------
  if (seg.payload_len > 0) {
    if (downstream) {
      ++fs.record.segments_down;
    } else {
      ++fs.record.segments_up;
    }
    const std::uint32_t end_seq = seg.seq + seg.payload_len;

    auto prior = dir.first_tx.find(seg.seq);
    if (prior == dir.first_tx.end()) {
      dir.first_tx.emplace(seg.seq, obs);
      const std::uint64_t fresh = InsertSpan(dir.seen, seg.seq, end_seq);
      if (downstream) {
        fs.record.bytes_down += fresh;
      } else {
        fs.record.bytes_up += fresh;
      }
      // If the link layer could not tell whether this frame was
      // delivered, register for the covering-ACK oracle.
      if (ex.outcome == ExchangeOutcome::kAmbiguous) {
        dir.awaiting_cover.emplace(end_seq, ei);
      }
    } else {
      // TCP-level retransmission: a loss event for the original.
      TcpLossEvent loss;
      loss.time = ex.start;
      loss.downstream = downstream;
      loss.seq = seg.seq;
      const Observation& orig = prior->second;
      const bool covered_before_rtx =
          dir.any_ack_from_peer &&
          SeqLt(end_seq, dir.highest_ack_from_peer + 1);
      if (orig.outcome == ExchangeOutcome::kNotDelivered) {
        loss.cause = LossCause::kWireless;
      } else if (covered_before_rtx) {
        // The receiver's TCP ACK covering this segment crossed the air:
        // the data made it end-to-end over the wireless hop, so the loss
        // (or spurious timeout) happened in the wired path.
        loss.cause = LossCause::kWired;
      } else if (orig.outcome == ExchangeOutcome::kDelivered) {
        // The frame crossed the air but no covering TCP ACK appeared:
        // the ACK itself was lost, and its first hop is the air when the
        // receiver is the wireless client (downstream data).
        loss.cause = downstream ? LossCause::kWireless : LossCause::kWired;
      } else {
        // Ambiguous link outcome and no covering ACK: the weight of
        // evidence says the air ate it.
        loss.cause = LossCause::kWireless;
      }
      fs.record.losses.push_back(loss);
      // Track the retransmission for subsequent oracle decisions.
      prior->second = obs;
      if (ex.outcome == ExchangeOutcome::kAmbiguous) {
        dir.awaiting_cover.emplace(end_seq, ei);
      }
    }
  }

  // --- ACK processing: oracle + hole inference -----------------------
  if (seg.HasAck()) {
    // This segment acknowledges payload flowing in the opposite
    // direction (stored in `peer`).
    if (!peer.any_ack_from_peer ||
        SeqLt(peer.highest_ack_from_peer, seg.ack)) {
      peer.highest_ack_from_peer = seg.ack;
      peer.any_ack_from_peer = true;

      // Covering-ACK oracle: every ambiguous exchange whose payload ends
      // at or before the ACK point was in fact delivered.
      auto wit = peer.awaiting_cover.begin();
      while (wit != peer.awaiting_cover.end() &&
             SeqLeq(wit->first, seg.ack)) {
        im.out.exchange_delivered[wit->second] = true;
        ++fs.record.covering_ack_resolutions;
        wit = peer.awaiting_cover.erase(wit);
      }

      // Hole inference: acknowledged bytes never seen on the air imply
      // complete frame exchanges that every monitor missed.
      if (!peer.seen.empty()) {
        const std::uint32_t base = peer.seen.begin()->first;
        std::uint32_t cursor = base;
        std::uint32_t holes = 0;
        for (const auto& [s, e] : peer.seen) {
          if (SeqLt(cursor, s) && SeqLeq(s, seg.ack)) {
            holes += s - cursor;
          }
          cursor = std::max(cursor, e);
        }
        if (holes > 0) {
          const std::uint32_t segs = (holes + 1459) / 1460;
          fs.record.inferred_missing_segments += segs;
          // Mark the gaps as accounted so they are not re-inferred.
          InsertSpan(peer.seen, base, std::min(seg.ack, cursor));
        }
      }
    }
  }
}

TransportReconstruction TransportTracker::Snapshot() const {
  const Impl& im = *impl_;
  // Copy the streaming-accumulated state (per-exchange verdicts, segment
  // counters), then fold in the per-flow summaries without disturbing the
  // flows — the tracker keeps updating them after a snapshot.
  TransportReconstruction out = im.out;
  out.flows.reserve(im.flows.size());
  for (const TcpFlowKey* key : im.flow_order) {
    const FlowState& fs = im.flows.at(*key);
    ++out.stats.flows_total;
    if (fs.record.handshake_complete) ++out.stats.flows_with_handshake;
    out.stats.loss_events += fs.record.losses.size();
    out.stats.wireless_losses += fs.record.LossesBy(LossCause::kWireless);
    out.stats.wired_losses += fs.record.LossesBy(LossCause::kWired);
    out.stats.covering_ack_resolutions += fs.record.covering_ack_resolutions;
    out.stats.inferred_missing_segments += fs.record.inferred_missing_segments;
    out.flows.push_back(fs.record);
  }
  return out;
}

TransportReconstruction TransportTracker::Finish() {
  // Terminal form of Snapshot(): the tracker is done, so the accumulated
  // state and every flow record are moved out rather than deep-copied —
  // no end-of-trace memory spike on the batch path.
  Impl& im = *impl_;
  im.out.flows.reserve(im.flows.size());
  for (const TcpFlowKey* key : im.flow_order) {
    FlowState& fs = im.flows.at(*key);
    ++im.out.stats.flows_total;
    if (fs.record.handshake_complete) ++im.out.stats.flows_with_handshake;
    im.out.stats.loss_events += fs.record.losses.size();
    im.out.stats.wireless_losses += fs.record.LossesBy(LossCause::kWireless);
    im.out.stats.wired_losses += fs.record.LossesBy(LossCause::kWired);
    im.out.stats.covering_ack_resolutions +=
        fs.record.covering_ack_resolutions;
    im.out.stats.inferred_missing_segments +=
        fs.record.inferred_missing_segments;
    im.out.flows.push_back(std::move(fs.record));
  }
  return std::move(im.out);
}

TransportReconstruction ReconstructTransport(
    const std::vector<JFrame>& jframes, const LinkReconstruction& link) {
  TransportTracker tracker;
  for (const FrameExchange& ex : link.exchanges) {
    const Frame* data =
        ex.data_jframe >= 0
            ? &jframes[static_cast<std::size_t>(ex.data_jframe)].frame
            : nullptr;
    tracker.OnExchange(ex, data);
  }
  return tracker.Finish();
}

}  // namespace jig
