// Always-on monitoring service: many deployments, one poll loop, durable
// output with checkpointed crash recovery (docs/ARCHITECTURE.md, "The
// monitoring service"; docs/FORMATS.md, ".jigc checkpoints").
//
// The paper's deployment goal was continuous unified monitoring of a
// production network, not one-shot batch merges.  This layer promotes the
// live-follow demo loop into that shape:
//
//   * DeploymentMonitor — one deployment (a directory of growing .jigt
//     traces): non-blocking trace discovery, a resumable MergeSession, a
//     durable output log of the merged jframe stream (spill-segment
//     format, out-<seq>.jigs), the stock analysis chain, rolling
//     retention over the log, and a .jigc checkpoint after every round
//     that changed durable state.
//   * MonitorService — owns many monitors and multiplexes them through a
//     single PollOnce() round-robin (no monitor ever blocks the loop:
//     discovery uses TailFileTrace::TryOpen, the merge uses
//     MergeSession::Poll), and exposes the per-deployment snapshot and
//     the process metric registry as atomically-replaced files.
//
// Crash recovery extends the determinism contract into the restart
// dimension: a monitor killed at ANY point and restarted over the same
// state directory appends exactly the jframes the uninterrupted run would
// have — the cumulative output log is byte-identical (pinned in
// tests/service_test.cc).  The mechanism leans on the pipeline's late-
// bootstrap idiom (a MergeSession re-reads every trace from offset zero
// and buffers nothing): recovery derives the durable jframe count D from
// the log itself — the checkpoint's segment table gives the newest
// segment's base index, a tail-mode read of its (possibly torn) tail
// gives the count of complete jframes — repairs the torn tail, replays
// the merge from zero, and suppresses the first D sink deliveries from
// the log while still feeding them to the analysis chain (which
// deterministically regenerates its windowed state).  The checkpoint is
// therefore a frontier record, not a WAL: no ordering of emit vs
// checkpoint can lose or duplicate output, because the log is the single
// source of truth for D.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "jigsaw/analysis/bus.h"
#include "jigsaw/pipeline.h"
#include "jigsaw/spill.h"
#include "trace/trace_set.h"

namespace jig {

// ---------------------------------------------------------------- .jigc

inline constexpr char kCheckpointMagic[4] = {'J', 'I', 'G', 'C'};
inline constexpr std::uint32_t kCheckpointVersion = 1;

// Per-radio consumption frontier at checkpoint time: how many records of
// the radio's trace the merge had consumed, and whether the trace had
// finalized.  Diagnostic (jigtool serve status / post-mortems) — recovery
// replays from offset zero, so the frontier is reported, not seeked to —
// except for the count of radios, which discovery reuses as the number of
// traces to wait for after a restart.
struct RadioFrontier {
  std::uint32_t radio = 0;
  std::uint64_t records_seen = 0;
  bool finalized = false;
};

// One output-log segment's place in the emitted jframe stream.  The base
// index is what makes a torn tail repairable: durable = base + (complete
// jframes readable from the newest segment).
struct OutputSegmentInfo {
  std::uint64_t sequence = 0;
  std::uint64_t base_index = 0;     // stream index of its first jframe
  std::int64_t max_timestamp = 0;   // newest jframe capture time (us)
  std::uint64_t bytes = 0;          // on-disk size at checkpoint time
  bool sealed = false;              // finalize marker written
};

struct Checkpoint {
  std::string deployment;
  std::uint64_t emitted = 0;  // jframes appended to the log (advisory)
  // The open segment's identity, recorded even before its file exists
  // (segments are created lazily on first append).
  std::uint64_t active_sequence = 0;
  std::uint64_t active_base = 0;
  std::vector<RadioFrontier> frontiers;     // ordered by radio id
  std::vector<OutputSegmentInfo> segments;  // ordered by sequence
};

// Atomic save (temp file + rename — a reader or a crash never sees a torn
// checkpoint) and strict load.  Load throws TraceTruncatedError on a
// short file and TraceCorruptError on bad magic/version/CRC.
void SaveCheckpoint(const std::filesystem::path& path, const Checkpoint& cp);
Checkpoint LoadCheckpoint(const std::filesystem::path& path);

// ------------------------------------------------------------ fault seams

// Deterministic kill points on the durable-state commit path, for
// tests/fault_injection.h: each hook may throw to simulate a crash at
// that exact point.  Default-constructed hooks are no-ops; production
// code never sets them.
struct ServiceFaultHooks {
  // After jframe `index` was handed to the output writer (possibly still
  // in its pending block) — "crash during output write".
  std::function<void(std::uint64_t index)> after_output_append;
  // Around the checkpoint replace — "crash between emit and checkpoint"
  // and "crash between checkpoint and the next emit".
  std::function<void()> before_checkpoint;
  std::function<void()> after_checkpoint;
};

// --------------------------------------------------------- configuration

struct DeploymentConfig {
  // Unique within the service; labels this deployment's metrics and names
  // its checkpoint.  Keep it to [A-Za-z0-9_.-].
  std::string name;
  std::filesystem::path trace_dir;  // directory of (growing) .jigt traces
  // Private state root: <state_dir>/checkpoint.jigc, <state_dir>/out/
  // (output log), and — when merge.spill_dir is left empty but spilling
  // is wanted — callers typically point merge.spill_dir inside it too.
  std::filesystem::path state_dir;
  MergeConfig merge;
  // Traces to wait for before bootstrapping; 0 = whatever the first scan
  // that finds at least one readable header yields.  Deployments whose
  // radios attach late MUST set this (the merge's trace set is fixed once
  // bootstrapped).  After a restart the checkpoint's radio count raises
  // this floor automatically.
  std::size_t expected_traces = 0;
  // Rolling retention over SEALED output segments (the open segment is
  // never deleted): capture-time window behind the newest emitted jframe
  // (0 = unbounded) and a total bytes-on-disk cap (0 = uncapped; the open
  // segment may transiently exceed it by up to one segment).
  std::int64_t retention_window_us = 0;
  std::uint64_t max_output_bytes = 0;
  // Output segments rotate (seal + start the next) at about this size.
  std::uint64_t output_segment_bytes = 4ull << 20;
  // Jframes per compressed block inside an output segment.  Smaller
  // blocks tighten the durability granularity (a crash loses at most one
  // uncut block); the tests shrink it to place torn tails precisely.
  std::size_t output_records_per_block = 256;
  // Run the stock analysis chain (link / interference / TCP loss) on the
  // emitted stream and include its snapshot in Status().  Off for fleets
  // where only the durable log matters.
  bool analysis = false;
  ServiceFaultHooks hooks;  // test-only kill points
};

// Integer-only status row (floats stay out of the service's own
// expositions; rate-like values are parts-per-million).
struct DeploymentStatus {
  std::string name;
  std::string state;  // "discovering" | "running" | "done" | "failed"
  std::uint64_t jframes = 0;    // durable in the output log
  std::uint64_t recovered = 0;  // replayed + suppressed after restart
  std::uint64_t output_bytes = 0;
  std::uint64_t output_segments = 0;
  std::uint64_t retained_jframes = 0;  // buffered inside the merge
  std::int64_t lag_us = 0;
  std::uint64_t checkpoint_age_ms = 0;
  // Analysis snapshot (zero when analysis is off).
  std::uint64_t interference_pairs = 0;
  std::uint64_t interfered_ppm = 0;
  std::uint64_t tcp_flows = 0;
  std::uint64_t tcp_loss_ppm = 0;
};

// ------------------------------------------------------------- monitor

// One deployment.  PollOnce() never blocks (neither on trace writers nor
// on the network), so a MonitorService can multiplex hundreds of monitors
// on one thread.  A hook or IO error that throws out of PollOnce marks
// the monitor failed; the destructor then abandons the open output
// segment (no finalize marker, pending block dropped) and skips the final
// checkpoint — on-disk state is left exactly as a SIGKILL at that moment
// would leave it, which is what the crash-recovery tests restart from.
class DeploymentMonitor {
 public:
  enum class State { kDiscovering, kRunning, kDone, kFailed };

  // Test seam: wraps every trace stream as it enters the merge (fault
  // injection).  The monitor's own frontier counter sits outside the
  // wrapper, so injected faults are indistinguishable from real ones.
  using StreamWrapper = std::function<std::unique_ptr<RecordStream>(
      std::unique_ptr<RecordStream> inner, std::uint32_t radio)>;

  // Recovers from <state_dir>/checkpoint.jigc if one exists (repairing a
  // torn output tail); otherwise initializes fresh state.  Throws
  // TraceCorruptError if the recorded log state and the on-disk segments
  // cannot be reconciled.
  explicit DeploymentMonitor(DeploymentConfig config,
                             StreamWrapper wrapper = nullptr);
  ~DeploymentMonitor();

  DeploymentMonitor(const DeploymentMonitor&) = delete;
  DeploymentMonitor& operator=(const DeploymentMonitor&) = delete;

  // One scheduling quantum: discover traces / pump the merge, persist
  // what was emitted, checkpoint, enforce retention.  Returns the state
  // after the quantum.
  State PollOnce();

  // Clean-shutdown door (SIGTERM): publish the pending output block and
  // write a final checkpoint, WITHOUT finalizing the open segment — a
  // restart resumes appending to the stream where it stopped.
  void Shutdown();

  State state() const { return state_; }
  const std::string& name() const { return config_.name; }
  std::uint64_t jframes_persisted() const { return log_index_; }
  std::uint64_t recovered_jframes() const { return recovered_; }
  std::uint64_t output_bytes_on_disk() const;
  std::uint64_t output_segments_on_disk() const;
  bool recovered_from_checkpoint() const { return recovered_start_; }
  DeploymentStatus Status() const;

 private:
  struct OutMetrics;

  void Discover();
  void StartSession();
  void OnJFrame(JFrame&& jf);
  void AppendToLog(const JFrame& jf);
  void MaybeRotate();
  void SealActiveSegment();
  void EnforceRetention();
  void WriteCheckpoint();
  Checkpoint BuildCheckpoint() const;
  void RecoverLog(const std::optional<Checkpoint>& cp);
  void UpdateGauges();
  std::filesystem::path SegmentPath(std::uint64_t sequence) const;
  std::filesystem::path CheckpointPath() const;

  DeploymentConfig config_;
  StreamWrapper wrapper_;
  State state_ = State::kDiscovering;
  bool recovered_start_ = false;
  std::size_t expected_traces_ = 0;

  // Discovery: traces opened so far, keyed by path (ordered, so the
  // eventual trace set is deterministic).
  std::map<std::string, std::unique_ptr<RecordStream>> pending_;

  TraceSet traces_;  // must outlive session_
  std::unique_ptr<MergeSession> session_;
  // (radio, counter) per trace, in trace-set order; the counters are owned
  // by traces_ / the session.
  std::vector<std::pair<std::uint32_t, const class FrontierTrace*>>
      frontiers_;

  std::unique_ptr<AnalysisBus> bus_;
  class LinkConsumer* link_ = nullptr;
  class InterferenceConsumer* interference_ = nullptr;
  class TcpLossConsumer* tcp_loss_ = nullptr;

  // Output log.
  std::vector<OutputSegmentInfo> sealed_;  // ordered by sequence
  std::unique_ptr<SpillSegmentWriter> writer_;  // over the active segment
  std::uint64_t active_seq_ = 0;
  std::uint64_t active_base_ = 0;
  std::int64_t active_max_ts_ = 0;
  std::uint64_t log_index_ = 0;   // next jframe's stream index
  std::int64_t newest_ts_ = 0;    // newest emitted capture time
  std::uint64_t suppress_remaining_ = 0;  // recovery replay suppression
  std::uint64_t recovered_ = 0;
  std::uint64_t appended_this_round_ = 0;
  std::chrono::steady_clock::time_point last_checkpoint_;
  bool checkpointed_once_ = false;

  std::unique_ptr<OutMetrics> metrics_;
};

// ------------------------------------------------------------- service

struct ServiceConfig {
  // Atomically-replaced exposition files; empty disables either door.
  std::filesystem::path snapshot_path;  // JSON, one row per deployment
  std::filesystem::path metrics_path;   // Prometheus text, whole registry
  std::chrono::milliseconds snapshot_interval{1000};
  // Sleep between rounds in Run() when no monitor made progress.
  std::chrono::milliseconds idle_sleep{10};
};

class MonitorService {
 public:
  explicit MonitorService(ServiceConfig config = {});
  ~MonitorService();

  MonitorService(const MonitorService&) = delete;
  MonitorService& operator=(const MonitorService&) = delete;

  DeploymentMonitor& AddDeployment(
      DeploymentConfig config,
      DeploymentMonitor::StreamWrapper wrapper = nullptr);

  // One round over every deployment.  A deployment that throws is marked
  // failed and counted (jig_service_deployment_failures_total) — one
  // crashing deployment must not take its siblings down.  Returns the
  // number of deployments still active (discovering or running).
  std::size_t PollOnce();

  // Poll until keep_running() returns false (e.g. a SIGTERM flag) —
  // deployments that finish stay resident; the service is always-on.
  // Writes the snapshot/metrics files every snapshot_interval.  Calls
  // Shutdown() on exit.
  void Run(const std::function<bool()>& keep_running);

  // Final-flush door: Shutdown() every monitor (pending block + final
  // checkpoint) and write one last snapshot/metrics exposition.
  void Shutdown();

  void WriteSnapshot() const;
  void WriteMetrics() const;
  // The JSON exposition WriteSnapshot writes, for in-process consumers.
  std::string SnapshotJson() const;

  std::size_t deployments() const { return monitors_.size(); }
  DeploymentMonitor& monitor(std::size_t i) { return *monitors_.at(i); }

 private:
  ServiceConfig config_;
  std::vector<std::unique_ptr<DeploymentMonitor>> monitors_;
  std::chrono::steady_clock::time_point last_exposition_;
};

// ---------------------------------------------------------- frontier tap

// Counting pass-through stream: records the consumption high-water mark
// (it survives Rewind, so the late-bootstrap re-read does not reset it) —
// the per-radio frontier the checkpoint records.
class FrontierTrace final : public RecordStream {
 public:
  explicit FrontierTrace(std::unique_ptr<RecordStream> inner)
      : inner_(std::move(inner)) {}

  const TraceHeader& header() const override { return inner_->header(); }
  std::optional<CaptureRecord> Next() override {
    auto rec = inner_->Next();
    if (rec) Count();
    return rec;
  }
  const CaptureRecord* NextRef() override {
    const CaptureRecord* rec = inner_->NextRef();
    if (rec != nullptr) Count();
    return rec;
  }
  void Rewind() override {
    pos_ = 0;
    inner_->Rewind();
  }
  bool Finalized() const override { return inner_->Finalized(); }

  std::uint64_t frontier() const { return high_; }

 private:
  void Count() {
    if (++pos_ > high_) high_ = pos_;
  }

  std::unique_ptr<RecordStream> inner_;
  std::uint64_t pos_ = 0;
  std::uint64_t high_ = 0;
};

}  // namespace jig
