#include "jigsaw/spill.h"

#include <bit>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "trace/framed_io.h"
#include "util/compression.h"

namespace jig {
namespace {

namespace fs = std::filesystem;

// Shared framed-IO primitives (src/trace/framed_io.h): a short read at
// EOF is TraceTruncatedError.  In strict mode that is a crash mid-spill;
// tail callers translate it to "no data yet" instead
// (SpillSegmentReader::LoadNextBlock).
constexpr const char* kWhat = "spill segment";

void WriteAll(std::FILE* f, const void* data, std::size_t n) {
  framed_io::WriteAll(f, data, n, kWhat);
}
void WriteU32(std::FILE* f, std::uint32_t v) {
  framed_io::WriteU32(f, v, kWhat);
}
void ReadAll(std::FILE* f, void* data, std::size_t n) {
  framed_io::ReadAll(f, data, n, kWhat);
}
std::uint32_t ReadU32(std::FILE* f) { return framed_io::ReadU32(f, kWhat); }

void SerializeSegmentHeader(const SpillSegmentHeader& h, Bytes& out) {
  ByteWriter w(out);
  w.U8(h.channel);
  w.U64(h.sequence);
}

SpillSegmentHeader DeserializeSegmentHeader(ByteReader& r) {
  SpillSegmentHeader h;
  h.channel = r.U8();
  h.sequence = r.U64();
  return h;
}

constexpr std::uint8_t kFrameRetry = 0x01;
constexpr std::uint8_t kFrameFromDs = 0x02;
constexpr std::uint8_t kFrameToDs = 0x04;

}  // namespace

// ---------------------------------------------------------------------------
// JFrame (de)serialization.  The layout is fixed in docs/FORMATS.md; any
// change here needs a kSpillVersion bump and a spec update.

void SerializeJFrame(const JFrame& jf, Bytes& out) {
  ByteWriter w(out);
  w.I64(jf.timestamp);
  w.I64(jf.dispersion);
  w.U8(static_cast<std::uint8_t>(jf.channel));
  w.U8(static_cast<std::uint8_t>(jf.rate));
  w.U32(jf.wire_len);
  w.U64(jf.digest);
  // Representative frame, field by field (not wire bytes: Frame carries
  // fields the wire form does not, e.g. the PLCP-delivered rate).
  const Frame& f = jf.frame;
  w.U8(static_cast<std::uint8_t>(f.type));
  w.U8(static_cast<std::uint8_t>((f.retry ? kFrameRetry : 0) |
                                 (f.from_ds ? kFrameFromDs : 0) |
                                 (f.to_ds ? kFrameToDs : 0)));
  w.U16(f.duration_us);
  w.Raw(f.addr1.octets());
  w.Raw(f.addr2.octets());
  w.Raw(f.addr3.octets());
  w.U16(f.sequence);
  w.U8(static_cast<std::uint8_t>(f.rate));
  w.Varint(f.body.size());
  w.Raw(f.body);
  w.Varint(jf.instances.size());
  for (const FrameInstance& inst : jf.instances) {
    w.U16(inst.radio);
    w.I64(inst.local_timestamp);
    w.I64(inst.universal_timestamp);
    w.U32(std::bit_cast<std::uint32_t>(inst.rssi_dbm));  // bit-exact float
    w.U8(static_cast<std::uint8_t>(inst.outcome));
  }
}

JFrame DeserializeJFrame(ByteReader& r) {
  JFrame jf;
  jf.timestamp = r.I64();
  jf.dispersion = r.I64();
  jf.channel = static_cast<Channel>(r.U8());
  jf.rate = static_cast<PhyRate>(r.U8());
  jf.wire_len = r.U32();
  jf.digest = r.U64();
  Frame& f = jf.frame;
  f.type = static_cast<FrameType>(r.U8());
  const std::uint8_t flags = r.U8();
  f.retry = (flags & kFrameRetry) != 0;
  f.from_ds = (flags & kFrameFromDs) != 0;
  f.to_ds = (flags & kFrameToDs) != 0;
  f.duration_us = r.U16();
  const auto read_addr = [&r] {
    std::array<std::uint8_t, 6> octets{};
    const auto raw = r.Raw(6);
    std::memcpy(octets.data(), raw.data(), 6);
    return MacAddress(octets);
  };
  f.addr1 = read_addr();
  f.addr2 = read_addr();
  f.addr3 = read_addr();
  f.sequence = r.U16();
  f.rate = static_cast<PhyRate>(r.U8());
  const auto body_len = static_cast<std::size_t>(r.Varint());
  const auto body = r.Raw(body_len);
  f.body.assign(body.begin(), body.end());
  const auto n_instances = static_cast<std::size_t>(r.Varint());
  // Each instance occupies 23 wire bytes (u16+i64+i64+u32+u8); a declared
  // count the remaining input cannot hold is corrupt, and reserving for it
  // unchecked would let a hostile varint demand gigabytes up front.
  constexpr std::size_t kInstanceWireBytes = 2 + 8 + 8 + 4 + 1;
  if (n_instances > r.remaining() / kInstanceWireBytes) {
    throw std::runtime_error("JFrame instance count exceeds available input");
  }
  jf.instances.reserve(n_instances);
  for (std::size_t i = 0; i < n_instances; ++i) {
    FrameInstance inst;
    inst.radio = r.U16();
    inst.local_timestamp = r.I64();
    inst.universal_timestamp = r.I64();
    inst.rssi_dbm = std::bit_cast<float>(r.U32());
    inst.outcome = static_cast<RxOutcome>(r.U8());
    jf.instances.push_back(inst);
  }
  return jf;
}

// ---------------------------------------------------------------------------
// SpillSegmentWriter.

SpillSegmentWriter::SpillSegmentWriter(const fs::path& path,
                                       const SpillSegmentHeader& header,
                                       std::size_t records_per_block)
    : records_per_block_(records_per_block) {
  file_ = std::fopen(path.string().c_str(), "wb");
  if (!file_) {
    throw std::runtime_error("cannot open spill segment for writing: " +
                             path.string());
  }
  WriteAll(file_, kSpillMagic, 4);
  WriteU32(file_, kSpillVersion);
  Bytes hdr;
  SerializeSegmentHeader(header, hdr);
  WriteU32(file_, static_cast<std::uint32_t>(hdr.size()));
  WriteAll(file_, hdr.data(), hdr.size());
  std::fflush(file_);  // publish the header before the first block lands
  bytes_written_ = 12 + hdr.size();
}

SpillSegmentWriter::~SpillSegmentWriter() {
  try {
    if (!finished_) Finish();
  } catch (...) {
    // Destructor must not throw; an explicit Finish() reports errors.
  }
  if (file_) std::fclose(file_);
}

void SpillSegmentWriter::Append(const JFrame& jf) {
  if (finished_) throw std::logic_error("Append after Finish");
  SerializeJFrame(jf, pending_);
  ++pending_count_;
  ++records_written_;
  if (pending_count_ >= records_per_block_) FlushBlock();
}

void SpillSegmentWriter::FlushBlock() {
  if (pending_count_ == 0) return;
  // Fast level: spill blocks are written on the shard worker's round (the
  // merge hot path) and live only until replay, so compression latency
  // matters more than ratio here.
  const auto packed = LzCompress(pending_, LzLevel::kFast);
  WriteU32(file_, static_cast<std::uint32_t>(packed.size()));
  WriteAll(file_, packed.data(), packed.size());
  bytes_written_ += 4 + packed.size();
  pending_.clear();
  pending_count_ = 0;
}

void SpillSegmentWriter::Sync() {
  if (finished_) throw std::logic_error("Sync after Finish");
  FlushBlock();
  if (std::fflush(file_) != 0) {
    throw std::runtime_error("spill segment: flush");
  }
}

void SpillSegmentWriter::Finish() {
  if (finished_) return;
  FlushBlock();
  WriteU32(file_, 0);  // finalize marker, same convention as .jigt
  bytes_written_ += 4;
  if (std::fflush(file_) != 0) {
    throw std::runtime_error("spill segment: flush");
  }
  finished_ = true;
}

void SpillSegmentWriter::Abandon() {
  if (finished_) return;
  // Drop the uncut block — a killed process never got to publish it —
  // and leave the file marker-less, exactly as SIGKILL would.
  pending_.clear();
  pending_count_ = 0;
  finished_ = true;
  std::fflush(file_);
}

// ---------------------------------------------------------------------------
// SpillSegmentReader.

SpillSegmentReader::SpillSegmentReader(const fs::path& path, bool strict)
    : strict_(strict) {
  file_ = std::fopen(path.string().c_str(), "rb");
  if (!file_) {
    throw std::runtime_error("cannot open spill segment for reading: " +
                             path.string());
  }
  // Everything after the fopen sits inside one try so the FILE* is closed
  // on ANY parse failure — including the magic read, which previously sat
  // outside and leaked the descriptor on a truncated-magic segment.
  try {
    char magic[4];
    ReadAll(file_, magic, 4);
    if (std::memcmp(magic, kSpillMagic, 4) != 0) {
      throw TraceCorruptError("bad spill segment magic: " + path.string());
    }
    const std::uint32_t version = ReadU32(file_);
    if (version != kSpillVersion) {
      throw TraceCorruptError("unsupported spill segment version " +
                              std::to_string(version) + ": " + path.string());
    }
    const std::uint32_t hdr_len = ReadU32(file_);
    if (hdr_len > kMaxSpillBlockLen) {
      throw TraceCorruptError("garbage spill header length: " + path.string());
    }
    Bytes hdr(hdr_len);
    ReadAll(file_, hdr.data(), hdr_len);
    ByteReader hr(hdr);
    try {
      header_ = DeserializeSegmentHeader(hr);
    } catch (const std::exception& e) {
      // ByteReader underflow is a plain runtime_error; map it into the
      // taxonomy so callers only ever see TraceError for bad segment data.
      throw TraceCorruptError(std::string("malformed spill segment header: ") +
                              e.what());
    }
  } catch (...) {
    std::fclose(file_);
    file_ = nullptr;
    throw;
  }
}

SpillSegmentReader::~SpillSegmentReader() {
  if (file_) std::fclose(file_);
}

bool SpillSegmentReader::LoadNextBlock() {
  if (finalized_) return false;
  // Remember the frontier: a torn structure in tail mode rewinds here so a
  // later call re-polls once the writer has published more.
  const long frontier = std::ftell(file_);
  std::uint32_t packed_len = 0;
  Bytes packed;
  try {
    packed_len = ReadU32(file_);
    if (packed_len == 0) {
      finalized_ = true;  // the [u32 0] finalize marker
      return false;
    }
    if (packed_len > kMaxSpillBlockLen) {
      throw TraceCorruptError("garbage spill block length");
    }
    packed.resize(packed_len);
    ReadAll(file_, packed.data(), packed_len);
  } catch (const TraceTruncatedError&) {
    if (strict_) throw;
    // Tail mode: the writer has not published this far yet.
    std::clearerr(file_);
    if (std::fseek(file_, frontier, SEEK_SET) != 0) {
      throw TraceError("spill segment: seek to frontier");
    }
    return false;
  }
  try {
    const Bytes raw = LzDecompress(packed);
    ByteReader r(raw);
    block_.clear();
    block_pos_ = 0;
    while (!r.AtEnd()) block_.push_back(DeserializeJFrame(r));
  } catch (const TraceError&) {
    throw;
  } catch (const LzTruncatedError& e) {
    if (strict_) {
      // The block's framing is on disk but its payload stops short: a crash
      // mid-spill, same diagnosis as a torn trailing structure.
      throw TraceTruncatedError(std::string("spill block payload truncated: ") +
                                e.what());
    }
    // Tail mode: the length word said the block is complete, so a short
    // payload can never heal by waiting — corruption, not frontier.
    throw TraceCorruptError(std::string("spill block payload truncated: ") +
                            e.what());
  } catch (const std::exception& e) {
    throw TraceCorruptError(std::string("malformed spill block contents: ") +
                            e.what());
  }
  ++blocks_read_;
  return true;
}

std::optional<JFrame> SpillSegmentReader::Next() {
  while (block_pos_ >= block_.size()) {
    // In strict mode a segment that ends between blocks without the
    // finalize marker throws TraceTruncatedError from LoadNextBlock (the
    // length-word read hits EOF): a writer that died between blocks is
    // still a crash mid-spill, not a complete segment.
    if (!LoadNextBlock()) return std::nullopt;
  }
  ++records_read_;
  return std::move(block_[block_pos_++]);
}

// ---------------------------------------------------------------------------
// SpillQueue.

namespace {

struct SpillMetrics {
  obs::Counter& segments_written = obs::MetricRegistry::Global().GetCounter(
      "jig_spill_segments_written_total", "Spill segments opened on disk");
  obs::Counter& segments_replayed = obs::MetricRegistry::Global().GetCounter(
      "jig_spill_segments_replayed_total",
      "Spill segments fully replayed and reclaimed");
  obs::Counter& jframes_spilled = obs::MetricRegistry::Global().GetCounter(
      "jig_spill_jframes_spilled_total", "JFrames pushed to the spill tier");
  obs::Counter& jframes_replayed = obs::MetricRegistry::Global().GetCounter(
      "jig_spill_jframes_replayed_total",
      "JFrames replayed from the spill tier");
  obs::Gauge& bytes_on_disk = obs::MetricRegistry::Global().GetGauge(
      "jig_spill_bytes_on_disk", "Live spill bytes across all shards");
  obs::Counter& backpressure = obs::MetricRegistry::Global().GetCounter(
      "jig_spill_backpressure_total",
      "Pushes refused because the spill byte budget was exhausted");
};

SpillMetrics& Metrics() {
  static SpillMetrics* m = new SpillMetrics();
  return *m;
}

}  // namespace

SpillQueue::SpillQueue(fs::path dir, std::uint8_t channel,
                       SpillBudget* budget, std::uint64_t segment_bytes)
    : dir_(std::move(dir)),
      channel_(channel),
      budget_(budget),
      segment_bytes_(segment_bytes) {
  fs::create_directories(dir_);
}

SpillQueue::~SpillQueue() {
  reader_.reset();
  writer_.reset();
  // Best effort, and idempotent per segment: a reader destructing
  // mid-replay while the writer had rotated must not release any
  // segment's bytes twice (ReleaseSegment zeroes `charged`).
  for (Segment& seg : segments_) ReleaseSegment(seg);
  segments_.clear();
}

void SpillQueue::ReleaseSegment(Segment& seg) {
  std::error_code ec;  // best effort: also runs from the destructor
  fs::remove(seg.path, ec);
  if (seg.charged == 0) return;  // already released: exactly-once
  bytes_on_disk_ -= seg.charged;
  Metrics().bytes_on_disk.Add(-static_cast<std::int64_t>(seg.charged));
  if (budget_ != nullptr) budget_->Release(seg.charged);
  seg.charged = 0;
}

void SpillQueue::OpenSegmentForPush() {
  // Rotate once the open segment is big enough: a finished segment can be
  // deleted as soon as it is replayed, so rotation is what bounds how long
  // already-replayed bytes linger on disk.
  if (writer_ != nullptr &&
      writer_->bytes_written() >= segment_bytes_) {
    writer_->Finish();
    ChargeDelta();
    segments_.back().finished = true;
    writer_.reset();
  }
  if (writer_ == nullptr) {
    SpillSegmentHeader header;
    header.channel = channel_;
    header.sequence = next_sequence_++;
    Segment seg;
    seg.path = dir_ / ("ch" + std::to_string(channel_) + "-" +
                       std::to_string(header.sequence) + ".jigs");
    writer_ = std::make_unique<SpillSegmentWriter>(seg.path, header);
    segments_.push_back(std::move(seg));
    Metrics().segments_written.Add(1);
    ChargeDelta();
  }
}

// Brings the budget/footprint accounting up to the writer's published
// bytes.  Called after every publication point (Sync / Finish / open).
void SpillQueue::ChargeDelta() {
  if (writer_ == nullptr || segments_.empty()) return;
  Segment& seg = segments_.back();
  const std::uint64_t written = writer_->bytes_written();
  if (written > seg.charged) {
    const std::uint64_t delta = written - seg.charged;
    seg.charged = written;
    bytes_on_disk_ += delta;
    Metrics().bytes_on_disk.Add(static_cast<std::int64_t>(delta));
    if (budget_ != nullptr) budget_->Charge(delta);
  }
}

bool SpillQueue::Push(const JFrame& jf) {
  if (budget_ != nullptr && budget_->Full()) {
    Metrics().backpressure.Add(1);
    return false;
  }
  OpenSegmentForPush();
  writer_->Append(jf);
  // Charge after every append, not just at Sync: Append flushes a block
  // to disk whenever the pending batch fills, and the budget check above
  // must see those bytes — this is what bounds cap overshoot to one
  // compressed block per shard rather than a whole drain.
  ChargeDelta();
  ++spilled_;
  Metrics().jframes_spilled.Add(1);
  return true;
}

void SpillQueue::Sync() {
  if (writer_ == nullptr) return;
  writer_->Sync();
  ChargeDelta();
}

void SpillQueue::ReclaimDrained() {
  if (!Empty() || segments_.empty()) return;
  reader_.reset();
  writer_.reset();  // finalizes the open segment; it is deleted next
  for (Segment& seg : segments_) ReleaseSegment(seg);
  segments_.clear();
}

std::optional<JFrame> SpillQueue::Pop() {
  while (!segments_.empty()) {
    if (reader_ == nullptr) {
      // Tail mode: the front segment may still be the writer's open one;
      // only published blocks are visible, which is exactly the contract
      // (Push/Sync happen-before Pop via the round barrier).
      reader_ = std::make_unique<SpillSegmentReader>(segments_.front().path,
                                                     /*strict=*/false);
    }
    if (auto jf = reader_->Next()) {
      ++replayed_;
      Metrics().jframes_replayed.Add(1);
      return jf;
    }
    Segment& front = segments_.front();
    if (!front.finished || !reader_->finalized()) {
      // Frontier of the still-open segment: nothing further is published.
      return std::nullopt;
    }
    // Finished segment fully replayed: reclaim it.
    reader_.reset();
    Metrics().segments_replayed.Add(1);
    ReleaseSegment(front);
    segments_.pop_front();
  }
  return std::nullopt;
}

}  // namespace jig
