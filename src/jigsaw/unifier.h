// Frame unification and continual resynchronization (paper Section 4.2).
//
// A single streaming pass over all traces.  The head instance of every
// trace sits in one global queue ordered by universal time; Jigsaw pops the
// earliest instance, sweeps the queue within a search window for instances
// with identical content (comparing length, rate and FCS first to
// short-circuit), and unifies the group into a jframe timestamped at the
// median instance.  Groups whose dispersion exceeds a threshold drive
// per-trace clock corrections, so almost every unique data frame continually
// resynchronizes the deployment; skew and drift are compensated predictively
// between corrections.  Corrupted instances attach to a matching valid
// jframe by transmitter/length, and are never used for synchronization or
// higher-layer reconstruction.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "jigsaw/bootstrap.h"
#include "jigsaw/clock_state.h"
#include "jigsaw/jframe.h"
#include "jigsaw/reference.h"
#include "trace/trace_set.h"

namespace jig {

struct UnifierConfig {
  Micros search_window = Milliseconds(10);
  // Non-unique frames (ACKs to the same station, CTS-to-self with the same
  // duration...) can repeat identical bytes within the search window, so
  // their instances only unify within this much tighter spread — wider than
  // any plausible clock error between resyncs, narrower than back-to-back
  // control frames.
  Micros duplicate_window = 150;
  // Minimum group dispersion before paying for a resynchronization (the
  // paper uses 10 us; this does not bound achievable accuracy).
  Micros resync_dispersion_threshold = 10;
  double skew_ewma_alpha = 0.3;
  // Gaps shorter than this contribute corrections but no skew sample.
  Micros min_skew_elapsed = Milliseconds(20);
  // Disable proactive skew compensation (ablation knob).
  bool compensate_skew = true;
};

struct UnifyStats {
  std::uint64_t events_in = 0;
  std::uint64_t valid_in = 0;
  std::uint64_t fcs_error_in = 0;
  std::uint64_t phy_error_in = 0;
  std::uint64_t events_unified = 0;  // instances placed into jframes
  std::uint64_t jframes = 0;
  std::uint64_t error_instances_attached = 0;
  std::uint64_t error_events_dropped = 0;
  std::uint64_t resyncs = 0;

  double EventsPerJframe() const {
    return jframes == 0 ? 0.0
                        : static_cast<double>(events_unified) /
                              static_cast<double>(jframes);
  }

  // Shard accumulation: every counter is a plain sum, so stats from
  // independently-unified channel shards combine into exactly the stats a
  // single global pass would have produced.
  UnifyStats& operator+=(const UnifyStats& other) {
    events_in += other.events_in;
    valid_in += other.valid_in;
    fcs_error_in += other.fcs_error_in;
    phy_error_in += other.phy_error_in;
    events_unified += other.events_unified;
    jframes += other.jframes;
    error_instances_attached += other.error_instances_attached;
    error_events_dropped += other.error_events_dropped;
    resyncs += other.resyncs;
    return *this;
  }
};

// Result of an incremental unification slice.
enum class UnifyStep {
  kMore,       // made progress; more groups may remain — call Step again
  kStarved,    // a live trace has no complete record on disk yet: no group
               // can be formed safely until its writer appends or finalizes
  kExhausted,  // every trace is at final EOF and the queue is drained
};

class Unifier {
 public:
  // Sink receives jframes approximately ordered by timestamp; exact
  // ordering is restored by the pipeline's reorder buffer.
  using JFrameSink = std::function<void(JFrame&&)>;

  // `pool`, when non-null, supplies recycled jframes for emission (the
  // caller owns it and recycles emitted frames back; see JFramePool for the
  // synchronization contract).  Null means plain heap allocation.
  Unifier(TraceSet& traces, const BootstrapResult& bootstrap,
          UnifierConfig config, JFrameSink sink, JFramePool* pool = nullptr);

  // Runs the merge to completion (single pass over all traces).  Only for
  // finalized inputs: throws std::logic_error if a live trace starves —
  // incremental callers must use Step.
  void Run();
  // Incremental: processes at most `max_jframes` groups.
  //
  // Live-source contract: a group is only ever formed while every active
  // trace has a head instance queued — the per-radio low watermark.  When a
  // tail-follow trace reports "no data yet", Step returns kStarved without
  // forming further groups (a group formed without the starved radio's next
  // record could differ from the batch merge), which is what makes the live
  // stream byte-identical to the batch stream by construction.
  UnifyStep Step(std::size_t max_jframes);

  const UnifyStats& stats() const { return stats_; }
  const TraceClockState& clock_state(std::size_t i) const {
    return clocks_[i];
  }

 private:
  struct QueueEntry {
    double universal = 0.0;  // key at insertion
    std::size_t trace = 0;
    // Ordering: time, then trace for determinism.  Keys are unique (one
    // entry per trace), so this is a strict total order and any
    // repeated-min structure pops in exactly sorted order.
    bool operator<(const QueueEntry& other) const {
      if (universal != other.universal) return universal < other.universal;
      return trace < other.trace;
    }
  };
  struct Head {
    // Borrowed from the trace's RecordStream (NextRef): valid until that
    // trace is advanced again, which only happens when this head leaves the
    // queue for good.  Avoids copying every capture's byte buffer.
    const CaptureRecord* record = nullptr;
    double universal = 0.0;
    bool valid_frame = false;          // outcome == kOk
    bool unique_reference = false;
    Channel channel = Channel::kCh1;   // capturing radio's channel
    ContentKey key;
  };

  // Loads the next usable record of trace i into heads_[i] and queues it.
  // Returns false when the trace is a live source with no complete record
  // available yet (the trace stays active and is parked in starved_).
  bool Refill(std::size_t trace);
  // Re-attempts every starved trace; true when none remain starved.
  bool RefillStarved();
  void ProcessOneGroup();
  void QueuePush(QueueEntry entry);
  QueueEntry QueuePopMin();

  TraceSet& traces_;
  UnifierConfig config_;
  JFrameSink sink_;
  JFramePool* pool_;                    // optional, not owned
  std::vector<TraceClockState> clocks_;
  std::vector<bool> active_;            // synced and not exhausted
  std::vector<std::optional<Head>> heads_;
  // Binary min-heap on QueueEntry (std::push_heap/pop_heap with a reversed
  // comparator).  Replaced std::set, which spent ~24% of merge runtime on
  // node allocation and pointer chasing; pop order is identical because the
  // key order is strict and total.
  std::vector<QueueEntry> queue_;
  std::vector<std::size_t> starved_;    // active traces awaiting data
  UnifyStats stats_;
  // Scratch reused across groups so steady state allocates nothing.
  std::vector<std::size_t> candidates_;
  std::vector<std::size_t> group_;
  std::vector<std::size_t> leftovers_;
  std::vector<double> valid_times_;
  ParsedFrame parse_scratch_;
};

}  // namespace jig
