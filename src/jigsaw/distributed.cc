#include "jigsaw/distributed.h"

#include <chrono>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace jig {
namespace {

// Retry the root connection for up to timeout_ms: in a distributed
// bring-up the wings routinely start before the root's listener is bound.
net::Socket ConnectWithRetry(const std::string& host, std::uint16_t port,
                             int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    try {
      return net::ConnectTo(host, port);
    } catch (const std::runtime_error&) {
      if (std::chrono::steady_clock::now() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
}

// Relays the records a merge consumes from one radio to its uplink,
// exactly once each.  The merge's bootstrap pass rewinds every trace and
// re-reads from offset zero; the forwarded high-water mark makes those
// re-reads relay-silent, so the root receives each record once, in
// stream order — the uplink is a verbatim copy of the radio's trace.
class TeeStream final : public RecordStream {
 public:
  TeeStream(RecordStream& inner, SocketTraceWriter& uplink)
      : inner_(inner), uplink_(uplink) {}

  const TraceHeader& header() const override { return inner_.header(); }

  const CaptureRecord* NextRef() override {
    const CaptureRecord* rec = inner_.NextRef();
    if (rec == nullptr) {
      // Probed past the end of a finalized capture: everything the
      // source will ever hold has passed through this cursor.
      if (inner_.Finalized()) exhausted_ = true;
      return nullptr;
    }
    ++consumed_;
    if (consumed_ > forwarded_) {
      uplink_.Append(*rec);
      forwarded_ = consumed_;
    }
    return rec;
  }

  std::optional<CaptureRecord> Next() override {
    const CaptureRecord* rec = NextRef();
    if (!rec) return std::nullopt;
    return *rec;
  }

  void Rewind() override {
    inner_.Rewind();
    consumed_ = 0;  // forwarded_ high-water mark survives: no re-send
    exhausted_ = false;
  }

  bool Finalized() const override { return inner_.Finalized(); }

  // True once every record the source will ever hold has been relayed:
  // the capture is finalized AND this cursor has been probed past its
  // end AND no rewound replay is still catching up to the high-water
  // mark.  Only then may the uplink carry the finalize marker —
  // finalizing on Finalized() alone would cut off records the merge has
  // not consumed (and therefore not relayed) yet.
  bool FullyRelayed() const {
    return exhausted_ && consumed_ == forwarded_;
  }

  std::uint64_t forwarded() const { return forwarded_; }

 private:
  RecordStream& inner_;
  SocketTraceWriter& uplink_;
  std::uint64_t consumed_ = 0;
  std::uint64_t forwarded_ = 0;
  bool exhausted_ = false;
};

std::string WingLabel(std::uint32_t wing_id) {
  return "wing=\"" + std::to_string(wing_id) + "\"";
}

}  // namespace

struct WingSession::Impl {
  WingConfig config;
  std::vector<std::unique_ptr<SocketTraceWriter>> uplinks;
  std::vector<TeeStream*> tees;  // owned by tee_set
  TraceSet tee_set;
  std::vector<bool> uplink_finished;
  std::vector<std::uint64_t> uplink_bytes_reported;
  std::uint64_t records_relayed = 0;

  obs::Counter& uplink_records;
  obs::Counter& uplink_bytes;
  obs::Gauge& lag;

  Impl(TraceSet& traces, const WingConfig& cfg)
      : config(cfg),
        uplink_records(obs::MetricRegistry::Global().GetCounter(
            "jig_wing_uplink_records_total",
            "Records relayed to the root, per wing",
            WingLabel(cfg.wing_id))),
        uplink_bytes(obs::MetricRegistry::Global().GetCounter(
            "jig_wing_uplink_bytes_total",
            "Framed bytes relayed to the root, per wing",
            WingLabel(cfg.wing_id))),
        lag(obs::MetricRegistry::Global().GetGauge(
            "jig_wing_lag_us", "Wing-local merge live lag, per wing",
            WingLabel(cfg.wing_id))) {
    for (std::size_t i = 0; i < traces.size(); ++i) {
      auto uplink = std::make_unique<SocketTraceWriter>(
          ConnectWithRetry(config.root_host, config.root_port,
                           config.connect_timeout_ms),
          traces.at(i).header(), config.wing_id, config.records_per_block);
      auto tee = std::make_unique<TeeStream>(traces.at(i), *uplink);
      tees.push_back(tee.get());
      tee_set.Add(std::move(tee));
      uplinks.push_back(std::move(uplink));
    }
    uplink_finished.assign(uplinks.size(), false);
    uplink_bytes_reported.assign(uplinks.size(), 0);
  }

  void PublishProgress(MergeSession& session) {
    std::uint64_t relayed = 0;
    for (std::size_t i = 0; i < uplinks.size(); ++i) {
      if (uplink_finished[i]) {
        relayed += tees[i]->forwarded();
        continue;
      }
      // A finalized, fully-relayed radio finalizes its uplink right away
      // — like a capture daemon shutting down — so the root's watermark
      // never stalls on a wing radio that has already said everything.
      if (tees[i]->FullyRelayed()) {
        uplinks[i]->Finish();
        uplink_finished[i] = true;
      } else {
        uplinks[i]->Sync();
      }
      relayed += tees[i]->forwarded();
      const std::uint64_t bytes = uplinks[i]->bytes_sent();
      if (bytes > uplink_bytes_reported[i]) {
        uplink_bytes.Add(bytes - uplink_bytes_reported[i]);
        uplink_bytes_reported[i] = bytes;
      }
    }
    if (relayed > records_relayed) {
      uplink_records.Add(relayed - records_relayed);
      records_relayed = relayed;
    }
    lag.Set(session.live_lag_us());
  }
};

WingSession::WingSession(TraceSet& traces, const WingConfig& config)
    : impl_(std::make_unique<Impl>(traces, config)) {}

WingSession::~WingSession() = default;

std::uint64_t WingSession::records_relayed() const {
  return impl_->records_relayed;
}

MergeStreamStats WingSession::Run() {
  MergeStreamStats result;
  {
    MergeSession session(impl_->tee_set, impl_->config.merge,
                         [](JFrame&&) {});
    for (;;) {
      const auto status = session.Poll();
      impl_->PublishProgress(session);
      if (status == MergeSession::Status::kDone) break;
      // Live sources: wait for the writers to append more.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    result.bootstrap = session.bootstrap();
    result.stats = session.stats();
  }
  // The local merge does NOT consume every record: the unifier skips
  // traces its wing-local bootstrap could not sync (a wing holds only
  // some of the monitors, so clock bridges that run through another
  // wing's radios are invisible here).  The relay contract is verbatim —
  // the root's bootstrap sees every wing side by side and CAN sync them —
  // so drain each tee to the end: the replay is relay-silent up to the
  // high-water mark and forwards only the never-consumed tail.
  std::uint64_t relayed = 0;
  for (TeeStream* tee : impl_->tees) {
    tee->Rewind();
    while (tee->NextRef() != nullptr) {
    }
    relayed += tee->forwarded();
  }
  if (relayed > impl_->records_relayed) {
    impl_->uplink_records.Add(relayed - impl_->records_relayed);
    impl_->records_relayed = relayed;
  }
  for (std::size_t i = 0; i < impl_->uplinks.size(); ++i) {
    if (!impl_->uplink_finished[i]) {
      impl_->uplinks[i]->Finish();
      impl_->uplink_finished[i] = true;
    }
    const std::uint64_t bytes = impl_->uplinks[i]->bytes_sent();
    if (bytes > impl_->uplink_bytes_reported[i]) {
      impl_->uplink_bytes.Add(bytes - impl_->uplink_bytes_reported[i]);
      impl_->uplink_bytes_reported[i] = bytes;
    }
  }
  return result;
}

struct RootSession::Impl {
  RootConfig config;
  net::Listener listener;
  std::uint64_t boundary_jframes = 0;
  std::uint64_t jframes = 0;

  obs::Counter& boundary_counter = obs::MetricRegistry::Global().GetCounter(
      "jig_root_boundary_jframes_total",
      "JFrames unifying frame copies heard on more than one wing");

  explicit Impl(const RootConfig& cfg)
      : config(cfg), listener(cfg.host, cfg.port) {}
};

RootSession::RootSession(const RootConfig& config)
    : impl_(std::make_unique<Impl>(config)) {}

RootSession::~RootSession() = default;

std::uint16_t RootSession::port() const { return impl_->listener.port(); }

std::uint64_t RootSession::boundary_jframes() const {
  return impl_->boundary_jframes;
}

std::uint64_t RootSession::jframes() const { return impl_->jframes; }

MergeStreamStats RootSession::Run(std::function<void(JFrame&&)> sink) {
  Impl& impl = *impl_;
  TraceSet traces = AcceptTraces(impl.listener, impl.config.n_streams,
                                 impl.config.accept_timeout_ms,
                                 impl.config.resume_reconnects);
  // Which wing each radio's stream arrived from: the boundary-overlap
  // attribution for the reconciliation counter below.
  std::unordered_map<RadioId, std::uint32_t> wing_of;
  std::vector<SocketTrace*> sockets;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    auto& st = dynamic_cast<SocketTrace&>(traces.at(i));
    wing_of.emplace(st.header().radio, st.source_id());
    sockets.push_back(&st);
  }

  // The boundary-overlap reconciliation pass: the global unifier groups
  // every radio's copy of a frame regardless of which wing relayed it, so
  // a frame heard across the wing boundary collapses into ONE jframe here
  // (on a wing alone it would have produced partial groups).  The wrapper
  // makes that visible: count jframes whose instances span wings.
  const auto counting_sink = [&impl, &wing_of, &sink](JFrame&& jf) {
    ++impl.jframes;
    std::set<std::uint32_t> wings;
    for (const FrameInstance& inst : jf.instances) {
      const auto it = wing_of.find(inst.radio);
      if (it != wing_of.end()) wings.insert(it->second);
    }
    if (wings.size() > 1) {
      ++impl.boundary_jframes;
      impl.boundary_counter.Add(1);
    }
    sink(std::move(jf));
  };

  MergeStreamStats result;
  MergeSession session(traces, impl.config.merge, counting_sink);
  for (;;) {
    // Pick up re-dialing wings before pulling data: a dead uplink's
    // stream is parked (resumable) and only a resumed connection can
    // unpark it.  A connection with an unknown identity mid-run is not
    // one of our n_streams — drop it rather than let a stray dial wedge
    // or grow the merge.
    if (impl.config.resume_reconnects) {
      for (;;) {
        net::Socket fresh = impl.listener.TryAccept();
        if (!fresh.valid()) break;
        auto stranger = SocketTrace::OpenOrResume(
            std::move(fresh), sockets, impl.config.accept_timeout_ms);
        if (stranger) {
          std::fprintf(stderr,
                       "root: dropping unexpected stream (source %u "
                       "radio %u) — not a resume of any known uplink\n",
                       stranger->source_id(), stranger->header().radio);
        }
      }
    }
    // Drain every wing uplink first — see SocketTrace::Ingest for why
    // skipping currently-unneeded streams can deadlock the senders.
    for (SocketTrace* s : sockets) s->Ingest();
    const auto status = session.Poll();
    if (status == MergeSession::Status::kDone) break;
    // Starved: the wings have not relayed further yet.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  result.bootstrap = session.bootstrap();
  result.stats = session.stats();
  return result;
}

}  // namespace jig
