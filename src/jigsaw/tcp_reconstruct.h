// Transport-layer reconstruction and inference (paper Section 5.2).
//
// Rebuilds TCP flows from the frame exchanges' payload bytes (a variant of
// Jaiswal et al.'s passive analysis) and uses transport side effects to
// resolve the two ambiguities unique to the passive-wireless vantage:
//
//  * Delivery oracle — an exchange with no observed ACK is ambiguous at the
//    link layer; but if a later TCP ACK from the receiver covers the
//    segment's sequence range, the frame must have been delivered.
//  * Monitor omissions — a TCP ACK covering a sequence hole that never
//    appeared on the air in any observed exchange implies a frame exchange
//    completed entirely unobserved; its presence is inferred.
//
// Each TCP loss event (a retransmission) is classified as wireless (the
// original segment's frame exchange failed on the air) or wired (the
// original was delivered over the air — or never reached the air — so the
// loss happened in the distribution network / Internet), which is exactly
// the split Figure 11 reports.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "jigsaw/link.h"
#include "wifi/packet.h"

namespace jig {

struct TcpFlowKey {
  Ipv4Addr client_ip = 0;  // the wireless side
  Ipv4Addr server_ip = 0;
  std::uint16_t client_port = 0;
  std::uint16_t server_port = 0;
  bool operator==(const TcpFlowKey&) const = default;
};

enum class LossCause : std::uint8_t { kWireless, kWired, kUnknown };

struct TcpLossEvent {
  UniversalMicros time = 0;       // when the retransmission was observed
  bool downstream = false;        // server -> client
  std::uint32_t seq = 0;
  LossCause cause = LossCause::kUnknown;
};

struct TcpFlowRecord {
  TcpFlowKey key;
  bool handshake_complete = false;
  UniversalMicros start = 0;
  UniversalMicros end = 0;
  // Data segments observed on the air (including retransmissions).
  std::uint32_t segments_down = 0;
  std::uint32_t segments_up = 0;
  std::uint64_t bytes_down = 0;
  std::uint64_t bytes_up = 0;
  std::vector<TcpLossEvent> losses;
  // Passive RTT components measured at the handshake (ms).
  double wired_rtt_ms = -1.0;     // SYN -> SYN/ACK
  double wireless_rtt_ms = -1.0;  // SYN/ACK -> first client ACK
  std::uint32_t covering_ack_resolutions = 0;
  std::uint32_t inferred_missing_segments = 0;

  std::uint32_t DataSegments() const { return segments_down + segments_up; }
  std::uint32_t LossesBy(LossCause c) const {
    std::uint32_t n = 0;
    for (const auto& l : losses) {
      if (l.cause == c) ++n;
    }
    return n;
  }
  double LossRate() const {
    return DataSegments()
               ? static_cast<double>(losses.size()) / DataSegments()
               : 0.0;
  }
};

struct TransportStats {
  std::uint64_t tcp_segments = 0;
  std::uint64_t flows_total = 0;
  std::uint64_t flows_with_handshake = 0;
  std::uint64_t loss_events = 0;
  std::uint64_t wireless_losses = 0;
  std::uint64_t wired_losses = 0;
  std::uint64_t covering_ack_resolutions = 0;
  std::uint64_t inferred_missing_segments = 0;
};

struct TransportReconstruction {
  std::vector<TcpFlowRecord> flows;
  TransportStats stats;
  // Final per-exchange delivery verdict for data-bearing exchanges, after
  // applying the covering-ACK oracle to ambiguous ones.  Indexed parallel
  // to the LinkReconstruction's exchanges; nullopt = still unknown.
  std::vector<std::optional<bool>> exchange_delivered;
};

// Incremental transport reconstruction over streamed frame exchanges.
//
// Feed each emitted exchange (in emission order — the batch exchange-vector
// order) together with the DATA frame it carried; `data` may be null when
// the exchange held only control frames.  The covering-ACK oracle and the
// hole inference both look strictly backward in the exchange stream, so no
// jframe buffering is needed — this is what lets the TCP-loss consumer ride
// the windowed link reconstructor instead of a full-trace buffer.
// Finish() assembles the TransportReconstruction; one-shot.
class TransportTracker {
 public:
  TransportTracker();
  ~TransportTracker();
  TransportTracker(TransportTracker&&) noexcept;
  TransportTracker& operator=(TransportTracker&&) noexcept;

  void OnExchange(const FrameExchange& exchange, const Frame* data);
  // Non-destructive reconstruction over everything seen so far — the
  // live-monitor snapshot path.  The tracker keeps accumulating afterwards.
  TransportReconstruction Snapshot() const;
  TransportReconstruction Finish();
  // Distinct TCP flows currently held in tracker state — the transport
  // layer's retained-window size.
  std::size_t flows_tracked() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Reconstructs flows from time-ordered jframes + link exchanges.  Batch
// wrapper over TransportTracker.
TransportReconstruction ReconstructTransport(
    const std::vector<JFrame>& jframes, const LinkReconstruction& link);

}  // namespace jig
