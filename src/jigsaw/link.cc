#include "jigsaw/link.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <tuple>
#include <utility>

namespace jig {
namespace {

// The 802.11 short retry limit counts transmissions of one MSDU, so an
// exchange that visibly shows kShortRetryLimit attempts has exhausted the
// sender's budget.
constexpr std::size_t kRetryLimitGuess = kShortRetryLimit;

constexpr std::uint64_t kNoIndex = std::numeric_limits<std::uint64_t>::max();
constexpr UniversalMicros kEndOfTime =
    std::numeric_limits<UniversalMicros>::max();

struct PendingAttempt {
  TransmissionAttempt attempt;
  UniversalMicros ack_deadline = 0;
  UniversalMicros data_deadline = 0;
  bool waiting_ack = false;
  bool waiting_data = false;
  bool open = false;
  std::uint64_t first_jframe = kNoIndex;  // opening jframe of the transaction
  std::uint64_t generation = 0;           // invalidates stale timer entries
};

// Deadline timer entry for the two watermark sweeps (attempt deadlines,
// exchange timeouts).  `order` makes pop order fully deterministic.
struct Expiry {
  UniversalMicros when = 0;
  std::uint64_t order = 0;
  MacAddress who;
  std::uint64_t generation = 0;
};
struct ExpiryAfter {
  bool operator()(const Expiry& a, const Expiry& b) const {
    return std::tie(a.when, a.order) > std::tie(b.when, b.order);
  }
};
using ExpiryQueue = std::priority_queue<Expiry, std::vector<Expiry>,
                                        ExpiryAfter>;

// Frozen attempts/exchanges parked until the watermark proves nothing with
// an earlier start can still appear — this is what makes the streaming
// emission order equal the batch vectors' sorted order.
struct BufferedAttempt {
  TransmissionAttempt attempt;
  std::uint64_t order = 0;  // finalize sequence (sort tie-break)
  std::uint64_t first_jframe = 0;
};
struct AttemptBefore {
  bool operator()(const BufferedAttempt& a, const BufferedAttempt& b) const {
    return std::tie(a.attempt.start, a.order) <
           std::tie(b.attempt.start, b.order);
  }
};

struct BufferedExchange {
  FrameExchange exchange;
  std::uint64_t order = 0;  // emit sequence (sort tie-break)
  std::uint64_t first_jframe = 0;
};
struct ExchangeBefore {
  bool operator()(const BufferedExchange& a, const BufferedExchange& b) const {
    return std::tie(a.exchange.start, a.order) <
           std::tie(b.exchange.start, b.order);
  }
};

struct TxState {
  std::optional<std::uint16_t> last_seq;
  bool open = false;
  FrameExchange exchange;
  bool any_acked = false;
  std::uint64_t first_jframe = kNoIndex;  // of the open exchange
  std::uint64_t generation = 0;           // invalidates stale timer entries
};

}  // namespace

struct LinkReconstructor::Impl {
  LinkConfig config;
  AttemptSink on_attempt;
  ExchangeSink on_exchange;
  LinkStats stats;

  std::uint64_t jframes_seen = 0;
  UniversalMicros watermark = 0;
  std::uint64_t timer_order = 0;
  bool flushed = false;

  // Stage 1: transmission-attempt FSM (per transmitter).
  std::unordered_map<MacAddress, PendingAttempt> pending;
  ExpiryQueue attempt_expiry;
  std::multiset<UniversalMicros> open_attempt_starts;
  std::multiset<std::uint64_t> open_attempt_jframes;
  std::multiset<BufferedAttempt, AttemptBefore> attempt_buffer;
  std::multiset<std::uint64_t> attempt_buffer_jframes;
  std::uint64_t finalize_order = 0;

  // Stage 2: frame-exchange FSM (per transmitter), fed released attempts.
  std::unordered_map<MacAddress, TxState> tx;
  ExpiryQueue exchange_expiry;
  std::multiset<UniversalMicros> open_exchange_starts;
  std::multiset<std::uint64_t> open_exchange_jframes;
  std::multiset<BufferedExchange, ExchangeBefore> exchange_buffer;
  std::multiset<std::uint64_t> exchange_buffer_jframes;
  std::uint64_t emit_order = 0;
  std::uint64_t attempts_released = 0;
  std::uint64_t exchanges_released = 0;
  // Every attempt whose start lies below this has reached the stage-2 FSM;
  // no later one can start earlier.
  UniversalMicros consumed_bound = 0;

  // ---- Stage 1 ------------------------------------------------------------

  void ArmAttempt(MacAddress who, PendingAttempt& p, UniversalMicros when) {
    ++p.generation;
    attempt_expiry.push(Expiry{when, timer_order++, who, p.generation});
  }

  void OpenAttempt(PendingAttempt& p, const JFrame& jf, std::uint64_t idx,
                   MacAddress transmitter) {
    p.open = true;
    p.attempt.start = jf.timestamp;
    p.attempt.end = jf.EndTime();
    p.attempt.transmitter = transmitter;
    p.first_jframe = idx;
    open_attempt_starts.insert(p.attempt.start);
    open_attempt_jframes.insert(idx);
  }

  void BufferAttempt(TransmissionAttempt&& a, std::uint64_t first_jframe) {
    attempt_buffer_jframes.insert(first_jframe);
    attempt_buffer.insert(
        BufferedAttempt{std::move(a), finalize_order++, first_jframe});
  }

  void FinalizeAttempt(PendingAttempt& p) {
    if (!p.open) return;
    if (p.waiting_data && p.attempt.cts_jframe >= 0 &&
        p.attempt.data_jframe < 0) {
      // The protected transaction's DATA missed its deadline (or never
      // appeared): the attempt is assembled from control frames alone.
      p.attempt.inferred = true;
    }
    ++stats.attempts;
    if (p.attempt.inferred) ++stats.attempts_inferred;
    open_attempt_starts.erase(open_attempt_starts.find(p.attempt.start));
    open_attempt_jframes.erase(open_attempt_jframes.find(p.first_jframe));
    BufferAttempt(std::move(p.attempt), p.first_jframe);
    const std::uint64_t generation = p.generation;
    p = PendingAttempt{};
    p.generation = generation + 1;
  }

  // Finalizes every pending attempt whose deadline the watermark has
  // passed: no jframe at or after the watermark can still mutate it, so
  // its content is what the batch FSM would eventually produce.
  void ExpireAttempts() {
    while (!attempt_expiry.empty() && attempt_expiry.top().when < watermark) {
      const Expiry e = attempt_expiry.top();
      attempt_expiry.pop();
      auto it = pending.find(e.who);
      if (it == pending.end()) continue;
      PendingAttempt& p = it->second;
      if (!p.open || p.generation != e.generation) continue;
      FinalizeAttempt(p);
    }
  }

  void Process(const JFrame& jf, std::uint64_t idx) {
    const Frame& f = jf.frame;
    if (jf.ValidInstanceCount() == 0) return;  // undecoded jframes unusable

    switch (f.type) {
      case FrameType::kRts: {
        // RTS opens a reserved transaction for its transmitter; the CTS
        // response and DATA must follow within the reservation.
        PendingAttempt& p = pending[f.addr2];
        if (p.open) FinalizeAttempt(p);
        OpenAttempt(p, jf, idx, f.addr2);
        p.attempt.receiver = f.addr1;
        p.attempt.rts_jframe = static_cast<std::int64_t>(idx);
        p.waiting_data = true;
        // CTS (SIFS + cts air, at the control-response rate the responder
        // actually answers with) then SIFS then DATA.
        p.data_deadline =
            jf.EndTime() + 2 * kSifs +
            TxDurationMicros(ControlResponseRate(f.rate), kCtsBytes) +
            config.ack_slack;
        ArmAttempt(f.addr2, p, p.data_deadline);
        return;
      }
      case FrameType::kCts: {
        // Either the CTS response inside an RTS transaction (addr1 names
        // the RTS sender, who has a pending attempt) or a CTS-to-self
        // opening a protected transaction for addr1's owner.
        PendingAttempt& p = pending[f.addr1];
        if (p.open && p.waiting_data && p.attempt.rts_jframe >= 0 &&
            jf.timestamp <= p.data_deadline) {
          p.attempt.cts_jframe = static_cast<std::int64_t>(idx);
          p.attempt.end = jf.EndTime();
          return;
        }
        if (p.open) FinalizeAttempt(p);
        OpenAttempt(p, jf, idx, f.addr1);
        p.attempt.cts_jframe = static_cast<std::int64_t>(idx);
        p.waiting_data = true;
        // The DATA must begin one SIFS after the CTS; the duration field
        // bounds the whole transaction.
        p.data_deadline = jf.EndTime() + kSifs + config.ack_slack;
        ArmAttempt(f.addr1, p, p.data_deadline);
        return;
      }
      case FrameType::kAck: {
        // The ACK's addr1 names the station being acknowledged.
        auto it = pending.find(f.addr1);
        if (it != pending.end() && it->second.open &&
            it->second.waiting_ack &&
            jf.timestamp <= it->second.ack_deadline) {
          PendingAttempt& p = it->second;
          p.attempt.ack_jframe = static_cast<std::int64_t>(idx);
          p.attempt.acked = true;
          p.attempt.end = jf.EndTime();
          FinalizeAttempt(p);
          return;
        }
        // Orphan ACK: its DATA was not captured.  Record an inferred
        // attempt; the exchange FSM queues it for resolution.
        ++stats.orphan_acks;
        TransmissionAttempt a;
        a.start = jf.timestamp;
        a.end = jf.EndTime();
        a.transmitter = f.addr1;  // the acknowledged sender
        a.type = FrameType::kData;
        a.has_sequence = false;
        a.acked = true;
        a.inferred = true;
        a.ack_jframe = static_cast<std::int64_t>(idx);
        ++stats.attempts;
        ++stats.attempts_inferred;
        BufferAttempt(std::move(a), idx);
        return;
      }
      default:
        break;  // DATA / MANAGEMENT handled below
    }

    // DATA or MANAGEMENT frame from f.addr2.
    PendingAttempt& p = pending[f.addr2];
    const bool continues_cts =
        p.open && p.waiting_data && jf.timestamp <= p.data_deadline;
    if (p.open && !continues_cts) FinalizeAttempt(p);
    if (!continues_cts) OpenAttempt(p, jf, idx, f.addr2);
    p.waiting_data = false;
    p.attempt.end = jf.EndTime();
    p.attempt.receiver = f.addr1;
    p.attempt.type = f.type;
    p.attempt.sequence = f.sequence;
    p.attempt.has_sequence = true;
    p.attempt.retry = f.retry;
    p.attempt.broadcast = !f.addr1.IsUnicast();
    p.attempt.rate = f.rate;
    p.attempt.data_jframe = static_cast<std::int64_t>(idx);

    if (p.attempt.broadcast) {
      FinalizeAttempt(p);
      return;
    }
    // The duration field advertises exactly when the ACK transaction ends
    // (Section 5.1: critical when frames are missing from the trace).
    const Micros reserve =
        f.duration_us > 0
            ? static_cast<Micros>(f.duration_us)
            : kSifs + TxDurationMicros(ControlResponseRate(f.rate), kAckBytes);
    p.waiting_ack = true;
    p.ack_deadline = jf.EndTime() + reserve + config.ack_slack;
    ArmAttempt(f.addr2, p, p.ack_deadline);
  }

  // Feeds the stage-2 FSM every frozen attempt that can be placed in final
  // order: its start lies before every still-open pending attempt and the
  // watermark, and the watermark has passed its own end (so per-jframe
  // side-channels like the interference overlap flags are final too).
  void ReleaseAttempts(bool flushing) {
    UniversalMicros bound = watermark;
    if (!open_attempt_starts.empty()) {
      bound = std::min(bound, *open_attempt_starts.begin());
    }
    while (!attempt_buffer.empty()) {
      const BufferedAttempt& front = *attempt_buffer.begin();
      if (!flushing &&
          (front.attempt.start >= bound || front.attempt.end > watermark)) {
        break;
      }
      auto node = attempt_buffer.extract(attempt_buffer.begin());
      attempt_buffer_jframes.erase(
          attempt_buffer_jframes.find(node.value().first_jframe));
      ConsumeAttempt(std::move(node.value()));
    }
    consumed_bound =
        flushing ? kEndOfTime
                 : (attempt_buffer.empty()
                        ? bound
                        : std::min(bound,
                                   attempt_buffer.begin()->attempt.start));
  }

  // ---- Stage 2 ------------------------------------------------------------

  void ArmExchange(MacAddress who, TxState& st) {
    ++st.generation;
    exchange_expiry.push(Expiry{st.exchange.end + config.exchange_timeout,
                                timer_order++, who, st.generation});
  }

  void OpenExchange(TxState& st, const TransmissionAttempt& a,
                    std::uint64_t attempt_index, std::uint64_t first_jframe) {
    st.open = true;
    FrameExchange& ex = st.exchange;
    ex.transmitter = a.transmitter;
    ex.receiver = a.receiver;
    ex.sequence = a.sequence;
    ex.broadcast = a.broadcast;
    ex.start = a.start;
    ex.end = a.end;
    ex.attempts.push_back(attempt_index);
    ex.data_jframe = a.data_jframe;
    ex.needed_inference = a.inferred;
    st.any_acked = a.acked;
    st.first_jframe = first_jframe;
    open_exchange_starts.insert(ex.start);
    open_exchange_jframes.insert(first_jframe);
  }

  void AppendExchange(TxState& st, const TransmissionAttempt& a,
                      std::uint64_t attempt_index) {
    FrameExchange& ex = st.exchange;
    ex.end = a.end;
    ex.attempts.push_back(attempt_index);
    if (ex.data_jframe < 0) ex.data_jframe = a.data_jframe;
    ex.needed_inference = ex.needed_inference || a.inferred;
    st.any_acked = st.any_acked || a.acked;
  }

  void EmitExchange(TxState& st) {
    if (!st.open) return;
    FrameExchange& ex = st.exchange;
    if (ex.broadcast) {
      // R1: no ARQ for broadcast; one attempt completes the exchange.
      ex.outcome = ExchangeOutcome::kDelivered;
    } else if (st.any_acked) {
      ex.outcome = ExchangeOutcome::kDelivered;
    } else if (ex.attempts.size() >= kRetryLimitGuess) {
      // Retry limit visibly exhausted: the sender gave up.
      ex.outcome = ExchangeOutcome::kNotDelivered;
    } else {
      ex.outcome = ExchangeOutcome::kAmbiguous;
    }
    ++stats.exchanges;
    if (ex.needed_inference) ++stats.exchanges_inferred;
    open_exchange_starts.erase(open_exchange_starts.find(ex.start));
    open_exchange_jframes.erase(open_exchange_jframes.find(st.first_jframe));
    exchange_buffer_jframes.insert(st.first_jframe);
    exchange_buffer.insert(
        BufferedExchange{std::move(ex), emit_order++, st.first_jframe});
    st.open = false;
    st.exchange = FrameExchange{};
    st.any_acked = false;
    st.first_jframe = kNoIndex;
    ++st.generation;  // disarm the timeout timer
  }

  void ConsumeAttempt(BufferedAttempt&& buffered) {
    const std::uint64_t attempt_index = attempts_released++;
    const TransmissionAttempt& a = buffered.attempt;
    if (on_attempt) on_attempt(a);
    TxState& st = tx[a.transmitter];

    // Stale open exchange: close on timeout (almost all exchanges complete
    // within 500 ms).
    if (st.open && a.start - st.exchange.end > config.exchange_timeout) {
      EmitExchange(st);
    }

    if (a.broadcast) {  // R1: attempt == exchange, no ARQ
      if (st.open) EmitExchange(st);
      OpenExchange(st, a, attempt_index, buffered.first_jframe);
      EmitExchange(st);
      // Broadcasts advance the sender's sequence counter too.
      st.last_seq = a.sequence;
      return;
    }

    if (!a.has_sequence) {
      // Orphan-ACK attempt.  Heuristic (ACKs are less likely lost than
      // DATA): if the sender has an un-ACKed open exchange, this ACK
      // acknowledges a retransmission whose DATA we missed.
      if (st.open && !st.any_acked) {
        AppendExchange(st, a, attempt_index);
        st.exchange.needed_inference = true;
        st.any_acked = true;
        ArmExchange(a.transmitter, st);
      }
      // Otherwise it cannot be placed; leave it unassigned.
      return;
    }

    if (!st.last_seq) {
      if (st.open) EmitExchange(st);
      OpenExchange(st, a, attempt_index, buffered.first_jframe);
      ArmExchange(a.transmitter, st);
      st.last_seq = a.sequence;
      return;
    }

    const std::uint16_t delta =
        static_cast<std::uint16_t>((a.sequence - *st.last_seq) & 0x0FFF);
    if (delta == 0 && st.open) {
      // R2: retransmission of the open exchange.
      AppendExchange(st, a, attempt_index);
      ArmExchange(a.transmitter, st);
    } else if (delta == 0 && !st.open) {
      // Late retransmission after we closed (e.g. timeout) — reopen.
      OpenExchange(st, a, attempt_index, buffered.first_jframe);
      st.exchange.needed_inference = true;
      ArmExchange(a.transmitter, st);
    } else if (delta == 1) {
      // R3: new exchange.
      if (st.open) EmitExchange(st);
      OpenExchange(st, a, attempt_index, buffered.first_jframe);
      // If this first attempt carries the retry bit, earlier attempts of
      // this exchange were missed entirely.
      if (a.retry) st.exchange.needed_inference = true;
      ArmExchange(a.transmitter, st);
    } else {
      // R4: sequence gap — no inference; flush and restart.
      ++stats.sequence_gaps_flushed;
      if (st.open) EmitExchange(st);
      OpenExchange(st, a, attempt_index, buffered.first_jframe);
      ArmExchange(a.transmitter, st);
    }
    st.last_seq = a.sequence;
  }

  // Emits every open exchange the attempt watermark has timed out: any
  // later attempt from its sender would trigger the stale-exchange check
  // before mutating it, so its content is final.
  void FreezeExchanges() {
    while (!exchange_expiry.empty() &&
           exchange_expiry.top().when < consumed_bound) {
      const Expiry e = exchange_expiry.top();
      exchange_expiry.pop();
      auto it = tx.find(e.who);
      if (it == tx.end()) continue;
      TxState& st = it->second;
      if (!st.open || st.generation != e.generation) continue;
      EmitExchange(st);
    }
  }

  void ReleaseExchanges(bool flushing) {
    UniversalMicros bound = consumed_bound;
    if (!open_exchange_starts.empty()) {
      bound = std::min(bound, *open_exchange_starts.begin());
    }
    while (!exchange_buffer.empty()) {
      const BufferedExchange& front = *exchange_buffer.begin();
      if (!flushing && front.exchange.start >= bound) break;
      auto node = exchange_buffer.extract(exchange_buffer.begin());
      exchange_buffer_jframes.erase(
          exchange_buffer_jframes.find(node.value().first_jframe));
      ++exchanges_released;
      if (on_exchange) on_exchange(node.value().exchange);
    }
  }

  std::uint64_t MinLiveJFrame() const {
    std::uint64_t min_live = jframes_seen;
    for (const auto* indices :
         {&open_attempt_jframes, &attempt_buffer_jframes,
          &open_exchange_jframes, &exchange_buffer_jframes}) {
      if (!indices->empty()) min_live = std::min(min_live, *indices->begin());
    }
    return min_live;
  }
};

LinkReconstructor::LinkReconstructor(LinkConfig config, AttemptSink on_attempt,
                                     ExchangeSink on_exchange)
    : impl_(std::make_unique<Impl>()) {
  impl_->config = config;
  impl_->on_attempt = std::move(on_attempt);
  impl_->on_exchange = std::move(on_exchange);
}

LinkReconstructor::~LinkReconstructor() = default;
LinkReconstructor::LinkReconstructor(LinkReconstructor&&) noexcept = default;
LinkReconstructor& LinkReconstructor::operator=(LinkReconstructor&&) noexcept =
    default;

void LinkReconstructor::OnJFrame(const JFrame& jf) {
  Impl& im = *impl_;
  const std::uint64_t idx = im.jframes_seen++;
  im.watermark = std::max(im.watermark, jf.timestamp);
  im.ExpireAttempts();
  im.Process(jf, idx);
  im.ReleaseAttempts(/*flushing=*/false);
  im.FreezeExchanges();
  im.ReleaseExchanges(/*flushing=*/false);
}

void LinkReconstructor::Flush() {
  Impl& im = *impl_;
  if (im.flushed) return;
  im.flushed = true;
  // Finalize the still-open attempts in deterministic (start, opening
  // jframe) order; the release buffer re-sorts with finalize order as the
  // tie-break, exactly like mid-stream emission.
  std::vector<MacAddress> still_open;
  // lint-determinism: allow(keys collected then sorted below before emission)
  for (const auto& [mac, p] : im.pending) {
    if (p.open) still_open.push_back(mac);
  }
  std::sort(still_open.begin(), still_open.end(),
            [&](const MacAddress& x, const MacAddress& y) {
              const PendingAttempt& px = im.pending.find(x)->second;
              const PendingAttempt& py = im.pending.find(y)->second;
              return std::tie(px.attempt.start, px.first_jframe) <
                     std::tie(py.attempt.start, py.first_jframe);
            });
  for (const MacAddress& mac : still_open) {
    im.FinalizeAttempt(im.pending.find(mac)->second);
  }
  im.ReleaseAttempts(/*flushing=*/true);  // sets consumed_bound = end of time
  im.FreezeExchanges();
  im.ReleaseExchanges(/*flushing=*/true);
}

const LinkStats& LinkReconstructor::stats() const { return impl_->stats; }
std::uint64_t LinkReconstructor::jframes_seen() const {
  return impl_->jframes_seen;
}
std::uint64_t LinkReconstructor::attempts_emitted() const {
  return impl_->attempts_released;
}
std::uint64_t LinkReconstructor::exchanges_emitted() const {
  return impl_->exchanges_released;
}
std::uint64_t LinkReconstructor::min_live_jframe() const {
  return impl_->MinLiveJFrame();
}

LinkReconstruction ReconstructLink(const std::vector<JFrame>& jframes,
                                   const LinkConfig& config) {
  LinkReconstruction result;
  LinkReconstructor reconstructor(
      config,
      [&](const TransmissionAttempt& a) { result.attempts.push_back(a); },
      [&](const FrameExchange& ex) { result.exchanges.push_back(ex); });
  for (const JFrame& jf : jframes) reconstructor.OnJFrame(jf);
  reconstructor.Flush();
  result.stats = reconstructor.stats();
  return result;
}

}  // namespace jig
