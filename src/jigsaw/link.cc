#include "jigsaw/link.h"

#include <algorithm>

namespace jig {
namespace {

constexpr int kRetryLimitGuess = kShortRetryLimit + 1;  // attempts per MSDU

struct PendingAttempt {
  TransmissionAttempt attempt;
  UniversalMicros ack_deadline = 0;
  UniversalMicros data_deadline = 0;
  bool waiting_ack = false;
  bool waiting_data = false;
  bool open = false;
};

class AttemptAssembler {
 public:
  AttemptAssembler(const std::vector<JFrame>& jframes,
                   const LinkConfig& config, LinkStats& stats)
      : jframes_(jframes), config_(config), stats_(stats) {}

  std::vector<TransmissionAttempt> Run() {
    for (std::size_t i = 0; i < jframes_.size(); ++i) {
      Process(i);
    }
    for (auto& [mac, pending] : pending_) {
      if (pending.open) Finalize(pending);
    }
    std::stable_sort(out_.begin(), out_.end(),
                     [](const TransmissionAttempt& a,
                        const TransmissionAttempt& b) {
                       return a.start < b.start;
                     });
    return std::move(out_);
  }

 private:
  void Finalize(PendingAttempt& pending) {
    if (!pending.open) return;
    ++stats_.attempts;
    if (pending.attempt.inferred) ++stats_.attempts_inferred;
    out_.push_back(pending.attempt);
    pending = PendingAttempt{};
  }

  void Process(std::size_t idx) {
    const JFrame& jf = jframes_[idx];
    const Frame& f = jf.frame;
    if (jf.ValidInstanceCount() == 0) return;  // undecoded jframes unusable

    switch (f.type) {
      case FrameType::kRts: {
        // RTS opens a reserved transaction for its transmitter; the CTS
        // response and DATA must follow within the reservation.
        PendingAttempt& p = pending_[f.addr2];
        if (p.open) Finalize(p);
        p.open = true;
        p.attempt.start = jf.timestamp;
        p.attempt.end = jf.EndTime();
        p.attempt.transmitter = f.addr2;
        p.attempt.receiver = f.addr1;
        p.attempt.rts_jframe = static_cast<std::int64_t>(idx);
        p.waiting_data = true;
        // CTS (SIFS + cts air) then SIFS then DATA.
        p.data_deadline = jf.EndTime() + 2 * kSifs +
                          TxDurationMicros(f.rate, kCtsBytes) +
                          config_.ack_slack;
        return;
      }
      case FrameType::kCts: {
        // Either the CTS response inside an RTS transaction (addr1 names
        // the RTS sender, who has a pending attempt) or a CTS-to-self
        // opening a protected transaction for addr1's owner.
        PendingAttempt& p = pending_[f.addr1];
        if (p.open && p.waiting_data && p.attempt.rts_jframe >= 0 &&
            jf.timestamp <= p.data_deadline) {
          p.attempt.cts_jframe = static_cast<std::int64_t>(idx);
          p.attempt.end = jf.EndTime();
          return;
        }
        if (p.open) Finalize(p);
        p.open = true;
        p.attempt.start = jf.timestamp;
        p.attempt.end = jf.EndTime();
        p.attempt.transmitter = f.addr1;
        p.attempt.cts_jframe = static_cast<std::int64_t>(idx);
        p.waiting_data = true;
        // The DATA must begin one SIFS after the CTS; the duration field
        // bounds the whole transaction.
        p.data_deadline = jf.EndTime() + kSifs + config_.ack_slack;
        return;
      }
      case FrameType::kAck: {
        // The ACK's addr1 names the station being acknowledged.
        auto it = pending_.find(f.addr1);
        if (it != pending_.end() && it->second.open &&
            it->second.waiting_ack &&
            jf.timestamp <= it->second.ack_deadline) {
          PendingAttempt& p = it->second;
          p.attempt.ack_jframe = static_cast<std::int64_t>(idx);
          p.attempt.acked = true;
          p.attempt.end = jf.EndTime();
          Finalize(p);
          return;
        }
        // Orphan ACK: its DATA was not captured.  Record an inferred
        // attempt; the exchange FSM queues it for resolution.
        ++stats_.orphan_acks;
        TransmissionAttempt a;
        a.start = jf.timestamp;
        a.end = jf.EndTime();
        a.transmitter = f.addr1;  // the acknowledged sender
        a.type = FrameType::kData;
        a.has_sequence = false;
        a.acked = true;
        a.inferred = true;
        a.ack_jframe = static_cast<std::int64_t>(idx);
        ++stats_.attempts;
        ++stats_.attempts_inferred;
        out_.push_back(a);
        return;
      }
      default:
        break;  // DATA / MANAGEMENT handled below
    }

    // DATA or MANAGEMENT frame from f.addr2.
    PendingAttempt& p = pending_[f.addr2];
    const bool continues_cts =
        p.open && p.waiting_data && jf.timestamp <= p.data_deadline;
    if (p.open && !continues_cts) Finalize(p);
    if (!continues_cts) {
      p.open = true;
      p.attempt.start = jf.timestamp;
      p.attempt.transmitter = f.addr2;
    }
    p.waiting_data = false;
    p.attempt.end = jf.EndTime();
    p.attempt.receiver = f.addr1;
    p.attempt.type = f.type;
    p.attempt.sequence = f.sequence;
    p.attempt.has_sequence = true;
    p.attempt.retry = f.retry;
    p.attempt.broadcast = !f.addr1.IsUnicast();
    p.attempt.rate = f.rate;
    p.attempt.data_jframe = static_cast<std::int64_t>(idx);
    if (p.attempt.cts_jframe >= 0 && !continues_cts) p.attempt.inferred = true;

    if (p.attempt.broadcast) {
      Finalize(p);
      return;
    }
    // The duration field advertises exactly when the ACK transaction ends
    // (Section 5.1: critical when frames are missing from the trace).
    const Micros reserve =
        f.duration_us > 0
            ? static_cast<Micros>(f.duration_us)
            : kSifs + TxDurationMicros(ControlResponseRate(f.rate), kAckBytes);
    p.waiting_ack = true;
    p.ack_deadline = jf.EndTime() + reserve + config_.ack_slack;
  }

  const std::vector<JFrame>& jframes_;
  const LinkConfig& config_;
  LinkStats& stats_;
  std::unordered_map<MacAddress, PendingAttempt> pending_;
  std::vector<TransmissionAttempt> out_;
};

class ExchangeAssembler {
 public:
  ExchangeAssembler(const std::vector<TransmissionAttempt>& attempts,
                    const LinkConfig& config, LinkStats& stats)
      : attempts_(attempts), config_(config), stats_(stats) {}

  std::vector<FrameExchange> Run() {
    for (std::size_t i = 0; i < attempts_.size(); ++i) {
      Process(i);
    }
    for (auto& [mac, st] : tx_) {
      if (st.open) Emit(st);
    }
    std::stable_sort(out_.begin(), out_.end(),
                     [](const FrameExchange& a, const FrameExchange& b) {
                       return a.start < b.start;
                     });
    return std::move(out_);
  }

 private:
  struct TxState {
    std::optional<std::uint16_t> last_seq;
    bool open = false;
    FrameExchange exchange;
    bool any_acked = false;
  };

  void Emit(TxState& st) {
    if (!st.open) return;
    FrameExchange& ex = st.exchange;
    if (ex.broadcast) {
      // R1: no ARQ for broadcast; one attempt completes the exchange.
      ex.outcome = ExchangeOutcome::kDelivered;
    } else if (st.any_acked) {
      ex.outcome = ExchangeOutcome::kDelivered;
    } else if (ex.attempts.size() >= kRetryLimitGuess) {
      // Retry limit visibly exhausted: the sender gave up.
      ex.outcome = ExchangeOutcome::kNotDelivered;
    } else {
      ex.outcome = ExchangeOutcome::kAmbiguous;
    }
    ++stats_.exchanges;
    if (ex.needed_inference) ++stats_.exchanges_inferred;
    out_.push_back(std::move(ex));
    st.open = false;
    st.exchange = FrameExchange{};
    st.any_acked = false;
  }

  void Open(TxState& st, const TransmissionAttempt& a, std::size_t idx) {
    st.open = true;
    FrameExchange& ex = st.exchange;
    ex.transmitter = a.transmitter;
    ex.receiver = a.receiver;
    ex.sequence = a.sequence;
    ex.broadcast = a.broadcast;
    ex.start = a.start;
    ex.end = a.end;
    ex.attempts.push_back(idx);
    ex.data_jframe = a.data_jframe;
    ex.needed_inference = a.inferred;
    st.any_acked = a.acked;
  }

  void Append(TxState& st, const TransmissionAttempt& a, std::size_t idx) {
    FrameExchange& ex = st.exchange;
    ex.end = a.end;
    ex.attempts.push_back(idx);
    if (ex.data_jframe < 0) ex.data_jframe = a.data_jframe;
    ex.needed_inference = ex.needed_inference || a.inferred;
    st.any_acked = st.any_acked || a.acked;
  }

  void Process(std::size_t idx) {
    const TransmissionAttempt& a = attempts_[idx];
    TxState& st = tx_[a.transmitter];

    // Stale open exchange: close on timeout (almost all exchanges complete
    // within 500 ms).
    if (st.open && a.start - st.exchange.end > config_.exchange_timeout) {
      Emit(st);
    }

    if (a.broadcast) {  // R1: attempt == exchange, no ARQ
      if (st.open) Emit(st);
      Open(st, a, idx);
      st.exchange.outcome = ExchangeOutcome::kDelivered;
      Emit(st);
      // Broadcasts advance the sender's sequence counter too.
      st.last_seq = a.sequence;
      return;
    }

    if (!a.has_sequence) {
      // Orphan-ACK attempt.  Heuristic (ACKs are less likely lost than
      // DATA): if the sender has an un-ACKed open exchange, this ACK
      // acknowledges a retransmission whose DATA we missed.
      if (st.open && !st.any_acked) {
        Append(st, a, idx);
        st.exchange.needed_inference = true;
        st.any_acked = true;
      }
      // Otherwise it cannot be placed; leave it unassigned.
      return;
    }

    if (!st.last_seq) {
      if (st.open) Emit(st);
      Open(st, a, idx);
      st.last_seq = a.sequence;
      return;
    }

    const std::uint16_t delta =
        static_cast<std::uint16_t>((a.sequence - *st.last_seq) & 0x0FFF);
    if (delta == 0 && st.open) {
      // R2: retransmission of the open exchange.
      Append(st, a, idx);
    } else if (delta == 0 && !st.open) {
      // Late retransmission after we closed (e.g. timeout) — reopen.
      Open(st, a, idx);
      st.exchange.needed_inference = true;
    } else if (delta == 1) {
      // R3: new exchange.
      if (st.open) Emit(st);
      Open(st, a, idx);
      // If this first attempt carries the retry bit, earlier attempts of
      // this exchange were missed entirely.
      if (a.retry) st.exchange.needed_inference = true;
    } else {
      // R4: sequence gap — no inference; flush and restart.
      ++stats_.sequence_gaps_flushed;
      if (st.open) Emit(st);
      Open(st, a, idx);
    }
    st.last_seq = a.sequence;
  }

  const std::vector<TransmissionAttempt>& attempts_;
  const LinkConfig& config_;
  LinkStats& stats_;
  std::unordered_map<MacAddress, TxState> tx_;
  std::vector<FrameExchange> out_;
};

}  // namespace

LinkReconstruction ReconstructLink(const std::vector<JFrame>& jframes,
                                   const LinkConfig& config) {
  LinkReconstruction result;
  AttemptAssembler attempts(jframes, config, result.stats);
  result.attempts = attempts.Run();
  ExchangeAssembler exchanges(result.attempts, config, result.stats);
  result.exchanges = exchanges.Run();
  return result;
}

}  // namespace jig
