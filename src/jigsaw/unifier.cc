#include "jigsaw/unifier.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace jig {

Unifier::Unifier(TraceSet& traces, const BootstrapResult& bootstrap,
                 UnifierConfig config, JFrameSink sink)
    : traces_(traces), config_(config), sink_(std::move(sink)) {
  const std::size_t n = traces_.size();
  clocks_.reserve(n);
  heads_.resize(n);
  active_.assign(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    clocks_.emplace_back(bootstrap.synced[i] ? bootstrap.offset_us[i] : 0.0,
                         config_.skew_ewma_alpha, config_.min_skew_elapsed,
                         config_.compensate_skew);
    active_[i] = bootstrap.synced[i];
  }
  traces_.RewindAll();
  for (std::size_t i = 0; i < n; ++i) {
    if (active_[i] && !Refill(i)) starved_.push_back(i);
  }
}

bool Unifier::Refill(std::size_t trace) {
  heads_[trace].reset();
  for (;;) {
    auto rec = traces_.at(trace).Next();
    if (!rec) {
      if (!traces_.at(trace).Finalized()) return false;  // live: no data yet
      active_[trace] = false;  // exhausted for good
      return true;
    }
    ++stats_.events_in;
    switch (rec->outcome) {
      case RxOutcome::kOk:
        ++stats_.valid_in;
        break;
      case RxOutcome::kFcsError:
        ++stats_.fcs_error_in;
        break;
      case RxOutcome::kPhyError:
        // PHY errors carry no content to unify; they are trace events only
        // (they count toward Table 1's error fraction).
        ++stats_.phy_error_in;
        continue;
      case RxOutcome::kNotHeard:
        continue;
    }
    Head head;
    head.valid_frame = rec->outcome == RxOutcome::kOk;
    head.unique_reference = head.valid_frame && IsUniqueReference(*rec);
    head.channel = traces_.at(trace).header().channel;
    head.key = MakeContentKey(rec->bytes);
    head.universal = clocks_[trace].ToUniversal(rec->timestamp);
    head.record = std::move(*rec);
    heads_[trace] = std::move(head);
    queue_.insert(QueueEntry{heads_[trace]->universal, trace});
    return true;
  }
}

bool Unifier::RefillStarved() {
  if (starved_.empty()) return true;
  std::vector<std::size_t> still_starved;
  for (std::size_t t : starved_) {
    if (!Refill(t)) still_starved.push_back(t);
  }
  starved_ = std::move(still_starved);
  return starved_.empty();
}

UnifyStep Unifier::Step(std::size_t max_jframes) {
  for (std::size_t i = 0; i < max_jframes; ++i) {
    // The group-formation invariant: every active trace has a head queued.
    if (!RefillStarved()) return UnifyStep::kStarved;
    if (queue_.empty()) return UnifyStep::kExhausted;
    ProcessOneGroup();
  }
  if (!queue_.empty() || !starved_.empty()) return UnifyStep::kMore;
  return UnifyStep::kExhausted;
}

void Unifier::Run() {
  for (;;) {
    switch (Step(1024)) {
      case UnifyStep::kMore:
        break;
      case UnifyStep::kExhausted:
        return;
      case UnifyStep::kStarved:
        throw std::logic_error(
            "Unifier::Run over a live trace source; drive it with Step");
    }
  }
}

void Unifier::ProcessOneGroup() {
  // Pop the earliest instance and everything within the search window.
  const QueueEntry seed_entry = *queue_.begin();
  queue_.erase(queue_.begin());
  std::vector<std::size_t> candidates;  // trace indices, heads_ populated
  candidates.push_back(seed_entry.trace);
  const double window_end =
      seed_entry.universal + static_cast<double>(config_.search_window);
  while (!queue_.empty() && queue_.begin()->universal <= window_end) {
    candidates.push_back(queue_.begin()->trace);
    queue_.erase(queue_.begin());
  }

  // Choose the representative: the first FCS-valid candidate matching the
  // seed's identity; if the seed itself is corrupted, any valid candidate
  // with the same length/rate stands in.
  const Head& seed = *heads_[seed_entry.trace];
  std::size_t rep_trace = seed_entry.trace;
  if (!seed.valid_frame) {
    for (std::size_t t : candidates) {
      const Head& h = *heads_[t];
      if (h.valid_frame && h.channel == seed.channel &&
          h.record.orig_len == seed.record.orig_len &&
          h.record.rate == seed.record.rate) {
        rep_trace = t;
        break;
      }
    }
  }
  const Head& rep = *heads_[rep_trace];

  // Partition candidates into the jframe group vs. reinserted leftovers.
  std::vector<std::size_t> group;
  std::vector<std::size_t> leftovers;
  // Identical bytes can recur quickly for non-unique frames; bound the
  // acceptable spread accordingly.
  const double match_limit =
      rep.unique_reference ? static_cast<double>(config_.search_window)
                           : static_cast<double>(config_.duplicate_window);
  for (std::size_t t : candidates) {
    const Head& h = *heads_[t];
    bool matches = false;
    const double spread = std::abs(h.universal - rep.universal);
    if (&h == &rep) {
      matches = true;
    } else if (h.channel != rep.channel) {
      // One transmission is only ever captured on one channel (1/6/11 are
      // orthogonal); cross-channel instances are distinct transmissions.
      // This is also what makes channel shards independently unifiable.
      matches = false;
    } else if (spread > match_limit) {
      matches = false;
    } else if (h.valid_frame) {
      // Short-circuit on length/rate/digest; confirm with byte comparison
      // (simultaneous distinct transmissions must not unify).
      matches = rep.valid_frame && h.key == rep.key &&
                h.record.rate == rep.record.rate &&
                h.record.bytes == rep.record.bytes;
    } else {
      // Corrupted instance: attach by physical identity (length + rate);
      // contents are unusable (paper: matched on the transmitter field,
      // never used for higher layers).
      matches = h.record.orig_len == rep.record.orig_len &&
                h.record.rate == rep.record.rate;
    }
    (matches ? group : leftovers).push_back(t);
  }
  for (std::size_t t : leftovers) {
    queue_.insert(QueueEntry{heads_[t]->universal, t});
  }

  if (!rep.valid_frame) {
    // No decodable instance anywhere in the window: the event cannot join a
    // jframe.  (Group is the corrupted seed, possibly plus other corrupted
    // instances — drop them all.)
    for (std::size_t t : group) {
      ++stats_.error_events_dropped;
      if (!Refill(t)) starved_.push_back(t);
    }
    return;
  }

  // Median timestamp over valid instances.
  std::vector<double> valid_times;
  for (std::size_t t : group) {
    if (heads_[t]->valid_frame) valid_times.push_back(heads_[t]->universal);
  }
  std::sort(valid_times.begin(), valid_times.end());
  const double median = valid_times[(valid_times.size() - 1) / 2];
  const double dispersion = valid_times.back() - valid_times.front();

  // Resynchronize from unique frames when dispersion warrants it.
  if (rep.unique_reference &&
      dispersion >= static_cast<double>(config_.resync_dispersion_threshold)) {
    for (std::size_t t : group) {
      const Head& h = *heads_[t];
      if (!h.valid_frame) continue;
      clocks_[t].ApplyCorrection(h.record.timestamp, median - h.universal);
    }
    ++stats_.resyncs;
  }

  // Build and emit the jframe.
  JFrame jf;
  jf.timestamp = static_cast<UniversalMicros>(median);
  jf.dispersion = static_cast<Micros>(dispersion + 0.5);
  jf.channel = traces_.at(rep_trace).header().channel;
  jf.rate = rep.record.rate;
  jf.wire_len = rep.record.orig_len;
  jf.digest = rep.key.digest;
  if (auto parsed = ParseCapture(rep.record)) {
    jf.frame = std::move(parsed->frame);
  }
  jf.instances.reserve(group.size());
  for (std::size_t t : group) {
    const Head& h = *heads_[t];
    FrameInstance inst;
    inst.radio = traces_.at(t).header().radio;
    inst.local_timestamp = h.record.timestamp;
    inst.universal_timestamp = static_cast<UniversalMicros>(h.universal);
    inst.rssi_dbm = h.record.rssi_dbm;
    inst.outcome = h.record.outcome;
    jf.instances.push_back(inst);
    if (!h.valid_frame) ++stats_.error_instances_attached;
    ++stats_.events_unified;
  }
  ++stats_.jframes;
  for (std::size_t t : group) {
    if (!Refill(t)) starved_.push_back(t);
  }
  sink_(std::move(jf));
}

}  // namespace jig
