#include "jigsaw/unifier.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace jig {

Unifier::Unifier(TraceSet& traces, const BootstrapResult& bootstrap,
                 UnifierConfig config, JFrameSink sink, JFramePool* pool)
    : traces_(traces), config_(config), sink_(std::move(sink)), pool_(pool) {
  const std::size_t n = traces_.size();
  clocks_.reserve(n);
  heads_.resize(n);
  active_.assign(n, false);
  queue_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    clocks_.emplace_back(bootstrap.synced[i] ? bootstrap.offset_us[i] : 0.0,
                         config_.skew_ewma_alpha, config_.min_skew_elapsed,
                         config_.compensate_skew);
    active_[i] = bootstrap.synced[i];
  }
  traces_.RewindAll();
  for (std::size_t i = 0; i < n; ++i) {
    if (active_[i] && !Refill(i)) starved_.push_back(i);
  }
}

void Unifier::QueuePush(QueueEntry entry) {
  queue_.push_back(entry);
  std::push_heap(queue_.begin(), queue_.end(),
                 [](const QueueEntry& a, const QueueEntry& b) { return b < a; });
}

Unifier::QueueEntry Unifier::QueuePopMin() {
  std::pop_heap(queue_.begin(), queue_.end(),
                [](const QueueEntry& a, const QueueEntry& b) { return b < a; });
  const QueueEntry entry = queue_.back();
  queue_.pop_back();
  return entry;
}

bool Unifier::Refill(std::size_t trace) {
  heads_[trace].reset();
  for (;;) {
    const CaptureRecord* rec = traces_.at(trace).NextRef();
    if (!rec) {
      if (!traces_.at(trace).Finalized()) return false;  // live: no data yet
      active_[trace] = false;  // exhausted for good
      return true;
    }
    ++stats_.events_in;
    switch (rec->outcome) {
      case RxOutcome::kOk:
        ++stats_.valid_in;
        break;
      case RxOutcome::kFcsError:
        ++stats_.fcs_error_in;
        break;
      case RxOutcome::kPhyError:
        // PHY errors carry no content to unify; they are trace events only
        // (they count toward Table 1's error fraction).
        ++stats_.phy_error_in;
        continue;
      case RxOutcome::kNotHeard:
        continue;
    }
    Head head;
    head.record = rec;
    head.valid_frame = rec->outcome == RxOutcome::kOk;
    head.unique_reference = head.valid_frame && IsUniqueReference(*rec);
    head.channel = traces_.at(trace).header().channel;
    head.key = MakeContentKey(rec->bytes);
    head.universal = clocks_[trace].ToUniversal(rec->timestamp);
    heads_[trace] = head;
    QueuePush(QueueEntry{head.universal, trace});
    return true;
  }
}

bool Unifier::RefillStarved() {
  if (starved_.empty()) return true;
  std::vector<std::size_t> still_starved;
  for (std::size_t t : starved_) {
    if (!Refill(t)) still_starved.push_back(t);
  }
  starved_ = std::move(still_starved);
  return starved_.empty();
}

UnifyStep Unifier::Step(std::size_t max_jframes) {
  for (std::size_t i = 0; i < max_jframes; ++i) {
    // The group-formation invariant: every active trace has a head queued.
    if (!RefillStarved()) return UnifyStep::kStarved;
    if (queue_.empty()) return UnifyStep::kExhausted;
    ProcessOneGroup();
  }
  if (!queue_.empty() || !starved_.empty()) return UnifyStep::kMore;
  return UnifyStep::kExhausted;
}

void Unifier::Run() {
  for (;;) {
    switch (Step(1024)) {
      case UnifyStep::kMore:
        break;
      case UnifyStep::kExhausted:
        return;
      case UnifyStep::kStarved:
        throw std::logic_error(
            "Unifier::Run over a live trace source; drive it with Step");
    }
  }
}

void Unifier::ProcessOneGroup() {
  // Pop the earliest instance and everything within the search window.
  const QueueEntry seed_entry = QueuePopMin();
  candidates_.clear();
  candidates_.push_back(seed_entry.trace);
  const double window_end =
      seed_entry.universal + static_cast<double>(config_.search_window);
  while (!queue_.empty() && queue_.front().universal <= window_end) {
    candidates_.push_back(QueuePopMin().trace);
  }

  // Choose the representative: the first FCS-valid candidate matching the
  // seed's identity; if the seed itself is corrupted, any valid candidate
  // with the same length/rate stands in.
  const Head& seed = *heads_[seed_entry.trace];
  std::size_t rep_trace = seed_entry.trace;
  if (!seed.valid_frame) {
    for (std::size_t t : candidates_) {
      const Head& h = *heads_[t];
      if (h.valid_frame && h.channel == seed.channel &&
          h.record->orig_len == seed.record->orig_len &&
          h.record->rate == seed.record->rate) {
        rep_trace = t;
        break;
      }
    }
  }
  const Head& rep = *heads_[rep_trace];

  // Partition candidates into the jframe group vs. reinserted leftovers.
  group_.clear();
  leftovers_.clear();
  // Identical bytes can recur quickly for non-unique frames; bound the
  // acceptable spread accordingly.
  const double match_limit =
      rep.unique_reference ? static_cast<double>(config_.search_window)
                           : static_cast<double>(config_.duplicate_window);
  for (std::size_t t : candidates_) {
    const Head& h = *heads_[t];
    bool matches = false;
    const double spread = std::abs(h.universal - rep.universal);
    if (&h == &rep) {
      matches = true;
    } else if (h.channel != rep.channel) {
      // One transmission is only ever captured on one channel (1/6/11 are
      // orthogonal); cross-channel instances are distinct transmissions.
      // This is also what makes channel shards independently unifiable.
      matches = false;
    } else if (spread > match_limit) {
      matches = false;
    } else if (h.valid_frame) {
      // Short-circuit on length/rate/digest; confirm with byte comparison
      // (simultaneous distinct transmissions must not unify).
      matches = rep.valid_frame && h.key == rep.key &&
                h.record->rate == rep.record->rate &&
                h.record->bytes == rep.record->bytes;
    } else {
      // Corrupted instance: attach by physical identity (length + rate);
      // contents are unusable (paper: matched on the transmitter field,
      // never used for higher layers).
      matches = h.record->orig_len == rep.record->orig_len &&
                h.record->rate == rep.record->rate;
    }
    (matches ? group_ : leftovers_).push_back(t);
  }
  for (std::size_t t : leftovers_) {
    QueuePush(QueueEntry{heads_[t]->universal, t});
  }

  if (!rep.valid_frame) {
    // No decodable instance anywhere in the window: the event cannot join a
    // jframe.  (Group is the corrupted seed, possibly plus other corrupted
    // instances — drop them all.)
    for (std::size_t t : group_) {
      ++stats_.error_events_dropped;
      if (!Refill(t)) starved_.push_back(t);
    }
    return;
  }

  // Median timestamp over valid instances.
  valid_times_.clear();
  for (std::size_t t : group_) {
    if (heads_[t]->valid_frame) valid_times_.push_back(heads_[t]->universal);
  }
  std::sort(valid_times_.begin(), valid_times_.end());
  const double median = valid_times_[(valid_times_.size() - 1) / 2];
  const double dispersion = valid_times_.back() - valid_times_.front();

  // Resynchronize from unique frames when dispersion warrants it.
  if (rep.unique_reference &&
      dispersion >= static_cast<double>(config_.resync_dispersion_threshold)) {
    for (std::size_t t : group_) {
      const Head& h = *heads_[t];
      if (!h.valid_frame) continue;
      clocks_[t].ApplyCorrection(h.record->timestamp, median - h.universal);
    }
    ++stats_.resyncs;
  }

  // Build and emit the jframe.
  JFrame jf = pool_ ? pool_->Acquire() : JFrame{};
  jf.timestamp = static_cast<UniversalMicros>(median);
  jf.dispersion = static_cast<Micros>(dispersion + 0.5);
  jf.channel = traces_.at(rep_trace).header().channel;
  jf.rate = rep.record->rate;
  jf.wire_len = rep.record->orig_len;
  jf.digest = rep.key.digest;
  if (ParseCaptureInto(*rep.record, parse_scratch_)) {
    // Swap rather than move so the pooled body's capacity keeps circulating.
    std::swap(jf.frame, parse_scratch_.frame);
  }
  jf.instances.reserve(group_.size());
  for (std::size_t t : group_) {
    const Head& h = *heads_[t];
    FrameInstance inst;
    inst.radio = traces_.at(t).header().radio;
    inst.local_timestamp = h.record->timestamp;
    inst.universal_timestamp = static_cast<UniversalMicros>(h.universal);
    inst.rssi_dbm = h.record->rssi_dbm;
    inst.outcome = h.record->outcome;
    jf.instances.push_back(inst);
    if (!h.valid_frame) ++stats_.error_instances_attached;
    ++stats_.events_unified;
  }
  ++stats_.jframes;
  // Refill after the jframe is built: advancing a trace invalidates the
  // borrowed record pointers the build above just read.
  for (std::size_t t : group_) {
    if (!Refill(t)) starved_.push_back(t);
  }
  sink_(std::move(jf));
}

}  // namespace jig
