#include "jigsaw/pipeline.h"

#include <algorithm>
#include <map>

namespace jig {
namespace {

// Min-buffer that releases jframes once the emit frontier passes them.
class ReorderBuffer {
 public:
  ReorderBuffer(Micros horizon, std::function<void(JFrame&&)> sink)
      : horizon_(horizon), sink_(std::move(sink)) {}

  void Push(JFrame&& jf) {
    frontier_ = std::max(frontier_, jf.timestamp);
    buffer_.emplace(jf.timestamp, std::move(jf));
    Drain(frontier_ - horizon_);
  }

  void Flush() { Drain(std::numeric_limits<UniversalMicros>::max()); }

 private:
  void Drain(UniversalMicros up_to) {
    while (!buffer_.empty() && buffer_.begin()->first <= up_to) {
      sink_(std::move(buffer_.begin()->second));
      buffer_.erase(buffer_.begin());
    }
  }

  Micros horizon_;
  std::function<void(JFrame&&)> sink_;
  std::multimap<UniversalMicros, JFrame> buffer_;
  UniversalMicros frontier_ = std::numeric_limits<UniversalMicros>::min();
};

}  // namespace

MergeStreamStats MergeTracesStreaming(TraceSet& traces,
                                      const MergeConfig& config,
                                      std::function<void(JFrame&&)> sink) {
  MergeStreamStats out;
  out.bootstrap = BootstrapSynchronize(traces, config.bootstrap);
  ReorderBuffer reorder(std::max(config.reorder_horizon,
                                 config.unifier.search_window * 2),
                        std::move(sink));
  Unifier unifier(traces, out.bootstrap, config.unifier,
                  [&reorder](JFrame&& jf) { reorder.Push(std::move(jf)); });
  unifier.Run();
  reorder.Flush();
  out.stats = unifier.stats();
  return out;
}

MergeResult MergeTraces(TraceSet& traces, const MergeConfig& config) {
  MergeResult result;
  auto stream = MergeTracesStreaming(
      traces, config,
      [&result](JFrame&& jf) { result.jframes.push_back(std::move(jf)); });
  result.bootstrap = std::move(stream.bootstrap);
  result.stats = stream.stats;
  return result;
}

}  // namespace jig
