#include "jigsaw/pipeline.h"

#include "jigsaw/spill.h"
#include "obs/stage_timer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace jig {
namespace {

// The total order both merge paths emit: timestamp, then channel.  Distinct
// transmissions on one channel never tie below this key in practice, and
// when they do (identical integer microsecond), unifier emission order is
// preserved — identically in the single-threaded buffer (stable multimap)
// and in the sharded k-way merge (per-shard FIFO).
using OrderKey = std::pair<UniversalMicros, std::uint8_t>;

OrderKey KeyOf(const JFrame& jf) {
  return {jf.timestamp, static_cast<std::uint8_t>(jf.channel)};
}

// Min-buffer that releases jframes once the emit frontier passes them.
//
// A binary heap over a flat vector, not the stable multimap it used to be:
// the map spent the hot path on node allocation.  An insertion sequence
// number breaks ties so equal keys still drain in FIFO order — exactly the
// multimap's upper-bound insertion behavior, which the byte-identity
// contract depends on.
class ReorderBuffer {
 public:
  ReorderBuffer(Micros horizon, std::function<void(JFrame&&)> sink)
      : horizon_(horizon), sink_(std::move(sink)) {}

  void Push(JFrame&& jf) {
    frontier_ = std::max(frontier_, jf.timestamp);
    buffer_.push_back(Entry{KeyOf(jf), next_seq_++, std::move(jf)});
    std::push_heap(buffer_.begin(), buffer_.end(), Later);
    Drain(frontier_ - horizon_);
  }

  void Flush() { Drain(std::numeric_limits<UniversalMicros>::max()); }

  std::size_t size() const { return buffer_.size(); }

 private:
  struct Entry {
    OrderKey key;
    std::uint64_t seq;  // insertion order: FIFO among equal keys
    JFrame jf;
  };

  // Heap comparator ("comes later"): the root is the least (key, seq).
  static bool Later(const Entry& a, const Entry& b) {
    return std::tie(b.key, b.seq) < std::tie(a.key, a.seq);
  }

  void Drain(UniversalMicros up_to) {
    while (!buffer_.empty() && buffer_.front().key.first <= up_to) {
      std::pop_heap(buffer_.begin(), buffer_.end(), Later);
      sink_(std::move(buffer_.back().jf));
      buffer_.pop_back();
    }
  }

  Micros horizon_;
  std::function<void(JFrame&&)> sink_;
  std::vector<Entry> buffer_;  // min-heap under Later
  std::uint64_t next_seq_ = 0;
  UniversalMicros frontier_ = std::numeric_limits<UniversalMicros>::min();
};

Micros EffectiveHorizon(const MergeConfig& config) {
  return std::max(config.reorder_horizon, config.unifier.search_window * 2);
}

constexpr std::size_t kUnifyStep = 1024;  // groups per scheduling slice

unsigned ResolveWorkers(unsigned threads, std::size_t shard_count) {
  unsigned n = threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  return static_cast<unsigned>(
      std::min<std::size_t>(n, std::max<std::size_t>(shard_count, 1)));
}

struct PipelineMetrics {
  obs::Counter& shard_events = obs::MetricRegistry::Global().GetCounter(
      "jig_shard_events_total",
      "Capture events consumed by unifiers (all shards and single mode)");
  obs::Counter& shard_jframes = obs::MetricRegistry::Global().GetCounter(
      "jig_shard_jframes_total",
      "JFrames produced by unifiers (all shards and single mode)");
  obs::Counter& rounds = obs::MetricRegistry::Global().GetCounter(
      "jig_shard_rounds_total", "Sharded merge rounds executed");
  obs::Gauge& queue_peak = obs::MetricRegistry::Global().GetGauge(
      "jig_shard_queue_peak",
      "High-watermark of any single shard queue depth");
  obs::Histogram& round_wait_us = obs::MetricRegistry::Global().GetHistogram(
      "jig_shard_round_wait_us", obs::LatencyBucketsUs(),
      "Poll-thread wait at the round barrier (pool mode only)");
  obs::Counter& emitted = obs::MetricRegistry::Global().GetCounter(
      "jig_merge_jframes_emitted_total",
      "JFrames emitted by the k-way merge (or single-mode reorder)");
  obs::Histogram& emit_lag_us = obs::MetricRegistry::Global().GetHistogram(
      "jig_merge_emit_lag_us", obs::LatencyBucketsUs(),
      "Capture-time distance between the newest unified jframe and each "
      "emission — the live-lag metric");
  obs::Counter& polls = obs::MetricRegistry::Global().GetCounter(
      "jig_merge_polls_total", "MergeSession::Poll calls");
  obs::Gauge& arena_pooled = obs::MetricRegistry::Global().GetGauge(
      "jig_arena_jframes_pooled",
      "JFrame carcasses currently parked in merge arena pools");
  obs::Counter& arena_recycled = obs::MetricRegistry::Global().GetCounter(
      "jig_arena_jframes_recycled_total",
      "JFrame carcasses recycled through merge arena pools");
  obs::Counter& pin_failures = obs::MetricRegistry::Global().GetCounter(
      "jig_pipeline_pin_failures_total",
      "Worker CPU-pinning attempts the kernel rejected (fell back to "
      "normal scheduling)");
};

PipelineMetrics& Metrics() {
  static PipelineMetrics* m = new PipelineMetrics();
  return *m;
}

}  // namespace

void ValidateMergeConfig(const MergeConfig& config) {
  if (config.unifier.search_window <= 0) {
    throw std::invalid_argument("MergeConfig: search_window must be > 0");
  }
  if (config.reorder_horizon <= config.unifier.search_window) {
    throw std::invalid_argument(
        "MergeConfig: reorder_horizon (" +
        std::to_string(config.reorder_horizon) +
        " us) must exceed unifier.search_window (" +
        std::to_string(config.unifier.search_window) +
        " us); a shorter horizon releases jframes before the group that "
        "precedes them can still form, producing an out-of-order stream");
  }
  if (!config.spill_dir.empty()) {
    if (config.spill_threshold == 0) {
      throw std::invalid_argument(
          "MergeConfig: spill_threshold must be > 0 when spill_dir is set");
    }
    if (config.spill_threshold > kMergeQueueWatermark) {
      throw std::invalid_argument(
          "MergeConfig: spill_threshold (" +
          std::to_string(config.spill_threshold) +
          ") exceeds kMergeQueueWatermark (" +
          std::to_string(kMergeQueueWatermark) +
          "); the queue throttles at the watermark, so a higher threshold "
          "could never engage the spill tier");
    }
  }
}

// ---------------------------------------------------------------------------
// MergeSession.
//
// Sharded mode runs in rounds: the worker pool steps every shard's unifier
// (each bounded by the queue watermark), a barrier joins the round, then
// the Poll() thread k-way merges the shard queues as far as every shard has
// either a head or a final end-of-stream — the same gating rule as the
// batch k-way merge, so the emitted order is byte-identical.  Between
// rounds the workers are idle, which is what makes the session resumable:
// Poll() simply stops scheduling rounds once no shard can advance.

struct MergeSession::Impl {
  struct LiveShard {
    std::deque<JFrame> queue;  // ordered output awaiting the k-way merge
    std::unique_ptr<ReorderBuffer> reorder;
    std::unique_ptr<Unifier> unifier;
    bool exhausted = false;  // unifier done and reorder flushed
    // Spill tier (null when MergeConfig::spill_dir is empty).  While
    // `spilling` is latched, every un-replayed spilled jframe precedes
    // everything in `queue`, so the consumer replays the spill to
    // exhaustion before touching the queue again — that invariant is the
    // whole ordering argument for spill-mode byte-identity.
    std::unique_ptr<SpillQueue> spill;
    bool spilling = false;
    // Consumer-side staging for the k-way merge's peek (Pop() is
    // destructive); counts as retained.
    std::optional<JFrame> spill_head;
    // Arena (MergeConfig::use_arena): the unifier acquires, the emit path
    // and spill drain recycle.  Worker-phase and merge-phase accesses are
    // serialized by the round barrier — see JFramePool.
    JFramePool pool;
  };

  TraceSet& traces;
  MergeConfig config;
  std::function<void(JFrame&&)> sink;

  bool bootstrapped = false;
  bool done = false;
  bool failed = false;
  std::vector<bool> window_filled;  // per-trace bootstrap readiness cache
  // Per-trace bootstrap window end (NTP frame), latched off the first
  // record; the readiness scan keeps each stream's cursor across polls so
  // a poll only reads records that arrived since the last one.
  std::vector<std::optional<std::int64_t>> window_end;
  BootstrapResult bootstrap;
  UnifyStats final_stats;  // sharded stats, latched before teardown

  // Single-threaded (legacy-exact) path.
  bool single_mode = false;
  std::unique_ptr<ReorderBuffer> single_reorder;
  std::unique_ptr<Unifier> single_unifier;
  JFramePool single_pool;
  std::uint64_t arena_recycled_published = 0;  // counter delta tracking

  // Sharded path.
  std::vector<ChannelShard> shards;
  bool partitioned = false;
  std::vector<std::unique_ptr<LiveShard>> live;
  unsigned workers = 1;
  SpillBudget spill_budget;      // shared across shards (max_spill_bytes)
  std::uint64_t final_spilled = 0;  // lifetime total, latched at teardown

  // Round-barrier worker pool (only when workers > 1).
  std::vector<std::thread> pool;
  std::mutex pool_mu;
  std::condition_variable start_cv;
  std::condition_variable done_cv;
  std::uint64_t generation = 0;
  std::size_t remaining = 0;
  bool shutdown = false;
  bool round_progress = false;
  std::vector<std::exception_ptr> round_errors;

  std::uint64_t emitted = 0;
  std::size_t peak_retained = 0;

  // Live-lag frontiers, universal-time domain.  capture_frontier is the
  // max timestamp any unifier has pushed into a reorder buffer (atomic
  // max — shard workers race); emit_frontier is the last emitted jframe's
  // timestamp (Poll thread only; atomic so live_lag_us() can read it from
  // another thread).  Their difference is how far the merge's output
  // trails the freshest unified capture data.
  static constexpr std::int64_t kNoFrontier =
      std::numeric_limits<std::int64_t>::min();
  std::atomic<std::int64_t> capture_frontier{kNoFrontier};
  std::atomic<std::int64_t> emit_frontier{kNoFrontier};

  void NoteCaptured(UniversalMicros ts) {
    std::int64_t seen = capture_frontier.load(std::memory_order_relaxed);
    while (ts > seen && !capture_frontier.compare_exchange_weak(
                            seen, ts, std::memory_order_relaxed)) {
    }
  }

  // Every emission — single mode and k-way merge — funnels through here so
  // the emitted counter, the emit frontier and the lag histogram cannot
  // drift apart.
  void Emit(JFrame&& jf) {
    ++emitted;
    emit_frontier.store(jf.timestamp, std::memory_order_relaxed);
    if (obs::Enabled()) {
      PipelineMetrics& m = Metrics();
      m.emitted.Add(1);
      const std::int64_t cap =
          capture_frontier.load(std::memory_order_relaxed);
      if (cap != kNoFrontier) {
        m.emit_lag_us.Observe(ClampedLagUs(cap, jf.timestamp));
      }
    }
    sink(std::move(jf));
  }

  std::int64_t LiveLagUs() const {
    const std::int64_t cap =
        capture_frontier.load(std::memory_order_relaxed);
    const std::int64_t emit = emit_frontier.load(std::memory_order_relaxed);
    if (cap == kNoFrontier || emit == kNoFrontier) return 0;
    return ClampedLagUs(cap, emit);
  }

  Impl(TraceSet& t, const MergeConfig& c, std::function<void(JFrame&&)> s)
      : traces(t), config(c), sink(std::move(s)) {}

  ~Impl() {
    StopPool();
    // Destroy the unifiers/reorder buffers before handing the shard streams
    // back (they hold references into the shard trace sets).
    live.clear();
    single_unifier.reset();
    single_reorder.reset();
    Reassemble();
  }

  void Reassemble() {
    if (!partitioned) return;
    partitioned = false;
    traces.AdoptShards(std::move(shards));
    shards.clear();
  }

  // ---- bootstrap phase ----------------------------------------------------

  // Has trace i's bootstrap window filled?  Mirrors the window scan of
  // BootstrapSynchronize: the window is anchored at the trace's own first
  // record, so it has filled once a record at/after window-end exists — or
  // once the trace finalized with less than a window of data.  The stream
  // cursor persists across polls (data only ever grows), so each poll
  // reads only what arrived since the last; BootstrapSynchronize and the
  // unifiers rewind everything afterwards anyway.
  bool ScanBootstrapReady(std::size_t i) {
    RecordStream& stream = traces.at(i);
    const std::int64_t ntp0 = stream.header().ntp_utc_of_local_zero_us;
    if (!window_end[i]) {
      stream.Rewind();
      const CaptureRecord* first = stream.NextRef();
      if (first == nullptr) return stream.Finalized();
      window_end[i] = ntp0 + first->timestamp + config.bootstrap.window;
      if (ntp0 + first->timestamp >= *window_end[i]) return true;
    }
    while (const CaptureRecord* rec = stream.NextRef()) {
      if (ntp0 + rec->timestamp >= *window_end[i]) return true;
    }
    return stream.Finalized();
  }

  bool TryBootstrap() {
    if (window_filled.empty()) {
      window_filled.assign(traces.size(), false);
      window_end.assign(traces.size(), std::nullopt);
    }
    bool all = true;  // an empty set falls through: bootstrap throws
    for (std::size_t i = 0; i < traces.size(); ++i) {
      if (!window_filled[i]) window_filled[i] = ScanBootstrapReady(i);
      all = all && window_filled[i];
    }
    if (!all) return false;
    // Bootstrap is always global: reference sets bridge channels through
    // the monitors' shared capture clocks, which a per-shard pass cannot
    // see.  Traces are re-read from offset zero — the "late bootstrap"
    // path: nothing was buffered while waiting, the files are the buffer.
    bootstrap = BootstrapSynchronize(traces, config.bootstrap);
    SetupMerge();
    bootstrapped = true;
    return true;
  }

  void SetupMerge() {
    if (config.threads == 1 || traces.size() <= 1) {
      single_mode = true;
      // After the user sink returns, whatever buffers it did not steal ride
      // the carcass back into the pool.
      single_reorder = std::make_unique<ReorderBuffer>(
          EffectiveHorizon(config), [this](JFrame&& jf) {
            Emit(std::move(jf));
            if (config.use_arena) single_pool.Recycle(std::move(jf));
          });
      ReorderBuffer* reorder = single_reorder.get();
      single_unifier = std::make_unique<Unifier>(
          traces, bootstrap, config.unifier,
          [this, reorder](JFrame&& jf) {
            NoteCaptured(jf.timestamp);
            reorder->Push(std::move(jf));
          },
          config.use_arena ? &single_pool : nullptr);
      return;
    }
    shards = traces.PartitionByChannel();
    partitioned = true;
    spill_budget.limit = config.max_spill_bytes;
    live.reserve(shards.size());
    for (std::size_t s = 0; s < shards.size(); ++s) {
      auto ls = std::make_unique<LiveShard>();
      std::deque<JFrame>* queue = &ls->queue;
      ls->reorder = std::make_unique<ReorderBuffer>(
          EffectiveHorizon(config),
          [queue](JFrame&& jf) { queue->push_back(std::move(jf)); });
      ReorderBuffer* reorder = ls->reorder.get();
      ls->unifier = std::make_unique<Unifier>(
          shards[s].traces, bootstrap.Slice(shards[s].source_index),
          config.unifier,
          [this, reorder](JFrame&& jf) {
            NoteCaptured(jf.timestamp);
            reorder->Push(std::move(jf));
          },
          config.use_arena ? &ls->pool : nullptr);
      if (!config.spill_dir.empty()) {
        ls->spill = std::make_unique<SpillQueue>(
            config.spill_dir,
            static_cast<std::uint8_t>(shards[s].channel), &spill_budget);
      }
      live.push_back(std::move(ls));
    }
    workers = ResolveWorkers(config.threads, shards.size());
    if (workers > 1) StartPool();
  }

  // ---- worker rounds ------------------------------------------------------

  // Drains the shard queue into its spill tier when engaged (already
  // spilling, or the queue crossed the threshold).  Spilling stays latched
  // until the consumer replays the spill dry — while latched, everything
  // in the queue is newer than everything spilled, so draining front-first
  // preserves FIFO order.  Push refusal (budget exhausted) leaves the rest
  // queued: the shard degrades to plain watermark backpressure until
  // replay reclaims segments.  Returns true if anything moved to disk.
  bool MaybeSpill(LiveShard& ls) {
    if (ls.spill == nullptr) return false;
    if (!ls.spilling && ls.queue.size() < config.spill_threshold) {
      return false;
    }
    ls.spilling = true;
    bool moved = false;
    while (!ls.queue.empty() && ls.spill->Push(ls.queue.front())) {
      // Push serialized without consuming; recycle the carcass (worker
      // thread, this shard's pool — the barrier orders it vs. emit).
      if (config.use_arena) ls.pool.Recycle(std::move(ls.queue.front()));
      ls.queue.pop_front();
      moved = true;
    }
    if (moved) ls.spill->Sync();  // publish before the round barrier
    return moved;
  }

  // Steps one shard until it starves, exhausts, or its queue reaches the
  // watermark (with the spill tier engaged, the queue drains to disk
  // instead, so only budget exhaustion still hits the watermark).  Returns
  // true if anything was consumed, produced or spilled.
  //
  // The engage decision runs once, at round entry: a queue still at or
  // past the threshold *here* is what the consumer's last drain pass
  // could not take — actual lag.  The transient fill while this round's
  // unifier runs is not lag (the consumer never gets to run mid-round),
  // so it must not engage the tier: otherwise a plain batch merge with a
  // spill_dir would stage its entire stream through disk in round one.
  bool StepShard(LiveShard& ls) {
    if (ls.exhausted) return false;
    // Metrics ride the stats deltas of the whole call — one pair of
    // counter adds per StepShard, nothing per event.
    const std::uint64_t events_at_entry = ls.unifier->stats().events_in;
    const std::uint64_t jframes_at_entry = ls.unifier->stats().jframes;
    bool progress = MaybeSpill(ls);
    for (;;) {
      if (ls.spilling) progress = MaybeSpill(ls) || progress;
      if (ls.queue.size() >= kMergeQueueWatermark) break;
      const std::uint64_t before = ls.unifier->stats().events_in;
      const std::size_t queued = ls.queue.size();
      const UnifyStep step = ls.unifier->Step(kUnifyStep);
      progress = progress || ls.unifier->stats().events_in != before ||
                 ls.queue.size() != queued;
      if (step == UnifyStep::kStarved) break;
      if (step == UnifyStep::kExhausted) {
        ls.reorder->Flush();
        ls.exhausted = true;
        progress = true;
        break;
      }
    }
    if (ls.spilling) progress = MaybeSpill(ls) || progress;
    if (obs::Enabled()) {
      PipelineMetrics& m = Metrics();
      const UnifyStats& after = ls.unifier->stats();
      m.shard_events.Add(after.events_in - events_at_entry);
      m.shard_jframes.Add(after.jframes - jframes_at_entry);
      m.queue_peak.UpdateMax(static_cast<std::int64_t>(ls.queue.size()));
    }
    return progress;
  }

  bool WorkerRound(unsigned w) {
    bool progress = false;
    for (std::size_t s = w; s < live.size(); s += workers) {
      progress = StepShard(*live[s]) || progress;
    }
    return progress;
  }

  // Best-effort round-robin CPU pinning for shard workers (Linux only;
  // failure — a restricted affinity mask, fewer CPUs than advertised —
  // falls back to normal scheduling).  Scheduling only: the round barrier
  // fixes the merge order wherever the workers run.
  void MaybePin(std::thread& t, unsigned index) {
#if defined(__linux__)
    if (!config.pin_threads) return;
    unsigned ncpu = std::thread::hardware_concurrency();
    if (ncpu == 0) ncpu = 1;
    cpu_set_t cpus;
    CPU_ZERO(&cpus);
    CPU_SET(index % ncpu, &cpus);
    // "Silently a no-op" (pipeline.h) means the pipeline keeps working, not
    // that the failure is invisible: count rejections so a deployment that
    // thinks it pinned (cgroup cpuset, restricted mask) can see it did not.
    if (pthread_setaffinity_np(t.native_handle(), sizeof(cpus), &cpus) != 0) {
      if (obs::Enabled()) Metrics().pin_failures.Add(1);
    }
#else
    (void)t;
    (void)index;
#endif
  }

  void StartPool() {
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([this, w] {
        std::uint64_t seen = 0;
        for (;;) {
          std::unique_lock lk(pool_mu);
          start_cv.wait(lk,
                        [&] { return shutdown || generation != seen; });
          if (shutdown) return;
          seen = generation;
          lk.unlock();
          bool progress = false;
          std::exception_ptr error;
          try {
            progress = WorkerRound(w);
          } catch (...) {
            error = std::current_exception();
          }
          lk.lock();
          round_progress = round_progress || progress;
          if (error) round_errors.push_back(error);
          if (--remaining == 0) {
            lk.unlock();
            done_cv.notify_all();
          }
        }
      });
      MaybePin(pool.back(), w);
    }
  }

  void StopPool() {
    if (pool.empty()) return;
    {
      std::lock_guard lk(pool_mu);
      shutdown = true;
    }
    start_cv.notify_all();
    for (auto& t : pool) t.join();
    pool.clear();
  }

  // Runs one round over every shard; returns whether any shard progressed.
  bool RunRound() {
    Metrics().rounds.Add(1);
    if (pool.empty()) {
      bool progress = false;
      for (auto& ls : live) progress = StepShard(*ls) || progress;
      return progress;
    }
    std::unique_lock lk(pool_mu);
    round_progress = false;
    remaining = pool.size();
    ++generation;
    start_cv.notify_all();
    {
      obs::StageTimer wait_timer(Metrics().round_wait_us);
      done_cv.wait(lk, [&] { return remaining == 0; });
    }
    if (!round_errors.empty()) {
      const auto error = round_errors.front();
      round_errors.clear();
      std::rethrow_exception(error);
    }
    return round_progress;
  }

  // ---- consumer merge -----------------------------------------------------

  // The shard's next jframe in FIFO order, or nullptr when it has nothing
  // consumable right now.  The spill tier is always replayed before the
  // in-memory queue; once it runs dry the shard drops back to in-memory
  // hand-off (un-latching `spilling` so the worker stops draining).
  const JFrame* ShardHead(LiveShard& ls) {
    if (ls.spill != nullptr) {
      if (!ls.spill_head) ls.spill_head = ls.spill->Pop();
      if (ls.spill_head) return &*ls.spill_head;
      if (!ls.spill->Empty()) {
        // Spilled but not yet published — only possible mid-round, which
        // the barrier excludes; treat as not consumable out of caution.
        return nullptr;
      }
      ls.spilling = false;  // replayed dry: resume in-memory hand-off
      // Reclaim the drained open segment too, releasing its budget bytes
      // — otherwise one long lag episode could pin the whole
      // max_spill_bytes budget for the rest of the session.
      ls.spill->ReclaimDrained();
    }
    return ls.queue.empty() ? nullptr : &ls.queue.front();
  }

  // Pops the jframe ShardHead returned.
  JFrame TakeShardHead(LiveShard& ls) {
    if (ls.spill_head) {
      JFrame jf = std::move(*ls.spill_head);
      ls.spill_head.reset();
      return jf;
    }
    JFrame jf = std::move(ls.queue.front());
    ls.queue.pop_front();
    return jf;
  }

  // Emits the globally least OrderKey among the shard heads, exactly like
  // the batch k-way merge: correctness needs a head (or final
  // end-of-stream) from every shard before each emission, so a starved
  // shard with nothing consumable gates the stream — the watermark stall.
  std::size_t MergeQueues() {
    std::size_t merged = 0;
    const std::size_t n = live.size();
    for (;;) {
      std::size_t best = n;
      const JFrame* best_head = nullptr;
      bool gated = false;
      for (std::size_t i = 0; i < n; ++i) {
        LiveShard& ls = *live[i];
        const JFrame* head = ShardHead(ls);
        if (head == nullptr) {
          if (!ls.exhausted) {
            gated = true;
            break;
          }
          continue;
        }
        if (best == n || KeyOf(*head) < KeyOf(*best_head)) {
          best = i;
          best_head = head;
        }
      }
      if (gated || best == n) return merged;
      JFrame jf = TakeShardHead(*live[best]);
      ++merged;
      Emit(std::move(jf));  // user code runs on the Poll() thread
      // Recycle what the sink left behind into the source shard's pool
      // (merge phase: the barrier orders this vs. that shard's worker).
      if (config.use_arena) live[best]->pool.Recycle(std::move(jf));
    }
  }

  std::size_t Retained() const {
    if (single_mode) {
      return single_reorder != nullptr ? single_reorder->size() : 0;
    }
    std::size_t total = 0;
    for (const auto& ls : live) {
      // Spilled jframes live on disk, not in memory — only the staged
      // consumer-side head counts here.  That asymmetry is the point of
      // the tier: lagging by a million jframes retains one.
      total += ls->queue.size() + ls->reorder->size() +
               (ls->spill_head ? 1 : 0);
    }
    return total;
  }

  std::uint64_t Spilled() const {
    std::uint64_t total = final_spilled;
    for (const auto& ls : live) {
      if (ls->spill != nullptr) total += ls->spill->spilled_jframes();
    }
    return total;
  }

  std::uint64_t SpillBytesOnDisk() const {
    std::uint64_t total = 0;
    for (const auto& ls : live) {
      if (ls->spill != nullptr) total += ls->spill->bytes_on_disk();
    }
    return total;
  }

  void ObserveRetention() {
    peak_retained = std::max(peak_retained, Retained());
    PublishArenaMetrics();
  }

  // Folds the pools' own counters into the registry (gauge for parked
  // carcasses, delta-tracked counter for lifetime recycles).  Runs on the
  // Poll() thread between rounds, so reading the shard pools is safe.
  void PublishArenaMetrics() {
    if (!obs::Enabled() || !config.use_arena) return;
    std::uint64_t pooled = 0;
    std::uint64_t recycled = 0;
    if (single_mode) {
      pooled = single_pool.pooled();
      recycled = single_pool.recycled_total();
    } else {
      for (const auto& ls : live) {
        pooled += ls->pool.pooled();
        recycled += ls->pool.recycled_total();
      }
    }
    PipelineMetrics& m = Metrics();
    m.arena_pooled.Set(static_cast<std::int64_t>(pooled));
    if (recycled > arena_recycled_published) {
      m.arena_recycled.Add(recycled - arena_recycled_published);
      arena_recycled_published = recycled;
    }
  }

  // ---- polling ------------------------------------------------------------

  Status PollSingle() {
    for (;;) {
      const UnifyStep step = single_unifier->Step(kUnifyStep);
      ObserveRetention();
      if (step == UnifyStep::kStarved) return Status::kStarved;
      if (step == UnifyStep::kExhausted) {
        single_reorder->Flush();
        done = true;
        return Status::kDone;
      }
    }
  }

  Status PollInner() {
    Metrics().polls.Add(1);
    if (done) return Status::kDone;
    if (!bootstrapped && !TryBootstrap()) return Status::kBootstrapping;
    if (single_mode) return PollSingle();
    for (;;) {
      const bool stepped = RunRound();
      ObserveRetention();
      const bool merged = MergeQueues() > 0;
      if (!stepped && !merged) break;
    }
    for (const auto& ls : live) {
      if (!ls->exhausted || !ls->queue.empty() || ls->spill_head ||
          (ls->spill != nullptr && !ls->spill->Empty())) {
        return Status::kStarved;
      }
    }
    done = true;
    // Tear the shard machinery down now, not at destruction: the contract
    // hands the streams back to the caller's TraceSet as soon as the
    // session completes, so the set is reusable while the session (and
    // its stats) live on.  Dropping the shards also removes any remaining
    // spill segments (all replayed by now — SpillQueue's destructor only
    // cleans up files).
    StopPool();
    PublishArenaMetrics();  // the pools die with `live` below
    final_stats = Stats();
    final_spilled = Spilled();
    live.clear();  // unifiers reference the shard trace sets — drop first
    Reassemble();
    return Status::kDone;
  }

  UnifyStats Stats() const {
    if (single_unifier != nullptr) return single_unifier->stats();
    UnifyStats total = final_stats;
    for (const auto& ls : live) total += ls->unifier->stats();
    return total;
  }
};

MergeSession::MergeSession(TraceSet& traces, const MergeConfig& config,
                           std::function<void(JFrame&&)> sink)
    : impl_(std::make_unique<Impl>(traces, config, std::move(sink))) {
  ValidateMergeConfig(config);
}

MergeSession::~MergeSession() = default;

MergeSession::Status MergeSession::Poll() {
  if (impl_->failed) {
    throw std::logic_error("MergeSession: poll after a failed poll");
  }
  try {
    return impl_->PollInner();
  } catch (...) {
    impl_->failed = true;
    throw;
  }
}

MergeStreamStats MergeSession::Drain() {
  for (;;) {
    const Status status = Poll();
    if (status == Status::kDone) break;
    // Only live sources ever starve; give their writers a moment.  Batch
    // inputs complete in a single Poll with no sleeps.
    std::this_thread::sleep_for(std::chrono::microseconds(
        status == Status::kBootstrapping ? 1000 : 200));
  }
  MergeStreamStats out;
  out.bootstrap = impl_->bootstrap;
  out.stats = impl_->Stats();
  return out;
}

bool MergeSession::bootstrapped() const { return impl_->bootstrapped; }

const BootstrapResult& MergeSession::bootstrap() const {
  return impl_->bootstrap;
}

UnifyStats MergeSession::stats() const { return impl_->Stats(); }

std::uint64_t MergeSession::jframes_emitted() const { return impl_->emitted; }

std::size_t MergeSession::retained_jframes() const {
  return impl_->Retained();
}

std::size_t MergeSession::peak_retained_jframes() const {
  return impl_->peak_retained;
}

std::uint64_t MergeSession::spilled_jframes() const {
  return impl_->Spilled();
}

std::uint64_t MergeSession::spill_bytes_on_disk() const {
  return impl_->SpillBytesOnDisk();
}

std::int64_t MergeSession::live_lag_us() const { return impl_->LiveLagUs(); }

obs::MetricsSnapshot MergeSession::MetricsSnapshot() const {
  return obs::MetricRegistry::Global().Collect();
}

MergeStreamStats MergeTracesStreaming(TraceSet& traces,
                                      const MergeConfig& config,
                                      std::function<void(JFrame&&)> sink) {
  MergeSession session(traces, config, std::move(sink));
  return session.Drain();
}

MergeResult MergeTraces(TraceSet& traces, const MergeConfig& config) {
  MergeResult result;
  auto stream = MergeTracesStreaming(
      traces, config,
      [&result](JFrame&& jf) { result.jframes.push_back(std::move(jf)); });
  result.bootstrap = std::move(stream.bootstrap);
  result.stats = stream.stats;
  return result;
}

}  // namespace jig
