#include "jigsaw/pipeline.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace jig {
namespace {

// The total order both merge paths emit: timestamp, then channel.  Distinct
// transmissions on one channel never tie below this key in practice, and
// when they do (identical integer microsecond), unifier emission order is
// preserved — identically in the single-threaded buffer (stable multimap)
// and in the sharded k-way merge (per-shard FIFO).
using OrderKey = std::pair<UniversalMicros, std::uint8_t>;

OrderKey KeyOf(const JFrame& jf) {
  return {jf.timestamp, static_cast<std::uint8_t>(jf.channel)};
}

// Min-buffer that releases jframes once the emit frontier passes them.
class ReorderBuffer {
 public:
  ReorderBuffer(Micros horizon, std::function<void(JFrame&&)> sink)
      : horizon_(horizon), sink_(std::move(sink)) {}

  void Push(JFrame&& jf) {
    frontier_ = std::max(frontier_, jf.timestamp);
    buffer_.emplace(KeyOf(jf), std::move(jf));
    Drain(frontier_ - horizon_);
  }

  void Flush() { Drain(std::numeric_limits<UniversalMicros>::max()); }

  std::size_t size() const { return buffer_.size(); }

 private:
  void Drain(UniversalMicros up_to) {
    while (!buffer_.empty() && buffer_.begin()->first.first <= up_to) {
      sink_(std::move(buffer_.begin()->second));
      buffer_.erase(buffer_.begin());
    }
  }

  Micros horizon_;
  std::function<void(JFrame&&)> sink_;
  std::multimap<OrderKey, JFrame> buffer_;
  UniversalMicros frontier_ = std::numeric_limits<UniversalMicros>::min();
};

Micros EffectiveHorizon(const MergeConfig& config) {
  return std::max(config.reorder_horizon, config.unifier.search_window * 2);
}

constexpr std::size_t kUnifyStep = 1024;  // groups per scheduling slice

unsigned ResolveWorkers(unsigned threads, std::size_t shard_count) {
  unsigned n = threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  return static_cast<unsigned>(
      std::min<std::size_t>(n, std::max<std::size_t>(shard_count, 1)));
}

}  // namespace

void ValidateMergeConfig(const MergeConfig& config) {
  if (config.unifier.search_window <= 0) {
    throw std::invalid_argument("MergeConfig: search_window must be > 0");
  }
  if (config.reorder_horizon <= config.unifier.search_window) {
    throw std::invalid_argument(
        "MergeConfig: reorder_horizon (" +
        std::to_string(config.reorder_horizon) +
        " us) must exceed unifier.search_window (" +
        std::to_string(config.unifier.search_window) +
        " us); a shorter horizon releases jframes before the group that "
        "precedes them can still form, producing an out-of-order stream");
  }
}

// ---------------------------------------------------------------------------
// MergeSession.
//
// Sharded mode runs in rounds: the worker pool steps every shard's unifier
// (each bounded by the queue watermark), a barrier joins the round, then
// the Poll() thread k-way merges the shard queues as far as every shard has
// either a head or a final end-of-stream — the same gating rule as the
// batch k-way merge, so the emitted order is byte-identical.  Between
// rounds the workers are idle, which is what makes the session resumable:
// Poll() simply stops scheduling rounds once no shard can advance.

struct MergeSession::Impl {
  struct LiveShard {
    std::deque<JFrame> queue;  // ordered output awaiting the k-way merge
    std::unique_ptr<ReorderBuffer> reorder;
    std::unique_ptr<Unifier> unifier;
    bool exhausted = false;  // unifier done and reorder flushed
  };

  TraceSet& traces;
  MergeConfig config;
  std::function<void(JFrame&&)> sink;

  bool bootstrapped = false;
  bool done = false;
  bool failed = false;
  std::vector<bool> window_filled;  // per-trace bootstrap readiness cache
  // Per-trace bootstrap window end (NTP frame), latched off the first
  // record; the readiness scan keeps each stream's cursor across polls so
  // a poll only reads records that arrived since the last one.
  std::vector<std::optional<std::int64_t>> window_end;
  BootstrapResult bootstrap;
  UnifyStats final_stats;  // sharded stats, latched before teardown

  // Single-threaded (legacy-exact) path.
  bool single_mode = false;
  std::unique_ptr<ReorderBuffer> single_reorder;
  std::unique_ptr<Unifier> single_unifier;

  // Sharded path.
  std::vector<ChannelShard> shards;
  bool partitioned = false;
  std::vector<std::unique_ptr<LiveShard>> live;
  unsigned workers = 1;

  // Round-barrier worker pool (only when workers > 1).
  std::vector<std::thread> pool;
  std::mutex pool_mu;
  std::condition_variable start_cv;
  std::condition_variable done_cv;
  std::uint64_t generation = 0;
  std::size_t remaining = 0;
  bool shutdown = false;
  bool round_progress = false;
  std::vector<std::exception_ptr> round_errors;

  std::uint64_t emitted = 0;
  std::size_t peak_retained = 0;

  Impl(TraceSet& t, const MergeConfig& c, std::function<void(JFrame&&)> s)
      : traces(t), config(c), sink(std::move(s)) {}

  ~Impl() {
    StopPool();
    // Destroy the unifiers/reorder buffers before handing the shard streams
    // back (they hold references into the shard trace sets).
    live.clear();
    single_unifier.reset();
    single_reorder.reset();
    Reassemble();
  }

  void Reassemble() {
    if (!partitioned) return;
    partitioned = false;
    traces.AdoptShards(std::move(shards));
    shards.clear();
  }

  // ---- bootstrap phase ----------------------------------------------------

  // Has trace i's bootstrap window filled?  Mirrors the window scan of
  // BootstrapSynchronize: the window is anchored at the trace's own first
  // record, so it has filled once a record at/after window-end exists — or
  // once the trace finalized with less than a window of data.  The stream
  // cursor persists across polls (data only ever grows), so each poll
  // reads only what arrived since the last; BootstrapSynchronize and the
  // unifiers rewind everything afterwards anyway.
  bool ScanBootstrapReady(std::size_t i) {
    RecordStream& stream = traces.at(i);
    const std::int64_t ntp0 = stream.header().ntp_utc_of_local_zero_us;
    if (!window_end[i]) {
      stream.Rewind();
      const CaptureRecord* first = stream.NextRef();
      if (first == nullptr) return stream.Finalized();
      window_end[i] = ntp0 + first->timestamp + config.bootstrap.window;
      if (ntp0 + first->timestamp >= *window_end[i]) return true;
    }
    while (const CaptureRecord* rec = stream.NextRef()) {
      if (ntp0 + rec->timestamp >= *window_end[i]) return true;
    }
    return stream.Finalized();
  }

  bool TryBootstrap() {
    if (window_filled.empty()) {
      window_filled.assign(traces.size(), false);
      window_end.assign(traces.size(), std::nullopt);
    }
    bool all = true;  // an empty set falls through: bootstrap throws
    for (std::size_t i = 0; i < traces.size(); ++i) {
      if (!window_filled[i]) window_filled[i] = ScanBootstrapReady(i);
      all = all && window_filled[i];
    }
    if (!all) return false;
    // Bootstrap is always global: reference sets bridge channels through
    // the monitors' shared capture clocks, which a per-shard pass cannot
    // see.  Traces are re-read from offset zero — the "late bootstrap"
    // path: nothing was buffered while waiting, the files are the buffer.
    bootstrap = BootstrapSynchronize(traces, config.bootstrap);
    SetupMerge();
    bootstrapped = true;
    return true;
  }

  void SetupMerge() {
    const auto counting_sink = [this](JFrame&& jf) {
      ++emitted;
      sink(std::move(jf));
    };
    if (config.threads == 1 || traces.size() <= 1) {
      single_mode = true;
      single_reorder =
          std::make_unique<ReorderBuffer>(EffectiveHorizon(config),
                                          counting_sink);
      ReorderBuffer* reorder = single_reorder.get();
      single_unifier = std::make_unique<Unifier>(
          traces, bootstrap, config.unifier,
          [reorder](JFrame&& jf) { reorder->Push(std::move(jf)); });
      return;
    }
    shards = traces.PartitionByChannel();
    partitioned = true;
    live.reserve(shards.size());
    for (std::size_t s = 0; s < shards.size(); ++s) {
      auto ls = std::make_unique<LiveShard>();
      std::deque<JFrame>* queue = &ls->queue;
      ls->reorder = std::make_unique<ReorderBuffer>(
          EffectiveHorizon(config),
          [queue](JFrame&& jf) { queue->push_back(std::move(jf)); });
      ReorderBuffer* reorder = ls->reorder.get();
      ls->unifier = std::make_unique<Unifier>(
          shards[s].traces, bootstrap.Slice(shards[s].source_index),
          config.unifier,
          [reorder](JFrame&& jf) { reorder->Push(std::move(jf)); });
      live.push_back(std::move(ls));
    }
    workers = ResolveWorkers(config.threads, shards.size());
    if (workers > 1) StartPool();
  }

  // ---- worker rounds ------------------------------------------------------

  // Steps one shard until it starves, exhausts, or its queue reaches the
  // watermark.  Returns true if anything was consumed or produced.
  static bool StepShard(LiveShard& ls) {
    if (ls.exhausted) return false;
    bool progress = false;
    while (ls.queue.size() < kMergeQueueWatermark) {
      const std::uint64_t before = ls.unifier->stats().events_in;
      const std::size_t queued = ls.queue.size();
      const UnifyStep step = ls.unifier->Step(kUnifyStep);
      progress = progress || ls.unifier->stats().events_in != before ||
                 ls.queue.size() != queued;
      if (step == UnifyStep::kStarved) break;
      if (step == UnifyStep::kExhausted) {
        ls.reorder->Flush();
        ls.exhausted = true;
        progress = true;
        break;
      }
    }
    return progress;
  }

  bool WorkerRound(unsigned w) {
    bool progress = false;
    for (std::size_t s = w; s < live.size(); s += workers) {
      progress = StepShard(*live[s]) || progress;
    }
    return progress;
  }

  void StartPool() {
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([this, w] {
        std::uint64_t seen = 0;
        for (;;) {
          std::unique_lock lk(pool_mu);
          start_cv.wait(lk,
                        [&] { return shutdown || generation != seen; });
          if (shutdown) return;
          seen = generation;
          lk.unlock();
          bool progress = false;
          std::exception_ptr error;
          try {
            progress = WorkerRound(w);
          } catch (...) {
            error = std::current_exception();
          }
          lk.lock();
          round_progress = round_progress || progress;
          if (error) round_errors.push_back(error);
          if (--remaining == 0) {
            lk.unlock();
            done_cv.notify_all();
          }
        }
      });
    }
  }

  void StopPool() {
    if (pool.empty()) return;
    {
      std::lock_guard lk(pool_mu);
      shutdown = true;
    }
    start_cv.notify_all();
    for (auto& t : pool) t.join();
    pool.clear();
  }

  // Runs one round over every shard; returns whether any shard progressed.
  bool RunRound() {
    if (pool.empty()) {
      bool progress = false;
      for (auto& ls : live) progress = StepShard(*ls) || progress;
      return progress;
    }
    std::unique_lock lk(pool_mu);
    round_progress = false;
    remaining = pool.size();
    ++generation;
    start_cv.notify_all();
    done_cv.wait(lk, [&] { return remaining == 0; });
    if (!round_errors.empty()) {
      const auto error = round_errors.front();
      round_errors.clear();
      std::rethrow_exception(error);
    }
    return round_progress;
  }

  // ---- consumer merge -----------------------------------------------------

  // Emits the globally least OrderKey among the shard heads, exactly like
  // the batch k-way merge: correctness needs a head (or final
  // end-of-stream) from every shard before each emission, so a starved
  // shard with an empty queue gates the stream — the watermark stall.
  std::size_t MergeQueues() {
    std::size_t merged = 0;
    const std::size_t n = live.size();
    for (;;) {
      std::size_t best = n;
      bool gated = false;
      for (std::size_t i = 0; i < n; ++i) {
        LiveShard& ls = *live[i];
        if (ls.queue.empty()) {
          if (!ls.exhausted) {
            gated = true;
            break;
          }
          continue;
        }
        if (best == n ||
            KeyOf(ls.queue.front()) < KeyOf(live[best]->queue.front())) {
          best = i;
        }
      }
      if (gated || best == n) return merged;
      JFrame jf = std::move(live[best]->queue.front());
      live[best]->queue.pop_front();
      ++emitted;
      ++merged;
      sink(std::move(jf));  // user code runs on the Poll() thread
    }
  }

  std::size_t Retained() const {
    if (single_mode) {
      return single_reorder != nullptr ? single_reorder->size() : 0;
    }
    std::size_t total = 0;
    for (const auto& ls : live) {
      total += ls->queue.size() + ls->reorder->size();
    }
    return total;
  }

  void ObserveRetention() {
    peak_retained = std::max(peak_retained, Retained());
  }

  // ---- polling ------------------------------------------------------------

  Status PollSingle() {
    for (;;) {
      const UnifyStep step = single_unifier->Step(kUnifyStep);
      ObserveRetention();
      if (step == UnifyStep::kStarved) return Status::kStarved;
      if (step == UnifyStep::kExhausted) {
        single_reorder->Flush();
        done = true;
        return Status::kDone;
      }
    }
  }

  Status PollInner() {
    if (done) return Status::kDone;
    if (!bootstrapped && !TryBootstrap()) return Status::kBootstrapping;
    if (single_mode) return PollSingle();
    for (;;) {
      const bool stepped = RunRound();
      ObserveRetention();
      const bool merged = MergeQueues() > 0;
      if (!stepped && !merged) break;
    }
    for (const auto& ls : live) {
      if (!ls->exhausted || !ls->queue.empty()) return Status::kStarved;
    }
    done = true;
    // Tear the shard machinery down now, not at destruction: the contract
    // hands the streams back to the caller's TraceSet as soon as the
    // session completes, so the set is reusable while the session (and
    // its stats) live on.
    StopPool();
    final_stats = Stats();
    live.clear();  // unifiers reference the shard trace sets — drop first
    Reassemble();
    return Status::kDone;
  }

  UnifyStats Stats() const {
    if (single_unifier != nullptr) return single_unifier->stats();
    UnifyStats total = final_stats;
    for (const auto& ls : live) total += ls->unifier->stats();
    return total;
  }
};

MergeSession::MergeSession(TraceSet& traces, const MergeConfig& config,
                           std::function<void(JFrame&&)> sink)
    : impl_(std::make_unique<Impl>(traces, config, std::move(sink))) {
  ValidateMergeConfig(config);
}

MergeSession::~MergeSession() = default;

MergeSession::Status MergeSession::Poll() {
  if (impl_->failed) {
    throw std::logic_error("MergeSession: poll after a failed poll");
  }
  try {
    return impl_->PollInner();
  } catch (...) {
    impl_->failed = true;
    throw;
  }
}

MergeStreamStats MergeSession::Drain() {
  for (;;) {
    const Status status = Poll();
    if (status == Status::kDone) break;
    // Only live sources ever starve; give their writers a moment.  Batch
    // inputs complete in a single Poll with no sleeps.
    std::this_thread::sleep_for(std::chrono::microseconds(
        status == Status::kBootstrapping ? 1000 : 200));
  }
  MergeStreamStats out;
  out.bootstrap = impl_->bootstrap;
  out.stats = impl_->Stats();
  return out;
}

bool MergeSession::bootstrapped() const { return impl_->bootstrapped; }

const BootstrapResult& MergeSession::bootstrap() const {
  return impl_->bootstrap;
}

UnifyStats MergeSession::stats() const { return impl_->Stats(); }

std::uint64_t MergeSession::jframes_emitted() const { return impl_->emitted; }

std::size_t MergeSession::retained_jframes() const {
  return impl_->Retained();
}

std::size_t MergeSession::peak_retained_jframes() const {
  return impl_->peak_retained;
}

MergeStreamStats MergeTracesStreaming(TraceSet& traces,
                                      const MergeConfig& config,
                                      std::function<void(JFrame&&)> sink) {
  MergeSession session(traces, config, std::move(sink));
  return session.Drain();
}

MergeResult MergeTraces(TraceSet& traces, const MergeConfig& config) {
  MergeResult result;
  auto stream = MergeTracesStreaming(
      traces, config,
      [&result](JFrame&& jf) { result.jframes.push_back(std::move(jf)); });
  result.bootstrap = std::move(stream.bootstrap);
  result.stats = stream.stats;
  return result;
}

}  // namespace jig
