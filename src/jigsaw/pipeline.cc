#include "jigsaw/pipeline.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace jig {
namespace {

// The total order both merge paths emit: timestamp, then channel.  Distinct
// transmissions on one channel never tie below this key in practice, and
// when they do (identical integer microsecond), unifier emission order is
// preserved — identically in the single-threaded buffer (stable multimap)
// and in the sharded k-way merge (per-shard FIFO).
using OrderKey = std::pair<UniversalMicros, std::uint8_t>;

OrderKey KeyOf(const JFrame& jf) {
  return {jf.timestamp, static_cast<std::uint8_t>(jf.channel)};
}

// Min-buffer that releases jframes once the emit frontier passes them.
class ReorderBuffer {
 public:
  ReorderBuffer(Micros horizon, std::function<void(JFrame&&)> sink)
      : horizon_(horizon), sink_(std::move(sink)) {}

  void Push(JFrame&& jf) {
    frontier_ = std::max(frontier_, jf.timestamp);
    buffer_.emplace(KeyOf(jf), std::move(jf));
    Drain(frontier_ - horizon_);
  }

  void Flush() { Drain(std::numeric_limits<UniversalMicros>::max()); }

 private:
  void Drain(UniversalMicros up_to) {
    while (!buffer_.empty() && buffer_.begin()->first.first <= up_to) {
      sink_(std::move(buffer_.begin()->second));
      buffer_.erase(buffer_.begin());
    }
  }

  Micros horizon_;
  std::function<void(JFrame&&)> sink_;
  std::multimap<OrderKey, JFrame> buffer_;
  UniversalMicros frontier_ = std::numeric_limits<UniversalMicros>::min();
};

Micros EffectiveHorizon(const MergeConfig& config) {
  return std::max(config.reorder_horizon, config.unifier.search_window * 2);
}

// Bootstrap is assumed done; runs unify + reorder on the calling thread.
UnifyStats RunUnifySingleThread(TraceSet& traces,
                                const BootstrapResult& bootstrap,
                                const MergeConfig& config,
                                std::function<void(JFrame&&)>& sink) {
  ReorderBuffer reorder(EffectiveHorizon(config), std::ref(sink));
  Unifier unifier(traces, bootstrap, config.unifier,
                  [&reorder](JFrame&& jf) { reorder.Push(std::move(jf)); });
  unifier.Run();
  reorder.Flush();
  return unifier.stats();
}

// ---------------------------------------------------------------------------
// Sharded parallel merge.
//
// One unifier per channel shard runs on a small worker pool; each pushes
// its exactly-ordered output into a per-shard bounded queue, and the
// calling thread recombines the queues with a k-way merge on OrderKey.
// Backpressure is cooperative: a worker skips shards whose queue is at the
// watermark and sleeps only when every shard it owns is throttled, which
// keeps buffering bounded without ever stalling the shard whose head the
// consumer is waiting for (a throttled queue is by definition non-empty).

constexpr std::size_t kQueueWatermark = 4096;  // jframes buffered per shard
constexpr std::size_t kUnifyStep = 1024;       // groups per scheduling slice

struct ShardChannel {
  std::deque<JFrame> queue;
  bool closed = false;
};

struct Coordinator {
  std::mutex mu;
  std::condition_variable data_cv;  // consumer: a queue grew or closed
  std::condition_variable room_cv;  // workers: a queue drained or abort
  std::vector<ShardChannel> channels;
  std::vector<UnifyStats> shard_stats;
  bool aborted = false;
  std::exception_ptr error;

  explicit Coordinator(std::size_t shards)
      : channels(shards), shard_stats(shards) {}

  void Abort(std::exception_ptr e) {
    std::lock_guard lk(mu);
    if (!error) error = std::move(e);
    aborted = true;
    for (auto& ch : channels) ch.closed = true;
    data_cv.notify_all();
    room_cv.notify_all();
  }
};

// Unifies the shards assigned to one worker, interleaving them in
// kUnifyStep slices under the queue watermark.
void ShardWorker(Coordinator& coord, std::vector<ChannelShard>& shards,
                 const std::vector<std::size_t>& assigned,
                 const BootstrapResult& bootstrap, const MergeConfig& config) {
  try {
    struct Task {
      std::size_t index;
      // Jframes drained from the reorder buffer during one Step, published
      // to the shard queue in a single lock acquisition afterwards.
      std::vector<JFrame> pending;
      std::unique_ptr<ReorderBuffer> reorder;
      std::unique_ptr<Unifier> unifier;
      bool done = false;
    };
    // Tasks live behind stable pointers: the reorder/unifier sinks capture
    // addresses of task members.
    std::vector<std::unique_ptr<Task>> tasks;
    tasks.reserve(assigned.size());
    for (std::size_t s : assigned) {
      auto task = std::make_unique<Task>();
      task->index = s;
      std::vector<JFrame>* pending = &task->pending;
      task->reorder = std::make_unique<ReorderBuffer>(
          EffectiveHorizon(config),
          [pending](JFrame&& jf) { pending->push_back(std::move(jf)); });
      ReorderBuffer* reorder = task->reorder.get();
      task->unifier = std::make_unique<Unifier>(
          shards[s].traces, bootstrap.Slice(shards[s].source_index),
          config.unifier,
          [reorder](JFrame&& jf) { reorder->Push(std::move(jf)); });
      tasks.push_back(std::move(task));
    }

    const auto publish = [&coord](Task& task) {
      if (task.pending.empty()) return;
      std::lock_guard lk(coord.mu);
      auto& queue = coord.channels[task.index].queue;
      for (JFrame& jf : task.pending) queue.push_back(std::move(jf));
      task.pending.clear();
      coord.data_cv.notify_one();
    };

    for (;;) {
      bool all_done = true;
      bool progressed = false;
      for (auto& task_ptr : tasks) {
        Task& task = *task_ptr;
        if (task.done) continue;
        all_done = false;
        {
          std::lock_guard lk(coord.mu);
          if (coord.aborted) return;
          if (coord.channels[task.index].queue.size() >= kQueueWatermark) {
            continue;  // throttled; its head is already available
          }
        }
        const bool more = task.unifier->Step(kUnifyStep);
        if (!more) task.reorder->Flush();
        publish(task);
        if (!more) {
          std::lock_guard lk(coord.mu);
          coord.shard_stats[task.index] = task.unifier->stats();
          coord.channels[task.index].closed = true;
          coord.data_cv.notify_one();
          task.done = true;
        }
        progressed = true;
      }
      if (all_done) return;
      if (!progressed) {
        std::unique_lock lk(coord.mu);
        coord.room_cv.wait(lk, [&] {
          if (coord.aborted) return true;
          for (const auto& task_ptr : tasks) {
            if (!task_ptr->done &&
                coord.channels[task_ptr->index].queue.size() <
                    kQueueWatermark) {
              return true;
            }
          }
          return false;
        });
        if (coord.aborted) return;
      }
    }
  } catch (...) {
    coord.Abort(std::current_exception());
  }
}

// K-way merge of the shard queues on the calling thread.  Emits the
// globally least OrderKey among the shard heads; correctness needs a head
// (or end-of-stream) from every shard before each emission.  Each lock
// acquisition splices entire shard queues into consumer-local buffers, so
// lock traffic is per batch, not per jframe.
void ConsumeShardStreams(Coordinator& coord,
                         const std::function<void(JFrame&&)>& sink) {
  const std::size_t n = coord.channels.size();
  struct Local {
    std::deque<JFrame> buffered;  // in shard order, head at front
    bool finished = false;        // shard closed and fully drained
  };
  std::vector<Local> locals(n);
  const auto need_refill = [&] {
    for (const Local& l : locals) {
      if (l.buffered.empty() && !l.finished) return true;
    }
    return false;
  };
  for (;;) {
    if (need_refill()) {
      std::unique_lock lk(coord.mu);
      coord.data_cv.wait(lk, [&] {
        if (coord.aborted) return true;
        for (std::size_t i = 0; i < n; ++i) {
          if (!locals[i].buffered.empty() || locals[i].finished) continue;
          if (coord.channels[i].queue.empty() && !coord.channels[i].closed) {
            return false;
          }
        }
        return true;
      });
      if (coord.aborted) return;
      // Splice only into empty local buffers: a shard the merge is not
      // consuming keeps its backpressure (shared queue at the watermark)
      // instead of accumulating unboundedly on the consumer side.
      bool drained = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (!locals[i].buffered.empty()) continue;
        auto& ch = coord.channels[i];
        if (!ch.queue.empty()) {
          locals[i].buffered = std::move(ch.queue);
          ch.queue.clear();  // moved-from deque: restore known state
          drained = true;
        } else if (ch.closed) {
          locals[i].finished = true;
        }
      }
      if (drained) coord.room_cv.notify_all();
    }

    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (locals[i].buffered.empty()) continue;
      if (best == n ||
          KeyOf(locals[i].buffered.front()) <
              KeyOf(locals[best].buffered.front())) {
        best = i;
      }
    }
    if (best == n) return;  // every shard finished
    JFrame next = std::move(locals[best].buffered.front());
    locals[best].buffered.pop_front();
    sink(std::move(next));  // user code runs outside the lock
  }
}

UnifyStats RunUnifySharded(std::vector<ChannelShard>& shards,
                           const BootstrapResult& bootstrap,
                           const MergeConfig& config, unsigned workers,
                           const std::function<void(JFrame&&)>& sink) {
  Coordinator coord(shards.size());
  // Static round-robin shard assignment.
  std::vector<std::vector<std::size_t>> assigned(workers);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    assigned[s % workers].push_back(s);
  }
  {
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back(ShardWorker, std::ref(coord), std::ref(shards),
                        std::cref(assigned[w]), std::cref(bootstrap),
                        std::cref(config));
    }
    try {
      ConsumeShardStreams(coord, sink);
    } catch (...) {
      coord.Abort(std::current_exception());
    }
  }  // joins the pool
  if (coord.error) std::rethrow_exception(coord.error);
  UnifyStats stats;
  for (const UnifyStats& s : coord.shard_stats) stats += s;
  return stats;
}

unsigned ResolveWorkers(unsigned threads, std::size_t shard_count) {
  unsigned n = threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  return static_cast<unsigned>(
      std::min<std::size_t>(n, std::max<std::size_t>(shard_count, 1)));
}

}  // namespace

void ValidateMergeConfig(const MergeConfig& config) {
  if (config.unifier.search_window <= 0) {
    throw std::invalid_argument("MergeConfig: search_window must be > 0");
  }
  if (config.reorder_horizon <= config.unifier.search_window) {
    throw std::invalid_argument(
        "MergeConfig: reorder_horizon (" +
        std::to_string(config.reorder_horizon) +
        " us) must exceed unifier.search_window (" +
        std::to_string(config.unifier.search_window) +
        " us); a shorter horizon releases jframes before the group that "
        "precedes them can still form, producing an out-of-order stream");
  }
}

MergeStreamStats MergeTracesStreaming(TraceSet& traces,
                                      const MergeConfig& config,
                                      std::function<void(JFrame&&)> sink) {
  ValidateMergeConfig(config);
  MergeStreamStats out;
  // Bootstrap is always global: reference sets bridge channels through the
  // monitors' shared capture clocks, which a per-shard pass cannot see.
  out.bootstrap = BootstrapSynchronize(traces, config.bootstrap);

  if (config.threads == 1 || traces.size() <= 1) {
    out.stats = RunUnifySingleThread(traces, out.bootstrap, config, sink);
    return out;
  }

  auto shards = traces.PartitionByChannel();
  // Whatever happens below, hand the streams back to the caller's set.
  struct Reassemble {
    TraceSet& set;
    std::vector<ChannelShard>& shards;
    ~Reassemble() { set.AdoptShards(std::move(shards)); }
  } reassemble{traces, shards};

  if (shards.size() == 1) {
    // One channel: the shard is the whole set (in original order); no
    // recombination needed.
    const BootstrapResult sliced =
        out.bootstrap.Slice(shards[0].source_index);
    out.stats = RunUnifySingleThread(shards[0].traces, sliced, config, sink);
    return out;
  }
  const unsigned workers = ResolveWorkers(config.threads, shards.size());
  out.stats = RunUnifySharded(shards, out.bootstrap, config, workers, sink);
  return out;
}

MergeResult MergeTraces(TraceSet& traces, const MergeConfig& config) {
  MergeResult result;
  auto stream = MergeTracesStreaming(
      traces, config,
      [&result](JFrame&& jf) { result.jframes.push_back(std::move(jf)); });
  result.bootstrap = std::move(stream.bootstrap);
  result.stats = stream.stats;
  return result;
}

}  // namespace jig
