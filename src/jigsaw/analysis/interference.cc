#include "jigsaw/analysis/interference.h"

#include <algorithm>
#include <unordered_map>

namespace jig {
namespace {

struct PairKey {
  MacAddress s, r;
  bool operator==(const PairKey&) const = default;
};
struct PairKeyHash {
  std::size_t operator()(const PairKey& k) const noexcept {
    return std::hash<std::uint64_t>{}(k.s.ToU64() * 0x9E3779B97F4A7C15ull ^
                                      k.r.ToU64());
  }
};

// Marks, for every jframe, whether a different transmitter's frame
// overlapped it in time on the same channel.  Sweep over the time-ordered
// vector keeping the still-active window.
std::vector<bool> ComputeOverlaps(const std::vector<JFrame>& jframes) {
  std::vector<bool> overlapped(jframes.size(), false);
  std::vector<std::size_t> active;  // indices with end >= current start
  for (std::size_t i = 0; i < jframes.size(); ++i) {
    const JFrame& jf = jframes[i];
    // Retire expired frames.
    std::erase_if(active, [&](std::size_t j) {
      return jframes[j].EndTime() <= jf.timestamp;
    });
    for (std::size_t j : active) {
      const JFrame& other = jframes[j];
      if (other.channel != jf.channel) continue;
      const auto t1 = jf.frame.Transmitter();
      const auto t2 = other.frame.Transmitter();
      if (t1 && t2 && *t1 == *t2) continue;  // same sender (CTS+DATA pair)
      overlapped[i] = true;
      overlapped[j] = true;
    }
    active.push_back(i);
  }
  return overlapped;
}

}  // namespace

InterferenceReport ComputeInterference(const std::vector<JFrame>& jframes,
                                       const LinkReconstruction& link,
                                       const InterferenceConfig& config) {
  const std::vector<bool> overlapped = ComputeOverlaps(jframes);

  std::unordered_map<PairKey, PairInterference, PairKeyHash> pairs;
  for (const TransmissionAttempt& a : link.attempts) {
    if (a.type != FrameType::kData || a.broadcast || a.data_jframe < 0) {
      continue;
    }
    const PairKey key{a.transmitter, a.receiver};
    auto [it, inserted] = pairs.try_emplace(key);
    PairInterference& pi = it->second;
    if (inserted) {
      pi.sender = a.transmitter;
      pi.receiver = a.receiver;
    }
    const bool simultaneous =
        overlapped[static_cast<std::size_t>(a.data_jframe)];
    // Passive loss signal: no ACK observed for this transmission (the
    // paper's methodology; Section 7.2).
    const bool lost = !a.acked;
    ++pi.n;
    if (simultaneous) {
      ++pi.nx;
      if (lost) ++pi.nlx;
    } else {
      ++pi.n0;
      if (lost) ++pi.nl0;
    }
  }

  InterferenceReport report;
  report.total_pairs_seen = pairs.size();
  double bg_sum = 0.0;
  std::size_t interfered = 0, truncated = 0, ap_senders = 0;
  for (auto& [key, pi] : pairs) {
    if (pi.n < config.min_packets) continue;
    bg_sum += pi.BackgroundLossRate();
    if (pi.Pi() > 0.0) {
      ++interfered;
      if (pi.sender.IsApTag()) ++ap_senders;
    }
    if (pi.XTruncated()) ++truncated;
    report.pairs.push_back(pi);
  }
  const std::size_t kept = report.pairs.size();
  report.mean_background_loss = kept ? bg_sum / kept : 0.0;
  report.fraction_pairs_interfered =
      kept ? static_cast<double>(interfered) / kept : 0.0;
  report.fraction_truncated =
      kept ? static_cast<double>(truncated) / kept : 0.0;
  report.ap_sender_fraction =
      interfered ? static_cast<double>(ap_senders) / interfered : 0.0;
  std::sort(report.pairs.begin(), report.pairs.end(),
            [](const PairInterference& a, const PairInterference& b) {
              return a.X() < b.X();
            });
  return report;
}

}  // namespace jig
