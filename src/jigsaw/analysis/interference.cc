#include "jigsaw/analysis/interference.h"

#include <algorithm>
#include <deque>
#include <map>
#include <tuple>
#include <unordered_map>
#include <vector>

namespace jig {
namespace {

struct PairKey {
  MacAddress s, r;
  bool operator==(const PairKey&) const = default;
};
struct PairKeyHash {
  std::size_t operator()(const PairKey& k) const noexcept {
    return std::hash<std::uint64_t>{}(k.s.ToU64() * 0x9E3779B97F4A7C15ull ^
                                      k.r.ToU64());
  }
};

// A transmission still on the air as far as its channel's sweep knows.
struct ActiveFrame {
  std::uint64_t index = 0;
  UniversalMicros end = 0;
  MacAddress transmitter;
  bool has_transmitter = false;
};

}  // namespace

struct InterferenceTracker::Impl {
  InterferenceConfig config;
  std::uint64_t next_index = 0;
  // Overlap flags for stream indices [base, next_index), pruned by Retire.
  std::uint64_t base = 0;
  std::deque<bool> overlapped;
  std::size_t peak_window = 0;
  // Per-channel still-active windows (channels are few; ordered map keeps
  // iteration deterministic).
  std::map<Channel, std::vector<ActiveFrame>> active;
  std::unordered_map<PairKey, PairInterference, PairKeyHash> pairs;

  void Mark(std::uint64_t index) {
    if (index >= base) overlapped[index - base] = true;
  }
};

InterferenceTracker::InterferenceTracker(InterferenceConfig config)
    : impl_(std::make_unique<Impl>()) {
  impl_->config = config;
}
InterferenceTracker::~InterferenceTracker() = default;
InterferenceTracker::InterferenceTracker(InterferenceTracker&&) noexcept =
    default;
InterferenceTracker& InterferenceTracker::operator=(
    InterferenceTracker&&) noexcept = default;

void InterferenceTracker::OnJFrame(const JFrame& jf) {
  Impl& im = *impl_;
  const std::uint64_t index = im.next_index++;
  im.overlapped.push_back(false);
  im.peak_window = std::max(im.peak_window, im.overlapped.size());

  auto& window = im.active[jf.channel];
  // Retire transmissions that ended before this one began.
  std::erase_if(window, [&](const ActiveFrame& af) {
    return af.end <= jf.timestamp;
  });
  const auto transmitter = jf.frame.Transmitter();
  for (const ActiveFrame& af : window) {
    if (transmitter && af.has_transmitter &&
        af.transmitter == *transmitter) {
      continue;  // same sender (CTS+DATA pair)
    }
    im.Mark(index);
    im.Mark(af.index);
  }
  ActiveFrame af;
  af.index = index;
  af.end = jf.EndTime();
  if (transmitter) {
    af.transmitter = *transmitter;
    af.has_transmitter = true;
  }
  window.push_back(af);
}

void InterferenceTracker::OnAttempt(const TransmissionAttempt& a) {
  Impl& im = *impl_;
  if (a.type != FrameType::kData || a.broadcast || a.data_jframe < 0) return;
  const PairKey key{a.transmitter, a.receiver};
  auto [it, inserted] = im.pairs.try_emplace(key);
  PairInterference& pi = it->second;
  if (inserted) {
    pi.sender = a.transmitter;
    pi.receiver = a.receiver;
  }
  const auto index = static_cast<std::uint64_t>(a.data_jframe);
  const bool simultaneous =
      index >= im.base && im.overlapped[index - im.base];
  // Passive loss signal: no ACK observed for this transmission (the
  // paper's methodology; Section 7.2).
  const bool lost = !a.acked;
  ++pi.n;
  if (simultaneous) {
    ++pi.nx;
    if (lost) ++pi.nlx;
  } else {
    ++pi.n0;
    if (lost) ++pi.nl0;
  }
}

void InterferenceTracker::Retire(std::uint64_t min_live_jframe) {
  Impl& im = *impl_;
  while (im.base < min_live_jframe && !im.overlapped.empty()) {
    im.overlapped.pop_front();
    ++im.base;
  }
}

InterferenceReport InterferenceTracker::Snapshot() const {
  const Impl& im = *impl_;
  InterferenceReport report;
  report.total_pairs_seen = im.pairs.size();
  // Collect first, then sort on a total deterministic key, and only then
  // accumulate: float addition is rounding-order sensitive, so folding
  // bg_sum in hash-iteration order would make mean_background_loss (and the
  // tie order of equal-X pairs) depend on the hash table's layout — exactly
  // what the byte-identity contract forbids.
  // lint-determinism: allow(collection only; sorted below before any fold)
  for (const auto& [key, pi] : im.pairs) {
    if (pi.n < im.config.min_packets) continue;
    report.pairs.push_back(pi);
  }
  std::sort(report.pairs.begin(), report.pairs.end(),
            [](const PairInterference& a, const PairInterference& b) {
              return std::tuple(a.X(), a.sender, a.receiver) <
                     std::tuple(b.X(), b.sender, b.receiver);
            });
  double bg_sum = 0.0;
  std::size_t interfered = 0, truncated = 0, ap_senders = 0;
  // lint-determinism: allow(report.pairs is the sorted vector, not the map)
  for (const PairInterference& pi : report.pairs) {
    bg_sum += pi.BackgroundLossRate();
    if (pi.Pi() > 0.0) {
      ++interfered;
      if (pi.sender.IsApTag()) ++ap_senders;
    }
    if (pi.XTruncated()) ++truncated;
  }
  const std::size_t kept = report.pairs.size();
  report.mean_background_loss = kept ? bg_sum / kept : 0.0;
  report.fraction_pairs_interfered =
      kept ? static_cast<double>(interfered) / kept : 0.0;
  report.fraction_truncated =
      kept ? static_cast<double>(truncated) / kept : 0.0;
  report.ap_sender_fraction =
      interfered ? static_cast<double>(ap_senders) / interfered : 0.0;
  return report;
}

InterferenceReport InterferenceTracker::Finish() { return Snapshot(); }

std::size_t InterferenceTracker::window_size() const {
  return impl_->overlapped.size();
}
std::size_t InterferenceTracker::peak_window_size() const {
  return impl_->peak_window;
}

InterferenceReport ComputeInterference(const std::vector<JFrame>& jframes,
                                       const LinkReconstruction& link,
                                       const InterferenceConfig& config) {
  InterferenceTracker tracker(config);
  for (const JFrame& jf : jframes) tracker.OnJFrame(jf);
  for (const TransmissionAttempt& a : link.attempts) tracker.OnAttempt(a);
  return tracker.Finish();
}

}  // namespace jig
