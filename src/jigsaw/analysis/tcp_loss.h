// TCP loss-rate decomposition — paper Section 7.4, Figure 11.
//
// For every reconstructed flow that completed a handshake (eliminating
// scans and failed connections), decompose the TCP-visible loss rate into
// its wireless component (original segment's frame exchange failed on the
// air) and wired component (segment crossed the air fine — or never made
// it to the air — and was lost elsewhere).  The paper's headline: the
// wireless component dominates.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "jigsaw/tcp_reconstruct.h"
#include "util/stats.h"

namespace jig {

struct TcpLossReport {
  std::uint64_t flows_considered = 0;
  // Per-flow loss-rate distributions (losses / data segments).
  Distribution total_loss_rate;
  Distribution wireless_loss_rate;
  Distribution wired_loss_rate;
  // Aggregate (segment-weighted) rates.
  double aggregate_loss_rate = 0.0;
  double aggregate_wireless_rate = 0.0;
  double aggregate_wired_rate = 0.0;
};

struct TcpLossConfig {
  // Minimum data segments for a flow to contribute (statistical floor).
  std::uint32_t min_segments = 5;
};

TcpLossReport ComputeTcpLoss(const TransportReconstruction& transport,
                             const TcpLossConfig& config = {});

// Grouped Figure-11 decomposition: the labeler assigns each reconstructed
// flow to a group (e.g. the sender's congestion-control algorithm, a
// floor, an AP) and one TcpLossReport is computed per group.  The labeler
// is a plain function so the analysis layer stays ignorant of where the
// labels come from — benches typically join against the simulator's
// ground-truth flow registry, a real deployment would join against server
// logs.  Returning an empty label skips the flow.  Groups are ordered by
// first appearance.
struct TcpLossGroup {
  std::string label;
  TcpLossReport report;
};

using TcpFlowLabeler = std::function<std::string(const TcpFlowKey&)>;

std::vector<TcpLossGroup> ComputeTcpLossByGroup(
    const TransportReconstruction& transport, const TcpFlowLabeler& labeler,
    const TcpLossConfig& config = {});

}  // namespace jig
