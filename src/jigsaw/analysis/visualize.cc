#include "jigsaw/analysis/visualize.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace jig {

std::string RenderTimeline(const std::vector<JFrame>& jframes,
                           const TimelineOptions& options) {
  std::ostringstream out;
  if (jframes.empty()) return "(no jframes)\n";

  UniversalMicros start = options.start;
  if (start == 0) start = jframes.front().timestamp;
  const UniversalMicros end = start + options.span;

  // Collect the window's jframes and the radios that heard them.
  std::vector<const JFrame*> window;
  std::map<RadioId, std::size_t> radio_rows;
  for (const JFrame& jf : jframes) {
    if (jf.timestamp >= end) break;
    if (jf.EndTime() <= start) continue;
    window.push_back(&jf);
    for (const FrameInstance& inst : jf.instances) {
      if (radio_rows.size() >= options.max_radios &&
          !radio_rows.contains(inst.radio)) {
        continue;
      }
      radio_rows.try_emplace(inst.radio, radio_rows.size());
    }
  }
  if (window.empty()) return "(window empty)\n";

  const double us_per_col =
      static_cast<double>(options.span) / options.width_cols;
  std::vector<std::string> grid(radio_rows.size(),
                                std::string(options.width_cols, '.'));

  char label = 'a';
  std::ostringstream legend;
  for (const JFrame* jf : window) {
    const auto col_of = [&](UniversalMicros t) {
      const double c = static_cast<double>(t - start) / us_per_col;
      return std::clamp(static_cast<int>(c), 0, options.width_cols - 1);
    };
    const int c0 = col_of(jf->timestamp);
    const int c1 = col_of(jf->EndTime());
    for (const FrameInstance& inst : jf->instances) {
      auto it = radio_rows.find(inst.radio);
      if (it == radio_rows.end()) continue;
      std::string& row = grid[it->second];
      const char mark = inst.outcome == RxOutcome::kOk ? '#' : 'x';
      for (int c = c0; c <= c1; ++c) row[static_cast<std::size_t>(c)] = mark;
      row[static_cast<std::size_t>(c0)] = label;
    }
    legend << "  " << label << ": t+" << (jf->timestamp - start) << "us "
           << jf->frame.Summary() << "  [" << jf->InstanceCount()
           << " radios, dispersion " << jf->dispersion << "us]\n";
    label = label == 'z' ? 'a' : static_cast<char>(label + 1);
  }

  out << "time ->  " << options.span << " us across " << options.width_cols
      << " cols ('#' decoded, 'x' corrupted)\n";
  for (const auto& [radio, row_idx] : radio_rows) {
    char name[16];
    std::snprintf(name, sizeof(name), "r%-4u |", radio);
    out << name << grid[row_idx] << "\n";
  }
  out << "\nframes:\n" << legend.str();
  return out.str();
}

std::string RenderFloorplan(const BuildingModel& building,
                            const std::vector<ApInfo>& aps,
                            const std::vector<PodInfo>& pods,
                            const std::vector<ClientInfo>& clients,
                            int floor) {
  // 1 column per meter along the corridor, 1 row per 2 meters across.
  const int cols = static_cast<int>(building.length_m) + 1;
  const int rows = static_cast<int>(building.width_m / 2.0) + 1;
  std::vector<std::string> grid(rows, std::string(cols, ' '));
  const auto plot = [&](const Point3& p, char mark) {
    if (building.FloorOf(p) != floor) return;
    const int c = std::clamp(static_cast<int>(p.x), 0, cols - 1);
    const int r = std::clamp(static_cast<int>(p.y / 2.0), 0, rows - 1);
    grid[r][static_cast<std::size_t>(c)] = mark;
  };
  for (const auto& client : clients) plot(client.position, '.');
  for (const auto& pod : pods) plot(pod.position, 'O');
  for (const auto& ap : aps) plot(ap.position, '^');

  std::ostringstream out;
  out << "floor " << floor + 1 << "  (" << building.length_m << "m x "
      << building.width_m << "m;  '^' AP, 'O' monitor pod, '.' client)\n";
  out << "+" << std::string(cols, '-') << "+\n";
  for (const auto& row : grid) out << "|" << row << "|\n";
  out << "+" << std::string(cols, '-') << "+\n";
  return out.str();
}

}  // namespace jig
