#include "jigsaw/analysis/tcp_loss.h"

namespace jig {
namespace {

// Segment-weighted accumulator shared by the aggregate and grouped paths.
struct LossAccumulator {
  TcpLossReport report;
  std::uint64_t segments = 0, losses = 0, wireless = 0, wired = 0;

  void Add(const TcpFlowRecord& flow) {
    ++report.flows_considered;
    const double segs = flow.DataSegments();
    report.total_loss_rate.Add(flow.losses.size() / segs);
    report.wireless_loss_rate.Add(flow.LossesBy(LossCause::kWireless) / segs);
    report.wired_loss_rate.Add(flow.LossesBy(LossCause::kWired) / segs);
    segments += flow.DataSegments();
    losses += flow.losses.size();
    wireless += flow.LossesBy(LossCause::kWireless);
    wired += flow.LossesBy(LossCause::kWired);
  }

  TcpLossReport Finish() {
    if (segments > 0) {
      report.aggregate_loss_rate = static_cast<double>(losses) / segments;
      report.aggregate_wireless_rate =
          static_cast<double>(wireless) / segments;
      report.aggregate_wired_rate = static_cast<double>(wired) / segments;
    }
    return report;
  }
};

bool Eligible(const TcpFlowRecord& flow, const TcpLossConfig& config) {
  // A zero-data flow (handshake-only) has no loss rate: with
  // min_segments == 0 it would otherwise divide by zero and poison the
  // Distribution means with NaN.
  return flow.handshake_complete && flow.DataSegments() > 0 &&
         flow.DataSegments() >= config.min_segments;
}

}  // namespace

TcpLossReport ComputeTcpLoss(const TransportReconstruction& transport,
                             const TcpLossConfig& config) {
  LossAccumulator acc;
  for (const TcpFlowRecord& flow : transport.flows) {
    if (Eligible(flow, config)) acc.Add(flow);
  }
  return acc.Finish();
}

std::vector<TcpLossGroup> ComputeTcpLossByGroup(
    const TransportReconstruction& transport, const TcpFlowLabeler& labeler,
    const TcpLossConfig& config) {
  std::vector<std::string> order;
  std::vector<LossAccumulator> accs;
  for (const TcpFlowRecord& flow : transport.flows) {
    if (!Eligible(flow, config)) continue;
    const std::string label = labeler(flow.key);
    if (label.empty()) continue;
    std::size_t g = 0;
    for (; g < order.size(); ++g) {
      if (order[g] == label) break;
    }
    if (g == order.size()) {
      order.push_back(label);
      accs.emplace_back();
    }
    accs[g].Add(flow);
  }
  std::vector<TcpLossGroup> groups;
  groups.reserve(order.size());
  for (std::size_t g = 0; g < order.size(); ++g) {
    groups.push_back(TcpLossGroup{order[g], accs[g].Finish()});
  }
  return groups;
}

}  // namespace jig
