#include "jigsaw/analysis/tcp_loss.h"

namespace jig {

TcpLossReport ComputeTcpLoss(const TransportReconstruction& transport,
                             const TcpLossConfig& config) {
  TcpLossReport report;
  std::uint64_t segments = 0, losses = 0, wireless = 0, wired = 0;
  for (const TcpFlowRecord& flow : transport.flows) {
    if (!flow.handshake_complete) continue;
    if (flow.DataSegments() < config.min_segments) continue;
    ++report.flows_considered;
    const double segs = flow.DataSegments();
    report.total_loss_rate.Add(flow.losses.size() / segs);
    report.wireless_loss_rate.Add(flow.LossesBy(LossCause::kWireless) / segs);
    report.wired_loss_rate.Add(flow.LossesBy(LossCause::kWired) / segs);
    segments += flow.DataSegments();
    losses += flow.losses.size();
    wireless += flow.LossesBy(LossCause::kWireless);
    wired += flow.LossesBy(LossCause::kWired);
  }
  if (segments > 0) {
    report.aggregate_loss_rate = static_cast<double>(losses) / segments;
    report.aggregate_wireless_rate =
        static_cast<double>(wireless) / segments;
    report.aggregate_wired_rate = static_cast<double>(wired) / segments;
  }
  return report;
}

}  // namespace jig
