// Group-dispersion distribution — paper Figure 4.
//
// The paper's synchronization-accuracy metric: for every jframe, the worst
// time offset between any two radios that heard it.  The published result:
// with a 10 ms search window over 156 radios for 24 hours, 90% of jframes
// have dispersion under 10 us and 99% under 20 us.
#pragma once

#include <vector>

#include "jigsaw/jframe.h"
#include "util/stats.h"

namespace jig {

// Collects jframe dispersions.  `multi_instance_only` restricts to jframes
// heard by at least two radios (single-instance jframes have dispersion 0
// by construction and would flatter the CDF).
inline Distribution DispersionDistribution(const std::vector<JFrame>& jframes,
                                           bool multi_instance_only = true) {
  Distribution d;
  for (const JFrame& jf : jframes) {
    if (multi_instance_only && jf.instances.size() < 2) continue;
    d.Add(static_cast<double>(jf.dispersion));
  }
  return d;
}

}  // namespace jig
