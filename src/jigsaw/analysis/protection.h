// 802.11g protection-mode analysis — paper Section 7.3, Figure 10.
//
// Identifies "overprotective" APs: BSSes still running CTS-to-self
// protection although no 802.11b client has been in range for longer than
// a practical timeout (one minute, vs. the deployed APs' one hour).
// Station b/g classification comes from observed transmit rates (a station
// that ever sends OFDM is 802.11g); b-client in-range evidence comes from
// the b client's own frames at an AP and from probe responses the AP sends
// it, exactly the signals the paper uses.  The series also counts active
// 802.11g clients and how many sit behind overprotective APs (25–50%
// during the paper's busy periods).
#pragma once

#include <vector>

#include "jigsaw/jframe.h"

namespace jig {

struct ProtectionConfig {
  Micros bin_width = Seconds(60);
  // The "practical" timeout: an AP is overprotective when protecting with
  // no b client sensed within this window.
  Micros practical_timeout = Minutes(1);
  // Protection considered in use if a CTS-to-self was seen this recently.
  Micros protection_active_window = Minutes(1);
};

struct ProtectionSeries {
  Micros bin_width = 0;
  UniversalMicros origin = 0;
  std::vector<int> overprotective_aps;
  std::vector<int> g_clients_on_overprotective;
  std::vector<int> active_g_clients;

  std::size_t Bins() const { return overprotective_aps.size(); }
};

ProtectionSeries ComputeProtection(const std::vector<JFrame>& jframes,
                                   const ProtectionConfig& config = {});

}  // namespace jig
