#include "jigsaw/analysis/coverage.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "wifi/packet.h"

namespace jig {
namespace {

// Identity of a TCP packet for wired/wireless matching: the header fields a
// passive monitor can read from either vantage.
std::uint64_t TcpPacketKey(Ipv4Addr src, Ipv4Addr dst, const TcpSegment& seg) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(src);
  mix(dst);
  mix((static_cast<std::uint64_t>(seg.src_port) << 16) | seg.dst_port);
  mix(seg.seq);
  mix(seg.ack);
  mix((static_cast<std::uint64_t>(seg.flags) << 16) | seg.payload_len);
  return h;
}

}  // namespace

double CoverageReport::FractionAtLeast(double threshold, bool aps) const {
  std::size_t total = 0, meets = 0;
  for (const auto& s : stations) {
    if (s.is_ap != aps) continue;
    ++total;
    if (s.Coverage() >= threshold) ++meets;
  }
  return total ? static_cast<double>(meets) / total : 0.0;
}

double CoverageReport::GroupCoverage(bool aps) const {
  std::uint64_t packets = 0, matched = 0;
  for (const auto& s : stations) {
    if (s.is_ap != aps) continue;
    packets += s.wired_packets;
    matched += s.matched;
  }
  return packets ? static_cast<double>(matched) / packets : 0.0;
}

void WiredCoverageMatcher::AddJFrame(const JFrame& jf) {
  // Index every unicast TCP DATA frame seen on the air.
  const Frame& f = jf.frame;
  if (f.type != FrameType::kData || !f.addr1.IsUnicast()) return;
  const auto info = ParseFrameBody(f.body);
  if (!info || !info->IsTcp()) return;
  air_keys_.insert(TcpPacketKey(info->src_ip, info->dst_ip, *info->tcp));
}

CoverageReport WiredCoverageMatcher::Match(
    const std::vector<WiredRecord>& wired) const {
  const auto& air_keys = air_keys_;
  CoverageReport report;
  std::unordered_map<MacAddress, StationCoverage> by_station;
  for (const WiredRecord& rec : wired) {
    if (rec.ip_proto != kIpProtoTcp) continue;
    // Which station transmits (or will transmit) the corresponding DATA
    // frame on the air: the AP for downstream, the client for upstream.
    const MacAddress station = rec.to_wireless
                                   ? MacAddress::Ap(rec.ap_index)
                                   : rec.wireless_station;
    auto [it, inserted] = by_station.try_emplace(station);
    if (inserted) {
      it->second.station = station;
      it->second.is_ap = rec.to_wireless;
    }
    ++it->second.wired_packets;
    ++report.wired_packets;
    if (air_keys.contains(TcpPacketKey(rec.src_ip, rec.dst_ip, rec.tcp))) {
      ++it->second.matched;
      ++report.matched_packets;
    }
  }
  report.stations.reserve(by_station.size());
  // lint-determinism: allow(collection only; sorted by station MAC below)
  for (auto& [mac, sc] : by_station) report.stations.push_back(sc);
  // Hash-map order must not leak into the report: downstream figures and
  // summaries render stations in vector order.
  std::sort(report.stations.begin(), report.stations.end(),
            [](const StationCoverage& a, const StationCoverage& b) {
              return a.station < b.station;
            });
  return report;
}

CoverageReport ComputeWiredCoverage(const std::vector<WiredRecord>& wired,
                                    const std::vector<JFrame>& jframes) {
  WiredCoverageMatcher matcher;
  for (const JFrame& jf : jframes) matcher.AddJFrame(jf);
  return matcher.Match(wired);
}

OracleCoverage ComputeTruthCoverage(const TruthLog& truth,
                                    std::optional<MacAddress> station) {
  OracleCoverage out;
  for (const TruthEntry& e : truth.entries()) {
    if (station) {
      if (e.transmitter != *station) continue;
    } else if (!e.transmitter.IsClientTag()) {
      continue;  // aggregate over client stations (the laptop's role)
    }
    ++out.events;
    if (e.monitors_ok > 0) ++out.heard_ok;
    if (e.monitors_any > 0) ++out.heard_any;
  }
  return out;
}

}  // namespace jig
