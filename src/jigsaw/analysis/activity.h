// Network activity time series — paper Figure 8 (and the broadcast air-time
// observation of Section 7.1).
//
// Per time bin: (a) active clients and APs — a client is active when it is
// exchanging data with an AP or establishing an association; an AP is
// active when communicating with an active client (beacons alone do not
// count) — and (b) traffic volume split into the paper's categories: Data,
// Management/control, Beacon, and ARP, plus the fraction of air time
// consumed by broadcast frames (the paper's ~10% observation).
#pragma once

#include <vector>

#include "jigsaw/jframe.h"

namespace jig {

struct ActivitySeries {
  Micros bin_width = 0;
  UniversalMicros origin = 0;  // timestamp of the first jframe
  std::vector<int> active_clients;
  std::vector<int> active_aps;
  // Bytes on the air per bin, by category.
  std::vector<double> data_bytes;
  std::vector<double> mgmt_bytes;
  std::vector<double> beacon_bytes;
  std::vector<double> arp_bytes;
  // Fraction of the bin's wall time consumed by broadcast transmissions.
  std::vector<double> broadcast_airtime_fraction;

  std::size_t Bins() const { return active_clients.size(); }
};

ActivitySeries ComputeActivity(const std::vector<JFrame>& jframes,
                               Micros bin_width);

}  // namespace jig
