// Network activity time series — paper Figure 8 (and the broadcast air-time
// observation of Section 7.1).
//
// Per time bin: (a) active clients and APs — a client is active when it is
// exchanging data with an AP or establishing an association; an AP is
// active when communicating with an active client (beacons alone do not
// count) — and (b) traffic volume split into the paper's categories: Data,
// Management/control, Beacon, and ARP, plus the fraction of air time
// consumed by broadcast frames (the paper's ~10% observation).
#pragma once

#include <unordered_set>
#include <vector>

#include "jigsaw/jframe.h"

namespace jig {

struct ActivitySeries {
  Micros bin_width = 0;
  UniversalMicros origin = 0;  // timestamp of the first jframe
  std::vector<int> active_clients;
  std::vector<int> active_aps;
  // Bytes on the air per bin, by category.
  std::vector<double> data_bytes;
  std::vector<double> mgmt_bytes;
  std::vector<double> beacon_bytes;
  std::vector<double> arp_bytes;
  // Fraction of the bin's wall time consumed by broadcast transmissions.
  std::vector<double> broadcast_airtime_fraction;

  std::size_t Bins() const { return active_clients.size(); }
};

// Streaming form: feed jframes in timestamp order (the merge's output
// order), then Take() the finished series.  ComputeActivity is a batch
// wrapper over this; the AnalysisBus's ActivityConsumer feeds it directly
// from the live stream so no jframe vector is ever materialized.
class ActivityAccumulator {
 public:
  explicit ActivityAccumulator(Micros bin_width) : bin_width_(bin_width) {}

  void Add(const JFrame& jf);
  // Finalizes per-bin counts and returns the series; the accumulator is
  // left empty, ready for a new stream.
  ActivitySeries Take();

 private:
  Micros bin_width_;
  ActivitySeries series_;
  std::vector<std::unordered_set<MacAddress>> bin_clients_;
  std::vector<std::unordered_set<MacAddress>> bin_aps_;
  bool any_ = false;
};

ActivitySeries ComputeActivity(const std::vector<JFrame>& jframes,
                               Micros bin_width);

}  // namespace jig
