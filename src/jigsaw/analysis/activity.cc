#include "jigsaw/analysis/activity.h"

#include <algorithm>
#include <unordered_set>

#include "wifi/packet.h"

namespace jig {

ActivitySeries ComputeActivity(const std::vector<JFrame>& jframes,
                               Micros bin_width) {
  ActivitySeries out;
  out.bin_width = bin_width;
  if (jframes.empty() || bin_width <= 0) return out;
  out.origin = jframes.front().timestamp;
  const UniversalMicros span =
      jframes.back().timestamp - out.origin + 1;
  const std::size_t bins =
      static_cast<std::size_t>((span + bin_width - 1) / bin_width);

  out.active_clients.assign(bins, 0);
  out.active_aps.assign(bins, 0);
  out.data_bytes.assign(bins, 0.0);
  out.mgmt_bytes.assign(bins, 0.0);
  out.beacon_bytes.assign(bins, 0.0);
  out.arp_bytes.assign(bins, 0.0);
  out.broadcast_airtime_fraction.assign(bins, 0.0);

  std::vector<std::unordered_set<MacAddress>> bin_clients(bins);
  std::vector<std::unordered_set<MacAddress>> bin_aps(bins);

  for (const JFrame& jf : jframes) {
    const auto bin = static_cast<std::size_t>(
        (jf.timestamp - out.origin) / bin_width);
    if (bin >= bins) continue;
    const Frame& f = jf.frame;
    const double bytes = static_cast<double>(jf.wire_len);

    // Category accounting (ARP rides DATA frames; check the body).
    bool is_arp = false;
    if (f.type == FrameType::kData) {
      const auto info = ParseFrameBody(f.body);
      is_arp = info && info->IsArp();
    }
    if (f.type == FrameType::kBeacon) {
      out.beacon_bytes[bin] += bytes;
    } else if (is_arp) {
      out.arp_bytes[bin] += bytes;
    } else if (f.type == FrameType::kData) {
      out.data_bytes[bin] += bytes;
    } else {
      out.mgmt_bytes[bin] += bytes;  // management + control
    }

    if (!f.addr1.IsUnicast()) {
      // Air time accrues per channel; the reported fraction is the mean
      // over the three monitored channels ("as seen by any given monitor").
      out.broadcast_airtime_fraction[bin] +=
          static_cast<double>(TxDurationMicros(jf.rate, jf.wire_len)) /
          static_cast<double>(kAllChannels.size());
    }

    // Activity: data exchange or association traffic marks both ends.
    const bool assoc_mgmt = f.type == FrameType::kAssocRequest ||
                            f.type == FrameType::kAssocResponse ||
                            f.type == FrameType::kAuthentication;
    if (f.type == FrameType::kData || assoc_mgmt) {
      if (f.HasTransmitter()) {
        if (f.addr2.IsClientTag()) bin_clients[bin].insert(f.addr2);
        if (f.addr2.IsApTag() && f.addr1.IsUnicast()) {
          bin_aps[bin].insert(f.addr2);
        }
      }
      if (f.addr1.IsClientTag()) bin_clients[bin].insert(f.addr1);
      if (f.addr1.IsApTag()) bin_aps[bin].insert(f.addr1);
    }
  }

  for (std::size_t i = 0; i < bins; ++i) {
    out.active_clients[i] = static_cast<int>(bin_clients[i].size());
    out.active_aps[i] = static_cast<int>(bin_aps[i].size());
    out.broadcast_airtime_fraction[i] /= static_cast<double>(bin_width);
  }
  return out;
}

}  // namespace jig
