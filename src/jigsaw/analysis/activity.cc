#include "jigsaw/analysis/activity.h"

#include <algorithm>

#include "wifi/packet.h"

namespace jig {

void ActivityAccumulator::Add(const JFrame& jf) {
  if (bin_width_ <= 0) return;
  if (!any_) {
    series_.bin_width = bin_width_;
    series_.origin = jf.timestamp;
    any_ = true;
  }
  if (jf.timestamp < series_.origin) return;  // stream contract: ordered
  const auto bin =
      static_cast<std::size_t>((jf.timestamp - series_.origin) / bin_width_);
  if (bin >= series_.data_bytes.size()) {
    const std::size_t bins = bin + 1;
    series_.active_clients.resize(bins, 0);
    series_.active_aps.resize(bins, 0);
    series_.data_bytes.resize(bins, 0.0);
    series_.mgmt_bytes.resize(bins, 0.0);
    series_.beacon_bytes.resize(bins, 0.0);
    series_.arp_bytes.resize(bins, 0.0);
    series_.broadcast_airtime_fraction.resize(bins, 0.0);
    bin_clients_.resize(bins);
    bin_aps_.resize(bins);
  }
  const Frame& f = jf.frame;
  const double bytes = static_cast<double>(jf.wire_len);

  // Category accounting (ARP rides DATA frames; check the body).
  bool is_arp = false;
  if (f.type == FrameType::kData) {
    const auto info = ParseFrameBody(f.body);
    is_arp = info && info->IsArp();
  }
  if (f.type == FrameType::kBeacon) {
    series_.beacon_bytes[bin] += bytes;
  } else if (is_arp) {
    series_.arp_bytes[bin] += bytes;
  } else if (f.type == FrameType::kData) {
    series_.data_bytes[bin] += bytes;
  } else {
    series_.mgmt_bytes[bin] += bytes;  // management + control
  }

  if (!f.addr1.IsUnicast()) {
    // Air time accrues per channel; the reported fraction is the mean
    // over the three monitored channels ("as seen by any given monitor").
    series_.broadcast_airtime_fraction[bin] +=
        static_cast<double>(TxDurationMicros(jf.rate, jf.wire_len)) /
        static_cast<double>(kAllChannels.size());
  }

  // Activity: data exchange or association traffic marks both ends.
  const bool assoc_mgmt = f.type == FrameType::kAssocRequest ||
                          f.type == FrameType::kAssocResponse ||
                          f.type == FrameType::kAuthentication;
  if (f.type == FrameType::kData || assoc_mgmt) {
    if (f.HasTransmitter()) {
      if (f.addr2.IsClientTag()) bin_clients_[bin].insert(f.addr2);
      if (f.addr2.IsApTag() && f.addr1.IsUnicast()) {
        bin_aps_[bin].insert(f.addr2);
      }
    }
    if (f.addr1.IsClientTag()) bin_clients_[bin].insert(f.addr1);
    if (f.addr1.IsApTag()) bin_aps_[bin].insert(f.addr1);
  }
}

ActivitySeries ActivityAccumulator::Take() {
  for (std::size_t i = 0; i < series_.data_bytes.size(); ++i) {
    series_.active_clients[i] = static_cast<int>(bin_clients_[i].size());
    series_.active_aps[i] = static_cast<int>(bin_aps_[i].size());
    series_.broadcast_airtime_fraction[i] /= static_cast<double>(bin_width_);
  }
  series_.bin_width = bin_width_;
  ActivitySeries out = std::move(series_);
  series_ = ActivitySeries{};
  bin_clients_.clear();
  bin_aps_.clear();
  any_ = false;
  return out;
}

ActivitySeries ComputeActivity(const std::vector<JFrame>& jframes,
                               Micros bin_width) {
  ActivityAccumulator acc(bin_width);
  for (const JFrame& jf : jframes) acc.Add(jf);
  return acc.Take();
}

}  // namespace jig
