#include "jigsaw/analysis/summary.h"

#include <ostream>
#include <unordered_set>

#include "util/stats.h"

namespace jig {

TraceSummary Summarize(const MergeResult& merge,
                       const LinkReconstruction& link,
                       const TransportReconstruction& transport,
                       std::size_t radios) {
  TraceSummary s;
  s.radios = radios;
  const UnifyStats& us = merge.stats;
  s.total_events = us.events_in;
  s.error_event_fraction =
      us.events_in ? static_cast<double>(us.fcs_error_in + us.phy_error_in) /
                         static_cast<double>(us.events_in)
                   : 0.0;
  s.unified_events = us.events_unified;
  s.jframes = us.jframes;
  s.events_per_jframe = us.EventsPerJframe();

  std::unordered_set<MacAddress> clients;
  std::unordered_set<MacAddress> aps;
  UniversalMicros t0 = 0, t1 = 0;
  bool first = true;
  for (const JFrame& jf : merge.jframes) {
    if (first) {
      t0 = jf.timestamp;
      first = false;
    }
    t1 = jf.timestamp;
    const Frame& f = jf.frame;
    if (IsControl(f.type)) {
      ++s.ctrl_frames;
    } else if (IsManagement(f.type)) {
      ++s.mgmt_frames;
    } else {
      ++s.data_frames;
    }
    if (f.HasTransmitter()) {
      if (f.addr2.IsClientTag()) clients.insert(f.addr2);
      if (f.addr2.IsApTag()) aps.insert(f.addr2);
    }
  }
  s.duration_s = ToSeconds(t1 - t0);
  s.clients_observed = clients.size();
  s.aps_observed = aps.size();

  s.attempts = link.stats.attempts;
  s.exchanges = link.stats.exchanges;
  s.attempt_inference_rate = link.stats.AttemptInferenceRate();
  s.exchange_inference_rate = link.stats.ExchangeInferenceRate();
  s.tcp_flows = transport.stats.flows_total;
  s.tcp_flows_with_handshake = transport.stats.flows_with_handshake;
  return s;
}

void PrintSummary(const TraceSummary& s, std::ostream& os) {
  os << "=== Trace summary (paper Table 1) ===\n";
  os << "  Trace duration            " << FormatFixed(s.duration_s, 1)
     << " s\n";
  os << "  Radios                    " << s.radios << "\n";
  os << "  Events observed           " << FormatCount(s.total_events) << "\n";
  os << "  PHY/CRC error events      "
     << FormatPercent(s.error_event_fraction) << "\n";
  os << "  Events unified            " << FormatCount(s.unified_events)
     << "\n";
  os << "  jframes                   " << FormatCount(s.jframes) << "\n";
  os << "  Events per jframe         " << FormatFixed(s.events_per_jframe, 2)
     << "\n";
  os << "  Unique clients observed   " << s.clients_observed << "\n";
  os << "  Unique APs observed       " << s.aps_observed << "\n";
  os << "  DATA / MGMT / CTRL frames " << FormatCount(s.data_frames) << " / "
     << FormatCount(s.mgmt_frames) << " / " << FormatCount(s.ctrl_frames)
     << "\n";
  os << "  Transmission attempts     " << FormatCount(s.attempts) << "\n";
  os << "  Frame exchanges           " << FormatCount(s.exchanges) << "\n";
  os << "  Attempts needing inference  "
     << FormatPercent(s.attempt_inference_rate, 2) << "\n";
  os << "  Exchanges needing inference "
     << FormatPercent(s.exchange_inference_rate, 2) << "\n";
  os << "  TCP flows (w/ handshake)  " << s.tcp_flows << " ("
     << s.tcp_flows_with_handshake << ")\n";
}

}  // namespace jig
