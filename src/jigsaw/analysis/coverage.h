// Monitoring coverage analyses — paper Section 6, Figures 6 and 7.
//
// Two oracles validate how much of the air the platform actually captures:
//  * The wired trace: every unicast TCP packet crossing the distribution
//    network must correspond to a DATA frame on the air; matching wired
//    records against the unified wireless trace yields per-station coverage
//    (Figure 6) and, re-run under reduced pod deployments, the sensitivity
//    of coverage to monitor density (Figure 7).
//  * The instrumented-laptop experiment: a station's own record of the
//    link-level events it generated, which in simulation is the ground
//    truth log.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "jigsaw/jframe.h"
#include "sim/truth.h"
#include "sim/wired.h"

namespace jig {

struct StationCoverage {
  MacAddress station;
  bool is_ap = false;
  std::uint32_t wired_packets = 0;
  std::uint32_t matched = 0;
  double Coverage() const {
    return wired_packets ? static_cast<double>(matched) / wired_packets : 0.0;
  }
};

struct CoverageReport {
  std::vector<StationCoverage> stations;
  std::uint64_t wired_packets = 0;
  std::uint64_t matched_packets = 0;

  double Overall() const {
    return wired_packets
               ? static_cast<double>(matched_packets) / wired_packets
               : 0.0;
  }
  // Fraction of stations (APs or clients) with coverage >= threshold.
  double FractionAtLeast(double threshold, bool aps) const;
  double GroupCoverage(bool aps) const;  // packet-weighted
};

// Figure 6: match the wired trace against the unified wireless trace.
CoverageReport ComputeWiredCoverage(const std::vector<WiredRecord>& wired,
                                    const std::vector<JFrame>& jframes);

// Streaming form of the wired-coverage match: index the on-air side one
// jframe at a time (no jframe vector needed), then match the wired trace
// once the stream ends.  ComputeWiredCoverage is a batch wrapper; the
// AnalysisBus's WiredCoverageConsumer feeds it from the live merge.
class WiredCoverageMatcher {
 public:
  void AddJFrame(const JFrame& jf);
  CoverageReport Match(const std::vector<WiredRecord>& wired) const;
  std::size_t indexed_packets() const { return air_keys_.size(); }

 private:
  std::unordered_set<std::uint64_t> air_keys_;
};

// Laptop-oracle coverage (Section 6's controlled experiment): fraction of a
// station's link-level transmissions that at least one monitor decoded.
// `station` of nullopt aggregates over all client stations.
struct OracleCoverage {
  std::uint64_t events = 0;
  std::uint64_t heard_ok = 0;      // decoded by >= 1 monitor radio
  std::uint64_t heard_any = 0;     // detected at all
  double Rate() const {
    return events ? static_cast<double>(heard_ok) / events : 0.0;
  }
};
OracleCoverage ComputeTruthCoverage(const TruthLog& truth,
                                    std::optional<MacAddress> station);

}  // namespace jig
