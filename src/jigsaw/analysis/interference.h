// Co-channel interference estimation — paper Section 7.2, Figure 9.
//
// The global viewpoint lets Jigsaw observe that a transmission from s to r
// failed *and* that a third node was transmitting simultaneously — which no
// single vantage point can correlate.  For every (s, r) pair the estimator
// compares the loss rate with simultaneous transmissions (nlx/nx) against
// the background loss rate without them (nl0/n0) and computes
//
//   P_i = P[I|S] = ((nlx/nx) - (nl0/n0)) / (1 - nl0/n0)
//
// the conditional probability that a simultaneous transmission causes a
// loss, and the interference loss rate X = P_i * (nx/n) — the probability
// that any given transmission from s to r dies to interference.
#pragma once

#include <vector>

#include "jigsaw/link.h"

namespace jig {

struct PairInterference {
  MacAddress sender;
  MacAddress receiver;
  std::uint32_t n = 0;    // unicast DATA transmissions s -> r
  std::uint32_t n0 = 0;   // ... without a simultaneous transmission
  std::uint32_t nl0 = 0;  // ... of those, lost
  std::uint32_t nx = 0;   // ... with a simultaneous transmission
  std::uint32_t nlx = 0;  // ... of those, lost

  double BackgroundLossRate() const {
    return n0 ? static_cast<double>(nl0) / n0 : 0.0;
  }
  // P[I|S]; may be negative when sampling noise makes concurrent slots look
  // safer than quiet ones (the paper truncates X at 0 in 11% of pairs).
  double Pi() const {
    if (nx == 0) return 0.0;
    const double plx = static_cast<double>(nlx) / nx;
    const double pl0 = BackgroundLossRate();
    if (pl0 >= 1.0) return 0.0;
    return (plx - pl0) / (1.0 - pl0);
  }
  // Interference loss rate X, truncated at zero.
  double X() const {
    if (n == 0) return 0.0;
    const double x = Pi() * (static_cast<double>(nx) / n);
    return x < 0.0 ? 0.0 : x;
  }
  bool XTruncated() const { return Pi() < 0.0; }
};

struct InterferenceReport {
  std::vector<PairInterference> pairs;  // pairs meeting min_packets
  std::uint64_t total_pairs_seen = 0;   // before the min-packets filter
  double mean_background_loss = 0.0;
  double fraction_pairs_interfered = 0.0;  // Pi > 0
  double fraction_truncated = 0.0;         // Pi < 0 (X clamped to 0)
  double ap_sender_fraction = 0.0;         // of interfered pairs
};

struct InterferenceConfig {
  std::uint32_t min_packets = 100;  // per (s, r) pair, as in the paper
};

InterferenceReport ComputeInterference(const std::vector<JFrame>& jframes,
                                       const LinkReconstruction& link,
                                       const InterferenceConfig& config = {});

}  // namespace jig
