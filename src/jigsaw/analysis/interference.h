// Co-channel interference estimation — paper Section 7.2, Figure 9.
//
// The global viewpoint lets Jigsaw observe that a transmission from s to r
// failed *and* that a third node was transmitting simultaneously — which no
// single vantage point can correlate.  For every (s, r) pair the estimator
// compares the loss rate with simultaneous transmissions (nlx/nx) against
// the background loss rate without them (nl0/n0) and computes
//
//   P_i = P[I|S] = ((nlx/nx) - (nl0/n0)) / (1 - nl0/n0)
//
// the conditional probability that a simultaneous transmission causes a
// loss, and the interference loss rate X = P_i * (nx/n) — the probability
// that any given transmission from s to r dies to interference.
#pragma once

#include <memory>
#include <vector>

#include "jigsaw/link.h"

namespace jig {

struct PairInterference {
  MacAddress sender;
  MacAddress receiver;
  std::uint32_t n = 0;    // unicast DATA transmissions s -> r
  std::uint32_t n0 = 0;   // ... without a simultaneous transmission
  std::uint32_t nl0 = 0;  // ... of those, lost
  std::uint32_t nx = 0;   // ... with a simultaneous transmission
  std::uint32_t nlx = 0;  // ... of those, lost

  double BackgroundLossRate() const {
    return n0 ? static_cast<double>(nl0) / n0 : 0.0;
  }
  // P[I|S]; may be negative when sampling noise makes concurrent slots look
  // safer than quiet ones (the paper truncates X at 0 in 11% of pairs).
  double Pi() const {
    if (nx == 0) return 0.0;
    const double plx = static_cast<double>(nlx) / nx;
    const double pl0 = BackgroundLossRate();
    if (pl0 >= 1.0) return 0.0;
    return (plx - pl0) / (1.0 - pl0);
  }
  // Interference loss rate X, truncated at zero.
  double X() const {
    if (n == 0) return 0.0;
    const double x = Pi() * (static_cast<double>(nx) / n);
    return x < 0.0 ? 0.0 : x;
  }
  bool XTruncated() const { return Pi() < 0.0; }
};

struct InterferenceReport {
  std::vector<PairInterference> pairs;  // pairs meeting min_packets
  std::uint64_t total_pairs_seen = 0;   // before the min-packets filter
  double mean_background_loss = 0.0;
  double fraction_pairs_interfered = 0.0;  // Pi > 0
  double fraction_truncated = 0.0;         // Pi < 0 (X clamped to 0)
  double ap_sender_fraction = 0.0;         // of interfered pairs
};

struct InterferenceConfig {
  std::uint32_t min_packets = 100;  // per (s, r) pair, as in the paper
};

// Streaming Figure-9 estimator.  A per-channel windowed sweep marks
// same-channel overlaps as jframes arrive, and the (s, r) pair counters
// update as the link layer emits attempts — no jframe vector required.
//
// Contract: feed every jframe (in stream order, with OnJFrame assigning
// consecutive stream indices) before any attempt referencing it arrives;
// the windowed LinkReconstructor guarantees this, because an attempt is
// only emitted once the watermark has passed its last frame — at which
// point no later transmission can overlap it, so its flag is final.
// Retire() drops overlap state below the link reconstructor's
// min_live_jframe() watermark, keeping memory O(timeout window).
class InterferenceTracker {
 public:
  explicit InterferenceTracker(InterferenceConfig config = {});
  ~InterferenceTracker();
  InterferenceTracker(InterferenceTracker&&) noexcept;
  InterferenceTracker& operator=(InterferenceTracker&&) noexcept;

  void OnJFrame(const JFrame& jf);
  void OnAttempt(const TransmissionAttempt& attempt);
  void Retire(std::uint64_t min_live_jframe);
  // Non-destructive report over everything seen so far — the live-monitor
  // snapshot path.  The tracker keeps accumulating afterwards.
  InterferenceReport Snapshot() const;
  InterferenceReport Finish();

  std::size_t window_size() const;       // overlap flags currently retained
  std::size_t peak_window_size() const;  // high-water mark

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Batch wrapper over InterferenceTracker.
InterferenceReport ComputeInterference(const std::vector<JFrame>& jframes,
                                       const LinkReconstruction& link,
                                       const InterferenceConfig& config = {});

}  // namespace jig
