// Single-pass analysis bus: one jframe stream, N consumers.
//
// The paper's efficiency requirement is a single streaming pass over the
// traces; the bus extends that discipline to the analysis layer.  Instead
// of collecting every jframe and re-iterating the vector once per Figure
// (the collect-then-rescan pattern the examples and benches grew), the bus
// fans each jframe of the live merge out to every registered consumer, so
// activity, coverage, dispersion, interference, TCP-loss, and the online
// monitor all ride the same pass:
//
//   AnalysisBus bus;
//   auto& activity = bus.Emplace<ActivityConsumer>(Seconds(1));
//   auto& disp = bus.Emplace<DispersionConsumer>();
//   MergeTracesStreaming(traces, config, bus.Sink());
//   bus.Finish();
//
// Link-dependent analyses (interference, TCP loss) ride the windowed
// LinkConsumer: the incremental LinkReconstructor emits attempts and
// exchanges as the watermark passes the 500 ms exchange-timeout bound, so
// their memory is O(timeout window).  Register the LinkConsumer before its
// dependents — Finish() runs in registration order:
//
//   auto& link = bus.Emplace<LinkConsumer>();
//   auto& interference = bus.Emplace<InterferenceConsumer>(link);
//   auto& tcp_loss = bus.Emplace<TcpLossConsumer>(link);
//
// The full-trace ReconstructionConsumer buffer remains available as the
// opt-in path for consumers of the batch-only APIs (e.g. timeline
// rendering over the collected jframe vector).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "jigsaw/analysis/activity.h"
#include "jigsaw/analysis/coverage.h"
#include "jigsaw/analysis/dispersion.h"
#include "jigsaw/analysis/interference.h"
#include "jigsaw/analysis/tcp_loss.h"
#include "jigsaw/jframe.h"
#include "jigsaw/link.h"
#include "jigsaw/online.h"
#include "jigsaw/tcp_reconstruct.h"
#include "obs/metrics.h"

namespace jig {

namespace bus_internal {

// Retained-window gauge for one named consumer — how much state the
// consumer is holding right now (jframes, tracked flows, ...).
inline obs::Gauge& RetainedWindowGauge(const char* consumer) {
  return obs::MetricRegistry::Global().GetGauge(
      "jig_bus_retained_window",
      "Current retained-window size per analysis consumer",
      std::string("consumer=\"") + consumer + "\"");
}

}  // namespace bus_internal

// One subscriber on the jframe stream.  OnJFrame is called once per jframe
// in timestamp order; Finish once after the stream ends.
class JFrameConsumer {
 public:
  virtual ~JFrameConsumer() = default;
  virtual const char* name() const = 0;
  virtual void OnJFrame(const JFrame& jf) = 0;
  virtual void Finish() {}
};

class CollectorConsumer;

class AnalysisBus {
 public:
  JFrameConsumer& Add(std::unique_ptr<JFrameConsumer> consumer) {
    busy_ns_.push_back(&obs::MetricRegistry::Global().GetCounter(
        "jig_bus_consumer_busy_ns_total",
        "Cumulative wall time each consumer spent handling jframes",
        std::string("consumer=\"") + consumer->name() + "\""));
    consumers_.push_back(std::move(consumer));
    return *consumers_.back();
  }

  // Constructs a consumer in place and returns a typed reference for
  // reading its results after Finish().
  template <typename C, typename... Args>
  C& Emplace(Args&&... args) {
    auto consumer = std::make_unique<C>(std::forward<Args>(args)...);
    C& ref = *consumer;
    Add(std::move(consumer));
    return ref;
  }

  // Designates a registered collector as the stream terminal: after the
  // const& fan-out to every other consumer, the jframe itself is moved
  // into it — the buffering path stays zero-copy end to end.
  void SetTerminal(CollectorConsumer& collector);

  void OnJFrame(JFrame&& jf);

  void OnJFrame(const JFrame& jf) {
    ++jframes_seen_;
    JFramesCounter().Add(1);
    for (std::size_t i = 0; i < consumers_.size(); ++i) Dispatch(i, jf);
  }

  // Finishes every consumer in registration order (dependencies first).
  void Finish() {
    for (auto& c : consumers_) c->Finish();
  }

  // Adapter for MergeTracesStreaming's sink signature.
  std::function<void(JFrame&&)> Sink() {
    return [this](JFrame&& jf) { OnJFrame(std::move(jf)); };
  }

  std::size_t consumer_count() const { return consumers_.size(); }
  std::uint64_t jframes_seen() const { return jframes_seen_; }

 private:
  static obs::Counter& JFramesCounter() {
    static obs::Counter* c = &obs::MetricRegistry::Global().GetCounter(
        "jig_bus_jframes_total", "JFrames dispatched on the analysis bus");
    return *c;
  }

  // One consumer call, timed into its busy-ns counter when metrics are on
  // (two clock reads per consumer per jframe; nothing when disabled).
  void Dispatch(std::size_t i, const JFrame& jf) {
    if (!obs::Enabled()) {
      consumers_[i]->OnJFrame(jf);
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    consumers_[i]->OnJFrame(jf);
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    busy_ns_[i]->Add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }

  std::vector<std::unique_ptr<JFrameConsumer>> consumers_;
  std::vector<obs::Counter*> busy_ns_;  // parallel to consumers_
  CollectorConsumer* terminal_ = nullptr;
  std::uint64_t jframes_seen_ = 0;
};

// ---------------------------------------------------------------------------
// Stock consumers.

// Collects the stream into a vector — for consumers of batch-only APIs
// (e.g. timeline rendering) riding the same pass.  When registered as the
// bus terminal (AnalysisBus::SetTerminal) the jframes are moved in, not
// copied.
class CollectorConsumer final : public JFrameConsumer {
 public:
  const char* name() const override { return "collector"; }
  void OnJFrame(const JFrame& jf) override { jframes_.push_back(jf); }
  void Collect(JFrame&& jf) { jframes_.push_back(std::move(jf)); }

  const std::vector<JFrame>& jframes() const { return jframes_; }
  std::vector<JFrame> Take() { return std::move(jframes_); }

 private:
  std::vector<JFrame> jframes_;
};

inline void AnalysisBus::SetTerminal(CollectorConsumer& collector) {
  terminal_ = &collector;
}

inline void AnalysisBus::OnJFrame(JFrame&& jf) {
  ++jframes_seen_;
  JFramesCounter().Add(1);
  for (std::size_t i = 0; i < consumers_.size(); ++i) {
    if (consumers_[i].get() == static_cast<JFrameConsumer*>(terminal_)) {
      continue;
    }
    Dispatch(i, jf);
  }
  if (terminal_ != nullptr) terminal_->Collect(std::move(jf));
}

// Subscriber on the streaming link reconstruction.  OnStreamJFrame is
// dispatched for every jframe *before* the reconstructor's FSM sees it, so
// per-jframe side state (e.g. interference overlap flags) is already in
// place when OnAttempt/OnExchange fire; OnLinkFinish runs after the final
// Flush().
class LinkObserver {
 public:
  virtual ~LinkObserver() = default;
  virtual void OnStreamJFrame(const JFrame& /*jf*/, std::uint64_t /*index*/) {}
  virtual void OnAttempt(const TransmissionAttempt& /*attempt*/) {}
  // `data` points at the exchange's DATA jframe inside the consumer's
  // window (nullptr when only control frames were observed) and is valid
  // only for the duration of the call.
  virtual void OnExchange(const FrameExchange& /*exchange*/,
                          const JFrame* /*data*/) {}
  virtual void OnLinkFinish() {}
};

// Windowed, incremental link reconstruction on the bus.  Keeps only the
// jframes still referenced by un-emitted attempts/exchanges (bounded by the
// 500 ms exchange timeout), fanning emissions out to registered observers —
// the streaming replacement for the ReconstructionConsumer's full-trace
// buffer.  Register observers before the stream starts.
class LinkConsumer final : public JFrameConsumer {
 public:
  explicit LinkConsumer(LinkConfig config = {})
      : reconstructor_(
            config,
            [this](const TransmissionAttempt& a) {
              for (auto* o : observers_) o->OnAttempt(a);
            },
            [this](const FrameExchange& ex) { Dispatch(ex); }) {}

  void AddObserver(LinkObserver& observer) {
    observers_.push_back(&observer);
  }

  const char* name() const override { return "link"; }

  void OnJFrame(const JFrame& jf) override {
    const std::uint64_t index = reconstructor_.jframes_seen();
    window_.push_back(jf);
    peak_window_ = std::max(peak_window_, window_.size());
    for (auto* o : observers_) o->OnStreamJFrame(jf, index);
    reconstructor_.OnJFrame(jf);
    Prune();
    window_gauge_.Set(static_cast<std::int64_t>(window_.size()));
  }

  void Finish() override {
    reconstructor_.Flush();
    Prune();
    for (auto* o : observers_) o->OnLinkFinish();
  }

  const LinkStats& stats() const { return reconstructor_.stats(); }
  const LinkReconstructor& reconstructor() const { return reconstructor_; }
  std::uint64_t min_live_jframe() const {
    return reconstructor_.min_live_jframe();
  }
  // Peak number of jframes buffered at once — the O(window) memory bound.
  std::size_t peak_window_jframes() const { return peak_window_; }
  std::size_t window_jframes() const { return window_.size(); }

 private:
  void Dispatch(const FrameExchange& ex) {
    const JFrame* data = nullptr;
    if (ex.data_jframe >= 0) {
      data = &window_[static_cast<std::size_t>(ex.data_jframe) - base_];
    }
    for (auto* o : observers_) o->OnExchange(ex, data);
  }

  void Prune() {
    const std::uint64_t live = reconstructor_.min_live_jframe();
    while (base_ < live && !window_.empty()) {
      window_.pop_front();
      ++base_;
    }
  }

  std::vector<LinkObserver*> observers_;
  std::deque<JFrame> window_;
  std::uint64_t base_ = 0;
  std::size_t peak_window_ = 0;
  obs::Gauge& window_gauge_ = bus_internal::RetainedWindowGauge("link");
  // Declared last: its sinks capture `this` and read the members above.
  LinkReconstructor reconstructor_;
};

// Collects the streamed attempts/exchanges (and incrementally-reconstructed
// transport state) back into the batch structs, without ever buffering the
// jframe stream — for callers that want the whole LinkReconstruction /
// TransportReconstruction but not the jframe vector.
class ReconstructionObserver final : public LinkObserver {
 public:
  explicit ReconstructionObserver(LinkConsumer& link) : link_(&link) {
    link.AddObserver(*this);
  }

  void OnAttempt(const TransmissionAttempt& a) override {
    link_rec_.attempts.push_back(a);
  }
  void OnExchange(const FrameExchange& ex, const JFrame* data) override {
    link_rec_.exchanges.push_back(ex);
    tracker_.OnExchange(ex, data != nullptr ? &data->frame : nullptr);
  }
  void OnLinkFinish() override {
    link_rec_.stats = link_->stats();
    transport_ = tracker_.Finish();
  }

  const LinkReconstruction& link() const { return link_rec_; }
  const TransportReconstruction& transport() const { return transport_; }
  LinkReconstruction TakeLink() { return std::move(link_rec_); }
  TransportReconstruction TakeTransport() { return std::move(transport_); }

 private:
  const LinkConsumer* link_;
  LinkReconstruction link_rec_;
  TransportTracker tracker_;
  TransportReconstruction transport_;
};

// Figure 4: group-dispersion distribution.
class DispersionConsumer final : public JFrameConsumer {
 public:
  explicit DispersionConsumer(bool multi_instance_only = true)
      : multi_instance_only_(multi_instance_only) {}

  const char* name() const override { return "dispersion"; }
  void OnJFrame(const JFrame& jf) override {
    if (multi_instance_only_ && jf.instances.size() < 2) return;
    distribution_.Add(static_cast<double>(jf.dispersion));
  }

  const Distribution& distribution() const { return distribution_; }

 private:
  bool multi_instance_only_;
  Distribution distribution_;
};

// Figure 8: activity / traffic-mix time series.
class ActivityConsumer final : public JFrameConsumer {
 public:
  explicit ActivityConsumer(Micros bin_width) : accumulator_(bin_width) {}

  const char* name() const override { return "activity"; }
  void OnJFrame(const JFrame& jf) override { accumulator_.Add(jf); }
  void Finish() override { series_ = accumulator_.Take(); }

  const ActivitySeries& series() const { return series_; }

 private:
  ActivityAccumulator accumulator_;
  ActivitySeries series_;
};

// Figure 6: wired-oracle coverage.  `wired` must outlive the consumer.
class WiredCoverageConsumer final : public JFrameConsumer {
 public:
  explicit WiredCoverageConsumer(const std::vector<WiredRecord>& wired)
      : wired_(&wired) {}

  const char* name() const override { return "coverage"; }
  void OnJFrame(const JFrame& jf) override { matcher_.AddJFrame(jf); }
  void Finish() override { report_ = matcher_.Match(*wired_); }

  const CoverageReport& report() const { return report_; }

 private:
  const std::vector<WiredRecord>* wired_;
  WiredCoverageMatcher matcher_;
  CoverageReport report_;
};

// Link + transport reconstruction over a full-trace buffer — the opt-in
// batch path.  Most dependents should ride the windowed LinkConsumer
// instead; keep this one for analyses that genuinely need the whole jframe
// vector alongside the reconstruction (e.g. timeline rendering).  Construct
// with a CollectorConsumer to reuse its buffer and avoid even that copy.
class ReconstructionConsumer final : public JFrameConsumer {
 public:
  ReconstructionConsumer() = default;
  explicit ReconstructionConsumer(const CollectorConsumer& shared)
      : shared_(&shared) {}

  const char* name() const override { return "reconstruction"; }
  void OnJFrame(const JFrame& jf) override {
    if (shared_ == nullptr) own_.push_back(jf);
  }
  void Finish() override {
    link_ = ReconstructLink(jframes());
    transport_ = ReconstructTransport(jframes(), link_);
  }

  const std::vector<JFrame>& jframes() const {
    return shared_ ? shared_->jframes() : own_;
  }
  const LinkReconstruction& link() const { return link_; }
  const TransportReconstruction& transport() const { return transport_; }
  LinkReconstruction TakeLink() { return std::move(link_); }
  TransportReconstruction TakeTransport() { return std::move(transport_); }

 private:
  const CollectorConsumer* shared_ = nullptr;
  std::vector<JFrame> own_;
  LinkReconstruction link_;
  TransportReconstruction transport_;
};

// Figure 9: co-channel interference.
//
// Streaming form: construct with a LinkConsumer (registered on the bus
// before this consumer) and the per-channel windowed sweep plus pair
// counters update incrementally — no jframe buffering.  Batch form:
// construct with a ReconstructionConsumer; the report is computed over its
// full-trace buffer at Finish().
class InterferenceConsumer final : public JFrameConsumer,
                                   public LinkObserver {
 public:
  explicit InterferenceConsumer(LinkConsumer& link,
                                InterferenceConfig config = {})
      : link_(&link), tracker_(config) {
    link.AddObserver(*this);
  }
  explicit InterferenceConsumer(const ReconstructionConsumer& reconstruction,
                                InterferenceConfig config = {})
      : reconstruction_(&reconstruction), config_(config) {}

  const char* name() const override { return "interference"; }
  void OnJFrame(const JFrame&) override {}  // fed via the LinkConsumer

  void OnStreamJFrame(const JFrame& jf, std::uint64_t) override {
    tracker_.OnJFrame(jf);
    tracker_.Retire(link_->min_live_jframe());
    window_gauge_.Set(static_cast<std::int64_t>(tracker_.window_size()));
  }
  void OnAttempt(const TransmissionAttempt& a) override {
    tracker_.OnAttempt(a);
  }

  void Finish() override {
    report_ = reconstruction_ != nullptr
                  ? ComputeInterference(reconstruction_->jframes(),
                                        reconstruction_->link(), config_)
                  : tracker_.Finish();
  }

  // Streaming form only: mid-stream Figure-9 report over everything seen
  // so far (the live --follow snapshot path).
  InterferenceReport SnapshotReport() const { return tracker_.Snapshot(); }

  const InterferenceReport& report() const { return report_; }
  const InterferenceTracker& tracker() const { return tracker_; }

 private:
  const LinkConsumer* link_ = nullptr;
  const ReconstructionConsumer* reconstruction_ = nullptr;
  InterferenceConfig config_;
  InterferenceTracker tracker_;
  InterferenceReport report_;
  obs::Gauge& window_gauge_ =
      bus_internal::RetainedWindowGauge("interference");
};

// Figure 11: TCP loss decomposition.  With a labeler, the grouped
// decomposition is computed as well.
//
// Streaming form: construct with a LinkConsumer (registered on the bus
// before this consumer); flows update incrementally as exchanges are
// emitted, so no jframe buffering is needed.  Batch form: construct with a
// ReconstructionConsumer to compute over its full-trace buffer.
class TcpLossConsumer final : public JFrameConsumer, public LinkObserver {
 public:
  explicit TcpLossConsumer(LinkConsumer& link, TcpLossConfig config = {},
                           TcpFlowLabeler labeler = nullptr)
      : config_(config), labeler_(std::move(labeler)) {
    link.AddObserver(*this);
  }
  explicit TcpLossConsumer(const ReconstructionConsumer& reconstruction,
                           TcpLossConfig config = {},
                           TcpFlowLabeler labeler = nullptr)
      : reconstruction_(&reconstruction),
        config_(config),
        labeler_(std::move(labeler)) {}

  const char* name() const override { return "tcp-loss"; }
  void OnJFrame(const JFrame&) override {}  // fed via the LinkConsumer

  void OnExchange(const FrameExchange& ex, const JFrame* data) override {
    tracker_.OnExchange(ex, data != nullptr ? &data->frame : nullptr);
    window_gauge_.Set(static_cast<std::int64_t>(tracker_.flows_tracked()));
  }

  void Finish() override {
    if (reconstruction_ == nullptr) transport_ = tracker_.Finish();
    const TransportReconstruction& transport =
        reconstruction_ != nullptr ? reconstruction_->transport()
                                   : transport_;
    report_ = ComputeTcpLoss(transport, config_);
    if (labeler_) {
      groups_ = ComputeTcpLossByGroup(transport, labeler_, config_);
    }
  }

  const TcpLossReport& report() const { return report_; }
  const std::vector<TcpLossGroup>& groups() const { return groups_; }
  // Streaming form only: the incrementally reconstructed transport layer.
  const TransportReconstruction& transport() const { return transport_; }
  // Streaming form only: mid-stream Figure-11 report over every flow seen
  // so far (the live --follow snapshot path).
  TcpLossReport SnapshotReport() const {
    return ComputeTcpLoss(tracker_.Snapshot(), config_);
  }

 private:
  const ReconstructionConsumer* reconstruction_ = nullptr;
  TcpLossConfig config_;
  TcpFlowLabeler labeler_;
  TransportTracker tracker_;
  TransportReconstruction transport_;
  TcpLossReport report_;
  std::vector<TcpLossGroup> groups_;
  obs::Gauge& window_gauge_ = bus_internal::RetainedWindowGauge("tcp-loss");
};

// Windowed NOC statistics (the live dashboard path).
class OnlineMonitorConsumer final : public JFrameConsumer {
 public:
  OnlineMonitorConsumer(Micros window_width, OnlineMonitor::WindowSink sink)
      : monitor_(window_width, std::move(sink)) {}

  const char* name() const override { return "online-monitor"; }
  void OnJFrame(const JFrame& jf) override { monitor_.OnJFrame(jf); }
  void Finish() override { monitor_.Flush(); }

  const OnlineMonitor& monitor() const { return monitor_; }

 private:
  OnlineMonitor monitor_;
};

}  // namespace jig
