// Single-pass analysis bus: one jframe stream, N consumers.
//
// The paper's efficiency requirement is a single streaming pass over the
// traces; the bus extends that discipline to the analysis layer.  Instead
// of collecting every jframe and re-iterating the vector once per Figure
// (the collect-then-rescan pattern the examples and benches grew), the bus
// fans each jframe of the live merge out to every registered consumer, so
// activity, coverage, dispersion, interference, TCP-loss, and the online
// monitor all ride the same pass:
//
//   AnalysisBus bus;
//   auto& activity = bus.Emplace<ActivityConsumer>(Seconds(1));
//   auto& disp = bus.Emplace<DispersionConsumer>();
//   MergeTracesStreaming(traces, config, bus.Sink());
//   bus.Finish();
//
// Consumers whose analysis inherently needs full link/transport
// reconstruction (interference, TCP loss) share one ReconstructionConsumer
// buffer instead of each keeping a private copy; register the dependency
// before its dependents — Finish() runs in registration order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "jigsaw/analysis/activity.h"
#include "jigsaw/analysis/coverage.h"
#include "jigsaw/analysis/dispersion.h"
#include "jigsaw/analysis/interference.h"
#include "jigsaw/analysis/tcp_loss.h"
#include "jigsaw/jframe.h"
#include "jigsaw/link.h"
#include "jigsaw/online.h"
#include "jigsaw/tcp_reconstruct.h"

namespace jig {

// One subscriber on the jframe stream.  OnJFrame is called once per jframe
// in timestamp order; Finish once after the stream ends.
class JFrameConsumer {
 public:
  virtual ~JFrameConsumer() = default;
  virtual const char* name() const = 0;
  virtual void OnJFrame(const JFrame& jf) = 0;
  virtual void Finish() {}
};

class CollectorConsumer;

class AnalysisBus {
 public:
  JFrameConsumer& Add(std::unique_ptr<JFrameConsumer> consumer) {
    consumers_.push_back(std::move(consumer));
    return *consumers_.back();
  }

  // Constructs a consumer in place and returns a typed reference for
  // reading its results after Finish().
  template <typename C, typename... Args>
  C& Emplace(Args&&... args) {
    auto consumer = std::make_unique<C>(std::forward<Args>(args)...);
    C& ref = *consumer;
    consumers_.push_back(std::move(consumer));
    return ref;
  }

  // Designates a registered collector as the stream terminal: after the
  // const& fan-out to every other consumer, the jframe itself is moved
  // into it — the buffering path stays zero-copy end to end.
  void SetTerminal(CollectorConsumer& collector);

  void OnJFrame(JFrame&& jf);

  void OnJFrame(const JFrame& jf) {
    ++jframes_seen_;
    for (auto& c : consumers_) c->OnJFrame(jf);
  }

  // Finishes every consumer in registration order (dependencies first).
  void Finish() {
    for (auto& c : consumers_) c->Finish();
  }

  // Adapter for MergeTracesStreaming's sink signature.
  std::function<void(JFrame&&)> Sink() {
    return [this](JFrame&& jf) { OnJFrame(std::move(jf)); };
  }

  std::size_t consumer_count() const { return consumers_.size(); }
  std::uint64_t jframes_seen() const { return jframes_seen_; }

 private:
  std::vector<std::unique_ptr<JFrameConsumer>> consumers_;
  CollectorConsumer* terminal_ = nullptr;
  std::uint64_t jframes_seen_ = 0;
};

// ---------------------------------------------------------------------------
// Stock consumers.

// Collects the stream into a vector — for consumers of batch-only APIs
// (e.g. timeline rendering) riding the same pass.  When registered as the
// bus terminal (AnalysisBus::SetTerminal) the jframes are moved in, not
// copied.
class CollectorConsumer final : public JFrameConsumer {
 public:
  const char* name() const override { return "collector"; }
  void OnJFrame(const JFrame& jf) override { jframes_.push_back(jf); }
  void Collect(JFrame&& jf) { jframes_.push_back(std::move(jf)); }

  const std::vector<JFrame>& jframes() const { return jframes_; }
  std::vector<JFrame> Take() { return std::move(jframes_); }

 private:
  std::vector<JFrame> jframes_;
};

inline void AnalysisBus::SetTerminal(CollectorConsumer& collector) {
  terminal_ = &collector;
}

inline void AnalysisBus::OnJFrame(JFrame&& jf) {
  ++jframes_seen_;
  for (auto& c : consumers_) {
    if (c.get() == static_cast<JFrameConsumer*>(terminal_)) continue;
    c->OnJFrame(jf);
  }
  if (terminal_ != nullptr) terminal_->Collect(std::move(jf));
}

// Figure 4: group-dispersion distribution.
class DispersionConsumer final : public JFrameConsumer {
 public:
  explicit DispersionConsumer(bool multi_instance_only = true)
      : multi_instance_only_(multi_instance_only) {}

  const char* name() const override { return "dispersion"; }
  void OnJFrame(const JFrame& jf) override {
    if (multi_instance_only_ && jf.instances.size() < 2) return;
    distribution_.Add(static_cast<double>(jf.dispersion));
  }

  const Distribution& distribution() const { return distribution_; }

 private:
  bool multi_instance_only_;
  Distribution distribution_;
};

// Figure 8: activity / traffic-mix time series.
class ActivityConsumer final : public JFrameConsumer {
 public:
  explicit ActivityConsumer(Micros bin_width) : accumulator_(bin_width) {}

  const char* name() const override { return "activity"; }
  void OnJFrame(const JFrame& jf) override { accumulator_.Add(jf); }
  void Finish() override { series_ = accumulator_.Take(); }

  const ActivitySeries& series() const { return series_; }

 private:
  ActivityAccumulator accumulator_;
  ActivitySeries series_;
};

// Figure 6: wired-oracle coverage.  `wired` must outlive the consumer.
class WiredCoverageConsumer final : public JFrameConsumer {
 public:
  explicit WiredCoverageConsumer(const std::vector<WiredRecord>& wired)
      : wired_(&wired) {}

  const char* name() const override { return "coverage"; }
  void OnJFrame(const JFrame& jf) override { matcher_.AddJFrame(jf); }
  void Finish() override { report_ = matcher_.Match(*wired_); }

  const CoverageReport& report() const { return report_; }

 private:
  const std::vector<WiredRecord>* wired_;
  WiredCoverageMatcher matcher_;
  CoverageReport report_;
};

// Link + transport reconstruction over the full stream.  The
// reconstruction algorithms are inherently whole-trace (retransmission
// chains and covering-ACK oracles look arbitrarily far forward), so this
// consumer buffers the stream — but exactly once, shared by every
// dependent analysis, instead of per-bench copies.  Construct with a
// CollectorConsumer to reuse its buffer and avoid even that copy.
class ReconstructionConsumer final : public JFrameConsumer {
 public:
  ReconstructionConsumer() = default;
  explicit ReconstructionConsumer(const CollectorConsumer& shared)
      : shared_(&shared) {}

  const char* name() const override { return "reconstruction"; }
  void OnJFrame(const JFrame& jf) override {
    if (shared_ == nullptr) own_.push_back(jf);
  }
  void Finish() override {
    link_ = ReconstructLink(jframes());
    transport_ = ReconstructTransport(jframes(), link_);
  }

  const std::vector<JFrame>& jframes() const {
    return shared_ ? shared_->jframes() : own_;
  }
  const LinkReconstruction& link() const { return link_; }
  const TransportReconstruction& transport() const { return transport_; }
  LinkReconstruction TakeLink() { return std::move(link_); }
  TransportReconstruction TakeTransport() { return std::move(transport_); }

 private:
  const CollectorConsumer* shared_ = nullptr;
  std::vector<JFrame> own_;
  LinkReconstruction link_;
  TransportReconstruction transport_;
};

// Figure 9: co-channel interference.  Register after `reconstruction`.
class InterferenceConsumer final : public JFrameConsumer {
 public:
  explicit InterferenceConsumer(const ReconstructionConsumer& reconstruction,
                                InterferenceConfig config = {})
      : reconstruction_(&reconstruction), config_(config) {}

  const char* name() const override { return "interference"; }
  void OnJFrame(const JFrame&) override {}
  void Finish() override {
    report_ = ComputeInterference(reconstruction_->jframes(),
                                  reconstruction_->link(), config_);
  }

  const InterferenceReport& report() const { return report_; }

 private:
  const ReconstructionConsumer* reconstruction_;
  InterferenceConfig config_;
  InterferenceReport report_;
};

// Figure 11: TCP loss decomposition.  Register after `reconstruction`.
// With a labeler, the grouped decomposition is computed as well.
class TcpLossConsumer final : public JFrameConsumer {
 public:
  explicit TcpLossConsumer(const ReconstructionConsumer& reconstruction,
                           TcpLossConfig config = {},
                           TcpFlowLabeler labeler = nullptr)
      : reconstruction_(&reconstruction),
        config_(config),
        labeler_(std::move(labeler)) {}

  const char* name() const override { return "tcp-loss"; }
  void OnJFrame(const JFrame&) override {}
  void Finish() override {
    report_ = ComputeTcpLoss(reconstruction_->transport(), config_);
    if (labeler_) {
      groups_ = ComputeTcpLossByGroup(reconstruction_->transport(), labeler_,
                                      config_);
    }
  }

  const TcpLossReport& report() const { return report_; }
  const std::vector<TcpLossGroup>& groups() const { return groups_; }

 private:
  const ReconstructionConsumer* reconstruction_;
  TcpLossConfig config_;
  TcpFlowLabeler labeler_;
  TcpLossReport report_;
  std::vector<TcpLossGroup> groups_;
};

// Windowed NOC statistics (the live dashboard path).
class OnlineMonitorConsumer final : public JFrameConsumer {
 public:
  OnlineMonitorConsumer(Micros window_width, OnlineMonitor::WindowSink sink)
      : monitor_(window_width, std::move(sink)) {}

  const char* name() const override { return "online-monitor"; }
  void OnJFrame(const JFrame& jf) override { monitor_.OnJFrame(jf); }
  void Finish() override { monitor_.Flush(); }

  const OnlineMonitor& monitor() const { return monitor_; }

 private:
  OnlineMonitor monitor_;
};

}  // namespace jig
