// Trace visualization — paper Figures 1 and 2.
//
// Figure 2 of the paper shows Jigsaw's own visualization of a synchronized
// trace: radios on the y-axis, microseconds on the x-axis, each reception
// drawn for its air-time with its signal strength, corrupted receptions
// marked.  RenderTimeline produces the ASCII equivalent from a jframe
// window — the fastest way to eyeball whether unification is grouping the
// right instances.
//
// Figure 1 is the deployment floorplan (APs as triangles, pods as circle
// pairs); RenderFloorplan draws a floor of the simulated building.
#pragma once

#include <string>
#include <vector>

#include "jigsaw/jframe.h"
#include "phy/geometry.h"
#include "sim/scenario.h"

namespace jig {

struct TimelineOptions {
  UniversalMicros start = 0;   // 0: begin at the first jframe in range
  Micros span = 5'000;         // window width (us)
  int width_cols = 100;        // terminal columns for the time axis
  std::size_t max_radios = 24;
};

// Renders jframes intersecting [start, start+span) as a radio/time grid:
// '#' spans a valid reception, 'x' a corrupted one, '.' idle air.  A legend
// lists each jframe with its timestamp, contents and dispersion.
std::string RenderTimeline(const std::vector<JFrame>& jframes,
                           const TimelineOptions& options = {});

// Renders one floor of the deployment: '^' production APs, 'O' monitor
// pods, '.' clients, all on a meter-scaled grid.
std::string RenderFloorplan(const BuildingModel& building,
                            const std::vector<ApInfo>& aps,
                            const std::vector<PodInfo>& pods,
                            const std::vector<ClientInfo>& clients,
                            int floor);

}  // namespace jig
