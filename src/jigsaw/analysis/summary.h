// Trace summary — Table 1 of the paper.
//
// The paper's Table 1 reports: trace duration, monitor/radio counts, total
// events observed, the fraction that are PHY/CRC errors (~47%), unified
// events, jframe count, events per jframe (~2.97), and the client/AP
// population.  We add the reconstruction-stage statistics quoted in the
// text (Section 5.1: 0.58% of attempts and 0.14% of exchanges require
// inference).
#pragma once

#include <iosfwd>

#include "jigsaw/link.h"
#include "jigsaw/pipeline.h"
#include "jigsaw/tcp_reconstruct.h"

namespace jig {

struct TraceSummary {
  double duration_s = 0.0;
  std::size_t radios = 0;
  std::uint64_t total_events = 0;
  double error_event_fraction = 0.0;  // (FCS + PHY errors) / events
  std::uint64_t unified_events = 0;
  std::uint64_t jframes = 0;
  double events_per_jframe = 0.0;
  std::uint64_t clients_observed = 0;
  std::uint64_t aps_observed = 0;
  std::uint64_t data_frames = 0;
  std::uint64_t mgmt_frames = 0;
  std::uint64_t ctrl_frames = 0;
  std::uint64_t attempts = 0;
  std::uint64_t exchanges = 0;
  double attempt_inference_rate = 0.0;
  double exchange_inference_rate = 0.0;
  std::uint64_t tcp_flows = 0;
  std::uint64_t tcp_flows_with_handshake = 0;
};

TraceSummary Summarize(const MergeResult& merge,
                       const LinkReconstruction& link,
                       const TransportReconstruction& transport,
                       std::size_t radios);

// Prints the summary as a Table-1-style listing.
void PrintSummary(const TraceSummary& summary, std::ostream& os);

}  // namespace jig
