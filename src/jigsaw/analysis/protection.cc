#include "jigsaw/analysis/protection.h"

#include <unordered_map>
#include <unordered_set>

namespace jig {

ProtectionSeries ComputeProtection(const std::vector<JFrame>& jframes,
                                   const ProtectionConfig& config) {
  ProtectionSeries out;
  out.bin_width = config.bin_width;
  if (jframes.empty()) return out;
  out.origin = jframes.front().timestamp;
  const std::size_t bins = static_cast<std::size_t>(
      (jframes.back().timestamp - out.origin) / config.bin_width + 1);
  out.overprotective_aps.assign(bins, 0);
  out.g_clients_on_overprotective.assign(bins, 0);
  out.active_g_clients.assign(bins, 0);

  // Pass 1: classify stations by observed rates — any OFDM transmission
  // marks a station 802.11g.
  std::unordered_map<MacAddress, bool> saw_ofdm;
  for (const JFrame& jf : jframes) {
    const Frame& f = jf.frame;
    if (!f.HasTransmitter() || !f.addr2.IsClientTag()) continue;
    if (f.type != FrameType::kData && !IsManagement(f.type)) continue;
    saw_ofdm[f.addr2] = saw_ofdm[f.addr2] || IsOfdm(jf.rate);
  }
  const auto is_b_client = [&](MacAddress mac) {
    auto it = saw_ofdm.find(mac);
    return it != saw_ofdm.end() && !it->second;
  };
  const auto is_g_client = [&](MacAddress mac) {
    auto it = saw_ofdm.find(mac);
    return it != saw_ofdm.end() && it->second;
  };

  // Pass 2: sweep time, tracking per-AP protection usage and b-client
  // sightings, plus per-bin activity.
  std::unordered_map<MacAddress, UniversalMicros> last_cts;    // per AP
  std::unordered_map<MacAddress, UniversalMicros> last_b_seen; // per AP
  std::unordered_map<MacAddress, MacAddress> client_ap;        // association
  std::vector<std::unordered_set<MacAddress>> bin_g_active(bins);

  std::size_t frame_idx = 0;
  for (std::size_t bin = 0; bin < bins; ++bin) {
    const UniversalMicros bin_end =
        out.origin + static_cast<Micros>(bin + 1) * config.bin_width;
    for (; frame_idx < jframes.size() &&
           jframes[frame_idx].timestamp < bin_end;
         ++frame_idx) {
      const JFrame& jf = jframes[frame_idx];
      const Frame& f = jf.frame;
      switch (f.type) {
        case FrameType::kCts: {
          // CTS-to-self: attribute to the AP's BSS — either the AP itself
          // or one of its (last-known association) clients.
          if (f.addr1.IsApTag()) {
            last_cts[f.addr1] = jf.timestamp;
          } else if (f.addr1.IsClientTag()) {
            auto it = client_ap.find(f.addr1);
            if (it != client_ap.end()) last_cts[it->second] = jf.timestamp;
          }
          break;
        }
        case FrameType::kProbeResponse:
          // AP answering a probe: evidence the probing client is in range.
          if (f.addr2.IsApTag() && is_b_client(f.addr1)) {
            last_b_seen[f.addr2] = jf.timestamp;
          }
          break;
        case FrameType::kAssocRequest:
        case FrameType::kAuthentication:
          if (f.addr1.IsApTag() && is_b_client(f.addr2)) {
            last_b_seen[f.addr1] = jf.timestamp;
          }
          break;
        case FrameType::kData: {
          if (f.to_ds && f.addr2.IsClientTag() && f.addr1.IsApTag()) {
            client_ap[f.addr2] = f.addr1;
            if (is_b_client(f.addr2)) last_b_seen[f.addr1] = jf.timestamp;
            if (is_g_client(f.addr2)) bin_g_active[bin].insert(f.addr2);
          } else if (f.from_ds && f.addr1.IsClientTag() &&
                     f.addr2.IsApTag()) {
            client_ap[f.addr1] = f.addr2;
            if (is_g_client(f.addr1)) bin_g_active[bin].insert(f.addr1);
          }
          break;
        }
        default:
          break;
      }
    }

    // Evaluate AP protection state at the end of the bin.
    std::unordered_set<MacAddress> overprotective;
    // lint-determinism: allow(builds a set consumed only via contains/size)
    for (const auto& [ap, t_cts] : last_cts) {
      if (bin_end - t_cts > config.protection_active_window) continue;
      auto bit = last_b_seen.find(ap);
      const bool justified =
          bit != last_b_seen.end() &&
          bin_end - bit->second <= config.practical_timeout;
      if (!justified) overprotective.insert(ap);
    }
    out.overprotective_aps[bin] = static_cast<int>(overprotective.size());
    out.active_g_clients[bin] = static_cast<int>(bin_g_active[bin].size());
    int affected = 0;
    for (const MacAddress& c : bin_g_active[bin]) {
      auto it = client_ap.find(c);
      if (it != client_ap.end() && overprotective.contains(it->second)) {
        ++affected;
      }
    }
    out.g_clients_on_overprotective[bin] = affected;
  }
  return out;
}

}  // namespace jig
