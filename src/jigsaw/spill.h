// On-disk spill tier for shard output queues (docs/FORMATS.md, "Spill
// segment format").
//
// The sharded merge bounds each shard's output queue at
// kMergeQueueWatermark: when a consumer lags (a paused dashboard, a slow
// analysis) the queues fill and backpressure stops the unifiers from
// consuming their traces — the merge stalls with the capture side.  The
// spill tier removes that coupling: once a queue crosses the configured
// threshold the worker drains it into compressed spill segments on disk,
// and the k-way merge transparently replays the segments in FIFO order
// before resuming in-memory hand-off.  A consumer can therefore lag
// minutes behind bounded only by disk, not by kMergeQueueWatermark.
//
// Spill segments are versioned framed files ("JIGS" magic) that reuse the
// trace layer's block framing, LZ compression and error taxonomy: the same
// [u32 0] finalize marker as .jigt, TraceTruncatedError for a file that
// ends mid-structure (a crash mid-spill), TraceCorruptError for bytes that
// can never parse.  A crash is therefore detected and reported, never
// silently merged.  Unlike .jigt there is no index trailer — segments are
// only ever replayed sequentially.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "jigsaw/jframe.h"
#include "trace/trace_file.h"

namespace jig {

// On-disk structure constants, shared with `jigtool inspect-spill`.
inline constexpr char kSpillMagic[4] = {'J', 'I', 'G', 'S'};
inline constexpr std::uint32_t kSpillVersion = 1;
// Same sanity bound as .jigt blocks: anything past this is a garbage
// length field, not a block that has not finished writing.
inline constexpr std::uint32_t kMaxSpillBlockLen = kMaxPackedBlockLen;

// Identifies a segment's place in its shard's spill stream.
struct SpillSegmentHeader {
  std::uint8_t channel = 0;    // shard channel number (1 / 6 / 11)
  std::uint64_t sequence = 0;  // per-shard segment sequence, from 0
};

// Lossless jframe (de)serialization for spill blocks.  Every field of
// JFrame / FrameInstance / Frame round-trips bit-exactly — the spill tier
// sits inside the byte-identical determinism contract, so "close enough"
// is not available.  Deserialization failures surface as the ByteReader's
// std::runtime_error; SpillSegmentReader wraps them as TraceCorruptError.
void SerializeJFrame(const JFrame& jf, Bytes& out);
JFrame DeserializeJFrame(ByteReader& r);

// Appends jframes to one spill segment.  Mirrors TraceFileWriter: records
// buffer into a pending block, Sync() cuts + flushes it (the publication
// point a concurrent reader may rely on), Finish() writes the [u32 0]
// finalize marker.
class SpillSegmentWriter {
 public:
  SpillSegmentWriter(const std::filesystem::path& path,
                     const SpillSegmentHeader& header,
                     std::size_t records_per_block = 256);
  ~SpillSegmentWriter();

  SpillSegmentWriter(const SpillSegmentWriter&) = delete;
  SpillSegmentWriter& operator=(const SpillSegmentWriter&) = delete;

  void Append(const JFrame& jf);
  void Sync();
  void Finish();
  // Closes the segment the way a crash would leave it: the pending uncut
  // block is discarded and NO finalize marker is written, so a later
  // strict read reports truncation and a tail read stops at the last
  // published block.  The monitoring service's simulated-kill path uses
  // this — the destructor's implicit Finish() would forge an end-of-
  // stream marker the "crashed" process never wrote.  Idempotent; the
  // writer is unusable afterwards (Append/Sync/Finish throw).
  void Abandon();

  std::uint64_t records_written() const { return records_written_; }
  // Bytes landed in the file so far (published blocks + header/trailer);
  // excludes the pending uncut block.
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  void FlushBlock();

  std::FILE* file_ = nullptr;
  std::size_t records_per_block_;
  Bytes pending_;
  std::uint32_t pending_count_ = 0;
  std::uint64_t records_written_ = 0;
  std::uint64_t bytes_written_ = 0;
  bool finished_ = false;
};

// Sequential reader over one spill segment.
//
// Two frontier disciplines, matching the .jigt tail rules:
//   * tail mode (strict = false): a file that ends mid-structure is "no
//     data yet" — Next() returns nullopt and a later call re-polls from
//     the same frontier.  Used for in-session replay of the still-open
//     segment.
//   * strict mode (strict = true): the segment is expected complete, so a
//     missing finalize marker or a torn trailing block is a
//     TraceTruncatedError (a crash mid-spill), and garbage is a
//     TraceCorruptError.  Used by `jigtool inspect-spill` and recovery.
class SpillSegmentReader {
 public:
  explicit SpillSegmentReader(const std::filesystem::path& path,
                              bool strict = true);
  ~SpillSegmentReader();

  SpillSegmentReader(const SpillSegmentReader&) = delete;
  SpillSegmentReader& operator=(const SpillSegmentReader&) = delete;

  const SpillSegmentHeader& header() const { return header_; }
  // nullopt at the frontier (tail mode) or after the finalize marker.
  std::optional<JFrame> Next();
  bool finalized() const { return finalized_; }
  std::uint64_t records_read() const { return records_read_; }
  std::uint64_t blocks_read() const { return blocks_read_; }

 private:
  bool LoadNextBlock();  // false at frontier/terminator

  std::FILE* file_ = nullptr;
  bool strict_;
  SpillSegmentHeader header_;
  std::vector<JFrame> block_;
  std::size_t block_pos_ = 0;
  bool finalized_ = false;
  std::uint64_t records_read_ = 0;
  std::uint64_t blocks_read_ = 0;
};

// Shared disk budget across every shard's SpillQueue.  limit == 0 means
// uncapped.  Workers on different shards charge concurrently, hence the
// atomic; the cap is enforced at block granularity (a shard may overshoot
// by at most one compressed block before it notices).
struct SpillBudget {
  std::uint64_t limit = 0;
  std::atomic<std::uint64_t> used{0};

  bool Full() const {
    return limit != 0 && used.load(std::memory_order_relaxed) >= limit;
  }
  void Charge(std::uint64_t n) {
    used.fetch_add(n, std::memory_order_relaxed);
  }
  // Saturating: releasing more than is charged clamps `used` at 0 instead
  // of wrapping the unsigned counter.  A wrap would leave `used` enormous,
  // latch Full() permanently true, and silently disable the spill tier for
  // the rest of the session — far worse than the transient under-count it
  // papers over.
  void Release(std::uint64_t n) {
    std::uint64_t cur = used.load(std::memory_order_relaxed);
    while (!used.compare_exchange_weak(cur, cur >= n ? cur - n : 0,
                                       std::memory_order_relaxed)) {
    }
  }
};

// FIFO of jframes staged on disk between one shard's unifier and the k-way
// merge.  Push/Sync run on the shard's worker thread; Pop runs on the
// Poll() thread strictly after the worker round (the round barrier orders
// them), so no internal locking is needed — the only cross-shard state is
// the atomic budget.
//
// Segments rotate at ~segment_bytes so replayed data is reclaimed
// promptly: a fully-replayed finished segment is deleted and its bytes
// returned to the budget.  The destructor removes any remaining segments
// — spill files never outlive their session.
class SpillQueue {
 public:
  SpillQueue(std::filesystem::path dir, std::uint8_t channel,
             SpillBudget* budget,
             std::uint64_t segment_bytes = kDefaultSegmentBytes);
  ~SpillQueue();

  SpillQueue(const SpillQueue&) = delete;
  SpillQueue& operator=(const SpillQueue&) = delete;

  // False when the budget is exhausted — the caller keeps jf queued,
  // degrading to plain watermark backpressure.  On success the caller still
  // owns jf (it was serialized, not consumed) and may recycle it.
  bool Push(const JFrame& jf);
  // Publishes everything pushed so far for Pop().
  void Sync();
  // Next jframe in FIFO order; nullopt when everything published has been
  // replayed.
  std::optional<JFrame> Pop();
  // Reclaims every segment once the queue is fully replayed (no-op
  // otherwise).  Pop() deletes *finished* segments as it passes them, but
  // the open segment can only be reclaimed here: it never rotates while
  // the budget refuses Push, so without this hook a drained-dry open
  // segment would pin its budget bytes for the rest of the session.
  // Caller side (the consumer, once it un-latches spilling).
  void ReclaimDrained();

  // True when every pushed jframe has been popped.
  bool Empty() const { return replayed_ == spilled_; }
  std::uint64_t spilled_jframes() const { return spilled_; }
  std::uint64_t replayed_jframes() const { return replayed_; }
  // Current on-disk footprint (bytes of segments not yet reclaimed).
  std::uint64_t bytes_on_disk() const { return bytes_on_disk_; }

  static constexpr std::uint64_t kDefaultSegmentBytes = 8ull << 20;

 private:
  struct Segment {
    std::filesystem::path path;
    bool finished = false;
    std::uint64_t charged = 0;  // bytes charged to the budget so far
  };

  void OpenSegmentForPush();
  void ChargeDelta();
  // Deletes the segment's file and returns its charged bytes to the
  // budget / footprint / gauge, exactly once: `charged` is zeroed so a
  // second call (e.g. destructor after ReclaimDrained, or any future
  // reclaim path racing a teardown) is a no-op instead of a double
  // release.  Every reclaim site funnels through here.
  void ReleaseSegment(Segment& seg);

  std::filesystem::path dir_;
  std::uint8_t channel_;
  SpillBudget* budget_;
  std::uint64_t segment_bytes_;
  std::uint64_t next_sequence_ = 0;
  std::deque<Segment> segments_;  // front = oldest (being replayed)
  std::unique_ptr<SpillSegmentWriter> writer_;  // over segments_.back()
  std::unique_ptr<SpillSegmentReader> reader_;  // over segments_.front()
  std::uint64_t spilled_ = 0;
  std::uint64_t replayed_ = 0;
  std::uint64_t bytes_on_disk_ = 0;
};

}  // namespace jig
