#include "jigsaw/bootstrap.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <limits>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "jigsaw/reference.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace jig {
namespace {

struct Sighting {
  std::size_t trace = 0;
  LocalMicros local_ts = 0;
};

struct BootstrapMetrics {
  obs::Histogram& fit_us = obs::MetricRegistry::Global().GetHistogram(
      "jig_bootstrap_fit_us", obs::LatencyBucketsUs(),
      "Wall time of one sync-window fit");
  obs::Counter& runs = obs::MetricRegistry::Global().GetCounter(
      "jig_bootstrap_runs_total", "Bootstrap synchronization passes");
  obs::Counter& reference_frames = obs::MetricRegistry::Global().GetCounter(
      "jig_bootstrap_reference_frames_total",
      "Unique reference frames considered across bootstrap windows");
};

BootstrapMetrics& Metrics() {
  static BootstrapMetrics* m = new BootstrapMetrics();
  return *m;
}

}  // namespace

BootstrapResult BootstrapSynchronize(TraceSet& traces,
                                     const BootstrapConfig& config) {
  BootstrapMetrics& metrics = Metrics();
  obs::StageTimer fit_timer(metrics.fit_us);
  metrics.runs.Add(1);
  const std::size_t n = traces.size();
  if (n == 0) throw std::runtime_error("bootstrap: empty trace set");

  traces.RewindAll();

  // The paper examines "the first second of data from each trace" (footnote
  // 4: located via the NTP-disciplined system clock — the only place the
  // system clock is ever used).  Each trace contributes sightings from its
  // own first `window` of data; shared frames land in both participants'
  // windows because the monitors' true start times are close.
  std::vector<std::int64_t> ntp0(n);
  for (std::size_t i = 0; i < n; ++i) {
    ntp0[i] = traces.at(i).header().ntp_utc_of_local_zero_us;
  }

  // Collect sightings of unique frames inside each trace's window.  The
  // scan uses the zero-copy NextRef path: it touches every record of every
  // window and keeps none of them.
  std::unordered_map<ContentKey, std::vector<Sighting>> sets;
  BootstrapResult result;
  result.offset_us.assign(n, 0.0);
  result.synced.assign(n, false);

  for (std::size_t i = 0; i < n; ++i) {
    RecordStream& stream = traces.at(i);
    const CaptureRecord* rec = stream.NextRef();
    const std::int64_t window_end =
        rec ? ntp0[i] + rec->timestamp + config.window
            : std::numeric_limits<std::int64_t>::min();
    while (rec) {
      const std::int64_t utc = ntp0[i] + rec->timestamp;
      if (utc >= window_end) break;
      if (IsUniqueReference(*rec)) {
        ++result.reference_frames_considered;
        const ContentKey key = MakeContentKey(rec->bytes);
        auto& sightings = sets[key];
        // A radio records a given transmission at most once; duplicates of
        // the same key from one radio would be distinct transmissions with
        // colliding content (never for unique frames) — keep the first.
        const bool seen = std::any_of(
            sightings.begin(), sightings.end(),
            [i](const Sighting& s) { return s.trace == i; });
        if (!seen) sightings.push_back(Sighting{i, rec->timestamp});
      }
      rec = stream.NextRef();
    }
  }

  // Per trace, pick the reference set with the most radios; union into G.
  // Overlap between the chosen sets is what makes offsets globally
  // consistent, so G is kept minimal — but when the greedy choice leaves G
  // partitioned, additional sets are admitted until the synchronization
  // graph is connected (the paper's stated fallback).
  std::vector<const std::vector<Sighting>*> g_sets;
  {
    std::unordered_map<ContentKey, bool> in_g;
    std::vector<std::pair<ContentKey, const std::vector<Sighting>*>> best(
        n, {ContentKey{}, nullptr});
    // Winner per trace is the (size, key)-maximal set — a total order, so
    // the hash-map visit order cannot influence which set is chosen even
    // when several candidates tie on size.
    // lint-determinism: allow(selection is by (size, key) total order)
    for (const auto& [key, sightings] : sets) {
      if (sightings.size() < config.min_set_size) continue;
      for (const Sighting& s : sightings) {
        auto& cur = best[s.trace];
        if (!cur.second || sightings.size() > cur.second->size() ||
            (sightings.size() == cur.second->size() && key < cur.first)) {
          cur = {key, &sightings};
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!best[i].second) continue;
      if (!in_g[best[i].first]) {
        in_g[best[i].first] = true;
        g_sets.push_back(best[i].second);
      }
    }

    // Union-find over traces: merge components along G's sets and monitor
    // clock siblings; then admit extra sets that bridge components.
    std::vector<std::size_t> parent(n);
    for (std::size_t i = 0; i < n; ++i) parent[i] = i;
    std::function<std::size_t(std::size_t)> find =
        [&](std::size_t x) -> std::size_t {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    const auto unite = [&](std::size_t a, std::size_t b) {
      parent[find(a)] = find(b);
    };
    for (const auto* sightings : g_sets) {
      for (std::size_t k = 1; k < sightings->size(); ++k) {
        unite((*sightings)[0].trace, (*sightings)[k].trace);
      }
    }
    {
      std::unordered_map<std::uint16_t, std::size_t> monitor_first;
      for (std::size_t i = 0; i < n; ++i) {
        auto [it, inserted] =
            monitor_first.emplace(traces.at(i).header().monitor, i);
        if (!inserted) unite(it->second, i);
      }
    }
    // Larger sets first: fewer additions bridge more.  Ties on size are
    // broken by content key so the admission order (and therefore which
    // sets end up bridging) is independent of hash-map layout.
    std::vector<std::pair<ContentKey, const std::vector<Sighting>*>> spare;
    // lint-determinism: allow(collection only; sorted by (size, key) below)
    for (const auto& [key, sightings] : sets) {
      if (sightings.size() < config.min_set_size) continue;
      if (in_g[key]) continue;
      spare.emplace_back(key, &sightings);
    }
    std::sort(spare.begin(), spare.end(), [](const auto& a, const auto& b) {
      if (a.second->size() != b.second->size()) {
        return a.second->size() > b.second->size();
      }
      return a.first < b.first;
    });
    for (const auto& [key, sightings] : spare) {
      bool bridges = false;
      const std::size_t root = find((*sightings)[0].trace);
      for (std::size_t k = 1; k < sightings->size(); ++k) {
        if (find((*sightings)[k].trace) != root) {
          bridges = true;
          break;
        }
      }
      if (!bridges) continue;
      for (std::size_t k = 1; k < sightings->size(); ++k) {
        unite((*sightings)[0].trace, (*sightings)[k].trace);
      }
      g_sets.push_back(sightings);
    }
  }
  result.sync_set_size = g_sets.size();

  // Build the synchronization graph: edges from shared reference frames,
  // with delta such that T_j = T_i + delta, plus zero-delta edges between
  // radios sharing a monitor clock (the cross-channel bridge).
  struct Edge {
    std::size_t to;
    double delta;
  };
  std::vector<std::vector<Edge>> adj(n);
  for (const auto* sightings : g_sets) {
    for (std::size_t a = 0; a < sightings->size(); ++a) {
      for (std::size_t b = a + 1; b < sightings->size(); ++b) {
        const auto& sa = (*sightings)[a];
        const auto& sb = (*sightings)[b];
        const double delta =
            static_cast<double>(sa.local_ts - sb.local_ts);
        adj[sa.trace].push_back(Edge{sb.trace, delta});
        adj[sb.trace].push_back(Edge{sa.trace, -delta});
      }
    }
  }
  {
    std::unordered_map<std::uint16_t, std::size_t> monitor_first;
    for (std::size_t i = 0; i < n; ++i) {
      const auto mon = traces.at(i).header().monitor;
      auto [it, inserted] = monitor_first.emplace(mon, i);
      if (!inserted) {
        adj[it->second].push_back(Edge{i, 0.0});
        adj[i].push_back(Edge{it->second, 0.0});
      }
    }
  }

  // BFS from trace 0; universal time anchored at its NTP estimate so
  // universal ~ UTC at bootstrap (it will drift, by design — Section 4.2).
  std::deque<std::pair<std::size_t, int>> queue;
  result.offset_us[0] = static_cast<double>(ntp0[0]);
  result.synced[0] = true;
  queue.emplace_back(0, 0);
  while (!queue.empty()) {
    const auto [u, depth] = queue.front();
    queue.pop_front();
    result.max_bfs_depth = std::max(result.max_bfs_depth, depth);
    for (const Edge& e : adj[u]) {
      if (result.synced[e.to]) continue;
      result.synced[e.to] = true;
      result.offset_us[e.to] = result.offset_us[u] + e.delta;
      queue.emplace_back(e.to, depth + 1);
    }
  }

  traces.RewindAll();
  metrics.reference_frames.Add(result.reference_frames_considered);
  return result;
}

}  // namespace jig
