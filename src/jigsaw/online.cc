#include "jigsaw/online.h"

#include "wifi/channel.h"

namespace jig {

void OnlineMonitor::CloseWindow() {
  if (!window_open_) return;
  current_.airtime_fraction =
      airtime_us_ / static_cast<double>(width_) /
      static_cast<double>(kAllChannels.size());
  current_.broadcast_airtime_fraction =
      broadcast_airtime_us_ / static_cast<double>(width_) /
      static_cast<double>(kAllChannels.size());
  current_.active_clients = static_cast<int>(clients_.size());
  current_.active_aps = static_cast<int>(aps_.size());
  sink_(current_);
  ++windows_emitted_;
  window_open_ = false;
}

void OnlineMonitor::OnJFrame(const JFrame& jf) {
  if (window_open_ && jf.timestamp >= current_.window_start + width_) {
    CloseWindow();
  }
  if (!window_open_) {
    window_open_ = true;
    current_ = OnlineWindowStats{};
    // Windows align to multiples of width from the first-seen timestamp's
    // window, so idle gaps skip windows rather than stretching one.
    current_.window_start = jf.timestamp - (jf.timestamp % width_);
    current_.width = width_;
    airtime_us_ = 0.0;
    broadcast_airtime_us_ = 0.0;
    clients_.clear();
    aps_.clear();
  }

  ++current_.jframes;
  const Frame& f = jf.frame;
  if (IsControl(f.type)) {
    ++current_.ctrl_frames;
  } else if (IsManagement(f.type)) {
    ++current_.mgmt_frames;
  } else {
    ++current_.data_frames;
  }
  for (const FrameInstance& inst : jf.instances) {
    if (inst.outcome != RxOutcome::kOk) ++current_.corrupted_instances;
  }
  current_.bytes_on_air += jf.wire_len;
  const double air = static_cast<double>(TxDurationMicros(jf.rate,
                                                          jf.wire_len));
  airtime_us_ += air;
  if (!f.addr1.IsUnicast()) broadcast_airtime_us_ += air;
  current_.worst_dispersion =
      std::max(current_.worst_dispersion, jf.dispersion);

  if (f.HasTransmitter()) {
    if (f.addr2.IsClientTag()) clients_.insert(f.addr2);
    if (f.addr2.IsApTag()) aps_.insert(f.addr2);
  }
}

void OnlineMonitor::Flush() { CloseWindow(); }

}  // namespace jig
