// Two-level (wing -> root) distributed merge topology.
//
// The paper's deployment pulled ~150 radio traces to one central server;
// scaling past one machine calls for the classic collector tree: a *wing*
// node sits near a group of radios, runs a normal MergeSession over them,
// and relays their record streams to a *root* node, which k-way merges
// every wing's sub-streams into the single global jframe stream.
//
// Determinism contract: the root's output is byte-identical to a
// single-node merge over the same traces.  The wing therefore relays each
// radio's records verbatim — one valid per-radio .jigt socket stream per
// radio (docs/FORMATS.md socket transport), paced by the wing's own merge
// consumption — rather than shipping its locally-unified jframes: a
// wing-local unification bakes in per-wing bootstrap offsets that cannot
// be reconciled back to the global solution byte-for-byte.  The wing's
// MergeSession still runs (its jframe stream feeds wing-local analyses
// and the per-wing lag metric), and the boundary-overlap reconciliation —
// re-grouping frames heard by radios on *different* wings — falls out of
// the root's global unifier, which sees every wing's copies side by side.
// docs/ARCHITECTURE.md walks through the topology.
//
// Per-wing observability (labeled wing="<id>"):
//   jig_wing_uplink_records_total   records relayed to the root
//   jig_wing_uplink_bytes_total     framed bytes relayed
//   jig_wing_lag_us                 the wing merge's live lag
// Root side:
//   jig_root_boundary_jframes_total jframes unifying copies from >1 wing
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "jigsaw/pipeline.h"
#include "trace/net.h"
#include "trace/socket_trace.h"
#include "trace/trace_set.h"

namespace jig {

struct WingConfig {
  std::uint32_t wing_id = 0;
  std::string root_host = "127.0.0.1";
  std::uint16_t root_port = 0;
  // Local merge settings (threads, spill, ...).  The wing's merge output
  // is discarded here; only its consumption paces the relay.
  MergeConfig merge;
  // Records per relayed block.  Small blocks publish sooner (lower root
  // latency), large blocks compress better.
  std::size_t records_per_block = 256;
  // How long to keep retrying the root connection before giving up.
  int connect_timeout_ms = 10000;
};

// Drives one wing: connects one uplink per local radio, then runs the
// local MergeSession to completion, relaying every record exactly once in
// stream order.  The local traces may be live (tail-follow) sources; the
// relay finalizes each uplink as soon as its radio's capture is finalized
// and fully relayed.
class WingSession {
 public:
  // `traces` must outlive the session.  Throws std::runtime_error when
  // the root cannot be reached within connect_timeout_ms.
  WingSession(TraceSet& traces, const WingConfig& config);
  ~WingSession();

  // Polls the local merge until kDone, relaying as it goes.  Blocking;
  // run one thread per wing.
  MergeStreamStats Run();

  std::uint64_t records_relayed() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

struct RootConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0: ephemeral; RootSession::port() reports it
  std::size_t n_streams = 0;  // total radios expected across all wings
  MergeConfig merge;
  int accept_timeout_ms = 30000;
  // Adopt re-dialed uplinks: a wing that drops and dials again with the
  // same source id resumes its streams (the sender replays from record
  // zero; already-received records are deduplicated) instead of poisoning
  // the merge as duplicate radios.  While a wing is down its streams park
  // — the root waits rather than emitting a truncated capture.  Turn OFF
  // for one-shot collections where a lost wing should fail fast with
  // TraceTruncatedError.
  bool resume_reconnects = true;
};

// The root: accepts n_streams socket traces (from any number of wings),
// then runs the normal global MergeSession over them.  Every jframe goes
// to the caller's sink in timestamp order — byte-identical to the
// single-node merge of the same traces.
class RootSession {
 public:
  // Binds and listens immediately, so wings may start connecting before
  // Run() is called.
  explicit RootSession(const RootConfig& config);
  ~RootSession();

  std::uint16_t port() const;

  // Accepts the streams and merges to completion.
  MergeStreamStats Run(std::function<void(JFrame&&)> sink);

  // Jframes whose instances span more than one wing — the boundary
  // overlaps the root's unifier reconciled.
  std::uint64_t boundary_jframes() const;
  std::uint64_t jframes() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace jig
