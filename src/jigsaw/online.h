// Online monitoring: streaming per-window statistics from the live merge.
//
// The paper's efficiency requirement exists precisely so Jigsaw can run
// online ("To permit online applications, trace merging should execute
// faster than real-time", Section 4) — the operators' closing questions
// ("Why is the network slow?") need answers while the network is slow.
// OnlineMonitor consumes the jframe stream (MergeTracesStreaming's sink, or
// any time-ordered source) and emits one statistics record per wall-clock
// window: activity, traffic mix, air-time utilization and synchronization
// health.
#pragma once

#include <functional>
#include <unordered_set>

#include "jigsaw/jframe.h"
#include "wifi/packet.h"

namespace jig {

struct OnlineWindowStats {
  UniversalMicros window_start = 0;
  Micros width = 0;
  std::uint64_t jframes = 0;
  std::uint64_t data_frames = 0;
  std::uint64_t mgmt_frames = 0;
  std::uint64_t ctrl_frames = 0;
  std::uint64_t corrupted_instances = 0;
  std::uint64_t bytes_on_air = 0;
  // Mean air-time utilization across the monitored channels.
  double airtime_fraction = 0.0;
  double broadcast_airtime_fraction = 0.0;
  int active_clients = 0;
  int active_aps = 0;
  // Synchronization health: worst jframe dispersion in the window.
  Micros worst_dispersion = 0;
};

class OnlineMonitor {
 public:
  using WindowSink = std::function<void(const OnlineWindowStats&)>;

  OnlineMonitor(Micros window_width, WindowSink sink)
      : width_(window_width), sink_(std::move(sink)) {}

  // Feed jframes in timestamp order (exactly what the streaming merge
  // delivers).  Completed windows are emitted as they close.
  void OnJFrame(const JFrame& jf);

  // Emits the final partial window, if any.
  void Flush();

  std::uint64_t windows_emitted() const { return windows_emitted_; }

 private:
  void CloseWindow();

  Micros width_;
  WindowSink sink_;
  bool window_open_ = false;
  OnlineWindowStats current_;
  double airtime_us_ = 0.0;
  double broadcast_airtime_us_ = 0.0;
  std::unordered_set<MacAddress> clients_;
  std::unordered_set<MacAddress> aps_;
  std::uint64_t windows_emitted_ = 0;
};

}  // namespace jig
