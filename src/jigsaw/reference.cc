#include "jigsaw/reference.h"

namespace jig {

bool IsUniqueReference(const CaptureRecord& rec) {
  // FCS validity comes from the capture hardware's verdict (rec.outcome):
  // snap-length truncation means the FCS bytes themselves may not be in the
  // capture, exactly as with real radiotap captures.
  //
  // This runs once per captured event in both bootstrap and unification, so
  // it classifies from the frame-control field alone — no full parse.
  if (rec.outcome != RxOutcome::kOk) return false;
  // Full DATA/MGMT header (24) + sequence-bearing frame's minimum FCS tail:
  // anything shorter cannot parse as a sequenced frame.
  if (rec.bytes.size() < 28) return false;
  const std::uint8_t fc0 = rec.bytes[0];
  const std::uint8_t fc1 = rec.bytes[1];
  if ((fc0 & 0x03) != 0) return false;  // protocol version != 0
  const auto type = FromBits((fc0 >> 2) & 0x03, (fc0 >> 4) & 0x0F);
  if (!type) return false;
  if (IsControl(*type)) return false;   // ACK/CTS/RTS: identical bytes
  if ((fc1 & 0x08) != 0) return false;  // retry: retransmissions repeat bytes
  if (*type == FrameType::kProbeRequest) return false;  // zero-seq stations
  return true;
}

std::optional<ParsedFrame> ParseCapture(const CaptureRecord& rec) {
  if (rec.bytes.empty()) return std::nullopt;
  return ParseFrame(rec.bytes, rec.rate);
}

bool ParseCaptureInto(const CaptureRecord& rec, ParsedFrame& out) {
  if (rec.bytes.empty()) {
    out.frame.Reset();
    out.fcs_ok = false;
    out.fcs = 0;
    return false;
  }
  return ParseFrameInto(rec.bytes, rec.rate, out);
}

ContentKey MakeContentKey(std::span<const std::uint8_t> bytes) {
  return ContentKey{static_cast<std::uint32_t>(bytes.size()),
                    ContentDigest(bytes)};
}

}  // namespace jig
