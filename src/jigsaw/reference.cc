#include "jigsaw/reference.h"

namespace jig {

bool IsUniqueReference(const CaptureRecord& rec) {
  // FCS validity comes from the capture hardware's verdict (rec.outcome):
  // snap-length truncation means the FCS bytes themselves may not be in the
  // capture, exactly as with real radiotap captures.
  if (rec.outcome != RxOutcome::kOk) return false;
  if (rec.bytes.size() < 24) return false;  // needs a full DATA/MGMT header
  const auto parsed = ParseFrame(rec.bytes, rec.rate);
  if (!parsed) return false;
  const Frame& f = parsed->frame;
  if (!f.HasSequence()) return false;          // ACK/CTS/RTS: identical bytes
  if (f.retry) return false;                   // retransmissions repeat bytes
  if (f.type == FrameType::kProbeRequest) return false;  // zero-seq stations
  return true;
}

std::optional<ParsedFrame> ParseCapture(const CaptureRecord& rec) {
  if (rec.bytes.empty()) return std::nullopt;
  return ParseFrame(rec.bytes, rec.rate);
}

ContentKey MakeContentKey(std::span<const std::uint8_t> bytes) {
  return ContentKey{static_cast<std::uint32_t>(bytes.size()),
                    ContentDigest(bytes)};
}

}  // namespace jig
