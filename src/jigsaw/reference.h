// "Unique frame" identification for synchronization (paper Section 4.1).
//
// Not every frame can serve as a clock reference: ACKs to the same station
// are byte-identical, some stations zero their probe sequence numbers, and
// retransmissions are indistinguishable from one another.  Jigsaw therefore
// drives all synchronization from frames whose bytes identify a single
// physical transmission: FCS-valid DATA/MANAGEMENT frames carrying a
// sequence number with the retry bit clear, excluding probe requests.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "trace/record.h"
#include "wifi/frame.h"

namespace jig {

// Cheap structural check on captured bytes: parses the frame control field
// only.  Returns true when the capture can anchor synchronization.
bool IsUniqueReference(const CaptureRecord& rec);

// Full parse used by unification; nullopt when bytes are unparseable.
std::optional<ParsedFrame> ParseCapture(const CaptureRecord& rec);

// Allocation-reusing variant for the merge hot path; false when bytes are
// unparseable (out is left reset).
bool ParseCaptureInto(const CaptureRecord& rec, ParsedFrame& out);

// Content identity key for grouping instances across radios: length plus a
// 64-bit digest of the captured bytes.  Equality of keys is always
// confirmed by byte comparison before unification.
struct ContentKey {
  std::uint32_t length = 0;
  std::uint64_t digest = 0;
  // Total order so selection among keys can tie-break deterministically
  // (bootstrap's reference-set choice) instead of falling back to hash
  // iteration order.  Digest values are in-run-stable (FORMATS.md), which is
  // all the byte-identity contract needs.
  friend auto operator<=>(const ContentKey&, const ContentKey&) = default;
};

ContentKey MakeContentKey(std::span<const std::uint8_t> bytes);

}  // namespace jig

template <>
struct std::hash<jig::ContentKey> {
  std::size_t operator()(const jig::ContentKey& k) const noexcept {
    return std::hash<std::uint64_t>{}(k.digest ^ (std::uint64_t{k.length} << 32));
  }
};
