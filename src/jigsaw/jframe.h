// The jframe: one physical transmission, unified across monitors.
//
// After bootstrap synchronization, Jigsaw merges every radio's instance of
// the same transmission into a single jframe holding a universal timestamp,
// the full frame contents, and the identity of the radios that heard each
// instance (paper Section 4.2, Figure 2).  jframes are the substrate for
// all link/transport reconstruction.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.h"
#include "wifi/channel.h"
#include "wifi/frame.h"

namespace jig {

struct FrameInstance {
  RadioId radio = kInvalidRadio;
  LocalMicros local_timestamp = 0;
  // The instance's timestamp mapped into universal time by the clock state
  // in effect when it was unified.
  UniversalMicros universal_timestamp = 0;
  float rssi_dbm = 0.0F;
  RxOutcome outcome = RxOutcome::kOk;
};

struct JFrame {
  // Median of the valid instances' universal timestamps (reception start).
  UniversalMicros timestamp = 0;
  // Group dispersion: latest minus earliest instance timestamp (Figure 4's
  // metric).  Zero for single-instance jframes.
  Micros dispersion = 0;
  // Representative decoded content (from the first FCS-valid instance).
  Frame frame;
  // Channel the frame was captured on (from the receiving radios).
  Channel channel = Channel::kCh1;
  PhyRate rate = PhyRate::kB1;
  std::uint32_t wire_len = 0;   // frame length on the air
  std::uint64_t digest = 0;     // ContentDigest of captured bytes
  std::vector<FrameInstance> instances;

  std::size_t InstanceCount() const { return instances.size(); }
  std::size_t ValidInstanceCount() const {
    std::size_t n = 0;
    for (const auto& i : instances) {
      if (i.outcome == RxOutcome::kOk) ++n;
    }
    return n;
  }

  // End of the transmission on the air.
  UniversalMicros EndTime() const {
    return timestamp + TxDurationMicros(rate, wire_len);
  }

  // Returns all fields to default-constructed values while keeping the
  // instances and frame-body heap allocations, so a pooled jframe can be
  // rebuilt without reallocating.
  void Reset() {
    timestamp = 0;
    dispersion = 0;
    frame.Reset();
    channel = Channel::kCh1;
    rate = PhyRate::kB1;
    wire_len = 0;
    digest = 0;
    instances.clear();
  }
};

// Bounded freelist of jframes for the merge hot path: the unifier acquires,
// the emit funnel (or spill drain) recycles the carcass once the consumer
// has taken what it wants, and steady-state emission stops allocating.
//
// Deliberately unsynchronized.  Within a MergeSession each shard owns one
// pool, and the existing round barrier already serializes worker-phase
// accesses (unifier Acquire, spill-drain Recycle) against merge-phase
// accesses (emit Recycle) — the same happens-before discipline that
// protects the shard queues themselves.
class JFramePool {
 public:
  explicit JFramePool(std::size_t max_pooled = 4096)
      : max_pooled_(max_pooled) {}

  JFrame Acquire() {
    if (pool_.empty()) return JFrame{};
    JFrame jf = std::move(pool_.back());
    pool_.pop_back();
    jf.Reset();
    return jf;
  }

  void Recycle(JFrame&& jf) {
    if (pool_.size() >= max_pooled_) return;  // cap steady-state footprint
    pool_.push_back(std::move(jf));
    ++recycled_total_;
  }

  std::size_t pooled() const { return pool_.size(); }
  std::uint64_t recycled_total() const { return recycled_total_; }

 private:
  std::size_t max_pooled_;
  std::vector<JFrame> pool_;
  std::uint64_t recycled_total_ = 0;
};

}  // namespace jig
