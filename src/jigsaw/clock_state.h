// Per-trace clock state maintained during unification (paper Section 4.2).
//
// Each trace's mapping from local capture time to universal time is a
// piecewise-linear model:  universal(ts) = ts + offset + skew * (ts - ref),
// where `offset` absorbs the bootstrap T_i plus all resynchronization
// corrections, and `skew` is an EWMA prediction from past corrections —
// Jigsaw "pro-actively adjusts the local timestamp of each instance to
// compensate for the clock skew" and uses "an exponentially weighted moving
// average of past skew measurements to predict future skew".
#pragma once

#include "util/stats.h"
#include "util/time.h"

namespace jig {

class TraceClockState {
 public:
  TraceClockState(double initial_offset_us, double skew_ewma_alpha,
                  Micros min_skew_elapsed, bool track_skew = true)
      : offset_us_(initial_offset_us),
        skew_(skew_ewma_alpha),
        min_skew_elapsed_(min_skew_elapsed),
        track_skew_(track_skew) {}

  // Maps a local capture timestamp into universal time.
  double ToUniversal(LocalMicros ts) const {
    return static_cast<double>(ts) + offset_us_ +
           skew_.Value() * 1e-6 * static_cast<double>(ts - ref_local_);
  }

  // Applies a resynchronization correction observed at local time `ts`:
  // `error_us` = universal(jframe) - ToUniversal(ts).  Collapses the linear
  // model onto the corrected point and folds the residual rate into the
  // skew EWMA (skipped for very short gaps where quantization noise would
  // swamp the rate estimate).
  void ApplyCorrection(LocalMicros ts, double error_us) {
    const double elapsed = static_cast<double>(ts - ref_local_);
    const double old_skew = skew_.Value();
    if (track_skew_ && elapsed >= static_cast<double>(min_skew_elapsed_)) {
      skew_.Add(old_skew + 1e6 * error_us / elapsed);
    }
    // New model anchored at ts: universal(ts) must equal old value + error.
    offset_us_ = offset_us_ + error_us + old_skew * 1e-6 * elapsed;
    ref_local_ = ts;
    ++corrections_;
  }

  double offset_us() const { return offset_us_; }
  double skew_ppm() const { return skew_.Value(); }
  std::uint64_t corrections() const { return corrections_; }

 private:
  double offset_us_;
  LocalMicros ref_local_ = 0;
  Ewma skew_;
  Micros min_skew_elapsed_;
  bool track_skew_ = true;
  std::uint64_t corrections_ = 0;
};

}  // namespace jig
