// End-to-end merge pipeline: bootstrap → unify → time-ordered jframes.
//
// Wraps bootstrap synchronization and the streaming unifier behind one
// call, and restores exact timestamp ordering with a bounded reorder buffer
// (the unifier emits jframes in seed-pop order, which can run a few
// microseconds ahead of a slightly earlier group still forming).  The merge
// is a single pass over each trace — the paper's efficiency requirement for
// online operation.
#pragma once

#include <functional>
#include <vector>

#include "jigsaw/bootstrap.h"
#include "jigsaw/unifier.h"

namespace jig {

struct MergeConfig {
  BootstrapConfig bootstrap;
  UnifierConfig unifier;
  // Reorder horizon: jframes are released once the stream has advanced this
  // far past them.  Must exceed the search window.
  Micros reorder_horizon = Milliseconds(50);
};

struct MergeResult {
  std::vector<JFrame> jframes;  // strictly time-ordered
  BootstrapResult bootstrap;
  UnifyStats stats;
};

// Convenience batch merge: collects every jframe in memory.
MergeResult MergeTraces(TraceSet& traces, const MergeConfig& config = {});

// Streaming variant: jframes are delivered to `sink` in timestamp order.
struct MergeStreamStats {
  BootstrapResult bootstrap;
  UnifyStats stats;
};
MergeStreamStats MergeTracesStreaming(TraceSet& traces,
                                      const MergeConfig& config,
                                      std::function<void(JFrame&&)> sink);

}  // namespace jig
