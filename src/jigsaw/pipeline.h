// End-to-end merge pipeline: bootstrap → unify → time-ordered jframes.
//
// Wraps bootstrap synchronization and the streaming unifier behind one
// call, and restores exact timestamp ordering with a bounded reorder buffer
// (the unifier emits jframes in seed-pop order, which can run a few
// microseconds ahead of a slightly earlier group still forming).  The merge
// is a single pass over each trace — the paper's efficiency requirement for
// online operation.
//
// Parallel operation (threads != 1): bootstrap still runs globally (channel
// bridging needs every monitor's shared clock), then the trace set is
// partitioned by channel and one unifier runs per channel shard on a small
// thread pool.  Shard outputs are recombined by a bounded k-way merge keyed
// on (timestamp, channel) — the same total order the single-threaded reorder
// buffer emits — so the parallel stream is byte-identical to the legacy
// single-threaded stream.
//
// Live operation: MergeSession is the resumable form of the same pipeline.
// It runs against tail-follow trace sources (TailFileTrace) that are still
// being written: each Poll() advances exactly as far as the per-radio low
// watermark allows and returns when every further group would need data a
// radio has not produced yet.  Once every writer finalizes, the cumulative
// jframe stream is byte-identical to a batch merge of the finished files —
// MergeTracesStreaming is literally a drain-to-completion wrapper over a
// MergeSession, so there is one code path, not two.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <vector>

#include "jigsaw/bootstrap.h"
#include "jigsaw/unifier.h"
#include "obs/metrics.h"

namespace jig {

struct MergeConfig {
  BootstrapConfig bootstrap;
  UnifierConfig unifier;
  // Reorder horizon: jframes are released once the stream has advanced this
  // far past them.  Must exceed the search window (validated at entry — a
  // shorter horizon would release jframes before an earlier group can still
  // form).  The pipeline always keeps at least a 2x search-window margin:
  // the effective horizon is max(reorder_horizon, 2 * search_window), since
  // a group's median timestamp can trail its seed by a full window.
  Micros reorder_horizon = Milliseconds(50);
  // Worker threads unifying channel shards.  1 = the exact legacy
  // single-threaded path; 0 = auto (one worker per channel shard, capped by
  // the hardware); N caps the pool at N workers, which then interleave the
  // shards cooperatively.  Every setting produces a byte-identical jframe
  // stream.
  unsigned threads = 1;
  // ---- on-disk spill tier (sharded paths; see src/jigsaw/spill.h and
  // docs/ARCHITECTURE.md, "The spill tier") -------------------------------
  // Directory for spill segments; empty (the default) disables spilling.
  // When a shard's output queue still holds spill_threshold jframes at
  // worker-round entry — i.e. the consumer's last drain pass could not
  // take them, which is actual lag rather than the transient fill of a
  // round in progress — the worker drains the queue into .jigs segments
  // under this directory and the k-way merge replays them in order before
  // resuming in-memory hand-off.  A consumer can therefore lag far behind
  // without the queue watermark stalling the capture-side unifiers, while
  // a merge whose consumer keeps up touches disk only for round residue.
  // Segments are removed as they are replayed and when the session ends;
  // the directory should be private to one session.
  // Spilling leaves the emitted stream byte-identical: on, off, or
  // engaging/disengaging mid-stream, for every `threads` setting (pinned in
  // tests/spill_test.cc).  The single-threaded path (threads == 1) has no
  // shard queues and therefore never spills.
  std::filesystem::path spill_dir;
  // Queue depth that engages the spill tier.  Validated at entry when
  // spill_dir is set: must be positive and no larger than
  // kMergeQueueWatermark (a higher threshold could never trigger).
  std::size_t spill_threshold = 2048;
  // Cap on the total on-disk footprint of live spill segments across all
  // shards; 0 = uncapped.  At the cap (enforced at block granularity) the
  // pipeline degrades to the plain watermark backpressure it has without a
  // spill tier.
  std::uint64_t max_spill_bytes = 0;
  // Recycle emitted jframe carcasses through per-unifier JFramePools so the
  // steady-state merge allocates nothing per jframe (body/instance buffers
  // circulate).  Purely an allocation-strategy knob: the emitted stream is
  // byte-identical on or off, for every `threads` setting (pinned in
  // tests/pipeline_test.cc).
  bool use_arena = true;
  // Pin shard worker threads round-robin across CPUs (Linux:
  // pthread_setaffinity_np; elsewhere, and on failure, silently a no-op).
  // Scheduling only — the round barrier fixes the merge order regardless of
  // where workers run, so the stream stays byte-identical.
  bool pin_threads = false;
};

// Throws std::invalid_argument on inconsistent configuration (today:
// reorder_horizon <= unifier.search_window, a non-positive window, or a
// spill_threshold of zero / above kMergeQueueWatermark when spill_dir is
// set).  Called by MergeTraces / MergeTracesStreaming at entry.
void ValidateMergeConfig(const MergeConfig& config);

struct MergeResult {
  std::vector<JFrame> jframes;  // strictly time-ordered
  BootstrapResult bootstrap;
  UnifyStats stats;
};

// Convenience batch merge: collects every jframe in memory.
MergeResult MergeTraces(TraceSet& traces, const MergeConfig& config = {});

// Streaming variant: jframes are delivered to `sink` in timestamp order.
// The sink runs on the calling thread in every threading mode.
struct MergeStreamStats {
  BootstrapResult bootstrap;
  UnifyStats stats;
};
MergeStreamStats MergeTracesStreaming(TraceSet& traces,
                                      const MergeConfig& config,
                                      std::function<void(JFrame&&)> sink);

// Per-shard buffering bound of the parallel paths: a shard whose output
// queue holds this many jframes stops unifying until the consumer drains
// it, so retention stays bounded even when one radio lags far behind the
// rest (the lagging shard gates emission; the others throttle here).
inline constexpr std::size_t kMergeQueueWatermark = 4096;

// Lag between a captured frontier and an emitted timestamp, clamped at
// zero.  Lag means "how far output trails capture": an emission that
// momentarily outruns a racing capture-frontier update is zero lag, not
// negative lag — a raw difference here once fed negative samples into
// jig_merge_emit_lag_us and let live_lag_us() report below zero.
constexpr std::int64_t ClampedLagUs(std::int64_t capture_frontier_us,
                                    std::int64_t emitted_ts_us) {
  return capture_frontier_us > emitted_ts_us
             ? capture_frontier_us - emitted_ts_us
             : 0;
}

// Resumable merge over (possibly live) trace sources.
//
// Lifecycle: construct over a TraceSet (which must outlive the session;
// the streams are handed back — reassembled from any channel partition —
// when the session completes or is destroyed), then call Poll() whenever
// the underlying sources may have grown:
//
//   * kBootstrapping — some radio's bootstrap sync window has not filled
//     yet.  Nothing is emitted; the session buffers nothing (the data sits
//     in the trace files) and will re-read every trace from offset zero
//     once the window fills — late bootstrap costs nothing but the wait.
//   * kStarved — bootstrap is done and the merge advanced as far as the
//     per-radio low watermark allows; at least one live trace must grow
//     (or finalize) before any further group can be formed.
//   * kDone — every source finalized, every jframe emitted.  The
//     cumulative stream is byte-identical to MergeTraces over the same
//     (finished) inputs for every `threads` setting.
//
// The sink runs on the Poll()-calling thread in every threading mode.
class MergeSession {
 public:
  enum class Status { kBootstrapping, kStarved, kDone };

  // Validates the config (throws std::invalid_argument like the batch
  // entry points).  No trace is read until the first Poll().
  MergeSession(TraceSet& traces, const MergeConfig& config,
               std::function<void(JFrame&&)> sink);
  ~MergeSession();

  MergeSession(const MergeSession&) = delete;
  MergeSession& operator=(const MergeSession&) = delete;

  // Advances until quiescent: returns only when nothing further can happen
  // without new data.  Never blocks waiting for a writer.
  Status Poll();

  // Polls to completion, sleeping briefly whenever the sources are starved
  // — the batch semantics.  Requires every writer to eventually finalize.
  MergeStreamStats Drain();

  bool bootstrapped() const;
  // Valid once bootstrapped() is true.
  const BootstrapResult& bootstrap() const;
  // Running totals; complete once Poll() returned kDone.
  UnifyStats stats() const;
  std::uint64_t jframes_emitted() const;
  // Jframes currently buffered between the unifiers and the sink (reorder
  // buffers + shard queues) and the session-lifetime high-water mark — the
  // bounded-retention guarantee under starved/uneven sources.
  std::size_t retained_jframes() const;
  std::size_t peak_retained_jframes() const;
  // Spill-tier counters (always 0 with spilling disabled or threads == 1):
  // lifetime jframes staged through disk, and the current on-disk footprint
  // of not-yet-reclaimed segments.
  std::uint64_t spilled_jframes() const;
  std::uint64_t spill_bytes_on_disk() const;
  // How far (capture-time us) the emitted stream trails the newest jframe
  // any unifier has produced.  0 until both frontiers exist.  For a live
  // follow this is the merge lag a dashboard wants; for a batch merge it is
  // just the reorder-horizon depth at the moment of the call.
  std::int64_t live_lag_us() const;
  // Aggregated view of the process-global metric registry (every stage —
  // trace IO, bootstrap, shards, spill, merge, analysis bus — reports into
  // one registry, so this is a whole-pipeline snapshot, not a per-session
  // one).  Feed it to obs::ToPrometheusText / obs::ToJson.
  obs::MetricsSnapshot MetricsSnapshot() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace jig
