// End-to-end merge pipeline: bootstrap → unify → time-ordered jframes.
//
// Wraps bootstrap synchronization and the streaming unifier behind one
// call, and restores exact timestamp ordering with a bounded reorder buffer
// (the unifier emits jframes in seed-pop order, which can run a few
// microseconds ahead of a slightly earlier group still forming).  The merge
// is a single pass over each trace — the paper's efficiency requirement for
// online operation.
//
// Parallel operation (threads != 1): bootstrap still runs globally (channel
// bridging needs every monitor's shared clock), then the trace set is
// partitioned by channel and one unifier runs per channel shard on a small
// thread pool.  Shard outputs are recombined by a bounded k-way merge keyed
// on (timestamp, channel) — the same total order the single-threaded reorder
// buffer emits — so the parallel stream is byte-identical to the legacy
// single-threaded stream.
#pragma once

#include <functional>
#include <vector>

#include "jigsaw/bootstrap.h"
#include "jigsaw/unifier.h"

namespace jig {

struct MergeConfig {
  BootstrapConfig bootstrap;
  UnifierConfig unifier;
  // Reorder horizon: jframes are released once the stream has advanced this
  // far past them.  Must exceed the search window (validated at entry — a
  // shorter horizon would release jframes before an earlier group can still
  // form).  The pipeline always keeps at least a 2x search-window margin:
  // the effective horizon is max(reorder_horizon, 2 * search_window), since
  // a group's median timestamp can trail its seed by a full window.
  Micros reorder_horizon = Milliseconds(50);
  // Worker threads unifying channel shards.  1 = the exact legacy
  // single-threaded path; 0 = auto (one worker per channel shard, capped by
  // the hardware); N caps the pool at N workers, which then interleave the
  // shards cooperatively.  Every setting produces a byte-identical jframe
  // stream.
  unsigned threads = 1;
};

// Throws std::invalid_argument on inconsistent configuration (today:
// reorder_horizon <= unifier.search_window, or a non-positive window).
// Called by MergeTraces / MergeTracesStreaming at entry.
void ValidateMergeConfig(const MergeConfig& config);

struct MergeResult {
  std::vector<JFrame> jframes;  // strictly time-ordered
  BootstrapResult bootstrap;
  UnifyStats stats;
};

// Convenience batch merge: collects every jframe in memory.
MergeResult MergeTraces(TraceSet& traces, const MergeConfig& config = {});

// Streaming variant: jframes are delivered to `sink` in timestamp order.
// The sink runs on the calling thread in every threading mode.
struct MergeStreamStats {
  BootstrapResult bootstrap;
  UnifyStats stats;
};
MergeStreamStats MergeTracesStreaming(TraceSet& traces,
                                      const MergeConfig& config,
                                      std::function<void(JFrame&&)> sink);

}  // namespace jig
