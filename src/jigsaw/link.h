// Link-layer reconstruction (paper Section 5.1, Figure 5).
//
// Two stages over the time-ordered jframe stream:
//
//  1. Transmission attempts — group the jframes of one MAC transaction
//     (optional CTS-to-self, the DATA/MANAGEMENT frame, the trailing ACK)
//     using addresses plus duration-field timing: a DATA frame's duration
//     tells exactly when its ACK, if any, must have arrived, which prevents
//     mis-assigning an ACK to an earlier frame when the trace has holes.
//
//  2. Frame exchanges — group attempts (original + retransmissions) into
//     complete delivery efforts using the per-sender sequence number delta
//     rules (R1 broadcast, R2 delta-0 retransmission, R3 delta-1 new
//     exchange, R4 gap: flush without inference) plus the paper's
//     heuristics (ACKs are less likely lost than DATA, rates never climb
//     on retry, exchanges complete within 500 ms).
//
// Delivery from a passive vantage is inherently ambiguous: a missing ACK
// means either loss or an unobserved ACK.  Exchanges carry a three-way
// outcome; Section 5.2's TCP oracle resolves the ambiguous ones.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "jigsaw/jframe.h"

namespace jig {

struct TransmissionAttempt {
  UniversalMicros start = 0;  // first jframe of the transaction
  UniversalMicros end = 0;    // end of the last jframe of the transaction
  MacAddress transmitter;
  MacAddress receiver;
  FrameType type = FrameType::kData;
  std::uint16_t sequence = 0;
  bool has_sequence = false;
  bool retry = false;
  bool broadcast = false;
  PhyRate rate = PhyRate::kB1;

  // Indices into the source jframe vector (-1 when that piece was not
  // observed).
  std::int64_t rts_jframe = -1;
  std::int64_t cts_jframe = -1;  // CTS-to-self or CTS response
  std::int64_t data_jframe = -1;
  std::int64_t ack_jframe = -1;

  bool acked = false;          // trailing ACK observed in the trace
  bool inferred = false;       // assembled via inference (missing pieces)
};

enum class ExchangeOutcome : std::uint8_t {
  kDelivered,     // ACK observed for some attempt
  kNotDelivered,  // retry limit exhausted / abandoned without any ACK
  kAmbiguous,     // no ACK observed, but loss cannot be concluded
};

struct FrameExchange {
  MacAddress transmitter;
  MacAddress receiver;
  std::uint16_t sequence = 0;
  bool broadcast = false;
  UniversalMicros start = 0;
  UniversalMicros end = 0;
  std::vector<std::size_t> attempts;  // indices into the attempt vector
  ExchangeOutcome outcome = ExchangeOutcome::kAmbiguous;
  bool needed_inference = false;
  // jframe index of the DATA content (payload source for transport
  // reconstruction); -1 if only control frames were seen.
  std::int64_t data_jframe = -1;
};

struct LinkStats {
  std::uint64_t attempts = 0;
  std::uint64_t attempts_inferred = 0;
  std::uint64_t exchanges = 0;
  std::uint64_t exchanges_inferred = 0;
  std::uint64_t orphan_acks = 0;
  std::uint64_t sequence_gaps_flushed = 0;

  double AttemptInferenceRate() const {
    return attempts ? static_cast<double>(attempts_inferred) / attempts : 0.0;
  }
  double ExchangeInferenceRate() const {
    return exchanges ? static_cast<double>(exchanges_inferred) / exchanges
                     : 0.0;
  }
};

struct LinkReconstruction {
  std::vector<TransmissionAttempt> attempts;
  std::vector<FrameExchange> exchanges;
  LinkStats stats;
};

struct LinkConfig {
  // Slack beyond the duration-field deadline for accepting an ACK.
  Micros ack_slack = 40;
  // An exchange is closed if idle longer than this (paper: almost all frame
  // exchanges complete within 500 ms).
  Micros exchange_timeout = Milliseconds(500);
};

// Incremental, windowed link reconstruction.
//
// Runs the same two FSM stages as the batch path, but over a stream: feed
// time-ordered jframes with OnJFrame() and attempts/exchanges are pushed
// through the sinks as soon as the stream watermark proves they can no
// longer change.  The paper's observation that almost all frame exchanges
// complete within 500 ms (LinkConfig::exchange_timeout) bounds how long any
// state must be retained, so peak memory is O(timeout window), not
// O(trace).  Flush() drains everything at end of stream; the reconstructor
// is one-shot after that.
//
// Emission order is exactly the batch vector order: attempts sorted by
// (start, finalize order), exchanges by (start, emit order), and jframe
// indices inside the emitted structs refer to the stream position of each
// jframe — ReconstructLink() is a thin wrapper over this class, so the two
// paths are byte-identical by construction (pinned by tests/link_test.cc
// and tests/bus_test.cc).
//
// Callers that buffer the stream (e.g. to resolve data_jframe indices when
// an exchange is emitted) may drop every jframe below min_live_jframe():
// no un-emitted attempt or exchange references anything before it.
class LinkReconstructor {
 public:
  using AttemptSink = std::function<void(const TransmissionAttempt&)>;
  using ExchangeSink = std::function<void(const FrameExchange&)>;

  // Null sinks are allowed: the stats still accumulate, the structs are
  // simply dropped at release time.
  explicit LinkReconstructor(LinkConfig config = {},
                             AttemptSink on_attempt = nullptr,
                             ExchangeSink on_exchange = nullptr);
  ~LinkReconstructor();
  LinkReconstructor(LinkReconstructor&&) noexcept;
  LinkReconstructor& operator=(LinkReconstructor&&) noexcept;

  // Feed the next jframe; timestamps must be nondecreasing (the merge
  // pipeline's output contract).  May synchronously invoke the sinks.
  void OnJFrame(const JFrame& jf);
  // End of stream: finalizes all pending state and drains both sinks.
  void Flush();

  const LinkStats& stats() const;
  std::uint64_t jframes_seen() const;
  std::uint64_t attempts_emitted() const;
  std::uint64_t exchanges_emitted() const;
  // Smallest jframe stream index still referenced by un-emitted state;
  // equals jframes_seen() when nothing is pending.  Monotone nondecreasing.
  std::uint64_t min_live_jframe() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Reconstructs attempts and exchanges from time-ordered jframes.  Batch
// wrapper over LinkReconstructor: feeds the vector, flushes, collects.
LinkReconstruction ReconstructLink(const std::vector<JFrame>& jframes,
                                   const LinkConfig& config = {});

}  // namespace jig
