#include "obs/metrics.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace jig::obs {
namespace {

std::atomic<bool> g_enabled{true};

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

namespace internal {

std::size_t ThisThreadCell() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t cell =
      next.fetch_add(1, std::memory_order_relaxed) % kCells;
  return cell;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Histogram.

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::logic_error(
        "Histogram: bucket bounds must be strictly ascending");
  }
  for (auto& shard : shards_) {
    shard.buckets =
        std::make_unique<internal::Cell[]>(bounds_.size() + 1);
  }
}

void Histogram::Observe(std::int64_t v) {
  if (!Enabled()) return;
  // First bound >= v; past-the-end is the +Inf overflow bucket.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Shard& shard = shards_[internal::ThisThreadCell()];
  shard.buckets[bucket].value.fetch_add(1, std::memory_order_relaxed);
  shard.sum.value.fetch_add(v, std::memory_order_relaxed);
  shard.count.value.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::Count() const {
  std::int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.count.value.load(std::memory_order_relaxed);
  }
  return static_cast<std::uint64_t>(total);
}

std::int64_t Histogram::Sum() const {
  std::int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.sum.value.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b < out.size(); ++b) {
      out[b] += static_cast<std::uint64_t>(
          shard.buckets[b].value.load(std::memory_order_relaxed));
    }
  }
  return out;
}

void Histogram::Reset() {
  for (auto& shard : shards_) {
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      shard.buckets[b].value.store(0, std::memory_order_relaxed);
    }
    shard.sum.value.store(0, std::memory_order_relaxed);
    shard.count.value.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// MetricRegistry.

struct MetricRegistry::Impl {
  struct Entry {
    MetricSample::Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu;
  // Keyed (name, labels); map iteration yields the sorted snapshot order.
  std::map<std::pair<std::string, std::string>, Entry> metrics;

  Entry& FindOrCreate(std::string_view name, std::string_view labels,
                      std::string_view help, MetricSample::Kind kind) {
    auto [it, inserted] = metrics.try_emplace(
        {std::string(name), std::string(labels)});
    Entry& entry = it->second;
    if (inserted) {
      entry.kind = kind;
      entry.help = help;
      return entry;
    }
    if (entry.kind != kind) {
      throw std::logic_error("metric '" + std::string(name) +
                             "' re-registered with a different kind");
    }
    if (entry.help.empty() && !help.empty()) entry.help = help;
    return entry;
  }
};

MetricRegistry::Impl& MetricRegistry::impl() const {
  // Leaked on purpose: instrumentation sites hold references into the
  // registry from static storage, so it must outlive every other static.
  static Impl* impl = new Impl();
  return *impl;
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

Counter& MetricRegistry::GetCounter(std::string_view name,
                                    std::string_view help,
                                    std::string_view labels) {
  Impl& i = impl();
  std::lock_guard lk(i.mu);
  Impl::Entry& entry =
      i.FindOrCreate(name, labels, help, MetricSample::Kind::kCounter);
  if (entry.counter == nullptr) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& MetricRegistry::GetGauge(std::string_view name, std::string_view help,
                                std::string_view labels) {
  Impl& i = impl();
  std::lock_guard lk(i.mu);
  Impl::Entry& entry =
      i.FindOrCreate(name, labels, help, MetricSample::Kind::kGauge);
  if (entry.gauge == nullptr) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& MetricRegistry::GetHistogram(std::string_view name,
                                        std::vector<std::int64_t> bounds,
                                        std::string_view help,
                                        std::string_view labels) {
  Impl& i = impl();
  std::lock_guard lk(i.mu);
  Impl::Entry& entry =
      i.FindOrCreate(name, labels, help, MetricSample::Kind::kHistogram);
  if (entry.histogram == nullptr) {
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  } else if (entry.histogram->bounds() != bounds) {
    throw std::logic_error("histogram '" + std::string(name) +
                           "' re-registered with different bucket bounds");
  }
  return *entry.histogram;
}

MetricsSnapshot MetricRegistry::Collect() const {
  Impl& i = impl();
  std::lock_guard lk(i.mu);
  MetricsSnapshot snapshot;
  snapshot.samples.reserve(i.metrics.size());
  for (const auto& [key, entry] : i.metrics) {
    MetricSample sample;
    sample.name = key.first;
    sample.labels = key.second;
    sample.help = entry.help;
    sample.kind = entry.kind;
    switch (entry.kind) {
      case MetricSample::Kind::kCounter:
        sample.value = static_cast<std::int64_t>(entry.counter->Value());
        break;
      case MetricSample::Kind::kGauge:
        sample.value = entry.gauge->Value();
        break;
      case MetricSample::Kind::kHistogram:
        sample.bounds = entry.histogram->bounds();
        sample.bucket_counts = entry.histogram->BucketCounts();
        sample.count = entry.histogram->Count();
        sample.sum = entry.histogram->Sum();
        break;
    }
    snapshot.samples.push_back(std::move(sample));
  }
  return snapshot;
}

void MetricRegistry::ResetAll() {
  Impl& i = impl();
  std::lock_guard lk(i.mu);
  for (auto& [key, entry] : i.metrics) {
    if (entry.counter) entry.counter->Reset();
    if (entry.gauge) entry.gauge->Reset();
    if (entry.histogram) entry.histogram->Reset();
  }
}

const MetricSample* MetricsSnapshot::Find(std::string_view name,
                                          std::string_view labels) const {
  for (const MetricSample& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

std::int64_t MetricsSnapshot::Value(std::string_view name,
                                    std::string_view labels) const {
  const MetricSample* s = Find(name, labels);
  if (s == nullptr) return 0;
  return s->kind == MetricSample::Kind::kHistogram
             ? static_cast<std::int64_t>(s->count)
             : s->value;
}

std::vector<std::int64_t> LatencyBucketsUs() {
  return {50,      100,     250,     500,       1'000,     2'500,
          5'000,   10'000,  25'000,  50'000,    100'000,   250'000,
          500'000, 1'000'000, 2'500'000, 5'000'000, 10'000'000};
}

}  // namespace jig::obs
