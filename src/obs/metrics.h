// Pipeline-wide metrics: counters, gauges and fixed-bucket histograms in a
// process-global registry, cheap enough for the hot merge path.
//
// Design constraints, in order:
//
//   1. The byte-identical determinism contract is untouched.  Metrics are
//      strictly write-only from the pipeline's point of view: no stage ever
//      reads a metric to make a decision, so a merge with metrics enabled,
//      disabled (SetEnabled), or absent emits the same stream —
//      tests/pipeline_test.cc pins it byte-for-byte.
//   2. The hot path pays ~one relaxed atomic add per event.  Every metric
//      is sharded into cache-line-sized cells; a thread picks its cell once
//      (thread-local) and increments it with memory_order_relaxed, so shard
//      workers on different cores never contend on a line.  Aggregation
//      happens only on read (Collect / Value), which is rare.
//   3. Reads are safe concurrent with writes.  A snapshot taken mid-merge
//      is a consistent-enough monitoring view (each cell is read
//      atomically; the sum may straddle in-flight increments), which is
//      exactly the Prometheus scrape model.
//
// Handles returned by the registry are stable for the life of the process;
// instrumentation sites fetch them once into a static struct and then only
// touch atomics.  Metric names follow the Prometheus convention
// (jig_<stage>_<what>[_total|_us]); the catalog lives in
// docs/OBSERVABILITY.md.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace jig::obs {

// Global kill switch (default on).  When disabled, Add/Set/Observe are
// no-ops after one relaxed load — the hook for proving metrics-on ==
// metrics-off byte-identity, and for callers that want a sterile run.
bool Enabled();
void SetEnabled(bool on);

namespace internal {

// Shard count per metric.  More cells than cores wastes cache; fewer
// serializes unrelated threads onto one line.  16 covers the worker pools
// this pipeline runs (one worker per channel shard, hardware-capped).
inline constexpr std::size_t kCells = 16;

// Stable per-thread cell index in [0, kCells).
std::size_t ThisThreadCell();

struct alignas(64) Cell {
  std::atomic<std::int64_t> value{0};
};

}  // namespace internal

// Monotonic event count.  Add is one relaxed atomic on the caller's cell.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    if (!Enabled()) return;
    cells_[internal::ThisThreadCell()].value.fetch_add(
        static_cast<std::int64_t>(n), std::memory_order_relaxed);
  }

  std::uint64_t Value() const {
    std::int64_t total = 0;
    for (const auto& c : cells_) {
      total += c.value.load(std::memory_order_relaxed);
    }
    return static_cast<std::uint64_t>(total);
  }

  void Reset() {
    for (auto& c : cells_) c.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<internal::Cell, internal::kCells> cells_;
};

// Point-in-time signed value (queue depth, bytes on disk, ...).  Unsharded:
// gauges are set at stage granularity, not per event.
class Gauge {
 public:
  void Set(std::int64_t v) {
    if (!Enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }

  void Add(std::int64_t delta) {
    if (!Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  // Monotonic high-watermark update — safe from concurrent shard workers.
  void UpdateMax(std::int64_t v) {
    if (!Enabled()) return;
    std::int64_t seen = value_.load(std::memory_order_relaxed);
    while (v > seen &&
           !value_.compare_exchange_weak(seen, v,
                                         std::memory_order_relaxed)) {
    }
  }

  std::int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Fixed-bucket histogram over int64 samples (latencies in us, sizes in
// bytes).  Bucket edges are inclusive upper bounds, ascending, fixed at
// registration — the Prometheus `le` convention — plus an implicit +Inf
// overflow bucket.  Observe costs three relaxed atomics on the caller's
// cell (bucket, sum, count); used at emission granularity, not per event.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  void Observe(std::int64_t v);

  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  std::uint64_t Count() const;
  std::int64_t Sum() const;
  // Per-bucket (non-cumulative) counts, size bounds().size() + 1; the last
  // entry is the +Inf overflow bucket.
  std::vector<std::uint64_t> BucketCounts() const;

  void Reset();

 private:
  struct Shard {
    std::unique_ptr<internal::Cell[]> buckets;  // bounds_.size() + 1
    internal::Cell sum;
    internal::Cell count;
  };

  std::vector<std::int64_t> bounds_;
  std::array<Shard, internal::kCells> shards_;
};

// Aggregated read of one metric, for exposition (src/obs/export.h).
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  std::string labels;  // Prometheus label body, e.g. consumer="link"
  std::string help;
  Kind kind = Kind::kCounter;
  std::int64_t value = 0;  // counter / gauge
  // Histogram only.
  std::vector<std::int64_t> bounds;
  std::vector<std::uint64_t> bucket_counts;  // non-cumulative, bounds + 1
  std::uint64_t count = 0;
  std::int64_t sum = 0;
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  // sorted by (name, labels)

  // nullptr when the metric has not been registered.
  const MetricSample* Find(std::string_view name,
                           std::string_view labels = "") const;
  // Convenience for tests/CLIs: 0 when absent.
  std::int64_t Value(std::string_view name,
                     std::string_view labels = "") const;
};

// Process-global metric registry.  Get* registers on first use (mutex-
// protected) and returns a stable reference; re-registration with the same
// (name, labels) returns the same metric, and a kind or bucket-bound
// mismatch throws std::logic_error — one name, one meaning.
class MetricRegistry {
 public:
  static MetricRegistry& Global();

  Counter& GetCounter(std::string_view name, std::string_view help = "",
                      std::string_view labels = "");
  Gauge& GetGauge(std::string_view name, std::string_view help = "",
                  std::string_view labels = "");
  Histogram& GetHistogram(std::string_view name,
                          std::vector<std::int64_t> bounds,
                          std::string_view help = "",
                          std::string_view labels = "");

  MetricsSnapshot Collect() const;

  // Zeroes every registered metric (registrations and handles survive).
  // For tests and fresh CLI runs; not meant for concurrent use with
  // writers mid-merge.
  void ResetAll();

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

 private:
  MetricRegistry() = default;

  struct Impl;
  Impl& impl() const;
};

// Shared latency bucket edges (us): 50us .. 10s, decade-ish spacing.  One
// scheme across every *_us histogram so expositions line up in dashboards.
std::vector<std::int64_t> LatencyBucketsUs();

}  // namespace jig::obs
