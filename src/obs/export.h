// Exposition writers for MetricsSnapshot: Prometheus text format 0.0.4 and
// a JSON mirror of the same data.
//
// Both render the aggregated snapshot, never the live registry — take the
// snapshot once (MetricRegistry::Collect or MergeSession::MetricsSnapshot)
// and hand it to whichever writers you need; the two expositions of one
// snapshot are guaranteed to agree.
//
//   * ToPrometheusText — what `jigtool stats` prints and `live_monitor
//     --metrics-interval` dumps: HELP/TYPE comment lines, cumulative
//     histogram buckets with le="..." labels and a +Inf terminal bucket,
//     _sum/_count series.  Scrapeable as-is.
//   * ToJson — what `jigtool merge --stats-json` writes: one object with
//     "counters" / "gauges" / "histograms" maps keyed by metric name
//     (labels folded into the key as name{label}).  Histogram buckets stay
//     non-cumulative in JSON ("counts" per bucket edge) because tooling
//     diffing two snapshots wants subtractable values.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace jig::obs {

std::string ToPrometheusText(const MetricsSnapshot& snapshot);

std::string ToJson(const MetricsSnapshot& snapshot);

// Writes `content` to `path` via a temp file + rename, so a concurrent
// reader (a scrape cron, `watch cat`) never sees a torn exposition.
// Throws std::runtime_error on IO failure.
void WriteFileAtomic(const std::filesystem::path& path,
                     std::string_view content);

}  // namespace jig::obs
