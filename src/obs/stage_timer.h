// RAII wall-clock stage timing into a metrics histogram.
//
//   static obs::Histogram& fit_us = obs::MetricRegistry::Global()
//       .GetHistogram("jig_bootstrap_fit_us", obs::LatencyBucketsUs(), ...);
//   {
//     obs::StageTimer timer(fit_us);
//     ExpensiveStage();
//   }  // fit_us.Observe(elapsed us)
//
// The clock is only read when metrics are enabled, so a disabled registry
// costs one relaxed load per timed scope.  Wall time (steady_clock) is the
// right clock here: stage timings exist to explain live lag, which is a
// wall-clock phenomenon — simulation time never appears in a StageTimer.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace jig::obs {

class StageTimer {
 public:
  explicit StageTimer(Histogram& histogram)
      : histogram_(Enabled() ? &histogram : nullptr) {
    if (histogram_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~StageTimer() { Record(); }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  // Observes the elapsed time once (idempotent); returns the elapsed us
  // recorded, 0 when metrics were disabled at construction.
  std::int64_t Record() {
    if (histogram_ == nullptr) return 0;
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start_);
    histogram_->Observe(elapsed.count());
    histogram_ = nullptr;
    return elapsed.count();
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace jig::obs
