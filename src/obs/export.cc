#include "obs/export.h"

#include <cstdio>
#include <stdexcept>
#include <string>

namespace jig::obs {
namespace {

void Append(std::string& out, std::string_view s) { out.append(s); }

void Append(std::string& out, std::int64_t v) {
  out.append(std::to_string(v));
}

void Append(std::string& out, std::uint64_t v) {
  out.append(std::to_string(v));
}

std::string SeriesName(const MetricSample& s, std::string_view suffix = "",
                       std::string_view extra_label = "") {
  std::string name = s.name;
  name.append(suffix);
  std::string labels = s.labels;
  if (!extra_label.empty()) {
    if (!labels.empty()) labels.append(",");
    labels.append(extra_label);
  }
  if (!labels.empty()) {
    name.append("{").append(labels).append("}");
  }
  return name;
}

// JSON string escaping for names/help (metric names are tame, but help
// strings may quote).
std::string JsonString(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += "\"";
  return out;
}

const char* KindName(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter:
      return "counter";
    case MetricSample::Kind::kGauge:
      return "gauge";
    case MetricSample::Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string_view last_name;
  for (const MetricSample& s : snapshot.samples) {
    // HELP/TYPE once per metric name; labeled series of one name are
    // adjacent because the snapshot is sorted by (name, labels).
    if (s.name != last_name) {
      if (!s.help.empty()) {
        Append(out, "# HELP ");
        Append(out, s.name);
        Append(out, " ");
        Append(out, s.help);
        Append(out, "\n");
      }
      Append(out, "# TYPE ");
      Append(out, s.name);
      Append(out, " ");
      Append(out, KindName(s.kind));
      Append(out, "\n");
      last_name = s.name;
    }
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
      case MetricSample::Kind::kGauge:
        Append(out, SeriesName(s));
        Append(out, " ");
        Append(out, s.value);
        Append(out, "\n");
        break;
      case MetricSample::Kind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < s.bounds.size(); ++b) {
          cumulative += s.bucket_counts[b];
          Append(out, SeriesName(s, "_bucket",
                                 "le=\"" + std::to_string(s.bounds[b]) +
                                     "\""));
          Append(out, " ");
          Append(out, cumulative);
          Append(out, "\n");
        }
        Append(out, SeriesName(s, "_bucket", "le=\"+Inf\""));
        Append(out, " ");
        Append(out, s.count);
        Append(out, "\n");
        Append(out, SeriesName(s, "_sum"));
        Append(out, " ");
        Append(out, s.sum);
        Append(out, "\n");
        Append(out, SeriesName(s, "_count"));
        Append(out, " ");
        Append(out, s.count);
        Append(out, "\n");
        break;
      }
    }
  }
  return out;
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  std::string counters, gauges, histograms;
  for (const MetricSample& s : snapshot.samples) {
    std::string key = s.name;
    if (!s.labels.empty()) key.append("{").append(s.labels).append("}");
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
      case MetricSample::Kind::kGauge: {
        std::string& dst =
            s.kind == MetricSample::Kind::kCounter ? counters : gauges;
        if (!dst.empty()) dst.append(",\n    ");
        dst.append(JsonString(key)).append(": ");
        Append(dst, s.value);
        break;
      }
      case MetricSample::Kind::kHistogram: {
        if (!histograms.empty()) histograms.append(",\n    ");
        histograms.append(JsonString(key)).append(": {\"bounds\": [");
        for (std::size_t b = 0; b < s.bounds.size(); ++b) {
          if (b != 0) histograms.append(", ");
          Append(histograms, s.bounds[b]);
        }
        histograms.append("], \"counts\": [");
        for (std::size_t b = 0; b < s.bucket_counts.size(); ++b) {
          if (b != 0) histograms.append(", ");
          Append(histograms, s.bucket_counts[b]);
        }
        histograms.append("], \"count\": ");
        Append(histograms, s.count);
        histograms.append(", \"sum\": ");
        Append(histograms, s.sum);
        histograms.append("}");
        break;
      }
    }
  }
  std::string out = "{\n  \"counters\": {\n    ";
  out.append(counters);
  out.append("\n  },\n  \"gauges\": {\n    ");
  out.append(gauges);
  out.append("\n  },\n  \"histograms\": {\n    ");
  out.append(histograms);
  out.append("\n  }\n}\n");
  return out;
}

void WriteFileAtomic(const std::filesystem::path& path,
                     std::string_view content) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  std::FILE* f = std::fopen(tmp.string().c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("cannot open for writing: " + tmp.string());
  }
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote || !flushed) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("short write: " + tmp.string());
  }
  std::filesystem::rename(tmp, path);
}

}  // namespace jig::obs
