// 802.11 MAC frame model (paper Section 2).
//
// Frames are the atoms of everything downstream: the simulator transmits
// them, monitors capture (possibly corrupted copies of) them, and Jigsaw
// unifies, orders and reconstructs conversations from them.  The wire format
// here follows real 802.11 closely enough that the parsing side of the
// pipeline is honest work: frame-control type/subtype bits, duration field,
// 1–3 addresses, a 12-bit sequence number for DATA/MANAGEMENT, a body, and a
// trailing CRC-32 FCS.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "util/byte_io.h"
#include "wifi/mac_address.h"
#include "wifi/rates.h"

namespace jig {

enum class FrameType : std::uint8_t {
  kData,
  kAck,
  kRts,
  kCts,  // CTS-to-self when addr1 == the transmitter itself
  kBeacon,
  kProbeRequest,
  kProbeResponse,
  kAssocRequest,
  kAssocResponse,
  kAuthentication,
  kDeauthentication,
};

constexpr bool IsManagement(FrameType t) {
  switch (t) {
    case FrameType::kBeacon:
    case FrameType::kProbeRequest:
    case FrameType::kProbeResponse:
    case FrameType::kAssocRequest:
    case FrameType::kAssocResponse:
    case FrameType::kAuthentication:
    case FrameType::kDeauthentication:
      return true;
    default:
      return false;
  }
}
constexpr bool IsControl(FrameType t) {
  return t == FrameType::kAck || t == FrameType::kRts || t == FrameType::kCts;
}
constexpr bool IsData(FrameType t) { return t == FrameType::kData; }

std::string FrameTypeName(FrameType t);

// Frame-control type/subtype encoding per IEEE 802.11-1999 Table 1.
// Exposed so hot paths can classify a capture from its first two bytes
// without a full parse (e.g. bootstrap reference screening).
struct TypeBits {
  std::uint8_t type = 0;     // 0 mgmt, 1 ctrl, 2 data
  std::uint8_t subtype = 0;  // 4 bits
};
TypeBits ToBits(FrameType t);
std::optional<FrameType> FromBits(std::uint8_t type, std::uint8_t subtype);

struct Frame {
  FrameType type = FrameType::kData;
  bool retry = false;
  bool from_ds = false;  // AP -> client direction for DATA frames
  bool to_ds = false;    // client -> AP direction for DATA frames
  // Duration field: microseconds of medium reservation after this frame
  // (NAV), e.g. SIFS + ACK for unicast DATA (Section 2).
  std::uint16_t duration_us = 0;
  MacAddress addr1;  // receiver address (RA); only address in ACK/CTS
  MacAddress addr2;  // transmitter address (TA); absent in ACK/CTS
  MacAddress addr3;  // BSSID / DS address for DATA and MANAGEMENT
  std::uint16_t sequence = 0;  // 12-bit, DATA/MANAGEMENT only
  PhyRate rate = PhyRate::kB1;
  Bytes body;

  // --- Field presence -----------------------------------------------------
  bool HasSequence() const { return !IsControl(type); }
  // ACK and CTS carry only the receiver address (Section 2: "some frames
  // only specify the transmitter or receiver").
  bool HasTransmitter() const {
    return type != FrameType::kAck && type != FrameType::kCts;
  }

  // Best-known transmitter: addr2 where present.  For CTS(-to-self) frames
  // addr1 is the reserving station itself, which is why link reconstruction
  // can attribute them (Section 5.1).
  std::optional<MacAddress> Transmitter() const {
    if (HasTransmitter()) return addr2;
    if (type == FrameType::kCts) return addr1;  // assume CTS-to-self
    return std::nullopt;
  }

  bool IsCtsToSelf() const { return type == FrameType::kCts; }
  bool IsBroadcast() const { return addr1.IsBroadcast(); }

  // --- Wire form ----------------------------------------------------------
  std::size_t WireSize() const;  // bytes including FCS
  // Serializes header + body and appends the (correct) FCS.
  Bytes Serialize() const;

  // Air time at this frame's rate, including PLCP overhead.
  Micros AirTimeMicros() const { return TxDurationMicros(rate, WireSize()); }

  // Returns all fields to their default-constructed values while keeping
  // body's heap allocation, so pooled frames (JFramePool) re-parse without
  // reallocating.
  void Reset() {
    type = FrameType::kData;
    retry = from_ds = to_ds = false;
    duration_us = 0;
    addr1 = addr2 = addr3 = MacAddress();
    sequence = 0;
    rate = PhyRate::kB1;
    body.clear();
  }

  std::string Summary() const;  // one-line human-readable description
};

// Parse result: a frame plus whether the trailing FCS matched the content.
struct ParsedFrame {
  Frame frame;
  bool fcs_ok = false;
  std::uint32_t fcs = 0;  // FCS as found on the wire
};

// Parses wire bytes.  Returns nullopt when the buffer is too short to carry
// even a header of the indicated type (i.e. truncated beyond use).  The
// caller supplies the receive rate, which travels in the PLCP header on a
// real capture, not in the MAC frame.
std::optional<ParsedFrame> ParseFrame(std::span<const std::uint8_t> wire,
                                      PhyRate rate);

// Allocation-reusing variant for the merge hot path: parses into `out`,
// reusing out.frame.body's capacity instead of building a fresh ParsedFrame
// per capture.  Returns false (leaving `out` reset) on the same inputs for
// which ParseFrame returns nullopt.
bool ParseFrameInto(std::span<const std::uint8_t> wire, PhyRate rate,
                    ParsedFrame& out);

// 64-bit content digest of serialized frame bytes.  Used as the unification
// pre-key; equality is always confirmed by byte comparison, so the only
// requirements are determinism within a run and a low collision rate — the
// implementation is an 8-byte-lane multiply-mix chosen for speed, not a
// standard hash.
std::uint64_t ContentDigest(std::span<const std::uint8_t> wire);

// Management-frame body conventions (stand-in for 802.11 capability and ERP
// information elements):
//   body[0] bit0 — station is 802.11b-only (probe/assoc requests)
//   body[1] bit0 — BSS protection active (beacons, probe/assoc responses)
constexpr std::uint8_t kCapBOnly = 0x01;
constexpr std::uint8_t kErpProtection = 0x01;

// --- Frame factories used by the simulator's MAC --------------------------
Frame MakeAck(MacAddress receiver, PhyRate rate);
Frame MakeCtsToSelf(MacAddress self, Micros reserve_us, PhyRate rate);
Frame MakeRts(MacAddress receiver, MacAddress transmitter, Micros reserve_us,
              PhyRate rate);
Frame MakeData(MacAddress receiver, MacAddress transmitter, MacAddress bssid,
               std::uint16_t sequence, Bytes body, PhyRate rate, bool from_ds,
               bool to_ds);
Frame MakeBeacon(MacAddress ap, std::uint16_t sequence, PhyRate rate);
Frame MakeProbeRequest(MacAddress client, std::uint16_t sequence);
Frame MakeProbeResponse(MacAddress ap, MacAddress client,
                        std::uint16_t sequence, PhyRate rate);

}  // namespace jig
