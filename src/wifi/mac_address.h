// 48-bit IEEE MAC addresses (paper Section 2).
//
// Addresses identify stations in frames and key most of Jigsaw's per-sender
// state (sequence tracking, link-layer FSMs, coverage accounting).  The
// simulator mints addresses from distinct OUI-style prefixes per station
// class so traces are easy to eyeball and analyses can recover station roles
// without out-of-band metadata.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace jig {

class MacAddress {
 public:
  constexpr MacAddress() : octets_{} {}
  constexpr explicit MacAddress(std::array<std::uint8_t, 6> octets)
      : octets_(octets) {}

  static constexpr MacAddress Broadcast() {
    return MacAddress({0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF});
  }

  // Simulator address factories.  The prefix byte doubles as a station-class
  // tag: 0x02 locally administered client, 0x06 AP, 0x0A wired host.
  static constexpr MacAddress Client(std::uint16_t index) {
    return FromTag(0x02, index);
  }
  static constexpr MacAddress Ap(std::uint16_t index) {
    return FromTag(0x06, index);
  }
  static constexpr MacAddress WiredHost(std::uint16_t index) {
    return FromTag(0x0A, index);
  }

  constexpr bool IsBroadcast() const {
    for (auto o : octets_) {
      if (o != 0xFF) return false;
    }
    return true;
  }
  constexpr bool IsMulticast() const { return (octets_[0] & 0x01) != 0; }
  constexpr bool IsUnicast() const { return !IsMulticast(); }

  constexpr bool IsClientTag() const { return octets_[0] == 0x02; }
  constexpr bool IsApTag() const { return octets_[0] == 0x06; }

  constexpr const std::array<std::uint8_t, 6>& octets() const {
    return octets_;
  }

  std::uint64_t ToU64() const {
    std::uint64_t v = 0;
    for (auto o : octets_) v = (v << 8) | o;
    return v;
  }

  std::string ToString() const {
    char buf[18];
    std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                  octets_[0], octets_[1], octets_[2], octets_[3], octets_[4],
                  octets_[5]);
    return buf;
  }

  friend constexpr auto operator<=>(const MacAddress&,
                                    const MacAddress&) = default;

 private:
  static constexpr MacAddress FromTag(std::uint8_t tag, std::uint16_t index) {
    return MacAddress({tag, 0x00, 0x5E, 0x00,
                       static_cast<std::uint8_t>(index >> 8),
                       static_cast<std::uint8_t>(index & 0xFF)});
  }
  std::array<std::uint8_t, 6> octets_;
};

}  // namespace jig

template <>
struct std::hash<jig::MacAddress> {
  std::size_t operator()(const jig::MacAddress& a) const noexcept {
    return std::hash<std::uint64_t>{}(a.ToU64());
  }
};
