#include "wifi/frame.h"

#include <cstring>
#include <stdexcept>

#include "util/crc32.h"

namespace jig {

TypeBits ToBits(FrameType t) {
  switch (t) {
    case FrameType::kAssocRequest: return {0, 0};
    case FrameType::kAssocResponse: return {0, 1};
    case FrameType::kProbeRequest: return {0, 4};
    case FrameType::kProbeResponse: return {0, 5};
    case FrameType::kBeacon: return {0, 8};
    case FrameType::kAuthentication: return {0, 11};
    case FrameType::kDeauthentication: return {0, 12};
    case FrameType::kRts: return {1, 11};
    case FrameType::kCts: return {1, 12};
    case FrameType::kAck: return {1, 13};
    case FrameType::kData: return {2, 0};
  }
  throw std::invalid_argument("bad frame type");
}

std::optional<FrameType> FromBits(std::uint8_t type, std::uint8_t subtype) {
  switch (type) {
    case 0:
      switch (subtype) {
        case 0: return FrameType::kAssocRequest;
        case 1: return FrameType::kAssocResponse;
        case 4: return FrameType::kProbeRequest;
        case 5: return FrameType::kProbeResponse;
        case 8: return FrameType::kBeacon;
        case 11: return FrameType::kAuthentication;
        case 12: return FrameType::kDeauthentication;
        default: return std::nullopt;
      }
    case 1:
      switch (subtype) {
        case 11: return FrameType::kRts;
        case 12: return FrameType::kCts;
        case 13: return FrameType::kAck;
        default: return std::nullopt;
      }
    case 2:
      return subtype == 0 ? std::optional<FrameType>(FrameType::kData)
                          : std::nullopt;
    default:
      return std::nullopt;
  }
}

namespace {

void WriteMac(ByteWriter& w, const MacAddress& mac) {
  w.Raw(std::span<const std::uint8_t>(mac.octets().data(), 6));
}

MacAddress ReadMac(ByteReader& r) {
  auto raw = r.Raw(6);
  std::array<std::uint8_t, 6> octets;
  std::copy(raw.begin(), raw.end(), octets.begin());
  return MacAddress(octets);
}

}  // namespace

std::string FrameTypeName(FrameType t) {
  switch (t) {
    case FrameType::kData: return "DATA";
    case FrameType::kAck: return "ACK";
    case FrameType::kRts: return "RTS";
    case FrameType::kCts: return "CTS";
    case FrameType::kBeacon: return "BEACON";
    case FrameType::kProbeRequest: return "PROBE-REQ";
    case FrameType::kProbeResponse: return "PROBE-RESP";
    case FrameType::kAssocRequest: return "ASSOC-REQ";
    case FrameType::kAssocResponse: return "ASSOC-RESP";
    case FrameType::kAuthentication: return "AUTH";
    case FrameType::kDeauthentication: return "DEAUTH";
  }
  return "?";
}

std::size_t Frame::WireSize() const {
  // fc(2) + duration(2) + addr1(6) ... + fcs(4)
  std::size_t n = 2 + 2 + 6 + 4;
  if (type == FrameType::kRts) n += 6;                       // addr2
  if (!IsControl(type)) n += 6 + 6 + 2 + body.size();        // a2,a3,seq,body
  return n;
}

Bytes Frame::Serialize() const {
  Bytes out;
  out.reserve(WireSize());
  ByteWriter w(out);
  const TypeBits bits = ToBits(type);
  const std::uint8_t fc0 =
      static_cast<std::uint8_t>((bits.type << 2) | (bits.subtype << 4));
  std::uint8_t fc1 = 0;
  if (to_ds) fc1 |= 0x01;
  if (from_ds) fc1 |= 0x02;
  if (retry) fc1 |= 0x08;
  w.U8(fc0);
  w.U8(fc1);
  w.U16(duration_us);
  WriteMac(w, addr1);
  if (type == FrameType::kRts) {
    WriteMac(w, addr2);
  } else if (!IsControl(type)) {
    WriteMac(w, addr2);
    WriteMac(w, addr3);
    w.U16(static_cast<std::uint16_t>((sequence & 0x0FFF) << 4));
    w.Raw(body);
  }
  const std::uint32_t fcs = Crc32(out);
  w.U32(fcs);
  return out;
}

bool ParseFrameInto(std::span<const std::uint8_t> wire, PhyRate rate,
                    ParsedFrame& out) {
  out.frame.Reset();
  out.fcs_ok = false;
  out.fcs = 0;
  if (wire.size() < 14) return false;  // smallest frame: ACK/CTS
  try {
    ByteReader r(wire);
    const std::uint8_t fc0 = r.U8();
    const std::uint8_t fc1 = r.U8();
    if ((fc0 & 0x03) != 0) return false;  // protocol version != 0
    const auto type = FromBits((fc0 >> 2) & 0x03, (fc0 >> 4) & 0x0F);
    if (!type) return false;

    Frame& f = out.frame;
    f.type = *type;
    f.to_ds = (fc1 & 0x01) != 0;
    f.from_ds = (fc1 & 0x02) != 0;
    f.retry = (fc1 & 0x08) != 0;
    f.duration_us = r.U16();
    f.rate = rate;
    f.addr1 = ReadMac(r);
    if (f.type == FrameType::kRts) {
      f.addr2 = ReadMac(r);
    } else if (!IsControl(f.type)) {
      f.addr2 = ReadMac(r);
      f.addr3 = ReadMac(r);
      f.sequence = static_cast<std::uint16_t>(r.U16() >> 4);
      const std::size_t body_len = r.remaining() - 4;
      auto body = r.Raw(body_len);
      f.body.assign(body.begin(), body.end());
    }
    if (r.remaining() != 4) {
      // Control frames with trailing slack or short frames: reject.
      if (r.remaining() < 4) return false;
      // Longer-than-expected control frame; treat extra as unparsable.
      return false;
    }
    out.fcs = r.U32();
    out.fcs_ok = Crc32(wire.first(wire.size() - 4)) == out.fcs;
    return true;
  } catch (const std::runtime_error&) {
    return false;  // truncated capture
  }
}

std::optional<ParsedFrame> ParseFrame(std::span<const std::uint8_t> wire,
                                      PhyRate rate) {
  ParsedFrame out;
  if (!ParseFrameInto(wire, rate, out)) return std::nullopt;
  return out;
}

std::uint64_t ContentDigest(std::span<const std::uint8_t> wire) {
  // 8-byte-lane multiply-mix with a splitmix64-style final avalanche.
  // Replaced byte-at-a-time FNV-1a, which was ~18% of merge runtime; the
  // unifier always confirms digest hits by byte comparison, so only
  // within-run determinism and collision rate matter.
  constexpr std::uint64_t kMult = 0x9E3779B97F4A7C15ull;
  const std::uint8_t* p = wire.data();
  std::size_t n = wire.size();
  std::uint64_t h = 0xcbf29ce484222325ull ^ (wire.size() * kMult);
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    h = (h ^ v) * kMult;
    h ^= h >> 32;
    p += 8;
    n -= 8;
  }
  if (n != 0) {
    std::uint64_t v = 0;
    std::memcpy(&v, p, n);
    h = (h ^ v) * kMult;
  }
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

std::string Frame::Summary() const {
  std::string s = FrameTypeName(type);
  if (HasTransmitter()) s += " from " + addr2.ToString();
  s += " to " + addr1.ToString();
  if (HasSequence()) s += " seq " + std::to_string(sequence);
  if (retry) s += " (retry)";
  s += " @" + RateName(rate);
  return s;
}

Frame MakeAck(MacAddress receiver, PhyRate rate) {
  Frame f;
  f.type = FrameType::kAck;
  f.addr1 = receiver;
  f.duration_us = 0;
  f.rate = rate;
  return f;
}

Frame MakeCtsToSelf(MacAddress self, Micros reserve_us, PhyRate rate) {
  Frame f;
  f.type = FrameType::kCts;
  f.addr1 = self;
  f.duration_us = static_cast<std::uint16_t>(
      std::min<Micros>(reserve_us, 0x7FFF));
  f.rate = rate;
  return f;
}

Frame MakeRts(MacAddress receiver, MacAddress transmitter, Micros reserve_us,
              PhyRate rate) {
  Frame f;
  f.type = FrameType::kRts;
  f.addr1 = receiver;
  f.addr2 = transmitter;
  f.duration_us = static_cast<std::uint16_t>(
      std::min<Micros>(reserve_us, 0x7FFF));
  f.rate = rate;
  return f;
}

Frame MakeData(MacAddress receiver, MacAddress transmitter, MacAddress bssid,
               std::uint16_t sequence, Bytes body, PhyRate rate, bool from_ds,
               bool to_ds) {
  Frame f;
  f.type = FrameType::kData;
  f.addr1 = receiver;
  f.addr2 = transmitter;
  f.addr3 = bssid;
  f.sequence = sequence & 0x0FFF;
  f.body = std::move(body);
  f.rate = rate;
  f.from_ds = from_ds;
  f.to_ds = to_ds;
  if (receiver.IsUnicast()) {
    f.duration_us = static_cast<std::uint16_t>(AckDurationFieldMicros(rate));
  }
  return f;
}

Frame MakeBeacon(MacAddress ap, std::uint16_t sequence, PhyRate rate) {
  Frame f;
  f.type = FrameType::kBeacon;
  f.addr1 = MacAddress::Broadcast();
  f.addr2 = ap;
  f.addr3 = ap;
  f.sequence = sequence & 0x0FFF;
  // Beacon body: timestamp(8) + interval(2) + capabilities(2) + SSID-ish tag.
  f.body.assign(24, 0);
  f.rate = rate;
  return f;
}

Frame MakeProbeRequest(MacAddress client, std::uint16_t sequence) {
  Frame f;
  f.type = FrameType::kProbeRequest;
  f.addr1 = MacAddress::Broadcast();
  f.addr2 = client;
  f.addr3 = MacAddress::Broadcast();
  f.sequence = sequence & 0x0FFF;
  f.body.assign(16, 0);
  f.rate = PhyRate::kB1;  // probes go out at the lowest rate
  return f;
}

Frame MakeProbeResponse(MacAddress ap, MacAddress client,
                        std::uint16_t sequence, PhyRate rate) {
  Frame f;
  f.type = FrameType::kProbeResponse;
  f.addr1 = client;
  f.addr2 = ap;
  f.addr3 = ap;
  f.sequence = sequence & 0x0FFF;
  f.body.assign(24, 0);
  f.rate = rate;
  f.duration_us = static_cast<std::uint16_t>(AckDurationFieldMicros(rate));
  return f;
}

}  // namespace jig
