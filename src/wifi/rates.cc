#include "wifi/rates.h"

#include <stdexcept>

namespace jig {

double RateMbps(PhyRate r) {
  switch (r) {
    case PhyRate::kB1: return 1.0;
    case PhyRate::kB2: return 2.0;
    case PhyRate::kB5_5: return 5.5;
    case PhyRate::kB11: return 11.0;
    case PhyRate::kG6: return 6.0;
    case PhyRate::kG9: return 9.0;
    case PhyRate::kG12: return 12.0;
    case PhyRate::kG18: return 18.0;
    case PhyRate::kG24: return 24.0;
    case PhyRate::kG36: return 36.0;
    case PhyRate::kG48: return 48.0;
    case PhyRate::kG54: return 54.0;
  }
  throw std::invalid_argument("bad rate");
}

std::string RateName(PhyRate r) {
  switch (r) {
    case PhyRate::kB5_5: return "5.5Mbps(b)";
    default: {
      const double mbps = RateMbps(r);
      return std::to_string(static_cast<int>(mbps)) + "Mbps" +
             (IsOfdm(r) ? "(g)" : "(b)");
    }
  }
}

Micros PlcpOverheadMicros(PhyRate r) {
  if (IsCck(r)) return 192;  // long preamble, as the paper's APs use
  return 20;                 // 16 us preamble + 4 us SIGNAL
}

Micros TxDurationMicros(PhyRate r, std::size_t mac_bytes) {
  const std::size_t bits = mac_bytes * 8;
  if (IsCck(r)) {
    // Payload time rounded up to whole us.
    const double us = static_cast<double>(bits) / RateMbps(r);
    return PlcpOverheadMicros(r) + static_cast<Micros>(us + 0.999999);
  }
  // OFDM: 4 us symbols carrying N_DBPS = rate * 4 bits; 16 service bits and
  // 6 tail bits wrap the PSDU; 6 us signal extension follows (802.11g).
  const std::size_t n_dbps = static_cast<std::size_t>(RateMbps(r) * 4.0);
  const std::size_t symbols = (16 + bits + 6 + n_dbps - 1) / n_dbps;
  return PlcpOverheadMicros(r) + static_cast<Micros>(symbols) * 4 + 6;
}

PhyRate ControlResponseRate(PhyRate eliciting) {
  if (IsCck(eliciting)) {
    // Mandatory CCK rates: 1, 2 Mbps (5.5/11 optional for control).
    return eliciting == PhyRate::kB1 ? PhyRate::kB1 : PhyRate::kB2;
  }
  // Mandatory OFDM rates: 6, 12, 24.
  if (eliciting >= PhyRate::kG24) return PhyRate::kG24;
  if (eliciting >= PhyRate::kG12) return PhyRate::kG12;
  return PhyRate::kG6;
}

Micros AckDurationFieldMicros(PhyRate data_rate) {
  const PhyRate ack_rate = ControlResponseRate(data_rate);
  return kSifs + TxDurationMicros(ack_rate, kAckBytes);
}

double RequiredSinrDb(PhyRate r) {
  switch (r) {
    case PhyRate::kB1: return 2.0;
    case PhyRate::kB2: return 4.0;
    case PhyRate::kB5_5: return 7.0;
    case PhyRate::kB11: return 10.0;
    case PhyRate::kG6: return 5.0;
    case PhyRate::kG9: return 6.5;
    case PhyRate::kG12: return 8.0;
    case PhyRate::kG18: return 10.5;
    case PhyRate::kG24: return 13.5;
    case PhyRate::kG36: return 17.5;
    case PhyRate::kG48: return 21.5;
    case PhyRate::kG54: return 23.5;
  }
  throw std::invalid_argument("bad rate");
}

double SensitivityDbm(PhyRate r) {
  switch (r) {
    case PhyRate::kB1: return -94.0;
    case PhyRate::kB2: return -91.0;
    case PhyRate::kB5_5: return -89.0;
    case PhyRate::kB11: return -86.0;
    case PhyRate::kG6: return -90.0;
    case PhyRate::kG9: return -89.0;
    case PhyRate::kG12: return -87.0;
    case PhyRate::kG18: return -85.0;
    case PhyRate::kG24: return -82.0;
    case PhyRate::kG36: return -78.0;
    case PhyRate::kG48: return -74.0;
    case PhyRate::kG54: return -72.0;
  }
  throw std::invalid_argument("bad rate");
}

}  // namespace jig
