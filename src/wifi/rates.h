// 802.11b/g PHY rates and air-time arithmetic (paper Section 2).
//
// Every timing inference in Jigsaw — duration-field checks, ACK-timeout
// deduction, protection-mode cost accounting (footnote 7) — rests on knowing
// exactly how long a frame occupies the air.  This module computes PLCP
// preamble + payload transmission times for CCK (802.11b) and OFDM (802.11g)
// encodings, the duration-field values senders advertise, and the per-rate
// receiver requirements the PHY simulation uses.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/time.h"

namespace jig {

enum class PhyRate : std::uint8_t {
  // 802.11b (CCK / DSSS)
  kB1,
  kB2,
  kB5_5,
  kB11,
  // 802.11g (OFDM)
  kG6,
  kG9,
  kG12,
  kG18,
  kG24,
  kG36,
  kG48,
  kG54,
};

constexpr std::array<PhyRate, 12> kAllRates = {
    PhyRate::kB1,  PhyRate::kB2,  PhyRate::kB5_5, PhyRate::kB11,
    PhyRate::kG6,  PhyRate::kG9,  PhyRate::kG12,  PhyRate::kG18,
    PhyRate::kG24, PhyRate::kG36, PhyRate::kG48,  PhyRate::kG54,
};

constexpr std::array<PhyRate, 4> kBRates = {PhyRate::kB1, PhyRate::kB2,
                                            PhyRate::kB5_5, PhyRate::kB11};
constexpr std::array<PhyRate, 8> kGRates = {
    PhyRate::kG6,  PhyRate::kG9,  PhyRate::kG12, PhyRate::kG18,
    PhyRate::kG24, PhyRate::kG36, PhyRate::kG48, PhyRate::kG54};

constexpr bool IsOfdm(PhyRate r) { return r >= PhyRate::kG6; }
constexpr bool IsCck(PhyRate r) { return !IsOfdm(r); }

double RateMbps(PhyRate r);
std::string RateName(PhyRate r);

// MAC timing constants (802.11b/g, long slot where legacy stations present).
constexpr Micros kSifs = 10;             // 802.11b/g SIFS
constexpr Micros kSlotTime = 20;         // long slot (b-compatible)
constexpr Micros kDifs = kSifs + 2 * kSlotTime;  // 50 us
constexpr int kCwMin = 31;
constexpr int kCwMax = 1023;
constexpr int kShortRetryLimit = 7;

// PLCP preamble+header time that precedes the payload bits.
// CCK long preamble: 144 us preamble + 48 us header = 192 us.
// OFDM: 16 us preamble + 4 us SIGNAL; payload symbols are 4 us each and a
// 6 us signal-extension trails 802.11g transmissions.
Micros PlcpOverheadMicros(PhyRate r);

// Full transmission time of `mac_bytes` (MAC header + body + FCS) at rate r,
// including PLCP overhead (and OFDM signal extension).
Micros TxDurationMicros(PhyRate r, std::size_t mac_bytes);

// Control-response rate: the highest mandatory rate of the same PHY family
// that does not exceed the eliciting frame's rate.  ACKs/CTSs use this.
PhyRate ControlResponseRate(PhyRate eliciting);

// Duration-field value (us) a unicast DATA frame advertises: time remaining
// after this frame, i.e. SIFS + ACK at the control-response rate.
Micros AckDurationFieldMicros(PhyRate data_rate);

// Lengths of control frames on the wire (bytes incl. FCS).
constexpr std::size_t kAckBytes = 14;
constexpr std::size_t kCtsBytes = 14;
constexpr std::size_t kRtsBytes = 20;

// Minimum SINR (dB) needed to decode the payload at rate r with high
// probability; below this the frame is captured but fails its FCS.
double RequiredSinrDb(PhyRate r);

// Receiver sensitivity (dBm): minimum RSSI for the radio to lock onto the
// PLCP preamble at all.  Below kPhyDetectDbm nothing is logged; between
// kPhyDetectDbm and the rate's sensitivity a PHY-error event is logged.
double SensitivityDbm(PhyRate r);
constexpr double kPhyDetectDbm = -96.0;

}  // namespace jig
