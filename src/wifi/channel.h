// 2.4 GHz channel model.
//
// The deployment monitors the three "non-overlapping" channels 1, 6 and 11
// (paper Section 3.1); adjacent-channel interference is rare on those, so
// the simulator treats distinct channels as orthogonal (paper Section 7.2
// makes the same assumption for its interference analysis).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace jig {

enum class Channel : std::uint8_t {
  kCh1 = 1,
  kCh6 = 6,
  kCh11 = 11,
};

constexpr std::array<Channel, 3> kAllChannels = {Channel::kCh1, Channel::kCh6,
                                                 Channel::kCh11};

constexpr int CenterFrequencyMhz(Channel c) {
  return 2407 + 5 * static_cast<int>(c);
}

// Channels 1/6/11 are spaced >= 25 MHz apart; we model them as orthogonal.
constexpr bool ChannelsInterfere(Channel a, Channel b) { return a == b; }

inline std::string ChannelName(Channel c) {
  return "ch" + std::to_string(static_cast<int>(c));
}

}  // namespace jig
