// Network/transport payload encapsulation inside 802.11 DATA frames.
//
// The paper notes each captured frame retains up to 200 bytes of payload,
// "used to identify MAC addresses, IP addresses and TCP port numbers"
// (Section 5).  This module builds and parses that payload: an LLC/SNAP
// header followed by IPv4 + TCP/UDP, or an ARP body.  Jigsaw's transport
// reconstruction (Section 5.2) parses these bytes back out of unified
// frames; the simulator's traffic generators build them.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "util/byte_io.h"

namespace jig {

using Ipv4Addr = std::uint32_t;

constexpr Ipv4Addr MakeIpv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                            std::uint8_t d) {
  return (static_cast<Ipv4Addr>(a) << 24) | (static_cast<Ipv4Addr>(b) << 16) |
         (static_cast<Ipv4Addr>(c) << 8) | d;
}
std::string Ipv4ToString(Ipv4Addr a);

// TCP flag bits.
constexpr std::uint8_t kTcpFin = 0x01;
constexpr std::uint8_t kTcpSyn = 0x02;
constexpr std::uint8_t kTcpRst = 0x04;
constexpr std::uint8_t kTcpPsh = 0x08;
constexpr std::uint8_t kTcpAck = 0x10;

constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
constexpr std::uint16_t kEtherTypeArp = 0x0806;

constexpr std::uint8_t kIpProtoTcp = 6;
constexpr std::uint8_t kIpProtoUdp = 17;

struct TcpSegment {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  std::uint16_t payload_len = 0;  // TCP payload bytes (may exceed captured)

  bool Syn() const { return flags & kTcpSyn; }
  bool Fin() const { return flags & kTcpFin; }
  bool Rst() const { return flags & kTcpRst; }
  bool HasAck() const { return flags & kTcpAck; }
};

struct UdpDatagram {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t payload_len = 0;
};

struct ArpMessage {
  bool is_request = true;
  Ipv4Addr sender_ip = 0;
  Ipv4Addr target_ip = 0;
};

// Parsed view of a DATA frame body.
struct PacketInfo {
  std::uint16_t ether_type = 0;
  // IPv4 fields (valid when ether_type == kEtherTypeIpv4).
  Ipv4Addr src_ip = 0;
  Ipv4Addr dst_ip = 0;
  std::uint8_t ip_proto = 0;
  std::uint8_t ttl = 0;
  std::uint16_t ip_id = 0;
  std::optional<TcpSegment> tcp;
  std::optional<UdpDatagram> udp;
  std::optional<ArpMessage> arp;

  bool IsTcp() const { return tcp.has_value(); }
  bool IsArp() const { return arp.has_value(); }
};

// --- Builders (simulator side) ---------------------------------------------
// `payload_len` is the logical TCP/UDP payload size; only min(payload_len,
// inline_cap) filler bytes are actually materialized, with the true length
// recorded in the IP/TCP headers, mirroring how a snap-length capture works.
Bytes BuildTcpFrameBody(Ipv4Addr src_ip, Ipv4Addr dst_ip, const TcpSegment& seg,
                        std::size_t inline_cap = 160);
Bytes BuildUdpFrameBody(Ipv4Addr src_ip, Ipv4Addr dst_ip,
                        const UdpDatagram& dgram, std::size_t inline_cap = 160);
Bytes BuildArpFrameBody(const ArpMessage& arp);

// --- Parser (Jigsaw side) ---------------------------------------------------
// Parses an LLC/SNAP-encapsulated body.  Returns nullopt when the body is
// not parseable (non-IP/ARP ethertype, truncated below header size, etc.).
std::optional<PacketInfo> ParseFrameBody(std::span<const std::uint8_t> body);

}  // namespace jig
