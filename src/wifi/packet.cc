#include "wifi/packet.h"

namespace jig {
namespace {

constexpr std::uint8_t kLlcSnap[6] = {0xAA, 0xAA, 0x03, 0x00, 0x00, 0x00};
constexpr std::size_t kLlcLen = 8;   // LLC/SNAP incl. ethertype
constexpr std::size_t kIpv4Len = 20;
constexpr std::size_t kTcpLen = 20;
constexpr std::size_t kUdpLen = 8;
constexpr std::size_t kArpLen = 28;

void WriteBE16(ByteWriter& w, std::uint16_t v) {
  w.U8(static_cast<std::uint8_t>(v >> 8));
  w.U8(static_cast<std::uint8_t>(v));
}
void WriteBE32(ByteWriter& w, std::uint32_t v) {
  WriteBE16(w, static_cast<std::uint16_t>(v >> 16));
  WriteBE16(w, static_cast<std::uint16_t>(v));
}
std::uint16_t ReadBE16(ByteReader& r) {
  const std::uint16_t hi = r.U8();
  return static_cast<std::uint16_t>((hi << 8) | r.U8());
}
std::uint32_t ReadBE32(ByteReader& r) {
  const std::uint32_t hi = ReadBE16(r);
  return (hi << 16) | ReadBE16(r);
}

void WriteLlcSnap(ByteWriter& w, std::uint16_t ether_type) {
  w.Raw(std::span<const std::uint8_t>(kLlcSnap, 6));
  WriteBE16(w, ether_type);
}

void WriteIpv4(ByteWriter& w, Ipv4Addr src, Ipv4Addr dst, std::uint8_t proto,
               std::uint16_t total_len, std::uint16_t ip_id) {
  w.U8(0x45);  // version 4, IHL 5
  w.U8(0x00);  // TOS
  WriteBE16(w, total_len);
  WriteBE16(w, ip_id);
  WriteBE16(w, 0x4000);  // DF
  w.U8(64);              // TTL
  w.U8(proto);
  WriteBE16(w, 0);  // header checksum: not modeled (link FCS covers capture)
  WriteBE32(w, src);
  WriteBE32(w, dst);
}

void AppendFiller(Bytes& out, std::size_t logical_len, std::size_t cap) {
  const std::size_t inline_len = std::min(logical_len, cap);
  // Non-zero filler so payload bytes contribute to content comparisons.
  for (std::size_t i = 0; i < inline_len; ++i) {
    out.push_back(static_cast<std::uint8_t>(0x5A ^ (i & 0xFF)));
  }
}

}  // namespace

std::string Ipv4ToString(Ipv4Addr a) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (a >> 24) & 0xFF,
                (a >> 16) & 0xFF, (a >> 8) & 0xFF, a & 0xFF);
  return buf;
}

Bytes BuildTcpFrameBody(Ipv4Addr src_ip, Ipv4Addr dst_ip, const TcpSegment& seg,
                        std::size_t inline_cap) {
  Bytes out;
  out.reserve(kLlcLen + kIpv4Len + kTcpLen + std::min<std::size_t>(
                                                 seg.payload_len, inline_cap));
  ByteWriter w(out);
  WriteLlcSnap(w, kEtherTypeIpv4);
  WriteIpv4(w, src_ip, dst_ip, kIpProtoTcp,
            static_cast<std::uint16_t>(kIpv4Len + kTcpLen + seg.payload_len),
            static_cast<std::uint16_t>(seg.seq & 0xFFFF));
  WriteBE16(w, seg.src_port);
  WriteBE16(w, seg.dst_port);
  WriteBE32(w, seg.seq);
  WriteBE32(w, seg.ack);
  w.U8(0x50);  // data offset 5
  w.U8(seg.flags);
  WriteBE16(w, seg.window);
  WriteBE16(w, 0);  // checksum (not modeled)
  WriteBE16(w, 0);  // urgent
  AppendFiller(out, seg.payload_len, inline_cap);
  return out;
}

Bytes BuildUdpFrameBody(Ipv4Addr src_ip, Ipv4Addr dst_ip,
                        const UdpDatagram& dgram, std::size_t inline_cap) {
  Bytes out;
  ByteWriter w(out);
  WriteLlcSnap(w, kEtherTypeIpv4);
  WriteIpv4(w, src_ip, dst_ip, kIpProtoUdp,
            static_cast<std::uint16_t>(kIpv4Len + kUdpLen + dgram.payload_len),
            dgram.src_port);
  WriteBE16(w, dgram.src_port);
  WriteBE16(w, dgram.dst_port);
  WriteBE16(w, static_cast<std::uint16_t>(kUdpLen + dgram.payload_len));
  WriteBE16(w, 0);  // checksum
  AppendFiller(out, dgram.payload_len, inline_cap);
  return out;
}

Bytes BuildArpFrameBody(const ArpMessage& arp) {
  Bytes out;
  out.reserve(kLlcLen + kArpLen);
  ByteWriter w(out);
  WriteLlcSnap(w, kEtherTypeArp);
  WriteBE16(w, 1);       // htype ethernet
  WriteBE16(w, 0x0800);  // ptype IPv4
  w.U8(6);
  w.U8(4);
  WriteBE16(w, arp.is_request ? 1 : 2);
  // Hardware addresses carry no analysis weight; zero-filled.
  for (int i = 0; i < 6; ++i) w.U8(0);
  WriteBE32(w, arp.sender_ip);
  for (int i = 0; i < 6; ++i) w.U8(0);
  WriteBE32(w, arp.target_ip);
  return out;
}

std::optional<PacketInfo> ParseFrameBody(std::span<const std::uint8_t> body) {
  if (body.size() < kLlcLen) return std::nullopt;
  for (std::size_t i = 0; i < 6; ++i) {
    if (body[i] != kLlcSnap[i]) return std::nullopt;
  }
  try {
    ByteReader r(body);
    r.Raw(6);
    PacketInfo info;
    info.ether_type = ReadBE16(r);

    if (info.ether_type == kEtherTypeArp) {
      if (r.remaining() < kArpLen) return std::nullopt;
      ReadBE16(r);  // htype
      ReadBE16(r);  // ptype
      r.U8();       // hlen
      r.U8();       // plen
      ArpMessage arp;
      arp.is_request = ReadBE16(r) == 1;
      r.Raw(6);
      arp.sender_ip = ReadBE32(r);
      r.Raw(6);
      arp.target_ip = ReadBE32(r);
      info.arp = arp;
      return info;
    }

    if (info.ether_type != kEtherTypeIpv4) return std::nullopt;
    if (r.remaining() < kIpv4Len) return std::nullopt;
    const std::uint8_t ver_ihl = r.U8();
    if ((ver_ihl >> 4) != 4) return std::nullopt;
    r.U8();  // TOS
    const std::uint16_t total_len = ReadBE16(r);
    info.ip_id = ReadBE16(r);
    ReadBE16(r);  // flags/frag
    info.ttl = r.U8();
    info.ip_proto = r.U8();
    ReadBE16(r);  // checksum
    info.src_ip = ReadBE32(r);
    info.dst_ip = ReadBE32(r);

    if (info.ip_proto == kIpProtoTcp) {
      if (r.remaining() < kTcpLen) return std::nullopt;
      TcpSegment seg;
      seg.src_port = ReadBE16(r);
      seg.dst_port = ReadBE16(r);
      seg.seq = ReadBE32(r);
      seg.ack = ReadBE32(r);
      r.U8();  // data offset
      seg.flags = r.U8();
      seg.window = ReadBE16(r);
      ReadBE16(r);  // checksum
      ReadBE16(r);  // urgent
      // Logical payload length from the IP header, not the (possibly
      // snap-truncated) captured bytes — this is what makes TCP sequence
      // accounting work on 200-byte captures.
      seg.payload_len = total_len >= kIpv4Len + kTcpLen
                            ? static_cast<std::uint16_t>(total_len - kIpv4Len -
                                                         kTcpLen)
                            : 0;
      info.tcp = seg;
    } else if (info.ip_proto == kIpProtoUdp) {
      if (r.remaining() < kUdpLen) return std::nullopt;
      UdpDatagram dgram;
      dgram.src_port = ReadBE16(r);
      dgram.dst_port = ReadBE16(r);
      const std::uint16_t udp_len = ReadBE16(r);
      ReadBE16(r);  // checksum
      dgram.payload_len =
          udp_len >= kUdpLen ? static_cast<std::uint16_t>(udp_len - kUdpLen)
                             : 0;
      info.udp = dgram;
    }
    return info;
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
}

}  // namespace jig
