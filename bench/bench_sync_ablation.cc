// Synchronization design-choice ablations (DESIGN.md experiment index).
//
// Sweeps the knobs Section 4.2 motivates qualitatively and quantifies each:
//   * search window size — too small loses instances ("synchronization is
//     lost quickly"), too large risks mis-grouping and costs time;
//   * proactive skew compensation + drift EWMA on/off;
//   * resynchronization dispersion threshold (accuracy/overhead tradeoff).
#include <algorithm>

#include "harness.h"
#include "jigsaw/analysis/dispersion.h"

using namespace jig;
using namespace jig::bench;

namespace {

struct Row {
  const char* label;
  MergeConfig cfg;
};

void Report(const char* title, TraceSet& traces, const MergeConfig& cfg) {
  const MergeResult result = MergeTraces(traces, cfg);
  const auto d = DispersionDistribution(result.jframes);
  std::printf("  %-34s  p50=%5.1f  p90=%6.1f  p99=%7.1f us"
              "  ev/jf=%5.2f  resyncs=%llu\n",
              title, d.Quantile(0.5), d.Quantile(0.9), d.Quantile(0.99),
              result.stats.EventsPerJframe(),
              static_cast<unsigned long long>(result.stats.resyncs));
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("ABLATION — synchronization design choices",
              "paper: 10 ms window, 10 us resync threshold, EWMA skew "
              "prediction");

  // Clocks with visible skew/drift so the knobs matter.
  ScenarioConfig cfg = args.ToConfig();
  cfg.clock.skew_sigma_ppm = 12.0;
  cfg.clock.drift_ppm_per_hour = 6.0;
  Scenario scenario(cfg);
  scenario.Run();
  auto traces = scenario.TakeTraces();

  std::printf("\nSearch window sweep:\n");
  for (Micros window : {Micros{500}, Milliseconds(2), Milliseconds(10),
                        Milliseconds(100)}) {
    MergeConfig mc;
    mc.unifier.search_window = window;
    // Keep the horizon ahead of the widest window (validated at entry).
    mc.reorder_horizon = std::max(mc.reorder_horizon, window * 2);
    char label[64];
    std::snprintf(label, sizeof(label), "window = %lld us",
                  static_cast<long long>(window));
    Report(label, traces, mc);
  }

  std::printf("\nSkew compensation:\n");
  {
    MergeConfig on;
    Report("EWMA skew compensation ON", traces, on);
    MergeConfig off;
    off.unifier.compensate_skew = false;
    Report("EWMA skew compensation OFF", traces, off);
  }

  std::printf("\nResync dispersion threshold sweep:\n");
  for (Micros threshold : {Micros{0}, Micros{10}, Micros{50}, Micros{200}}) {
    MergeConfig mc;
    mc.unifier.resync_dispersion_threshold = threshold;
    char label[64];
    std::snprintf(label, sizeof(label), "resync threshold = %lld us",
                  static_cast<long long>(threshold));
    Report(label, traces, mc);
  }
  std::printf("\n(paper: the 10 us threshold trades resync overhead against "
              "accuracy without limiting it)\n");
  return 0;
}
