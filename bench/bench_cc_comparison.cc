// Congestion-control comparison: the Figure-11 wireless/wired loss
// decomposition, broken out per congestion-control algorithm in a mixed
// Reno + CUBIC + BBR cell.
//
// The workload assigns algorithms round-robin across clients (an equal
// three-way split), the monitors capture the air, and the decomposition is
// computed entirely from the merged jframe stream — ground truth supplies
// only the flow -> algorithm labels (the join a real deployment would do
// against server logs).  Loss-based senders collapse on wireless loss
// while BBR's model absorbs it, so the per-algorithm signatures differ
// even though every flow crosses the same air.
#include "harness.h"
#include "jigsaw/analysis/tcp_loss.h"

int main(int argc, char** argv) {
  using namespace jig;
  using namespace jig::bench;
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.seconds == Seconds(30)) args.seconds = Seconds(90);
  PrintHeader("CC COMPARISON — per-algorithm wireless/wired TCP loss",
              "CC choice reshapes the Figure-11 decomposition");

  ScenarioConfig cfg = args.ToConfig();
  cfg.workload.cc_cycle = {CcAlgorithm::kReno, CcAlgorithm::kCubic,
                           CcAlgorithm::kBbr};
  cfg.workload.web_per_min = 3.0;
  cfg.workload.scp_per_min = 0.4;  // long flows accumulate loss statistics
  cfg.wired.loss_probability = 0.001;
  Scenario scenario(cfg);

  int cc_clients[3] = {0, 0, 0};
  for (std::size_t i = 0; i < scenario.client_count(); ++i) {
    ++cc_clients[static_cast<int>(scenario.traffic().ClientCc(i))];
  }
  std::printf("mixed cell: %d reno + %d cubic + %d bbr clients\n\n",
              cc_clients[0], cc_clients[1], cc_clients[2]);

  MergedRun run = RunAndReconstruct(scenario);
  std::printf("reconstructed %zu TCP flows from %zu jframes; ground truth "
              "tagged %zu launched flows\n\n",
              run.transport.flows.size(), run.merge.jframes.size(),
              scenario.truth().flows().size());

  // Label reconstructed flows with the sender's algorithm via the truth
  // flow registry; the loss split itself comes from the reconstruction.
  const auto cc_index = scenario.truth().FlowCcIndex();
  const TcpFlowLabeler labeler = [&cc_index](const TcpFlowKey& key) {
    const auto it = cc_index.find(FlowTruth::Key(
        key.client_ip, key.server_ip, key.client_port, key.server_port));
    return it == cc_index.end() ? std::string()
                                : std::string(CcAlgorithmName(it->second));
  };

  TcpLossConfig tcfg;
  tcfg.min_segments = 10;
  const auto groups = ComputeTcpLossByGroup(run.transport, labeler, tcfg);

  std::printf("%-8s %7s %12s %12s %12s %10s\n", "algo", "flows", "loss rate",
              "wireless", "wired", "wless %");
  for (const TcpLossGroup& g : groups) {
    const auto& r = g.report;
    std::printf("%-8s %7llu %12.4f %12.4f %12.4f %9.1f%%\n", g.label.c_str(),
                static_cast<unsigned long long>(r.flows_considered),
                r.aggregate_loss_rate, r.aggregate_wireless_rate,
                r.aggregate_wired_rate,
                r.aggregate_loss_rate > 0
                    ? 100.0 * r.aggregate_wireless_rate / r.aggregate_loss_rate
                    : 0.0);
  }

  std::printf("\nPer-flow total loss-rate CDFs:\n");
  for (const TcpLossGroup& g : groups) {
    std::printf("  %s:\n", g.label.c_str());
    PrintCdf(g.report.total_loss_rate, "loss rate", 8);
  }
  return 0;
}
