// Table 1: trace summary characteristics.
//
// Paper (24-hour trace, 156 radios): 2.7 B events observed, 47% PHY/CRC
// errors, 1.58 B events unified into 530 M jframes (2.97 events/jframe),
// 1,026 unique clients; Section 5.1 adds that 0.58% of transmission
// attempts and 0.14% of frame exchanges require inference.
#include <iostream>

#include "harness.h"
#include "jigsaw/analysis/summary.h"

int main(int argc, char** argv) {
  using namespace jig;
  using namespace jig::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("TABLE 1 — Summary of trace characteristics",
              "2.7B events, 47% errors, 2.97 events/jframe, 1026 clients");

  Scenario scenario(args.ToConfig());
  MergedRun run = RunAndReconstruct(scenario);
  const auto summary =
      Summarize(run.merge, run.link, run.transport, run.radio_count);
  PrintSummary(summary, std::cout);

  std::printf("\n  (scaled run: %lld s simulated, %d clients, seed %llu)\n",
              static_cast<long long>(ToSeconds(args.seconds)), args.clients,
              static_cast<unsigned long long>(args.seed));
  std::printf("  Ground truth transmissions: %zu (jframe recall %.1f%%)\n",
              scenario.truth().size(),
              100.0 * static_cast<double>(summary.jframes) /
                  static_cast<double>(scenario.truth().size()));
  return 0;
}
