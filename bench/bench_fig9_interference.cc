// Figure 9: CDF of interference loss rate X across (s, r) pairs.
//
// Paper: pairs with >=100 packets (82% of all pairs); average background
// loss rate 0.12; 88% of pairs experience interference loss; the X CDF has
// 50% of pairs <= 0.025, 10% >= 0.1, 5% >= 0.2; Pi negative (X truncated
// to 0) for 11% of pairs; senders split 56% APs / 44% clients.
#include "harness.h"
#include "jigsaw/analysis/interference.h"

int main(int argc, char** argv) {
  using namespace jig;
  using namespace jig::bench;
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.seconds == Seconds(30)) args.seconds = Seconds(60);
  PrintHeader("FIGURE 9 — Interference loss rate X across (s, r) pairs",
              "50% of pairs X<=0.025; 10% X>=0.1; 5% X>=0.2; bg loss 0.12");

  ScenarioConfig cfg = args.ToConfig();
  // Interference needs contention: busier workload than the default.
  cfg.workload.web_per_min = 4.0;
  cfg.workload.scp_per_min = 0.3;
  Scenario scenario(cfg);
  MergedRun run = RunAndReconstruct(scenario);

  // Scale the min-packets threshold to the run length (the paper's 100
  // packets corresponds to a 24-hour trace).
  InterferenceConfig icfg;
  icfg.min_packets = args.seconds >= Minutes(10) ? 100 : 30;
  const auto report =
      ComputeInterference(run.merge.jframes, run.link, icfg);

  std::printf("(s,r) pairs analyzed: %zu of %llu total (min %u packets)\n",
              report.pairs.size(),
              static_cast<unsigned long long>(report.total_pairs_seen),
              icfg.min_packets);
  std::printf("mean background loss rate: %.3f   (paper: 0.12)\n",
              report.mean_background_loss);
  std::printf("pairs experiencing interference (Pi>0): %.1f%%  (paper: 88%%)\n",
              100.0 * report.fraction_pairs_interfered);
  std::printf("pairs with Pi<0 (X truncated to 0):     %.1f%%  (paper: 11%%)\n",
              100.0 * report.fraction_truncated);
  std::printf("AP share of interfered senders:         %.1f%%  (paper: 56%%)\n",
              100.0 * report.ap_sender_fraction);

  Distribution x;
  for (const auto& pair : report.pairs) x.Add(pair.X());
  std::printf("\nCDF of interference loss rate X:\n");
  PrintCdf(x, "X");
  std::printf("\n  X at p50=%.4f (paper ~0.025)  p90=%.4f (paper ~0.1)  "
              "p95=%.4f (paper ~0.2)\n",
              x.Quantile(0.50), x.Quantile(0.90), x.Quantile(0.95));
  return 0;
}
