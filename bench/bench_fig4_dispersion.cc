// Figure 4: CDF of jframe group dispersion.
//
// Paper (156 radios, 10 ms search window, 24 h): 90% of jframes have worst
// pairwise offset under 10 us; 99% under 20 us.
#include "harness.h"
#include "jigsaw/analysis/dispersion.h"

int main(int argc, char** argv) {
  using namespace jig;
  using namespace jig::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("FIGURE 4 — CDF of group dispersion across all jframes",
              "90% < 10 us, 99% < 20 us (10 ms search window)");

  Scenario scenario(args.ToConfig());
  MergedRun run = RunAndReconstruct(scenario);
  const auto d = DispersionDistribution(run.merge.jframes);

  std::printf("multi-instance jframes: %zu (of %llu)\n", d.size(),
              static_cast<unsigned long long>(run.merge.stats.jframes));
  PrintCdf(d, "dispersion us");
  std::printf("\n  p50=%.1f us  p90=%.1f us  p99=%.1f us  max=%.1f us\n",
              d.Quantile(0.50), d.Quantile(0.90), d.Quantile(0.99), d.Max());
  std::printf("  fraction <= 10 us: %.1f%%   (paper: 90%%)\n",
              100.0 * d.CdfAt(10.0));
  std::printf("  fraction <= 20 us: %.1f%%   (paper: 99%%)\n",
              100.0 * d.CdfAt(20.0));
  std::printf("  resynchronizations performed: %llu\n",
              static_cast<unsigned long long>(run.merge.stats.resyncs));
  return 0;
}
