// Shared scaffolding for the figure/table reproduction harnesses.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation on a simulated deployment.  Absolute counts are smaller (the
// paper's trace is 24 hours of a production building; benches default to
// tens of simulated seconds so the suite runs in seconds) — the *shape* of
// each result is the reproduction target, and EXPERIMENTS.md records the
// paper-vs-measured comparison.  Pass `--seconds N` / `--clients N` /
// `--seed N` to scale any bench up.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "jigsaw/analysis/bus.h"
#include "jigsaw/pipeline.h"
#include "sim/scenario.h"

namespace jig::bench {

struct BenchArgs {
  Micros seconds = Seconds(30);
  int clients = 48;
  std::uint64_t seed = 2006;  // SIGCOMM 2006

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const auto next_val = [&]() -> long {
        return i + 1 < argc ? std::atol(argv[++i]) : 0;
      };
      if (std::strcmp(argv[i], "--seconds") == 0) {
        args.seconds = Seconds(next_val());
      } else if (std::strcmp(argv[i], "--clients") == 0) {
        args.clients = static_cast<int>(next_val());
      } else if (std::strcmp(argv[i], "--seed") == 0) {
        args.seed = static_cast<std::uint64_t>(next_val());
      }
    }
    return args;
  }

  ScenarioConfig ToConfig() const {
    ScenarioConfig cfg;
    cfg.seed = seed;
    cfg.duration = seconds;
    cfg.clients = clients;
    return cfg;
  }
};

struct MergedRun {
  MergeResult merge;
  LinkReconstruction link;
  TransportReconstruction transport;
  std::size_t radio_count = 0;
};

// Runs the scenario and the full reconstruction pipeline.  The merge
// streams through the analysis bus: link + transport reconstruction ride
// the windowed incremental LinkReconstructor (O(exchange-timeout) jframe
// retention inside the consumer), while the collector keeps the one jframe
// copy the figure harnesses re-render — a single pass with a single copy
// of the stream in memory.
inline MergedRun RunAndReconstruct(Scenario& scenario) {
  scenario.Run();
  auto traces = scenario.TakeTraces();
  MergedRun run;
  run.radio_count = traces.size();

  AnalysisBus bus;
  auto& collector = bus.Emplace<CollectorConsumer>();
  auto& link = bus.Emplace<LinkConsumer>();
  ReconstructionObserver reconstruction(link);
  bus.SetTerminal(collector);  // jframes are moved into the buffer
  auto stream = MergeTracesStreaming(traces, {}, bus.Sink());
  bus.Finish();

  run.link = reconstruction.TakeLink();
  run.transport = reconstruction.TakeTransport();
  run.merge.jframes = collector.Take();
  run.merge.bootstrap = std::move(stream.bootstrap);
  run.merge.stats = stream.stats;
  return run;
}

inline void PrintHeader(const char* figure, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure);
  std::printf("  paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

inline void PrintCdf(const Distribution& d, const char* x_label,
                     int points = 20) {
  std::printf("  %-14s  CDF\n", x_label);
  for (const auto& [x, q] : d.CdfSeries(points)) {
    std::printf("  %12.4f  %5.1f%%\n", x, q * 100.0);
  }
}

}  // namespace jig::bench
