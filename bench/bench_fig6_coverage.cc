// Figure 6 (+ the Section 6 laptop-oracle experiment): monitoring coverage.
//
// Paper: the platform captured 95% of an instrumented laptop's link-level
// events; of 10 M unicast packets in the wired trace, 97% also appear in
// the wireless trace.  Per station: 46% of clients / 40% of APs fully
// covered; 78% of clients / 94% of APs covered >= 95%.
#include "harness.h"
#include "jigsaw/analysis/coverage.h"

int main(int argc, char** argv) {
  using namespace jig;
  using namespace jig::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("FIGURE 6 — Coverage of frames transmitted by clients and APs",
              "97% overall; >=95% coverage for 78% of clients, 94% of APs");

  Scenario scenario(args.ToConfig());
  MergedRun run = RunAndReconstruct(scenario);

  // Part 1 — laptop oracle: each station's own link-level events vs. what
  // the platform decoded (ground truth in simulation).
  const auto oracle = ComputeTruthCoverage(scenario.truth(), std::nullopt);
  std::printf("Laptop-oracle experiment (all client transmissions):\n");
  std::printf("  events generated: %llu, captured by platform: %llu"
              " -> %.1f%%   (paper: 95%%)\n\n",
              static_cast<unsigned long long>(oracle.events),
              static_cast<unsigned long long>(oracle.heard_ok),
              100.0 * oracle.Rate());

  // Part 2 — wired-trace comparison.
  const auto report =
      ComputeWiredCoverage(scenario.wired_records(), run.merge.jframes);
  std::printf("Wired-trace comparison (%llu unicast TCP packets):\n",
              static_cast<unsigned long long>(report.wired_packets));
  std::printf("  overall coverage: %.1f%%   (paper: 97%%)\n",
              100.0 * report.Overall());
  std::printf("  AP-transmitted frames:     %.1f%%\n",
              100.0 * report.GroupCoverage(true));
  std::printf("  client-transmitted frames: %.1f%%\n\n",
              100.0 * report.GroupCoverage(false));

  std::printf("Per-station coverage distribution:\n");
  std::printf("  %-28s %8s %8s\n", "", "clients", "APs");
  for (double th : {1.0, 0.95, 0.90, 0.75, 0.50}) {
    std::printf("  stations with coverage >=%3.0f%%: %6.1f%% %8.1f%%\n",
                th * 100, 100.0 * report.FractionAtLeast(th, false),
                100.0 * report.FractionAtLeast(th, true));
  }
  std::printf("  (paper: 100%% coverage for 46%% of clients, 40%% of APs;\n"
              "   >=95%% for 78%% of clients, 94%% of APs)\n");
  return 0;
}
