// Figure 2: Jigsaw's visualization of a synchronized trace.
//
// Paper: time on the x-axis in us, radios on the y-axis; a client's DATA
// frame heard by six radios (one too far away — corrupted, no ACK seen
// there), then a different client heard by a different radio subset.  The
// point of the figure: after synchronization, instances of one physical
// transmission line up across radios to within microseconds.
#include <cstdio>

#include "harness.h"
#include "jigsaw/analysis/visualize.h"

int main(int argc, char** argv) {
  using namespace jig;
  using namespace jig::bench;
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.seconds == Seconds(30)) args.seconds = Seconds(5);
  PrintHeader("FIGURE 2 — visualization of the synchronized trace",
              "instances of each transmission aligned across radios");

  ScenarioConfig cfg = args.ToConfig();
  cfg.workload.web_per_min = 6.0;
  Scenario scenario(cfg);
  scenario.Run();
  auto traces = scenario.TakeTraces();
  const MergeResult merged = MergeTraces(traces);

  // Find a lively 5 ms window (a DATA frame with several instances).
  TimelineOptions options;
  for (const JFrame& jf : merged.jframes) {
    if (jf.frame.type == FrameType::kData && jf.InstanceCount() >= 4 &&
        jf.frame.addr2.IsClientTag()) {
      options.start = jf.timestamp - 200;
      break;
    }
  }
  options.span = 5'000;
  std::printf("%s\n", RenderTimeline(merged.jframes, options).c_str());

  // And the deployment itself (paper Figure 1).
  std::printf("\nFIGURE 1 — deployment floorplan (floor 1 of %d):\n\n",
              cfg.building.floors);
  std::printf("%s", RenderFloorplan(cfg.building, scenario.ap_info(),
                                    scenario.pod_info(),
                                    scenario.client_info(), 0)
                        .c_str());
  return 0;
}
