// Figure 11: TCP loss rate, decomposed into wireless vs. wired losses.
//
// Paper: over flows that complete a handshake, the wireless component of
// TCP loss dominates the wired component — the demonstration of cross-layer
// analysis (frame exchanges classify each TCP loss event).
#include "harness.h"
#include "jigsaw/analysis/tcp_loss.h"

int main(int argc, char** argv) {
  using namespace jig;
  using namespace jig::bench;
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.seconds == Seconds(30)) args.seconds = Seconds(90);
  PrintHeader("FIGURE 11 — TCP loss rate: wireless vs. wired components",
              "wireless losses dominate wired losses");

  ScenarioConfig cfg = args.ToConfig();
  cfg.workload.web_per_min = 3.0;
  cfg.workload.scp_per_min = 0.4;  // long flows accumulate loss statistics
  cfg.wired.loss_probability = 0.001;  // campus wired network: nearly clean
  Scenario scenario(cfg);
  MergedRun run = RunAndReconstruct(scenario);

  TcpLossConfig tcfg;
  tcfg.min_segments = 10;
  const auto report = ComputeTcpLoss(run.transport, tcfg);

  std::printf("flows with completed handshake, >=%u data segments: %llu\n",
              tcfg.min_segments,
              static_cast<unsigned long long>(report.flows_considered));
  std::printf("covering-ACK delivery resolutions: %llu, inferred unobserved "
              "segments: %llu\n\n",
              static_cast<unsigned long long>(
                  run.transport.stats.covering_ack_resolutions),
              static_cast<unsigned long long>(
                  run.transport.stats.inferred_missing_segments));

  std::printf("aggregate TCP loss rate: %.4f\n", report.aggregate_loss_rate);
  std::printf("  wireless component:    %.4f\n",
              report.aggregate_wireless_rate);
  std::printf("  wired component:       %.4f\n", report.aggregate_wired_rate);
  std::printf("  wireless share of losses: %.1f%%  (paper: dominant)\n\n",
              report.aggregate_loss_rate > 0
                  ? 100.0 * report.aggregate_wireless_rate /
                        report.aggregate_loss_rate
                  : 0.0);

  std::printf("Per-flow loss-rate CDFs:\n");
  std::printf("  total:\n");
  PrintCdf(report.total_loss_rate, "loss rate", 10);
  std::printf("  wireless component:\n");
  PrintCdf(report.wireless_loss_rate, "loss rate", 10);
  std::printf("  wired component:\n");
  PrintCdf(report.wired_loss_rate, "loss rate", 10);
  return 0;
}
