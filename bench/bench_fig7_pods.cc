// Figure 7: coverage sensitivity to the number of sensor pods.
//
// Paper (peak hours): AP coverage stays ~94% from 39 down to 20 pods
// (pods and APs share corridor mounting); client coverage collapses
// 92% -> 71% -> 68%; at 10 pods the synchronization bootstrap partitions
// and complete unification becomes impossible.
#include "harness.h"
#include "jigsaw/analysis/coverage.h"

int main(int argc, char** argv) {
  using namespace jig;
  using namespace jig::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("FIGURE 7 — Coverage vs. number of sensor pods",
              "APs ~94% throughout; clients 92% -> 71% -> 68%; 10 pods: "
              "bootstrap partitions");

  std::printf("  %6s %8s %12s %12s %12s\n", "pods", "radios", "AP cov",
              "client cov", "synced radios");
  for (int pods : {39, 30, 20, 10}) {
    ScenarioConfig cfg = args.ToConfig();
    cfg.pods_enabled = pods;
    Scenario scenario(cfg);
    MergedRun run = RunAndReconstruct(scenario);
    const auto report =
        ComputeWiredCoverage(scenario.wired_records(), run.merge.jframes);
    std::printf("  %6d %8zu %11.1f%% %11.1f%% %9zu/%zu%s\n", pods,
                run.radio_count, 100.0 * report.GroupCoverage(true),
                100.0 * report.GroupCoverage(false),
                run.merge.bootstrap.SyncedCount(),
                run.merge.bootstrap.synced.size(),
                run.merge.bootstrap.AllSynced() ? "" : "  (PARTITIONED)");
  }
  return 0;
}
