// Merge-pipeline performance (google-benchmark).
//
// The paper's efficiency requirement (Section 4): trace merging must run
// faster than real time in a single pass, and scale with the number of
// radios — the priority-queue design makes jframe construction linear in a
// frame's transmission range, not in the radio population.  These
// benchmarks measure events/second through bootstrap + unification, the
// scaling across deployment sizes, and the channel-sharded parallel
// merge's speedup across thread counts (1/2/4/auto).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <thread>

#include "jigsaw/distributed.h"
#include "jigsaw/pipeline.h"
#include "sim/scenario.h"

namespace {

using namespace jig;

// One shared scenario per deployment size; regenerating traces per
// iteration would swamp the merge being measured.
struct Workload {
  explicit Workload(int pods, Micros duration) {
    ScenarioConfig cfg;
    cfg.seed = 99;
    cfg.duration = duration;
    cfg.clients = 32;
    cfg.pods_enabled = pods;
    scenario = std::make_unique<Scenario>(cfg);
    scenario->Run();
    traces = std::make_unique<TraceSet>(scenario->TakeTraces());
    sim_duration = duration;
  }
  std::unique_ptr<Scenario> scenario;
  std::unique_ptr<TraceSet> traces;
  Micros sim_duration = 0;
};

Workload& WorkloadForPods(int pods) {
  static std::map<int, std::unique_ptr<Workload>> cache;
  auto& slot = cache[pods];
  if (!slot) slot = std::make_unique<Workload>(pods, Seconds(10));
  return *slot;
}

void BM_MergePipeline(benchmark::State& state) {
  Workload& w = WorkloadForPods(static_cast<int>(state.range(0)));
  std::uint64_t events = 0;
  for (auto _ : state) {
    const MergeResult result = MergeTraces(*w.traces);
    events = result.stats.events_in;
    benchmark::DoNotOptimize(result.jframes.data());
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events * state.iterations()),
      benchmark::Counter::kIsRate);
  // Faster-than-real-time factor: simulated seconds merged per wall second.
  state.counters["x_realtime"] = benchmark::Counter(
      ToSeconds(w.sim_duration) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MergePipeline)->Arg(10)->Arg(20)->Arg(30)->Arg(39)
    ->Unit(benchmark::kMillisecond);

// Thread-count sweep over the sharded parallel merge on the full
// multi-pod workload.  Arg 0 = auto (one worker per channel shard); arg 1
// is the exact legacy single-threaded path.  The streaming sink counts
// jframes so the measurement excludes result materialization.
void BM_MergeParallel(benchmark::State& state) {
  Workload& w = WorkloadForPods(39);
  MergeConfig cfg;
  cfg.threads = static_cast<unsigned>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    std::uint64_t jframes = 0;
    const MergeStreamStats stats = MergeTracesStreaming(
        *w.traces, cfg, [&jframes](JFrame&&) { ++jframes; });
    events = stats.stats.events_in;
    benchmark::DoNotOptimize(jframes);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events * state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["x_realtime"] = benchmark::Counter(
      ToSeconds(w.sim_duration) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MergeParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(0)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();

// Laggard-consumer scenario for the spill tier: every radio's trace is
// fully written except one, which stops at 40% unfinalized — so its
// channel shard starves and gates the k-way merge, exactly like a paused
// dashboard or a lagging analysis.  Without spill (arg 0) the other
// shards throttle at kMergeQueueWatermark and the capture-side unifiers
// stall; with spill (arg 1) they keep consuming, staging backlog on disk.
// The measured operation is the gated Poll(); `events_while_gated` is the
// capture-side progress it achieved, `retained` / `spilled` show where
// the backlog went.  Thirty simulated seconds so per-shard backlog
// genuinely exceeds the watermark.
void BM_MergeSpill(benchmark::State& state) {
  namespace fs = std::filesystem;
  const bool spill = state.range(0) != 0;
  const fs::path dir =
      fs::temp_directory_path() / "bench_merge_spill_traces";
  // The writer must outlive every iteration: destroying it would finalize
  // the laggard's trace and the scenario would stop gating.
  static std::unique_ptr<TraceSetWriter> writer;
  static std::size_t n_radios = 0;
  if (writer == nullptr) {
    static Workload w(/*pods=*/39, Seconds(30));
    fs::remove_all(dir);
    writer = std::make_unique<TraceSetWriter>(dir);
    for (std::size_t i = 0; i < w.traces->size(); ++i) {
      auto& mem = dynamic_cast<MemoryTrace&>(w.traces->at(i));
      writer->AddRadio(mem.header());
      const auto& recs = mem.records();
      // Radio 0 is the laggard: 40% of its capture, never finalized.
      const std::size_t limit = i == 0 ? recs.size() * 2 / 5 : recs.size();
      for (std::size_t r = 0; r < limit; ++r) writer->Append(i, recs[r]);
      writer->Sync();
      if (i != 0) writer->Finalize(i);
    }
    n_radios = w.traces->size();
  }

  const fs::path spill_dir =
      fs::temp_directory_path() / "bench_merge_spill_segments";
  std::uint64_t events = 0;
  std::uint64_t spilled = 0;
  std::uint64_t retained = 0;
  for (auto _ : state) {
    state.PauseTiming();
    TraceSet traces = TraceSet::FollowDirectory(dir, n_radios);
    MergeConfig cfg;
    cfg.threads = 0;
    if (spill) {
      fs::remove_all(spill_dir);
      cfg.spill_dir = spill_dir;
      cfg.spill_threshold = 256;
    }
    std::uint64_t jframes = 0;
    MergeSession session(traces, cfg, [&jframes](JFrame&&) { ++jframes; });
    state.ResumeTiming();
    const auto status = session.Poll();  // runs until gated by the laggard
    state.PauseTiming();
    if (status == MergeSession::Status::kDone) {
      state.SkipWithError("laggard scenario unexpectedly completed");
      break;
    }
    events = session.stats().events_in;
    spilled = session.spilled_jframes();
    retained = session.retained_jframes();
    benchmark::DoNotOptimize(jframes);
    state.ResumeTiming();
  }
  state.counters["events_while_gated"] = static_cast<double>(events);
  state.counters["spilled"] = static_cast<double>(spilled);
  state.counters["retained"] = static_cast<double>(retained);
}
BENCHMARK(BM_MergeSpill)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

// End-to-end two-level distributed merge over loopback: two wings each
// relay half the radios' record streams (socket-framed, paced by their
// local merges) to an in-process root, which emits the global jframe
// stream.  Measures root-side events/s with all the network framing,
// relay pacing, and cross-wing boundary reconciliation included — the
// distributed counterpart of BM_MergeParallel.  Arg = root merge threads
// (0 = auto); the wings always merge with 2.
void BM_MergeDistributed(benchmark::State& state) {
  namespace fs = std::filesystem;
  // Wing trace directories, written once: the .jigt files are the
  // workload, re-read per iteration like a real wing restart.
  static fs::path w1, w2;
  static std::size_t n_radios = 0;
  if (n_radios == 0) {
    Workload& w = WorkloadForPods(20);
    const fs::path base =
        fs::temp_directory_path() / "bench_merge_distributed_traces";
    fs::remove_all(base);
    const auto paths = w.traces->WriteDirectory(base / "all");
    w1 = base / "w1";
    w2 = base / "w2";
    fs::create_directories(w1);
    fs::create_directories(w2);
    for (std::size_t i = 0; i < paths.size(); ++i) {
      fs::copy_file(paths[i],
                    (i < paths.size() / 2 ? w1 : w2) / paths[i].filename());
    }
    n_radios = paths.size();
  }

  std::uint64_t events = 0;
  for (auto _ : state) {
    RootConfig rc;
    rc.n_streams = n_radios;
    rc.merge.threads = static_cast<unsigned>(state.range(0));
    RootSession root(rc);
    const std::uint16_t port = root.port();
    const auto run_wing = [port](const fs::path& dir, std::uint32_t id) {
      TraceSet traces = TraceSet::OpenDirectory(dir);
      WingConfig wc;
      wc.wing_id = id;
      wc.root_port = port;
      wc.merge.threads = 2;
      WingSession wing(traces, wc);
      wing.Run();
    };
    std::thread t1(run_wing, w1, 1u);
    std::thread t2(run_wing, w2, 2u);
    std::uint64_t jframes = 0;
    const MergeStreamStats stats =
        root.Run([&jframes](JFrame&&) { ++jframes; });
    t1.join();
    t2.join();
    events = stats.stats.events_in;
    benchmark::DoNotOptimize(jframes);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MergeDistributed)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Bootstrap-only cost on the full deployment (arg = pods), with an
// events/s counter so the regression gate can track it alongside the merge
// families (BENCH_merge.json).  The event count is taken with one untimed
// scan per trace — bootstrap itself reads every record once per iteration.
void BM_Bootstrap(benchmark::State& state) {
  Workload& w = WorkloadForPods(static_cast<int>(state.range(0)));
  std::uint64_t events = 0;
  for (std::size_t i = 0; i < w.traces->size(); ++i) {
    RecordStream& s = w.traces->at(i);
    s.Rewind();
    while (s.NextRef() != nullptr) ++events;
    s.Rewind();
  }
  for (auto _ : state) {
    const auto result = BootstrapSynchronize(*w.traces);
    benchmark::DoNotOptimize(result.offset_us.data());
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Bootstrap)->Arg(39)->Unit(benchmark::kMillisecond);

void BM_SearchWindowCost(benchmark::State& state) {
  // Unification cost vs. search window size (wider windows sweep more
  // queue entries per group).
  Workload& w = WorkloadForPods(39);
  MergeConfig cfg;
  cfg.unifier.search_window = state.range(0);
  // Keep the horizon ahead of the widest window under test (the config is
  // validated at entry).
  cfg.reorder_horizon = std::max(cfg.reorder_horizon,
                                 cfg.unifier.search_window * 2);
  for (auto _ : state) {
    const MergeResult result = MergeTraces(*w.traces, cfg);
    benchmark::DoNotOptimize(result.stats.jframes);
  }
}
BENCHMARK(BM_SearchWindowCost)
    ->Arg(1'000)->Arg(10'000)->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
