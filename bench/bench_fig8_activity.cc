// Figure 8: time series of network activity (and the Section 7.1 broadcast
// air-time observation).
//
// Paper: (a) active clients/APs per minute show a diurnal pattern — quiet
// overnight, ramp from late morning, peak 10am-5pm; (b) traffic by category
// is bursty Data + tracking Management, constant Beacon floor, steady ARP
// (a Vernier tracker ARPs every registered client); broadcast traffic
// regularly consumes ~10% of any monitor's channel.
#include "harness.h"
#include "jigsaw/analysis/activity.h"

int main(int argc, char** argv) {
  using namespace jig;
  using namespace jig::bench;
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.seconds == Seconds(30)) args.seconds = Seconds(96);  // 24 "hours"
  PrintHeader("FIGURE 8 — Network activity over the day (diurnal workload)",
              "diurnal clients/APs; Data bursty, Beacon flat, ARP steady; "
              "broadcast ~10% air time");

  // The scaled day: duration maps onto 24 diurnal hours, one bin per "hour".
  ScenarioConfig cfg = args.ToConfig();
  cfg.workload.diurnal = true;
  Scenario scenario(cfg);
  MergedRun run = RunAndReconstruct(scenario);
  const Micros bin = cfg.duration / 24;
  const auto series = ComputeActivity(run.merge.jframes, bin);

  std::printf("  %4s %8s %6s | %9s %9s %9s %9s | %9s\n", "hour", "clients",
              "APs", "data B", "mgmt B", "beacon B", "ARP B", "bcast air");
  for (std::size_t i = 0; i < series.Bins() && i < 24; ++i) {
    std::printf("  %4zu %8d %6d | %9.0f %9.0f %9.0f %9.0f | %8.1f%%\n", i,
                series.active_clients[i], series.active_aps[i],
                series.data_bytes[i], series.mgmt_bytes[i],
                series.beacon_bytes[i], series.arp_bytes[i],
                100.0 * series.broadcast_airtime_fraction[i]);
  }

  // Diurnal shape check: peak activity should land in "hours" 10-17.
  int peak_bin = 0, peak = -1;
  double night = 0, day = 0;
  for (std::size_t i = 0; i < series.Bins() && i < 24; ++i) {
    if (series.active_clients[i] > peak) {
      peak = series.active_clients[i];
      peak_bin = static_cast<int>(i);
    }
    if (i < 6) night += series.active_clients[i];
    if (i >= 10 && i < 17) day += series.active_clients[i];
  }
  std::printf("\n  peak activity at hour %d (%d clients);"
              " night/day activity ratio: %.2f (paper: strongly diurnal)\n",
              peak_bin, peak, day > 0 ? night / day : 0.0);
  return 0;
}
