// Figure 10: overprotective APs and the 802.11g clients they slow down.
//
// Paper: the deployed APs keep 802.11g protection on for a full hour after
// last sensing an 802.11b client; judged against a practical one-minute
// timeout, many APs are "overprotective", and during busy periods 25-50%
// of active 802.11g clients sit behind one — paying the CTS-to-self tax
// (footnote 7: up to 2x potential throughput) for no live 802.11b peer.
#include "harness.h"
#include "jigsaw/analysis/protection.h"

int main(int argc, char** argv) {
  using namespace jig;
  using namespace jig::bench;
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.seconds == Seconds(30)) args.seconds = Seconds(120);
  PrintHeader("FIGURE 10 — Overprotective APs and active 802.11g clients",
              "25-50% of g clients behind overprotective APs in busy hours");

  ScenarioConfig cfg = args.ToConfig();
  // The pathology needs b clients that appear, trigger protection, then
  // leave while the AP's (scaled) hour-long timeout keeps protection on.
  cfg.b_client_fraction = 0.25;
  cfg.workload.diurnal = true;
  cfg.ap.protection_timeout = args.seconds;  // "an hour": never times out
  Scenario scenario(cfg);
  MergedRun run = RunAndReconstruct(scenario);

  ProtectionConfig pcfg;
  pcfg.bin_width = args.seconds / 24;                  // one "hour" bins
  pcfg.practical_timeout = std::max<Micros>(pcfg.bin_width / 4, Seconds(1));
  pcfg.protection_active_window = pcfg.bin_width;
  const auto series = ComputeProtection(run.merge.jframes, pcfg);

  std::printf("  %4s %18s %16s %22s\n", "hour", "overprotective APs",
              "active g clients", "g on overprotective");
  int affected_sum = 0, g_sum = 0;
  for (std::size_t i = 0; i < series.Bins() && i < 24; ++i) {
    std::printf("  %4zu %18d %16d %22d\n", i, series.overprotective_aps[i],
                series.active_g_clients[i],
                series.g_clients_on_overprotective[i]);
    affected_sum += series.g_clients_on_overprotective[i];
    g_sum += series.active_g_clients[i];
  }
  std::printf("\n  aggregate: %.1f%% of active-gclient-hours behind an "
              "overprotective AP (paper: 25-50%% during busy periods)\n",
              g_sum ? 100.0 * affected_sum / g_sum : 0.0);
  std::printf("  potential throughput factor without CTS-to-self: 1.98x "
              "(paper footnote 7)\n");
  return 0;
}
