#!/usr/bin/env python3
"""Gates merge-throughput regressions against a committed baseline.

Usage:
  check_bench_regression.py --baseline BENCH_merge.json \
      --current current.json [--threshold 0.15]
  check_bench_regression.py --baseline BENCH_merge.json \
      --current current.json --update

`current.json` is raw Google Benchmark JSON output, e.g.:

  ./build/bench_merge_throughput --benchmark_filter=BM_MergeParallel \
      --benchmark_format=json > current.json

The committed baseline (BENCH_merge.json at the repo root) is the
normalized form: one `events/s` number per BM_MergeParallel thread
variant.  The gate fails (exit 1) when any variant's current events/s
drops more than `--threshold` (default 15%) below its baseline, or when
a baseline variant is missing from the current run.  Variants only in
the current run are reported but do not fail the gate, so adding a
sweep point does not require touching the tool.

Faster-than-baseline runs pass but are reported too: a suspiciously
large speedup is worth a look (and a baseline refresh with --update,
which rewrites the baseline from the current run instead of checking).

CI-variance note: the 15% default is deliberately loose — shared
runners jitter by a few percent run-to-run; the gate exists to catch
algorithmic regressions (2x slowdowns), not micro-noise.

Exit status: 0 gate passes (or baseline updated), 1 regression or
missing variant, 2 usage/input error.
"""

import argparse
import json
import sys
from pathlib import Path

METRIC = "events/s"
FAMILY = "BM_MergeParallel"


def variant_of(name: str) -> str:
    """BM_MergeParallel/4/process_time/real_time -> BM_MergeParallel/4."""
    parts = name.split("/")
    return "/".join(parts[:2])


def normalize(raw: dict) -> dict:
    """Raw Google Benchmark JSON -> {variant: events/s} for the family."""
    variants = {}
    for b in raw.get("benchmarks", []):
        name = b.get("name", "")
        if not name.startswith(FAMILY + "/"):
            continue
        if b.get("run_type") == "aggregate":
            continue
        if METRIC not in b:
            continue
        variants[variant_of(name)] = round(float(b[METRIC]), 1)
    return variants


def load_json(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError) as e:
        print(f"cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main(argv):
    ap = argparse.ArgumentParser(
        description=__doc__.strip().splitlines()[0])
    ap.add_argument("--baseline", required=True, type=Path,
                    help="normalized baseline JSON (committed)")
    ap.add_argument("--current", required=True, type=Path,
                    help="raw Google Benchmark JSON from the current run")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max fractional events/s drop (default 0.15)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from the current run")
    args = ap.parse_args(argv[1:])

    current = normalize(load_json(args.current))
    if not current:
        print(f"no {FAMILY} {METRIC} samples in {args.current}",
              file=sys.stderr)
        return 2

    if args.update:
        baseline = {
            "benchmark": "bench_merge_throughput",
            "family": FAMILY,
            "metric": METRIC,
            "threshold": args.threshold,
            "variants": dict(sorted(current.items())),
        }
        args.baseline.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"baseline updated: {args.baseline}")
        for name, value in sorted(current.items()):
            print(f"  {name:<24} {value:>14,.1f} {METRIC}")
        return 0

    baseline = load_json(args.baseline)
    base_variants = baseline.get("variants", {})
    if not base_variants:
        print(f"baseline {args.baseline} has no variants", file=sys.stderr)
        return 2

    failed = False
    print(f"{'variant':<24} {'baseline':>14} {'current':>14} {'delta':>8}")
    for name, base in sorted(base_variants.items()):
        cur = current.get(name)
        if cur is None:
            print(f"{name:<24} {base:>14,.1f} {'MISSING':>14} {'':>8}")
            failed = True
            continue
        delta = (cur - base) / base
        flag = ""
        if delta < -args.threshold:
            flag = "  << REGRESSION"
            failed = True
        print(f"{name:<24} {base:>14,.1f} {cur:>14,.1f} "
              f"{delta:>+7.1%}{flag}")
    for name in sorted(set(current) - set(base_variants)):
        print(f"{name:<24} {'(new)':>14} {current[name]:>14,.1f}")

    if failed:
        print(f"FAIL: events/s regressed more than "
              f"{args.threshold:.0%} vs {args.baseline}")
        return 1
    print(f"OK: all {len(base_variants)} variants within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
