#!/usr/bin/env python3
"""Gates merge-throughput regressions against a committed baseline.

Usage:
  check_bench_regression.py --baseline BENCH_merge.json \
      --current current.json [--threshold 0.15]
  check_bench_regression.py --baseline BENCH_merge.json \
      --current current.json --update

`current.json` is raw Google Benchmark JSON output, e.g.:

  ./build/bench_merge_throughput \
      '--benchmark_filter=BM_MergeParallel|BM_MergeSpill|BM_Bootstrap|BM_MergeDistributed' \
      --benchmark_format=json > current.json

The committed baseline (BENCH_merge.json at the repo root) is the
normalized form: a `families` map of benchmark family -> its gate metric
and one number per variant.  Each family names its own metric because
the families measure different things (BM_MergeParallel and
BM_Bootstrap report an events/s rate; BM_MergeSpill reports
events_while_gated, the capture-side progress of one gated Poll).  All
metrics are higher-is-better.

The gate fails (exit 1) when any baseline variant's current value drops
more than `--threshold` (default 15%) below its baseline, or when a
baseline variant is missing from the current run.  Variants only in the
current run are reported but do not fail the gate, so adding a sweep
point does not require touching the tool.

Faster-than-baseline runs pass but are reported too: a suspiciously
large speedup is worth a look (and a baseline refresh with --update,
which rewrites the baseline from the current run instead of checking).
--update keeps the family -> metric map of the existing baseline when
one is present, so a refresh cannot silently change what is gated;
without a readable baseline it seeds from the built-in defaults.

Legacy single-family baselines (a top-level `variants` map) are still
read, so the gate keeps working across the schema transition.

CI-variance note: the 15% default is deliberately loose — shared
runners jitter by a few percent run-to-run; the gate exists to catch
algorithmic regressions (2x slowdowns), not micro-noise.

Exit status: 0 gate passes (or baseline updated), 1 regression or
missing variant, 2 usage/input error.
"""

import argparse
import json
import sys
from pathlib import Path

# Family -> gate metric, used to seed a baseline when --update has no
# existing baseline to preserve.
DEFAULT_FAMILIES = {
    "BM_MergeParallel": "events/s",
    "BM_MergeSpill": "events_while_gated",
    "BM_Bootstrap": "events/s",
    "BM_MergeDistributed": "events/s",
}


def variant_of(name: str) -> str:
    """BM_MergeParallel/4/process_time/real_time -> BM_MergeParallel/4."""
    parts = name.split("/")
    return "/".join(parts[:2])


def normalize(raw: dict, families: dict) -> dict:
    """Raw Google Benchmark JSON -> {family: {variant: value}}."""
    out = {family: {} for family in families}
    for b in raw.get("benchmarks", []):
        name = b.get("name", "")
        family = name.split("/", 1)[0]
        metric = families.get(family)
        if metric is None or "/" not in name:
            continue
        if b.get("run_type") == "aggregate":
            continue
        if metric not in b:
            continue
        out[family][variant_of(name)] = round(float(b[metric]), 1)
    return out


def load_json(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError) as e:
        print(f"cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def baseline_families(baseline: dict) -> dict:
    """{family: {"metric": ..., "variants": {...}}} from either schema."""
    if "families" in baseline:
        return baseline["families"]
    if "variants" in baseline:  # legacy single-family schema
        return {
            baseline.get("family", "BM_MergeParallel"): {
                "metric": baseline.get("metric", "events/s"),
                "variants": baseline["variants"],
            }
        }
    return {}


def main(argv):
    ap = argparse.ArgumentParser(
        description=__doc__.strip().splitlines()[0])
    ap.add_argument("--baseline", required=True, type=Path,
                    help="normalized baseline JSON (committed)")
    ap.add_argument("--current", required=True, type=Path,
                    help="raw Google Benchmark JSON from the current run")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max fractional metric drop (default 0.15)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from the current run")
    args = ap.parse_args(argv[1:])

    if args.update:
        # Default families plus anything the existing baseline already
        # gates; the existing metric choice wins, so a refresh can add a
        # family but never silently change how one is measured.
        metric_map = dict(DEFAULT_FAMILIES)
        if args.baseline.exists():
            existing = baseline_families(load_json(args.baseline))
            metric_map.update(
                {f: spec["metric"] for f, spec in existing.items()})
        current = normalize(load_json(args.current), metric_map)
        families = {}
        for family in sorted(metric_map):
            variants = current.get(family, {})
            if not variants:
                print(f"no {family} {metric_map[family]} samples in "
                      f"{args.current}", file=sys.stderr)
                return 2
            families[family] = {
                "metric": metric_map[family],
                "variants": dict(sorted(variants.items())),
            }
        baseline = {
            "benchmark": "bench_merge_throughput",
            "threshold": args.threshold,
            "families": families,
        }
        args.baseline.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"baseline updated: {args.baseline}")
        for family, spec in families.items():
            for name, value in spec["variants"].items():
                print(f"  {name:<24} {value:>14,.1f} {spec['metric']}")
        return 0

    base = baseline_families(load_json(args.baseline))
    if not base:
        print(f"baseline {args.baseline} has no families/variants",
              file=sys.stderr)
        return 2
    metric_map = {f: spec["metric"] for f, spec in base.items()}
    current = normalize(load_json(args.current), metric_map)
    if not any(current.values()):
        print(f"no gated samples in {args.current}", file=sys.stderr)
        return 2

    failed = False
    checked = 0
    print(f"{'variant':<24} {'baseline':>14} {'current':>14} {'delta':>8}")
    for family in sorted(base):
        base_variants = base[family].get("variants", {})
        cur_variants = current.get(family, {})
        for name, value in sorted(base_variants.items()):
            checked += 1
            cur = cur_variants.get(name)
            if cur is None:
                print(f"{name:<24} {value:>14,.1f} {'MISSING':>14} {'':>8}")
                failed = True
                continue
            delta = (cur - value) / value
            flag = ""
            if delta < -args.threshold:
                flag = "  << REGRESSION"
                failed = True
            print(f"{name:<24} {value:>14,.1f} {cur:>14,.1f} "
                  f"{delta:>+7.1%}{flag}")
        for name in sorted(set(cur_variants) - set(base_variants)):
            print(f"{name:<24} {'(new)':>14} {cur_variants[name]:>14,.1f}")

    if failed:
        print(f"FAIL: a gated metric regressed more than "
              f"{args.threshold:.0%} vs {args.baseline}")
        return 1
    print(f"OK: all {checked} variants within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
