#!/usr/bin/env python3
"""Link-checks markdown docs: relative paths must exist, anchors must match.

Usage: check_docs_links.py FILE.md [FILE.md ...]

Checks every inline markdown link `[text](target)` in the given files:

* `http(s)://` / `mailto:` targets are skipped (no network in CI).
* A relative path target must exist on disk (resolved against the
  linking file's directory).
* A `#fragment` (own-file or `path#fragment`) must match a heading in
  the target file, using GitHub's anchor slug rules (lowercase, spaces
  to hyphens, punctuation stripped, duplicate slugs suffixed -1, -2...).

Exit status 0 when every link resolves, 1 otherwise (one line per
broken link). Fenced code blocks are ignored so shell snippets such as
`foo(bar)` arrays cannot register as links.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^()\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
FENCE_RE = re.compile(r"^\s*(```|~~~)")


def github_slug(heading: str) -> str:
    # Strip inline markdown that does not contribute to the slug.
    text = re.sub(r"[`*_]", "", heading.strip())
    # Strip link syntax, keeping the text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.lower()
    # Keep word characters, spaces and hyphens; drop the rest.
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def strip_fences(lines):
    in_fence = False
    for line in lines:
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield line


def anchors_of(path: Path, cache={}):
    if path not in cache:
        slugs = {}
        anchors = set()
        for line in strip_fences(path.read_text().splitlines()):
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = github_slug(m.group(1))
            n = slugs.get(slug, 0)
            slugs[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = anchors
    return cache[path]


def check_file(md: Path) -> list:
    errors = []
    text = "\n".join(strip_fences(md.read_text().splitlines()))
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        dest = md if not path_part else (md.parent / path_part).resolve()
        if not dest.exists():
            errors.append(f"{md}: broken link target: {target}")
            continue
        if fragment:
            if dest.suffix != ".md":
                errors.append(
                    f"{md}: anchor on non-markdown target: {target}")
            elif fragment not in anchors_of(dest):
                errors.append(f"{md}: broken anchor: {target}")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[2])
        return 2
    errors = []
    for name in argv[1:]:
        md = Path(name).resolve()
        if not md.exists():
            errors.append(f"no such file: {name}")
            continue
        errors.extend(check_file(md))
    for e in errors:
        print(e)
    if not errors:
        print(f"OK: {len(argv) - 1} files, all links resolve")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
