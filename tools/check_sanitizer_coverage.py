#!/usr/bin/env python3
"""CI guard: every ctest target must run under at least one sanitizer job.

The TSan and UBSan/ASan jobs in .github/workflows/ci.yml each carry a
hand-maintained `ctest -R "a|b|c"` target list.  Hand-maintained lists rot:
a new test lands, runs in the plain build, and silently never meets a
sanitizer.  This script reconstructs the ctest inventory from the same
sources CMakeLists.txt uses (the tests/*_test.cc glob plus the cc_ suite
split and the Python lint test) and fails if any entry matches neither
job's -R pattern.

Non-C++ ctest entries (the Python linter self-test) are exempt — there is
nothing for a C++ sanitizer to instrument.

Usage: check_sanitizer_coverage.py [--ci <path>] [--tests <dir>]
Exit status: 0 covered, 1 gaps, 2 usage/parse error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# ctest entries with no C++ under them: sanitizer coverage is meaningless.
NON_CPP_TESTS = {"lint_determinism_test"}

# Mirrors the cc_ suite split in CMakeLists.txt: cc_test the binary becomes
# four ctest entries, each a gtest filter over the same code.
CC_SPLIT = ("cc_reno_parity", "cc_cubic", "cc_bbr", "cc_integration")

# The sanitizer jobs' test steps, identified by their `name:` lines.
SANITIZER_STEPS = ("Test under TSan", "Test under UBSan + ASan")


def ctest_inventory(tests_dir: str) -> list[str]:
    """The ctest entries CMakeLists.txt will register for tests/."""
    names: list[str] = []
    for fname in sorted(os.listdir(tests_dir)):
        if not fname.endswith("_test.cc"):
            continue
        target = fname[: -len(".cc")]
        if target == "cc_test":
            names.extend(CC_SPLIT)
        else:
            names.append(target)
    names.append("lint_determinism_test")
    return names


def sanitizer_patterns(ci_path: str) -> list[str]:
    """The -R regex of each sanitizer test step in ci.yml."""
    with open(ci_path, encoding="utf-8") as fh:
        text = fh.read()
    patterns = []
    for step in SANITIZER_STEPS:
        at = text.find(f"name: {step}")
        if at < 0:
            raise ValueError(f"ci.yml: step not found: {step!r}")
        m = re.search(r'-R\s+"([^"]+)"', text[at:])
        if not m:
            raise ValueError(f"ci.yml: no -R pattern under step {step!r}")
        patterns.append(m.group(1))
    return patterns


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ci",
                        default=os.path.join(REPO_ROOT, ".github", "workflows",
                                             "ci.yml"))
    parser.add_argument("--tests", default=os.path.join(REPO_ROOT, "tests"))
    args = parser.parse_args()

    try:
        inventory = ctest_inventory(args.tests)
        patterns = sanitizer_patterns(args.ci)
    except (OSError, ValueError) as err:
        print(f"check_sanitizer_coverage: {err}", file=sys.stderr)
        return 2

    compiled = [re.compile(p) for p in patterns]
    uncovered = [
        name for name in inventory
        if name not in NON_CPP_TESTS
        and not any(rx.search(name) for rx in compiled)
    ]

    if uncovered:
        print("ctest entries running under NO sanitizer job "
              "(add them to a -R list in ci.yml):")
        for name in uncovered:
            print(f"  {name}")
        return 1
    print(f"check_sanitizer_coverage: {len(inventory)} ctest entries, "
          "all sanitizer-covered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
