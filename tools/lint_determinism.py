#!/usr/bin/env python3
"""Project-specific determinism linter for the emit/serialize layers.

The pipeline's headline guarantee is byte-identical output across thread
counts, spill modes, and live-vs-batch (docs/ARCHITECTURE.md, "Determinism
contract").  The end-to-end equality tests enforce it empirically; this
linter enforces the *source patterns* that historically break it:

  D001 unordered-iteration
      Range-for (or explicit .begin()) over a container declared as
      std::unordered_map/set/multimap/multiset in the same file.  Hash-table
      iteration order is implementation- and seed-dependent; on an emit or
      serialize path it silently varies output.  Iterating to *collect* keys
      that are sorted before use, or to fold into a commutative aggregate
      (count/sum/min/max), is legitimate — annotate those sites with the
      escape hatch below.

  D002 banned-source
      Calls that read ambient nondeterminism: rand()/srand(), time(),
      clock(), gettimeofday(), std::chrono::system_clock,
      std::random_device.  Monotonic steady_clock is allowed (it feeds
      write-only metrics, never output).  Files that legitimately stamp
      wall-clock (metrics export) are whitelisted in D002_WHITELIST.

  D003 float-text-format
      Floats crossing an output boundary as text: printf-family float
      conversions (%f/%e/%g/%a) or std::to_string on a float-typed
      expression.  docs/FORMATS.md mandates the bit-exact pattern —
      std::bit_cast<std::uint32_t>(f) — for floats on the wire; decimal
      formatting is locale- and rounding-mode-shaped.

Scope: src/jigsaw/, src/trace/, src/obs/ (the layers whose output is under
the byte-identity contract).  Simulator, PHY and CLI code is out of scope.

Escape hatch — on the offending line or the line directly above:

    // lint-determinism: allow(<non-empty reason>)

The reason is mandatory; an empty allow() is itself an error (D000).

Exit status: 0 clean, 1 findings, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# The layers under the byte-identity contract.
DEFAULT_SCOPE = ("src/jigsaw", "src/trace", "src/obs")

# Files allowed to read wall-clock/entropy (D002 only): the metrics export
# layer stamps snapshots, and its values are explicitly excluded from the
# byte-identity contract (pinned by MetricsDeterminism in pipeline_test.cc).
D002_WHITELIST = {
    "src/obs/export.cc",
    "src/obs/metrics.cc",
}

ALLOW_RE = re.compile(r"//\s*lint-determinism:\s*allow\((?P<reason>[^)]*)\)")

UNORDERED_DECL_RE = re.compile(
    r"(?<![\w<])std::unordered_(?:map|set|multimap|multiset)\s*<")
DECL_NAME_AFTER_RE = re.compile(r"\s*([A-Za-z_]\w*)\s*(?:;|=|\{|\()")

RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*?:\s*(?P<range>[^)]+)\)")
TRAILING_IDENT_RE = re.compile(r"([A-Za-z_]\w*)\s*$")

BANNED_CALL_RE = re.compile(
    r"(?<![\w:])(?:rand|srand|time|clock|gettimeofday)\s*\(")
BANNED_NAME_RE = re.compile(
    r"std::chrono::system_clock|std::random_device")

PRINTF_FLOAT_RE = re.compile(r'"[^"]*%[-+ #0-9.*]*(?:l|L)?[aefgAEFG][^"]*"')
TO_STRING_RE = re.compile(r"std::to_string\s*\((?P<arg>[^()]*(?:\([^()]*\))?[^()]*)\)")
FLOAT_DECL_RE = re.compile(
    r"^\s*(?:static\s+|const\s+|constexpr\s+)*(?:float|double)\s+"
    r"([A-Za-z_]\w*)")
FLOAT_MEMBER_RE = re.compile(
    r"(?:float|double)\s+([A-Za-z_]\w*)\s*(?:;|=|\{)")


@dataclasses.dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _strip_comments_and_strings(line: str) -> str:
    """Blank out // comments and "..." literal bodies so declaration and call
    regexes don't match prose.  (Keeps the quote marks so PRINTF_FLOAT_RE,
    which runs on the raw line, is unaffected.)"""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    return re.sub(r"//.*$", "", line)


def _allowed(lines: list[str], idx: int) -> str | None:
    """Return the allow() reason covering line idx (same line or line above),
    or None.  An empty reason returns the sentinel ''."""
    for probe in (idx, idx - 1):
        if probe < 0:
            continue
        m = ALLOW_RE.search(lines[probe])
        if m:
            return m.group("reason").strip()
    return None


def _declared_unordered(lines: list[str]) -> set[str]:
    """Names declared with an unordered container as the OUTERMOST type.

    Walks the balanced <...> template argument list so nested commas/angles
    (std::unordered_map<Key, std::vector<V>, Hash>) don't truncate the scan,
    and so std::vector<std::unordered_set<T>> members (ordered outer
    container) are NOT tracked — the lookbehind rejects matches nested
    inside another template's argument list on the same line."""
    names: set[str] = set()
    for raw in lines:
        code = _strip_comments_and_strings(raw)
        for m in UNORDERED_DECL_RE.finditer(code):
            depth = 1
            i = m.end()
            while i < len(code) and depth:
                if code[i] == "<":
                    depth += 1
                elif code[i] == ">":
                    depth -= 1
                i += 1
            if depth:
                continue  # declaration spans lines; outermost-type heuristic
            name = DECL_NAME_AFTER_RE.match(code, i)
            if name:
                names.add(name.group(1))
    return names


def _declared_floats(lines: list[str]) -> set[str]:
    names: set[str] = set()
    for raw in lines:
        code = _strip_comments_and_strings(raw)
        m = FLOAT_DECL_RE.match(code) or FLOAT_MEMBER_RE.search(code)
        if m:
            names.add(m.group(1))
    return names


def lint_text(rel_path: str, text: str) -> list[Finding]:
    """Lint one file's contents; rel_path is repo-relative (used for
    whitelists and reporting)."""
    lines = text.splitlines()
    findings: list[Finding] = []
    unordered = _declared_unordered(lines)
    floats = _declared_floats(lines)

    def emit(idx: int, rule: str, message: str) -> None:
        reason = _allowed(lines, idx)
        if reason is None:
            findings.append(Finding(rel_path, idx + 1, rule, message))
        elif not reason:
            findings.append(Finding(
                rel_path, idx + 1, "D000",
                "empty lint-determinism allow(): a reason is mandatory"))

    for idx, raw in enumerate(lines):
        code = _strip_comments_and_strings(raw)

        # --- D001: iteration over unordered containers -------------------
        for m in RANGE_FOR_RE.finditer(code):
            expr = m.group("range").strip()
            ident = TRAILING_IDENT_RE.search(expr)
            if ident and ident.group(1) in unordered:
                emit(idx, "D001",
                     f"range-for over unordered container '{ident.group(1)}': "
                     "hash order is not deterministic on emit paths "
                     "(sort collected keys, or allow() with rationale)")
        for name in unordered:
            # (?<![\w.>]) so member access through another object
            # (report.pairs.begin()) doesn't alias a tracked local name.
            if re.search(rf"(?<![\w.>]){re.escape(name)}\s*\.\s*begin\s*\(",
                         code):
                emit(idx, "D001",
                     f"explicit iteration over unordered container '{name}'")

        # --- D002: ambient nondeterminism sources ------------------------
        if rel_path not in D002_WHITELIST:
            m = BANNED_CALL_RE.search(code) or BANNED_NAME_RE.search(code)
            if m:
                emit(idx, "D002",
                     f"banned nondeterminism source '{m.group(0).rstrip('(').strip()}' "
                     "(wall-clock/entropy must not shape pipeline output)")

        # --- D003: floats formatted as text ------------------------------
        if PRINTF_FLOAT_RE.search(raw):
            emit(idx, "D003",
                 "printf-style float conversion: floats cross output "
                 "boundaries via std::bit_cast<std::uint32_t> (FORMATS.md), "
                 "not decimal text")
        for m in TO_STRING_RE.finditer(code):
            arg = m.group("arg")
            arg_idents = set(re.findall(r"[A-Za-z_]\w*", arg))
            if ("float" in arg_idents or "double" in arg_idents
                    or arg_idents & floats):
                emit(idx, "D003",
                     f"std::to_string on float-typed expression '{arg.strip()}'"
                     ": use the bit-exact pattern from FORMATS.md")

    return findings


def lint_file(path: str) -> list[Finding]:
    rel = os.path.relpath(os.path.abspath(path), REPO_ROOT).replace(os.sep, "/")
    with open(path, encoding="utf-8") as fh:
        return lint_text(rel, fh.read())


def collect_paths(roots: list[str]) -> list[str]:
    out = []
    for root in roots:
        if os.path.isfile(root):
            out.append(root)
            continue
        for dirpath, _, files in os.walk(root):
            for name in sorted(files):
                if name.endswith((".cc", ".h", ".hpp", ".cpp")):
                    out.append(os.path.join(dirpath, name))
    return sorted(out)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files/dirs to lint (default: the contract scope "
                             f"{', '.join(DEFAULT_SCOPE)})")
    args = parser.parse_args()

    roots = args.paths or [os.path.join(REPO_ROOT, d) for d in DEFAULT_SCOPE]
    for root in roots:
        if not os.path.exists(root):
            print(f"lint_determinism: no such path: {root}", file=sys.stderr)
            return 2

    findings: list[Finding] = []
    for path in collect_paths(roots):
        findings.extend(lint_file(path))

    for f in findings:
        print(f)
    if findings:
        print(f"lint_determinism: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint_determinism: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
