#!/usr/bin/env python3
"""Unit tests for the tools/lint_determinism.py rule engine.

Run directly (python3 tools/test_lint_determinism.py) or via ctest, where
CMake registers it as lint_determinism_test with the `unit` label.  Each
rule gets positive (flags), negative (stays quiet) and allow()-suppression
cases, plus the D000 empty-reason error and a self-check that the real tree
is clean.
"""

import os
import subprocess
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import lint_determinism  # noqa: E402


def lint(text, path="src/jigsaw/fake.cc"):
    return lint_determinism.lint_text(path, text)


def rules(findings):
    return [f.rule for f in findings]


class UnorderedIterationD001(unittest.TestCase):
    def test_range_for_over_unordered_map_flags(self):
        src = """
        std::unordered_map<MacAddress, TxState> tx;
        void Emit() {
          for (const auto& [mac, st] : tx) { Write(mac); }
        }
        """
        self.assertEqual(rules(lint(src)), ["D001"])

    def test_range_for_over_unordered_set_member_access_flags(self):
        src = """
        struct Impl { std::unordered_set<MacAddress> clients_; };
        void Dump(Impl& im) {
          for (const auto& c : im.clients_) { Write(c); }
        }
        """
        self.assertEqual(rules(lint(src)), ["D001"])

    def test_explicit_begin_flags(self):
        src = """
        std::unordered_map<int, int> flows;
        auto it = flows.begin();
        """
        self.assertEqual(rules(lint(src)), ["D001"])

    def test_vector_iteration_is_quiet(self):
        src = """
        std::vector<JFrame> frames;
        void Emit() { for (const auto& f : frames) Write(f); }
        """
        self.assertEqual(lint(src), [])

    def test_vector_of_unordered_sets_outer_loop_is_quiet(self):
        # The *outer* container is ordered; only its elements are hashed.
        src = """
        std::vector<std::unordered_set<MacAddress>> bins_;
        void Count() { for (const auto& b : bins_) n += b.size(); }
        """
        self.assertEqual(lint(src), [])

    def test_other_objects_member_with_same_name_is_quiet(self):
        src = """
        std::unordered_map<PairKey, PairInterference> pairs;
        void Emit(Report& report) {
          std::sort(report.pairs.begin(), report.pairs.end());
        }
        """
        self.assertEqual(lint(src), [])

    def test_allow_same_line_suppresses(self):
        src = """
        std::unordered_map<MacAddress, TxState> tx;
        for (const auto& [m, s] : tx) {}  // lint-determinism: allow(sorted later)
        """
        self.assertEqual(lint(src), [])

    def test_allow_previous_line_suppresses(self):
        src = """
        std::unordered_map<MacAddress, TxState> tx;
        // lint-determinism: allow(keys sorted before emission)
        for (const auto& [m, s] : tx) { }
        """
        self.assertEqual(lint(src), [])

    def test_empty_allow_reason_is_d000(self):
        src = """
        std::unordered_map<MacAddress, TxState> tx;
        // lint-determinism: allow()
        for (const auto& [m, s] : tx) { }
        """
        self.assertEqual(rules(lint(src)), ["D000"])

    def test_mention_in_comment_is_quiet(self):
        src = """
        // A std::unordered_map<K, V> would break determinism here.
        std::map<int, int> ordered;
        for (const auto& [k, v] : ordered) { }
        """
        self.assertEqual(lint(src), [])


class BannedSourceD002(unittest.TestCase):
    def test_rand_flags(self):
        self.assertEqual(rules(lint("int x = rand();\n")), ["D002"])

    def test_time_flags(self):
        self.assertEqual(rules(lint("auto t = time(nullptr);\n")), ["D002"])

    def test_system_clock_flags(self):
        src = "auto now = std::chrono::system_clock::now();\n"
        self.assertEqual(rules(lint(src)), ["D002"])

    def test_random_device_flags(self):
        self.assertEqual(rules(lint("std::random_device rd;\n")), ["D002"])

    def test_steady_clock_is_quiet(self):
        src = "auto t0 = std::chrono::steady_clock::now();\n"
        self.assertEqual(lint(src), [])

    def test_identifier_suffix_is_quiet(self):
        # air_time(...) / Rand(...) member helpers are not the libc calls.
        src = "auto d = exchange.air_time(rate);\nrng.NextRand(7);\n"
        self.assertEqual(lint(src), [])

    def test_whitelisted_file_is_quiet(self):
        src = "auto now = std::chrono::system_clock::now();\n"
        self.assertEqual(lint(src, path="src/obs/export.cc"), [])

    def test_allow_suppresses(self):
        src = "time(nullptr);  // lint-determinism: allow(CLI banner stamp)\n"
        self.assertEqual(lint(src), [])


class FloatTextFormatD003(unittest.TestCase):
    def test_printf_float_conversion_flags(self):
        src = 'std::snprintf(buf, sizeof buf, "%.1f dBm", rssi);\n'
        self.assertEqual(rules(lint(src)), ["D003"])

    def test_printf_int_conversion_is_quiet(self):
        src = 'std::snprintf(buf, sizeof buf, "r%-4u |", radio);\n'
        self.assertEqual(lint(src), [])

    def test_to_string_on_declared_float_flags(self):
        src = """
        double mean_loss = 0.0;
        out += std::to_string(mean_loss);
        """
        self.assertEqual(rules(lint(src)), ["D003"])

    def test_to_string_on_float_member_flags(self):
        src = """
        struct Inst { float rssi_dbm = 0.0f; };
        s += std::to_string(inst.rssi_dbm);
        """
        self.assertEqual(rules(lint(src)), ["D003"])

    def test_to_string_on_cast_to_double_flags(self):
        src = "s += std::to_string(static_cast<double>(n) / total);\n"
        self.assertEqual(rules(lint(src)), ["D003"])

    def test_to_string_on_integer_is_quiet(self):
        src = """
        std::uint32_t version = 3;
        throw Err("v" + std::to_string(version));
        """
        self.assertEqual(lint(src), [])

    def test_bit_exact_pattern_is_quiet(self):
        src = "w.U32(std::bit_cast<std::uint32_t>(inst.rssi_dbm));\n"
        self.assertEqual(lint(src), [])

    def test_allow_suppresses(self):
        src = ('double v = 1.0;\n'
               'log += std::to_string(v);'
               '  // lint-determinism: allow(debug log, not an output path)\n')
        self.assertEqual(lint(src), [])


class EngineBehaviour(unittest.TestCase):
    def test_finding_reports_path_and_line(self):
        src = "int a;\nint x = rand();\n"
        (f,) = lint(src, path="src/trace/foo.cc")
        self.assertEqual((f.path, f.line, f.rule), ("src/trace/foo.cc", 2, "D002"))

    def test_multiple_findings_on_one_file(self):
        src = """
        std::unordered_set<int> keys;
        for (int k : keys) { }
        int seed = rand();
        """
        self.assertEqual(sorted(rules(lint(src))), ["D001", "D002"])

    def test_real_tree_is_clean(self):
        # The committed contract scope must lint clean — the same invariant
        # the determinism-lint CI gate enforces.
        script = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              "lint_determinism.py")
        proc = subprocess.run([sys.executable, script], capture_output=True,
                              text=True)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
