#!/usr/bin/env python3
"""Run the project's curated clang-tidy profile over every C++ TU.

Usage:
    python3 tools/run_clang_tidy.py [--build-dir build] [--filter REGEX]
                                    [--fix] [--jobs N] [--require]

Behaviour:
  * Uses (or creates) <build-dir>/compile_commands.json — the top-level
    CMakeLists.txt exports it unconditionally.
  * Runs clang-tidy (config from the repo-root .clang-tidy, which sets
    WarningsAsErrors: '*') over each repo TU in parallel and exits non-zero
    if any TU produces a finding.
  * If no clang-tidy binary can be found the script SKIPS and exits 0 so a
    gcc-only workstation can still run the full local gate; pass --require
    (the static-analysis CI job does) to turn a missing binary into a
    failure instead of a skip.

Pin a specific binary with --clang-tidy or the CLANG_TIDY env var.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import re
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories whose TUs are gated.  Anything else in the compile database
# (third-party, generated) is ignored.
GATED_DIRS = ("src", "tests", "bench", "examples", "fuzz", "tools")

# Newest first; the CI job installs a pinned major version so the names
# resolve deterministically there.
CANDIDATE_NAMES = [
    "clang-tidy-20", "clang-tidy-19", "clang-tidy-18", "clang-tidy-17",
    "clang-tidy-16", "clang-tidy-15", "clang-tidy-14", "clang-tidy",
]


def find_clang_tidy(explicit: str | None) -> str | None:
    if explicit:
        return explicit if shutil.which(explicit) else None
    env = os.environ.get("CLANG_TIDY")
    if env:
        return env if shutil.which(env) else None
    for name in CANDIDATE_NAMES:
        if shutil.which(name):
            return name
    return None


def ensure_compile_db(build_dir: str) -> str:
    db_path = os.path.join(build_dir, "compile_commands.json")
    if os.path.exists(db_path):
        return db_path
    print(f"[run_clang_tidy] no {db_path}; configuring cmake ...")
    subprocess.run(
        ["cmake", "-B", build_dir, "-S", REPO_ROOT,
         "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON"],
        check=True, stdout=subprocess.DEVNULL)
    if not os.path.exists(db_path):
        sys.exit(f"[run_clang_tidy] cmake configure did not produce {db_path}")
    return db_path


def gated_translation_units(db_path: str, file_filter: str | None) -> list[str]:
    with open(db_path, encoding="utf-8") as fh:
        entries = json.load(fh)
    wanted = []
    pattern = re.compile(file_filter) if file_filter else None
    for entry in entries:
        path = os.path.abspath(
            os.path.join(entry.get("directory", "."), entry["file"]))
        rel = os.path.relpath(path, REPO_ROOT)
        if rel.startswith(".."):
            continue
        if not rel.split(os.sep, 1)[0] in GATED_DIRS:
            continue
        if pattern and not pattern.search(rel):
            continue
        wanted.append(path)
    return sorted(set(wanted))


def run_one(binary: str, build_dir: str, fix: bool, path: str) -> tuple[str, int, str]:
    cmd = [binary, "-p", build_dir, "--quiet"]
    if fix:
        cmd.append("--fix")
    cmd.append(path)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    # clang-tidy prints suppressed-warning chatter on stderr even when clean;
    # only surface stderr when the TU actually failed.
    output = proc.stdout
    if proc.returncode != 0:
        output += proc.stderr
    return (os.path.relpath(path, REPO_ROOT), proc.returncode, output)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"))
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary to use (default: autodetect)")
    parser.add_argument("--filter", default=None,
                        help="only run on TUs whose repo-relative path matches")
    parser.add_argument("--fix", action="store_true",
                        help="apply clang-tidy fix-its")
    parser.add_argument("--jobs", type=int,
                        default=multiprocessing.cpu_count())
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 1) when clang-tidy is missing "
                             "instead of skipping (CI sets this)")
    args = parser.parse_args()

    binary = find_clang_tidy(args.clang_tidy)
    if binary is None:
        msg = ("[run_clang_tidy] SKIP: no clang-tidy binary found "
               f"(tried CLANG_TIDY env + {', '.join(CANDIDATE_NAMES)})")
        if args.require:
            print(msg + " and --require was set", file=sys.stderr)
            return 1
        print(msg + "; static analysis runs in the CI static-analysis job")
        return 0

    db_path = ensure_compile_db(args.build_dir)
    units = gated_translation_units(db_path, args.filter)
    if not units:
        print("[run_clang_tidy] no translation units matched", file=sys.stderr)
        return 1

    version = subprocess.run([binary, "--version"], capture_output=True,
                             text=True).stdout.strip().splitlines()
    print(f"[run_clang_tidy] {binary} ({version[-1].strip() if version else '?'}) "
          f"over {len(units)} TUs, {args.jobs} jobs")

    failures = 0
    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for rel, code, output in pool.map(
                lambda p: run_one(binary, args.build_dir, args.fix, p), units):
            if code != 0:
                failures += 1
                print(f"--- FINDINGS in {rel} ---")
                print(output.rstrip())
            elif output.strip():
                # WarningsAsErrors makes findings exit non-zero, so stdout on
                # a clean TU is informational only.
                pass
    if failures:
        print(f"[run_clang_tidy] FAILED: findings in {failures}/{len(units)} TUs",
              file=sys.stderr)
        return 1
    print(f"[run_clang_tidy] OK: {len(units)} TUs clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
