// Fuzz harness for the .jigs spill-segment reader (src/jigsaw/spill.h).
//
// Invariant under test: for ANY file contents, SpillSegmentReader either
// replays to end-of-segment or throws exactly the documented taxonomy
// (TraceError subtypes).  Both modes are driven: strict (batch replay — a
// torn structure is TraceTruncatedError) and tail (live replay — a torn
// frontier is "no data yet", so Next() returning nullopt is the expected
// outcome and must not spin or throw raw errors).
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "jigsaw/spill.h"

#include "standalone_driver.h"

namespace {

const std::filesystem::path& ScratchPath() {
  static const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("jig_fuzz_spill_" + std::to_string(::getpid()) + ".jigs");
  return path;
}

void Drive(const std::filesystem::path& path, bool strict) {
  try {
    jig::SpillSegmentReader reader(path, strict);
    // Tail mode parks at the frontier (Next() -> nullopt) instead of
    // throwing on truncation, so a plain drain terminates in both modes.
    while (reader.Next()) {
    }
  } catch (const jig::TraceError&) {
    // Documented taxonomy — expected for malformed input.
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const auto& path = ScratchPath();
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(size));
  }
  Drive(path, /*strict=*/true);
  Drive(path, /*strict=*/false);
  return 0;
}
