// Fuzz harness for the .jigt trace reader (src/trace/trace_file.h).
//
// Invariant under test: for ANY file contents, TraceFileReader either
// iterates to end-of-trace or throws exactly the documented taxonomy
// (TraceError: TraceTruncatedError / TraceCorruptError).  Both the
// buffered-FILE* and mmap block paths are driven, since they bound-check
// independently.  A crash, hang, descriptor leak (ASan reports leaked
// stdio buffers at exit), OOM from hostile index counts, or any other
// exception type is a bug.
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "trace/trace_file.h"

#include "standalone_driver.h"

namespace {

// One scratch file per process, rewritten per input.  Unlinked lazily; the
// OS reclaims it if the process aborts.
const std::filesystem::path& ScratchPath() {
  static const std::filesystem::path path = [] {
    auto p = std::filesystem::temp_directory_path() /
             ("jig_fuzz_trace_" + std::to_string(::getpid()) + ".jigt");
    return p;
  }();
  return path;
}

void Drive(const std::filesystem::path& path, bool use_mmap) {
  try {
    jig::TraceFileReader reader(path, {.use_mmap = use_mmap});
    while (reader.Next()) {
    }
  } catch (const jig::TraceError&) {
    // Documented taxonomy — expected for malformed input.
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const auto& path = ScratchPath();
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(size));
  }
  Drive(path, /*use_mmap=*/false);
  Drive(path, /*use_mmap=*/true);
  return 0;
}
