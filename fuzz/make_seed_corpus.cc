// Generates the committed seed corpora under fuzz/corpus/<target>/.
//
//   make_seed_corpus <corpus-root>
//
// Seeds are small, structurally valid (or near-valid) inputs produced by
// the real writers, so the fuzzers start from deep in the format instead of
// spending their budget rediscovering magic numbers.  Regenerate after any
// format change (docs/STATIC_ANALYSIS.md, "Refreshing the seed corpora").
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "jigsaw/spill.h"
#include "trace/trace_file.h"
#include "util/compression.h"

namespace fs = std::filesystem;

namespace {

void WriteSeed(const fs::path& dir, const std::string& name,
               const jig::Bytes& bytes) {
  fs::create_directories(dir);
  std::ofstream f(dir / name, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

jig::Bytes Slurp(const fs::path& path) {
  std::ifstream f(path, std::ios::binary);
  return jig::Bytes(std::istreambuf_iterator<char>(f),
                    std::istreambuf_iterator<char>());
}

jig::CaptureRecord MakeRecord(std::uint64_t i) {
  jig::CaptureRecord rec;
  rec.timestamp = static_cast<jig::LocalMicros>(1000 + i * 250);
  rec.outcome = i % 7 == 0 ? jig::RxOutcome::kFcsError : jig::RxOutcome::kOk;
  rec.rssi_dbm = -40.0F - static_cast<float>(i % 30);
  rec.rate = jig::PhyRate::kB11;
  rec.orig_len = 64 + static_cast<std::uint32_t>(i % 128);
  rec.bytes.assign(24 + i % 48, static_cast<std::uint8_t>(0xA0 + i % 16));
  // A plausible data-frame header so the deserialized record also exercises
  // downstream frame parsing when fuzz inputs graduate into pipeline tests.
  rec.bytes[0] = 0x08;
  return rec;
}

jig::JFrame MakeJFrame(std::uint64_t i) {
  jig::JFrame jf;
  jf.timestamp = static_cast<jig::UniversalMicros>(5000 + i * 400);
  jf.dispersion = 12;
  jf.channel = jig::Channel::kCh1;
  jf.rate = jig::PhyRate::kB11;
  jf.wire_len = 96;
  jf.digest = 0x1234567890ABCDEFull ^ i;
  jf.frame.type = jig::FrameType::kData;
  jf.frame.duration_us = 314;
  jf.frame.sequence = static_cast<std::uint16_t>(i);
  jf.frame.rate = jig::PhyRate::kB11;
  jf.frame.body.assign(40, static_cast<std::uint8_t>(i));
  for (std::uint64_t k = 0; k <= i % 3; ++k) {
    jig::FrameInstance inst;
    inst.radio = static_cast<jig::RadioId>(k);
    inst.local_timestamp = static_cast<jig::LocalMicros>(900 + i * 400);
    inst.universal_timestamp = jf.timestamp;
    inst.rssi_dbm = -55.5F;
    inst.outcome = jig::RxOutcome::kOk;
    jf.instances.push_back(inst);
  }
  return jf;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_seed_corpus <corpus-root>\n");
    return 2;
  }
  const fs::path root = argv[1];
  const fs::path scratch = fs::temp_directory_path() / "jig_seed_scratch";
  fs::create_directories(scratch);

  // --- fuzz_trace_reader: finished, unfinished, and multi-block traces ----
  {
    jig::TraceHeader header;
    header.radio = 3;
    header.pod = 1;
    header.monitor = 2;
    header.channel = jig::Channel::kCh1;
    header.snaplen = 224;

    const fs::path finished = scratch / "finished.jigt";
    {
      jig::TraceFileWriter w(finished, header, /*records_per_block=*/8);
      for (std::uint64_t i = 0; i < 20; ++i) w.Append(MakeRecord(i));
      w.Finish();
    }
    WriteSeed(root / "fuzz_trace_reader", "finished_trace.bin",
              Slurp(finished));

    const fs::path tiny = scratch / "tiny.jigt";
    {
      jig::TraceFileWriter w(tiny, header);
      w.Append(MakeRecord(0));
      w.Finish();
    }
    WriteSeed(root / "fuzz_trace_reader", "single_record.bin", Slurp(tiny));

    // Header-only (writer synced but never finished): truncated on read.
    const fs::path unfinished = scratch / "unfinished.jigt";
    {
      jig::TraceFileWriter w(unfinished, header, /*records_per_block=*/4);
      for (std::uint64_t i = 0; i < 6; ++i) w.Append(MakeRecord(i));
      w.Sync();
      // Dropped without Finish() on purpose?  No — the destructor finalizes.
      // Capture the synced-but-unfinished bytes before that happens.
      WriteSeed(root / "fuzz_trace_reader", "unfinished_trace.bin",
                Slurp(unfinished));
    }
  }

  // --- fuzz_spill_reader: finalized and frontier segments ----------------
  {
    jig::SpillSegmentHeader header;
    header.channel = 1;
    header.sequence = 7;

    const fs::path finalized = scratch / "finalized.jigs";
    {
      jig::SpillSegmentWriter w(finalized, header, /*records_per_block=*/4);
      for (std::uint64_t i = 0; i < 10; ++i) w.Append(MakeJFrame(i));
      w.Finish();
    }
    WriteSeed(root / "fuzz_spill_reader", "finalized_segment.bin",
              Slurp(finalized));

    const fs::path open_seg = scratch / "open.jigs";
    {
      jig::SpillSegmentWriter w(open_seg, header, /*records_per_block=*/4);
      for (std::uint64_t i = 0; i < 5; ++i) w.Append(MakeJFrame(i));
      w.Sync();
      WriteSeed(root / "fuzz_spill_reader", "open_segment.bin",
                Slurp(open_seg));
    }
  }

  // --- fuzz_lz_decode: compressed blocks at both levels ------------------
  {
    jig::Bytes compressible;
    for (int i = 0; i < 600; ++i) {
      compressible.push_back(static_cast<std::uint8_t>("JIGSAWJIGSAW"[i % 12]));
    }
    WriteSeed(root / "fuzz_lz_decode", "compressible.bin",
              jig::LzCompress(compressible));
    WriteSeed(root / "fuzz_lz_decode", "compressible_fast.bin",
              jig::LzCompress(compressible, jig::LzLevel::kFast));
    jig::Bytes incompressible;
    std::uint32_t x = 0xC0FFEE11;
    for (int i = 0; i < 200; ++i) {
      x = x * 1664525u + 1013904223u;  // fixed LCG: reproducible "noise"
      incompressible.push_back(static_cast<std::uint8_t>(x >> 24));
    }
    WriteSeed(root / "fuzz_lz_decode", "incompressible.bin",
              jig::LzCompress(incompressible));
    WriteSeed(root / "fuzz_lz_decode", "empty.bin", jig::LzCompress({}));
  }

  // --- fuzz_jframe_deserialize: serialized frames ------------------------
  {
    for (std::uint64_t i = 0; i < 4; ++i) {
      jig::Bytes out;
      jig::SerializeJFrame(MakeJFrame(i), out);
      WriteSeed(root / "fuzz_jframe_deserialize",
                "jframe" + std::to_string(i) + ".bin", out);
    }
  }

  std::error_code ec;
  fs::remove_all(scratch, ec);
  std::printf("seed corpora written under %s\n", root.string().c_str());
  return 0;
}
