// Standalone entry point for the fuzz harnesses when libFuzzer is absent.
//
// Every harness defines the libFuzzer hook
//
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
//
// With clang, fuzz/CMakeLists.txt links -fsanitize=fuzzer (defining
// JIG_FUZZ_LIBFUZZER) and libFuzzer supplies main().  gcc ships no
// libFuzzer, so this header supplies a main() that keeps the harnesses
// useful in a gcc+ASan/UBSan build:
//
//   fuzz_x [-mutations=N] [-seed=S] <corpus file or dir>...
//
// Pass 1 replays every corpus input verbatim (regression mode: exactly what
// CI's fuzz-smoke job does with the committed corpus).  With -mutations=N,
// pass 2 runs N additional executions, each a corpus input put through a
// small stack of deterministic mutations (bit flips, byte sets, truncation,
// chunk duplication, cross-splices) from a fixed-seed xorshift PRNG — the
// same inputs on every run, so a failure reproduces with the same command.
#pragma once

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

#if !defined(JIG_FUZZ_LIBFUZZER)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace jig_fuzz {

using Input = std::vector<std::uint8_t>;

// xorshift64*: deterministic across platforms, no <random> (the linter-level
// ban on std::random_device extends in spirit to the fuzz driver — runs must
// reproduce from the command line alone).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}
  std::uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }
  std::size_t Below(std::size_t n) { return n ? Next() % n : 0; }

 private:
  std::uint64_t state_;
};

inline void Mutate(Input& in, Rng& rng, const std::vector<Input>& corpus) {
  const int n_ops = 1 + static_cast<int>(rng.Below(8));
  for (int op = 0; op < n_ops; ++op) {
    switch (rng.Below(6)) {
      case 0:  // bit flip
        if (!in.empty()) in[rng.Below(in.size())] ^= 1u << rng.Below(8);
        break;
      case 1:  // byte set (favors framing-relevant values)
        if (!in.empty()) {
          static constexpr std::uint8_t kMagic[] = {0x00, 0x01, 0x7F, 0x80,
                                                    0xFF, 0xFE, 0x20, 0x40};
          in[rng.Below(in.size())] = kMagic[rng.Below(sizeof kMagic)];
        }
        break;
      case 2:  // truncate
        if (!in.empty()) in.resize(rng.Below(in.size()));
        break;
      case 3: {  // duplicate a chunk in place
        if (in.empty()) break;
        const std::size_t at = rng.Below(in.size());
        const std::size_t len = 1 + rng.Below(in.size() - at);
        Input chunk(in.begin() + static_cast<std::ptrdiff_t>(at),
                    in.begin() + static_cast<std::ptrdiff_t>(at + len));
        in.insert(in.begin() + static_cast<std::ptrdiff_t>(at), chunk.begin(),
                  chunk.end());
        break;
      }
      case 4: {  // splice a window from another corpus input
        if (corpus.empty()) break;
        const Input& other = corpus[rng.Below(corpus.size())];
        if (other.empty() || in.empty()) break;
        const std::size_t src = rng.Below(other.size());
        const std::size_t len =
            1 + rng.Below(std::min<std::size_t>(other.size() - src, 64));
        const std::size_t dst = rng.Below(in.size());
        for (std::size_t i = 0; i < len && dst + i < in.size(); ++i) {
          in[dst + i] = other[src + i];
        }
        break;
      }
      default:  // insert random bytes
        in.insert(in.begin() + static_cast<std::ptrdiff_t>(rng.Below(in.size() + 1)),
                  static_cast<std::uint8_t>(rng.Next()));
        break;
    }
  }
  // Bound growth so repeated duplication cannot balloon an input.
  if (in.size() > (1u << 16)) in.resize(1u << 16);
}

inline int Main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::uint64_t mutations = 0;
  std::uint64_t seed = 1;
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-mutations=", 0) == 0) {
      mutations = std::stoull(arg.substr(11));
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = std::stoull(arg.substr(6));
    } else {
      roots.emplace_back(arg);
    }
  }

  std::vector<Input> corpus;
  for (const fs::path& root : roots) {
    std::vector<fs::path> files;
    if (fs::is_directory(root)) {
      for (const auto& ent : fs::recursive_directory_iterator(root)) {
        if (ent.is_regular_file()) files.push_back(ent.path());
      }
    } else {
      files.push_back(root);
    }
    // Directory iteration order is unspecified; sort for reproducibility.
    std::sort(files.begin(), files.end());
    for (const fs::path& p : files) {
      std::ifstream f(p, std::ios::binary);
      if (!f) {
        std::fprintf(stderr, "cannot read corpus file: %s\n",
                     p.string().c_str());
        return 2;
      }
      corpus.emplace_back(std::istreambuf_iterator<char>(f),
                          std::istreambuf_iterator<char>());
    }
  }

  // Pass 1: replay the corpus verbatim.
  for (const Input& in : corpus) {
    LLVMFuzzerTestOneInput(in.data(), in.size());
  }

  // Pass 2: deterministic mutation loop.
  Rng rng(seed);
  for (std::uint64_t i = 0; i < mutations; ++i) {
    Input in = corpus.empty() ? Input{} : corpus[i % corpus.size()];
    Mutate(in, rng, corpus);
    LLVMFuzzerTestOneInput(in.data(), in.size());
  }

  std::printf("standalone fuzz driver: %zu corpus inputs, %llu mutations, "
              "no crashes\n",
              corpus.size(), static_cast<unsigned long long>(mutations));
  return 0;
}

}  // namespace jig_fuzz

int main(int argc, char** argv) { return jig_fuzz::Main(argc, argv); }

#endif  // !JIG_FUZZ_LIBFUZZER
