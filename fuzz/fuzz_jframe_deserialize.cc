// Fuzz harness for DeserializeJFrame (src/jigsaw/spill.h).
//
// Invariant under test: for ANY input bytes, DeserializeJFrame either
// decodes a JFrame or throws std::runtime_error — the documented failure
// mode for malformed spill payloads (ByteReader underflow, varint overflow,
// inconsistent instance counts).  std::bad_alloc or std::length_error from
// a hostile declared count is NOT acceptable: the decoder must validate
// counts against the input before allocating.  On success the frame must
// re-serialize without throwing, and decoding those bytes again must
// consume them exactly.
#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "jigsaw/spill.h"
#include "util/byte_io.h"

#include "standalone_driver.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  jig::Bytes input(data, data + size);
  jig::ByteReader r(input);
  try {
    const jig::JFrame jf = jig::DeserializeJFrame(r);
    // Decoded OK: round-trip must hold (serialize cannot throw for a frame
    // the decoder accepted, and the re-decoded bytes must all be consumed).
    jig::Bytes out;
    jig::SerializeJFrame(jf, out);
    jig::ByteReader r2(out);
    (void)jig::DeserializeJFrame(r2);
    if (!r2.AtEnd()) __builtin_trap();
  } catch (const std::runtime_error&) {
    // Documented taxonomy — expected for malformed input.
  }
  return 0;
}
