// Fuzz harness for the LZ block decoder (src/util/compression.h).
//
// Invariant under test: for ANY input bytes, LzDecompress either returns a
// decoded buffer or throws exactly the documented taxonomy (LzError:
// LzTruncatedError / LzCorruptError).  Anything else — a crash, a hang, an
// OOM from a hostile declared size, or a different exception type — is a
// bug.  On success, a compress→decompress round trip of the decoded bytes
// must reproduce them exactly.
#include <cstddef>
#include <cstdint>
#include <span>

#include "util/compression.h"

#include "standalone_driver.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  try {
    const auto raw = jig::LzDecompress(std::span<const std::uint8_t>(data, size));
    // Decoded OK: the codec must round-trip its own output.
    const auto repacked = jig::LzCompress(raw);
    const auto again = jig::LzDecompress(repacked);
    if (again != raw) __builtin_trap();
  } catch (const jig::LzError&) {
    // Documented taxonomy — expected for malformed input.
  }
  return 0;
}
