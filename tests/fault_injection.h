// Deterministic fault injection for the service / crash-recovery tests.
//
// Three seams, all keyed to exact record or call offsets so every "crash"
// is reproducible:
//
//   * FaultyStream — a RecordStream wrapper (installed through
//     DeploymentMonitor's StreamWrapper hook) that can kill the process
//     model at record #k, stall like a disconnected tail, or withhold the
//     finalize marker until released.
//   * ServiceFaultHooks factories — throw KillPoint after output-append
//     #k or around the Nth checkpoint replace (crash-between-emit-and-
//     checkpoint and crash-between-checkpoint-and-emit).
//   * TearFileTail — chops bytes off a file, simulating the torn final
//     write a power cut leaves behind.
//
// A KillPoint thrown anywhere inside DeploymentMonitor::PollOnce marks the
// monitor failed; its destructor then abandons the open output segment
// (pending block dropped, no finalize marker) — on-disk state is exactly
// what SIGKILL at that instant would leave, which is what the recovery
// tests restart from.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "jigsaw/service.h"
#include "trace/trace_set.h"

namespace jig::testing {

// Simulated SIGKILL: thrown by armed hooks/streams at the chosen point.
class KillPoint : public std::runtime_error {
 public:
  explicit KillPoint(const std::string& where)
      : std::runtime_error("injected kill: " + where) {}
};

// Pass-through record stream with offset-keyed faults.  Offsets are
// positions in the stream (0-based), so a Rewind (the merge's late
// bootstrap re-read) replays the same fault at the same record — the
// behaviour a real half-dead source would show on every pass.
class FaultyStream final : public RecordStream {
 public:
  struct Faults {
    // Throw KillPoint when the consumer pulls record #kill_at.
    std::optional<std::uint64_t> kill_at;
    // From record #stall_at on, behave like a disconnected tail: the
    // record is withheld (NextRef -> nullptr, Finalized() -> false) until
    // Release().
    std::optional<std::uint64_t> stall_at;
    // Withhold the finalize marker until Release() even after the inner
    // stream finalizes (a radio that lags on its marker).
    bool delay_finalize = false;
  };

  FaultyStream(std::unique_ptr<RecordStream> inner, Faults faults)
      : inner_(std::move(inner)), faults_(faults) {}

  // Clears the stall / delayed-finalize faults (the "sender came back"
  // transition).  kill_at stays armed.
  void Release() { released_ = true; }

  const TraceHeader& header() const override { return inner_->header(); }

  std::optional<CaptureRecord> Next() override {
    const CaptureRecord* rec = NextRef();
    if (rec == nullptr) return std::nullopt;
    return *rec;
  }

  const CaptureRecord* NextRef() override {
    if (faults_.kill_at && pos_ == *faults_.kill_at) {
      throw KillPoint("record " + std::to_string(pos_) + " of radio " +
                      std::to_string(inner_->header().radio));
    }
    if (!released_ && faults_.stall_at && pos_ >= *faults_.stall_at) {
      return nullptr;  // parked, like a dead socket awaiting its resume
    }
    const CaptureRecord* rec = inner_->NextRef();
    if (rec != nullptr) ++pos_;
    return rec;
  }

  void Rewind() override {
    pos_ = 0;
    inner_->Rewind();
  }

  bool Finalized() const override {
    if (!released_ && (faults_.delay_finalize ||
                       (faults_.stall_at && pos_ >= *faults_.stall_at))) {
      return false;
    }
    return inner_->Finalized();
  }

 private:
  std::unique_ptr<RecordStream> inner_;
  Faults faults_;
  std::uint64_t pos_ = 0;
  bool released_ = false;
};

// StreamWrapper that wraps ONE radio's stream with the given faults and
// reports the wrapper's address through `out` (for Release()); every
// other radio passes through untouched.
inline DeploymentMonitor::StreamWrapper WrapRadio(
    std::uint32_t radio, FaultyStream::Faults faults,
    FaultyStream** out = nullptr) {
  return [radio, faults, out](std::unique_ptr<RecordStream> inner,
                              std::uint32_t r)
             -> std::unique_ptr<RecordStream> {
    if (r != radio) return inner;
    auto wrapped = std::make_unique<FaultyStream>(std::move(inner), faults);
    if (out != nullptr) *out = wrapped.get();
    return wrapped;
  };
}

// Kill while writing the output log: throws once jframe #index has been
// handed to the segment writer (it may still sit in the writer's pending
// block — exactly the window a real crash tears).
inline std::function<void(std::uint64_t)> KillAfterAppend(
    std::uint64_t index) {
  return [index](std::uint64_t i) {
    if (i == index) {
      throw KillPoint("after output append #" + std::to_string(i));
    }
  };
}

// Kill on the Nth call (1-based) of a void hook — arm as before_checkpoint
// ("crash between emit and checkpoint": the log is ahead of the table) or
// after_checkpoint ("crash between checkpoint and the next emit").  Note
// the checkpoint written by the monitor's constructor counts as call #1.
inline std::function<void()> KillOnNthCall(std::string what, int n) {
  auto calls = std::make_shared<int>(0);
  return [what = std::move(what), n, calls]() {
    if (++*calls == n) {
      throw KillPoint(what + " (call #" + std::to_string(n) + ")");
    }
  };
}

// Chops `bytes` off the end of `path` — the torn trailing write of a
// power cut (a crash mid-fwrite leaves a prefix of the block on disk).
inline void TearFileTail(const std::filesystem::path& path,
                         std::uint64_t bytes) {
  const std::uint64_t size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size > bytes ? size - bytes : 0);
}

}  // namespace jig::testing
