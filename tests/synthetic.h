// Synthetic trace construction for Jigsaw-core unit tests.
//
// Builds per-radio capture records for a scripted set of transmissions with
// known per-radio clock offsets/skews, bypassing the full simulator so
// tests can assert exact expectations (which transmissions exist, who heard
// what, what the true offsets are).
#pragma once

#include <vector>

#include "trace/trace_set.h"
#include "util/rng.h"
#include "wifi/frame.h"

namespace jig::testing {

struct SyntheticRadio {
  RadioId id = 0;
  std::uint16_t monitor = 0;  // radios sharing a monitor share a clock
  Channel channel = Channel::kCh1;
  double offset_us = 0.0;   // local = true + offset (+ skew * true)
  double skew_ppm = 0.0;
  std::int64_t ntp_error_us = 0;
};

struct SyntheticTx {
  TrueMicros at = 0;
  Frame frame;
  std::vector<RadioId> heard_by;
  // Radios that receive a corrupted copy.
  std::vector<RadioId> corrupted_at;
};

class SyntheticNetwork {
 public:
  explicit SyntheticNetwork(std::vector<SyntheticRadio> radios)
      : radios_(std::move(radios)) {}

  void Transmit(SyntheticTx tx) { txs_.push_back(std::move(tx)); }

  // Convenience: a unique DATA frame heard by `radios` at true time `at`.
  void Data(TrueMicros at, std::uint16_t from_client, std::uint16_t seq,
            std::vector<RadioId> heard_by, bool retry = false) {
    SyntheticTx tx;
    tx.at = at;
    tx.frame = MakeData(MacAddress::Ap(0), MacAddress::Client(from_client),
                        MacAddress::Ap(0), seq, Bytes{1, 2, 3, 4},
                        PhyRate::kB2, false, true);
    tx.frame.retry = retry;
    tx.heard_by = std::move(heard_by);
    Transmit(std::move(tx));
  }

  TraceSet Build() const {
    TraceSet set;
    for (const auto& radio : radios_) {
      TraceHeader header;
      header.radio = radio.id;
      header.pod = radio.monitor / 2;
      header.monitor = radio.monitor;
      header.channel = radio.channel;
      header.ntp_utc_of_local_zero_us =
          -static_cast<std::int64_t>(radio.offset_us) + radio.ntp_error_us;
      std::vector<CaptureRecord> records;
      for (const auto& tx : txs_) {
        const bool heard = Contains(tx.heard_by, radio.id);
        const bool corrupted = Contains(tx.corrupted_at, radio.id);
        if (!heard && !corrupted) continue;
        CaptureRecord rec;
        rec.timestamp = LocalTime(radio, tx.at);
        rec.outcome = corrupted ? RxOutcome::kFcsError : RxOutcome::kOk;
        rec.rate = tx.frame.rate;
        rec.bytes = tx.frame.Serialize();
        rec.orig_len = static_cast<std::uint32_t>(rec.bytes.size());
        if (corrupted) rec.bytes[8] ^= 0xFF;
        rec.rssi_dbm = -60.0F;
        records.push_back(std::move(rec));
      }
      std::stable_sort(records.begin(), records.end(),
                       [](const CaptureRecord& a, const CaptureRecord& b) {
                         return a.timestamp < b.timestamp;
                       });
      set.Add(std::make_unique<MemoryTrace>(header, std::move(records)));
    }
    return set;
  }

  static LocalMicros LocalTime(const SyntheticRadio& radio, TrueMicros at) {
    return static_cast<LocalMicros>(
        static_cast<double>(at) * (1.0 + radio.skew_ppm * 1e-6) +
        radio.offset_us);
  }

 private:
  static bool Contains(const std::vector<RadioId>& v, RadioId id) {
    return std::find(v.begin(), v.end(), id) != v.end();
  }

  std::vector<SyntheticRadio> radios_;
  std::vector<SyntheticTx> txs_;
};

// Seeded multi-channel deployment for the sharded-merge tests: six radios
// on three monitors, each monitor's two radios sharing one clock but tuned
// to different channels, so bootstrap must bridge 1 → 6 → 11 transitively.
// Traffic is randomized per channel — unified pairs, single-receiver
// frames, corrupted copies, and byte-identical back-to-back ACKs (the
// duplicate-window case) — which exercises every unifier grouping path on
// every shard.
inline SyntheticNetwork MultiChannelNetwork(std::uint64_t seed,
                                            TrueMicros duration = Seconds(5)) {
  Rng rng(seed);
  const double mon_offset[3] = {rng.NextDouble(-5000.0, 5000.0),
                                rng.NextDouble(-5000.0, 5000.0),
                                rng.NextDouble(-5000.0, 5000.0)};
  const double mon_skew[3] = {rng.NextDouble(-30.0, 30.0),
                              rng.NextDouble(-30.0, 30.0),
                              rng.NextDouble(-30.0, 30.0)};
  const auto radio = [&](RadioId id, std::uint16_t mon, Channel ch) {
    return SyntheticRadio{.id = id,
                          .monitor = mon,
                          .channel = ch,
                          .offset_us = mon_offset[mon],
                          .skew_ppm = mon_skew[mon]};
  };
  SyntheticNetwork net({
      radio(0, 0, Channel::kCh1), radio(1, 0, Channel::kCh6),
      radio(2, 1, Channel::kCh6), radio(3, 1, Channel::kCh11),
      radio(4, 2, Channel::kCh11), radio(5, 2, Channel::kCh1),
  });
  // Which radios listen on each channel (index: 0=ch1, 1=ch6, 2=ch11).
  const std::vector<RadioId> listeners[3] = {{0, 5}, {1, 2}, {3, 4}};

  // Anchors inside the bootstrap window so every channel contributes a
  // reference set heard by two radios.
  std::uint16_t seq[3] = {1, 1, 1};
  for (int c = 0; c < 3; ++c) {
    net.Data(5'000 + c * 2'000, static_cast<std::uint16_t>(1 + c * 4),
             seq[c]++, listeners[c]);
  }

  for (TrueMicros t = 30'000; t < duration;
       t += 1'500 + static_cast<TrueMicros>(rng.NextBelow(6'000))) {
    const int c = static_cast<int>(rng.NextBelow(3));
    const auto client = static_cast<std::uint16_t>(1 + c * 4 + rng.NextBelow(3));
    const auto heard = listeners[c];
    const double kind = rng.NextDouble();
    if (kind < 0.55) {
      net.Data(t, client, seq[c]++ & 0x0FFF, heard);
    } else if (kind < 0.70) {
      // Heard by only one of the channel's radios.
      net.Data(t, client, seq[c]++ & 0x0FFF, {heard[rng.NextBelow(2)]});
    } else if (kind < 0.85) {
      // One valid copy, one corrupted copy.
      SyntheticTx tx;
      tx.at = t;
      tx.frame = MakeData(MacAddress::Ap(static_cast<std::uint16_t>(c)),
                          MacAddress::Client(client),
                          MacAddress::Ap(static_cast<std::uint16_t>(c)),
                          seq[c]++ & 0x0FFF, Bytes{7, 7, 7, 7}, PhyRate::kB2,
                          false, true);
      tx.heard_by = {heard[0]};
      tx.corrupted_at = {heard[1]};
      net.Transmit(std::move(tx));
    } else {
      // Byte-identical ACKs 1 ms apart: must stay separate jframes.
      const Frame ack = MakeAck(MacAddress::Client(client), PhyRate::kB2);
      net.Transmit(SyntheticTx{
          .at = t, .frame = ack, .heard_by = heard, .corrupted_at = {}});
      net.Transmit(SyntheticTx{.at = t + 1'000,
                               .frame = ack,
                               .heard_by = heard,
                               .corrupted_at = {}});
    }
  }
  return net;
}

}  // namespace jig::testing
