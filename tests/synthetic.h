// Synthetic trace construction for Jigsaw-core unit tests.
//
// Builds per-radio capture records for a scripted set of transmissions with
// known per-radio clock offsets/skews, bypassing the full simulator so
// tests can assert exact expectations (which transmissions exist, who heard
// what, what the true offsets are).
#pragma once

#include <vector>

#include "trace/trace_set.h"
#include "wifi/frame.h"

namespace jig::testing {

struct SyntheticRadio {
  RadioId id = 0;
  std::uint16_t monitor = 0;  // radios sharing a monitor share a clock
  Channel channel = Channel::kCh1;
  double offset_us = 0.0;   // local = true + offset (+ skew * true)
  double skew_ppm = 0.0;
  std::int64_t ntp_error_us = 0;
};

struct SyntheticTx {
  TrueMicros at = 0;
  Frame frame;
  std::vector<RadioId> heard_by;
  // Radios that receive a corrupted copy.
  std::vector<RadioId> corrupted_at;
};

class SyntheticNetwork {
 public:
  explicit SyntheticNetwork(std::vector<SyntheticRadio> radios)
      : radios_(std::move(radios)) {}

  void Transmit(SyntheticTx tx) { txs_.push_back(std::move(tx)); }

  // Convenience: a unique DATA frame heard by `radios` at true time `at`.
  void Data(TrueMicros at, std::uint16_t from_client, std::uint16_t seq,
            std::vector<RadioId> heard_by, bool retry = false) {
    SyntheticTx tx;
    tx.at = at;
    tx.frame = MakeData(MacAddress::Ap(0), MacAddress::Client(from_client),
                        MacAddress::Ap(0), seq, Bytes{1, 2, 3, 4},
                        PhyRate::kB2, false, true);
    tx.frame.retry = retry;
    tx.heard_by = std::move(heard_by);
    Transmit(std::move(tx));
  }

  TraceSet Build() const {
    TraceSet set;
    for (const auto& radio : radios_) {
      TraceHeader header;
      header.radio = radio.id;
      header.pod = radio.monitor / 2;
      header.monitor = radio.monitor;
      header.channel = radio.channel;
      header.ntp_utc_of_local_zero_us =
          -static_cast<std::int64_t>(radio.offset_us) + radio.ntp_error_us;
      std::vector<CaptureRecord> records;
      for (const auto& tx : txs_) {
        const bool heard = Contains(tx.heard_by, radio.id);
        const bool corrupted = Contains(tx.corrupted_at, radio.id);
        if (!heard && !corrupted) continue;
        CaptureRecord rec;
        rec.timestamp = LocalTime(radio, tx.at);
        rec.outcome = corrupted ? RxOutcome::kFcsError : RxOutcome::kOk;
        rec.rate = tx.frame.rate;
        rec.bytes = tx.frame.Serialize();
        rec.orig_len = static_cast<std::uint32_t>(rec.bytes.size());
        if (corrupted) rec.bytes[8] ^= 0xFF;
        rec.rssi_dbm = -60.0F;
        records.push_back(std::move(rec));
      }
      std::stable_sort(records.begin(), records.end(),
                       [](const CaptureRecord& a, const CaptureRecord& b) {
                         return a.timestamp < b.timestamp;
                       });
      set.Add(std::make_unique<MemoryTrace>(header, std::move(records)));
    }
    return set;
  }

  static LocalMicros LocalTime(const SyntheticRadio& radio, TrueMicros at) {
    return static_cast<LocalMicros>(
        static_cast<double>(at) * (1.0 + radio.skew_ppm * 1e-6) +
        radio.offset_us);
  }

 private:
  static bool Contains(const std::vector<RadioId>& v, RadioId id) {
    return std::find(v.begin(), v.end(), id) != v.end();
  }

  std::vector<SyntheticRadio> radios_;
  std::vector<SyntheticTx> txs_;
};

}  // namespace jig::testing
