// Field-by-field equality for link-reconstruction structs, shared by the
// streaming-vs-batch byte-identity tests in link_test.cc and bus_test.cc.
// Keep these comparators in sync with TransmissionAttempt / FrameExchange:
// a field missing here silently drops out of every byte-equality pin.
#pragma once

#include <gtest/gtest.h>

#include "jigsaw/link.h"

namespace jig::testing {

inline bool SameAttempt(const TransmissionAttempt& a,
                        const TransmissionAttempt& b) {
  return a.start == b.start && a.end == b.end &&
         a.transmitter == b.transmitter && a.receiver == b.receiver &&
         a.type == b.type && a.sequence == b.sequence &&
         a.has_sequence == b.has_sequence && a.retry == b.retry &&
         a.broadcast == b.broadcast && a.rate == b.rate &&
         a.rts_jframe == b.rts_jframe && a.cts_jframe == b.cts_jframe &&
         a.data_jframe == b.data_jframe && a.ack_jframe == b.ack_jframe &&
         a.acked == b.acked && a.inferred == b.inferred;
}

inline bool SameExchange(const FrameExchange& a, const FrameExchange& b) {
  return a.transmitter == b.transmitter && a.receiver == b.receiver &&
         a.sequence == b.sequence && a.broadcast == b.broadcast &&
         a.start == b.start && a.end == b.end && a.attempts == b.attempts &&
         a.outcome == b.outcome &&
         a.needed_inference == b.needed_inference &&
         a.data_jframe == b.data_jframe;
}

inline void ExpectLinkIdentical(const LinkReconstruction& streamed,
                                const LinkReconstruction& batch) {
  ASSERT_EQ(streamed.attempts.size(), batch.attempts.size());
  for (std::size_t i = 0; i < batch.attempts.size(); ++i) {
    ASSERT_TRUE(SameAttempt(streamed.attempts[i], batch.attempts[i]))
        << "attempt " << i;
  }
  ASSERT_EQ(streamed.exchanges.size(), batch.exchanges.size());
  for (std::size_t i = 0; i < batch.exchanges.size(); ++i) {
    ASSERT_TRUE(SameExchange(streamed.exchanges[i], batch.exchanges[i]))
        << "exchange " << i;
  }
  EXPECT_EQ(streamed.stats.attempts, batch.stats.attempts);
  EXPECT_EQ(streamed.stats.attempts_inferred, batch.stats.attempts_inferred);
  EXPECT_EQ(streamed.stats.exchanges, batch.stats.exchanges);
  EXPECT_EQ(streamed.stats.exchanges_inferred,
            batch.stats.exchanges_inferred);
  EXPECT_EQ(streamed.stats.orphan_acks, batch.stats.orphan_acks);
  EXPECT_EQ(streamed.stats.sequence_gaps_flushed,
            batch.stats.sequence_gaps_flushed);
}

}  // namespace jig::testing
