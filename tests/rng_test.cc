#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace jig {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LE(same, 1);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
  }
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoolProbabilityRoughlyCorrect) {
  Rng rng(13);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) heads += rng.NextBool(0.3);
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, GaussianScaled) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double e = rng.NextExponential(4.0);
    EXPECT_GE(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, HeavyTailBounded) {
  Rng rng(29);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.NextHeavyTail(100.0, 10000.0, 1.2);
    EXPECT_GE(v, 100.0 * 0.999);
    EXPECT_LE(v, 10000.0 * 1.001);
  }
}

TEST(Rng, ForkIndependence) {
  Rng parent(31);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LE(same, 1);
}

TEST(Rng, ForkDeterministic) {
  Rng p1(33), p2(33);
  Rng a = p1.Fork(42);
  Rng b = p2.Fork(42);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

class RngBoundTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundTest, CoversFullRangeEventually) {
  const std::uint64_t bound = GetParam();
  Rng rng(bound * 7 + 1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 3000 && seen.size() < bound; ++i) {
    seen.insert(rng.NextBelow(bound));
  }
  EXPECT_EQ(seen.size(), bound);
}

INSTANTIATE_TEST_SUITE_P(SmallBounds, RngBoundTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

}  // namespace
}  // namespace jig
