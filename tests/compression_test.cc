#include "util/compression.h"

#include "util/byte_io.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace jig {
namespace {

Bytes RandomBytes(std::size_t n, std::uint64_t seed, int alphabet = 256) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.NextBelow(alphabet));
  }
  return out;
}

TEST(Compression, EmptyRoundtrip) {
  const Bytes empty;
  const auto packed = LzCompress(empty);
  EXPECT_EQ(LzDecompress(packed), empty);
}

TEST(Compression, RepetitiveDataShrinks) {
  Bytes data(10000, 0xAB);
  const auto packed = LzCompress(data);
  EXPECT_LT(packed.size(), data.size() / 10);
  EXPECT_EQ(LzDecompress(packed), data);
}

TEST(Compression, CaptureLikeDataShrinks) {
  // 802.11 captures repeat headers heavily: simulate with a repeating
  // 36-byte header + varying payload bytes.
  Bytes data;
  Rng rng(5);
  for (int frame = 0; frame < 200; ++frame) {
    for (int i = 0; i < 36; ++i) data.push_back(static_cast<std::uint8_t>(i));
    for (int i = 0; i < 20; ++i) {
      data.push_back(static_cast<std::uint8_t>(rng.NextBelow(256)));
    }
  }
  const auto packed = LzCompress(data);
  EXPECT_LT(packed.size(), data.size() * 2 / 3);
  EXPECT_EQ(LzDecompress(packed), data);
}

TEST(Compression, IncompressibleDataSurvives) {
  const auto data = RandomBytes(4096, 99);
  const auto packed = LzCompress(data);
  EXPECT_EQ(LzDecompress(packed), data);
  // Worst-case expansion is bounded (1 control byte per 128 literals + hdr).
  EXPECT_LT(packed.size(), data.size() + data.size() / 64 + 64);
}

TEST(Compression, OverlappingMatchRun) {
  // "abcabcabc..." forces overlapping match copies (dist < len).
  Bytes data;
  for (int i = 0; i < 1000; ++i) data.push_back("abc"[i % 3]);
  const auto packed = LzCompress(data);
  EXPECT_EQ(LzDecompress(packed), data);
}

TEST(Compression, RejectsTruncatedHeader) {
  EXPECT_THROW(LzDecompress(Bytes{1, 2}), std::runtime_error);
}

TEST(Compression, RejectsCorruptStream) {
  Bytes data(1000, 0x77);
  auto packed = LzCompress(data);
  // Declare a larger raw size than the stream produces.
  packed[0] ^= 0xFF;
  EXPECT_THROW(LzDecompress(packed), std::runtime_error);
}

TEST(Compression, RejectsBadDistance) {
  // Hand-craft: raw_size=4, match token with distance beyond output.
  Bytes bad = {4, 0, 0, 0, 0x80, 9, 0};
  EXPECT_THROW(LzDecompress(bad), std::runtime_error);
}

class CompressionRoundtripTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(CompressionRoundtripTest, Roundtrip) {
  const auto [size, alphabet] = GetParam();
  const auto data = RandomBytes(size, size * 131 + alphabet, alphabet);
  EXPECT_EQ(LzDecompress(LzCompress(data)), data);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndAlphabets, CompressionRoundtripTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 15, 16, 17, 100, 1000,
                                         65535, 65536, 200000),
                       ::testing::Values(2, 16, 256)));

}  // namespace
}  // namespace jig
