#include "util/compression.h"

#include "util/byte_io.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace jig {
namespace {

Bytes RandomBytes(std::size_t n, std::uint64_t seed, int alphabet = 256) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.NextBelow(alphabet));
  }
  return out;
}

TEST(Compression, EmptyRoundtrip) {
  const Bytes empty;
  const auto packed = LzCompress(empty);
  EXPECT_EQ(LzDecompress(packed), empty);
}

TEST(Compression, RepetitiveDataShrinks) {
  Bytes data(10000, 0xAB);
  const auto packed = LzCompress(data);
  EXPECT_LT(packed.size(), data.size() / 10);
  EXPECT_EQ(LzDecompress(packed), data);
}

TEST(Compression, CaptureLikeDataShrinks) {
  // 802.11 captures repeat headers heavily: simulate with a repeating
  // 36-byte header + varying payload bytes.
  Bytes data;
  Rng rng(5);
  for (int frame = 0; frame < 200; ++frame) {
    for (int i = 0; i < 36; ++i) data.push_back(static_cast<std::uint8_t>(i));
    for (int i = 0; i < 20; ++i) {
      data.push_back(static_cast<std::uint8_t>(rng.NextBelow(256)));
    }
  }
  const auto packed = LzCompress(data);
  EXPECT_LT(packed.size(), data.size() * 2 / 3);
  EXPECT_EQ(LzDecompress(packed), data);
}

TEST(Compression, IncompressibleDataSurvives) {
  const auto data = RandomBytes(4096, 99);
  const auto packed = LzCompress(data);
  EXPECT_EQ(LzDecompress(packed), data);
  // Worst-case expansion is bounded (1 control byte per 128 literals + hdr).
  EXPECT_LT(packed.size(), data.size() + data.size() / 64 + 64);
}

TEST(Compression, OverlappingMatchRun) {
  // "abcabcabc..." forces overlapping match copies (dist < len).
  Bytes data;
  for (int i = 0; i < 1000; ++i) data.push_back("abc"[i % 3]);
  const auto packed = LzCompress(data);
  EXPECT_EQ(LzDecompress(packed), data);
}

TEST(Compression, RejectsTruncatedHeader) {
  EXPECT_THROW(LzDecompress(Bytes{1, 2}), std::runtime_error);
}

TEST(Compression, RejectsCorruptStream) {
  Bytes data(1000, 0x77);
  auto packed = LzCompress(data);
  // Declare a larger raw size than the stream produces.
  packed[0] ^= 0xFF;
  EXPECT_THROW(LzDecompress(packed), std::runtime_error);
}

TEST(Compression, RejectsBadDistance) {
  // Hand-craft: raw_size=4, match token with distance beyond output.
  Bytes bad = {4, 0, 0, 0, 0x80, 9, 0};
  EXPECT_THROW(LzDecompress(bad), std::runtime_error);
}

class CompressionRoundtripTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(CompressionRoundtripTest, Roundtrip) {
  const auto [size, alphabet] = GetParam();
  const auto data = RandomBytes(size, size * 131 + alphabet, alphabet);
  EXPECT_EQ(LzDecompress(LzCompress(data)), data);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndAlphabets, CompressionRoundtripTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 15, 16, 17, 100, 1000,
                                         65535, 65536, 200000),
                       ::testing::Values(2, 16, 256)));

// ---- compression levels ---------------------------------------------------

TEST(CompressionLevels, FastLevelRoundtripsEveryShape) {
  for (std::size_t size : {1u, 5u, 100u, 65536u, 200000u}) {
    for (int alphabet : {2, 16, 256}) {
      const auto data = RandomBytes(size, size * 733 + alphabet, alphabet);
      EXPECT_EQ(LzDecompress(LzCompress(data, LzLevel::kFast)), data)
          << "size " << size << " alphabet " << alphabet;
    }
  }
}

TEST(CompressionLevels, LevelsShareOneTokenFormat) {
  // Both levels feed the same decoder and reproduce the same bytes; the
  // deeper finder only ever finds better matches, never a new format.
  Bytes data;
  Rng rng(17);
  for (int frame = 0; frame < 300; ++frame) {
    for (int i = 0; i < 36; ++i) data.push_back(static_cast<std::uint8_t>(i));
    for (int i = 0; i < 24; ++i) {
      data.push_back(static_cast<std::uint8_t>(rng.NextBelow(64)));
    }
  }
  const auto fast = LzCompress(data, LzLevel::kFast);
  const auto deep = LzCompress(data, LzLevel::kDefault);
  EXPECT_EQ(LzDecompress(fast), data);
  EXPECT_EQ(LzDecompress(deep), data);
  EXPECT_LE(deep.size(), fast.size());
}

TEST(CompressionLevels, CompressionIsDeterministicPerLevel) {
  const auto data = RandomBytes(50000, 4242, 32);
  EXPECT_EQ(LzCompress(data, LzLevel::kFast),
            LzCompress(data, LzLevel::kFast));
  EXPECT_EQ(LzCompress(data, LzLevel::kDefault),
            LzCompress(data, LzLevel::kDefault));
}

TEST(CompressionLevels, DecodesLegacyGreedyFixture) {
  // Hand-assembled stream in the frozen on-disk token format (the bytes
  // the original greedy matcher emitted for "abcdabcd"): a 4-literal run
  // then a length-4 match at distance 4.  Blocks written before the
  // hash-chain finder must keep decoding forever.
  const Bytes fixture = {8,    0,   0,   0,    // raw_size = 8
                         0x03, 'a', 'b', 'c', 'd',
                         0x80, 4,   0};        // match len 4, dist 4
  const Bytes expected = {'a', 'b', 'c', 'd', 'a', 'b', 'c', 'd'};
  EXPECT_EQ(LzDecompress(fixture), expected);
}

// ---- error taxonomy -------------------------------------------------------
//
// Truncation (more bytes could repair it) and corruption (no bytes ever
// could) surface as distinct types so the trace layer can map them onto
// TraceTruncatedError / TraceCorruptError.

TEST(CompressionErrors, ShortHeaderIsTruncated) {
  EXPECT_THROW(LzDecompress(Bytes{}), LzTruncatedError);
  EXPECT_THROW(LzDecompress(Bytes{1, 2}), LzTruncatedError);
}

TEST(CompressionErrors, CutLiteralRunIsTruncated) {
  const Bytes cut = {4, 0, 0, 0, 0x03, 'a'};  // run promises 4, holds 1
  EXPECT_THROW(LzDecompress(cut), LzTruncatedError);
}

TEST(CompressionErrors, CutMatchTokenIsTruncated) {
  const Bytes cut = {8, 0, 0, 0, 0x03, 'a', 'b', 'c', 'd',
                     0x80, 4};  // one distance byte missing
  EXPECT_THROW(LzDecompress(cut), LzTruncatedError);
}

TEST(CompressionErrors, ShortOutputIsTruncated) {
  const Bytes cut = {8, 0, 0, 0, 0x03, 'a', 'b', 'c', 'd'};  // 4 of 8
  EXPECT_THROW(LzDecompress(cut), LzTruncatedError);
}

TEST(CompressionErrors, BadDistanceIsCorrupt) {
  EXPECT_THROW(LzDecompress(Bytes{4, 0, 0, 0, 0x80, 9, 0}), LzCorruptError);
  const Bytes zero_dist = {8, 0, 0, 0, 0x03, 'a', 'b', 'c', 'd',
                           0x80, 0, 0};
  EXPECT_THROW(LzDecompress(zero_dist), LzCorruptError);
}

TEST(CompressionErrors, OverlongOutputIsCorrupt) {
  // Declared raw size 4 but the stream produces 8: garbage, not a torn
  // write — waiting for more bytes cannot fix it.
  const Bytes overlong = {4, 0, 0, 0, 0x03, 'a', 'b', 'c', 'd',
                          0x80, 1, 0};
  EXPECT_THROW(LzDecompress(overlong), LzCorruptError);
}

TEST(CompressionErrors, BothKindsAreLzErrorsAndRuntimeErrors) {
  // Pre-taxonomy call sites caught std::runtime_error; that must keep
  // working.
  EXPECT_THROW(LzDecompress(Bytes{1, 2}), LzError);
  EXPECT_THROW(LzDecompress(Bytes{1, 2}), std::runtime_error);
  EXPECT_THROW(LzDecompress(Bytes{4, 0, 0, 0, 0x80, 9, 0}), LzError);
  EXPECT_THROW(LzDecompress(Bytes{4, 0, 0, 0, 0x80, 9, 0}),
               std::runtime_error);
}

}  // namespace
}  // namespace jig
