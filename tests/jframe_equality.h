// Full-field equality for jframe streams and unifier stats, shared by the
// parallel-determinism tests (pipeline_test.cc) and the live-vs-batch
// equivalence suite (live_ingest_test.cc).  Keep these comparators in sync
// with JFrame / FrameInstance / UnifyStats: a field missing here silently
// drops out of every byte-equality pin.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "jigsaw/jframe.h"
#include "jigsaw/unifier.h"

namespace jig::testing {

// Full-field comparison of two jframe streams: timestamps, dispersion,
// payload identity (digest + serialized representative frame), and every
// per-radio instance.
inline void ExpectIdenticalStreams(const std::vector<JFrame>& a,
                                   const std::vector<JFrame>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("jframe " + std::to_string(i));
    EXPECT_EQ(a[i].timestamp, b[i].timestamp);
    EXPECT_EQ(a[i].dispersion, b[i].dispersion);
    EXPECT_EQ(a[i].channel, b[i].channel);
    EXPECT_EQ(a[i].rate, b[i].rate);
    EXPECT_EQ(a[i].wire_len, b[i].wire_len);
    EXPECT_EQ(a[i].digest, b[i].digest);
    EXPECT_EQ(a[i].frame.Serialize(), b[i].frame.Serialize());
    ASSERT_EQ(a[i].instances.size(), b[i].instances.size());
    for (std::size_t k = 0; k < a[i].instances.size(); ++k) {
      const FrameInstance& x = a[i].instances[k];
      const FrameInstance& y = b[i].instances[k];
      EXPECT_EQ(x.radio, y.radio);
      EXPECT_EQ(x.local_timestamp, y.local_timestamp);
      EXPECT_EQ(x.universal_timestamp, y.universal_timestamp);
      EXPECT_EQ(x.rssi_dbm, y.rssi_dbm);
      EXPECT_EQ(x.outcome, y.outcome);
    }
  }
}

inline void ExpectEqualStats(const UnifyStats& a, const UnifyStats& b) {
  EXPECT_EQ(a.events_in, b.events_in);
  EXPECT_EQ(a.valid_in, b.valid_in);
  EXPECT_EQ(a.fcs_error_in, b.fcs_error_in);
  EXPECT_EQ(a.phy_error_in, b.phy_error_in);
  EXPECT_EQ(a.events_unified, b.events_unified);
  EXPECT_EQ(a.jframes, b.jframes);
  EXPECT_EQ(a.error_instances_attached, b.error_instances_attached);
  EXPECT_EQ(a.error_events_dropped, b.error_events_dropped);
  EXPECT_EQ(a.resyncs, b.resyncs);
}

}  // namespace jig::testing
