#include "trace/trace_file.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "trace/trace_set.h"
#include "util/rng.h"

namespace jig {
namespace {

namespace fs = std::filesystem;

class TraceFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("jigt_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static TraceHeader Header(RadioId radio = 3) {
    TraceHeader h;
    h.radio = radio;
    h.pod = 1;
    h.monitor = 2;
    h.channel = Channel::kCh6;
    h.ntp_utc_of_local_zero_us = 123456789;
    return h;
  }

  static std::vector<CaptureRecord> MakeRecords(std::size_t n,
                                                std::uint64_t seed = 5) {
    Rng rng(seed);
    std::vector<CaptureRecord> records;
    LocalMicros ts = 1000;
    for (std::size_t i = 0; i < n; ++i) {
      CaptureRecord rec;
      ts += rng.NextInt(1, 2000);
      rec.timestamp = ts;
      rec.outcome = i % 7 == 0 ? RxOutcome::kFcsError
                    : i % 11 == 0 ? RxOutcome::kPhyError
                                  : RxOutcome::kOk;
      rec.rssi_dbm = static_cast<float>(-40 - rng.NextInt(0, 50));
      rec.rate = static_cast<PhyRate>(rng.NextBelow(12));
      if (rec.outcome != RxOutcome::kPhyError) {
        rec.bytes.resize(14 + rng.NextBelow(200));
        for (auto& b : rec.bytes) {
          b = static_cast<std::uint8_t>(rng.NextBelow(256));
        }
        rec.orig_len = static_cast<std::uint32_t>(rec.bytes.size());
      }
      records.push_back(std::move(rec));
    }
    return records;
  }

  fs::path dir_;
};

TEST_F(TraceFileTest, RoundtripPreservesRecords) {
  const auto path = dir_ / "r3.jigt";
  const auto records = MakeRecords(1500);
  {
    TraceFileWriter writer(path, Header(), /*records_per_block=*/128);
    for (const auto& rec : records) writer.Append(rec);
    writer.Finish();
    EXPECT_EQ(writer.records_written(), records.size());
  }
  TraceFileReader reader(path);
  EXPECT_EQ(reader.header().radio, 3);
  EXPECT_EQ(reader.header().channel, Channel::kCh6);
  EXPECT_EQ(reader.header().ntp_utc_of_local_zero_us, 123456789);
  EXPECT_EQ(reader.TotalRecords(), records.size());
  for (const auto& expected : records) {
    const auto got = reader.Next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->timestamp, expected.timestamp);
    EXPECT_EQ(got->outcome, expected.outcome);
    EXPECT_EQ(got->rate, expected.rate);
    EXPECT_EQ(got->orig_len, expected.orig_len);
    EXPECT_EQ(got->bytes, expected.bytes);
    EXPECT_NEAR(got->rssi_dbm, expected.rssi_dbm, 0.25F);
  }
  EXPECT_FALSE(reader.Next().has_value());
}

TEST_F(TraceFileTest, EmptyTrace) {
  const auto path = dir_ / "empty.jigt";
  {
    TraceFileWriter writer(path, Header());
    writer.Finish();
  }
  TraceFileReader reader(path);
  EXPECT_EQ(reader.TotalRecords(), 0u);
  EXPECT_FALSE(reader.Next().has_value());
}

TEST_F(TraceFileTest, IndexCoversAllBlocks) {
  const auto path = dir_ / "r.jigt";
  const auto records = MakeRecords(1000);
  {
    TraceFileWriter writer(path, Header(), 100);
    for (const auto& rec : records) writer.Append(rec);
    writer.Finish();
  }
  TraceFileReader reader(path);
  EXPECT_EQ(reader.index().size(), 10u);
  std::uint64_t total = 0;
  for (const auto& e : reader.index()) {
    EXPECT_LE(e.first_timestamp, e.last_timestamp);
    total += e.record_count;
  }
  EXPECT_EQ(total, 1000u);
}

TEST_F(TraceFileTest, SeekToTimestamp) {
  const auto path = dir_ / "r.jigt";
  const auto records = MakeRecords(800);
  {
    TraceFileWriter writer(path, Header(), 64);
    for (const auto& rec : records) writer.Append(rec);
    writer.Finish();
  }
  TraceFileReader reader(path);
  const LocalMicros target = records[400].timestamp;
  reader.SeekToTimestamp(target);
  const auto got = reader.Next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->timestamp, target);
  // Seek past the end yields nothing.
  reader.SeekToTimestamp(records.back().timestamp + 1);
  EXPECT_FALSE(reader.Next().has_value());
  // Rewind restarts from the first record.
  reader.Rewind();
  EXPECT_EQ(reader.Next()->timestamp, records.front().timestamp);
}

TEST_F(TraceFileTest, CompressionShrinksCaptures) {
  // Realistic captures (repeated headers) must compress.
  const auto path = dir_ / "r.jigt";
  std::vector<CaptureRecord> records;
  for (int i = 0; i < 2000; ++i) {
    CaptureRecord rec;
    rec.timestamp = 1000 + i * 400;
    rec.outcome = RxOutcome::kOk;
    rec.rate = PhyRate::kB2;
    rec.bytes.assign(80, 0xAA);
    rec.bytes[30] = static_cast<std::uint8_t>(i);
    rec.orig_len = 80;
    records.push_back(rec);
  }
  {
    TraceFileWriter writer(path, Header(), 256);
    for (const auto& rec : records) writer.Append(rec);
    writer.Finish();
  }
  const auto file_size = fs::file_size(path);
  const std::size_t raw_size = 2000 * (80 + 16);
  EXPECT_LT(file_size, raw_size / 4);
}

TEST_F(TraceFileTest, UnfinishedFileRejected) {
  const auto path = dir_ / "bad.jigt";
  {
    std::FILE* f = std::fopen(path.string().c_str(), "wb");
    std::fwrite("JIGT\x01\x00\x00\x00", 1, 8, f);
    std::fclose(f);
  }
  EXPECT_THROW(TraceFileReader reader(path), std::runtime_error);
}

TEST_F(TraceFileTest, MissingFileRejected) {
  EXPECT_THROW(TraceFileReader reader(dir_ / "nope.jigt"),
               std::runtime_error);
}

TEST_F(TraceFileTest, TraceSetDirectoryRoundtrip) {
  TraceSet set;
  for (RadioId r = 0; r < 5; ++r) {
    auto header = Header(r);
    set.Add(std::make_unique<MemoryTrace>(header, MakeRecords(100, r)));
  }
  const auto paths = set.WriteDirectory(dir_ / "traces");
  EXPECT_EQ(paths.size(), 5u);

  TraceSet loaded = TraceSet::OpenDirectory(dir_ / "traces");
  ASSERT_EQ(loaded.size(), 5u);
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.at(i).header().radio, static_cast<RadioId>(i));
    // Contents must match the in-memory source.
    set.at(i).Rewind();
    std::size_t count = 0;
    while (auto expected = set.at(i).Next()) {
      const auto got = loaded.at(i).Next();
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->timestamp, expected->timestamp);
      EXPECT_EQ(got->bytes, expected->bytes);
      ++count;
    }
    EXPECT_FALSE(loaded.at(i).Next().has_value());
    EXPECT_EQ(count, 100u);
  }
}

}  // namespace
}  // namespace jig
