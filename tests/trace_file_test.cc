#include "trace/trace_file.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "trace/tail_trace.h"
#include "trace/trace_set.h"
#include "util/rng.h"

namespace jig {
namespace {

namespace fs = std::filesystem;

class TraceFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("jigt_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static TraceHeader Header(RadioId radio = 3) {
    TraceHeader h;
    h.radio = radio;
    h.pod = 1;
    h.monitor = 2;
    h.channel = Channel::kCh6;
    h.ntp_utc_of_local_zero_us = 123456789;
    return h;
  }

  static std::vector<CaptureRecord> MakeRecords(std::size_t n,
                                                std::uint64_t seed = 5) {
    Rng rng(seed);
    std::vector<CaptureRecord> records;
    LocalMicros ts = 1000;
    for (std::size_t i = 0; i < n; ++i) {
      CaptureRecord rec;
      ts += rng.NextInt(1, 2000);
      rec.timestamp = ts;
      rec.outcome = i % 7 == 0 ? RxOutcome::kFcsError
                    : i % 11 == 0 ? RxOutcome::kPhyError
                                  : RxOutcome::kOk;
      rec.rssi_dbm = static_cast<float>(-40 - rng.NextInt(0, 50));
      rec.rate = static_cast<PhyRate>(rng.NextBelow(12));
      if (rec.outcome != RxOutcome::kPhyError) {
        rec.bytes.resize(14 + rng.NextBelow(200));
        for (auto& b : rec.bytes) {
          b = static_cast<std::uint8_t>(rng.NextBelow(256));
        }
        rec.orig_len = static_cast<std::uint32_t>(rec.bytes.size());
      }
      records.push_back(std::move(rec));
    }
    return records;
  }

  fs::path dir_;
};

TEST_F(TraceFileTest, RoundtripPreservesRecords) {
  const auto path = dir_ / "r3.jigt";
  const auto records = MakeRecords(1500);
  {
    TraceFileWriter writer(path, Header(), /*records_per_block=*/128);
    for (const auto& rec : records) writer.Append(rec);
    writer.Finish();
    EXPECT_EQ(writer.records_written(), records.size());
  }
  TraceFileReader reader(path);
  EXPECT_EQ(reader.header().radio, 3);
  EXPECT_EQ(reader.header().channel, Channel::kCh6);
  EXPECT_EQ(reader.header().ntp_utc_of_local_zero_us, 123456789);
  EXPECT_EQ(reader.TotalRecords(), records.size());
  for (const auto& expected : records) {
    const auto got = reader.Next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->timestamp, expected.timestamp);
    EXPECT_EQ(got->outcome, expected.outcome);
    EXPECT_EQ(got->rate, expected.rate);
    EXPECT_EQ(got->orig_len, expected.orig_len);
    EXPECT_EQ(got->bytes, expected.bytes);
    EXPECT_NEAR(got->rssi_dbm, expected.rssi_dbm, 0.25F);
  }
  EXPECT_FALSE(reader.Next().has_value());
}

TEST_F(TraceFileTest, EmptyTrace) {
  const auto path = dir_ / "empty.jigt";
  {
    TraceFileWriter writer(path, Header());
    writer.Finish();
  }
  TraceFileReader reader(path);
  EXPECT_EQ(reader.TotalRecords(), 0u);
  EXPECT_FALSE(reader.Next().has_value());
}

TEST_F(TraceFileTest, IndexCoversAllBlocks) {
  const auto path = dir_ / "r.jigt";
  const auto records = MakeRecords(1000);
  {
    TraceFileWriter writer(path, Header(), 100);
    for (const auto& rec : records) writer.Append(rec);
    writer.Finish();
  }
  TraceFileReader reader(path);
  EXPECT_EQ(reader.index().size(), 10u);
  std::uint64_t total = 0;
  for (const auto& e : reader.index()) {
    EXPECT_LE(e.first_timestamp, e.last_timestamp);
    total += e.record_count;
  }
  EXPECT_EQ(total, 1000u);
}

TEST_F(TraceFileTest, SeekToTimestamp) {
  const auto path = dir_ / "r.jigt";
  const auto records = MakeRecords(800);
  {
    TraceFileWriter writer(path, Header(), 64);
    for (const auto& rec : records) writer.Append(rec);
    writer.Finish();
  }
  TraceFileReader reader(path);
  const LocalMicros target = records[400].timestamp;
  reader.SeekToTimestamp(target);
  const auto got = reader.Next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->timestamp, target);
  // Seek past the end yields nothing.
  reader.SeekToTimestamp(records.back().timestamp + 1);
  EXPECT_FALSE(reader.Next().has_value());
  // Rewind restarts from the first record.
  reader.Rewind();
  EXPECT_EQ(reader.Next()->timestamp, records.front().timestamp);
}

TEST_F(TraceFileTest, CompressionShrinksCaptures) {
  // Realistic captures (repeated headers) must compress.
  const auto path = dir_ / "r.jigt";
  std::vector<CaptureRecord> records;
  for (int i = 0; i < 2000; ++i) {
    CaptureRecord rec;
    rec.timestamp = 1000 + i * 400;
    rec.outcome = RxOutcome::kOk;
    rec.rate = PhyRate::kB2;
    rec.bytes.assign(80, 0xAA);
    rec.bytes[30] = static_cast<std::uint8_t>(i);
    rec.orig_len = 80;
    records.push_back(rec);
  }
  {
    TraceFileWriter writer(path, Header(), 256);
    for (const auto& rec : records) writer.Append(rec);
    writer.Finish();
  }
  const auto file_size = fs::file_size(path);
  const std::size_t raw_size = 2000 * (80 + 16);
  EXPECT_LT(file_size, raw_size / 4);
}

TEST_F(TraceFileTest, UnfinishedFileRejected) {
  const auto path = dir_ / "bad.jigt";
  {
    std::FILE* f = std::fopen(path.string().c_str(), "wb");
    std::fwrite("JIGT\x01\x00\x00\x00", 1, 8, f);
    std::fclose(f);
  }
  EXPECT_THROW(TraceFileReader reader(path), std::runtime_error);
}

// The error-taxonomy regression pins (fail on the pre-fix reader, which
// threw one undifferentiated runtime_error for all of these):

// A partial write — the file ends mid-structure — must be reported as
// truncation, distinctly from corruption: the caller's remedy is to wait
// for the writer (or tail-follow), not to discard the trace.
TEST_F(TraceFileTest, TruncatedFileReportsTruncationNotCorruption) {
  const auto path = dir_ / "cut.jigt";
  const auto records = MakeRecords(400);
  {
    TraceFileWriter writer(path, Header(), 64);
    for (const auto& rec : records) writer.Append(rec);
    writer.Finish();
  }
  // Cut into the index trailer: an in-progress (or torn) finalize.
  fs::resize_file(path, fs::file_size(path) - 5);
  EXPECT_THROW(TraceFileReader reader(path), TraceTruncatedError);

  // Magic-only stub (a writer that died right after open): also truncated.
  const auto stub = dir_ / "stub.jigt";
  std::FILE* f = std::fopen(stub.string().c_str(), "wb");
  std::fwrite("JIGT\x01\x00\x00\x00", 1, 8, f);
  std::fclose(f);
  EXPECT_THROW(TraceFileReader reader(stub), TraceTruncatedError);

  // Garbage magic is corruption — expressly NOT the truncated class.
  const auto junk = dir_ / "junk.jigt";
  f = std::fopen(junk.string().c_str(), "wb");
  std::fwrite("PCAPPCAPPCAPPCAP", 1, 16, f);
  std::fclose(f);
  try {
    TraceFileReader reader(junk);
    FAIL() << "corrupt magic accepted";
  } catch (const TraceTruncatedError&) {
    FAIL() << "corrupt magic misreported as truncation";
  } catch (const TraceCorruptError&) {
    // correct
  }
}

// A truncated *trailing record*: the index promises a block the data
// region does not fully contain.  Every earlier record must still read
// cleanly (distinct from EOF), and the failure must be the truncated
// class (distinct from corruption).
TEST_F(TraceFileTest, TruncatedTrailingRecordDistinctFromEofAndCorruption) {
  const auto path = dir_ / "torn.jigt";
  const auto records = MakeRecords(640);
  {
    TraceFileWriter writer(path, Header(), 64);
    for (const auto& rec : records) writer.Append(rec);
    writer.Finish();
  }
  std::uint64_t last_block_offset = 0;
  std::uint32_t last_block_records = 0;
  {
    TraceFileReader reader(path);
    ASSERT_EQ(reader.index().size(), 10u);
    last_block_offset = reader.index().back().file_offset;
    last_block_records = reader.index().back().record_count;
  }
  // Overstate the last block's length: plausible (under the sanity bound)
  // but beyond what the file holds — exactly what a torn tail write looks
  // like to a reader with an intact index.
  {
    std::FILE* f = std::fopen(path.string().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(last_block_offset), SEEK_SET),
              0);
    const std::uint8_t big_len[4] = {0x00, 0x00, 0x10, 0x00};  // 1 MiB
    std::fwrite(big_len, 1, 4, f);
    std::fclose(f);
  }
  TraceFileReader reader(path);
  const std::size_t intact = records.size() - last_block_records;
  for (std::size_t i = 0; i < intact; ++i) {
    const auto got = reader.Next();  // everything before the tear is fine
    ASSERT_TRUE(got.has_value()) << "record " << i;
    EXPECT_EQ(got->timestamp, records[i].timestamp);
  }
  try {
    reader.Next();
    FAIL() << "torn trailing block read as data or EOF";
  } catch (const TraceCorruptError&) {
    FAIL() << "torn trailing block misreported as corruption";
  } catch (const TraceTruncatedError&) {
    // correct: distinctly truncated — not EOF, not corruption
  }
}

// Garbage inside an indexed block (absurd length word, malformed
// compression) is the corrupt class: re-reading cannot help.
TEST_F(TraceFileTest, GarbageBlockContentsReportCorruption) {
  const auto path = dir_ / "garbage.jigt";
  const auto records = MakeRecords(128);
  {
    TraceFileWriter writer(path, Header(), 64);
    for (const auto& rec : records) writer.Append(rec);
    writer.Finish();
  }
  std::uint64_t block0_offset = 0;
  {
    TraceFileReader reader(path);
    block0_offset = reader.index().front().file_offset;
  }
  {
    std::FILE* f = std::fopen(path.string().c_str(), "r+b");
    ASSERT_EQ(std::fseek(f, static_cast<long>(block0_offset), SEEK_SET), 0);
    const std::uint8_t garbage_len[4] = {0xFF, 0xFF, 0xFF, 0x7F};
    std::fwrite(garbage_len, 1, 4, f);
    std::fclose(f);
  }
  TraceFileReader reader(path);
  EXPECT_THROW(reader.Next(), TraceCorruptError);
}

// Regression: the pre-fix tail reader reset finalized_ = false in
// Rewind(), so a consumer that saw Finalized() == true, rewound for the
// global late-bootstrap pass, and drained the replay would observe the
// trace flap back to "still capturing" — and a socket/wing consumer that
// tears down its re-poll loop on the first true would hang forever.
// Finalize must latch across Rewind(), and the replay must still yield
// every record.
TEST_F(TraceFileTest, TailFinalizeLatchesAcrossRewind) {
  const auto path = dir_ / "latch.jigt";
  const auto records = MakeRecords(300);
  {
    TraceFileWriter writer(path, Header(), /*records_per_block=*/64);
    for (const auto& rec : records) writer.Append(rec);
    writer.Finish();
  }
  auto tail = TailFileTrace::TryOpen(path);
  ASSERT_NE(tail, nullptr);
  std::size_t n = 0;
  while (tail->Next().has_value()) ++n;
  ASSERT_EQ(n, records.size());
  ASSERT_TRUE(tail->Finalized());

  tail->Rewind();
  // The latch: Finalized() must NOT flap back to false after Rewind.
  EXPECT_TRUE(tail->Finalized());

  // And the rewind must still replay the full capture, stopping cleanly
  // at the (already consumed) finalize marker.
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto got = tail->Next();
    ASSERT_TRUE(got.has_value()) << "record " << i << " lost after rewind";
    EXPECT_EQ(got->timestamp, records[i].timestamp);
    EXPECT_EQ(got->bytes, records[i].bytes);
  }
  EXPECT_FALSE(tail->Next().has_value());
  EXPECT_TRUE(tail->Finalized());
}

TEST_F(TraceFileTest, MissingFileRejected) {
  EXPECT_THROW(TraceFileReader reader(dir_ / "nope.jigt"),
               std::runtime_error);
}

TEST_F(TraceFileTest, TraceSetDirectoryRoundtrip) {
  TraceSet set;
  for (RadioId r = 0; r < 5; ++r) {
    auto header = Header(r);
    set.Add(std::make_unique<MemoryTrace>(header, MakeRecords(100, r)));
  }
  const auto paths = set.WriteDirectory(dir_ / "traces");
  EXPECT_EQ(paths.size(), 5u);

  TraceSet loaded = TraceSet::OpenDirectory(dir_ / "traces");
  ASSERT_EQ(loaded.size(), 5u);
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.at(i).header().radio, static_cast<RadioId>(i));
    // Contents must match the in-memory source.
    set.at(i).Rewind();
    std::size_t count = 0;
    while (auto expected = set.at(i).Next()) {
      const auto got = loaded.at(i).Next();
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->timestamp, expected->timestamp);
      EXPECT_EQ(got->bytes, expected->bytes);
      ++count;
    }
    EXPECT_FALSE(loaded.at(i).Next().has_value());
    EXPECT_EQ(count, 100u);
  }
}

}  // namespace
}  // namespace jig
