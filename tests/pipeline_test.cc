// Merge-pipeline tests: configuration validation, shard-mergeable stats,
// channel partitioning, and the parallel determinism contract — the
// channel-sharded merge (threads=N) must emit a stream byte-identical to
// the legacy single-threaded merge (threads=1).
#include "jigsaw/pipeline.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>

#include "jframe_equality.h"
#include "sim/scenario.h"
#include "synthetic.h"

namespace jig {
namespace {

using testing::ExpectEqualStats;
using testing::ExpectIdenticalStreams;
using testing::MultiChannelNetwork;

TEST(MergeConfigValidation, RejectsHorizonNotExceedingSearchWindow) {
  TraceSet empty;
  MergeConfig cfg;
  cfg.unifier.search_window = Milliseconds(10);
  cfg.reorder_horizon = Milliseconds(10);  // == window: out-of-order hazard
  EXPECT_THROW(MergeTraces(empty, cfg), std::invalid_argument);
  EXPECT_THROW(MergeTracesStreaming(empty, cfg, [](JFrame&&) {}),
               std::invalid_argument);
  cfg.reorder_horizon = Milliseconds(5);  // < window
  EXPECT_THROW(MergeTraces(empty, cfg), std::invalid_argument);
}

TEST(MergeConfigValidation, RejectsNonPositiveSearchWindow) {
  TraceSet empty;
  MergeConfig cfg;
  cfg.unifier.search_window = 0;
  EXPECT_THROW(MergeTraces(empty, cfg), std::invalid_argument);
}

TEST(MergeConfigValidation, AcceptsDefaultAndWideConfigs) {
  MergeConfig cfg;
  EXPECT_NO_THROW(ValidateMergeConfig(cfg));
  cfg.unifier.search_window = Milliseconds(100);
  cfg.reorder_horizon = Milliseconds(200);
  EXPECT_NO_THROW(ValidateMergeConfig(cfg));
}

TEST(UnifyStatsTest, OperatorPlusEqualsSumsEveryCounter) {
  UnifyStats a;
  a.events_in = 10;
  a.valid_in = 8;
  a.fcs_error_in = 1;
  a.phy_error_in = 1;
  a.events_unified = 7;
  a.jframes = 4;
  a.error_instances_attached = 1;
  a.error_events_dropped = 2;
  a.resyncs = 3;
  UnifyStats b = a;
  b.events_in = 5;
  b.jframes = 2;
  a += b;
  EXPECT_EQ(a.events_in, 15u);
  EXPECT_EQ(a.valid_in, 16u);
  EXPECT_EQ(a.fcs_error_in, 2u);
  EXPECT_EQ(a.phy_error_in, 2u);
  EXPECT_EQ(a.events_unified, 14u);
  EXPECT_EQ(a.jframes, 6u);
  EXPECT_EQ(a.error_instances_attached, 2u);
  EXPECT_EQ(a.error_events_dropped, 4u);
  EXPECT_EQ(a.resyncs, 6u);
  EXPECT_DOUBLE_EQ(a.EventsPerJframe(), 14.0 / 6.0);
}

TEST(UnifyStatsTest, ShardMergedStatsEqualSinglePass) {
  // The parallel path sums per-shard UnifyStats with operator+=; the sum
  // must equal the stats of the legacy single-queue pass over the same
  // multi-channel scenario.
  auto single_traces = MultiChannelNetwork(11).Build();
  auto sharded_traces = MultiChannelNetwork(11).Build();
  MergeConfig single_cfg;  // threads = 1
  MergeConfig sharded_cfg;
  sharded_cfg.threads = 3;
  const auto single = MergeTraces(single_traces, single_cfg);
  const auto sharded = MergeTraces(sharded_traces, sharded_cfg);
  ASSERT_GT(single.stats.jframes, 100u);
  ExpectEqualStats(single.stats, sharded.stats);
}

TEST(BootstrapResultTest, SliceThenMergeReassembles) {
  BootstrapResult full;
  full.offset_us = {1.0, 2.0, 3.0, 4.0};
  full.synced = {true, false, true, true};
  full.reference_frames_considered = 40;
  full.sync_set_size = 3;
  full.max_bfs_depth = 2;

  BootstrapResult merged = full.Slice({0, 2});
  merged += full.Slice({1, 3});
  ASSERT_EQ(merged.offset_us.size(), 4u);
  EXPECT_EQ(merged.offset_us, (std::vector<double>{1.0, 3.0, 2.0, 4.0}));
  EXPECT_EQ(merged.synced, (std::vector<bool>{true, true, false, true}));
  EXPECT_EQ(merged.SyncedCount(), 3u);
  EXPECT_EQ(merged.reference_frames_considered, 80u);
  EXPECT_EQ(merged.max_bfs_depth, 2);
}

TEST(TraceSetPartition, RoundTripsThroughShards) {
  auto traces = MultiChannelNetwork(5).Build();
  ASSERT_EQ(traces.size(), 6u);
  std::vector<RadioId> original_radios;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    original_radios.push_back(traces.at(i).header().radio);
  }

  auto shards = traces.PartitionByChannel();
  EXPECT_TRUE(traces.empty());
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0].channel, Channel::kCh1);
  EXPECT_EQ(shards[1].channel, Channel::kCh6);
  EXPECT_EQ(shards[2].channel, Channel::kCh11);
  for (const auto& shard : shards) {
    ASSERT_EQ(shard.traces.size(), 2u);
    ASSERT_EQ(shard.source_index.size(), 2u);
    for (std::size_t i = 0; i < shard.traces.size(); ++i) {
      EXPECT_EQ(shard.traces.at(i).header().channel, shard.channel);
      EXPECT_EQ(shard.traces.at(i).header().radio,
                original_radios[shard.source_index[i]]);
    }
  }

  traces.AdoptShards(std::move(shards));
  ASSERT_EQ(traces.size(), 6u);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(traces.at(i).header().radio, original_radios[i]);
  }
}

// The determinism contract, satellite-mandated across >= 3 seeded
// multi-channel scenarios: every thread setting produces the same stream.
class ParallelDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelDeterminism, ByteIdenticalAcrossThreadCounts) {
  const std::uint64_t seed = GetParam();
  auto base_traces = MultiChannelNetwork(seed).Build();
  const auto base = MergeTraces(base_traces);  // threads = 1 (legacy)
  ASSERT_GT(base.jframes.size(), 100u);

  for (unsigned threads : {2u, 3u, 0u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto traces = MultiChannelNetwork(seed).Build();
    MergeConfig cfg;
    cfg.threads = threads;
    const auto parallel = MergeTraces(traces, cfg);
    ExpectIdenticalStreams(base.jframes, parallel.jframes);
    ExpectEqualStats(base.stats, parallel.stats);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminism,
                         ::testing::Values(1u, 2u, 3u, 17u));

// The observability contract: metrics are write-only from the pipeline's
// point of view, so toggling the registry on/off must not change a single
// emitted byte — in the legacy single-threaded path or the sharded one.
TEST(MetricsDeterminism, StreamIsByteIdenticalWithMetricsToggled) {
  for (unsigned threads : {1u, 3u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    MergeConfig cfg;
    cfg.threads = threads;

    obs::SetEnabled(true);
    auto on_traces = MultiChannelNetwork(7).Build();
    const auto with_metrics = MergeTraces(on_traces, cfg);
    ASSERT_GT(with_metrics.jframes.size(), 100u);

    obs::SetEnabled(false);
    auto off_traces = MultiChannelNetwork(7).Build();
    const auto without_metrics = MergeTraces(off_traces, cfg);
    obs::SetEnabled(true);

    ExpectIdenticalStreams(with_metrics.jframes, without_metrics.jframes);
    ExpectEqualStats(with_metrics.stats, without_metrics.stats);
  }
}

TEST(ParallelMerge, ScenarioStreamMatchesLegacy) {
  // End-to-end on the full simulator (39-pod channel plan 1/6/1/11): the
  // sharded merge must reproduce the legacy stream exactly.
  ScenarioConfig cfg;
  cfg.seed = 77;
  cfg.duration = Seconds(2);
  cfg.clients = 10;
  cfg.pods_enabled = 6;
  Scenario scenario(cfg);
  scenario.Run();
  auto traces = scenario.TakeTraces();

  const auto legacy = MergeTraces(traces);
  MergeConfig pcfg;
  pcfg.threads = 0;  // auto
  const auto parallel = MergeTraces(traces, pcfg);
  ASSERT_GT(legacy.jframes.size(), 500u);
  ExpectIdenticalStreams(legacy.jframes, parallel.jframes);
  ExpectEqualStats(legacy.stats, parallel.stats);
  // The trace set must be usable again after the parallel run (partition
  // is reversed internally): a third merge sees the same stream.
  const auto again = MergeTraces(traces, pcfg);
  ExpectIdenticalStreams(legacy.jframes, again.jframes);
}

// The performance-knob matrix: mmap'd trace reads, arena recycling and
// thread count are pure speed knobs — every combination must emit the
// stream the defaults emit, byte for byte.  The traces go through a .jigt
// round trip so the mmap'd read path is actually exercised.
TEST(PerfKnobMatrix, ByteIdenticalAcrossMmapArenaThreads) {
  namespace fs = std::filesystem;
  auto mem_traces = MultiChannelNetwork(21).Build();
  const auto base = MergeTraces(mem_traces);  // threads=1, defaults
  ASSERT_GT(base.jframes.size(), 100u);
  const fs::path dir =
      fs::temp_directory_path() / "jig_pipeline_knob_matrix";
  fs::remove_all(dir);
  mem_traces.WriteDirectory(dir);

  for (bool use_mmap : {false, true}) {
    for (bool use_arena : {false, true}) {
      for (unsigned threads : {1u, 2u, 0u}) {
        SCOPED_TRACE("mmap=" + std::to_string(use_mmap) +
                     " arena=" + std::to_string(use_arena) +
                     " threads=" + std::to_string(threads));
        TraceReadOptions opts;
        opts.use_mmap = use_mmap;
        TraceSet traces = TraceSet::OpenDirectory(dir, opts);
        ASSERT_EQ(traces.size(), mem_traces.size());
        MergeConfig cfg;
        cfg.threads = threads;
        cfg.use_arena = use_arena;
        const auto result = MergeTraces(traces, cfg);
        ExpectIdenticalStreams(base.jframes, result.jframes);
        ExpectEqualStats(base.stats, result.stats);
      }
    }
  }
  fs::remove_all(dir);
}

// pin_threads only nails workers to CPUs; the round barrier fixes the
// merge order wherever they run, so the stream must not move by a byte.
TEST(PerfKnobMatrix, PinnedWorkersMatchUnpinnedStream) {
  auto base_traces = MultiChannelNetwork(23).Build();
  const auto base = MergeTraces(base_traces);
  ASSERT_GT(base.jframes.size(), 100u);
  for (unsigned threads : {2u, 0u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto traces = MultiChannelNetwork(23).Build();
    MergeConfig cfg;
    cfg.threads = threads;
    cfg.pin_threads = true;
    const auto pinned = MergeTraces(traces, cfg);
    ExpectIdenticalStreams(base.jframes, pinned.jframes);
    ExpectEqualStats(base.stats, pinned.stats);
  }
  // The pinning path must report rejected affinity calls instead of
  // swallowing the return value: the failure counter is registered (even if
  // zero on an unrestricted machine), so a cpuset-restricted deployment can
  // tell "pinned" from "silently fell back".
  const auto snapshot = obs::MetricRegistry::Global().Collect();
  ASSERT_NE(snapshot.Find("jig_pipeline_pin_failures_total"), nullptr);
  EXPECT_GE(snapshot.Value("jig_pipeline_pin_failures_total"), 0);
}

TEST(ParallelMerge, SinkRunsOnCallingThread) {
  auto traces = MultiChannelNetwork(9).Build();
  MergeConfig cfg;
  cfg.threads = 3;
  const auto caller = std::this_thread::get_id();
  std::size_t delivered = 0;
  bool all_on_caller = true;
  MergeTracesStreaming(traces, cfg, [&](JFrame&&) {
    ++delivered;
    if (std::this_thread::get_id() != caller) all_on_caller = false;
  });
  EXPECT_GT(delivered, 100u);
  EXPECT_TRUE(all_on_caller);
}

TEST(ParallelMerge, SinkExceptionPropagatesAndAbortsWorkers) {
  auto traces = MultiChannelNetwork(13).Build();
  MergeConfig cfg;
  cfg.threads = 3;
  std::size_t delivered = 0;
  EXPECT_THROW(MergeTracesStreaming(traces, cfg,
                                    [&](JFrame&&) {
                                      if (++delivered == 10) {
                                        throw std::runtime_error("sink");
                                      }
                                    }),
               std::runtime_error);
  EXPECT_EQ(delivered, 10u);
}

}  // namespace
}  // namespace jig
