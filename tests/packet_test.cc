#include "wifi/packet.h"

#include <gtest/gtest.h>

namespace jig {
namespace {

constexpr Ipv4Addr kClientIp = MakeIpv4(10, 2, 0, 5);
constexpr Ipv4Addr kServerIp = MakeIpv4(10, 1, 0, 10);

TEST(Packet, Ipv4StringForm) {
  EXPECT_EQ(Ipv4ToString(MakeIpv4(10, 2, 0, 5)), "10.2.0.5");
  EXPECT_EQ(Ipv4ToString(0xFFFFFFFFu), "255.255.255.255");
}

TEST(Packet, TcpRoundtrip) {
  TcpSegment seg;
  seg.src_port = 10001;
  seg.dst_port = 80;
  seg.seq = 123456789;
  seg.ack = 987654321;
  seg.flags = kTcpAck | kTcpPsh;
  seg.payload_len = 1460;
  const Bytes body = BuildTcpFrameBody(kClientIp, kServerIp, seg);
  const auto info = ParseFrameBody(body);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->ether_type, kEtherTypeIpv4);
  EXPECT_EQ(info->src_ip, kClientIp);
  EXPECT_EQ(info->dst_ip, kServerIp);
  ASSERT_TRUE(info->IsTcp());
  EXPECT_EQ(info->tcp->src_port, 10001);
  EXPECT_EQ(info->tcp->dst_port, 80);
  EXPECT_EQ(info->tcp->seq, 123456789u);
  EXPECT_EQ(info->tcp->ack, 987654321u);
  EXPECT_EQ(info->tcp->flags, kTcpAck | kTcpPsh);
  EXPECT_EQ(info->tcp->payload_len, 1460);
}

TEST(Packet, PayloadLengthSurvivesInlineCap) {
  // A snap-length capture materializes only `inline_cap` payload bytes, but
  // the logical length must come back from the IP header — this is what
  // makes TCP sequence accounting work on truncated captures (Section 5).
  TcpSegment seg;
  seg.payload_len = 1460;
  const Bytes body = BuildTcpFrameBody(kClientIp, kServerIp, seg,
                                       /*inline_cap=*/100);
  EXPECT_LT(body.size(), 200u);
  const auto info = ParseFrameBody(body);
  ASSERT_TRUE(info.has_value() && info->IsTcp());
  EXPECT_EQ(info->tcp->payload_len, 1460);
}

TEST(Packet, TcpFlagHelpers) {
  TcpSegment seg;
  seg.flags = kTcpSyn;
  EXPECT_TRUE(seg.Syn());
  EXPECT_FALSE(seg.HasAck());
  seg.flags = kTcpSyn | kTcpAck;
  EXPECT_TRUE(seg.Syn());
  EXPECT_TRUE(seg.HasAck());
  seg.flags = kTcpFin | kTcpAck;
  EXPECT_TRUE(seg.Fin());
  seg.flags = kTcpRst;
  EXPECT_TRUE(seg.Rst());
}

TEST(Packet, UdpRoundtrip) {
  UdpDatagram dgram;
  dgram.src_port = 2222;
  dgram.dst_port = 2222;
  dgram.payload_len = 180;
  const Bytes body = BuildUdpFrameBody(kClientIp, 0xFFFFFFFFu, dgram);
  const auto info = ParseFrameBody(body);
  ASSERT_TRUE(info.has_value());
  ASSERT_TRUE(info->udp.has_value());
  EXPECT_EQ(info->udp->src_port, 2222);
  EXPECT_EQ(info->udp->dst_port, 2222);
  EXPECT_EQ(info->udp->payload_len, 180);
  EXPECT_EQ(info->dst_ip, 0xFFFFFFFFu);
  EXPECT_FALSE(info->IsTcp());
}

TEST(Packet, ArpRoundtrip) {
  ArpMessage arp;
  arp.is_request = true;
  arp.sender_ip = MakeIpv4(10, 0, 0, 2);
  arp.target_ip = kClientIp;
  const auto info = ParseFrameBody(BuildArpFrameBody(arp));
  ASSERT_TRUE(info.has_value());
  ASSERT_TRUE(info->IsArp());
  EXPECT_TRUE(info->arp->is_request);
  EXPECT_EQ(info->arp->sender_ip, MakeIpv4(10, 0, 0, 2));
  EXPECT_EQ(info->arp->target_ip, kClientIp);

  arp.is_request = false;
  const auto reply = ParseFrameBody(BuildArpFrameBody(arp));
  ASSERT_TRUE(reply.has_value() && reply->IsArp());
  EXPECT_FALSE(reply->arp->is_request);
}

TEST(Packet, RejectsNonSnapBody) {
  Bytes junk(64, 0x11);
  EXPECT_FALSE(ParseFrameBody(junk).has_value());
}

TEST(Packet, RejectsTruncatedHeaders) {
  TcpSegment seg;
  seg.payload_len = 100;
  Bytes body = BuildTcpFrameBody(kClientIp, kServerIp, seg);
  // Chop inside the TCP header.
  body.resize(8 + 20 + 10);
  EXPECT_FALSE(ParseFrameBody(body).has_value());
  body.resize(8 + 10);  // inside IP header
  EXPECT_FALSE(ParseFrameBody(body).has_value());
  body.resize(4);  // inside LLC
  EXPECT_FALSE(ParseFrameBody(body).has_value());
}

TEST(Packet, DistinctSegmentsProduceDistinctBytes) {
  TcpSegment a, b;
  a.seq = 1000;
  b.seq = 2460;
  a.payload_len = b.payload_len = 1460;
  EXPECT_NE(BuildTcpFrameBody(kClientIp, kServerIp, a),
            BuildTcpFrameBody(kClientIp, kServerIp, b));
}

class PacketPayloadSizes : public ::testing::TestWithParam<std::uint16_t> {};

TEST_P(PacketPayloadSizes, RoundtripAnySize) {
  TcpSegment seg;
  seg.payload_len = GetParam();
  const auto info = ParseFrameBody(BuildTcpFrameBody(kClientIp, kServerIp,
                                                     seg));
  ASSERT_TRUE(info.has_value() && info->IsTcp());
  EXPECT_EQ(info->tcp->payload_len, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, PacketPayloadSizes,
                         ::testing::Values(0, 1, 100, 536, 1460));

}  // namespace
}  // namespace jig
