#include "jigsaw/clock_state.h"

#include <gtest/gtest.h>

#include "jigsaw/reference.h"

namespace jig {
namespace {

TEST(ClockState, InitialOffsetApplied) {
  TraceClockState clock(500.0, 0.3, 1000);
  EXPECT_DOUBLE_EQ(clock.ToUniversal(100), 600.0);
}

TEST(ClockState, CorrectionCollapsesError) {
  TraceClockState clock(0.0, 0.3, 1000);
  // Observe that at local t=100000 we are 25 us behind universal.
  clock.ApplyCorrection(100'000, 25.0);
  EXPECT_NEAR(clock.ToUniversal(100'000), 100'025.0, 1e-6);
  EXPECT_EQ(clock.corrections(), 1u);
}

TEST(ClockState, SkewLearnedFromCorrections) {
  // A clock running slow by 50 PPM: each second its local reading falls a
  // further 50 us behind universal time.  The predictor's skew (universal
  // gained per local microsecond) must converge to +50 PPM and late
  // corrections must shrink toward zero.
  TraceClockState clock(0.0, 0.5, 1000);
  const double local_rate = 1.0 - 50e-6;  // local = true * (1 - 50 PPM)
  double worst_late_error = 0.0;
  for (int k = 1; k <= 20; ++k) {
    const double true_time = k * 1e6;
    const double local = true_time * local_rate;
    const double err =
        true_time - clock.ToUniversal(static_cast<LocalMicros>(local));
    if (k > 10) worst_late_error = std::max(worst_late_error, std::abs(err));
    clock.ApplyCorrection(static_cast<LocalMicros>(local), err);
  }
  EXPECT_LT(worst_late_error, 10.0);
  EXPECT_NEAR(clock.skew_ppm(), 50.0, 10.0);
}

TEST(ClockState, ShortGapsSkipSkewSampling) {
  TraceClockState clock(0.0, 0.5, /*min_skew_elapsed=*/Milliseconds(10));
  clock.ApplyCorrection(100, 50.0);  // 100 us elapsed: too short
  EXPECT_DOUBLE_EQ(clock.skew_ppm(), 0.0);
  // But the offset correction still lands.
  EXPECT_NEAR(clock.ToUniversal(100), 150.0, 1e-6);
}

TEST(ClockState, TrackSkewDisabled) {
  TraceClockState clock(0.0, 0.5, 1000, /*track_skew=*/false);
  clock.ApplyCorrection(Seconds(1), 100.0);
  clock.ApplyCorrection(Seconds(2), 100.0);
  EXPECT_DOUBLE_EQ(clock.skew_ppm(), 0.0);
}

TEST(Reference, UniquePredicateCases) {
  const auto record_for = [](Frame f, RxOutcome outcome = RxOutcome::kOk) {
    CaptureRecord rec;
    rec.outcome = outcome;
    rec.rate = f.rate;
    rec.bytes = f.Serialize();
    rec.orig_len = static_cast<std::uint32_t>(rec.bytes.size());
    return rec;
  };

  Frame data = MakeData(MacAddress::Ap(0), MacAddress::Client(1),
                        MacAddress::Ap(0), 7, Bytes(30), PhyRate::kB2, false,
                        true);
  EXPECT_TRUE(IsUniqueReference(record_for(data)));

  Frame retry = data;
  retry.retry = true;
  EXPECT_FALSE(IsUniqueReference(record_for(retry)));

  EXPECT_FALSE(IsUniqueReference(
      record_for(MakeAck(MacAddress::Client(1), PhyRate::kB2))));
  EXPECT_FALSE(IsUniqueReference(
      record_for(MakeCtsToSelf(MacAddress::Ap(0), 100, PhyRate::kB2))));
  EXPECT_FALSE(IsUniqueReference(
      record_for(MakeProbeRequest(MacAddress::Client(1), 0))));
  EXPECT_TRUE(IsUniqueReference(
      record_for(MakeBeacon(MacAddress::Ap(0), 3, PhyRate::kB1))));

  // Corrupted captures never anchor synchronization.
  EXPECT_FALSE(IsUniqueReference(record_for(data, RxOutcome::kFcsError)));
  CaptureRecord phy;
  phy.outcome = RxOutcome::kPhyError;
  EXPECT_FALSE(IsUniqueReference(phy));
}

TEST(Reference, ContentKeyDiscriminates) {
  Frame a = MakeData(MacAddress::Ap(0), MacAddress::Client(1),
                     MacAddress::Ap(0), 7, Bytes(30), PhyRate::kB2, false,
                     true);
  Frame b = a;
  b.sequence = 8;
  const auto wa = a.Serialize();
  const auto wb = b.Serialize();
  EXPECT_FALSE(MakeContentKey(wa) == MakeContentKey(wb));
  EXPECT_TRUE(MakeContentKey(wa) == MakeContentKey(a.Serialize()));
}

}  // namespace
}  // namespace jig
