// Spill-tier pins (src/jigsaw/spill.{h,cc} + the pipeline hooks).
//
// Three contracts:
//   1. Determinism: the merged jframe stream is byte-identical with the
//      spill tier disabled, forced (tiny threshold — everything rides
//      disk), or engaging/disengaging naturally mid-stream, across
//      threads in {1, 2, auto}.
//   2. Recovery: a truncated or corrupt trailing spill segment surfaces
//      TraceTruncatedError / TraceCorruptError exactly like .jigt files —
//      a crash mid-spill is detected, never silently merged.
//   3. Relief: a laggard consumer scenario spills to disk instead of
//      retaining the backlog in memory, and max_spill_bytes exhaustion
//      degrades to the old watermark backpressure.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <vector>

#include "jframe_equality.h"
#include "jigsaw/pipeline.h"
#include "jigsaw/spill.h"
#include "synthetic.h"
#include "trace/trace_set.h"

namespace jig {
namespace {

namespace fs = std::filesystem;
using testing::ExpectEqualStats;
using testing::ExpectIdenticalStreams;
using testing::MultiChannelNetwork;

JFrame SampleJFrame(int salt) {
  JFrame jf;
  jf.timestamp = 1'000'000 + salt;
  jf.dispersion = 7 + salt;
  jf.channel = Channel::kCh6;
  jf.rate = PhyRate::kG54;
  jf.wire_len = 142;
  jf.digest = 0xDEADBEEFCAFEF00Dull + static_cast<std::uint64_t>(salt);
  jf.frame = MakeData(MacAddress::Client(3), MacAddress::Ap(1),
                      MacAddress::Ap(1), static_cast<std::uint16_t>(salt),
                      Bytes{9, 8, 7, 6, 5}, PhyRate::kG54,
                      /*from_ds=*/true, /*to_ds=*/false);
  jf.frame.retry = (salt % 2) != 0;
  for (int i = 0; i < 3; ++i) {
    FrameInstance inst;
    inst.radio = static_cast<RadioId>(10 + i);
    inst.local_timestamp = 900'000 + salt + i;
    inst.universal_timestamp = jf.timestamp + i;
    inst.rssi_dbm = -61.25F - static_cast<float>(i);
    inst.outcome = i == 2 ? RxOutcome::kFcsError : RxOutcome::kOk;
    jf.instances.push_back(inst);
  }
  return jf;
}

class SpillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("spill_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

// ---------------------------------------------------------------------------
// Serialization + segment format.

TEST_F(SpillTest, JFrameRoundtripIsLossless) {
  const JFrame original = SampleJFrame(17);
  Bytes buf;
  SerializeJFrame(original, buf);
  ByteReader r(buf);
  const JFrame back = DeserializeJFrame(r);
  EXPECT_TRUE(r.AtEnd());
  ExpectIdenticalStreams({original}, {back});
  // The comparator skips the decoded frame's non-wire fields; check the
  // remainder explicitly so the spill path can never shave a field.
  EXPECT_EQ(back.frame.rate, original.frame.rate);
  EXPECT_EQ(back.frame.retry, original.frame.retry);
  EXPECT_EQ(back.frame.from_ds, original.frame.from_ds);
  EXPECT_EQ(back.frame.to_ds, original.frame.to_ds);
  EXPECT_EQ(back.frame.duration_us, original.frame.duration_us);
}

TEST_F(SpillTest, SegmentRoundtripAcrossBlocks) {
  const auto path = dir_ / "ch6-0.jigs";
  SpillSegmentHeader header;
  header.channel = 6;
  header.sequence = 4;
  {
    SpillSegmentWriter writer(path, header, /*records_per_block=*/8);
    for (int i = 0; i < 50; ++i) writer.Append(SampleJFrame(i));
    writer.Finish();
  }
  SpillSegmentReader reader(path);
  EXPECT_EQ(reader.header().channel, 6);
  EXPECT_EQ(reader.header().sequence, 4u);
  std::vector<JFrame> got;
  while (auto jf = reader.Next()) got.push_back(std::move(*jf));
  EXPECT_TRUE(reader.finalized());
  ASSERT_EQ(got.size(), 50u);
  EXPECT_GE(reader.blocks_read(), 6u);  // really crossed block boundaries
  for (int i = 0; i < 50; ++i) {
    SCOPED_TRACE(i);
    ExpectIdenticalStreams({SampleJFrame(i)}, {got[static_cast<size_t>(i)]});
  }
}

// Fail-on-pre-fix style, mirroring trace_file_test.cc: each corruption
// class must surface its own error, and truncation must never be read as
// clean end-of-segment.

TEST_F(SpillTest, TruncatedTrailingSegmentReportsTruncationNotEof) {
  const auto path = dir_ / "ch1-0.jigs";
  {
    SpillSegmentWriter writer(path, {}, /*records_per_block=*/8);
    for (int i = 0; i < 20; ++i) writer.Append(SampleJFrame(i));
    writer.Finish();
  }
  const auto full = fs::file_size(path);
  // Cut exactly at a structure boundary (drop only the finalize marker):
  // truncation — the writer died between blocks.
  fs::resize_file(path, full - 4);
  {
    SpillSegmentReader reader(path);
    std::size_t n = 0;
    EXPECT_THROW(
        {
          while (reader.Next()) ++n;
        },
        TraceTruncatedError);
    EXPECT_GT(n, 0u);  // the complete blocks still read
  }
  // Cut mid-way through the trailing block: still a crash mid-spill.
  fs::resize_file(path, full - 9);
  {
    SpillSegmentReader reader(path);
    EXPECT_THROW(
        {
          while (reader.Next()) {
          }
        },
        TraceTruncatedError);
  }
}

TEST_F(SpillTest, CorruptSegmentReportsCorruptionNotTruncation) {
  // Bad magic.
  const auto bad_magic = dir_ / "bad-magic.jigs";
  std::FILE* f = std::fopen(bad_magic.string().c_str(), "wb");
  std::fwrite("NOTASPILLSEGMENT", 1, 16, f);
  std::fclose(f);
  EXPECT_THROW(SpillSegmentReader{bad_magic}, TraceCorruptError);

  // Garbage block length after a valid prefix (the writer's destructor
  // finalizes, so drop the terminator before appending the junk word).
  const auto garbage = dir_ / "garbage-len.jigs";
  {
    SpillSegmentWriter writer(garbage, {}, /*records_per_block=*/4);
    for (int i = 0; i < 4; ++i) writer.Append(SampleJFrame(i));
    writer.Sync();
  }
  fs::resize_file(garbage, fs::file_size(garbage) - 4);
  f = std::fopen(garbage.string().c_str(), "ab");
  const std::uint8_t junk[4] = {0xFF, 0xFF, 0xFF, 0x7F};
  std::fwrite(junk, 1, 4, f);
  std::fclose(f);
  {
    SpillSegmentReader reader(garbage);
    std::size_t n = 0;
    EXPECT_THROW(
        {
          while (reader.Next()) ++n;
        },
        TraceCorruptError);
    EXPECT_EQ(n, 4u);
  }

  // Unsupported version.
  const auto bad_version = dir_ / "bad-version.jigs";
  f = std::fopen(bad_version.string().c_str(), "wb");
  std::fwrite(kSpillMagic, 1, 4, f);
  const std::uint8_t v99[4] = {99, 0, 0, 0};
  std::fwrite(v99, 1, 4, f);
  std::fclose(f);
  EXPECT_THROW(SpillSegmentReader{bad_version}, TraceCorruptError);
}

// ---------------------------------------------------------------------------
// Determinism across spill modes.

TEST_F(SpillTest, SpillConfigIsValidatedAtEntry) {
  TraceSet traces = MultiChannelNetwork(3).Build();
  MergeConfig cfg;
  cfg.threads = 2;
  cfg.spill_dir = dir_;
  cfg.spill_threshold = 0;
  EXPECT_THROW(MergeTraces(traces, cfg), std::invalid_argument);
  cfg.spill_threshold = kMergeQueueWatermark + 1;
  EXPECT_THROW(MergeTraces(traces, cfg), std::invalid_argument);
  // Without a spill_dir the thresholds are inert, like `threads` entries
  // beyond the shard count.
  cfg.spill_dir.clear();
  cfg.spill_threshold = 0;
  EXPECT_NO_THROW(MergeTraces(traces, cfg));
}

struct SpillMode {
  const char* name;
  bool enabled;
  std::size_t threshold;
};

class SpillDeterminism : public SpillTest,
                         public ::testing::WithParamInterface<unsigned> {};

TEST_P(SpillDeterminism, ByteIdenticalAcrossSpillModes) {
  const unsigned threads = GetParam();
  // The reference: legacy single-threaded merge, no spill.
  TraceSet reference_traces = MultiChannelNetwork(77).Build();
  const MergeResult reference = MergeTraces(reference_traces);
  ASSERT_GT(reference.jframes.size(), 100u);

  // The tier engages on actual lag (queue residue at worker-round entry),
  // so a batch merge whose consumer keeps up may legitimately never touch
  // disk — SpillLaggard pins that the disk path really runs under lag.
  // Here the pin is the determinism contract: whatever each threshold
  // makes the tier do (including engaging and disengaging mid-stream),
  // the stream must be byte-identical to the no-spill legacy reference.
  const SpillMode modes[] = {
      {"disabled", false, 0},
      {"forced", true, 1},     // any round residue at all rides the disk
      {"toggling", true, 24},  // engages/disengages as queues breathe
  };
  for (const SpillMode& mode : modes) {
    SCOPED_TRACE(mode.name);
    TraceSet traces = MultiChannelNetwork(77).Build();
    MergeConfig cfg;
    cfg.threads = threads;
    if (mode.enabled) {
      cfg.spill_dir = dir_ / mode.name;
      cfg.spill_threshold = mode.threshold;
    }
    std::vector<JFrame> streamed;
    MergeSession session(traces, cfg, [&streamed](JFrame&& jf) {
      streamed.push_back(std::move(jf));
    });
    ASSERT_EQ(session.Poll(), MergeSession::Status::kDone);
    ExpectIdenticalStreams(streamed, reference.jframes);
    ExpectEqualStats(session.stats(), reference.stats);
    if (mode.enabled && threads != 1) {
      // Completion reclaims every segment: nothing may outlive the run.
      EXPECT_EQ(session.spill_bytes_on_disk(), 0u);
      std::size_t leftovers = 0;
      for (const auto& entry : fs::directory_iterator(cfg.spill_dir)) {
        (void)entry;
        ++leftovers;
      }
      EXPECT_EQ(leftovers, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, SpillDeterminism,
                         ::testing::Values(1u, 2u, 0u));

// ---------------------------------------------------------------------------
// Laggard-consumer relief + budget exhaustion.  Scenario mirrors the
// watermark-stall pin in live_ingest_test.cc: one radio's trace stops at
// 40% (unfinalized), gating the k-way merge, while every other radio's
// full backlog piles up behind the gate.

struct LaggardRig {
  TraceSetWriter writer;
  std::vector<std::vector<CaptureRecord>> records;
  std::vector<std::size_t> cursor;

  explicit LaggardRig(const fs::path& dir) : writer(dir) {}
};

std::unique_ptr<LaggardRig> WriteLaggardScenario(const fs::path& dir,
                                                 std::size_t laggard) {
  TraceSet net = MultiChannelNetwork(91).Build();
  auto rig = std::make_unique<LaggardRig>(dir);
  for (std::size_t i = 0; i < net.size(); ++i) {
    auto& mem = dynamic_cast<MemoryTrace&>(net.at(i));
    rig->writer.AddRadio(mem.header());
    rig->records.push_back(mem.records());
  }
  rig->cursor.assign(rig->records.size(), 0);
  for (std::size_t i = 0; i < rig->records.size(); ++i) {
    const std::size_t target =
        i == laggard ? rig->records[i].size() * 2 / 5 : rig->records[i].size();
    while (rig->cursor[i] < target) {
      rig->writer.Append(i, rig->records[i][rig->cursor[i]++]);
    }
  }
  rig->writer.Sync();
  return rig;
}

void FinishLaggardScenario(LaggardRig& rig) {
  for (std::size_t i = 0; i < rig.records.size(); ++i) {
    while (rig.cursor[i] < rig.records[i].size()) {
      rig.writer.Append(i, rig.records[i][rig.cursor[i]++]);
    }
  }
  rig.writer.Sync();
  rig.writer.FinalizeAll();
}

class SpillLaggard : public SpillTest,
                     public ::testing::WithParamInterface<unsigned> {};

TEST_P(SpillLaggard, SpillsWhileGatedAndDrainsByteIdentical) {
  const unsigned threads = GetParam();
  constexpr std::size_t kLaggard = 0;  // channel 1
  const auto trace_dir = dir_ / "traces";
  auto rig = WriteLaggardScenario(trace_dir, kLaggard);
  const std::size_t n = rig->records.size();

  TraceSet traces = TraceSet::FollowDirectory(trace_dir, n);
  MergeConfig cfg;
  cfg.threads = threads;
  cfg.spill_dir = dir_ / "spill";
  cfg.spill_threshold = 16;
  std::vector<JFrame> streamed;
  MergeSession session(traces, cfg, [&streamed](JFrame&& jf) {
    streamed.push_back(std::move(jf));
  });

  ASSERT_EQ(session.Poll(), MergeSession::Status::kStarved);
  ASSERT_EQ(session.Poll(), MergeSession::Status::kStarved);

  if (threads != 1) {
    // The gated shards' backlog went to disk, not memory.
    EXPECT_GT(session.spilled_jframes(), 0u);
    EXPECT_GT(session.spill_bytes_on_disk(), 0u);

    // Against the identical no-spill session, in-memory retention shrinks
    // by a wide margin: the backlog sits in segments instead of queues.
    TraceSet nospill_traces = TraceSet::FollowDirectory(trace_dir, n);
    MergeConfig nospill_cfg;
    nospill_cfg.threads = threads;
    MergeSession nospill(nospill_traces, nospill_cfg, [](JFrame&&) {});
    ASSERT_EQ(nospill.Poll(), MergeSession::Status::kStarved);
    EXPECT_LT(2 * session.retained_jframes(), nospill.retained_jframes());
  }

  // The laggard catches up: everything replays and the stream equals the
  // batch merge — the detour through disk lost and reordered nothing.
  FinishLaggardScenario(*rig);
  for (;;) {
    if (session.Poll() == MergeSession::Status::kDone) break;
  }
  EXPECT_EQ(session.spill_bytes_on_disk(), 0u);

  TraceSet batch_traces = TraceSet::OpenDirectory(trace_dir);
  const MergeResult batch = MergeTraces(batch_traces);
  ASSERT_GT(batch.jframes.size(), 100u);
  ExpectIdenticalStreams(streamed, batch.jframes);
  ExpectEqualStats(session.stats(), batch.stats);
}

INSTANTIATE_TEST_SUITE_P(Threads, SpillLaggard,
                         ::testing::Values(1u, 2u, 0u));

TEST_F(SpillTest, BudgetExhaustionDegradesToWatermarkBackpressure) {
  constexpr std::size_t kLaggard = 0;
  const auto trace_dir = dir_ / "traces";
  auto rig = WriteLaggardScenario(trace_dir, kLaggard);
  const std::size_t n = rig->records.size();

  TraceSet traces = TraceSet::FollowDirectory(trace_dir, n);
  MergeConfig cfg;
  cfg.threads = 2;
  cfg.spill_dir = dir_ / "spill";
  cfg.spill_threshold = 16;
  // Tiny budget: covers the segment headers plus at most a block or two.
  cfg.max_spill_bytes = 2048;
  std::vector<JFrame> streamed;
  MergeSession session(traces, cfg, [&streamed](JFrame&& jf) {
    streamed.push_back(std::move(jf));
  });

  ASSERT_EQ(session.Poll(), MergeSession::Status::kStarved);
  ASSERT_EQ(session.Poll(), MergeSession::Status::kStarved);

  // The cap is block-granular: each shard may overshoot by the one block
  // in flight when it noticed, never by the backlog.
  EXPECT_LE(session.spill_bytes_on_disk(),
            cfg.max_spill_bytes + 3 * (64u << 10));
  // Degraded to the old contract: bounded in-memory retention at the
  // watermark, with the overflow backlog simply not consumed yet.
  EXPECT_LE(session.retained_jframes(), 3 * (kMergeQueueWatermark + 2048));

  FinishLaggardScenario(*rig);
  for (;;) {
    if (session.Poll() == MergeSession::Status::kDone) break;
  }

  TraceSet batch_traces = TraceSet::OpenDirectory(trace_dir);
  const MergeResult batch = MergeTraces(batch_traces);
  ExpectIdenticalStreams(streamed, batch.jframes);
}

// ---------------------------------------------------------------------------
// Budget-accounting regressions.

// Pre-fix, SpillBudget::Release was a raw fetch_sub: one over-release (a
// reclaim path double-counting a segment) wrapped `used` to ~2^64, which
// latched Full() permanently true and silently disabled the spill tier
// for the rest of the session.  Release must saturate at zero.
TEST(SpillBudgetTest, ReleaseSaturatesInsteadOfWrapping) {
  SpillBudget budget;
  budget.limit = 100;
  budget.Charge(50);
  EXPECT_FALSE(budget.Full());
  budget.Release(80);  // over-release: more than was ever charged
  EXPECT_EQ(budget.used.load(), 0u);
  EXPECT_FALSE(budget.Full()) << "wrapped budget latched Full() forever";
  // The budget still works normally afterwards.
  budget.Charge(100);
  EXPECT_TRUE(budget.Full());
  budget.Release(1);
  EXPECT_FALSE(budget.Full());
}

// Churn: push enough through a tiny-segment queue that the writer rotates
// several times, replay only part of it (reader mid-segment), then
// destruct.  The budget must return to exactly zero — ReclaimDrained
// followed by the destructor, or the destructor alone mid-replay, must
// release each segment's bytes exactly once (no leak pinning the budget,
// no double-release wrapping it).
TEST_F(SpillTest, ChurnedQueueReturnsBudgetExactlyOnce) {
  SpillBudget budget;
  budget.limit = 0;  // uncapped: we only watch the accounting
  {
    SpillQueue queue(dir_, /*channel=*/6, &budget, /*segment_bytes=*/256);
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(queue.Push(SampleJFrame(i)));
    }
    queue.Sync();
    ASSERT_GT(budget.used.load(), 0u);
    // Replay part of the backlog: enough to reclaim some finished
    // segments in Pop() and leave the reader mid-segment on another.
    for (int i = 0; i < 77; ++i) {
      auto jf = queue.Pop();
      ASSERT_TRUE(jf.has_value());
    }
    EXPECT_FALSE(queue.Empty());
    // Destructor fires here, mid-replay, with rotated segments in every
    // state: fully replayed (already released), partially replayed, and
    // the writer's open segment.
  }
  EXPECT_EQ(budget.used.load(), 0u)
      << "budget drifted across a mid-replay teardown";
  EXPECT_TRUE(fs::is_empty(dir_)) << "spill segments outlived their queue";
}

// Full-drain path: ReclaimDrained releases everything, and the destructor
// right after must not release it again (idempotence pin — pre-fix both
// paths released every remaining segment's bytes).
TEST_F(SpillTest, ReclaimThenDestructReleasesOnce) {
  SpillBudget budget;
  budget.limit = 0;
  {
    SpillQueue queue(dir_, /*channel=*/1, &budget, /*segment_bytes=*/256);
    for (int i = 0; i < 120; ++i) {
      ASSERT_TRUE(queue.Push(SampleJFrame(i)));
    }
    queue.Sync();
    int popped = 0;
    while (queue.Pop().has_value()) ++popped;
    ASSERT_EQ(popped, 120);
    ASSERT_TRUE(queue.Empty());
    queue.ReclaimDrained();
    EXPECT_EQ(budget.used.load(), 0u);
    EXPECT_EQ(queue.bytes_on_disk(), 0u);
    // Destructor runs now over the already-reclaimed state.
  }
  EXPECT_EQ(budget.used.load(), 0u)
      << "destructor double-released after ReclaimDrained";
  EXPECT_TRUE(fs::is_empty(dir_));
}

}  // namespace
}  // namespace jig
