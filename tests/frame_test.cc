#include "wifi/frame.h"

#include <gtest/gtest.h>

namespace jig {
namespace {

Frame SampleData() {
  Bytes body(64);
  for (std::size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<std::uint8_t>(i);
  }
  return MakeData(MacAddress::Ap(3), MacAddress::Client(7), MacAddress::Ap(3),
                  1234, body, PhyRate::kG24, /*from_ds=*/false,
                  /*to_ds=*/true);
}

TEST(Frame, DataRoundtrip) {
  const Frame f = SampleData();
  const Bytes wire = f.Serialize();
  EXPECT_EQ(wire.size(), f.WireSize());
  const auto parsed = ParseFrame(wire, f.rate);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->fcs_ok);
  EXPECT_EQ(parsed->frame.type, FrameType::kData);
  EXPECT_EQ(parsed->frame.addr1, f.addr1);
  EXPECT_EQ(parsed->frame.addr2, f.addr2);
  EXPECT_EQ(parsed->frame.addr3, f.addr3);
  EXPECT_EQ(parsed->frame.sequence, f.sequence);
  EXPECT_EQ(parsed->frame.body, f.body);
  EXPECT_EQ(parsed->frame.to_ds, true);
  EXPECT_EQ(parsed->frame.from_ds, false);
  EXPECT_EQ(parsed->frame.duration_us, f.duration_us);
}

TEST(Frame, AckIsMinimal) {
  const Frame ack = MakeAck(MacAddress::Client(1), PhyRate::kB2);
  EXPECT_EQ(ack.WireSize(), kAckBytes);
  const auto parsed = ParseFrame(ack.Serialize(), ack.rate);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->fcs_ok);
  EXPECT_EQ(parsed->frame.type, FrameType::kAck);
  EXPECT_FALSE(parsed->frame.HasTransmitter());
  EXPECT_FALSE(parsed->frame.HasSequence());
}

TEST(Frame, CtsToSelfIdentifiesTransmitter) {
  const Frame cts = MakeCtsToSelf(MacAddress::Ap(4), 500, PhyRate::kB2);
  EXPECT_TRUE(cts.IsCtsToSelf());
  const auto tx = cts.Transmitter();
  ASSERT_TRUE(tx.has_value());
  EXPECT_EQ(*tx, MacAddress::Ap(4));
  EXPECT_EQ(cts.duration_us, 500);
}

TEST(Frame, RtsCarriesBothAddresses) {
  const Frame rts = MakeRts(MacAddress::Ap(1), MacAddress::Client(2), 300,
                            PhyRate::kB1);
  EXPECT_EQ(rts.WireSize(), kRtsBytes);
  const auto parsed = ParseFrame(rts.Serialize(), rts.rate);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->frame.addr1, MacAddress::Ap(1));
  EXPECT_EQ(parsed->frame.addr2, MacAddress::Client(2));
}

TEST(Frame, CorruptionDetected) {
  Bytes wire = SampleData().Serialize();
  wire[20] ^= 0x40;
  const auto parsed = ParseFrame(wire, PhyRate::kG24);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->fcs_ok);
}

TEST(Frame, RetryBitRoundtrip) {
  Frame f = SampleData();
  f.retry = true;
  const auto parsed = ParseFrame(f.Serialize(), f.rate);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->frame.retry);
  EXPECT_TRUE(parsed->fcs_ok);
  // The retry bit changes the wire bytes (and hence content digests).
  Frame g = SampleData();
  EXPECT_NE(ContentDigest(f.Serialize()), ContentDigest(g.Serialize()));
}

TEST(Frame, SequenceMasksTo12Bits) {
  Frame f = SampleData();
  f.sequence = 0x0FFF;
  auto parsed = ParseFrame(f.Serialize(), f.rate);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->frame.sequence, 0x0FFF);
}

TEST(Frame, TruncatedBufferRejected) {
  const Bytes wire = SampleData().Serialize();
  EXPECT_FALSE(ParseFrame(std::span(wire.data(), 10), PhyRate::kB1));
  EXPECT_FALSE(ParseFrame(std::span(wire.data(), std::size_t{0}),
                          PhyRate::kB1));
}

TEST(Frame, GarbageRejected) {
  Bytes garbage(40, 0xFF);
  EXPECT_FALSE(ParseFrame(garbage, PhyRate::kB1).has_value());
}

TEST(Frame, ContentDigestDiscriminates) {
  Frame a = SampleData();
  Frame b = SampleData();
  b.sequence += 1;
  EXPECT_NE(ContentDigest(a.Serialize()), ContentDigest(b.Serialize()));
  EXPECT_EQ(ContentDigest(a.Serialize()),
            ContentDigest(SampleData().Serialize()));
}

TEST(Frame, BeaconBroadcast) {
  const Frame b = MakeBeacon(MacAddress::Ap(9), 77, PhyRate::kB1);
  EXPECT_TRUE(b.IsBroadcast());
  EXPECT_EQ(b.duration_us, 0);  // broadcasts reserve nothing
  const auto parsed = ParseFrame(b.Serialize(), b.rate);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->frame.type, FrameType::kBeacon);
  EXPECT_EQ(parsed->frame.sequence, 77);
}

TEST(Frame, UnicastDataAdvertisesAckDuration) {
  const Frame f = SampleData();
  EXPECT_EQ(f.duration_us, AckDurationFieldMicros(f.rate));
  const Frame bcast =
      MakeData(MacAddress::Broadcast(), MacAddress::Client(1),
               MacAddress::Ap(0), 5, Bytes(10), PhyRate::kB1, true, false);
  EXPECT_EQ(bcast.duration_us, 0);
}

TEST(Frame, AirTimeMatchesRateMath) {
  const Frame f = SampleData();
  EXPECT_EQ(f.AirTimeMicros(), TxDurationMicros(f.rate, f.WireSize()));
}

class FrameTypeRoundtrip : public ::testing::TestWithParam<FrameType> {};

TEST_P(FrameTypeRoundtrip, SerializeParsePreservesType) {
  Frame f;
  f.type = GetParam();
  f.addr1 = MacAddress::Client(1);
  f.addr2 = MacAddress::Ap(2);
  f.addr3 = MacAddress::Ap(2);
  f.sequence = 42;
  f.rate = PhyRate::kB2;
  if (!IsControl(f.type)) f.body.assign(8, 0x55);
  const auto parsed = ParseFrame(f.Serialize(), f.rate);
  ASSERT_TRUE(parsed.has_value()) << FrameTypeName(GetParam());
  EXPECT_EQ(parsed->frame.type, GetParam());
  EXPECT_TRUE(parsed->fcs_ok);
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, FrameTypeRoundtrip,
    ::testing::Values(FrameType::kData, FrameType::kAck, FrameType::kRts,
                      FrameType::kCts, FrameType::kBeacon,
                      FrameType::kProbeRequest, FrameType::kProbeResponse,
                      FrameType::kAssocRequest, FrameType::kAssocResponse,
                      FrameType::kAuthentication,
                      FrameType::kDeauthentication));

TEST(MacAddressT, TagsAndSpecials) {
  EXPECT_TRUE(MacAddress::Broadcast().IsBroadcast());
  EXPECT_TRUE(MacAddress::Broadcast().IsMulticast());
  EXPECT_FALSE(MacAddress::Client(5).IsBroadcast());
  EXPECT_TRUE(MacAddress::Client(5).IsClientTag());
  EXPECT_FALSE(MacAddress::Client(5).IsApTag());
  EXPECT_TRUE(MacAddress::Ap(5).IsApTag());
  EXPECT_TRUE(MacAddress::Client(5).IsUnicast());
}

TEST(MacAddressT, DistinctPerIndex) {
  EXPECT_NE(MacAddress::Client(1), MacAddress::Client(2));
  EXPECT_NE(MacAddress::Client(1), MacAddress::Ap(1));
  EXPECT_EQ(MacAddress::Ap(600).ToU64() & 0xFFFF,
            600u);  // index in low octets
}

TEST(MacAddressT, StringForm) {
  EXPECT_EQ(MacAddress::Broadcast().ToString(), "ff:ff:ff:ff:ff:ff");
  EXPECT_EQ(MacAddress({0x02, 0x00, 0x5E, 0x00, 0x01, 0x02}).ToString(),
            "02:00:5e:00:01:02");
}

}  // namespace
}  // namespace jig
