// Distributed-merge suite: the socket trace transport and the two-level
// (wing -> root) topology.
//
// Two contracts are pinned here.  First, SocketTrace must honor the
// RecordStream tri-state semantics TailFileTrace established — no-data-yet
// vs latched finalize vs corruption — with the socket-specific fourth
// state (peer disconnect before the marker) surfacing as truncation.
// Second, the tentpole determinism pin: a 2-wing distributed merge must
// emit a jframe stream byte-identical to the single-node merge of the same
// trace files, across threads in {1, 2, auto} and with spill engaged —
// the distributed topology may change WHERE records travel, never WHAT
// the global unifier says about them.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "jframe_equality.h"
#include "jigsaw/distributed.h"
#include "jigsaw/pipeline.h"
#include "obs/metrics.h"
#include "synthetic.h"
#include "trace/net.h"
#include "trace/socket_trace.h"
#include "trace/trace_file.h"
#include "trace/trace_set.h"
#include "util/compression.h"

namespace jig {
namespace {

namespace fs = std::filesystem;
using testing::ExpectEqualStats;
using testing::ExpectIdenticalStreams;
using testing::MultiChannelNetwork;

CaptureRecord MakeRecord(LocalMicros ts) {
  CaptureRecord rec;
  rec.timestamp = ts;
  rec.rate = PhyRate::kB2;
  rec.bytes = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14};
  rec.orig_len = 14;
  return rec;
}

void SendU32(net::Socket& sock, std::uint32_t v) {
  const std::uint8_t b[4] = {
      static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
      static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
  net::SendAll(sock, b, sizeof b);
}

// Hand-sends the hello + .jigt prefix + header — the raw-byte sender the
// malformed-stream tests build on (SocketTraceWriter cannot emit broken
// streams, by design).
void SendHelloAndHeader(net::Socket& sock, const TraceHeader& header,
                        std::uint32_t source_id = 0) {
  net::SendAll(sock, kSocketHelloMagic, 4);
  SendU32(sock, kSocketHelloVersion);
  SendU32(sock, source_id);
  net::SendAll(sock, kTraceDataMagic, 4);
  SendU32(sock, kTraceVersion);
  Bytes hdr;
  SerializeHeader(header, hdr);
  SendU32(sock, static_cast<std::uint32_t>(hdr.size()));
  net::SendAll(sock, hdr.data(), hdr.size());
}

// One loopback connection: `client` is the sender side, `server` the
// accepted receiver side.
struct Loopback {
  net::Listener listener{"127.0.0.1", 0};
  net::Socket client;
  net::Socket server;

  Loopback() {
    client = net::ConnectTo("127.0.0.1", listener.port());
    server = listener.Accept(/*timeout_ms=*/5000);
  }
};

// ---------------------------------------------------------------------------
// SocketTrace semantics.

TEST(SocketTraceTest, NoDataYetThenSyncThenFinalizeLatches) {
  Loopback lo;
  TraceHeader header;
  header.radio = 7;
  SocketTraceWriter writer(std::move(lo.client), header, /*source_id=*/3,
                           /*records_per_block=*/2);
  auto trace = SocketTrace::Open(std::move(lo.server));
  EXPECT_EQ(trace->header().radio, 7);
  EXPECT_EQ(trace->source_id(), 3u);

  // Nothing sent yet: no data, expressly NOT finalized, NOT an error.
  EXPECT_EQ(trace->NextRef(), nullptr);
  EXPECT_FALSE(trace->Finalized());

  // A full block (2 records) publishes by itself.
  writer.Append(MakeRecord(1'000));
  writer.Append(MakeRecord(2'000));
  EXPECT_EQ(trace->Next()->timestamp, 1'000);
  EXPECT_EQ(trace->Next()->timestamp, 2'000);

  // A buffered partial block is invisible until Sync cuts it.
  writer.Append(MakeRecord(3'000));
  EXPECT_EQ(trace->NextRef(), nullptr);
  EXPECT_FALSE(trace->Finalized());
  writer.Sync();
  const auto got = trace->Next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->timestamp, 3'000);
  EXPECT_EQ(got->bytes, MakeRecord(3'000).bytes);

  // The finalize marker latches end-of-capture.
  writer.Finish();
  EXPECT_EQ(trace->NextRef(), nullptr);
  EXPECT_TRUE(trace->Finalized());

  // Rewind replays the retained records (the late-bootstrap path) and the
  // latch holds across it.
  trace->Rewind();
  EXPECT_TRUE(trace->Finalized());
  EXPECT_EQ(trace->Next()->timestamp, 1'000);
  EXPECT_EQ(trace->Next()->timestamp, 2'000);
  EXPECT_EQ(trace->Next()->timestamp, 3'000);
  EXPECT_EQ(trace->NextRef(), nullptr);
  EXPECT_TRUE(trace->Finalized());
}

TEST(SocketTraceTest, PeerDisconnectBeforeMarkerIsTruncationAfterDrain) {
  Loopback lo;
  TraceHeader header;
  header.radio = 4;
  SendHelloAndHeader(lo.client, header);
  // One complete block, then the peer vanishes without the marker.
  Bytes serialized;
  SerializeRecord(MakeRecord(500), 0, serialized);
  const Bytes packed = LzCompress(serialized);
  SendU32(lo.client, static_cast<std::uint32_t>(packed.size()));
  net::SendAll(lo.client, packed.data(), packed.size());
  lo.client.Close();

  auto trace = SocketTrace::Open(std::move(lo.server));
  // Everything received still reads out...
  const auto got = trace->Next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->timestamp, 500);
  // ... and only then does the cut-off surface, as truncation (the capture
  // may be incomplete), never as a clean end and never as corruption.
  EXPECT_FALSE(trace->Finalized());
  EXPECT_THROW(trace->NextRef(), TraceTruncatedError);
}

TEST(SocketTraceTest, BadHelloMagicIsCorruption) {
  Loopback lo;
  const char garbage[16] = "NOTAJIGSAWHELLO";
  net::SendAll(lo.client, garbage, sizeof garbage);
  EXPECT_THROW(SocketTrace::Open(std::move(lo.server)), TraceCorruptError);
}

TEST(SocketTraceTest, WrongHelloVersionIsCorruption) {
  Loopback lo;
  net::SendAll(lo.client, kSocketHelloMagic, 4);
  SendU32(lo.client, kSocketHelloVersion + 1);
  SendU32(lo.client, 0);
  EXPECT_THROW(SocketTrace::Open(std::move(lo.server)), TraceCorruptError);
}

TEST(SocketTraceTest, PeerGoneBeforeHeaderIsTruncation) {
  Loopback lo;
  net::SendAll(lo.client, kSocketHelloMagic, 4);  // hello cut short
  lo.client.Close();
  EXPECT_THROW(SocketTrace::Open(std::move(lo.server)), TraceTruncatedError);
}

TEST(SocketTraceTest, GarbageBlockLengthIsCorruptionNotRetry) {
  Loopback lo;
  TraceHeader header;
  header.radio = 9;
  SendHelloAndHeader(lo.client, header);
  SendU32(lo.client, 0x7FFFFFFF);  // absurd block length

  auto trace = SocketTrace::Open(std::move(lo.server));
  EXPECT_THROW(trace->NextRef(), TraceCorruptError);
}

TEST(SocketTraceTest, MalformedBlockBodyIsCorruption) {
  Loopback lo;
  TraceHeader header;
  header.radio = 2;
  SendHelloAndHeader(lo.client, header);
  // A complete-by-length block whose body is not valid LZ data.
  const std::uint8_t junk[32] = {0xFF, 0xEE, 0xDD, 0xCC};
  SendU32(lo.client, sizeof junk);
  net::SendAll(lo.client, junk, sizeof junk);

  auto trace = SocketTrace::Open(std::move(lo.server));
  EXPECT_THROW(trace->NextRef(), TraceCorruptError);
}

// ---------------------------------------------------------------------------
// The tentpole pin: 2 wings x 3 radios, byte-identical to single-node.

class DistributedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("distributed_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

class DistributedVsSingleNode
    : public DistributedTest,
      public ::testing::WithParamInterface<std::tuple<unsigned, bool>> {};

TEST_P(DistributedVsSingleNode, ByteIdenticalAcrossThreadsAndSpill) {
  const unsigned threads = std::get<0>(GetParam());
  const bool spill = std::get<1>(GetParam());

  // Serialize the network to files FIRST: the .jigt encoding quantizes
  // rssi, so both sides must merge the same on-disk records (comparing a
  // socket-fed merge against raw in-memory floats would diff on
  // quantization, not on topology).
  TraceSet mem = MultiChannelNetwork(88).Build();
  const std::size_t n = mem.size();
  ASSERT_EQ(n, 6u);
  const fs::path all = dir_ / "all";
  const auto paths = mem.WriteDirectory(all);

  // The single-node reference: the legacy-exact threads=1 batch merge.
  TraceSet full = TraceSet::OpenDirectory(all);
  const MergeResult batch = MergeTraces(full, MergeConfig{});
  ASSERT_GT(batch.jframes.size(), 100u);

  // Split radios {0,1,2} | {3,4,5} across two wings.  Radios sharing a
  // channel land on different wings, so cross-wing frame copies exist and
  // the root's boundary reconciliation has real work to do.
  const fs::path w1 = dir_ / "w1";
  const fs::path w2 = dir_ / "w2";
  fs::create_directories(w1);
  fs::create_directories(w2);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    fs::copy_file(paths[i], (i < n / 2 ? w1 : w2) / paths[i].filename());
  }

  RootConfig rc;
  rc.n_streams = n;
  rc.merge.threads = threads;
  if (spill) {
    rc.merge.spill_dir = dir_ / "spill_root";
    rc.merge.spill_threshold = 16;  // force spill engagement early
  }
  RootSession root(rc);
  const std::uint16_t port = root.port();

  const auto run_wing = [&](const fs::path& wing_dir, std::uint32_t id) {
    TraceSet traces = TraceSet::OpenDirectory(wing_dir);
    WingConfig wc;
    wc.wing_id = id;
    wc.root_port = port;
    wc.merge.threads = threads;
    if (spill) {
      wc.merge.spill_dir = dir_ / ("spill_wing" + std::to_string(id));
      wc.merge.spill_threshold = 16;
    }
    WingSession wing(traces, wc);
    wing.Run();
  };
  std::thread wing1(run_wing, w1, 1u);
  std::thread wing2(run_wing, w2, 2u);

  std::vector<JFrame> streamed;
  MergeStreamStats stats;
  try {
    stats = root.Run(
        [&streamed](JFrame&& jf) { streamed.push_back(std::move(jf)); });
  } catch (...) {
    wing1.join();
    wing2.join();
    throw;
  }
  wing1.join();
  wing2.join();

  // The distributed stream is the single-node stream, byte for byte.
  ExpectIdenticalStreams(streamed, batch.jframes);
  ExpectEqualStats(stats.stats, batch.stats);
  ASSERT_EQ(stats.bootstrap.synced.size(), batch.bootstrap.synced.size());
  for (std::size_t i = 0; i < batch.bootstrap.synced.size(); ++i) {
    EXPECT_EQ(stats.bootstrap.synced[i], batch.bootstrap.synced[i]);
    EXPECT_DOUBLE_EQ(stats.bootstrap.offset_us[i],
                     batch.bootstrap.offset_us[i]);
  }

  // The boundary reconciliation really fired: frames heard on both wings
  // collapsed into single jframes at the root.
  EXPECT_EQ(root.jframes(), batch.jframes.size());
  EXPECT_GT(root.boundary_jframes(), 0u);
  EXPECT_LT(root.boundary_jframes(), root.jframes());
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsBySpill, DistributedVsSingleNode,
    ::testing::Combine(::testing::Values(1u, 2u, 0u), ::testing::Bool()));

// ---------------------------------------------------------------------------
// Disconnect-then-reconnect (regression).
//
// Pre-fix, a wing that dropped and re-dialed with the same source id was
// accepted as a FRESH stream: the dead original eventually threw a
// phantom TraceTruncatedError into the merge (this test then failed on
// the root.Run throw), and the re-dial either consumed an accept slot as
// a duplicate radio or was never accepted at all.  Post-fix the re-dial
// adopts into the existing stream — the sender replays from record zero,
// already-received records are deduplicated, and the merged stream is
// byte-identical to the single-node run.

TEST_F(DistributedTest, RedialWithSameSourceResumesInsteadOfDuplicating) {
  TraceSet mem = MultiChannelNetwork(77, Seconds(2)).Build();
  const fs::path all = dir_ / "all";
  mem.WriteDirectory(all);

  // Reference: single-node batch merge of the same (quantized) files.
  TraceSet full = TraceSet::OpenDirectory(all);
  const MergeResult batch = MergeTraces(full, MergeConfig{});
  ASSERT_GT(batch.jframes.size(), 50u);

  // Re-read each radio's records for the senders.
  TraceSet files = TraceSet::OpenDirectory(all);
  const std::size_t n = files.size();
  std::vector<TraceHeader> headers;
  std::vector<std::vector<CaptureRecord>> records(n);
  for (std::size_t i = 0; i < n; ++i) {
    headers.push_back(files.at(i).header());
    while (auto rec = files.at(i).Next()) records[i].push_back(*rec);
    ASSERT_FALSE(records[i].empty());
  }

  const std::int64_t resumes_before = obs::MetricRegistry::Global()
      .Collect().Value("jig_socket_trace_resumes_total");

  RootConfig rc;
  rc.n_streams = n;
  RootSession root(rc);
  const std::uint16_t port = root.port();

  // Radio 0's sender: half the records on a connection that dies without
  // the finalize marker, then a re-dial (same source id, same radio)
  // that replays everything from record zero, as a restarted capture
  // daemon would — a socket cannot seek and the sender cannot know how
  // much of its first stream survived.
  std::thread dropper([&] {
    const std::size_t half = records[0].size() / 2;
    {
      net::Socket sock = net::ConnectTo("127.0.0.1", port);
      SendHelloAndHeader(sock, headers[0], /*source_id=*/1);
      Bytes body;
      LocalMicros prev = 0;
      for (std::size_t i = 0; i < half; ++i) {
        SerializeRecord(records[0][i], prev, body);
        prev = records[0][i].timestamp;
      }
      const Bytes packed = LzCompress(body);
      SendU32(sock, static_cast<std::uint32_t>(packed.size()));
      net::SendAll(sock, packed.data(), packed.size());
    }  // closed mid-stream: no marker
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    SocketTraceWriter writer(net::ConnectTo("127.0.0.1", port), headers[0],
                             /*source_id=*/1, /*records_per_block=*/32);
    for (const CaptureRecord& rec : records[0]) writer.Append(rec);
    writer.Finish();
  });
  std::vector<std::thread> senders;
  for (std::size_t i = 1; i < n; ++i) {
    senders.emplace_back([&, i] {
      SocketTraceWriter writer(net::ConnectTo("127.0.0.1", port),
                               headers[i], /*source_id=*/1,
                               /*records_per_block=*/64);
      for (const CaptureRecord& rec : records[i]) writer.Append(rec);
      writer.Finish();
    });
  }

  std::vector<JFrame> streamed;
  try {
    root.Run([&streamed](JFrame&& jf) { streamed.push_back(std::move(jf)); });
  } catch (...) {
    dropper.join();
    for (auto& t : senders) t.join();
    throw;
  }
  dropper.join();
  for (auto& t : senders) t.join();

  ExpectIdenticalStreams(streamed, batch.jframes);
  // The re-dial really was adopted, not re-accepted.
  EXPECT_GE(obs::MetricRegistry::Global().Collect().Value(
                "jig_socket_trace_resumes_total"),
            resumes_before + 1);
}

// The stream-level seam the root builds on, pinned without a merge: a
// resumable stream parks on disconnect (no-data-yet, NOT truncation),
// then OpenOrResume routes the matching re-dial back into it and the
// from-zero replay dedupes; a different identity stays a fresh stream.
TEST(SocketTraceTest, ResumableStreamParksAndDeduplicatesReplay) {
  Loopback lo;
  TraceHeader header;
  header.radio = 5;
  auto send_records = [](net::Socket& sock, int from, int to) {
    Bytes body;
    LocalMicros prev = 0;
    for (int i = from; i < to; ++i) {
      SerializeRecord(MakeRecord(1'000 * (i + 1)), prev, body);
      prev = 1'000 * (i + 1);
    }
    const Bytes packed = LzCompress(body);
    SendU32(sock, static_cast<std::uint32_t>(packed.size()));
    net::SendAll(sock, packed.data(), packed.size());
  };

  SendHelloAndHeader(lo.client, header, /*source_id=*/9);
  send_records(lo.client, 0, 3);
  lo.client.Close();

  auto trace = SocketTrace::Open(std::move(lo.server));
  trace->set_resumable(true);
  EXPECT_EQ(trace->Next()->timestamp, 1'000);
  EXPECT_EQ(trace->Next()->timestamp, 2'000);
  EXPECT_EQ(trace->Next()->timestamp, 3'000);
  // Disconnected before the marker: parked, not truncated.
  EXPECT_EQ(trace->NextRef(), nullptr);
  EXPECT_FALSE(trace->Finalized());
  EXPECT_TRUE(trace->disconnected());

  // A re-dial with a DIFFERENT identity must not adopt.
  {
    Loopback other;
    TraceHeader other_header;
    other_header.radio = 6;  // wrong radio
    SendHelloAndHeader(other.client, other_header, /*source_id=*/9);
    std::vector<SocketTrace*> existing{trace.get()};
    auto fresh = SocketTrace::OpenOrResume(std::move(other.server), existing);
    EXPECT_NE(fresh, nullptr);
  }

  // The matching re-dial adopts and replays from zero; records 1..3 are
  // consumed silently, 4..5 surface exactly once, and the marker
  // finalizes the stream.
  {
    Loopback redial;
    SendHelloAndHeader(redial.client, header, /*source_id=*/9);
    send_records(redial.client, 0, 5);
    SendU32(redial.client, 0);  // finalize marker
    std::vector<SocketTrace*> existing{trace.get()};
    auto adopted = SocketTrace::OpenOrResume(std::move(redial.server),
                                             existing);
    EXPECT_EQ(adopted, nullptr);
  }
  EXPECT_EQ(trace->Next()->timestamp, 4'000);
  EXPECT_EQ(trace->Next()->timestamp, 5'000);
  EXPECT_EQ(trace->NextRef(), nullptr);
  EXPECT_TRUE(trace->Finalized());

  // Rewind (the late-bootstrap pass) replays the stitched stream whole.
  trace->Rewind();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(trace->Next()->timestamp, 1'000 * (i + 1));
  }
  EXPECT_EQ(trace->NextRef(), nullptr);
}

}  // namespace
}  // namespace jig
