#include <gtest/gtest.h>

#include <cmath>

#include "jigsaw/analysis/activity.h"
#include "jigsaw/analysis/coverage.h"
#include "jigsaw/analysis/dispersion.h"
#include "jigsaw/analysis/interference.h"
#include "jigsaw/analysis/protection.h"
#include "jigsaw/analysis/tcp_loss.h"

namespace jig {
namespace {

JFrame MakeJFrame(Frame f, UniversalMicros at, std::size_t instances = 1,
                  Micros dispersion = 0) {
  JFrame jf;
  jf.timestamp = at;
  jf.rate = f.rate;
  const Bytes wire = f.Serialize();
  jf.wire_len = static_cast<std::uint32_t>(wire.size());
  jf.frame = std::move(f);
  jf.dispersion = dispersion;
  for (std::size_t i = 0; i < instances; ++i) {
    FrameInstance inst;
    inst.radio = static_cast<RadioId>(i);
    inst.outcome = RxOutcome::kOk;
    jf.instances.push_back(inst);
  }
  return jf;
}

TEST(DispersionAnalysis, MultiInstanceFilter) {
  std::vector<JFrame> jframes;
  Frame f = MakeData(MacAddress::Ap(0), MacAddress::Client(1),
                     MacAddress::Ap(0), 1, Bytes(10), PhyRate::kB2, false,
                     true);
  jframes.push_back(MakeJFrame(f, 100, 1, 0));
  jframes.push_back(MakeJFrame(f, 200, 3, 8));
  jframes.push_back(MakeJFrame(f, 300, 2, 15));
  const auto all = DispersionDistribution(jframes, false);
  const auto multi = DispersionDistribution(jframes, true);
  EXPECT_EQ(all.size(), 3u);
  EXPECT_EQ(multi.size(), 2u);
  EXPECT_DOUBLE_EQ(multi.Max(), 15.0);
}

TEST(InterferencePair, PiFormulaMatchesPaper) {
  // Hand-computed example: background loss 10%, loss under simultaneous
  // transmissions 55%: Pi = (0.55 - 0.10) / (1 - 0.10) = 0.5.
  PairInterference pi;
  pi.n = 300;
  pi.n0 = 200;
  pi.nl0 = 20;
  pi.nx = 100;
  pi.nlx = 55;
  EXPECT_NEAR(pi.Pi(), 0.5, 1e-9);
  // X = Pi * nx/n = 0.5 * 1/3.
  EXPECT_NEAR(pi.X(), 0.5 / 3.0, 1e-9);
  EXPECT_FALSE(pi.XTruncated());
}

TEST(InterferencePair, NegativePiTruncatesX) {
  PairInterference pi;
  pi.n = 200;
  pi.n0 = 100;
  pi.nl0 = 30;
  pi.nx = 100;
  pi.nlx = 10;  // cleaner under contention: sampling noise
  EXPECT_LT(pi.Pi(), 0.0);
  EXPECT_DOUBLE_EQ(pi.X(), 0.0);
  EXPECT_TRUE(pi.XTruncated());
}

TEST(InterferencePair, DegenerateCountsSafe) {
  PairInterference pi;
  EXPECT_DOUBLE_EQ(pi.Pi(), 0.0);
  EXPECT_DOUBLE_EQ(pi.X(), 0.0);
  pi.n = pi.n0 = pi.nl0 = 10;  // 100% background loss
  EXPECT_DOUBLE_EQ(pi.Pi(), 0.0);
}

TEST(Activity, CategoriesAndBinning) {
  std::vector<JFrame> jframes;
  const UniversalMicros t0 = 1'000'000;
  // Beacon, ARP, plain data, management — one per bin.
  jframes.push_back(
      MakeJFrame(MakeBeacon(MacAddress::Ap(0), 1, PhyRate::kB1), t0));
  ArpMessage arp{true, MakeIpv4(10, 0, 0, 2), MakeIpv4(10, 2, 0, 1)};
  Frame arp_frame = MakeData(MacAddress::Broadcast(), MacAddress::Ap(0),
                             MacAddress::Ap(0), 2, BuildArpFrameBody(arp),
                             PhyRate::kB1, true, false);
  jframes.push_back(MakeJFrame(arp_frame, t0 + Seconds(1)));
  Frame data = MakeData(MacAddress::Ap(0), MacAddress::Client(1),
                        MacAddress::Ap(0), 3, Bytes(500), PhyRate::kB11,
                        false, true);
  jframes.push_back(MakeJFrame(data, t0 + Seconds(2)));
  jframes.push_back(MakeJFrame(MakeAck(MacAddress::Client(1), PhyRate::kB2),
                               t0 + Seconds(2) + 700));

  const auto series = ComputeActivity(jframes, Seconds(1));
  ASSERT_EQ(series.Bins(), 3u);
  EXPECT_GT(series.beacon_bytes[0], 0.0);
  EXPECT_EQ(series.data_bytes[0], 0.0);
  EXPECT_GT(series.arp_bytes[1], 0.0);
  EXPECT_GT(series.data_bytes[2], 0.0);
  EXPECT_GT(series.mgmt_bytes[2], 0.0);  // the ACK
  // The client and its AP count as active only in the data bin.
  EXPECT_EQ(series.active_clients[0], 0);
  EXPECT_EQ(series.active_clients[2], 1);
  EXPECT_EQ(series.active_aps[2], 1);
  // Broadcast air time accrues in beacon/ARP bins.
  EXPECT_GT(series.broadcast_airtime_fraction[0], 0.0);
  EXPECT_GT(series.broadcast_airtime_fraction[1], 0.0);
  EXPECT_EQ(series.broadcast_airtime_fraction[2], 0.0);
}

TEST(Coverage, MatchesWiredAgainstAir) {
  // One downstream TCP packet seen on the wire and on the air; one seen
  // only on the wire.
  TcpSegment seen;
  seen.src_port = 80;
  seen.dst_port = 10'000;
  seen.seq = 5000;
  seen.flags = kTcpAck;
  seen.payload_len = 100;
  TcpSegment missed = seen;
  missed.seq = 6000;

  const Ipv4Addr server = MakeIpv4(10, 1, 0, 10);
  const Ipv4Addr client = MakeIpv4(10, 2, 0, 1);

  std::vector<JFrame> jframes;
  Frame f = MakeData(MacAddress::Client(1), MacAddress::Ap(3),
                     MacAddress::Ap(3), 1,
                     BuildTcpFrameBody(server, client, seen), PhyRate::kB11,
                     true, false);
  jframes.push_back(MakeJFrame(f, 1000));

  std::vector<WiredRecord> wired;
  for (const auto& seg : {seen, missed}) {
    WiredRecord rec;
    rec.to_wireless = true;
    rec.ap_index = 3;
    rec.wireless_station = MacAddress::Client(1);
    rec.src_ip = server;
    rec.dst_ip = client;
    rec.ip_proto = kIpProtoTcp;
    rec.tcp = seg;
    wired.push_back(rec);
  }

  const auto report = ComputeWiredCoverage(wired, jframes);
  EXPECT_EQ(report.wired_packets, 2u);
  EXPECT_EQ(report.matched_packets, 1u);
  EXPECT_DOUBLE_EQ(report.Overall(), 0.5);
  ASSERT_EQ(report.stations.size(), 1u);
  EXPECT_TRUE(report.stations[0].is_ap);
  EXPECT_DOUBLE_EQ(report.GroupCoverage(true), 0.5);
  EXPECT_DOUBLE_EQ(report.FractionAtLeast(0.4, true), 1.0);
  EXPECT_DOUBLE_EQ(report.FractionAtLeast(0.9, true), 0.0);
}

TEST(Coverage, TruthOracle) {
  TruthLog truth;
  TruthEntry heard;
  heard.transmitter = MacAddress::Client(1);
  heard.monitors_ok = 3;
  heard.monitors_any = 4;
  truth.Add(heard);
  TruthEntry missed;
  missed.transmitter = MacAddress::Client(1);
  truth.Add(missed);
  TruthEntry ap_frame;  // not a client: excluded from the aggregate
  ap_frame.transmitter = MacAddress::Ap(0);
  ap_frame.monitors_ok = 1;
  truth.Add(ap_frame);

  const auto agg = ComputeTruthCoverage(truth, std::nullopt);
  EXPECT_EQ(agg.events, 2u);
  EXPECT_EQ(agg.heard_ok, 1u);
  EXPECT_DOUBLE_EQ(agg.Rate(), 0.5);
  const auto one = ComputeTruthCoverage(truth, MacAddress::Ap(0));
  EXPECT_EQ(one.events, 1u);
  EXPECT_EQ(one.heard_ok, 1u);
}

TEST(Protection, OverprotectiveApDetected) {
  std::vector<JFrame> jframes;
  UniversalMicros t = 1'000'000;
  const MacAddress ap = MacAddress::Ap(1);
  const MacAddress g_client = MacAddress::Client(1);

  // The g client's OFDM data marks it 802.11g and associates it to the AP.
  Frame data = MakeData(ap, g_client, ap, 1, Bytes(100), PhyRate::kG24,
                        false, true);
  jframes.push_back(MakeJFrame(data, t));
  // The AP protects (CTS-to-self) with no b client anywhere in sight.
  jframes.push_back(
      MakeJFrame(MakeCtsToSelf(ap, 400, PhyRate::kB2), t + 1000));
  Frame data2 = MakeData(ap, g_client, ap, 2, Bytes(100), PhyRate::kG24,
                         false, true);
  jframes.push_back(MakeJFrame(data2, t + Seconds(30)));

  ProtectionConfig cfg;
  cfg.bin_width = Seconds(60);
  const auto series = ComputeProtection(jframes, cfg);
  ASSERT_GE(series.Bins(), 1u);
  EXPECT_EQ(series.overprotective_aps[0], 1);
  EXPECT_EQ(series.active_g_clients[0], 1);
  EXPECT_EQ(series.g_clients_on_overprotective[0], 1);
}

TEST(Protection, BClientInRangeJustifiesProtection) {
  std::vector<JFrame> jframes;
  UniversalMicros t = 1'000'000;
  const MacAddress ap = MacAddress::Ap(1);
  const MacAddress b_client = MacAddress::Client(2);

  // The b client's CCK-only data classifies it and proves it in range.
  Frame b_data = MakeData(ap, b_client, ap, 1, Bytes(50), PhyRate::kB11,
                          false, true);
  jframes.push_back(MakeJFrame(b_data, t));
  jframes.push_back(
      MakeJFrame(MakeCtsToSelf(ap, 400, PhyRate::kB2), t + 1000));

  const auto series = ComputeProtection(jframes, {});
  ASSERT_GE(series.Bins(), 1u);
  EXPECT_EQ(series.overprotective_aps[0], 0);
}

TEST(TcpLossAnalysis, AggregatesAndFilters) {
  TransportReconstruction tr;
  TcpFlowRecord good;
  good.handshake_complete = true;
  good.segments_down = 100;
  good.losses.push_back({0, true, 0, LossCause::kWireless});
  good.losses.push_back({0, true, 0, LossCause::kWireless});
  good.losses.push_back({0, true, 0, LossCause::kWired});
  tr.flows.push_back(good);
  TcpFlowRecord scan;  // no handshake: excluded
  scan.segments_down = 50;
  tr.flows.push_back(scan);
  TcpFlowRecord tiny;  // below min segments: excluded
  tiny.handshake_complete = true;
  tiny.segments_down = 2;
  tr.flows.push_back(tiny);

  const auto report = ComputeTcpLoss(tr, {.min_segments = 5});
  EXPECT_EQ(report.flows_considered, 1u);
  EXPECT_DOUBLE_EQ(report.aggregate_loss_rate, 0.03);
  EXPECT_DOUBLE_EQ(report.aggregate_wireless_rate, 0.02);
  EXPECT_DOUBLE_EQ(report.aggregate_wired_rate, 0.01);
  EXPECT_DOUBLE_EQ(report.total_loss_rate.Max(), 0.03);
}

TEST(TcpLossAnalysis, ZeroDataSegmentFlowDoesNotPoisonDistributions) {
  // A handshake-only flow has no data segments.  With min_segments == 0 it
  // used to pass the eligibility filter and divide 0/0, filling every
  // Distribution mean with NaN.
  TransportReconstruction tr;
  TcpFlowRecord handshake_only;
  handshake_only.handshake_complete = true;  // zero data segments
  tr.flows.push_back(handshake_only);
  TcpFlowRecord good;
  good.handshake_complete = true;
  good.segments_down = 10;
  good.losses.push_back({0, true, 0, LossCause::kWireless});
  tr.flows.push_back(good);

  const auto report = ComputeTcpLoss(tr, {.min_segments = 0});
  EXPECT_EQ(report.flows_considered, 1u);
  EXPECT_FALSE(std::isnan(report.total_loss_rate.Mean()));
  EXPECT_FALSE(std::isnan(report.wireless_loss_rate.Mean()));
  EXPECT_DOUBLE_EQ(report.total_loss_rate.Mean(), 0.1);
  EXPECT_DOUBLE_EQ(report.aggregate_loss_rate, 0.1);
  EXPECT_DOUBLE_EQ(report.aggregate_wireless_rate, 0.1);
}

}  // namespace
}  // namespace jig
