// Regression fixtures for the on-disk decoders, minimized from the fuzz
// harnesses in fuzz/ (see docs/STATIC_ANALYSIS.md, "Fuzzing").
//
// Every fixture pins the same invariant the fuzzers assert at scale: a
// hostile input either decodes or raises exactly the documented taxonomy —
// TraceError subtypes for .jigt/.jigs structure, LzError subtypes for
// compressed blocks, std::runtime_error for JFrame payloads.  The inputs
// here are the minimized crashers the harnesses would find against the
// unhardened decoders: allocation bombs from attacker-declared counts
// (std::bad_alloc is not in any taxonomy) and ByteReader underflows that
// used to escape as plain runtime_error where TraceError was documented.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "jigsaw/spill.h"
#include "trace/trace_file.h"
#include "util/byte_io.h"
#include "util/compression.h"

namespace jig {
namespace {

namespace fs = std::filesystem;

class DecoderRegressionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("jig_decoder_regression_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path Write(const std::string& name, const Bytes& bytes) {
    const fs::path path = dir_ / name;
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    return path;
  }

  fs::path dir_;
};

Bytes Slurp(const fs::path& path) {
  std::ifstream f(path, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(f),
               std::istreambuf_iterator<char>());
}

std::uint32_t GetU32(const Bytes& b, std::size_t at) {
  return static_cast<std::uint32_t>(b[at]) |
         (static_cast<std::uint32_t>(b[at + 1]) << 8) |
         (static_cast<std::uint32_t>(b[at + 2]) << 16) |
         (static_cast<std::uint32_t>(b[at + 3]) << 24);
}

std::uint64_t GetU64(const Bytes& b, std::size_t at) {
  return static_cast<std::uint64_t>(GetU32(b, at)) |
         (static_cast<std::uint64_t>(GetU32(b, at + 4)) << 32);
}

void PutU32At(Bytes& b, std::size_t at, std::uint32_t v) {
  b[at] = static_cast<std::uint8_t>(v);
  b[at + 1] = static_cast<std::uint8_t>(v >> 8);
  b[at + 2] = static_cast<std::uint8_t>(v >> 16);
  b[at + 3] = static_cast<std::uint8_t>(v >> 24);
}

void PutU64At(Bytes& b, std::size_t at, std::uint64_t v) {
  PutU32At(b, at, static_cast<std::uint32_t>(v));
  PutU32At(b, at + 4, static_cast<std::uint32_t>(v >> 32));
}

// A small finished trace to mutate: header + one block + index trailer.
Bytes MakeValidTrace(const fs::path& scratch) {
  TraceHeader header;
  header.radio = 1;
  const fs::path path = scratch / "valid.jigt";
  {
    TraceFileWriter w(path, header, /*records_per_block=*/4);
    for (int i = 0; i < 6; ++i) {
      CaptureRecord rec;
      rec.timestamp = 1000 + i * 100;
      rec.orig_len = 64;
      rec.bytes.assign(32, static_cast<std::uint8_t>(i));
      w.Append(rec);
    }
    w.Finish();
  }
  return Slurp(path);
}

// ---------------------------------------------------------------------------
// LZ block decoder.

// Minimized crasher: a 4-byte stream whose header declares a 4 GiB output.
// The unhardened decoder reserved the full declared size before reading a
// single token — std::bad_alloc (or an ASan allocation failure), which is
// outside the LzError taxonomy.
TEST(LzDecodeRegression, HostileDeclaredSizeIsCorruptNotOom) {
  const Bytes bomb = {0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_THROW(LzDecompress(bomb), LzCorruptError);
}

// A declared size the token stream could reach but does not fill stays a
// truncation (the pre-existing contract): the reachability bound must only
// reject sizes no stream of this length could produce.
TEST(LzDecodeRegression, ReachableButUnfilledSizeStaysTruncated) {
  Bytes packed = {100, 0, 0, 0};  // declares 100 bytes
  packed.push_back(0x00);         // literal run of 1
  packed.push_back(0xAB);
  EXPECT_THROW(LzDecompress(packed), LzTruncatedError);
}

// ---------------------------------------------------------------------------
// JFrame payload decoder.

// Serialized prefix of a valid jframe up to (and excluding) the instance
// list, so tests can append hostile instance counts.
Bytes JFramePrefixWithoutInstances() {
  Bytes out;
  ByteWriter w(out);
  w.I64(5000);               // timestamp
  w.I64(0);                  // dispersion
  w.U8(1);                   // channel
  w.U8(3);                   // rate
  w.U32(96);                 // wire_len
  w.U64(0x1234);             // digest
  w.U8(0);                   // frame type
  w.U8(0);                   // flags
  w.U16(314);                // duration
  for (int a = 0; a < 18; ++a) w.U8(0x22);  // addr1..addr3
  w.U16(7);                  // sequence
  w.U8(3);                   // frame rate
  w.Varint(0);               // body length
  return out;
}

// Minimized crasher: a varint instance count of 2^40 with no instance
// bytes behind it.  The unhardened decoder reserved 23 bytes per declared
// instance before validating — tens of terabytes from a 6-byte field.
TEST(JFrameRegression, HostileInstanceCountIsRuntimeErrorNotOom) {
  Bytes bytes = JFramePrefixWithoutInstances();
  ByteWriter w(bytes);
  w.Varint(std::uint64_t{1} << 40);
  ByteReader r(bytes);
  EXPECT_THROW(DeserializeJFrame(r), std::runtime_error);
}

// A count that merely exceeds the remaining bytes (without being an
// allocation bomb) is rejected the same way.
TEST(JFrameRegression, InstanceCountPastInputIsRejected) {
  Bytes bytes = JFramePrefixWithoutInstances();
  ByteWriter w(bytes);
  w.Varint(3);  // declares 3 instances; zero bytes follow
  ByteReader r(bytes);
  EXPECT_THROW(DeserializeJFrame(r), std::runtime_error);
}

// ---------------------------------------------------------------------------
// .jigt trace reader.

// Minimized crasher: the trailer's block count patched to 0xFFFFFFFF.  The
// unhardened reader clamped it only against kMaxPackedBlockLen (2^26) and
// reserved ~2 GB of index entries before reading any of them.
TEST_F(DecoderRegressionTest, TraceHostileIndexCountIsCorrupt) {
  Bytes bytes = MakeValidTrace(dir_);
  const std::uint64_t index_offset = GetU64(bytes, bytes.size() - 12);
  PutU32At(bytes, static_cast<std::size_t>(index_offset), 0xFFFFFFFFu);
  const auto path = Write("hostile_count.jigt", bytes);
  EXPECT_THROW(TraceFileReader reader(path), TraceCorruptError);
}

// Minimized crasher: an index entry's record count patched to 0xFFFFFFFF.
// The unhardened reader reserved a record vector for the full count before
// decoding the (tiny) block.
TEST_F(DecoderRegressionTest, TraceHostileRecordCountIsCorrupt) {
  Bytes bytes = MakeValidTrace(dir_);
  const std::uint64_t index_offset = GetU64(bytes, bytes.size() - 12);
  // Entry 0 starts after the u32 count; record_count is its last field.
  const std::size_t entry0 = static_cast<std::size_t>(index_offset) + 4;
  PutU32At(bytes, entry0 + 24, 0xFFFFFFFFu);
  const auto path = Write("hostile_records.jigt", bytes);
  for (const bool use_mmap : {false, true}) {
    TraceFileReader reader(path, {.use_mmap = use_mmap});
    EXPECT_THROW(
        {
          while (reader.Next()) {
          }
        },
        TraceCorruptError);
  }
}

// Minimized crasher: an index entry offset of 2^64-1.  Buffered reads used
// to feed it through a u64→long cast into fseek (failing as a plain
// runtime_error, outside the taxonomy); the mmap path's bounds check could
// wrap.  The reader now rejects offsets past the index region up front.
TEST_F(DecoderRegressionTest, TraceHostileEntryOffsetIsCorrupt) {
  Bytes bytes = MakeValidTrace(dir_);
  const std::uint64_t index_offset = GetU64(bytes, bytes.size() - 12);
  PutU64At(bytes, static_cast<std::size_t>(index_offset) + 4,
           0xFFFFFFFFFFFFFFFFull);
  const auto path = Write("hostile_offset.jigt", bytes);
  EXPECT_THROW(TraceFileReader reader(path), TraceCorruptError);
}

// Minimized taxonomy escape: a header_len that frames fewer bytes than
// TraceHeader needs.  The ByteReader underflow inside DeserializeHeader
// used to escape as a plain runtime_error; the documented contract for
// unusable trace bytes is TraceCorruptError.
TEST_F(DecoderRegressionTest, TraceShortHeaderIsCorruptNotRawRuntimeError) {
  Bytes bytes = {'J', 'I', 'G', 'T', 1, 0, 0, 0, 5, 0, 0, 0,
                 0xDE, 0xAD, 0xBE, 0xEF, 0x00};
  const auto path = Write("short_header.jigt", bytes);
  EXPECT_THROW(TraceFileReader reader(path), TraceCorruptError);
}

// ---------------------------------------------------------------------------
// .jigs spill-segment reader.

// Minimized taxonomy escape: a header_len that frames fewer bytes than
// SpillSegmentHeader needs (9).  Same underflow-escape as the trace header.
TEST_F(DecoderRegressionTest, SpillShortHeaderIsCorruptNotRawRuntimeError) {
  Bytes bytes = {'J', 'I', 'G', 'S', 1, 0, 0, 0, 3, 0, 0, 0, 0x01, 0x02, 0x03};
  const auto path = Write("short_header.jigs", bytes);
  for (const bool strict : {true, false}) {
    EXPECT_THROW(SpillSegmentReader reader(path, strict), TraceCorruptError);
  }
}

// A segment cut off inside the magic is truncation (a writer that died
// immediately), in both strict and tail modes — and must not leak the
// already-opened FILE* (the fuzz harnesses run this ctor in a loop under
// ASan/LSan, which is where a descriptor leak shows up).
TEST_F(DecoderRegressionTest, SpillTruncatedMagicIsTruncated) {
  const auto path = Write("torn_magic.jigs", Bytes{'J', 'I'});
  for (const bool strict : {true, false}) {
    EXPECT_THROW(SpillSegmentReader reader(path, strict), TraceTruncatedError);
  }
}

// A hostile block length (past kMaxSpillBlockLen) inside an otherwise valid
// segment is corruption in both modes — not an allocation attempt.
TEST_F(DecoderRegressionTest, SpillHostileBlockLengthIsCorrupt) {
  SpillSegmentHeader header;
  header.channel = 1;
  header.sequence = 1;
  const fs::path path = dir_ / "hostile_block.jigs";
  {
    SpillSegmentWriter w(path, header, /*records_per_block=*/4);
    JFrame jf;
    jf.timestamp = 100;
    w.Append(jf);
    w.Finish();
  }
  Bytes bytes = Slurp(path);
  // The first block's length word sits right after magic+version+hdr frame.
  const std::size_t block_len_at = 12 + GetU32(bytes, 8);
  PutU32At(bytes, block_len_at, 0xFFFFFFFFu);
  const auto patched = Write("hostile_block_patched.jigs", bytes);
  for (const bool strict : {true, false}) {
    SpillSegmentReader reader(patched, strict);
    EXPECT_THROW(
        {
          while (reader.Next()) {
          }
        },
        TraceCorruptError);
  }
}

}  // namespace
}  // namespace jig
