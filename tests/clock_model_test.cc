#include "sim/clock_model.h"

#include <gtest/gtest.h>

namespace jig {
namespace {

ClockConfig NoNoise() {
  ClockConfig cfg;
  cfg.jitter_sigma_us = 0.0;
  cfg.drift_ppm_per_hour = 0.0;
  return cfg;
}

TEST(ClockModel, OffsetWithinRange) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    ClockModel clock(NoNoise(), Rng(seed));
    EXPECT_LE(std::abs(clock.initial_offset_us()),
              static_cast<double>(ClockConfig{}.max_initial_offset));
  }
}

TEST(ClockModel, SkewScalesWithTime) {
  ClockConfig cfg = NoNoise();
  cfg.skew_sigma_ppm = 10.0;
  ClockModel clock(cfg, Rng(3));
  const double skew = clock.skew_ppm_at_start();
  const double local_1s = clock.LocalAt(Seconds(1));
  const double local_2s = clock.LocalAt(Seconds(2));
  // Rate = 1 + skew ppm.
  EXPECT_NEAR(local_2s - local_1s, 1e6 * (1.0 + skew * 1e-6), 0.01);
}

TEST(ClockModel, CaptureTimestampsTrackLocalTime) {
  ClockModel clock(NoNoise(), Rng(7));
  for (TrueMicros t : {Micros{0}, Micros{1000}, Seconds(1), Seconds(5)}) {
    const LocalMicros ts = clock.CaptureTimestamp(t);
    EXPECT_NEAR(static_cast<double>(ts), clock.LocalAt(t), 1.5);
  }
}

TEST(ClockModel, JitterPerturbsTimestamps) {
  ClockConfig cfg = NoNoise();
  cfg.jitter_sigma_us = 2.0;
  ClockModel clock(cfg, Rng(11));
  // Two captures at the same true instant rarely agree with jitter on.
  int distinct = 0;
  for (int i = 0; i < 20; ++i) {
    const LocalMicros a = clock.CaptureTimestamp(Seconds(1));
    const LocalMicros b = clock.CaptureTimestamp(Seconds(1));
    distinct += a != b;
  }
  EXPECT_GT(distinct, 5);
}

TEST(ClockModel, DriftChangesEffectiveSkew) {
  ClockConfig cfg = NoNoise();
  cfg.drift_ppm_per_hour = 50.0;  // exaggerated for test visibility
  cfg.skew_sigma_ppm = 0.0;
  ClockModel clock(cfg, Rng(13));
  // Clock rate before the drift walk advances.
  const double early_rate = clock.LocalAt(Seconds(1)) - clock.LocalAt(0);
  // Advance the drift walk 10 minutes, then measure the rate again.
  (void)clock.CaptureTimestamp(Minutes(10));
  const double late_rate =
      clock.LocalAt(Minutes(10) + Seconds(1)) - clock.LocalAt(Minutes(10));
  EXPECT_NE(early_rate, late_rate);
}

TEST(ClockModel, NtpEstimateCloseToTruth) {
  // The NTP estimate of "UTC at local zero" must be within the configured
  // error of the true value (-offset, since true time == UTC).
  ClockConfig cfg = NoNoise();
  for (std::uint64_t seed = 1; seed < 30; ++seed) {
    ClockModel clock(cfg, Rng(seed));
    const double true_utc_of_zero = -clock.initial_offset_us();
    EXPECT_LE(std::abs(clock.NtpUtcOfLocalZero() - true_utc_of_zero),
              static_cast<double>(cfg.ntp_error_us) + 1.0)
        << "seed " << seed;
  }
}

TEST(ClockModel, DistinctClocksDisagree) {
  ClockModel a(NoNoise(), Rng(1));
  ClockModel b(NoNoise(), Rng(2));
  EXPECT_NE(a.CaptureTimestamp(Seconds(1)), b.CaptureTimestamp(Seconds(1)));
}

}  // namespace
}  // namespace jig
