// AnalysisBus: one streaming pass must reproduce exactly what the batch
// collect-then-rescan analyses computed.
#include "jigsaw/analysis/bus.h"

#include <gtest/gtest.h>

#include "jigsaw/pipeline.h"
#include "sim/scenario.h"

namespace jig {
namespace {

class BusEquivalence : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig cfg;
    cfg.seed = 21;
    cfg.duration = Seconds(3);
    cfg.clients = 12;
    cfg.pods_enabled = 8;
    scenario_ = new Scenario(cfg);
    scenario_->Run();
    traces_ = new TraceSet(scenario_->TakeTraces());
    batch_ = new MergeResult(MergeTraces(*traces_));
  }
  static void TearDownTestSuite() {
    delete batch_;
    delete traces_;
    delete scenario_;
    batch_ = nullptr;
    traces_ = nullptr;
    scenario_ = nullptr;
  }

  static Scenario* scenario_;
  static TraceSet* traces_;
  static MergeResult* batch_;
};

Scenario* BusEquivalence::scenario_ = nullptr;
TraceSet* BusEquivalence::traces_ = nullptr;
MergeResult* BusEquivalence::batch_ = nullptr;

TEST_F(BusEquivalence, SinglePassMatchesBatchAnalyses) {
  AnalysisBus bus;
  auto& collector = bus.Emplace<CollectorConsumer>();
  auto& reconstruction = bus.Emplace<ReconstructionConsumer>(collector);
  auto& dispersion = bus.Emplace<DispersionConsumer>();
  auto& activity = bus.Emplace<ActivityConsumer>(Seconds(1));
  auto& coverage =
      bus.Emplace<WiredCoverageConsumer>(scenario_->wired_records());
  auto& tcp_loss = bus.Emplace<TcpLossConsumer>(reconstruction);
  bus.SetTerminal(collector);  // collector receives the stream by move
  ASSERT_EQ(bus.consumer_count(), 6u);

  MergeConfig cfg;
  cfg.threads = 0;  // the parallel merge feeds the bus
  MergeTracesStreaming(*traces_, cfg, bus.Sink());
  bus.Finish();

  // The stream the bus saw is the batch stream.
  ASSERT_EQ(bus.jframes_seen(), batch_->jframes.size());
  ASSERT_EQ(collector.jframes().size(), batch_->jframes.size());

  // Dispersion: identical distribution.
  const auto batch_disp = DispersionDistribution(batch_->jframes);
  ASSERT_EQ(dispersion.distribution().size(), batch_disp.size());
  if (!batch_disp.empty()) {
    EXPECT_DOUBLE_EQ(dispersion.distribution().Quantile(0.9),
                     batch_disp.Quantile(0.9));
    EXPECT_DOUBLE_EQ(dispersion.distribution().Mean(), batch_disp.Mean());
  }

  // Activity: identical series, bin by bin.
  const auto batch_act = ComputeActivity(batch_->jframes, Seconds(1));
  const auto& streamed_act = activity.series();
  ASSERT_EQ(streamed_act.Bins(), batch_act.Bins());
  EXPECT_EQ(streamed_act.origin, batch_act.origin);
  for (std::size_t i = 0; i < batch_act.Bins(); ++i) {
    EXPECT_EQ(streamed_act.active_clients[i], batch_act.active_clients[i]);
    EXPECT_EQ(streamed_act.active_aps[i], batch_act.active_aps[i]);
    EXPECT_DOUBLE_EQ(streamed_act.data_bytes[i], batch_act.data_bytes[i]);
    EXPECT_DOUBLE_EQ(streamed_act.mgmt_bytes[i], batch_act.mgmt_bytes[i]);
    EXPECT_DOUBLE_EQ(streamed_act.beacon_bytes[i], batch_act.beacon_bytes[i]);
    EXPECT_DOUBLE_EQ(streamed_act.arp_bytes[i], batch_act.arp_bytes[i]);
    EXPECT_DOUBLE_EQ(streamed_act.broadcast_airtime_fraction[i],
                     batch_act.broadcast_airtime_fraction[i]);
  }

  // Coverage: identical aggregate match.
  const auto batch_cov =
      ComputeWiredCoverage(scenario_->wired_records(), batch_->jframes);
  EXPECT_EQ(coverage.report().wired_packets, batch_cov.wired_packets);
  EXPECT_EQ(coverage.report().matched_packets, batch_cov.matched_packets);
  EXPECT_EQ(coverage.report().stations.size(), batch_cov.stations.size());

  // Reconstruction (shared collector buffer) and TCP loss.
  const auto batch_link = ReconstructLink(batch_->jframes);
  EXPECT_EQ(reconstruction.link().attempts.size(),
            batch_link.attempts.size());
  EXPECT_EQ(reconstruction.link().exchanges.size(),
            batch_link.exchanges.size());
  const auto batch_transport = ReconstructTransport(batch_->jframes,
                                                    batch_link);
  const auto batch_loss = ComputeTcpLoss(batch_transport);
  EXPECT_EQ(tcp_loss.report().flows_considered,
            batch_loss.flows_considered);
  EXPECT_DOUBLE_EQ(tcp_loss.report().aggregate_loss_rate,
                   batch_loss.aggregate_loss_rate);
  EXPECT_DOUBLE_EQ(tcp_loss.report().aggregate_wireless_rate,
                   batch_loss.aggregate_wireless_rate);
}

TEST_F(BusEquivalence, OnlineMonitorRidesTheBus) {
  AnalysisBus bus;
  std::uint64_t windows = 0;
  std::uint64_t jframes_in_windows = 0;
  auto& online = bus.Emplace<OnlineMonitorConsumer>(
      Seconds(1), [&](const OnlineWindowStats& w) {
        ++windows;
        jframes_in_windows += w.jframes;
      });
  MergeTracesStreaming(*traces_, {}, bus.Sink());
  bus.Finish();
  EXPECT_EQ(windows, online.monitor().windows_emitted());
  EXPECT_GT(windows, 1u);
  EXPECT_EQ(jframes_in_windows, bus.jframes_seen());
}

}  // namespace
}  // namespace jig
