// AnalysisBus: one streaming pass must reproduce exactly what the batch
// collect-then-rescan analyses computed.
#include "jigsaw/analysis/bus.h"

#include <gtest/gtest.h>

#include "jigsaw/pipeline.h"
#include "link_equality.h"
#include "sim/scenario.h"
#include "synthetic.h"

namespace jig {
namespace {

using jig::testing::ExpectLinkIdentical;

class BusEquivalence : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig cfg;
    cfg.seed = 21;
    cfg.duration = Seconds(3);
    cfg.clients = 12;
    cfg.pods_enabled = 8;
    scenario_ = new Scenario(cfg);
    scenario_->Run();
    traces_ = new TraceSet(scenario_->TakeTraces());
    batch_ = new MergeResult(MergeTraces(*traces_));
  }
  static void TearDownTestSuite() {
    delete batch_;
    delete traces_;
    delete scenario_;
    batch_ = nullptr;
    traces_ = nullptr;
    scenario_ = nullptr;
  }

  static Scenario* scenario_;
  static TraceSet* traces_;
  static MergeResult* batch_;
};

Scenario* BusEquivalence::scenario_ = nullptr;
TraceSet* BusEquivalence::traces_ = nullptr;
MergeResult* BusEquivalence::batch_ = nullptr;

TEST_F(BusEquivalence, SinglePassMatchesBatchAnalyses) {
  AnalysisBus bus;
  auto& collector = bus.Emplace<CollectorConsumer>();
  auto& reconstruction = bus.Emplace<ReconstructionConsumer>(collector);
  auto& dispersion = bus.Emplace<DispersionConsumer>();
  auto& activity = bus.Emplace<ActivityConsumer>(Seconds(1));
  auto& coverage =
      bus.Emplace<WiredCoverageConsumer>(scenario_->wired_records());
  auto& tcp_loss = bus.Emplace<TcpLossConsumer>(reconstruction);
  bus.SetTerminal(collector);  // collector receives the stream by move
  ASSERT_EQ(bus.consumer_count(), 6u);

  MergeConfig cfg;
  cfg.threads = 0;  // the parallel merge feeds the bus
  MergeTracesStreaming(*traces_, cfg, bus.Sink());
  bus.Finish();

  // The stream the bus saw is the batch stream.
  ASSERT_EQ(bus.jframes_seen(), batch_->jframes.size());
  ASSERT_EQ(collector.jframes().size(), batch_->jframes.size());

  // Dispersion: identical distribution.
  const auto batch_disp = DispersionDistribution(batch_->jframes);
  ASSERT_EQ(dispersion.distribution().size(), batch_disp.size());
  if (!batch_disp.empty()) {
    EXPECT_DOUBLE_EQ(dispersion.distribution().Quantile(0.9),
                     batch_disp.Quantile(0.9));
    EXPECT_DOUBLE_EQ(dispersion.distribution().Mean(), batch_disp.Mean());
  }

  // Activity: identical series, bin by bin.
  const auto batch_act = ComputeActivity(batch_->jframes, Seconds(1));
  const auto& streamed_act = activity.series();
  ASSERT_EQ(streamed_act.Bins(), batch_act.Bins());
  EXPECT_EQ(streamed_act.origin, batch_act.origin);
  for (std::size_t i = 0; i < batch_act.Bins(); ++i) {
    EXPECT_EQ(streamed_act.active_clients[i], batch_act.active_clients[i]);
    EXPECT_EQ(streamed_act.active_aps[i], batch_act.active_aps[i]);
    EXPECT_DOUBLE_EQ(streamed_act.data_bytes[i], batch_act.data_bytes[i]);
    EXPECT_DOUBLE_EQ(streamed_act.mgmt_bytes[i], batch_act.mgmt_bytes[i]);
    EXPECT_DOUBLE_EQ(streamed_act.beacon_bytes[i], batch_act.beacon_bytes[i]);
    EXPECT_DOUBLE_EQ(streamed_act.arp_bytes[i], batch_act.arp_bytes[i]);
    EXPECT_DOUBLE_EQ(streamed_act.broadcast_airtime_fraction[i],
                     batch_act.broadcast_airtime_fraction[i]);
  }

  // Coverage: identical aggregate match.
  const auto batch_cov =
      ComputeWiredCoverage(scenario_->wired_records(), batch_->jframes);
  EXPECT_EQ(coverage.report().wired_packets, batch_cov.wired_packets);
  EXPECT_EQ(coverage.report().matched_packets, batch_cov.matched_packets);
  EXPECT_EQ(coverage.report().stations.size(), batch_cov.stations.size());

  // Reconstruction (shared collector buffer) and TCP loss.
  const auto batch_link = ReconstructLink(batch_->jframes);
  EXPECT_EQ(reconstruction.link().attempts.size(),
            batch_link.attempts.size());
  EXPECT_EQ(reconstruction.link().exchanges.size(),
            batch_link.exchanges.size());
  const auto batch_transport = ReconstructTransport(batch_->jframes,
                                                    batch_link);
  const auto batch_loss = ComputeTcpLoss(batch_transport);
  EXPECT_EQ(tcp_loss.report().flows_considered,
            batch_loss.flows_considered);
  EXPECT_DOUBLE_EQ(tcp_loss.report().aggregate_loss_rate,
                   batch_loss.aggregate_loss_rate);
  EXPECT_DOUBLE_EQ(tcp_loss.report().aggregate_wireless_rate,
                   batch_loss.aggregate_wireless_rate);
}

TEST_F(BusEquivalence, WindowedLinkPathMatchesBatchWithoutCollector) {
  // The collector-free bus: windowed link reconstruction feeding the
  // streaming interference and TCP-loss consumers.  Everything must be
  // byte-identical to the batch path over the full jframe vector.
  AnalysisBus bus;
  auto& link = bus.Emplace<LinkConsumer>();
  auto& interference = bus.Emplace<InterferenceConsumer>(link);
  auto& tcp_loss = bus.Emplace<TcpLossConsumer>(link);
  ReconstructionObserver reconstruction(link);
  MergeConfig cfg;
  cfg.threads = 0;
  MergeTracesStreaming(*traces_, cfg, bus.Sink());
  bus.Finish();

  // The windowed path must actually window: peak retention below the
  // full-trace buffer it replaces.
  EXPECT_GT(link.peak_window_jframes(), 0u);
  EXPECT_LT(link.peak_window_jframes(), batch_->jframes.size());

  const auto batch_link = ReconstructLink(batch_->jframes);
  ExpectLinkIdentical(reconstruction.link(), batch_link);

  const auto batch_transport =
      ReconstructTransport(batch_->jframes, batch_link);
  const auto& streamed_transport = reconstruction.transport();
  ASSERT_EQ(streamed_transport.flows.size(), batch_transport.flows.size());
  EXPECT_EQ(streamed_transport.stats.tcp_segments,
            batch_transport.stats.tcp_segments);
  EXPECT_EQ(streamed_transport.stats.loss_events,
            batch_transport.stats.loss_events);
  EXPECT_EQ(streamed_transport.stats.wireless_losses,
            batch_transport.stats.wireless_losses);
  EXPECT_EQ(streamed_transport.stats.wired_losses,
            batch_transport.stats.wired_losses);
  EXPECT_EQ(streamed_transport.stats.covering_ack_resolutions,
            batch_transport.stats.covering_ack_resolutions);
  EXPECT_EQ(streamed_transport.stats.inferred_missing_segments,
            batch_transport.stats.inferred_missing_segments);
  ASSERT_EQ(streamed_transport.exchange_delivered.size(),
            batch_transport.exchange_delivered.size());
  EXPECT_EQ(streamed_transport.exchange_delivered,
            batch_transport.exchange_delivered);

  // Interference: the streaming per-channel sweep + incremental pair
  // counters equal the batch overlap scan.
  const auto batch_if = ComputeInterference(batch_->jframes, batch_link);
  const auto& streamed_if = interference.report();
  EXPECT_EQ(streamed_if.total_pairs_seen, batch_if.total_pairs_seen);
  ASSERT_EQ(streamed_if.pairs.size(), batch_if.pairs.size());
  for (std::size_t i = 0; i < batch_if.pairs.size(); ++i) {
    const auto& s = streamed_if.pairs[i];
    const auto& b = batch_if.pairs[i];
    EXPECT_EQ(s.sender, b.sender);
    EXPECT_EQ(s.receiver, b.receiver);
    EXPECT_EQ(s.n, b.n);
    EXPECT_EQ(s.n0, b.n0);
    EXPECT_EQ(s.nl0, b.nl0);
    EXPECT_EQ(s.nx, b.nx);
    EXPECT_EQ(s.nlx, b.nlx);
  }
  EXPECT_DOUBLE_EQ(streamed_if.mean_background_loss,
                   batch_if.mean_background_loss);
  EXPECT_DOUBLE_EQ(streamed_if.fraction_pairs_interfered,
                   batch_if.fraction_pairs_interfered);

  // TCP loss riding the incremental flow updates.
  const auto batch_loss = ComputeTcpLoss(batch_transport);
  EXPECT_EQ(tcp_loss.report().flows_considered, batch_loss.flows_considered);
  EXPECT_DOUBLE_EQ(tcp_loss.report().aggregate_loss_rate,
                   batch_loss.aggregate_loss_rate);
  EXPECT_DOUBLE_EQ(tcp_loss.report().aggregate_wireless_rate,
                   batch_loss.aggregate_wireless_rate);
  EXPECT_DOUBLE_EQ(tcp_loss.report().aggregate_wired_rate,
                   batch_loss.aggregate_wired_rate);
}

TEST(LinkConsumerStreaming, MatchesBatchAcrossSeededMultiChannelScenarios) {
  // The seeded multi-channel synthetic deployments (three channels, six
  // radios, randomized unified/corrupted/duplicate traffic) through the
  // full sharded merge: the windowed LinkConsumer must emit attempt and
  // exchange vectors byte-identical to batch ReconstructLink, including
  // exchanges straddling window boundaries.
  for (const std::uint64_t seed : {11ull, 21ull, 31ull}) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    auto net = jig::testing::MultiChannelNetwork(seed, Seconds(4));
    TraceSet streaming_traces = net.Build();
    TraceSet batch_traces = net.Build();

    AnalysisBus bus;
    auto& link = bus.Emplace<LinkConsumer>();
    ReconstructionObserver reconstruction(link);
    MergeConfig cfg;
    cfg.threads = 0;
    MergeTracesStreaming(streaming_traces, cfg, bus.Sink());
    bus.Finish();

    const auto batch_merge = MergeTraces(batch_traces);
    const auto batch_link = ReconstructLink(batch_merge.jframes);
    ExpectLinkIdentical(reconstruction.link(), batch_link);
    EXPECT_EQ(link.min_live_jframe(), batch_merge.jframes.size());
  }
}

TEST_F(BusEquivalence, OnlineMonitorRidesTheBus) {
  AnalysisBus bus;
  std::uint64_t windows = 0;
  std::uint64_t jframes_in_windows = 0;
  auto& online = bus.Emplace<OnlineMonitorConsumer>(
      Seconds(1), [&](const OnlineWindowStats& w) {
        ++windows;
        jframes_in_windows += w.jframes;
      });
  MergeTracesStreaming(*traces_, {}, bus.Sink());
  bus.Finish();
  EXPECT_EQ(windows, online.monitor().windows_emitted());
  EXPECT_GT(windows, 1u);
  EXPECT_EQ(jframes_in_windows, bus.jframes_seen());
}

}  // namespace
}  // namespace jig
